(* ff2latch — convert a flip-flop netlist to a 3-phase latch-based design.

   Reads ISCAS89 [.bench] or the structural-Verilog subset, runs the
   conversion flow (ILP phase assignment, netlist rewrite, retiming, clock
   gating), verifies stream equivalence, checks multi-phase timing, and
   writes the converted netlist.  Subcommands also expose the
   master-slave baseline, design statistics and power estimation. *)

open Cmdliner

let library = Cell_lib.Default_library.library ()

(* Extension dispatch: [.bench] is ISCAS89, [.sv] goes through the
   word-level elaborator (parameters, vectors, always_ff/always_comb,
   hierarchy — see docs/RTL.md), anything else is read as the flat
   structural-Verilog exchange subset.  Front-end errors carry
   file:line:col positions; re-raise them as [Failure] so cmdliner
   prints them as clean one-liners. *)
let read_design ?top path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  let name = Filename.remove_extension (Filename.basename path) in
  try
    if Filename.check_suffix path ".bench" then
      Netlist_io.Bench_format.parse ~name ~library src
    else if Filename.check_suffix path ".sv" then
      Elab.Elaborate.read ~file:path ?top ~library src
    else Netlist_io.Verilog.parse ~file:path ~library src
  with
  | Elab.Diag.Error (_, msg) | Netlist_io.Verilog.Error (_, msg) ->
    failwith msg

let write_design path d =
  let text =
    if Filename.check_suffix path ".bench" then Netlist_io.Bench_format.write d
    else Netlist_io.Verilog.write d
  in
  let oc = open_out path in
  output_string oc text;
  close_out oc

(* [suite:NAME] builds a benchmark from lib/circuits instead of reading
   a file — the CI QoR gate runs ISCAS circuits without shipping their
   netlists.  Returns the design and, for suite circuits, the
   benchmark's published clock period. *)
let resolve_input ?top spec =
  match String.length spec >= 6 && String.sub spec 0 6 = "suite:" with
  | true ->
    let name = String.sub spec 6 (String.length spec - 6) in
    (match Circuits.Suite.find name with
     | Some b -> (b.Circuits.Suite.build (), Some b.Circuits.Suite.period_ns)
     | None ->
       failwith
         (Printf.sprintf "unknown suite circuit %S (try s1196, s5378, ...)"
            name))
  | false ->
    if not (Sys.file_exists spec) then
      failwith (Printf.sprintf "no such file: %s" spec);
    (read_design ?top spec, None)

let input_arg =
  Arg.(required & pos 0 (some string) None
       & info [] ~docv:"INPUT"
           ~doc:"Input design (.bench, .v, or word-level .sv RTL), or \
                 suite:NAME for a built-in benchmark circuit (e.g. \
                 suite:s1196).")

let top_arg =
  Arg.(value & opt (some string) None
       & info ["top"] ~docv:"MODULE"
           ~doc:"Top module of a .sv input (default: the unique module \
                 that no other module instantiates).")

let constraints_arg =
  Arg.(value & opt (some string) None
       & info ["constraints"] ~docv:"FILE"
           ~doc:"Read an SDC file (create_clock, set_input_delay, ...); \
                 the first clock's period is used when --period is not \
                 given.")

let output_arg =
  Arg.(value & opt (some string) None
       & info ["o"; "output"] ~docv:"OUTPUT" ~doc:"Output netlist path (.v or .bench).")

let period_arg =
  Arg.(value & opt (some float) None
       & info ["period"] ~docv:"NS"
           ~doc:"Clock period in nanoseconds (default: the suite circuit's \
                 published period, or 1.0).")

let period_of period suite_period =
  match period, suite_period with
  | Some p, _ -> p
  | None, Some p -> p
  | None, None -> 1.0

(* clock spec from a design's declared clock ports: three ports is a
   converted 3-phase design, one (or none) is a plain FF design *)
let clocks_of_design d ~period =
  match d.Netlist.Design.clock_ports with
  | [p1; p2; p3] -> Sim.Clock_spec.three_phase ~period ~p1 ~p2 ~p3 ()
  | [port] -> Sim.Clock_spec.single ~period ~port
  | [] -> Sim.Clock_spec.single ~period ~port:"clock"
  | _ :: _ -> failwith "unsupported clocking"

let solver_conv =
  Arg.enum [("auto", `Auto); ("ilp", `Ilp); ("mis", `Mis); ("greedy", `Greedy)]

let solver_arg =
  Arg.(value & opt solver_conv `Auto
       & info ["solver"] ~docv:"SOLVER"
           ~doc:"Assignment solver: auto, ilp (literal formulation), mis \
                 (independent-set reduction), greedy.")

let no_retime_arg =
  Arg.(value & flag & info ["no-retime"] ~doc:"Skip the modified retiming step.")

let no_cg_arg =
  Arg.(value & flag & info ["no-clock-gating"] ~doc:"Skip p2 clock gating.")

let no_verify_arg =
  Arg.(value & flag & info ["no-verify"] ~doc:"Skip stream-equivalence checking.")

let optimize_arg =
  Arg.(value & flag
       & info ["optimize"]
           ~doc:"Run constant folding, buffer collapsing and a dead-logic \
                 sweep on the converted netlist.")

let sdc_arg =
  Arg.(value & opt (some string) None
       & info ["sdc"] ~docv:"FILE" ~doc:"Also write SDC clock constraints.")

let vcd_arg =
  Arg.(value & opt (some string) None
       & info ["vcd"] ~docv:"FILE"
           ~doc:"Also dump a VCD waveform of 64 random cycles.")

let trace_arg =
  Arg.(value & opt (some string) None
       & info ["trace"] ~docv:"FILE"
           ~doc:"Write a Chrome trace_event JSON of the whole run (one span \
                 per flow stage, counters for the solvers and simulators); \
                 open it in chrome://tracing or https://ui.perfetto.dev.")

let timings_arg =
  Arg.(value & flag
       & info ["timings"]
           ~doc:"Print the observability summary table (per-stage wall-clock, \
                 solver and simulator counters) after the flow.")

let json_arg =
  Arg.(value & flag
       & info ["json"]
           ~doc:"Print the QoR run record as JSON on standard output and \
                 route every other message (including --trace/--timings \
                 output) to standard error, so the output pipes cleanly \
                 into jq or a file.  The converted netlist is only written \
                 when -o is given.")

let qor_dir_arg =
  Arg.(value & opt (some string) None
       & info ["qor-dir"] ~docv:"DIR"
           ~doc:"Append the run record to the QoR store at $(docv) \
                 (DIR/runs/<id>.json plus a DIR/history.jsonl line); see \
                 docs/QOR.md.")

let convert_cmd =
  let run input output period solver no_retime no_cg no_verify optimize sdc vcd
      trace timings json qor_dir top constraints =
    match
      let d = resolve_input ?top input in
      let cs =
        match constraints with
        | None -> None
        | Some path ->
          let ic = open_in path in
          let src = really_input_string ic (in_channel_length ic) in
          close_in ic;
          (match Netlist_io.Sdc.parse ~file:path src with
           | cs -> Some cs
           | exception Netlist_io.Sdc.Error (_, msg) -> failwith msg)
      in
      (d, cs)
    with
    | exception Failure msg -> `Error (false, msg)
    | (d, suite_period), cs ->
    let sdc_period =
      match cs with None -> None | Some cs -> Netlist_io.Sdc.period cs
    in
    let period =
      match period with
      | Some p -> p
      | None -> period_of sdc_period suite_period
    in
    (* under --json, stdout carries exactly one JSON document: the run
       record.  Everything human-facing goes to stderr. *)
    let out = if json then stderr else stdout in
    let say fmt = Printf.fprintf out (fmt ^^ "\n%!") in
    (match cs with
     | None -> ()
     | Some cs ->
       say "constraints: %d clock(s), %d input / %d output delays%s"
         (List.length cs.Netlist_io.Sdc.clocks)
         (List.length cs.Netlist_io.Sdc.input_delays)
         (List.length cs.Netlist_io.Sdc.output_delays)
         (if cs.Netlist_io.Sdc.ignored = [] then ""
          else
            Printf.sprintf " (%d unsupported commands ignored)"
              (List.length cs.Netlist_io.Sdc.ignored));
       (match Netlist_io.Sdc.clock_port cs with
        | Some p when not (Netlist.Design.is_clock_port d p) ->
          say "warning: constraints clock port '%s' is not a clock of %s" p
            d.Netlist.Design.design_name
        | _ -> ()));
    let cg =
      if no_cg then
        { Phase3.Clock_gating.default_options with
          Phase3.Clock_gating.common_enable = false;
          m2_latch_removal = false;
          ddcg = false }
      else Phase3.Clock_gating.default_options
    in
    let config =
      { (Phase3.Flow.default_config ~period) with
        Phase3.Flow.solver;
        retime = not no_retime;
        optimize;
        clock_gating = cg;
        verify_equivalence = not no_verify }
    in
    let t0 = Unix.gettimeofday () in
    match Phase3.Flow.run ~config d with
    | result ->
      let final = result.Phase3.Flow.final in
      say "%s: %d FFs -> %d latches (%d inserted p2, %s)"
        d.Netlist.Design.design_name
        (Netlist.Stats.compute d).Netlist.Stats.flip_flops
        (Netlist.Stats.compute final).Netlist.Stats.latches
        result.Phase3.Flow.assignment.Phase3.Assignment.inserted_latches
        (if result.Phase3.Flow.assignment.Phase3.Assignment.optimal
         then "optimal" else "best effort");
      say "timing: %s"
        (Format.asprintf "%a" Sta.Smo.pp_report result.Phase3.Flow.timing);
      (match result.Phase3.Flow.equivalence with
       | Some (Sim.Equivalence.Equivalent { shift }) ->
         say "equivalence: ok (latency shift %d)" shift
       | Some (Sim.Equivalence.Mismatch _) | None -> ());
      (match output with
       | Some path -> write_design path final; say "wrote %s" path
       | None ->
         if json then say "no -o given: netlist not written"
         else print_string (Netlist_io.Verilog.write final));
      (match sdc with
       | Some path ->
         let text =
           Netlist_io.Sdc.write final ~clocks:(Phase3.Flow.clocks_of config)
         in
         let oc = open_out path in
         output_string oc text;
         close_out oc;
         say "wrote %s" path
       | None -> ());
      (match vcd with
       | Some path ->
         let engine =
           Sim.Engine.create final ~clocks:(Phase3.Flow.clocks_of config)
         in
         let stim =
           Sim.Stimulus.random ~seed:42 ~cycles:64 ~toggle_probability:0.3
             (Sim.Stimulus.inputs_of final)
         in
         let text = Sim.Vcd.run_and_dump engine stim in
         let oc = open_out path in
         output_string oc text;
         close_out oc;
         say "wrote %s" path
       | None -> ());
      (match result.Phase3.Flow.stage_times with
       | [] -> ()
       | times when timings ->
         Printf.fprintf out "stage times:";
         List.iter (fun (s, t) -> Printf.fprintf out " %s %.3fs" s t) times;
         Printf.fprintf out "\n%!"
       | _ -> ());
      if timings then
        output_string out (Report.Table.render (Obs.summary_table ()));
      (* the record also runs placement + power estimation, inside a
         qor.power Obs span, so capture the rollup afterwards *)
      let record =
        if json || qor_dir <> None then
          Some
            (Qor.Collect.of_flow
               ~circuit:d.Netlist.Design.design_name
               ~extra_wall:[("convert.total_s", Unix.gettimeofday () -. t0)]
               result)
        else None
      in
      (match trace with
       | Some path ->
         Obs.write_chrome_trace path;
         say "wrote %s" path
       | None -> ());
      (match record, qor_dir with
       | Some r, Some dir ->
         let path = Qor.Store.append ~dir r in
         say "wrote %s" path
       | _ -> ());
      (match record with
       | Some r when json -> print_string (Qor.Record.render r)
       | _ -> ());
      `Ok ()
    | exception Phase3.Flow.Flow_error msg -> `Error (false, msg)
  in
  Cmd.v (Cmd.info "convert" ~doc:"Convert a FF netlist to 3-phase latches.")
    Term.(ret (const run $ input_arg $ output_arg $ period_arg $ solver_arg
               $ no_retime_arg $ no_cg_arg $ no_verify_arg $ optimize_arg
               $ sdc_arg $ vcd_arg $ trace_arg $ timings_arg $ json_arg
               $ qor_dir_arg $ top_arg $ constraints_arg))

let master_slave_cmd =
  let run input output =
    match resolve_input input with
    | exception Failure msg -> `Error (false, msg)
    | d, _ ->
    let ms = Phase3.Master_slave.convert d in
    (match output with
     | Some path -> write_design path ms; Printf.printf "wrote %s\n" path
     | None -> print_string (Netlist_io.Verilog.write ms));
    `Ok ()
  in
  Cmd.v (Cmd.info "master-slave" ~doc:"Produce the master-slave latch baseline.")
    Term.(ret (const run $ input_arg $ output_arg))

let stats_cmd =
  let run input =
    match resolve_input input with
    | exception Failure msg -> `Error (false, msg)
    | d, _ ->
    Format.printf "%a@." Netlist.Stats.pp (Netlist.Stats.compute d);
    let g = Netlist.Ff_graph.build d in
    Printf.printf "FF graph: %d nodes, %d with combinational self-loops\n"
      (Netlist.Ff_graph.size g) (Netlist.Ff_graph.self_loop_count g);
    `Ok ()
  in
  Cmd.v (Cmd.info "stats" ~doc:"Print register and area statistics.")
    Term.(ret (const run $ input_arg))

let saif_arg =
  Arg.(value & opt (some string) None
       & info ["saif"] ~docv:"FILE"
           ~doc:"Also write switching activity in SAIF form.")

let power_cmd =
  let run input period saif =
    match resolve_input input with
    | exception Failure msg -> `Error (false, msg)
    | d, suite_period ->
    let period = period_of period suite_period in
    let clocks = clocks_of_design d ~period in
    let impl = Physical.Implement.run d in
    let engine = Sim.Engine.create d ~clocks in
    let stim =
      Sim.Stimulus.random ~seed:1 ~cycles:512 ~toggle_probability:0.3
        (Sim.Stimulus.inputs_of d)
    in
    ignore (Sim.Engine.run_stream engine stim);
    let activity = Sim.Activity.capture engine in
    let detail =
      Power.Estimate.run impl ~activity:(Sim.Activity.counts activity) ~period
    in
    Format.printf "%a@." Power.Estimate.pp_breakdown detail.Power.Estimate.overall;
    (match saif with
     | Some path ->
       let oc = open_out path in
       output_string oc (Sim.Activity.render activity);
       close_out oc;
       Printf.printf "wrote %s\n" path
     | None -> ());
    `Ok ()
  in
  Cmd.v (Cmd.info "power" ~doc:"Place, simulate and estimate power.")
    Term.(ret (const run $ input_arg $ period_arg $ saif_arg))

let timing_cmd =
  let run input period =
    match resolve_input input with
    | exception Failure msg -> `Error (false, msg)
    | d, suite_period ->
    let period = period_of period suite_period in
    let paths = Sta.Timing_report.worst_paths ~count:5 d in
    Format.printf "%a" (Sta.Timing_report.pp d) paths;
    let clocks = clocks_of_design d ~period in
    List.iter
      (fun ((c : Sta.Corners.corner), r) ->
        Format.printf "corner %-8s %a@." c.Sta.Corners.corner_name
          Sta.Smo.pp_report r)
      (Sta.Corners.check_all d ~clocks);
    `Ok ()
  in
  Cmd.v (Cmd.info "timing" ~doc:"Report critical paths and corner timing.")
    Term.(ret (const run $ input_arg $ period_arg))

(* --- report: the self-contained HTML flow report ---------------------- *)

let load_record what path =
  match Qor.Store.load path with
  | Ok r -> Ok r
  | Error msg -> Error (Printf.sprintf "%s %s: %s" what path msg)

let report_cmd =
  let out_arg =
    Arg.(value & opt string "report.html"
         & info ["o"; "output"] ~docv:"FILE"
             ~doc:"Output HTML path (default report.html).")
  in
  let baseline_arg =
    Arg.(value & opt (some file) None
         & info ["baseline"] ~docv:"FILE"
             ~doc:"Baseline run record; switches the metric table into \
                   diff mode with the gate verdict and regression suspects \
                   at the top.")
  in
  let trend_dir_arg =
    Arg.(value & opt (some string) None
         & info ["qor-dir"] ~docv:"DIR"
             ~doc:"QoR store to read trend history from (and append this \
                   run's record to).")
  in
  let run input output baseline qor_dir period top constraints =
    match
      let d = resolve_input ?top input in
      let sdc_period =
        match constraints with
        | None -> None
        | Some path ->
          let ic = open_in path in
          let src = really_input_string ic (in_channel_length ic) in
          close_in ic;
          (match Netlist_io.Sdc.parse ~file:path src with
           | cs -> Netlist_io.Sdc.period cs
           | exception Netlist_io.Sdc.Error (_, msg) -> failwith msg)
      in
      (d, sdc_period)
    with
    | exception Failure msg -> `Error (false, msg)
    | (d, suite_period), sdc_period ->
      let period =
        match period with
        | Some p -> p
        | None -> period_of sdc_period suite_period
      in
      let config = Phase3.Flow.default_config ~period in
      (match Phase3.Flow.run ~config d with
       | exception Phase3.Flow.Flow_error msg -> `Error (false, msg)
       | result ->
         let record =
           Qor.Collect.of_flow ~circuit:d.Netlist.Design.design_name result
         in
         let baseline =
           match baseline with
           | None -> Ok None
           | Some path -> Result.map Option.some (load_record "baseline" path)
         in
         (match baseline with
          | Error msg -> `Error (false, msg)
          | Ok baseline ->
            (* append first so the trend section includes this run *)
            (match qor_dir with
             | Some dir -> ignore (Qor.Store.append ~dir record)
             | None -> ());
            let history =
              match qor_dir with
              | Some dir -> Qor.Store.history ~dir
              | None -> []
            in
            let html = Qor.Report_html.page ?baseline ~history record in
            let oc = open_out output in
            output_string oc html;
            close_out oc;
            Printf.printf "wrote %s\n" output;
            `Ok ()))
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:"Run the conversion flow and write a self-contained HTML \
             report: stage waterfall, span tree, histograms, QoR metrics \
             (diffed against --baseline when given) and trend sparklines \
             from the --qor-dir store.  No external assets; one file.")
    Term.(ret (const run $ input_arg $ out_arg $ baseline_arg
               $ trend_dir_arg $ period_arg $ top_arg $ constraints_arg))

(* --- lint: the standalone static analyzer ----------------------------- *)

let lint_format_conv =
  Arg.enum [("text", `Text); ("json", `Json); ("sarif", `Sarif)]

let lint_format_arg =
  Arg.(value & opt lint_format_conv `Text
       & info ["format"] ~docv:"FMT"
           ~doc:"Report format: text (one finding per line), json, or \
                 sarif (SARIF 2.1.0, for code-scanning upload).")

let lint_output_arg =
  Arg.(value & opt (some string) None
       & info ["o"; "output"] ~docv:"FILE"
           ~doc:"Write the report to $(docv) instead of standard output.")

let waiver_arg =
  Arg.(value & opt (some string) None
       & info ["waiver"] ~docv:"FILE"
           ~doc:"Waiver file suppressing accepted findings; one \
                 'RULE-GLOB LOCATION-GLOB' pair per line (see \
                 docs/LINT.md).")

let show_waived_arg =
  Arg.(value & flag
       & info ["show-waived"]
           ~doc:"Include waived diagnostics in the text listing.")

let lint_cmd =
  let run input output period format waiver show_waived top constraints =
    match
      (* elaborating under [Diag.collect] gathers RTL-* findings from
         .sv inputs; the other front ends contribute none *)
      Elab.Diag.collect (fun () -> resolve_input ?top input)
    with
    | exception Failure msg -> `Error (false, msg)
    | (d, suite_period), rtl_findings ->
      match
        match constraints with
        | None -> None
        | Some path ->
          let ic = open_in path in
          let src = really_input_string ic (in_channel_length ic) in
          close_in ic;
          (match Netlist_io.Sdc.parse ~file:path src with
           | cs -> Netlist_io.Sdc.period cs
           | exception Netlist_io.Sdc.Error (_, msg) -> failwith msg)
      with
      | exception Failure msg -> `Error (false, msg)
      | sdc_period ->
      let period =
        match period with
        | Some p -> p
        | None -> period_of sdc_period suite_period
      in
      (match clocks_of_design d ~period with
       | exception Failure msg -> `Error (false, msg)
       | clocks ->
         let waivers =
           match waiver with
           | None -> Ok []
           | Some path -> Lint_core.Waiver.load path
         in
         (match waivers with
          | Error msg -> `Error (false, msg)
          | Ok waivers ->
            let report =
              Lint.Engine.run d ~clocks ~waivers ~extra:rtl_findings
            in
            let emit ppf =
              let ds = report.Lint.Engine.diagnostics in
              match format with
              | `Text -> Lint_core.Emit.text ~show_waived ppf ds
              | `Json -> Lint_core.Emit.json ppf ds
              | `Sarif -> Lint_core.Emit.sarif ppf ds
            in
            (match output with
             | Some path ->
               let oc = open_out path in
               let ppf = Format.formatter_of_out_channel oc in
               emit ppf;
               Format.pp_print_flush ppf ();
               close_out oc;
               Printf.printf "wrote %s\n" path
             | None ->
               emit Format.std_formatter;
               Format.pp_print_flush Format.std_formatter ());
            if report.Lint.Engine.errors > 0 then
              `Error
                (false,
                 Printf.sprintf "%d lint error(s) in %s"
                   report.Lint.Engine.errors
                   d.Netlist.Design.design_name)
            else `Ok ()))
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Run the static analyzer: structural netlist checks, the \
             independent phase-legality and min-delay audits, \
             clock-network and reset audits, and RTL lints for .sv \
             inputs.  Exits non-zero when any unwaived error-severity \
             finding remains.")
    Term.(ret (const run $ input_arg $ lint_output_arg $ period_arg
               $ lint_format_arg $ waiver_arg $ show_waived_arg $ top_arg
               $ constraints_arg))

(* --- qor: run-record diffing and the regression gate ----------------- *)

let noise_band_arg =
  Arg.(value & opt float 0.30
       & info ["noise-band"] ~docv:"FRAC"
           ~doc:"Relative tolerance for wall-clock/gauge metrics \
                 (default 0.30 = 30%).")

let fail_on_wall_arg =
  Arg.(value & flag
       & info ["fail-on-wall"]
           ~doc:"Also fail when a wall-clock or gauge metric regresses \
                 beyond the noise band (off by default: timings gate \
                 nothing, they only warn).")

let markdown_arg =
  Arg.(value & flag
       & info ["markdown"]
           ~doc:"Render the diff as a markdown report (changed metrics \
                 only) instead of the plain-text table.")

let store_dir_arg =
  Arg.(value & opt string "qor"
       & info ["qor-dir"] ~docv:"DIR"
           ~doc:"QoR store directory (default qor).")

(* print + verdict, shared by diff and check; exits non-zero on gate
   failure so CI can gate directly on the command *)
let finish ~fail_on_wall ~markdown diff =
  if markdown then print_string (Qor.Diff.markdown diff)
  else Report.Table.print (Qor.Diff.table diff);
  if Qor.Diff.ok ~fail_on_wall diff then begin
    (if diff.Qor.Diff.wall_regressions <> [] then
       Printf.printf "note: wall-clock outside the noise band (not gated): %s\n"
         (String.concat ", " diff.Qor.Diff.wall_regressions));
    Printf.printf "QoR gate: PASS (%s)\n" diff.Qor.Diff.circuit;
    `Ok ()
  end
  else begin
    Printf.printf "QoR gate: FAIL (%s): %s\n" diff.Qor.Diff.circuit
      (String.concat ", "
         (diff.Qor.Diff.gate_failures
          @ if fail_on_wall then diff.Qor.Diff.wall_regressions else []));
    List.iter
      (Printf.printf "  suspect: %s\n")
      (Qor.Diff.attribution_lines diff);
    exit 1
  end

let qor_diff_cmd =
  let baseline_pos =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"BASELINE" ~doc:"Baseline run record (JSON).")
  in
  let current_pos =
    Arg.(required & pos 1 (some file) None
         & info [] ~docv:"CURRENT" ~doc:"Run record to compare (JSON).")
  in
  let run baseline current noise_band fail_on_wall markdown =
    match load_record "baseline" baseline with
    | Error msg -> `Error (false, msg)
    | Ok b ->
      (match load_record "record" current with
       | Error msg -> `Error (false, msg)
       | Ok c ->
         finish ~fail_on_wall ~markdown
           (Qor.Diff.run ~noise_band ~baseline:b c))
  in
  Cmd.v
    (Cmd.info "diff"
       ~doc:"Compare two QoR run records; exit 1 when the deterministic \
             metrics differ.")
    Term.(ret (const run $ baseline_pos $ current_pos $ noise_band_arg
               $ fail_on_wall_arg $ markdown_arg))

let qor_check_cmd =
  let baseline_arg =
    Arg.(required & opt (some file) None
         & info ["baseline"] ~docv:"FILE"
             ~doc:"Baseline record to gate against (conventionally \
                   qor/baselines/<circuit>.json).")
  in
  let record_pos =
    Arg.(value & pos 0 (some file) None
         & info [] ~docv:"RECORD"
             ~doc:"Run record to check; defaults to the newest store entry \
                   whose circuit matches the baseline's.")
  in
  let run baseline record dir noise_band fail_on_wall markdown =
    match load_record "baseline" baseline with
    | Error msg -> `Error (false, msg)
    | Ok b ->
      let current =
        match record with
        | Some path -> load_record "record" path
        | None ->
          (match
             Qor.Store.latest ~dir ~kind:b.Qor.Record.prov.Qor.Record.kind
               ~circuit:b.Qor.Record.prov.Qor.Record.circuit ()
           with
           | Some r -> Ok r
           | None ->
             Error
               (Printf.sprintf
                  "no run for circuit %S (kind %S) in store %s — run \
                   `ff2latch convert ... --qor-dir %s` first"
                  b.Qor.Record.prov.Qor.Record.circuit
                  b.Qor.Record.prov.Qor.Record.kind dir dir))
      in
      (match current with
       | Error msg -> `Error (false, msg)
       | Ok c ->
         finish ~fail_on_wall ~markdown
           (Qor.Diff.run ~noise_band ~baseline:b c))
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Gate the newest stored run (or RECORD) against a committed \
             baseline; exit 1 on QoR regression.")
    Term.(ret (const run $ baseline_arg $ record_pos $ store_dir_arg
               $ noise_band_arg $ fail_on_wall_arg $ markdown_arg))

let limit_arg =
  Arg.(value & opt (some int) None
       & info ["limit"] ~docv:"N" ~doc:"Show at most $(docv) entries.")

let qor_list_cmd =
  let run dir limit =
    match Qor.Store.history ~dir with
    | [] -> Printf.printf "no runs recorded in %s\n" dir; `Ok ()
    | records ->
      let t =
        Report.Table.create ~title:(Printf.sprintf "QoR store %s" dir)
          [ ("timestamp", Report.Table.Left); ("kind", Report.Table.Left);
            ("circuit", Report.Table.Left); ("metrics", Report.Table.Right);
            ("power mW", Report.Table.Right) ]
      in
      (* newest first; the history file is append-order (oldest first) *)
      let records = List.rev records in
      let records =
        match limit with
        | None -> records
        | Some n -> List.filteri (fun i _ -> i < n) records
      in
      List.iter
        (fun (r : Qor.Record.t) ->
          Report.Table.add_row t
            [ r.Qor.Record.prov.Qor.Record.timestamp;
              r.Qor.Record.prov.Qor.Record.kind;
              r.Qor.Record.prov.Qor.Record.circuit;
              string_of_int (List.length r.Qor.Record.metrics);
              (match Qor.Record.metric r "power.total_mw" with
               | Some p -> Printf.sprintf "%.4f" p
               | None -> "-") ])
        records;
      Report.Table.print t;
      `Ok ()
  in
  Cmd.v
    (Cmd.info "list"
       ~doc:"List runs recorded in the QoR store, newest first.")
    Term.(ret (const run $ store_dir_arg $ limit_arg))

let qor_trend_cmd =
  let circuit_arg =
    Arg.(value & opt (some string) None
         & info ["circuit"] ~docv:"NAME" ~doc:"Only this circuit.")
  in
  let kind_arg =
    Arg.(value & opt (some string) None
         & info ["kind"] ~docv:"KIND" ~doc:"Only this run kind (e.g. flow).")
  in
  let metric_arg =
    Arg.(value & opt (some string) None
         & info ["metric"] ~docv:"SUBSTR"
             ~doc:"Only metrics whose name contains $(docv).")
  in
  let check_arg =
    Arg.(value & flag
         & info ["check"]
             ~doc:"Exit 1 when a deterministic metric's latest value is a \
                   robust outlier against its own history (modified \
                   z-score over median/MAD; needs at least 4 runs).  \
                   Wall-clock and gauge anomalies stay advisory.")
  in
  let all_arg =
    Arg.(value & flag
         & info ["all"]
             ~doc:"Also show series whose values never change.")
  in
  let run dir circuit kind metric limit check all =
    let series =
      Qor.Trend.of_store ~dir ?kind ?circuit ?metric ?limit ()
    in
    if series = [] then begin
      Printf.printf "no matching runs recorded in %s\n" dir;
      `Ok ()
    end
    else begin
      Report.Table.print (Qor.Trend.table ~all series);
      let anomalies = Qor.Trend.anomalies series in
      if anomalies <> [] then begin
        Printf.printf "deterministic anomalies: %s\n"
          (String.concat ", "
             (List.map
                (fun (s : Qor.Trend.series) ->
                  Printf.sprintf "%s/%s" s.Qor.Trend.sr_circuit
                    s.Qor.Trend.sr_name)
                anomalies));
        if check then exit 1
      end;
      if check && anomalies = [] then Printf.printf "trend check: PASS\n";
      `Ok ()
    end
  in
  Cmd.v
    (Cmd.info "trend"
       ~doc:"Per-metric time series over the store history with robust \
             outlier detection; --check turns deterministic anomalies \
             into a non-zero exit for CI.")
    Term.(ret (const run $ store_dir_arg $ circuit_arg $ kind_arg
               $ metric_arg $ limit_arg $ check_arg $ all_arg))

let qor_cmd =
  Cmd.group
    (Cmd.info "qor"
       ~doc:"Persistent QoR run records: diff, regression gate, history, \
             trends.")
    [qor_diff_cmd; qor_check_cmd; qor_list_cmd; qor_trend_cmd]

let () =
  let doc = "flip-flop to 3-phase latch conversion flow" in
  let info = Cmd.info "ff2latch" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info [convert_cmd; master_slave_cmd; stats_cmd; power_cmd; timing_cmd; report_cmd; lint_cmd; qor_cmd]))

(* ff2latch — convert a flip-flop netlist to a 3-phase latch-based design.

   Reads ISCAS89 [.bench] or the structural-Verilog subset, runs the
   conversion flow (ILP phase assignment, netlist rewrite, retiming, clock
   gating), verifies stream equivalence, checks multi-phase timing, and
   writes the converted netlist.  Subcommands also expose the
   master-slave baseline, design statistics and power estimation. *)

open Cmdliner

let library = Cell_lib.Default_library.library ()

let read_design path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  let name = Filename.remove_extension (Filename.basename path) in
  if Filename.check_suffix path ".bench" then
    Netlist_io.Bench_format.parse ~name ~library src
  else Netlist_io.Verilog.parse ~library src

let write_design path d =
  let text =
    if Filename.check_suffix path ".bench" then Netlist_io.Bench_format.write d
    else Netlist_io.Verilog.write d
  in
  let oc = open_out path in
  output_string oc text;
  close_out oc

let input_arg =
  Arg.(required & pos 0 (some file) None
       & info [] ~docv:"INPUT" ~doc:"Input netlist (.bench or .v).")

let output_arg =
  Arg.(value & opt (some string) None
       & info ["o"; "output"] ~docv:"OUTPUT" ~doc:"Output netlist path (.v or .bench).")

let period_arg =
  Arg.(value & opt float 1.0
       & info ["period"] ~docv:"NS" ~doc:"Clock period in nanoseconds.")

let solver_conv =
  Arg.enum [("auto", `Auto); ("ilp", `Ilp); ("mis", `Mis); ("greedy", `Greedy)]

let solver_arg =
  Arg.(value & opt solver_conv `Auto
       & info ["solver"] ~docv:"SOLVER"
           ~doc:"Assignment solver: auto, ilp (literal formulation), mis \
                 (independent-set reduction), greedy.")

let no_retime_arg =
  Arg.(value & flag & info ["no-retime"] ~doc:"Skip the modified retiming step.")

let no_cg_arg =
  Arg.(value & flag & info ["no-clock-gating"] ~doc:"Skip p2 clock gating.")

let no_verify_arg =
  Arg.(value & flag & info ["no-verify"] ~doc:"Skip stream-equivalence checking.")

let optimize_arg =
  Arg.(value & flag
       & info ["optimize"]
           ~doc:"Run constant folding, buffer collapsing and a dead-logic \
                 sweep on the converted netlist.")

let sdc_arg =
  Arg.(value & opt (some string) None
       & info ["sdc"] ~docv:"FILE" ~doc:"Also write SDC clock constraints.")

let vcd_arg =
  Arg.(value & opt (some string) None
       & info ["vcd"] ~docv:"FILE"
           ~doc:"Also dump a VCD waveform of 64 random cycles.")

let trace_arg =
  Arg.(value & opt (some string) None
       & info ["trace"] ~docv:"FILE"
           ~doc:"Write a Chrome trace_event JSON of the whole run (one span \
                 per flow stage, counters for the solvers and simulators); \
                 open it in chrome://tracing or https://ui.perfetto.dev.")

let timings_arg =
  Arg.(value & flag
       & info ["timings"]
           ~doc:"Print the observability summary table (per-stage wall-clock, \
                 solver and simulator counters) after the flow.")

let convert_cmd =
  let run input output period solver no_retime no_cg no_verify optimize sdc vcd
      trace timings =
    let d = read_design input in
    let cg =
      if no_cg then
        { Phase3.Clock_gating.default_options with
          Phase3.Clock_gating.common_enable = false;
          m2_latch_removal = false;
          ddcg = false }
      else Phase3.Clock_gating.default_options
    in
    let config =
      { (Phase3.Flow.default_config ~period) with
        Phase3.Flow.solver;
        retime = not no_retime;
        optimize;
        clock_gating = cg;
        verify_equivalence = not no_verify }
    in
    match Phase3.Flow.run ~config d with
    | result ->
      let final = result.Phase3.Flow.final in
      Printf.printf "%s: %d FFs -> %d latches (%d inserted p2, %s)\n"
        d.Netlist.Design.design_name
        (Netlist.Stats.compute d).Netlist.Stats.flip_flops
        (Netlist.Stats.compute final).Netlist.Stats.latches
        result.Phase3.Flow.assignment.Phase3.Assignment.inserted_latches
        (if result.Phase3.Flow.assignment.Phase3.Assignment.optimal
         then "optimal" else "best effort");
      Format.printf "timing: %a@." Sta.Smo.pp_report result.Phase3.Flow.timing;
      (match result.Phase3.Flow.equivalence with
       | Some (Sim.Equivalence.Equivalent { shift }) ->
         Printf.printf "equivalence: ok (latency shift %d)\n" shift
       | Some (Sim.Equivalence.Mismatch _) | None -> ());
      (match output with
       | Some path -> write_design path final; Printf.printf "wrote %s\n" path
       | None -> print_string (Netlist_io.Verilog.write final));
      (match sdc with
       | Some path ->
         let text =
           Netlist_io.Sdc.write final ~clocks:(Phase3.Flow.clocks_of config)
         in
         let oc = open_out path in
         output_string oc text;
         close_out oc;
         Printf.printf "wrote %s\n" path
       | None -> ());
      (match vcd with
       | Some path ->
         let engine =
           Sim.Engine.create final ~clocks:(Phase3.Flow.clocks_of config)
         in
         let stim =
           Sim.Stimulus.random ~seed:42 ~cycles:64 ~toggle_probability:0.3
             (Sim.Stimulus.inputs_of final)
         in
         let text = Sim.Vcd.run_and_dump engine stim in
         let oc = open_out path in
         output_string oc text;
         close_out oc;
         Printf.printf "wrote %s\n" path
       | None -> ());
      (match result.Phase3.Flow.stage_times with
       | [] -> ()
       | times when timings ->
         Printf.printf "stage times:";
         List.iter (fun (s, t) -> Printf.printf " %s %.3fs" s t) times;
         print_newline ()
       | _ -> ());
      if timings then Report.Table.print (Obs.summary_table ());
      (match trace with
       | Some path ->
         Obs.write_chrome_trace path;
         Printf.printf "wrote %s\n" path
       | None -> ());
      `Ok ()
    | exception Phase3.Flow.Flow_error msg -> `Error (false, msg)
  in
  Cmd.v (Cmd.info "convert" ~doc:"Convert a FF netlist to 3-phase latches.")
    Term.(ret (const run $ input_arg $ output_arg $ period_arg $ solver_arg
               $ no_retime_arg $ no_cg_arg $ no_verify_arg $ optimize_arg
               $ sdc_arg $ vcd_arg $ trace_arg $ timings_arg))

let master_slave_cmd =
  let run input output =
    let d = read_design input in
    let ms = Phase3.Master_slave.convert d in
    (match output with
     | Some path -> write_design path ms; Printf.printf "wrote %s\n" path
     | None -> print_string (Netlist_io.Verilog.write ms));
    `Ok ()
  in
  Cmd.v (Cmd.info "master-slave" ~doc:"Produce the master-slave latch baseline.")
    Term.(ret (const run $ input_arg $ output_arg))

let stats_cmd =
  let run input =
    let d = read_design input in
    Format.printf "%a@." Netlist.Stats.pp (Netlist.Stats.compute d);
    let g = Netlist.Ff_graph.build d in
    Printf.printf "FF graph: %d nodes, %d with combinational self-loops\n"
      (Netlist.Ff_graph.size g) (Netlist.Ff_graph.self_loop_count g);
    `Ok ()
  in
  Cmd.v (Cmd.info "stats" ~doc:"Print register and area statistics.")
    Term.(ret (const run $ input_arg))

let saif_arg =
  Arg.(value & opt (some string) None
       & info ["saif"] ~docv:"FILE"
           ~doc:"Also write switching activity in SAIF form.")

let power_cmd =
  let run input period saif =
    let d = read_design input in
    let clocks =
      match d.Netlist.Design.clock_ports with
      | [p1; p2; p3] -> Sim.Clock_spec.three_phase ~period ~p1 ~p2 ~p3 ()
      | [port] -> Sim.Clock_spec.single ~period ~port
      | [] -> Sim.Clock_spec.single ~period ~port:"clock"
      | _ :: _ -> failwith "unsupported clocking"
    in
    let impl = Physical.Implement.run d in
    let engine = Sim.Engine.create d ~clocks in
    let stim =
      Sim.Stimulus.random ~seed:1 ~cycles:512 ~toggle_probability:0.3
        (Sim.Stimulus.inputs_of d)
    in
    ignore (Sim.Engine.run_stream engine stim);
    let detail =
      Power.Estimate.run impl
        ~activity:(Sim.Engine.toggles engine, Sim.Engine.cycles engine) ~period
    in
    Format.printf "%a@." Power.Estimate.pp_breakdown detail.Power.Estimate.overall;
    (match saif with
     | Some path ->
       let oc = open_out path in
       output_string oc (Sim.Activity.render (Sim.Activity.capture engine));
       close_out oc;
       Printf.printf "wrote %s\n" path
     | None -> ());
    `Ok ()
  in
  Cmd.v (Cmd.info "power" ~doc:"Place, simulate and estimate power.")
    Term.(ret (const run $ input_arg $ period_arg $ saif_arg))

let report_cmd =
  let run input period =
    let d = read_design input in
    let paths = Sta.Timing_report.worst_paths ~count:5 d in
    Format.printf "%a" (Sta.Timing_report.pp d) paths;
    let clocks =
      match d.Netlist.Design.clock_ports with
      | [p1; p2; p3] -> Sim.Clock_spec.three_phase ~period ~p1 ~p2 ~p3 ()
      | [port] -> Sim.Clock_spec.single ~period ~port
      | [] -> Sim.Clock_spec.single ~period ~port:"clock"
      | _ :: _ -> failwith "unsupported clocking"
    in
    List.iter
      (fun ((c : Sta.Corners.corner), r) ->
        Format.printf "corner %-8s %a@." c.Sta.Corners.corner_name
          Sta.Smo.pp_report r)
      (Sta.Corners.check_all d ~clocks);
    `Ok ()
  in
  Cmd.v (Cmd.info "report" ~doc:"Report critical paths and corner timing.")
    Term.(ret (const run $ input_arg $ period_arg))

let () =
  let doc = "flip-flop to 3-phase latch conversion flow" in
  let info = Cmd.info "ff2latch" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info [convert_cmd; master_slave_cmd; stats_cmd; power_cmd; report_cmd]))

// Two-stage pipelined unsigned multiplier with an operand split, in the
// style of the LEN5 multiplier pipeline: stage 1 computes the two
// half-width partial products, stage 2 recombines them.  Exercises
// parameter overrides, part-selects, async active-low reset, enables
// and the .port connection shorthand.
//
// Convert end-to-end with:
//   ff2latch convert examples/rtl/mulpipe.sv --constraints examples/rtl/mulpipe.sdc

module stagereg #(parameter W = 8) (
  input  logic         clk,
  input  logic         rst_n,
  input  logic         en,
  input  logic [W-1:0] d,
  output logic [W-1:0] q
);
  always_ff @(posedge clk or negedge rst_n)
    if (!rst_n) q <= '0;
    else if (en) q <= d;
endmodule

module mulpipe #(parameter W = 8) (
  input  logic           clk,
  input  logic           rst_n,
  input  logic           in_valid,
  input  logic [W-1:0]   a,
  input  logic [W-1:0]   b,
  output logic [2*W-1:0] p,
  output logic           out_valid
);
  localparam HW = W / 2;

  // stage 1: half-width partial products (zero-extended on assignment)
  logic [2*W-1:0] pl, ph;
  assign pl = a * b[HW-1:0];
  assign ph = a * b[W-1:HW];

  logic [2*W-1:0] pl_q, ph_q;
  stagereg #(.W(2 * W)) u_lo (.clk, .rst_n, .en(in_valid), .d(pl), .q(pl_q));
  stagereg #(.W(2 * W)) u_hi (.clk, .rst_n, .en(in_valid), .d(ph), .q(ph_q));

  logic valid_q;
  always_ff @(posedge clk or negedge rst_n)
    if (!rst_n) valid_q <= 1'b0;
    else valid_q <= in_valid;

  // stage 2: recombine
  assign p = pl_q + (ph_q << HW);
  assign out_valid = valid_q;
endmodule

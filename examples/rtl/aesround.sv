// AES-round-flavoured toy core: a 16-bit state stepped through a 4-bit
// S-box layer, a nibble rotation, a byte-swap mix and a round-key XOR
// for a fixed number of rounds.  Exercises always_comb case tables,
// instance outputs landing on part-selects, concatenation rotates,
// $clog2, a synchronous active-high reset and a round counter with a
// comparator-driven done flag.
//
// Convert end-to-end with:
//   ff2latch convert examples/rtl/aesround.sv --constraints examples/rtl/aesround.sdc

module sbox4 (
  input  logic [3:0] x,
  output logic [3:0] y
);
  always_comb
    case (x)
      4'h0: y = 4'hC;
      4'h1: y = 4'h5;
      4'h2: y = 4'h6;
      4'h3: y = 4'hB;
      4'h4: y = 4'h9;
      4'h5: y = 4'h0;
      4'h6: y = 4'hA;
      4'h7: y = 4'hD;
      4'h8: y = 4'h3;
      4'h9: y = 4'hE;
      4'hA: y = 4'hF;
      4'hB: y = 4'h8;
      4'hC: y = 4'h4;
      4'hD: y = 4'h7;
      4'hE: y = 4'h1;
      default: y = 4'h2;
    endcase
endmodule

module aesround (
  input  logic        clk,
  input  logic        rst,
  input  logic        start,
  input  logic [15:0] din,
  input  logic [15:0] key,
  output logic [15:0] dout,
  output logic        done
);
  localparam ROUNDS = 10;
  localparam CW = $clog2(ROUNDS + 1);

  logic [15:0]   state_q;
  logic [CW-1:0] round_q;
  logic          running_q;

  // substitution layer: one S-box per nibble
  logic [15:0] subbed;
  sbox4 s0 (.x(state_q[3:0]),   .y(subbed[3:0]));
  sbox4 s1 (.x(state_q[7:4]),   .y(subbed[7:4]));
  sbox4 s2 (.x(state_q[11:8]),  .y(subbed[11:8]));
  sbox4 s3 (.x(state_q[15:12]), .y(subbed[15:12]));

  // rotate left one nibble, then mix with the byte-swapped value
  logic [15:0] shifted, mixed, next_state;
  assign shifted = {subbed[11:0], subbed[15:12]};
  assign mixed = shifted ^ {shifted[7:0], shifted[15:8]};
  assign next_state = mixed ^ key;

  always_ff @(posedge clk) begin
    if (rst) begin
      state_q <= 16'h0;
      round_q <= '0;
      running_q <= 1'b0;
    end
    else if (start) begin
      state_q <= din;
      round_q <= '0;
      running_q <= 1'b1;
    end
    else if (running_q && (round_q != ROUNDS)) begin
      state_q <= next_state;
      round_q <= round_q + 1'b1;
    end
  end

  assign done = running_q && (round_q == ROUNDS);
  assign dout = state_q;
endmodule

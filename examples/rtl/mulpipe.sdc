# Timing constraints for mulpipe (LEN5-style SDC).
set CLK_PERIOD 2.0
set IO_DELAY 0.2

create_clock -name core_clk -period $CLK_PERIOD [get_ports clk]
set_clock_uncertainty 0.05 [get_clocks core_clk]

set_input_delay $IO_DELAY -clock core_clk [all_inputs]
set_output_delay $IO_DELAY -clock core_clk [all_outputs]

# Timing constraints for aesround (LEN5-style SDC).
set CLK_PERIOD 2.5

create_clock -name core_clk -period $CLK_PERIOD [get_ports clk]
set_clock_uncertainty 0.05 [get_clocks core_clk]

set_input_delay 0.2 -clock core_clk [get_ports {start din key}]
set_output_delay 0.2 -clock core_clk [get_ports {dout done}]

(* Clock-gating styles (the paper's Figs. 2 and 3).

   Part 1 contrasts the two ways RTL expresses a conditionally-loaded
   register (Fig. 2): a recirculating mux ("enabled clock") gives every
   flip-flop a combinational self-loop that blocks single-latch
   conversion, while an integrated clock gate ("gated clock") leaves the
   flip-flops free — which is why the paper's flow synthesizes with the
   gated-clock style preferred.

   Part 2 demonstrates the p2 clock gate with the M1 modification
   (Fig. 3): its enable is captured by the p3 phase instead of an
   internal inverter, and the gated p2 pulses exactly on the cycles whose
   enable was active — glitch-free.

   Run with: dune exec examples/clock_gating_styles.exe *)

let library = Cell_lib.Default_library.library ()

let bank_design ~gated =
  let b =
    Netlist.Builder.create
      ~name:(if gated then "gated_bank" else "enabled_bank")
      ~library
  in
  let clk = Netlist.Builder.add_input ~clock:true b "clk" in
  let en = Netlist.Builder.add_input b "en" in
  let width = 16 in
  (* each input feeds several register bits, so latching an input port is
     cheaper than pairing the registers it feeds *)
  let inputs =
    List.init (width / 4) (fun k -> Netlist.Builder.add_input b (Printf.sprintf "d%d" k))
  in
  let data = List.init width (fun k -> List.nth inputs (k mod (width / 4))) in
  let gck =
    if gated then begin
      let g = Netlist.Builder.fresh_net b "gck" in
      ignore
        (Netlist.Builder.add_cell b "icg" "ICG_X1"
           [("CK", clk); ("EN", en); ("GCK", g)]);
      g
    end
    else clk
  in
  let qs =
    List.mapi
      (fun k din ->
        let q = Netlist.Builder.fresh_net b (Printf.sprintf "q%d" k) in
        let d_in =
          if gated then din
          else
            (* Fig. 2(a): recirculate the old value through a mux *)
            Netlist.Gates.mux2 b ~sel:en ~a:q ~b_in:din
              ~prefix:(Printf.sprintf "m%d" k)
        in
        ignore
          (Netlist.Builder.add_cell b (Printf.sprintf "r%d" k) "DFF_X1"
             [("CK", gck); ("D", d_in); ("Q", q)]);
        q)
      data
  in
  (* two downstream ranks: the forced pairs of style (a) block the
     alternating-rank optimum that style (b) reaches *)
  let qarr = Array.of_list qs in
  let qs2 =
    List.mapi
      (fun k _ ->
        let x = Netlist.Gates.emit_fresh b Netlist.Gates.Xor
            [qarr.(k); qarr.((k + 1) mod width)] ~prefix:(Printf.sprintf "s%d" k) in
        let q2 = Netlist.Builder.fresh_net b (Printf.sprintf "p%d" k) in
        ignore (Netlist.Builder.add_cell b (Printf.sprintf "r2_%d" k) "DFF_X1"
                  [("CK", clk); ("D", x); ("Q", q2)]);
        q2)
      data
  in
  let qarr2 = Array.of_list qs2 in
  List.iteri
    (fun k _ ->
      let x = Netlist.Gates.emit_fresh b Netlist.Gates.Xnor
          [qarr2.(k); qarr2.((k + 2) mod width)] ~prefix:(Printf.sprintf "t%d" k) in
      let q3 = Netlist.Builder.fresh_net b (Printf.sprintf "u%d" k) in
      ignore (Netlist.Builder.add_cell b (Printf.sprintf "r3_%d" k) "DFF_X1"
                [("CK", clk); ("D", x); ("Q", q3)]);
      Netlist.Builder.add_output b (Printf.sprintf "y%d" k) q3)
    qs2;
  Netlist.Builder.freeze b

let part1 () =
  print_endline "-- Fig. 2: enabled clock vs gated clock --";
  List.iter
    (fun gated ->
      let d = bank_design ~gated in
      let asg = Phase3.Assignment.solve d in
      let g = asg.Phase3.Assignment.graph in
      Printf.printf "%-22s self-loops %2d/%d -> 3-phase latches %d (inserted %d)\n"
        (if gated then "gated clock (2b):" else "enabled clock (2a):")
        (Netlist.Ff_graph.self_loop_count g)
        (Netlist.Ff_graph.size g)
        (Phase3.Assignment.total_latches asg)
        asg.Phase3.Assignment.inserted_latches)
    [false; true]

let part2 () =
  print_endline "\n-- Fig. 3: the p2 clock gate (M1 style) under simulation --";
  let b = Netlist.Builder.create ~name:"fig3" ~library in
  let _p1 = Netlist.Builder.add_input ~clock:true b "p1" in
  let p2 = Netlist.Builder.add_input ~clock:true b "p2" in
  let p3 = Netlist.Builder.add_input ~clock:true b "p3" in
  let en = Netlist.Builder.add_input b "en" in
  let din = Netlist.Builder.add_input b "din" in
  (* gated p3 first latch + p2 latch gated by an M1-style cell sharing EN *)
  let gck3 = Netlist.Builder.fresh_net b "gck3" in
  ignore (Netlist.Builder.add_cell b "cg3" "ICG_X1"
            [("CK", p3); ("EN", en); ("GCK", gck3)]);
  let mid = Netlist.Builder.fresh_net b "mid" in
  ignore (Netlist.Builder.add_cell b "lat3" "LATH_X1"
            [("E", gck3); ("D", din); ("Q", mid)]);
  let gck2 = Netlist.Builder.fresh_net b "gck2" in
  ignore (Netlist.Builder.add_cell b "cg2" "ICGP3_X1"
            [("CK", p2); ("P3", p3); ("EN", en); ("GCK", gck2)]);
  let q = Netlist.Builder.fresh_net b "q" in
  ignore (Netlist.Builder.add_cell b "lat2" "LATH_X1"
            [("E", gck2); ("D", mid); ("Q", q)]);
  Netlist.Builder.add_output b "q" q;
  let d = Netlist.Builder.freeze b in
  let clocks = Sim.Clock_spec.three_phase ~period:1.0 ~p1:"p1" ~p2:"p2" ~p3:"p3" () in
  let engine = Sim.Engine.create d ~clocks in
  Printf.printf "%5s %3s %4s %9s %9s %2s\n" "cycle" "en" "din" "gck3 tgl" "gck2 tgl" "q";
  let prev3 = ref 0 and prev2 = ref 0 in
  List.iteri
    (fun cycle (env, dv) ->
      let out =
        Sim.Engine.run_cycle engine
          [("en", Sim.Logic.of_bool env); ("din", Sim.Logic.of_bool dv)]
      in
      let toggles = Sim.Engine.toggles engine in
      Printf.printf "%5d %3d %4d %9d %9d  %c\n" cycle
        (if env then 1 else 0) (if dv then 1 else 0)
        (toggles.(gck3) - !prev3) (toggles.(gck2) - !prev2)
        (Sim.Logic.to_char (List.assoc "q" out));
      prev3 := toggles.(gck3);
      prev2 := toggles.(gck2))
    [ (true, true); (true, false); (false, true); (false, false);
      (true, true); (false, false); (true, false); (true, true) ]

let () =
  part1 ();
  part2 ()

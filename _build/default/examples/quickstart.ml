(* Quickstart: parse a small flip-flop netlist, convert it to a 3-phase
   latch-based design, and inspect every step's result.

   Run with: dune exec examples/quickstart.exe *)

let bench_source = {|
# A 4-bit accumulator-style circuit: two pipeline registers, one
# feedback register, combinational mixing.
INPUT(a0)
INPUT(a1)
INPUT(b0)
INPUT(b1)
OUTPUT(y0)
OUTPUT(y1)
r0 = DFF(m0)
r1 = DFF(m1)
s0 = DFF(r0)
s1 = DFF(r1)
acc = DFF(fb)
m0 = XOR(a0, b0)
m1 = XOR(a1, b1)
fb = XOR(acc, s0)
y0 = AND(s0, acc)
y1 = OR(s1, fb)
|}

let () =
  let library = Cell_lib.Default_library.library () in
  (* 1. read the flip-flop design *)
  let design = Netlist_io.Bench_format.parse ~name:"quickstart" ~library bench_source in
  Format.printf "original:  %a@." Netlist.Stats.pp (Netlist.Stats.compute design);

  (* 2. inspect the flip-flop graph the ILP works on *)
  let graph = Netlist.Ff_graph.build design in
  Printf.printf "FF graph:  %d flip-flops, %d with combinational self-loops\n"
    (Netlist.Ff_graph.size graph)
    (Netlist.Ff_graph.self_loop_count graph);

  (* 3. run the full conversion flow at 1 GHz *)
  let config = Phase3.Flow.default_config ~period:1.0 in
  let result = Phase3.Flow.run ~config design in
  let assignment = result.Phase3.Flow.assignment in
  Printf.printf "assignment: %d inserted p2 latches (%s), %d input-port latches\n"
    assignment.Phase3.Assignment.inserted_latches
    (if assignment.Phase3.Assignment.optimal then "optimal" else "best effort")
    (List.length assignment.Phase3.Assignment.pi_latches);

  (* 4. the converted design: stats, timing, equivalence *)
  let final = result.Phase3.Flow.final in
  Format.printf "converted: %a@." Netlist.Stats.pp (Netlist.Stats.compute final);
  Format.printf "timing:    %a@." Sta.Smo.pp_report result.Phase3.Flow.timing;
  (match result.Phase3.Flow.equivalence with
   | Some (Sim.Equivalence.Equivalent { shift }) ->
     Printf.printf "equivalence: streams match (latency shift %d)\n" shift
   | Some (Sim.Equivalence.Mismatch _) | None -> assert false);

  (* 5. compare against the master-slave baseline *)
  let ms = Phase3.Master_slave.convert design in
  Printf.printf "master-slave baseline: %d latches vs 3-phase %d\n"
    (Netlist.Stats.compute ms).Netlist.Stats.latches
    (Netlist.Stats.compute final).Netlist.Stats.latches;

  (* 6. write the converted netlist as Verilog *)
  print_newline ();
  print_string (Netlist_io.Verilog.write final)

(* Hand-off artifacts: everything a downstream physical-design or
   verification flow would consume from the conversion — the converted
   Verilog, SDC clock constraints, a VCD waveform, SAIF switching
   activity, and a critical-path timing report.

   Run with: dune exec examples/artifacts.exe *)

let bench_source = {|
INPUT(a0)
INPUT(a1)
INPUT(a2)
OUTPUT(y0)
OUTPUT(y1)
r0 = DFF(m0)
r1 = DFF(m1)
r2 = DFF(f)
m0 = XOR(a0, a1)
m1 = NAND(a2, r0)
f = XOR(r2, r1)
y0 = AND(r1, r2)
y1 = OR(r0, f)
|}

let write path text =
  let oc = open_out path in
  output_string oc text;
  close_out oc;
  Printf.printf "  wrote %-18s (%d bytes)\n" path (String.length text)

let () =
  let library = Cell_lib.Default_library.library () in
  let design = Netlist_io.Bench_format.parse ~name:"handoff" ~library bench_source in
  let config =
    { (Phase3.Flow.default_config ~period:1.0) with Phase3.Flow.optimize = true }
  in
  let result = Phase3.Flow.run ~config design in
  let final = result.Phase3.Flow.final in
  let clocks = Phase3.Flow.clocks_of config in
  let dir = Filename.get_temp_dir_name () in
  let p name = Filename.concat dir name in
  Printf.printf "artifacts for %s:\n" final.Netlist.Design.design_name;

  (* 1. the converted netlist *)
  write (p "handoff_3p.v") (Netlist_io.Verilog.write final);

  (* 2. clock constraints *)
  write (p "handoff_3p.sdc") (Netlist_io.Sdc.write final ~clocks);

  (* 3. waveforms of a short run *)
  let engine = Sim.Engine.create final ~clocks in
  let stim =
    Sim.Stimulus.random ~seed:7 ~cycles:48 ~toggle_probability:0.4
      (Sim.Stimulus.inputs_of final)
  in
  write (p "handoff_3p.vcd") (Sim.Vcd.run_and_dump engine stim);

  (* 4. switching activity of the same run *)
  let activity = Sim.Activity.capture engine in
  write (p "handoff_3p.saif") (Sim.Activity.render activity);
  Printf.printf "  mean toggle rate %.3f/cycle over %d cycles\n"
    (Sim.Activity.mean_rate activity) activity.Sim.Activity.cycles;

  (* 5. timing: critical paths and corner sign-off *)
  print_newline ();
  Format.printf "%a" (Sta.Timing_report.pp final)
    (Sta.Timing_report.worst_paths ~count:3 final);
  List.iter
    (fun ((c : Sta.Corners.corner), r) ->
      Format.printf "corner %-8s %a@." c.Sta.Corners.corner_name
        Sta.Smo.pp_report r)
    (Sta.Corners.check_all final ~clocks)

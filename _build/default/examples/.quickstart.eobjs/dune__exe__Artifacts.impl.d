examples/artifacts.ml: Cell_lib Filename Format List Netlist Netlist_io Phase3 Printf Sim Sta String

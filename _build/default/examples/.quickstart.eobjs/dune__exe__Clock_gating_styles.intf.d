examples/clock_gating_styles.mli:

examples/quickstart.mli:

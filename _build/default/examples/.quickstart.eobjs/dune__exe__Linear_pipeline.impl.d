examples/linear_pipeline.ml: Circuits List Phase3 Printf Sim Sta

examples/quickstart.ml: Cell_lib Format List Netlist Netlist_io Phase3 Printf Sim Sta

examples/artifacts.mli:

examples/cpu_power.ml: Circuits Experiments List Netlist Phase3 Power Printf

examples/clock_gating_styles.ml: Array Cell_lib List Netlist Phase3 Printf Sim

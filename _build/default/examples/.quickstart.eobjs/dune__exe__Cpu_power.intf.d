examples/cpu_power.mli:

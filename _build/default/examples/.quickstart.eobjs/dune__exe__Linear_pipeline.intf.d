examples/linear_pipeline.mli:

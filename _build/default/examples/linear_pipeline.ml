(* The linear-pipeline special case of the paper's Fig. 1: converting an
   n-stage flip-flop pipeline inserts exactly one extra latch stage for
   every other original stage — the provable minimum.

   Run with: dune exec examples/linear_pipeline.exe *)

let () =
  Printf.printf "%-14s %6s %12s %12s %6s\n" "pipeline" "FFs" "3P latches"
    "closed form" "check";
  List.iter
    (fun stages ->
      let width = 8 in
      let design = Circuits.Linear_pipeline.make ~width ~stages () in
      let assignment = Phase3.Assignment.solve design in
      let latches = Phase3.Assignment.total_latches assignment in
      let expected = Phase3.Pipeline.expected_latches ~stages ~width in
      Printf.printf "%-14s %6d %12d %12d %6s\n"
        (Printf.sprintf "8-bit x %d" stages)
        (width * stages) latches expected
        (if latches = expected then "ok" else "BUG");
      assert (latches = expected))
    [2; 3; 4; 5; 6; 8; 10; 12; 16];
  (* convert one of them end to end and show it still computes the same *)
  let design = Circuits.Linear_pipeline.make ~width:4 ~stages:6 () in
  let config = Phase3.Flow.default_config ~period:1.0 in
  let result = Phase3.Flow.run ~config design in
  (match result.Phase3.Flow.equivalence with
   | Some (Sim.Equivalence.Equivalent { shift }) ->
     Printf.printf "\n4-bit x 6 converted: stream-equivalent (shift %d), \
                    setup slack %.3f ns\n"
       shift result.Phase3.Flow.timing.Sta.Smo.worst_setup_slack
   | Some (Sim.Equivalence.Mismatch _) | None -> assert false)

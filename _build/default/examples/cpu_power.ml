(* CPU power comparison (the scenario behind the paper's Fig. 4):
   take the RISC-V-like core through the three design styles and measure
   power under two workload models, Dhrystone-like and Coremark-like.

   Run with: dune exec examples/cpu_power.exe *)

let () =
  let spec = Circuits.Cpu.riscv in
  let period = 1000.0 /. spec.Circuits.Cpu.frequency_mhz in
  Printf.printf "building %s (%d flip-flops, %.1f MHz)...\n%!"
    spec.Circuits.Cpu.name (Circuits.Cpu.num_flip_flops spec)
    spec.Circuits.Cpu.frequency_mhz;
  let original = Circuits.Cpu.make spec in
  let ff_clocks = Phase3.Flow.reference_clocks original ~period in
  let ms = Phase3.Master_slave.convert original in
  let config =
    { (Phase3.Flow.default_config ~period) with
      Phase3.Flow.verify_equivalence = false }
  in
  let flow = Phase3.Flow.run ~config original in
  let threep = flow.Phase3.Flow.final in
  let threep_clocks = Phase3.Flow.clocks_of config in
  Printf.printf "3-phase conversion: %d -> %d registers, ILP %.3f s\n%!"
    (Netlist.Stats.compute original).Netlist.Stats.registers
    (Netlist.Stats.compute threep).Netlist.Stats.registers
    flow.Phase3.Flow.assignment.Phase3.Assignment.solve_time_s;
  List.iter
    (fun program ->
      let workload = Circuits.Workload.Program program in
      Printf.printf "\n== workload: %s ==\n%!" (Circuits.Workload.name workload);
      let measure label design clocks =
        let p =
          Experiments.Runner.power_of design ~clocks ~workload ~cycles:256 ~seed:11
        in
        Printf.printf "  %-4s clock %.3f  seq %.3f  comb %.3f  total %.3f mW\n%!"
          label p.Power.Estimate.clock p.Power.Estimate.seq p.Power.Estimate.comb
          (Power.Estimate.total p);
        Power.Estimate.total p
      in
      let ff_total = measure "FF" original ff_clocks in
      let ms_total = measure "M-S" ms ff_clocks in
      let tp_total = measure "3-P" threep threep_clocks in
      Printf.printf "  3-phase saves %.1f%% vs FF, %.1f%% vs M-S\n"
        (100.0 *. (ff_total -. tp_total) /. ff_total)
        (100.0 *. (ms_total -. tp_total) /. ms_total))
    [Circuits.Workload.Dhrystone; Circuits.Workload.Coremark]

let write ?(input_delay = 0.10) ?(output_delay = 0.10)
    ?(clock_uncertainty = 0.05) d ~clocks =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let period = clocks.Sim.Clock_spec.period in
  add "# SDC for %s (written by threephase)\n" d.Netlist.Design.design_name;
  let defined_clocks =
    List.filter
      (fun port ->
        List.exists (fun (p, _) -> String.equal p port) clocks.Sim.Clock_spec.ports)
      d.Netlist.Design.clock_ports
  in
  List.iter
    (fun port ->
      match List.assoc_opt port clocks.Sim.Clock_spec.ports with
      | None -> ()
      | Some w ->
        let rise = w.Sim.Clock_spec.rise_at *. period in
        let fall = w.Sim.Clock_spec.fall_at *. period in
        add
          "create_clock -name %s -period %.4f -waveform {%.4f %.4f} [get_ports %s]\n"
          port period rise fall port)
    defined_clocks;
  (match defined_clocks with
   | _ :: _ :: _ ->
     add "set_clock_groups -physically_exclusive -group {%s}\n"
       (String.concat "} -group {" defined_clocks)
   | [] | [_] -> ());
  List.iter
    (fun port -> add "set_clock_uncertainty %.4f [get_clocks %s]\n"
        clock_uncertainty port)
    defined_clocks;
  let launch_clock = match defined_clocks with c :: _ -> c | [] -> "clk" in
  List.iter
    (fun (port, _) ->
      if not (Netlist.Design.is_clock_port d port) then
        add "set_input_delay %.4f -clock %s [get_ports %s]\n" input_delay
          launch_clock port)
    d.Netlist.Design.primary_inputs;
  List.iter
    (fun (port, _) ->
      add "set_output_delay %.4f -clock %s [get_ports %s]\n" output_delay
        launch_clock port)
    d.Netlist.Design.primary_outputs;
  Buffer.contents buf

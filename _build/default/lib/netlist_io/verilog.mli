(** Reader and writer for a structural Verilog subset: one module, scalar
    ports, [input]/[output]/[wire] declarations, cell instances with named
    port connections, and [assign] aliases for output ports and constant
    ties.

    {v
      // @clocks clk
      module top (clk, a, y);
        input clk; input a;
        output y;
        wire n1;
        DFF_X1 ff0 (.CK(clk), .D(a), .Q(n1));
        assign y = n1;
      endmodule
    v}

    Clock ports come from a [// @clocks p1 p2 ...] comment when present,
    from the [~clocks] argument otherwise, and finally from a built-in list
    of conventional names (clk, clock, p1, p2, p3, clkbar). *)

exception Error of string

val parse :
  ?clocks:string list -> library:Cell_lib.Library.t -> string -> Netlist.Design.t

(** [write d] renders the design; emits an [@clocks] header comment so the
    output re-parses with the same clock ports. *)
val write : Netlist.Design.t -> string

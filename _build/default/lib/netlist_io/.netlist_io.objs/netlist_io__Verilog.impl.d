lib/netlist_io/verilog.ml: Array Buffer Cell_lib Format Hashtbl List Netlist Printf Seq String

lib/netlist_io/sdc.ml: Buffer List Netlist Printf Sim String

lib/netlist_io/bench_format.ml: Buffer Cell_lib Format Hashtbl List Netlist Option Printf String

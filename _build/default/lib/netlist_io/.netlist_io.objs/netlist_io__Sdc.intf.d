lib/netlist_io/sdc.mli: Netlist Sim

lib/netlist_io/verilog.mli: Cell_lib Netlist

lib/netlist_io/bench_format.mli: Cell_lib Netlist

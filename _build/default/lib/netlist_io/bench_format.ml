exception Error of string

let error fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

type line =
  | L_input of string
  | L_output of string
  | L_gate of string * string * string list  (* target, op, args *)

let parse_line lineno raw =
  let line =
    match String.index_opt raw '#' with
    | Some i -> String.sub raw 0 i
    | None -> raw
  in
  let line = String.trim line in
  if String.equal line "" then None
  else
    let paren_call s =
      match String.index_opt s '(' with
      | None -> error "line %d: expected '(' in %S" lineno s
      | Some i ->
        let head = String.trim (String.sub s 0 i) in
        (match String.rindex_opt s ')' with
         | None -> error "line %d: missing ')' in %S" lineno s
         | Some j when j > i ->
           let inner = String.sub s (i + 1) (j - i - 1) in
           let args =
             String.split_on_char ',' inner
             |> List.map String.trim
             |> List.filter (fun a -> not (String.equal a ""))
           in
           (head, args)
         | Some _ -> error "line %d: malformed %S" lineno s)
    in
    match String.index_opt line '=' with
    | Some i ->
      let target = String.trim (String.sub line 0 i) in
      let rhs = String.sub line (i + 1) (String.length line - i - 1) in
      let op, args = paren_call rhs in
      Some (L_gate (target, String.uppercase_ascii op, args))
    | None ->
      let head, args = paren_call line in
      (match String.uppercase_ascii head, args with
       | "INPUT", [a] -> Some (L_input a)
       | "OUTPUT", [a] -> Some (L_output a)
       | _, _ -> error "line %d: unrecognised statement %S" lineno line)

let op_of_string lineno = function
  | "AND" -> Netlist.Gates.And
  | "OR" -> Netlist.Gates.Or
  | "NAND" -> Netlist.Gates.Nand
  | "NOR" -> Netlist.Gates.Nor
  | "XOR" -> Netlist.Gates.Xor
  | "XNOR" -> Netlist.Gates.Xnor
  | "NOT" | "INV" -> Netlist.Gates.Not
  | "BUF" | "BUFF" -> Netlist.Gates.Buf
  | other -> error "line %d: unknown gate %s" lineno other

let parse ~name ~library source =
  let lines =
    String.split_on_char '\n' source
    |> List.mapi (fun k raw -> (k + 1, parse_line (k + 1) raw))
    |> List.filter_map (fun (k, l) -> Option.map (fun l -> (k, l)) l)
  in
  let b = Netlist.Builder.create ~name ~library in
  let nets : (string, Netlist.Design.net) Hashtbl.t = Hashtbl.create 1024 in
  let has_dff =
    List.exists (function _, L_gate (_, "DFF", _) -> true | _, _ -> false) lines
  in
  let clock =
    if has_dff then Some (Netlist.Builder.add_input ~clock:true b "clock") else None
  in
  (* declare primary inputs *)
  List.iter
    (function
      | _, L_input a ->
        if Hashtbl.mem nets a then error "duplicate INPUT(%s)" a;
        Hashtbl.add nets a (Netlist.Builder.add_input b a)
      | _, (L_output _ | L_gate _) -> ())
    lines;
  (* declare gate targets *)
  List.iter
    (function
      | k, L_gate (target, _, _) ->
        if Hashtbl.mem nets target then error "line %d: %s multiply defined" k target;
        Hashtbl.add nets target (Netlist.Builder.fresh_net b target)
      | _, (L_input _ | L_output _) -> ())
    lines;
  let net_of k n =
    match Hashtbl.find_opt nets n with
    | Some net -> net
    | None -> error "line %d: undefined signal %s" k n
  in
  (* build gates *)
  let dff_count = ref 0 in
  List.iter
    (function
      | k, L_gate (target, "DFF", [d]) ->
        let ck = match clock with Some c -> c | None -> assert false in
        incr dff_count;
        ignore
          (Netlist.Builder.add_cell b
             (Printf.sprintf "%s_reg" target)
             "DFF_X1"
             [("CK", ck); ("D", net_of k d); ("Q", net_of k target)])
      | k, L_gate (_, "DFF", args) ->
        error "line %d: DFF takes one input, got %d" k (List.length args)
      | k, L_gate (target, op, args) ->
        let inputs = List.map (net_of k) args in
        if inputs = [] then error "line %d: gate %s has no inputs" k target;
        Netlist.Gates.emit b (op_of_string k op) inputs ~out:(net_of k target)
          ~prefix:target
      | _, (L_input _ | L_output _) -> ())
    lines;
  (* primary outputs *)
  List.iter
    (function
      | k, L_output a -> Netlist.Builder.add_output b a (net_of k a)
      | _, (L_input _ | L_gate _) -> ())
    lines;
  Netlist.Builder.freeze b

(* --- Writer --- *)

let bench_op_of_cell (c : Cell_lib.Cell.t) =
  match c.Cell_lib.Cell.kind with
  | Cell_lib.Cell.Flip_flop _ -> Some "DFF"
  | Cell_lib.Cell.Latch _ | Cell_lib.Cell.Clock_gate _ -> None
  | Cell_lib.Cell.Combinational ->
    let n = c.Cell_lib.Cell.name in
    let prefix p = String.length n >= String.length p && String.sub n 0 (String.length p) = p in
    if prefix "INV" then Some "NOT"
    else if prefix "BUF" || prefix "CLKBUF" then Some "BUFF"
    else if prefix "NAND" then Some "NAND"
    else if prefix "NOR" then Some "NOR"
    else if prefix "XNOR" then Some "XNOR"
    else if prefix "XOR" then Some "XOR"
    else if prefix "AND" then Some "AND"
    else if prefix "OR" then Some "OR"
    else None

let write d =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "# %s (written by threephase)\n" d.Netlist.Design.design_name;
  List.iter
    (fun (port, _) ->
      if not (Netlist.Design.is_clock_port d port) then add "INPUT(%s)\n" port)
    d.Netlist.Design.primary_inputs;
  List.iter (fun (port, _) -> add "OUTPUT(%s)\n" port) d.Netlist.Design.primary_outputs;
  for i = 0 to Netlist.Design.num_insts d - 1 do
    let c = Netlist.Design.cell d i in
    match bench_op_of_cell c with
    | None ->
      raise (Error (Printf.sprintf "cell %s of instance %s has no .bench equivalent"
                      c.Cell_lib.Cell.name (Netlist.Design.inst_name d i)))
    | Some "DFF" ->
      let q = match Netlist.Design.q_net_of d i with Some q -> q | None -> assert false in
      let dnet =
        match Netlist.Design.data_net_of d i with Some x -> x | None -> assert false
      in
      add "%s = DFF(%s)\n" (Netlist.Design.net_name d q) (Netlist.Design.net_name d dnet)
    | Some op ->
      let out =
        match Netlist.Design.output_nets d i with
        | [o] -> o
        | [] | _ :: _ :: _ ->
          raise (Error (Printf.sprintf "instance %s must drive exactly one net"
                          (Netlist.Design.inst_name d i)))
      in
      let ins = Netlist.Design.input_nets d i in
      add "%s = %s(%s)\n" (Netlist.Design.net_name d out) op
        (String.concat ", " (List.map (Netlist.Design.net_name d) ins))
  done;
  Buffer.contents buf

(** Reader and writer for the ISCAS89 [.bench] netlist format.

    The format lists primary inputs and outputs plus gate assignments:
    {v
      INPUT(G0)
      OUTPUT(G17)
      G10 = DFF(G14)
      G11 = NAND(G0, G10)
    v}
    Supported gate ops: AND, OR, NAND, NOR, XOR, XNOR, NOT, BUF/BUFF, DFF.
    DFFs are clocked by an implicit global clock; parsing creates a clock
    port named ["clock"].  Gates with more inputs than any library cell are
    decomposed into trees via {!Netlist.Gates}. *)

exception Error of string

(** [parse ~name ~library source] builds a design from [.bench] text. *)
val parse : name:string -> library:Cell_lib.Library.t -> string -> Netlist.Design.t

(** [write d] renders a design back to [.bench] text.  Raises {!Error}
    when the design uses cells that have no [.bench] equivalent (muxes,
    latches, clock gates...). *)
val write : Netlist.Design.t -> string

(** Writer for Synopsys-design-constraints (SDC) style files describing
    the clocking of a design: one [create_clock] per clock port with the
    waveform taken from a {!Sim.Clock_spec.t} (the three-phase edges of
    the converted design, or the single clock of the original), plus
    input/output delays and the physically-exclusive clock grouping the
    three phases require.  This is the hand-off artifact a downstream
    place-and-route run would consume. *)

val write :
  ?input_delay:float ->
  ?output_delay:float ->
  ?clock_uncertainty:float ->
  Netlist.Design.t -> clocks:Sim.Clock_spec.t -> string

(** 0/1 integer linear programs.

    This mirrors the slice of Gurobi's API the paper's flow needs: binary
    variables, sparse linear constraints, a linear objective. *)

type t = {
  num_vars : int;
  var_names : string array;
  sense : Lp.Problem.sense;
  objective : (int * float) list;
  constraints : Lp.Problem.constr list;
}

type solution = {
  values : bool array;
  objective : float;
  optimal : bool;     (** proven optimal (gap closed) *)
  best_bound : float; (** dual bound at termination *)
}

val make :
  var_names:string array ->
  sense:Lp.Problem.sense ->
  objective:(int * float) list ->
  Lp.Problem.constr list -> t

(** The LP relaxation: same constraints plus [x_j <= 1] bounds. *)
val relaxation : t -> Lp.Problem.t

val objective_value : t -> bool array -> float

(** [feasible t values] checks every constraint. *)
val feasible : t -> bool array -> bool

(** Exhaustive 0/1 enumeration — the reference oracle for testing the real
    solvers on small instances. *)

(** [solve t] enumerates all assignments.  Returns [None] when infeasible.
    Raises [Invalid_argument] above 24 variables. *)
val solve : Model.t -> Model.solution option

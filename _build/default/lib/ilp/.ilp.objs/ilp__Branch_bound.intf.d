lib/ilp/branch_bound.mli: Model

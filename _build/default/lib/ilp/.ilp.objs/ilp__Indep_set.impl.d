lib/ilp/indep_set.ml: Array Fun Hashtbl List Queue

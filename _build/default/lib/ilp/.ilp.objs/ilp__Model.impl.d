lib/ilp/model.ml: Array Float List Lp

lib/ilp/model.mli: Lp

lib/ilp/indep_set.mli:

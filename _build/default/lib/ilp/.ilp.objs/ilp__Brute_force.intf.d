lib/ilp/brute_force.mli: Model

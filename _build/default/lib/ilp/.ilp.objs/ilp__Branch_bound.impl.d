lib/ilp/branch_bound.ml: Array Float Lp Model Option

lib/ilp/brute_force.ml: Array Lp Model Option

type stats = {
  nodes_explored : int;
  lp_solves : int;
}

let integrality_eps = 1e-6

let is_integral x =
  Array.for_all (fun v -> Float.abs (v -. Float.round v) <= integrality_eps) x

let most_fractional x =
  let best = ref None in
  Array.iteri
    (fun j v ->
      let frac = Float.abs (v -. Float.round v) in
      if frac > integrality_eps then
        match !best with
        | None -> best := Some (j, frac)
        | Some (_, f) -> if frac > f then best := Some (j, frac))
    x;
  Option.map fst !best

let solve ?(node_budget = 200_000) (t : Model.t) =
  let relax = Model.relaxation t in
  let better a b =
    match t.Model.sense with
    | Lp.Problem.Maximize -> a > b +. 1e-9
    | Lp.Problem.Minimize -> a < b -. 1e-9
  in
  let bound_can_beat bound incumbent =
    match t.Model.sense with
    | Lp.Problem.Maximize -> bound > incumbent +. 1e-9
    | Lp.Problem.Minimize -> bound < incumbent -. 1e-9
  in
  let incumbent = ref None in
  let nodes = ref 0 and lps = ref 0 and exhausted = ref false in
  let root_bound = ref None in
  (* fixed.(j) = -1 free, 0 fixed to 0, 1 fixed to 1 *)
  let fixed = Array.make t.Model.num_vars (-1) in
  let try_update_incumbent values =
    if Model.feasible t values then begin
      let obj = Model.objective_value t values in
      match !incumbent with
      | None -> incumbent := Some (Array.copy values, obj)
      | Some (_, cur) -> if better obj cur then incumbent := Some (Array.copy values, obj)
    end
  in
  let lp_with_fixing () =
    let fixing = ref [] in
    Array.iteri
      (fun j f ->
        if f >= 0 then
          fixing := Lp.Problem.constr [(j, 1.0)] Lp.Problem.Eq (float_of_int f) :: !fixing)
      fixed;
    { relax with Lp.Problem.constraints = !fixing @ relax.Lp.Problem.constraints }
  in
  let rec explore depth =
    if !nodes >= node_budget then exhausted := true
    else begin
      incr nodes;
      incr lps;
      match Lp.Simplex.solve (lp_with_fixing ()) with
      | Lp.Simplex.Infeasible -> ()
      | Lp.Simplex.Unbounded ->
        (* binary variables are bounded; cannot happen with the relaxation *)
        assert false
      | Lp.Simplex.Optimal { x; objective = bound } ->
        if depth = 0 then root_bound := Some bound;
        let prune =
          match !incumbent with
          | None -> false
          | Some (_, cur) -> not (bound_can_beat bound cur)
        in
        if not prune then begin
          if is_integral x then
            try_update_incumbent (Array.map (fun v -> Float.round v >= 0.5) x)
          else begin
            (* rounding heuristic to seed the incumbent *)
            if !incumbent = None then
              try_update_incumbent (Array.map (fun v -> v >= 0.5) x);
            match most_fractional x with
            | None -> ()
            | Some j ->
              let first, second = if x.(j) >= 0.5 then 1, 0 else 0, 1 in
              fixed.(j) <- first;
              explore (depth + 1);
              fixed.(j) <- second;
              explore (depth + 1);
              fixed.(j) <- -1
          end
        end
    end
  in
  explore 0;
  match !incumbent with
  | None ->
    if !exhausted then None  (* found nothing within budget *)
    else None
  | Some (values, objective) ->
    let optimal = not !exhausted in
    let best_bound =
      if optimal then objective
      else Option.value ~default:objective !root_bound
    in
    Some
      ({ Model.values; objective; optimal; best_bound },
       { nodes_explored = !nodes; lp_solves = !lps })

type t = {
  num_vars : int;
  var_names : string array;
  sense : Lp.Problem.sense;
  objective : (int * float) list;
  constraints : Lp.Problem.constr list;
}

type solution = {
  values : bool array;
  objective : float;
  optimal : bool;
  best_bound : float;
}

let make ~var_names ~sense ~objective constraints =
  { num_vars = Array.length var_names; var_names; sense; objective; constraints }

let relaxation t =
  let bounds =
    List.init t.num_vars (fun j -> Lp.Problem.constr [(j, 1.0)] Lp.Problem.Le 1.0)
  in
  Lp.Problem.make ~num_vars:t.num_vars ~sense:t.sense ~objective:t.objective
    (bounds @ t.constraints)

let to_floats values = Array.map (fun b -> if b then 1.0 else 0.0) values

let objective_value (t : t) values =
  List.fold_left
    (fun acc (j, a) -> if values.(j) then acc +. a else acc)
    0.0 t.objective

let feasible t values =
  let x = to_floats values in
  List.for_all
    (fun (c : Lp.Problem.constr) ->
      let lhs =
        List.fold_left (fun acc (j, a) -> acc +. (a *. x.(j))) 0.0 c.Lp.Problem.coeffs
      in
      match c.Lp.Problem.relation with
      | Lp.Problem.Le -> lhs <= c.Lp.Problem.rhs +. 1e-9
      | Lp.Problem.Ge -> lhs >= c.Lp.Problem.rhs -. 1e-9
      | Lp.Problem.Eq -> Float.abs (lhs -. c.Lp.Problem.rhs) <= 1e-9)
    t.constraints

(** LP-relaxation-based branch and bound for binary programs.

    Exact on the sizes the conversion ILP produces for small and medium
    designs; larger designs use the combinatorial solver in {!Indep_set}
    via the reduction implemented by [Phase3.Assignment].  A node budget
    bounds the search; when exhausted, the incumbent is returned with
    [optimal = false] and the root relaxation as [best_bound]. *)

type stats = {
  nodes_explored : int;
  lp_solves : int;
}

(** [solve ?node_budget t] returns [None] when the model is infeasible. *)
val solve : ?node_budget:int -> Model.t -> (Model.solution * stats) option

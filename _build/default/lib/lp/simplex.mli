(** A dense two-phase primal simplex solver.

    Suitable for the small and medium LPs produced by the conversion ILP's
    branch-and-bound relaxations.  Bland's rule guards against cycling. *)

type outcome =
  | Optimal of { x : float array; objective : float }
  | Infeasible
  | Unbounded

val solve : Problem.t -> outcome

type relation = Le | Ge | Eq

type constr = {
  coeffs : (int * float) list;
  relation : relation;
  rhs : float;
}

type sense = Maximize | Minimize

type t = {
  num_vars : int;
  objective : (int * float) list;
  sense : sense;
  constraints : constr list;
}

let make ~num_vars ~sense ~objective constraints =
  { num_vars; objective; sense; constraints }

let constr coeffs relation rhs = { coeffs; relation; rhs }

let dot coeffs x =
  List.fold_left (fun acc (j, a) -> acc +. (a *. x.(j))) 0.0 coeffs

let objective_value t x = dot t.objective x

let feasible ?(eps = 1e-6) t x =
  Array.for_all (fun v -> v >= -.eps) x
  && List.for_all
       (fun c ->
         let lhs = dot c.coeffs x in
         match c.relation with
         | Le -> lhs <= c.rhs +. eps
         | Ge -> lhs >= c.rhs -. eps
         | Eq -> Float.abs (lhs -. c.rhs) <= eps)
       t.constraints

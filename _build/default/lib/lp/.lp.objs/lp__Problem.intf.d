lib/lp/problem.mli:

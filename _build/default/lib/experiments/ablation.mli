(** Ablation studies for the design choices DESIGN.md calls out:
    solver choice, the clock-gating mechanisms of Section IV-D, retiming,
    and the DDCG fanout limit (the paper picks 32). *)

(** Exact solvers vs greedy warm start: inserted-latch counts and time. *)
val solver : ?benches:string list -> unit -> Report.Table.t

(** Clock-gating mechanisms switched on one at a time. *)
val clock_gating : ?bench:string -> unit -> Report.Table.t

(** Retiming on/off: worst setup slack and combinational area. *)
val retiming : ?bench:string -> unit -> Report.Table.t

(** DDCG maximum fanout sweep. *)
val ddcg_fanout : ?bench:string -> ?fanouts:int list -> unit -> Report.Table.t

(** Clock-skew tolerance (the robustness the paper's conclusions point to
    as future work): hold-fix buffer demand of the three design styles
    across a skew sweep. *)
val skew_tolerance : ?bench:string -> ?skews:float list -> unit -> Report.Table.t

(** Multi-corner (PVT) robustness: setup slack and hold-buffer demand of
    the three styles at fast/typical/slow corners — the quantification
    the paper's conclusion lists as future work. *)
val pvt : ?bench:string -> unit -> Report.Table.t

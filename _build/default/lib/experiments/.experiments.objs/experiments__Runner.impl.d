lib/experiments/runner.ml: Circuits Format Netlist Phase3 Physical Power Sim Sta Unix

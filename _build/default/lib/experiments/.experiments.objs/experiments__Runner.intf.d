lib/experiments/runner.mli: Circuits Netlist Phase3 Power Sim

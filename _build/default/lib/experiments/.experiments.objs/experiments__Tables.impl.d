lib/experiments/tables.ml: Array Cell_lib Circuits Float List Netlist Phase3 Power Printf Report Runner Sim Sta String

lib/experiments/ablation.ml: Circuits Float List Netlist Phase3 Power Printf Report Runner Sim Sta

lib/experiments/tables.mli: Report Runner

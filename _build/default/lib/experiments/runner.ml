type variant = {
  design : Netlist.Design.t;
  regs : int;
  cell_area : float;
  power : Power.Estimate.breakdown;
  wirelength : float;
  clock_buffers : int;
  runtime_s : float;
}

type t = {
  bench : Circuits.Suite.benchmark;
  ff : variant;
  ms : variant;
  threep : variant;
  flow : Phase3.Flow.result;
  ilp_time_s : float;
  total_time_s : float;
}

let now () = Unix.gettimeofday ()

let evaluate design ~clocks ~workload ~cycles ~seed =
  let design, _hold = Sta.Hold_fix.run design ~clocks in
  let impl = Physical.Implement.run design in
  let engine = Sim.Engine.create design ~clocks in
  let stim = Circuits.Workload.stimulus workload ~seed ~cycles design in
  ignore (Sim.Engine.run_stream engine stim);
  let activity = (Sim.Engine.toggles engine, Sim.Engine.cycles engine) in
  let detail =
    Power.Estimate.run impl ~activity ~period:clocks.Sim.Clock_spec.period
  in
  (impl, detail.Power.Estimate.overall)

let power_of design ~clocks ~workload ~cycles ~seed =
  snd (evaluate design ~clocks ~workload ~cycles ~seed)

let variant_of design ~clocks ~workload ~cycles ~seed ~t0 =
  let impl, power = evaluate design ~clocks ~workload ~cycles ~seed in
  let stats = Netlist.Stats.compute design in
  { design;
    regs = stats.Netlist.Stats.registers;
    cell_area = impl.Physical.Implement.total_area;
    power;
    wirelength = impl.Physical.Implement.total_wirelength;
    clock_buffers =
      impl.Physical.Implement.clock_tree.Physical.Clock_tree.total_buffers;
    runtime_s = now () -. t0 }

let run ?(cycles = 384) ?(verify = true) (bench : Circuits.Suite.benchmark) =
  let total0 = now () in
  let period = bench.Circuits.Suite.period_ns in
  let workload = bench.Circuits.Suite.workload in
  let seed = 2024 in
  let original = bench.Circuits.Suite.build () in
  (* flip-flop reference *)
  let t0 = now () in
  let ff_clocks = Phase3.Flow.reference_clocks original ~period in
  let ff = variant_of original ~clocks:ff_clocks ~workload ~cycles ~seed ~t0 in
  (* master-slave baseline *)
  let t0 = now () in
  let ms_design = Phase3.Master_slave.convert original in
  (if verify then
     let stim = Circuits.Workload.stimulus workload ~seed:(seed + 1) ~cycles:128 original in
     match
       Sim.Equivalence.check ~reference:original ~dut:ms_design
         ~reference_clocks:ff_clocks ~dut_clocks:ff_clocks ~stimulus:stim ()
     with
     | Sim.Equivalence.Equivalent _ -> ()
     | Sim.Equivalence.Mismatch m ->
       failwith
         (Format.asprintf "master-slave conversion of %s not equivalent: %a"
            bench.Circuits.Suite.bench_name Sim.Equivalence.pp_mismatch m));
  let ms = variant_of ms_design ~clocks:ff_clocks ~workload ~cycles ~seed ~t0 in
  (* 3-phase flow *)
  let t0 = now () in
  let config =
    { (Phase3.Flow.default_config ~period) with
      Phase3.Flow.verify_equivalence = verify;
      activity_cycles = cycles }
  in
  let flow = Phase3.Flow.run ~config original in
  let threep_clocks = Phase3.Flow.clocks_of config in
  let threep =
    variant_of flow.Phase3.Flow.final ~clocks:threep_clocks ~workload ~cycles
      ~seed ~t0
  in
  { bench;
    ff;
    ms;
    threep;
    flow;
    ilp_time_s = flow.Phase3.Flow.assignment.Phase3.Assignment.solve_time_s;
    total_time_s = now () -. total0 }

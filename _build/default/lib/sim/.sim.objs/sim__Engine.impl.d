lib/sim/engine.ml: Array Cell_lib Clock_spec Hashtbl List Logic Netlist Option Printf Queue String

lib/sim/engine.mli: Clock_spec Logic Netlist

lib/sim/logic.ml: Cell_lib Format

lib/sim/equivalence.mli: Clock_spec Format Logic Netlist Stimulus

lib/sim/equivalence.ml: Array Engine Format List Logic

lib/sim/init_state.ml: Array Cell_lib Hashtbl Logic Netlist

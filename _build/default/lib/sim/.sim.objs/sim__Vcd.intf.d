lib/sim/vcd.mli: Engine Netlist Stimulus

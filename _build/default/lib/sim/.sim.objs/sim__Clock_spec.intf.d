lib/sim/clock_spec.mli:

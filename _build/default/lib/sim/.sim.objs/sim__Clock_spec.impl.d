lib/sim/clock_spec.ml: Float List Option String

lib/sim/activity.ml: Array Buffer Engine List Netlist Printf String

lib/sim/stimulus.mli: Logic Netlist

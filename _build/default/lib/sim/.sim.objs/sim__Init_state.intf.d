lib/sim/init_state.mli: Logic Netlist

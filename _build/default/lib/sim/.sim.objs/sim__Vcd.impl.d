lib/sim/vcd.ml: Array Buffer Char Engine List Logic Netlist Option Printf String

lib/sim/stimulus.ml: Int64 List Logic Netlist

lib/sim/logic.mli: Cell_lib Format

lib/sim/activity.mli: Engine Netlist

(** Multi-phase clock waveform descriptions.

    Each clock port has one high pulse per period, from [rise_at] to
    [fall_at] (fractions of the period, [0 <= rise_at < fall_at <= 1]).
    The 3-phase spec follows the SMO convention of the paper: phase [p_i]
    is transparent during [(e_{i-1}, e_i]] with closing edges
    [e_1 = T/3], [e_2 = 2T/3], [e_3 = T]. *)

type waveform = {
  rise_at : float;  (** fraction of the period in [0, 1) *)
  fall_at : float;  (** fraction of the period in (rise_at, 1] *)
}

type t = {
  period : float;   (** ns *)
  ports : (string * waveform) list;
}

(** Single clock, 50% duty: high during [0, T/2). *)
val single : period:float -> port:string -> t

(** Master-slave pair: [clk] high during [0, T/2) (slave transparent),
    [clkbar] high during [T/2, T) (master transparent). *)
val master_slave : period:float -> clk:string -> clkbar:string -> t

(** Three non-overlapping phases with closing edges at T/3, 2T/3 and T.
    Each phase opens [gap] (fraction of the period, default 0.04) after
    the previous phase closes — the "small gap between p1 rising and p3
    falling" the paper relies on for hold robustness of the clock-gate
    modifications. *)
val three_phase :
  ?gap:float -> period:float -> p1:string -> p2:string -> p3:string -> unit -> t

(** The closing (falling-edge) time of a port within the period, ns. *)
val closing_time : t -> string -> float option

(** Event times within one period, sorted ascending: at each time, the
    listed ports take the given level. *)
val events : t -> (float * (string * bool) list) list

(** Level of a port at time [t] (absolute, any period). *)
val level_at : t -> string -> float -> bool option

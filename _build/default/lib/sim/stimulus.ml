type t = (string * Logic.t) list list

(* A small splitmix-style deterministic PRNG so streams do not depend on
   the global Random state. *)
module Prng = struct
  type s = { mutable x : int64 }

  let create seed = { x = Int64.of_int (seed * 2654435769 + 1) }

  let next s =
    s.x <- Int64.add s.x 0x9E3779B97F4A7C15L;
    let z = s.x in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
    Int64.logxor z (Int64.shift_right_logical z 31)

  let float s =
    let v = Int64.to_float (Int64.shift_right_logical (next s) 11) in
    v /. 9007199254740992.0  (* 2^53 *)

  let bool s = float s < 0.5
end

let drive ~seed ~cycles inputs toggle_prob_of =
  let rng = Prng.create seed in
  let current =
    List.map (fun name -> (name, ref (Logic.of_bool (Prng.bool rng)))) inputs
  in
  List.init cycles (fun cycle ->
      List.map
        (fun (name, v) ->
          if cycle > 0 && Prng.float rng < toggle_prob_of ~cycle ~name then
            v := Logic.lnot !v;
          (name, !v))
        current)

let random ~seed ~cycles ~toggle_probability inputs =
  drive ~seed ~cycles inputs (fun ~cycle:_ ~name:_ -> toggle_probability)

let profiled ~seed ~cycles profile inputs =
  drive ~seed ~cycles inputs (fun ~cycle:_ ~name -> profile name)

let bursty ~seed ~cycles ~burst_len ~idle_len ~toggle_probability inputs =
  let span = burst_len + idle_len in
  drive ~seed ~cycles inputs (fun ~cycle ~name:_ ->
      if span = 0 || cycle mod span < burst_len then toggle_probability
      else 0.01)

let constant ~cycles v inputs =
  List.init cycles (fun _ -> List.map (fun name -> (name, v)) inputs)

let inputs_of d =
  List.filter_map
    (fun (p, _) ->
      if Netlist.Design.is_clock_port d p then None else Some p)
    d.Netlist.Design.primary_inputs

type t = {
  engine : Engine.t;
  nets : (string * Netlist.Design.net) list;
  ids : string array;                       (* VCD short identifiers *)
  mutable samples : Logic.t array list;     (* reversed *)
}

(* VCD identifier characters: printable ASCII 33..126 *)
let short_id k =
  let base = 94 in
  let rec go k acc =
    let c = Char.chr (33 + (k mod base)) in
    let acc = String.make 1 c ^ acc in
    if k < base then acc else go ((k / base) - 1) acc
  in
  go k ""

let create engine ~nets =
  let design = Engine.design engine in
  let clock_nets =
    List.filter_map
      (fun port ->
        Option.map (fun n -> (port, n)) (Netlist.Design.find_input design port))
      design.Netlist.Design.clock_ports
  in
  let all = clock_nets @ nets in
  { engine;
    nets = all;
    ids = Array.of_list (List.mapi (fun k _ -> short_id k) all);
    samples = [] }

let create_default engine =
  let design = Engine.design engine in
  let pis =
    List.filter_map
      (fun (p, n) ->
        if Netlist.Design.is_clock_port design p then None else Some (p, n))
      design.Netlist.Design.primary_inputs
  in
  let pos = design.Netlist.Design.primary_outputs in
  let regs =
    List.filter_map
      (fun i ->
        Option.map
          (fun q -> (Netlist.Design.inst_name design i, q))
          (Netlist.Design.q_net_of design i))
      (Netlist.Design.sequential_insts design)
  in
  create engine ~nets:(pis @ pos @ regs)

let sample t =
  let values =
    Array.of_list
      (List.map (fun (_, n) -> Engine.net_value t.engine n) t.nets)
  in
  t.samples <- values :: t.samples

let sanitize name =
  String.map
    (fun c ->
      if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
         || (c >= '0' && c <= '9') || c = '_' then c
      else '_')
    name

let render ?(timescale = "1ns") ?(period_ticks = 10) t =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "$date reproduction run $end\n";
  add "$version threephase simulator $end\n";
  add "$timescale %s $end\n" timescale;
  add "$scope module %s $end\n"
    (sanitize (Engine.design t.engine).Netlist.Design.design_name);
  List.iteri
    (fun k (name, _) ->
      add "$var wire 1 %s %s $end\n" t.ids.(k) (sanitize name))
    t.nets;
  add "$upscope $end\n$enddefinitions $end\n";
  let samples = Array.of_list (List.rev t.samples) in
  let n = List.length t.nets in
  let prev = Array.make n None in
  Array.iteri
    (fun cycle values ->
      let changes = ref [] in
      for k = n - 1 downto 0 do
        let v = values.(k) in
        if prev.(k) <> Some v then begin
          prev.(k) <- Some v;
          changes := (k, v) :: !changes
        end
      done;
      if !changes <> [] then begin
        add "#%d\n" (cycle * period_ticks);
        List.iter
          (fun (k, v) -> add "%c%s\n" (Logic.to_char v) t.ids.(k))
          !changes
      end)
    samples;
  add "#%d\n" (Array.length samples * period_ticks);
  Buffer.contents buf

let run_and_dump ?timescale engine stimulus =
  let t = create_default engine in
  List.iter
    (fun cycle ->
      ignore (Engine.run_cycle engine cycle);
      sample t)
    stimulus;
  render ?timescale t

(** Three-valued simulation logic: 0, 1 and X (unknown). *)

type t = L0 | L1 | LX

val equal : t -> t -> bool

val of_bool : bool -> t

(** [to_bool v] is [None] for [LX]. *)
val to_bool : t -> bool option

val lnot : t -> t

val land_ : t -> t -> t

val lor_ : t -> t -> t

val lxor_ : t -> t -> t

(** Evaluate a cell function over logic values supplied per pin name. *)
val eval_expr : (string -> t) -> Cell_lib.Expr.t -> t

(** [is_edge ~from_ ~to_] — a clean 0 -> 1 transition. *)
val rising : from_:t -> to_:t -> bool

val falling : from_:t -> to_:t -> bool

val to_char : t -> char

val pp : Format.formatter -> t -> unit

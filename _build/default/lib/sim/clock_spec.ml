type waveform = {
  rise_at : float;
  fall_at : float;
}

type t = {
  period : float;
  ports : (string * waveform) list;
}

let single ~period ~port =
  { period; ports = [(port, { rise_at = 0.0; fall_at = 0.5 })] }

let master_slave ~period ~clk ~clkbar =
  { period;
    ports = [
      (clk, { rise_at = 0.0; fall_at = 0.5 });
      (clkbar, { rise_at = 0.5; fall_at = 1.0 });
    ] }

let three_phase ?(gap = 0.04) ~period ~p1 ~p2 ~p3 () =
  { period;
    ports = [
      (p1, { rise_at = gap; fall_at = 1.0 /. 3.0 });
      (p2, { rise_at = (1.0 /. 3.0) +. gap; fall_at = 2.0 /. 3.0 });
      (p3, { rise_at = (2.0 /. 3.0) +. gap; fall_at = 1.0 });
    ] }

let closing_time t port =
  Option.map
    (fun (_, w) -> w.fall_at *. t.period)
    (List.find_opt (fun (p, _) -> String.equal p port) t.ports)

let events t =
  let add acc time port level =
    let time =
      (* normalise 1.0 to 0.0: a fall at the period boundary happens at the
         start of the next period *)
      if time >= 1.0 then time -. 1.0 else time
    in
    (time, (port, level)) :: acc
  in
  let raw =
    List.fold_left
      (fun acc (port, w) ->
        add (add acc w.rise_at port true) w.fall_at port false)
      [] t.ports
  in
  let sorted = List.sort (fun (a, _) (b, _) -> compare a b) raw in
  (* group equal times *)
  let rec group = function
    | [] -> []
    | (time, change) :: rest ->
      let same, others =
        List.partition (fun (t2, _) -> Float.abs (t2 -. time) < 1e-9) rest
      in
      (time *. t.period, change :: List.map snd same) :: group others
  in
  group sorted

let level_at t port time =
  Option.map
    (fun (_, w) ->
      let frac = Float.rem (time /. t.period) 1.0 in
      let frac = if frac < 0.0 then frac +. 1.0 else frac in
      let fall = if w.fall_at >= 1.0 then 1.0 else w.fall_at in
      frac >= w.rise_at && frac < fall)
    (List.find_opt (fun (p, _) -> String.equal p port) t.ports)

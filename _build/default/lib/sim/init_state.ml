module Design = Netlist.Design

type t = {
  design : Design.t;
  memo : (Design.net, Logic.t) Hashtbl.t;
}

let create design = { design; memo = Hashtbl.create 256 }

let rec net_value t net =
  match Hashtbl.find_opt t.memo net with
  | Some v -> v
  | None ->
    Hashtbl.replace t.memo net Logic.LX;  (* combinational-cycle guard *)
    let d = t.design in
    let v =
      match d.Design.net_driver.(net) with
      | Design.Driven_const b -> Logic.of_bool b
      | Design.Driven_by_input _ -> Logic.L0
      | Design.Undriven -> Logic.LX
      | Design.Driven_by (i, pin) ->
        let c = Design.cell d i in
        (match c.Cell_lib.Cell.kind with
         | Cell_lib.Cell.Flip_flop _ | Cell_lib.Cell.Latch _ -> Logic.L0
         | Cell_lib.Cell.Clock_gate _ -> Logic.LX
         | Cell_lib.Cell.Combinational ->
           (match Cell_lib.Cell.find_pin c pin with
            | Some { Cell_lib.Cell.func = Some f; _ } ->
              Logic.eval_expr
                (fun pname ->
                  match Design.pin_net_opt d i pname with
                  | Some n -> net_value t n
                  | None -> Logic.LX)
                f
            | Some _ | None -> Logic.LX))
    in
    Hashtbl.replace t.memo net v;
    v

type t = L0 | L1 | LX

let equal a b = a = b

let of_bool b = if b then L1 else L0

let to_bool = function L0 -> Some false | L1 -> Some true | LX -> None

let lnot = function L0 -> L1 | L1 -> L0 | LX -> LX

let land_ a b =
  match a, b with
  | L0, _ | _, L0 -> L0
  | L1, L1 -> L1
  | LX, (L1 | LX) | L1, LX -> LX

let lor_ a b =
  match a, b with
  | L1, _ | _, L1 -> L1
  | L0, L0 -> L0
  | LX, (L0 | LX) | L0, LX -> LX

let lxor_ a b =
  match a, b with
  | LX, _ | _, LX -> LX
  | L0, L0 | L1, L1 -> L0
  | L0, L1 | L1, L0 -> L1

let rec eval_expr env = function
  | Cell_lib.Expr.Const b -> of_bool b
  | Cell_lib.Expr.Pin p -> env p
  | Cell_lib.Expr.Not e -> lnot (eval_expr env e)
  | Cell_lib.Expr.And (a, b) -> land_ (eval_expr env a) (eval_expr env b)
  | Cell_lib.Expr.Or (a, b) -> lor_ (eval_expr env a) (eval_expr env b)
  | Cell_lib.Expr.Xor (a, b) -> lxor_ (eval_expr env a) (eval_expr env b)

let rising ~from_ ~to_ = from_ = L0 && to_ = L1

let falling ~from_ ~to_ = from_ = L1 && to_ = L0

let to_char = function L0 -> '0' | L1 -> '1' | LX -> 'x'

let pp ppf v = Format.pp_print_char ppf (to_char v)

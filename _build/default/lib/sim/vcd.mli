(** Value-change-dump (VCD) writing: record selected nets of a running
    {!Engine} and render an IEEE-1364-style VCD file for waveform viewers.

    Sampling is per clock cycle (one timestamp per {!Engine.run_cycle});
    intra-cycle phase detail is visible through the clock port nets, which
    are sampled at their end-of-cycle levels. *)

type t

(** [create engine ~nets] starts recording the given nets (plus all clock
    ports).  Net names become VCD wire identifiers. *)
val create :
  Engine.t -> nets:(string * Netlist.Design.net) list -> t

(** Convenience: record all primary inputs, outputs and register outputs. *)
val create_default : Engine.t -> t

(** Sample the current values (call once per simulated cycle, after
    {!Engine.run_cycle}). *)
val sample : t -> unit

(** Render the dump; [timescale] defaults to "1ns", one cycle per
    [period_ticks] (default 10) timescale units. *)
val render : ?timescale:string -> ?period_ticks:int -> t -> string

(** [run_and_dump engine stimulus] = run the stream, sampling each cycle,
    and render. *)
val run_and_dump :
  ?timescale:string -> Engine.t -> Stimulus.t -> string

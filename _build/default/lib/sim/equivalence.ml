type mismatch = {
  cycle : int;
  port : string;
  expected : Logic.t;
  got : Logic.t;
}

type verdict =
  | Equivalent of { shift : int }
  | Mismatch of mismatch

let pp_mismatch ppf m =
  Format.fprintf ppf "cycle %d port %s: expected %a, got %a"
    m.cycle m.port Logic.pp m.expected Logic.pp m.got

let sample_mismatch cycle ref_sample dut_sample =
  List.fold_left
    (fun acc (port, expected) ->
      match acc with
      | Some _ -> acc
      | None ->
        (match List.assoc_opt port dut_sample with
         | None -> Some { cycle; port; expected; got = Logic.LX }
         | Some got ->
           if Logic.equal expected got then None
           else Some { cycle; port; expected; got }))
    None ref_sample

let try_shift ~warmup shift ref_stream dut_stream =
  (* dut lags the reference by [shift] cycles *)
  let ref_arr = Array.of_list ref_stream in
  let dut_arr = Array.of_list dut_stream in
  let n = min (Array.length ref_arr) (Array.length dut_arr - shift) in
  let rec go cycle =
    if cycle >= n then Ok ()
    else if cycle < warmup then go (cycle + 1)
    else
      match sample_mismatch cycle ref_arr.(cycle) dut_arr.(cycle + shift) with
      | None -> go (cycle + 1)
      | Some m -> Error m
  in
  go 0

let compare_streams ~warmup ~max_shift ref_stream dut_stream =
  let rec attempt shift first_error =
    if shift > max_shift then
      match first_error with
      | Some m -> Mismatch m
      | None ->
        Mismatch { cycle = 0; port = "?"; expected = Logic.LX; got = Logic.LX }
    else
      match try_shift ~warmup shift ref_stream dut_stream with
      | Ok () -> Equivalent { shift }
      | Error m ->
        let first_error = match first_error with None -> Some m | Some _ -> first_error in
        attempt (shift + 1) first_error
  in
  attempt 0 None

let check ?(warmup = 8) ?(max_shift = 2) ~reference ~dut ~reference_clocks
    ~dut_clocks ~stimulus () =
  let ref_engine = Engine.create reference ~clocks:reference_clocks in
  let dut_engine = Engine.create dut ~clocks:dut_clocks in
  let ref_stream = Engine.run_stream ref_engine stimulus in
  let dut_stream = Engine.run_stream dut_engine stimulus in
  compare_streams ~warmup ~max_shift ref_stream dut_stream

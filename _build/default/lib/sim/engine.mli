(** Event-driven gate-level simulator.

    The engine is cycle-oriented: {!run_cycle} applies primary-input values
    just after the cycle-start clock event, then processes every clock
    event of the period.  Within an event, flip-flop captures are
    simultaneous (all rising-edge FFs sample their pre-event data), then
    the data network settles event-driven.  Latches are level-sensitive:
    they follow their data input while transparent and hold while opaque.
    Integrated clock-gating cells model the paper's three styles, including
    the M1 variant whose internal latch is clocked by [p3] and the
    latch-less M2 variant (which therefore propagates enable glitches —
    exactly the hazard the paper's condition rules out).

    Per-net toggle counts are accumulated for activity-driven clock gating
    and power estimation. *)

type t

exception Oscillation of string
(** Raised when the data network fails to settle (a combinational loop
    through transparent latches). *)

(** [create ?init design ~clocks] compiles the design.  [`Zero] (default)
    starts every sequential state at 0, as if a global reset had been
    applied; [`X] starts unknown. *)
val create : ?init:[ `Zero | `X ] -> Netlist.Design.t -> clocks:Clock_spec.t -> t

val design : t -> Netlist.Design.t

(** [run_cycle t inputs] simulates one full clock period and returns the
    primary-output values sampled at the end of the cycle.  [inputs] maps
    non-clock primary inputs; unlisted inputs keep their previous value.
    Raises [Invalid_argument] on unknown input names. *)
val run_cycle : t -> (string * Logic.t) list -> (string * Logic.t) list

(** [run_stream t stream] runs one cycle per element and collects the
    output samples. *)
val run_stream : t -> (string * Logic.t) list list -> (string * Logic.t) list list

val net_value : t -> Netlist.Design.net -> Logic.t

val cycles : t -> int

(** Committed 0<->1 transition count per net since creation. *)
val toggles : t -> int array

(** Toggle count of the net driving the given instance's clock pin. *)
val clock_pin_toggles : t -> Netlist.Design.inst -> int

(** Stream-equivalence checking between a reference design and a converted
    design, mirroring the paper's validation methodology ("streaming inputs
    to the FF-based and latch-based designs and comparing output streams").

    Both designs are driven with the same primary-input stream; outputs are
    sampled at the end of every cycle.  The first [warmup] cycles are
    ignored (X wash-out), and a constant latency shift of up to
    [max_shift] cycles is tolerated (and reported). *)

type mismatch = {
  cycle : int;
  port : string;
  expected : Logic.t;
  got : Logic.t;
}

type verdict =
  | Equivalent of { shift : int }
  | Mismatch of mismatch

val pp_mismatch : Format.formatter -> mismatch -> unit

(** [compare_streams ~warmup ~max_shift ref_stream dut_stream] *)
val compare_streams :
  warmup:int -> max_shift:int ->
  (string * Logic.t) list list -> (string * Logic.t) list list -> verdict

(** [check ~reference ~dut ~reference_clocks ~dut_clocks ~stimulus] runs
    both engines over the stimulus and compares. *)
val check :
  ?warmup:int -> ?max_shift:int ->
  reference:Netlist.Design.t -> dut:Netlist.Design.t ->
  reference_clocks:Clock_spec.t -> dut_clocks:Clock_spec.t ->
  stimulus:Stimulus.t -> unit -> verdict

(** Input streams for simulation: deterministic pseudo-random vectors and
    activity-profiled workloads (the stand-ins for the paper's testbench
    programs). *)

type t = (string * Logic.t) list list  (** one element per cycle *)

(** [random ~seed ~cycles ~toggle_probability inputs] produces a stream
    where each input starts at a random value and then toggles each cycle
    with the given probability.  Deterministic in [seed]. *)
val random :
  seed:int -> cycles:int -> toggle_probability:float -> string list -> t

(** [profiled ~seed ~cycles profile inputs] drives each input with the
    toggle probability returned by [profile input]; use for workload
    models (e.g. a Dhrystone-like profile toggles data buses more than a
    hello-world-like one). *)
val profiled :
  seed:int -> cycles:int -> (string -> float) -> string list -> t

(** [bursty ~seed ~cycles ~burst_len ~idle_len ~toggle_probability inputs]
    alternates active bursts with idle stretches where inputs freeze —
    the shape of the CEP self-check programs.  During idle cycles only
    a [keep-alive] fraction of inputs toggle. *)
val bursty :
  seed:int -> cycles:int -> burst_len:int -> idle_len:int ->
  toggle_probability:float -> string list -> t

(** Constant stream (all inputs at the given value each cycle). *)
val constant : cycles:int -> Logic.t -> string list -> t

(** Non-clock primary input names of a design, the usual argument. *)
val inputs_of : Netlist.Design.t -> string list

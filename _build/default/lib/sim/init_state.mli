(** Values of nets in the initial (reset) state: every sequential element
    at 0, every input port at 0, constants at their tie value, and
    combinational logic evaluated accordingly.  Used by transforms that
    must preserve reset-state equivalence — forward retiming of a latch
    across a gate is only taken when the gate's reset-state output equals
    the latch's reset value, and a latch is only clock-gated when holding
    its reset value is indistinguishable from evaluating its cone. *)

type t

val create : Netlist.Design.t -> t

(** Memoized; clock-gate outputs and undriven nets evaluate to X. *)
val net_value : t -> Netlist.Design.net -> Logic.t

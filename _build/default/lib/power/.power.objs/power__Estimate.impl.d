lib/power/estimate.ml: Array Cell_lib Float Format Hashtbl List Netlist Physical Stdlib String

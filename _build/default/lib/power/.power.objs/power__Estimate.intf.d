lib/power/estimate.mli: Format Physical

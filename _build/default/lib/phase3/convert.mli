(** Netlist rewriting: build the 3-phase latch-based design from a
    flip-flop design and a phase {!Assignment.t} (Section IV-B).

    - Single-latch flip-flops become one active-high latch enabled by [p1].
    - Back-to-back flip-flops become a latch on [p1] or [p3] followed by an
      inserted latch on [p2].
    - Primary inputs that the assignment penalised get a [p2] latch at the
      port.
    - Clock-gating logic is re-created per phase: each integrated
      clock-gate on the original clock path is duplicated for every phase
      that its registers end up using, with the same enable cone (the
      paper: "the clock gating logic is duplicated and connected to the two
      clock phases separately").
    - The original clock port disappears; ports [p1]/[p2]/[p3] are added.

    The inserted [p2] latches are initially ungated; {!Clock_gating}
    addresses them separately. *)

type clock_ports = {
  p1 : string;
  p2 : string;
  p3 : string;
}

val default_ports : clock_ports

(** Names of the inserted p2 latch instances carry this suffix; retiming
    and clock gating identify movable/gateable latches with it. *)
val p2_suffix : string

val is_inserted_p2 : Netlist.Design.t -> Netlist.Design.inst -> bool

val to_three_phase :
  ?ports:clock_ports -> Netlist.Design.t -> Assignment.t -> Netlist.Design.t

module Design = Netlist.Design
module Builder = Netlist.Builder

type chain = {
  scan_in : string;
  scan_out : string;
  scan_en : string;
  order : string list;
}

let insert ?(scan_in = "scan_in") ?(scan_out = "scan_out")
    ?(scan_en = "scan_en") d =
  let ffs =
    List.filter
      (fun i -> Cell_lib.Cell.is_flip_flop (Design.cell d i))
      (Design.sequential_insts d)
  in
  if ffs = [] then invalid_arg "Scan.insert: design has no flip-flops";
  List.iter
    (fun name ->
      if Design.find_input d name <> None
         || List.exists (fun (p, _) -> String.equal p name) d.Design.primary_outputs
      then invalid_arg (Printf.sprintf "Scan.insert: port %s already exists" name))
    [scan_in; scan_out; scan_en];
  let rw = Netlist.Rewrite.start d in
  let b = Netlist.Rewrite.builder rw in
  let en = Builder.add_input b scan_en in
  let si = Builder.add_input b scan_in in
  (* the chain link entering each register, in instance order *)
  let link = ref si in
  let overrides = Hashtbl.create 64 in
  List.iter
    (fun i ->
      let data_pin, data_net =
        match (Design.cell d i).Cell_lib.Cell.kind with
        | Cell_lib.Cell.Flip_flop { data_pin; _ } ->
          (data_pin, Design.pin_net d i data_pin)
        | Cell_lib.Cell.Combinational | Cell_lib.Cell.Latch _
        | Cell_lib.Cell.Clock_gate _ -> assert false
      in
      let functional = Netlist.Rewrite.map_net rw data_net in
      let muxed =
        Netlist.Gates.mux2 b ~sel:en ~a:functional ~b_in:!link
          ~prefix:(Design.inst_name d i ^ "_scan")
      in
      Hashtbl.replace overrides i (data_pin, muxed);
      link :=
        Netlist.Rewrite.map_net rw
          (match Design.q_net_of d i with Some q -> q | None -> assert false))
    ffs;
  Design.fold_insts
    (fun i () ->
      match Hashtbl.find_opt overrides i with
      | Some (pin, net) -> Netlist.Rewrite.copy_inst ~override:[(pin, net)] rw i
      | None -> Netlist.Rewrite.copy_inst rw i)
    d ();
  Builder.add_output b scan_out !link;
  let scanned = Netlist.Rewrite.finish rw in
  (scanned,
   { scan_in; scan_out; scan_en;
     order = List.map (Design.inst_name d) ffs })

(** Modified retiming (Section IV-C): reposition only the inserted [p2]
    latches inside the combinational logic so each half-stage meets the
    timing budget — the paper maps this onto FF retiming with a
    [clk]/[clkbar] trick and only lets [clkbar] registers move; here the
    restriction is expressed directly: only latches created by
    {!Convert} (recognisable by {!Convert.p2_suffix}) move, and only
    forward, starting from their initial position immediately after the
    first latch of each pair.

    A forward move pushes a group of [p2] latches across a combinational
    gate when every input of the gate is the output of a movable latch
    that has no other reader; the gate then computes ahead of a single new
    [p2] latch at its output.  Moves are taken while they reduce
    [max(input-side delay, output-side delay)] of the affected latches,
    which balances the split pipeline stages exactly like retiming at
    [T_c/2] in the paper. *)

type stats = {
  moves : int;
  passes : int;
  latches_before : int;
  latches_after : int;
}

(** [run ?max_passes ?wire d] returns the retimed design; the input must
    be a converted 3-phase design. *)
val run :
  ?max_passes:int -> ?wire:Sta.Delay.wire_model -> Netlist.Design.t ->
  Netlist.Design.t * stats

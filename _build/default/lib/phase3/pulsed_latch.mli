(** The pulsed-latch baseline the paper's introduction positions 3-phase
    conversion against (refs [7]-[11]): every flip-flop becomes a single
    latch made transparent by a narrow pulse from an edge-triggered pulse
    generator.

    Pulsed latches keep the register count at 1x (better than both
    master-slave and 3-phase) and nearly halve the clock-pin load, but
    "must be used carefully because they are subject to hold problems and
    pulse width variations" (Section I).  Modelling: the intended
    behaviour of a correctly sized pulse (shorter than every data path) is
    edge-like capture, so the converted design uses the [PLATCH] cells —
    flip-flop semantics with latch electrical characteristics — and the
    hold exposure appears in timing analysis as an extra hold margin equal
    to the pulse width ({!hold_margin}), which the skew/hold ablations
    quantify. *)

(** Pulse width in nanoseconds (default 0.08 ns, technology-bound rather
    than period-bound). *)
val default_pulse_width : float

(** The hold margin a pulsed design must meet: the base margin plus the
    full pulse width (data must not change until the pulse closes).
    [period] is accepted for interface symmetry with the other styles. *)
val hold_margin : ?base:float -> ?pulse_width:float -> period:float -> unit -> float

(** [convert d] replaces each flip-flop with a pulsed-latch cell on the
    same (possibly gated) clock net. *)
val convert : Netlist.Design.t -> Netlist.Design.t

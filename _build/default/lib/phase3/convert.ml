module Design = Netlist.Design
module Builder = Netlist.Builder

type clock_ports = {
  p1 : string;
  p2 : string;
  p3 : string;
}

let default_ports = { p1 = "p1"; p2 = "p2"; p3 = "p3" }

let p2_suffix = "__p2ins"

let is_inserted_p2 d i =
  let name = Design.inst_name d i in
  let suffix = p2_suffix in
  let nl = String.length name and sl = String.length suffix in
  nl >= sl && String.equal (String.sub name (nl - sl) sl) suffix

(* Nets that belong to the original clock network (they are not copied). *)
let clock_net_set d =
  let set = Hashtbl.create 64 in
  List.iter
    (fun port ->
      List.iter (fun n -> Hashtbl.replace set n ())
        (Netlist.Clocking.clock_network_nets d ~port))
    d.Design.clock_ports;
  set

let to_three_phase ?(ports = default_ports) d (asg : Assignment.t) =
  let lib = d.Design.library in
  let b = Builder.create ~name:(d.Design.design_name ^ "_3p") ~library:lib in
  let latch_cell = (Cell_lib.Library.latch lib ~transparent:Cell_lib.Cell.Active_high).Cell_lib.Cell.name in
  let latch_r_cell = (Cell_lib.Library.latch_with_reset lib ~transparent:Cell_lib.Cell.Active_high).Cell_lib.Cell.name in
  let icg_cell = (Cell_lib.Library.clock_gate lib ~style:Cell_lib.Cell.Icg_standard).Cell_lib.Cell.name in
  let clock_nets = clock_net_set d in
  (* new clock ports *)
  let p1 = Builder.add_input ~clock:true b ports.p1 in
  let p2 = Builder.add_input ~clock:true b ports.p2 in
  let p3 = Builder.add_input ~clock:true b ports.p3 in
  let phase_net = function
    | `P1 -> p1
    | `P2 -> p2
    | `P3 -> p3
  and phase_name = function
    | `P1 -> ports.p1
    | `P2 -> ports.p2
    | `P3 -> ports.p3
  in
  (* net map: old data net -> new net *)
  let net_map = Array.make (Design.num_nets d) (-1) in
  let pi_latched : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  List.iter (fun p -> Hashtbl.replace pi_latched p ()) asg.Assignment.pi_latches;
  (* primary inputs: latched inputs route sinks through a p2 latch *)
  List.iter
    (fun (port, net) ->
      if not (Design.is_clock_port d port) then begin
        let port_net = Builder.add_input b port in
        if Hashtbl.mem pi_latched port then begin
          let latched = Builder.fresh_net b (port ^ "_lat") in
          ignore
            (Builder.add_cell b (port ^ p2_suffix) latch_cell
               [("E", p2); ("D", port_net); ("Q", latched)]);
          net_map.(net) <- latched
        end
        else net_map.(net) <- port_net
      end)
    d.Design.primary_inputs;
  let map_net old =
    if Hashtbl.mem clock_nets old then
      invalid_arg
        (Printf.sprintf "Convert: data logic reads clock net %s" (Design.net_name d old))
    else begin
      if net_map.(old) < 0 then
        net_map.(old) <- Builder.fresh_net b (Design.net_name d old);
      net_map.(old)
    end
  in
  (* constants *)
  Array.iteri
    (fun n drv ->
      match drv with
      | Design.Driven_const v -> net_map.(n) <- Builder.const b v
      | Design.Driven_by _ | Design.Driven_by_input _ | Design.Undriven -> ())
    d.Design.net_driver;
  (* gated phase nets, memoised per (ICG chain, phase) *)
  let gated : (int list * string, Design.net) Hashtbl.t = Hashtbl.create 16 in
  let rec gated_net chain phase =
    match chain with
    | [] -> phase_net phase
    | _ :: _ ->
      let key = (chain, phase_name phase) in
      (match Hashtbl.find_opt gated key with
       | Some n -> n
       | None ->
         let icg = List.hd (List.rev chain) in
         let upstream = gated_net (List.filter (fun i -> i <> icg) chain) phase in
         let en_old =
           match (Design.cell d icg).Cell_lib.Cell.kind with
           | Cell_lib.Cell.Clock_gate { enable_pin; _ } -> Design.pin_net d icg enable_pin
           | Cell_lib.Cell.Combinational | Cell_lib.Cell.Flip_flop _
           | Cell_lib.Cell.Latch _ -> assert false
         in
         let gck =
           Builder.fresh_net b
             (Printf.sprintf "%s_%s_gck" (Design.inst_name d icg) (phase_name phase))
         in
         ignore
           (Builder.add_cell b
              (Printf.sprintf "%s_%s" (Design.inst_name d icg) (phase_name phase))
              icg_cell
              [("CK", upstream); ("EN", map_net en_old); ("GCK", gck)]);
         Hashtbl.replace gated key gck;
         gck)
  in
  let icg_chain_of i =
    match Design.clock_net_of d i with
    | None -> []
    | Some cn ->
      (match Netlist.Clocking.trace_to_root d cn with
       | None ->
         invalid_arg
           (Printf.sprintf "Convert: clock of %s has no root" (Design.inst_name d i))
       | Some { Netlist.Clocking.elements; _ } ->
         List.filter_map
           (function
             | Netlist.Clocking.Through_icg icg -> Some icg
             | Netlist.Clocking.Through_buffer _ -> None)
           elements)
  in
  (* copy combinational instances (clock buffers excluded) *)
  let on_clock_path = Hashtbl.create 64 in
  Array.iteri
    (fun i _ ->
      let outputs = Design.output_nets d i in
      if outputs <> [] && List.for_all (fun n -> Hashtbl.mem clock_nets n) outputs then
        Hashtbl.replace on_clock_path i ())
    d.Design.inst_names;
  Design.fold_insts
    (fun i () ->
      let c = Design.cell d i in
      match c.Cell_lib.Cell.kind with
      | Cell_lib.Cell.Combinational when not (Hashtbl.mem on_clock_path i) ->
        let conns =
          Array.to_list d.Design.inst_conns.(i)
          |> List.map (fun (pin, n) -> (pin, map_net n))
        in
        ignore (Builder.add_instance b (Design.inst_name d i) c conns)
      | Cell_lib.Cell.Combinational | Cell_lib.Cell.Clock_gate _ -> ()
      | Cell_lib.Cell.Latch _ ->
        invalid_arg
          (Printf.sprintf "Convert: design already contains latch %s"
             (Design.inst_name d i))
      | Cell_lib.Cell.Flip_flop _ -> ())
    d ();
  (* replace flip-flops according to the assignment *)
  let g = asg.Assignment.graph in
  Array.iteri
    (fun pos i ->
      let plan = asg.Assignment.plans.(pos) in
      let chain = icg_chain_of i in
      let c = Design.cell d i in
      let data_old =
        match Design.data_net_of d i with
        | Some n -> n
        | None -> assert false
      in
      let q_old =
        match Design.q_net_of d i with
        | Some n -> n
        | None -> assert false
      in
      let rn_conn =
        match c.Cell_lib.Cell.kind with
        | Cell_lib.Cell.Flip_flop { reset_pin = Some rp; _ } ->
          Some ("RN", map_net (Design.pin_net d i rp))
        | Cell_lib.Cell.Flip_flop { reset_pin = None; _ }
        | Cell_lib.Cell.Combinational | Cell_lib.Cell.Latch _
        | Cell_lib.Cell.Clock_gate _ -> None
      in
      let cell_for = match rn_conn with None -> latch_cell | Some _ -> latch_r_cell in
      let with_rn conns = match rn_conn with None -> conns | Some rc -> rc :: conns in
      let first_phase = match plan with
        | Assignment.Single_p1 | Assignment.Pair_p1 -> `P1
        | Assignment.Pair_p3 -> `P3
      in
      let en1 = gated_net chain first_phase in
      (match plan with
       | Assignment.Single_p1 ->
         ignore
           (Builder.add_instance b (Design.inst_name d i)
              (Cell_lib.Library.find_exn lib cell_for)
              (with_rn [("E", en1); ("D", map_net data_old); ("Q", map_net q_old)]))
       | Assignment.Pair_p1 | Assignment.Pair_p3 ->
         let mid = Builder.fresh_net b (Design.inst_name d i ^ "_mid") in
         ignore
           (Builder.add_instance b (Design.inst_name d i)
              (Cell_lib.Library.find_exn lib cell_for)
              (with_rn [("E", en1); ("D", map_net data_old); ("Q", mid)]));
         ignore
           (Builder.add_instance b (Design.inst_name d i ^ p2_suffix)
              (Cell_lib.Library.find_exn lib cell_for)
              (with_rn [("E", p2); ("D", mid); ("Q", map_net q_old)]))))
    g.Netlist.Ff_graph.members;
  (* primary outputs *)
  List.iter
    (fun (port, net) -> Builder.add_output b port (map_net net))
    d.Design.primary_outputs;
  Builder.freeze b

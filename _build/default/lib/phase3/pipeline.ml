(* For a chain u1 -> u2 -> ... -> un fed by a primary input, the singles
   form an independent set in the path; taking the even positions avoids
   the input penalty, so the inserted count is n - floor(n/2) = ceil(n/2).
   Choosing odd positions gives floor(n/2) pairs plus one input latch —
   the same total for odd n and one worse for even n. *)
let minimum_inserted_stages n =
  if n <= 0 then 0 else (n + 1) / 2

let expected_latches ~stages ~width =
  if stages <= 0 || width <= 0 then 0
  else width * (stages + minimum_inserted_stages stages)

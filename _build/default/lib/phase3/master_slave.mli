(** The conventional master-slave latch baseline: every flip-flop becomes
    a transparent-low master latch followed by a transparent-high slave
    latch on the same (possibly gated) clock.  Clock-gating cells and all
    combinational logic are preserved as-is, so the register count exactly
    doubles — the paper's "M-S" comparison point. *)

val convert : Netlist.Design.t -> Netlist.Design.t

(** Scan-chain insertion, the design-for-test structure behind the paper's
    constraint C1 ("the original position of all FFs must be latched" so
    that "the application — e.g. reset states, verification, and testing —
    of latch-based designs" stays easy).

    Every flip-flop's data input is fronted by a scan multiplexer; the
    registers are stitched into one chain from [scan_in] to [scan_out],
    shifted when [scan_en] is high.  Because the scan muxes are ordinary
    combinational cells and the registers keep their positions, the
    3-phase conversion applies unchanged on a scanned design — which the
    tests verify by converting a scanned netlist and streaming random
    functional/scan activity through both. *)

type chain = {
  scan_in : string;
  scan_out : string;
  scan_en : string;
  order : string list;   (** register instance names, scan-in first *)
}

(** [insert d] returns the scanned design and its chain description.
    Raises [Invalid_argument] if the design has no flip-flops or already
    uses one of the scan port names. *)
val insert :
  ?scan_in:string -> ?scan_out:string -> ?scan_en:string ->
  Netlist.Design.t -> Netlist.Design.t * chain

lib/phase3/pulsed_latch.ml: Array Cell_lib List Netlist Printf

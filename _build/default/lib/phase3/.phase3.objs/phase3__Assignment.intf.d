lib/phase3/assignment.mli: Netlist

lib/phase3/retime.ml: Array Cell_lib Convert Float Fun Hashtbl List Netlist Option Printf Sim Sta

lib/phase3/master_slave.ml: Array Cell_lib List Netlist Printf

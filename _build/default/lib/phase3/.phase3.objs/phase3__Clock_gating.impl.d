lib/phase3/clock_gating.ml: Array Cell_lib Convert Hashtbl List Netlist Option Printf Sim String

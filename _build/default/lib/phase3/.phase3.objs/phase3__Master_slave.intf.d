lib/phase3/master_slave.mli: Netlist

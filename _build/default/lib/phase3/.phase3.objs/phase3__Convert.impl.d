lib/phase3/convert.ml: Array Assignment Cell_lib Hashtbl List Netlist Printf String

lib/phase3/scan.ml: Cell_lib Hashtbl List Netlist Printf String

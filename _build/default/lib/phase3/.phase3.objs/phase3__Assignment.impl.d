lib/phase3/assignment.ml: Array Hashtbl Ilp List Lp Netlist Printf String Unix

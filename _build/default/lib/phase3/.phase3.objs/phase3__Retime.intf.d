lib/phase3/retime.mli: Netlist Sta

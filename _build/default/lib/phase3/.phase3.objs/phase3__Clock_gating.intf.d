lib/phase3/clock_gating.mli: Convert Netlist

lib/phase3/scan.mli: Netlist

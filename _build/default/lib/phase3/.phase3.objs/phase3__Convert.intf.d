lib/phase3/convert.mli: Assignment Netlist

lib/phase3/pipeline.ml:

lib/phase3/flow.ml: Assignment Clock_gating Convert Format Netlist Retime Sim Sta String

lib/phase3/flow.mli: Assignment Clock_gating Convert Netlist Retime Sim Sta

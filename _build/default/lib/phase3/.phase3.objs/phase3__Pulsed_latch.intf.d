lib/phase3/pulsed_latch.mli: Netlist

lib/phase3/pipeline.mli:

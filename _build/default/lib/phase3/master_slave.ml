module Design = Netlist.Design
module Builder = Netlist.Builder

let convert d =
  let lib = d.Design.library in
  let b = Builder.create ~name:(d.Design.design_name ^ "_ms") ~library:lib in
  let lat_hi = Cell_lib.Library.latch lib ~transparent:Cell_lib.Cell.Active_high in
  let lat_hi_r = Cell_lib.Library.latch_with_reset lib ~transparent:Cell_lib.Cell.Active_high in
  let lat_lo = Cell_lib.Library.latch lib ~transparent:Cell_lib.Cell.Active_low in
  let lat_lo_r =
    Cell_lib.Library.latch_with_reset lib ~transparent:Cell_lib.Cell.Active_low
  in
  let net_map = Array.make (Design.num_nets d) (-1) in
  List.iter
    (fun (port, net) ->
      net_map.(net) <- Builder.add_input ~clock:(Design.is_clock_port d port) b port)
    d.Design.primary_inputs;
  Array.iteri
    (fun n drv ->
      match drv with
      | Design.Driven_const v -> net_map.(n) <- Builder.const b v
      | Design.Driven_by _ | Design.Driven_by_input _ | Design.Undriven -> ())
    d.Design.net_driver;
  let map_net old =
    if net_map.(old) < 0 then net_map.(old) <- Builder.fresh_net b (Design.net_name d old);
    net_map.(old)
  in
  Design.fold_insts
    (fun i () ->
      let c = Design.cell d i in
      let mapped_conns () =
        Array.to_list d.Design.inst_conns.(i)
        |> List.map (fun (pin, n) -> (pin, map_net n))
      in
      match c.Cell_lib.Cell.kind with
      | Cell_lib.Cell.Combinational | Cell_lib.Cell.Clock_gate _ ->
        ignore (Builder.add_instance b (Design.inst_name d i) c (mapped_conns ()))
      | Cell_lib.Cell.Latch _ ->
        invalid_arg
          (Printf.sprintf "Master_slave: design already contains latch %s"
             (Design.inst_name d i))
      | Cell_lib.Cell.Flip_flop { clock_pin; data_pin; edge = _; reset_pin } ->
        let ck = map_net (Design.pin_net d i clock_pin) in
        let dnet = map_net (Design.pin_net d i data_pin) in
        let q =
          match Design.q_net_of d i with
          | Some q -> map_net q
          | None -> assert false
        in
        let mid = Builder.fresh_net b (Design.inst_name d i ^ "_mid") in
        (* an asynchronous clear resets both internal latches, exactly as
           inside the flip-flop it replaces *)
        (match reset_pin with
         | None ->
           ignore
             (Builder.add_instance b (Design.inst_name d i ^ "_master") lat_lo
                [("E", ck); ("D", dnet); ("Q", mid)]);
           ignore
             (Builder.add_instance b (Design.inst_name d i ^ "_slave") lat_hi
                [("E", ck); ("D", mid); ("Q", q)])
         | Some rp ->
           let rn = map_net (Design.pin_net d i rp) in
           ignore
             (Builder.add_instance b (Design.inst_name d i ^ "_master") lat_lo_r
                [("E", ck); ("D", dnet); ("Q", mid); ("RN", rn)]);
           ignore
             (Builder.add_instance b (Design.inst_name d i ^ "_slave") lat_hi_r
                [("E", ck); ("D", mid); ("Q", q); ("RN", rn)])))
    d ();
  List.iter
    (fun (port, net) -> Builder.add_output b port (map_net net))
    d.Design.primary_outputs;
  Builder.freeze b

(** The linear-pipeline special case of Section III-B: an n-stage
    flip-flop pipeline converts into a 3-phase design with exactly
    [ceil(n/2)] inserted latches — one extra latch stage for every other
    original stage (Fig. 1) — which is the minimum possible under the
    paper's constraints. *)

(** The closed-form minimum number of inserted [p2] latch stages for an
    [n]-stage linear pipeline whose first stage is fed by primary
    inputs. *)
val minimum_inserted_stages : int -> int

(** [expected_latches ~stages ~width] — total latch count of the optimal
    3-phase conversion of a [width]-bit, [stages]-deep linear pipeline. *)
val expected_latches : stages:int -> width:int -> int

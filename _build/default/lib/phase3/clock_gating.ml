module Design = Netlist.Design

type options = {
  common_enable : bool;
  m2_latch_removal : bool;
  ddcg : bool;
  ddcg_threshold : float;
  max_fanout : int;
}

let default_options = {
  common_enable = true;
  m2_latch_removal = true;
  ddcg = true;
  ddcg_threshold = 0.01;
  max_fanout = 32;
}

type stats = {
  p2_latches : int;
  gated_common_enable : int;
  ddcg_gated : int;
  ddcg_groups : int;
  m2_replaced : int;
  cg_cells_added : int;
}

(* Sequential sources feeding [net] through combinational logic only. *)
let seq_sources d net =
  let visited = Hashtbl.create 64 in
  let sources = ref [] in
  let pis = ref [] in
  let rec walk net =
    if not (Hashtbl.mem visited net) then begin
      Hashtbl.add visited net ();
      match d.Design.net_driver.(net) with
      | Design.Driven_by (i, _) ->
        let c = Design.cell d i in
        (match c.Cell_lib.Cell.kind with
         | Cell_lib.Cell.Combinational ->
           List.iter walk (Design.input_nets d i)
         | Cell_lib.Cell.Flip_flop _ | Cell_lib.Cell.Latch _ ->
           sources := i :: !sources
         | Cell_lib.Cell.Clock_gate _ -> ())
      | Design.Driven_by_input port ->
        if not (Design.is_clock_port d port) then pis := port :: !pis
      | Design.Driven_const _ | Design.Undriven -> ()
    end
  in
  walk net;
  (!sources, !pis)

(* The enable net gating a sequential element, when its clock pin is
   driven by an ICG. *)
let gating_enable d i =
  match Design.clock_net_of d i with
  | None -> None
  | Some cn ->
    (match d.Design.net_driver.(cn) with
     | Design.Driven_by (icg, _) ->
       (match (Design.cell d icg).Cell_lib.Cell.kind with
        | Cell_lib.Cell.Clock_gate { enable_pin; _ } ->
          Some (Design.pin_net d icg enable_pin)
        | Cell_lib.Cell.Combinational | Cell_lib.Cell.Flip_flop _
        | Cell_lib.Cell.Latch _ -> None)
     | Design.Driven_by_input _ | Design.Driven_const _ | Design.Undriven -> None)

(* Root clock phase port of a sequential element or ICG instance. *)
let phase_port d i =
  match Design.clock_net_of d i with
  | None -> None
  | Some cn ->
    Option.map
      (fun tr -> tr.Netlist.Clocking.root_port)
      (Netlist.Clocking.trace_to_root d cn)

let chunk max_n l =
  let rec go acc cur k = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | x :: rest ->
      if k = max_n then go (List.rev cur :: acc) [x] 1 rest
      else go acc (x :: cur) (k + 1) rest
  in
  go [] [] 0 l

let run ?(options = default_options) ?(ports = Convert.default_ports)
    ~activity:(toggles, cycles) d =
  let lib = d.Design.library in
  let icgp3 = Cell_lib.Library.clock_gate lib ~style:Cell_lib.Cell.Icg_m1_p3 in
  let icgnl = Cell_lib.Library.clock_gate lib ~style:Cell_lib.Cell.Icg_m2_latchless in
  let p2_latches =
    List.filter (fun i -> Convert.is_inserted_p2 d i) (Design.sequential_insts d)
  in
  let init = Sim.Init_state.create d in
  (* a latch is initialisation-safe to gate when its data input's value in
     the all-zero initial state equals the latch's reset value (0) *)
  let init_safe l =
    match Design.data_net_of d l with
    | Some dn ->
      Sim.Logic.equal (Sim.Init_state.net_value init dn) Sim.Logic.L0
    | None -> false
  in
  (* only consider p2 latches still enabled directly by the p2 port *)
  let direct_p2 =
    List.filter
      (fun i ->
        match Design.clock_net_of d i with
        | Some cn ->
          (match d.Design.net_driver.(cn) with
           | Design.Driven_by_input port -> String.equal port ports.Convert.p2
           | Design.Driven_by _ | Design.Driven_const _ | Design.Undriven -> false)
        | None -> false)
      p2_latches
  in
  (* --- step 1: common-enable gating -------------------------------- *)
  let gated_by_enable = Hashtbl.create 16 in  (* EN net -> latch list *)
  let gated_set = Hashtbl.create 64 in
  if options.common_enable then
    List.iter
      (fun l ->
        match Design.data_net_of d l with
        | None -> ()
        | Some dn ->
          let sources, pis = seq_sources d dn in
          if sources <> [] && pis = [] then begin
            (* All fan-in latches must share one enable AND one phase: the
               p2 CG samples the enable at the e3 boundary just before the
               p2 window, which matches a p1 first latch's previous-cycle
               enable and a p3 first latch's same-cycle enable — but a
               mixed group would need both samples at once. *)
            let enables = List.map (gating_enable d) sources in
            let phases = List.map (phase_port d) sources in
            let uniform = function
              | [] -> None
              | Some x :: rest when List.for_all (Option.equal ( = ) (Some x)) rest ->
                Some x
              | _ :: _ -> None
            in
            match uniform enables, uniform phases with
            | Some en, Some _phase when init_safe l ->
              Hashtbl.replace gated_by_enable en
                (l :: Option.value ~default:[] (Hashtbl.find_opt gated_by_enable en));
              Hashtbl.replace gated_set l ()
            | (Some _ | None), (Some _ | None) -> ()
          end)
      direct_p2;
  (* --- step 3 selection: DDCG groups -------------------------------- *)
  let rate net = float_of_int toggles.(net) /. float_of_int (max 1 cycles) in
  (* DDCG samples XOR(D,Q) at the e3 boundary before the p2 window, so the
     data cone must have settled by then: only latches fed exclusively by
     p3 first latches qualify (p1 latches and input ports change after
     that boundary). *)
  let ddcg_safe l =
    match Design.data_net_of d l with
    | None -> false
    | Some dn ->
      let sources, pis = seq_sources d dn in
      pis = []
      && sources <> []
      && List.for_all
           (fun s -> Option.equal String.equal (phase_port d s) (Some ports.Convert.p3))
           sources
  in
  let ddcg_candidates =
    if options.ddcg then
      List.filter_map
        (fun l ->
          if Hashtbl.mem gated_set l || not (ddcg_safe l) || not (init_safe l)
          then None
          else
            match Design.data_net_of d l with
            | Some dn when rate dn < options.ddcg_threshold -> Some (l, rate dn)
            | Some _ | None -> None)
        direct_p2
    else []
  in
  let ddcg_groups =
    ddcg_candidates
    |> List.sort (fun (_, a) (_, b) -> compare a b)
    |> List.map fst
    |> chunk options.max_fanout
  in
  (* --- step 2 selection: M2 latch removal --------------------------- *)
  let m2_replace = Hashtbl.create 16 in
  if options.m2_latch_removal then
    List.iter
      (fun icg ->
        match (Design.cell d icg).Cell_lib.Cell.kind with
        | Cell_lib.Cell.Clock_gate { style = Cell_lib.Cell.Icg_standard;
                                     enable_pin; clock_pin; _ } ->
          let en_net = Design.pin_net d icg enable_pin in
          let ck_net = Design.pin_net d icg clock_pin in
          (match d.Design.net_driver.(ck_net) with
           | Design.Driven_by_input phase
             when String.equal phase ports.Convert.p1
               || String.equal phase ports.Convert.p3 ->
             let sources, pis = seq_sources d en_net in
             (* primary inputs behave like p1 start points *)
             let source_phases =
               List.filter_map (phase_port d) sources
               @ (if pis <> [] then [ports.Convert.p1] else [])
             in
             if not (List.exists (String.equal phase) source_phases) then
               Hashtbl.replace m2_replace icg ()
           | Design.Driven_by_input _ | Design.Driven_by _ | Design.Driven_const _
           | Design.Undriven -> ())
        | Cell_lib.Cell.Clock_gate _ | Cell_lib.Cell.Combinational
        | Cell_lib.Cell.Flip_flop _ | Cell_lib.Cell.Latch _ -> ())
      (Design.clock_gate_insts d);
  (* --- rebuild ------------------------------------------------------ *)
  let rw = Netlist.Rewrite.start d in
  let b = Netlist.Rewrite.builder rw in
  let p2_net =
    match Design.find_input d ports.Convert.p2 with
    | Some n -> Netlist.Rewrite.map_net rw n
    | None -> invalid_arg "Clock_gating: design has no p2 port"
  in
  let p3_net =
    match Design.find_input d ports.Convert.p3 with
    | Some n -> Netlist.Rewrite.map_net rw n
    | None -> invalid_arg "Clock_gating: design has no p3 port"
  in
  let cg_added = ref 0 in
  (* new gated-clock nets per latch *)
  let latch_gclk = Hashtbl.create 64 in
  Hashtbl.iter
    (fun en latches ->
      List.iteri
        (fun gi group ->
          incr cg_added;
          let gck =
            Netlist.Builder.fresh_net b (Printf.sprintf "p2cg_en%d_%d_gck" en gi)
          in
          ignore
            (Netlist.Builder.add_instance b
               (Printf.sprintf "p2cg_en%d_%d" en gi) icgp3
               [("CK", p2_net); ("P3", p3_net);
                ("EN", Netlist.Rewrite.map_net rw en); ("GCK", gck)]);
          List.iter (fun l -> Hashtbl.replace latch_gclk l gck) group)
        (chunk options.max_fanout latches))
    gated_by_enable;
  (* DDCG groups: XOR(D,Q) per latch, OR tree, shared CG *)
  let ddcg_gated = ref 0 in
  List.iteri
    (fun gi group ->
      incr cg_added;
      let comparisons =
        List.map
          (fun l ->
            let dn = match Design.data_net_of d l with Some n -> n | None -> assert false in
            let qn = match Design.q_net_of d l with Some n -> n | None -> assert false in
            Netlist.Gates.emit_fresh b Netlist.Gates.Xor
              [Netlist.Rewrite.map_net rw dn; Netlist.Rewrite.map_net rw qn]
              ~prefix:(Printf.sprintf "ddcg%d_cmp" gi))
          group
      in
      let en =
        match comparisons with
        | [single] -> single
        | _ :: _ :: _ ->
          Netlist.Gates.emit_fresh b Netlist.Gates.Or comparisons
            ~prefix:(Printf.sprintf "ddcg%d_or" gi)
        | [] -> assert false
      in
      let gck = Netlist.Builder.fresh_net b (Printf.sprintf "ddcg%d_gck" gi) in
      ignore
        (Netlist.Builder.add_instance b (Printf.sprintf "ddcg%d_cg" gi) icgp3
           [("CK", p2_net); ("P3", p3_net); ("EN", en); ("GCK", gck)]);
      List.iter
        (fun l ->
          incr ddcg_gated;
          Hashtbl.replace latch_gclk l gck)
        group)
    ddcg_groups;
  (* copy instances, rewiring gated latches and replacing M2 ICGs *)
  Design.fold_insts
    (fun i () ->
      match Hashtbl.find_opt latch_gclk i with
      | Some gck ->
        let enable_pin =
          match (Design.cell d i).Cell_lib.Cell.kind with
          | Cell_lib.Cell.Latch { enable_pin; _ } -> enable_pin
          | Cell_lib.Cell.Combinational | Cell_lib.Cell.Flip_flop _
          | Cell_lib.Cell.Clock_gate _ -> assert false
        in
        Netlist.Rewrite.copy_inst ~override:[(enable_pin, gck)] rw i
      | None ->
        if Hashtbl.mem m2_replace i then begin
          (* same connections, latch-less cell *)
          let conns =
            Array.to_list d.Design.inst_conns.(i)
            |> List.map (fun (pin, n) -> (pin, Netlist.Rewrite.map_net rw n))
          in
          ignore (Netlist.Builder.add_instance b (Design.inst_name d i) icgnl conns)
        end
        else Netlist.Rewrite.copy_inst rw i)
    d ();
  let d' = Netlist.Rewrite.finish rw in
  let gated_common =
    Hashtbl.fold (fun _ ls acc -> acc + List.length ls) gated_by_enable 0
  in
  (d',
   { p2_latches = List.length p2_latches;
     gated_common_enable = gated_common;
     ddcg_gated = !ddcg_gated;
     ddcg_groups = List.length ddcg_groups;
     m2_replaced = Hashtbl.length m2_replace;
     cg_cells_added = !cg_added })

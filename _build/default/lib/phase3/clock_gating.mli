(** Clock gating of the inserted [p2] latches (Section IV-D).

    Three mechanisms, applied in order:

    1. {b Common-enable gating} — a [p2] latch whose fan-in latches are all
       gated by one enable [EN] is gated by a new "p2 CG" driven by the
       same [EN].  Following the paper's modification M1 the cell is the
       [ICGP3] variant: its internal latch is clocked by the extra [p3]
       pin instead of an inverted [p2].
    2. {b M2 latch removal} — a standard CG driving [p1] or [p3] latches
       whose enable cone has no start point latched on the CG's own phase
       is replaced by the latch-less [ICGNL] cell.
    3. {b Multi-bit data-driven clock gating (DDCG)} — remaining ungated
       [p2] latches whose data toggles below [ddcg_threshold] (default 1%
       of the clock) are grouped (at most [max_fanout], default 32, per
       group, sorted by toggle rate so groups correlate); each group gets
       XOR(D,Q) comparators ORed into the enable of a shared M1-style CG.

    Activity (per-net toggle counts and the cycle count they were gathered
    over) comes from a simulation of the design being gated. *)

type options = {
  common_enable : bool;
  m2_latch_removal : bool;
  ddcg : bool;
  ddcg_threshold : float;  (** toggle rate below which DDCG applies *)
  max_fanout : int;        (** max latches per CG cell *)
}

val default_options : options

type stats = {
  p2_latches : int;
  gated_common_enable : int;
  ddcg_gated : int;
  ddcg_groups : int;
  m2_replaced : int;
  cg_cells_added : int;
}

val run :
  ?options:options ->
  ?ports:Convert.clock_ports ->
  activity:int array * int ->
  Netlist.Design.t ->
  Netlist.Design.t * stats

module Design = Netlist.Design
module Builder = Netlist.Builder

let default_pulse_width = 0.08

let hold_margin ?(base = 0.02) ?(pulse_width = default_pulse_width) ~period () =
  ignore period;
  base +. pulse_width

let convert d =
  let lib = d.Design.library in
  let b = Builder.create ~name:(d.Design.design_name ^ "_pl") ~library:lib in
  let platch = Cell_lib.Library.find_exn lib "PLATCH_X1" in
  let platch_r = Cell_lib.Library.find_exn lib "PLATCHR_X1" in
  let net_map = Array.make (Design.num_nets d) (-1) in
  List.iter
    (fun (port, net) ->
      net_map.(net) <- Builder.add_input ~clock:(Design.is_clock_port d port) b port)
    d.Design.primary_inputs;
  Array.iteri
    (fun n drv ->
      match drv with
      | Design.Driven_const v -> net_map.(n) <- Builder.const b v
      | Design.Driven_by _ | Design.Driven_by_input _ | Design.Undriven -> ())
    d.Design.net_driver;
  let map_net old =
    if net_map.(old) < 0 then net_map.(old) <- Builder.fresh_net b (Design.net_name d old);
    net_map.(old)
  in
  Design.fold_insts
    (fun i () ->
      let c = Design.cell d i in
      let mapped_conns () =
        Array.to_list d.Design.inst_conns.(i)
        |> List.map (fun (pin, n) -> (pin, map_net n))
      in
      match c.Cell_lib.Cell.kind with
      | Cell_lib.Cell.Combinational | Cell_lib.Cell.Clock_gate _ ->
        ignore (Builder.add_instance b (Design.inst_name d i) c (mapped_conns ()))
      | Cell_lib.Cell.Latch _ ->
        invalid_arg
          (Printf.sprintf "Pulsed_latch: design already contains latch %s"
             (Design.inst_name d i))
      | Cell_lib.Cell.Flip_flop { clock_pin; data_pin; edge = _; reset_pin } ->
        let ck = map_net (Design.pin_net d i clock_pin) in
        let dnet = map_net (Design.pin_net d i data_pin) in
        let q =
          match Design.q_net_of d i with
          | Some q -> map_net q
          | None -> assert false
        in
        (match reset_pin with
         | None ->
           ignore
             (Builder.add_instance b (Design.inst_name d i) platch
                [("CK", ck); ("D", dnet); ("Q", q)])
         | Some rp ->
           let rn = map_net (Design.pin_net d i rp) in
           ignore
             (Builder.add_instance b (Design.inst_name d i) platch_r
                [("CK", ck); ("D", dnet); ("Q", q); ("RN", rn)])))
    d ();
  List.iter
    (fun (port, net) -> Builder.add_output b port (map_net net))
    d.Design.primary_outputs;
  Builder.freeze b

module Design = Netlist.Design

type stats = {
  moves : int;
  passes : int;
  latches_before : int;
  latches_after : int;
}

type direction = Forward | Backward

type move = {
  direction : direction;
  gate : Design.inst;
  latches : Design.inst list;   (* the movable latches absorbed by the move *)
  enable : Design.net;          (* their common enable net *)
  reset : Design.net option;    (* their common reset net, if any *)
}

let latch_nets d i =
  match (Design.cell d i).Cell_lib.Cell.kind with
  | Cell_lib.Cell.Latch { enable_pin; data_pin; reset_pin; _ } ->
    Some
      (Design.pin_net d i enable_pin,
       Design.pin_net d i data_pin,
       (match Design.q_net_of d i with Some q -> q | None -> raise Not_found),
       Option.map (Design.pin_net d i) reset_pin)
  | Cell_lib.Cell.Combinational | Cell_lib.Cell.Flip_flop _
  | Cell_lib.Cell.Clock_gate _ -> None

let is_po_net d net =
  List.exists (fun (_, n) -> n = net) d.Design.primary_outputs

(* A latch is absorbable by gate [g] when it is an inserted p2 latch whose
   only reader is [g] and whose output is not a primary output. *)
let absorbable d g net =
  match d.Design.net_driver.(net) with
  | Design.Driven_by (l, _) when Convert.is_inserted_p2 d l ->
    (match d.Design.net_sinks.(net) with
     | [(g', _)] when g' = g && not (is_po_net d net) -> Some l
     | [] | [_] | _ :: _ :: _ -> None)
  | Design.Driven_by _ | Design.Driven_by_input _ | Design.Driven_const _
  | Design.Undriven -> None

(* Identify a legal forward move across gate [g]: every input is either a
   constant or the output of an absorbable latch; all latches agree on
   enable and reset. *)
let move_candidate d g =
  let c = Design.cell d g in
  if c.Cell_lib.Cell.kind <> Cell_lib.Cell.Combinational then None
  else
    let inputs = Design.input_nets d g in
    let rec gather latches = function
      | [] -> Some (List.rev latches)
      | net :: rest ->
        (match d.Design.net_driver.(net) with
         | Design.Driven_const _ -> gather latches rest
         | Design.Driven_by _ | Design.Driven_by_input _ | Design.Undriven ->
           (match absorbable d g net with
            | Some l -> gather (l :: latches) rest
            | None -> None))
    in
    match gather [] inputs with
    | None | Some [] -> None
    | Some (first :: _ as latches) ->
      (match latch_nets d first with
       | None -> None
       | Some (en0, _, _, rn0) ->
         let consistent =
           List.for_all
             (fun l ->
               match latch_nets d l with
               | Some (en, _, _, rn) -> en = en0 && rn = rn0
               | None -> false)
             latches
         in
         let output_ok =
           match Design.output_nets d g with
           | [_] -> true
           | [] | _ :: _ :: _ -> false
         in
         if consistent && output_ok then
           Some { direction = Forward; gate = g; latches; enable = en0;
                  reset = rn0 }
         else None)

(* A backward move pulls one latch from a gate's output to all of its
   inputs: legal when the latch is the gate's only reader and every gate
   input tolerates a latch (is not a constant-only or clock net).  The
   latch count grows by (inputs - 1) — the duplication cost of backward
   retiming. *)
let backward_candidate d l =
  if not (Convert.is_inserted_p2 d l) then None
  else
    match latch_nets d l with
    | None -> None
    | Some (en, dn, qn, rn) ->
      ignore qn;
      (match d.Design.net_driver.(dn) with
       | Design.Driven_by (g, _)
         when (Design.cell d g).Cell_lib.Cell.kind = Cell_lib.Cell.Combinational ->
         let sole_reader =
           match d.Design.net_sinks.(dn) with
           | [(l', _)] -> l' = l && not (is_po_net d dn)
           | [] | _ :: _ :: _ -> false
         in
         let inputs_ok =
           List.for_all
             (fun net ->
               match d.Design.net_driver.(net) with
               | Design.Driven_by _ | Design.Driven_by_input _ -> true
               | Design.Driven_const _ -> true
               | Design.Undriven -> false)
             (Design.input_nets d g)
         in
         let output_ok =
           match Design.output_nets d g with
           | [_] -> true
           | [] | _ :: _ :: _ -> false
         in
         if sole_reader && inputs_ok && output_ok then
           Some { direction = Backward; gate = g; latches = [l]; enable = en;
                  reset = rn }
         else None
       | Design.Driven_by _ | Design.Driven_by_input _ | Design.Driven_const _
       | Design.Undriven -> None)

let gate_out d g =
  match Design.output_nets d g with
  | [n] -> n
  | [] | _ :: _ :: _ -> assert false

(* Cost of the max-balanced halves before/after a candidate move. *)
let improves d wire forward backward m =
  let d_g = Sta.Delay.inst_delay_max d wire m.gate in
  match m.direction with
  | Forward ->
    let din_max, cur_cost =
      List.fold_left
        (fun (dmx, cost) l ->
          match latch_nets d l with
          | Some (_, dn, qn, _) ->
            let din = Float.max 0.0 forward.(dn) in
            let dout = Float.max 0.0 backward.(qn) in
            (Float.max dmx din, Float.max cost (Float.max din dout))
          | None -> (dmx, cost))
        (0.0, 0.0) m.latches
    in
    let out = gate_out d m.gate in
    let new_cost =
      Float.max (din_max +. d_g) (Float.max 0.0 backward.(out))
    in
    new_cost < cur_cost -. 1e-9
  | Backward ->
    (match m.latches with
     | [l] ->
       (match latch_nets d l with
        | Some (_, dn, qn, _) ->
          let din = Float.max 0.0 forward.(dn) in
          let dout = Float.max 0.0 backward.(qn) in
          let cur_cost = Float.max din dout in
          (* after the move the gate evaluates after the latch *)
          let new_din = Float.max 0.0 (din -. d_g) in
          let new_cost = Float.max new_din (dout +. d_g) in
          new_cost < cur_cost -. 1e-9
        | None -> false)
     | [] | _ :: _ :: _ -> false)

let count_latches d =
  List.length
    (List.filter (fun i -> Cell_lib.Cell.is_latch (Design.cell d i)) (Design.insts d))

let apply_moves d moves =
  let rw = Netlist.Rewrite.start d in
  let moved_latches = Hashtbl.create 64 in
  let moved_gates = Hashtbl.create 64 in
  List.iter
    (fun m ->
      Hashtbl.replace moved_gates m.gate m;
      List.iter (fun l -> Hashtbl.replace moved_latches l ()) m.latches)
    moves;
  let lib = d.Design.library in
  let latch_cell = Cell_lib.Library.latch lib ~transparent:Cell_lib.Cell.Active_high in
  let latch_r_cell =
    Cell_lib.Library.latch_with_reset lib ~transparent:Cell_lib.Cell.Active_high
  in
  Design.fold_insts
    (fun i () ->
      if Hashtbl.mem moved_latches i then ()
      else
        match Hashtbl.find_opt moved_gates i with
        | None -> Netlist.Rewrite.copy_inst rw i
        | Some ({ direction = Backward; _ } as m) ->
          (* one latch per gate input; the gate then drives the old Q *)
          let b = Netlist.Rewrite.builder rw in
          let l = match m.latches with [l] -> l | _ -> assert false in
          let old_q =
            match latch_nets d l with
            | Some (_, _, qn, _) -> qn
            | None -> assert false
          in
          let cell, extra =
            match m.reset with
            | None ->
              (Cell_lib.Library.latch d.Design.library
                 ~transparent:Cell_lib.Cell.Active_high, [])
            | Some rn ->
              (Cell_lib.Library.latch_with_reset d.Design.library
                 ~transparent:Cell_lib.Cell.Active_high,
               [("RN", Netlist.Rewrite.map_net rw rn)])
          in
          let override =
            List.mapi
              (fun k (pin, net) ->
                match Cell_lib.Cell.find_pin (Design.cell d i) pin with
                | Some p when p.Cell_lib.Cell.direction = Cell_lib.Cell.Input ->
                  (match d.Design.net_driver.(net) with
                   | Design.Driven_const _ -> None  (* constants stay bare *)
                   | Design.Driven_by _ | Design.Driven_by_input _
                   | Design.Undriven ->
                     let w =
                       Netlist.Builder.fresh_net b
                         (Printf.sprintf "%s_bwd%d" (Design.inst_name d i) k)
                     in
                     ignore
                       (Netlist.Builder.add_instance b
                          (Printf.sprintf "%s_bwd%d%s" (Design.inst_name d i) k
                             Convert.p2_suffix)
                          cell
                          (extra
                           @ [("E", Netlist.Rewrite.map_net rw m.enable);
                              ("D", Netlist.Rewrite.map_net rw net); ("Q", w)]));
                     Some (pin, w))
                | Some _ | None -> None)
              (Array.to_list d.Design.inst_conns.(i))
            |> List.filter_map Fun.id
          in
          let out_pin =
            match Cell_lib.Cell.output_pins (Design.cell d i) with
            | [p] -> p.Cell_lib.Cell.pin_name
            | [] | _ :: _ :: _ -> assert false
          in
          Netlist.Rewrite.copy_inst
            ~override:((out_pin, Netlist.Rewrite.map_net rw old_q) :: override)
            rw i
        | Some ({ direction = Forward; _ } as m) ->
          (* the gate now reads the latches' data nets and drives a fresh
             net, latched by a single new p2 latch onto the old output *)
          let b = Netlist.Rewrite.builder rw in
          let override =
            List.filter_map
              (fun (pin, net) ->
                match d.Design.net_driver.(net) with
                | Design.Driven_by (l, _) when Hashtbl.mem moved_latches l ->
                  (match latch_nets d l with
                   | Some (_, dn, _, _) -> Some (pin, Netlist.Rewrite.map_net rw dn)
                   | None -> None)
                | Design.Driven_by _ | Design.Driven_by_input _
                | Design.Driven_const _ | Design.Undriven -> None)
              (Array.to_list d.Design.inst_conns.(i))
          in
          let w = Netlist.Builder.fresh_net b (Design.inst_name d i ^ "_pre") in
          let out_pin =
            match Cell_lib.Cell.output_pins (Design.cell d i) with
            | [p] -> p.Cell_lib.Cell.pin_name
            | [] | _ :: _ :: _ -> assert false
          in
          Netlist.Rewrite.copy_inst ~override:((out_pin, w) :: override) rw i;
          let old_out = gate_out d i in
          let conns =
            [("E", Netlist.Rewrite.map_net rw m.enable); ("D", w);
             ("Q", Netlist.Rewrite.map_net rw old_out)]
          in
          let cell, conns =
            match m.reset with
            | None -> latch_cell, conns
            | Some rn -> latch_r_cell, ("RN", Netlist.Rewrite.map_net rw rn) :: conns
          in
          ignore
            (Netlist.Builder.add_instance b
               (Design.inst_name d i ^ Convert.p2_suffix) cell conns))
    d ();
  Netlist.Rewrite.finish rw

(* Retiming must preserve the reset state: latches reset to 0, so the
   involved nets' all-zero-state values must be 0 (the classic
   initial-state computation, restricted to the moves that need no new
   reset value).  Forward: the absorbed gate's output must be 0.
   Backward: additionally every non-constant gate input must be 0, since
   a fresh latch is placed on each. *)
let preserves_reset init m d =
  let zero net =
    Sim.Logic.equal (Sim.Init_state.net_value init net) Sim.Logic.L0
  in
  let out_ok =
    match Design.output_nets d m.gate with
    | [out] -> zero out
    | [] | _ :: _ :: _ -> false
  in
  match m.direction with
  | Forward -> out_ok
  | Backward ->
    out_ok
    && List.for_all
         (fun net ->
           match d.Design.net_driver.(net) with
           | Design.Driven_const _ -> true
           | Design.Driven_by _ | Design.Driven_by_input _ | Design.Undriven ->
             zero net)
         (Design.input_nets d m.gate)

let run ?(max_passes = 50) ?(wire = Sta.Delay.no_wire) d0 =
  let latches_before = count_latches d0 in
  let rec loop d pass moves_total =
    if pass >= max_passes then (d, pass, moves_total)
    else begin
      let forward = Sta.Paths.forward_arrivals ~wire d in
      let backward = Sta.Paths.backward_delays ~wire d in
      let init = Sim.Init_state.create d in
      let fwd_moves =
        List.filter_map
          (fun g ->
            match move_candidate d g with
            | Some m when improves d wire forward backward m
                       && preserves_reset init m d -> Some m
            | Some _ | None -> None)
          (Design.insts d)
      in
      let consumed = Hashtbl.create 64 in
      List.iter
        (fun m ->
          Hashtbl.replace consumed m.gate ();
          List.iter (fun l -> Hashtbl.replace consumed l ()) m.latches)
        fwd_moves;
      let bwd_moves =
        List.filter_map
          (fun l ->
            if Hashtbl.mem consumed l then None
            else
              match backward_candidate d l with
              | Some m
                when (not (Hashtbl.mem consumed m.gate))
                  && improves d wire forward backward m
                  && preserves_reset init m d ->
                Hashtbl.replace consumed m.gate ();
                Some m
              | Some _ | None -> None)
          (Design.insts d)
      in
      let moves = fwd_moves @ bwd_moves in
      if moves = [] then (d, pass, moves_total)
      else loop (apply_moves d moves) (pass + 1) (moves_total + List.length moves)
    end
  in
  let d, passes, moves = loop d0 0 0 in
  (d, { moves; passes; latches_before; latches_after = count_latches d })

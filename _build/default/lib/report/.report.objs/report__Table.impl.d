lib/report/table.ml: Array Buffer Float List Printf String

lib/report/table.mli:

type align = Left | Right

type row = Cells of string list | Rule

type t = {
  title : string;
  columns : (string * align) list;
  mutable rows : row list;  (* reversed *)
}

let create ~title columns = { title; columns; rows = [] }

let add_row t cells = t.rows <- Cells cells :: t.rows

let add_rule t = t.rows <- Rule :: t.rows

let render t =
  let n = List.length t.columns in
  let headers = List.map fst t.columns in
  let rows = List.rev t.rows in
  let widths = Array.make n 0 in
  let measure cells =
    List.iteri
      (fun k cell -> if k < n then widths.(k) <- max widths.(k) (String.length cell))
      cells
  in
  measure headers;
  List.iter (function Cells c -> measure c | Rule -> ()) rows;
  let buf = Buffer.create 1024 in
  let pad align width s =
    let fill = String.make (max 0 (width - String.length s)) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s
  in
  let emit_cells cells =
    List.iteri
      (fun k (_, align) ->
        let cell = match List.nth_opt cells k with Some c -> c | None -> "" in
        if k > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf (pad align widths.(k) cell))
      t.columns;
    Buffer.add_char buf '\n'
  in
  let total_width =
    Array.fold_left ( + ) 0 widths + (2 * (n - 1))
  in
  Buffer.add_string buf t.title;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (String.make (max (String.length t.title) total_width) '=');
  Buffer.add_char buf '\n';
  emit_cells headers;
  Buffer.add_string buf (String.make total_width '-');
  Buffer.add_char buf '\n';
  List.iter
    (function
      | Cells c -> emit_cells c
      | Rule ->
        Buffer.add_string buf (String.make total_width '-');
        Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let print t = print_string (render t)

let pct ~ref_ v =
  if Float.abs ref_ < 1e-12 then "-"
  else Printf.sprintf "%.1f" (100.0 *. (ref_ -. v) /. ref_)

let f1 v = Printf.sprintf "%.1f" v

let f2 v = Printf.sprintf "%.2f" v

(** Plain-text tables in the style of the paper's Tables I and II. *)

type align = Left | Right

type t

val create : title:string -> (string * align) list -> t

(** Add a data row; cells beyond the column count are dropped, missing
    cells are blank. *)
val add_row : t -> string list -> unit

(** Add a separator line. *)
val add_rule : t -> unit

val render : t -> string

val print : t -> unit

(** Percentage string in the paper's style: [pct ~ref_ ~v] is the saving
    of [v] relative to [ref_], e.g. 15.5 means "v is 15.5% below ref". *)
val pct : ref_:float -> float -> string

(** One decimal place. *)
val f1 : float -> string

(** Two decimal places. *)
val f2 : float -> string

let spec ~name ~seed ~ffs ~n_layers ~ratio ~inputs ~outputs ~self_loop ~cross
    ~fanin ~gated ~bank ~po_cones =
  { Generator.name;
    seed;
    inputs;
    outputs;
    layers = Generator.alternating_layers ~ffs ~n_layers ~ratio;
    fanin;
    cone_depth = 5;
    self_loop_fraction = self_loop;
    cross_feedback = cross;
    reuse = 0.3;
    gated_fraction = gated;
    bank_size = bank;
    po_cones;
    frequency_mhz = 500.0 }

let aes =
  spec ~name:"aes" ~seed:31 ~ffs:9715 ~n_layers:20 ~ratio:0.72 ~inputs:128
    ~outputs:128 ~self_loop:0.03 ~cross:0.05 ~fanin:2 ~gated:0.25 ~bank:32
    ~po_cones:200

let des3 =
  spec ~name:"des3" ~seed:32 ~ffs:436 ~n_layers:16 ~ratio:0.73 ~inputs:64
    ~outputs:64 ~self_loop:0.05 ~cross:0.10 ~fanin:2 ~gated:0.3 ~bank:16
    ~po_cones:40

let sha256 =
  spec ~name:"sha256" ~seed:33 ~ffs:1574 ~n_layers:8 ~ratio:0.5 ~inputs:64
    ~outputs:64 ~self_loop:0.33 ~cross:0.5 ~fanin:5 ~gated:0.3 ~bank:16
    ~po_cones:60

let md5 =
  spec ~name:"md5" ~seed:34 ~ffs:804 ~n_layers:16 ~ratio:0.80 ~inputs:64
    ~outputs:32 ~self_loop:0.02 ~cross:0.06 ~fanin:2 ~gated:0.35 ~bank:16
    ~po_cones:50

let all = [aes; des3; sha256; md5]

lib/circuits/workload.mli: Netlist Sim

lib/circuits/rng.ml: Int64 List

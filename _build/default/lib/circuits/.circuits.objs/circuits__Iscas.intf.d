lib/circuits/iscas.mli: Generator

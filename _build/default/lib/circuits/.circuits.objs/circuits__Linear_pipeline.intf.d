lib/circuits/linear_pipeline.mli: Cell_lib Netlist

lib/circuits/workload.ml: Printf Sim String

lib/circuits/generator.ml: Array Cell_lib Float Hashtbl List Netlist Printf Rng

lib/circuits/suite.ml: Cep Cpu Generator Iscas List Netlist String Workload

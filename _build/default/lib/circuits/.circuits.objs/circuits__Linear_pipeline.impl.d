lib/circuits/linear_pipeline.ml: Array Cell_lib List Netlist Printf Rng

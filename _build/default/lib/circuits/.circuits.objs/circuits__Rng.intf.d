lib/circuits/rng.mli:

lib/circuits/cpu.ml: Array Cell_lib List Netlist Printf Rng

lib/circuits/cep.mli: Generator

lib/circuits/iscas.ml: Array Generator

lib/circuits/cep.ml: Generator

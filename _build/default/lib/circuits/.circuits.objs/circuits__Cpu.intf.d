lib/circuits/cpu.mli: Cell_lib Netlist

lib/circuits/generator.mli: Cell_lib Netlist

lib/circuits/suite.mli: Netlist Workload

module Builder = Netlist.Builder
module Gates = Netlist.Gates

type spec = {
  name : string;
  seed : int;
  width : int;
  regfile_words : int;
  stage_regs : int array;
  ctrl_ffs : int;
  forwarding : float;
  frequency_mhz : float;
}

let num_flip_flops s =
  s.width + (s.regfile_words * s.width) + Array.fold_left ( + ) 0 s.stage_regs
  + s.ctrl_ffs

let plasma = {
  name = "plasma";
  seed = 101;
  width = 32;
  regfile_words = 32;
  stage_regs = [| 160; 160; 180 |];
  ctrl_ffs = 50;
  forwarding = 0.25;
  frequency_mhz = 500.0;
}

let riscv = {
  name = "riscv";
  seed = 102;
  width = 32;
  regfile_words = 32;
  stage_regs = [| 280; 300; 300; 280; 280 |];
  ctrl_ffs = 299;
  forwarding = 0.35;
  frequency_mhz = 333.3;
}

let arm_m0 = {
  name = "arm_m0";
  seed = 103;
  width = 32;
  regfile_words = 16;
  stage_regs = [| 240; 250; 240 |];
  ctrl_ffs = 123;
  forwarding = 0.80;
  frequency_mhz = 333.3;
}

let make ?library spec =
  let library =
    match library with Some l -> l | None -> Cell_lib.Default_library.library ()
  in
  let rng = Rng.create spec.seed in
  let b = Builder.create ~name:spec.name ~library in
  let clk = Builder.add_input ~clock:true b "clk" in
  let w = spec.width in
  (* external interfaces: instruction/data memory returns, interrupts *)
  let imem = List.init w (fun k -> Builder.add_input b (Printf.sprintf "imem%d" k)) in
  let dmem = List.init w (fun k -> Builder.add_input b (Printf.sprintf "dmem%d" k)) in
  let irq = Builder.add_input b "irq" in
  let reg name k = Printf.sprintf "%s_%d" name k in
  let n_stages = Array.length spec.stage_regs in
  (* pre-allocate register output nets so feedback can reference them *)
  let pc_q = Array.init w (fun k -> Builder.fresh_net b (reg "pc_q" k)) in
  let rf_q =
    Array.init spec.regfile_words (fun wd ->
        Array.init w (fun k ->
            Builder.fresh_net b (Printf.sprintf "rf_%d_%d" wd k)))
  in
  let stage_q =
    Array.mapi
      (fun s count ->
        Array.init count (fun k -> Builder.fresh_net b (Printf.sprintf "st%d_q%d" s k)))
      spec.stage_regs
  in
  let ctrl_q = Array.init spec.ctrl_ffs (fun k -> Builder.fresh_net b (reg "ctrl_q" k)) in
  let last_stage = stage_q.(n_stages - 1) in
  let exec_stage = stage_q.(min 1 (n_stages - 1)) in
  let pick_arr arr = arr.(Rng.int rng (Array.length arr)) in
  (* --- program counter: self-loop through a ripple-ish incrementer with
     branch redirect from the execute stage --- *)
  let carry = ref (Builder.const b true) in
  for k = 0 to w - 1 do
    let sum =
      Gates.emit_fresh b Gates.Xor [pc_q.(k); !carry] ~prefix:(reg "pc_sum" k)
    in
    let new_carry =
      Gates.emit_fresh b Gates.And [pc_q.(k); !carry] ~prefix:(reg "pc_cy" k)
    in
    carry := new_carry;
    let branch_target = pick_arr exec_stage in
    let take_branch = pick_arr exec_stage in
    let next = Gates.mux2 b ~sel:take_branch ~a:sum ~b_in:branch_target
        ~prefix:(reg "pc_nx" k) in
    ignore
      (Builder.add_cell b (reg "pc" k) "DFF_X1"
         [("CK", clk); ("D", next); ("Q", pc_q.(k))])
  done;
  (* --- register file: one write-enable clock gate per word; data comes
     from the last pipeline stage (write-back) --- *)
  for wd = 0 to spec.regfile_words - 1 do
    let dec_a = pick_arr last_stage and dec_b = pick_arr last_stage in
    let en =
      Gates.emit_fresh b
        (if wd mod 2 = 0 then Gates.And else Gates.Nor)
        [dec_a; dec_b] ~prefix:(Printf.sprintf "rf_dec%d" wd)
    in
    let gck = Builder.fresh_net b (Printf.sprintf "rf_gck%d" wd) in
    ignore
      (Builder.add_cell b (Printf.sprintf "rf_icg%d" wd) "ICG_X1"
         [("CK", clk); ("EN", en); ("GCK", gck)]);
    for k = 0 to w - 1 do
      ignore
        (Builder.add_cell b (Printf.sprintf "rf_%d_%d_reg" wd k) "DFF_X1"
           [("CK", gck); ("D", pick_arr last_stage); ("Q", rf_q.(wd).(k))])
    done
  done;
  (* --- pipeline ranks --- *)
  Array.iteri
    (fun s qs ->
      Array.iteri
        (fun k q ->
          let sources =
            if s = 0 then
              (* fetch/decode: instruction bits and PC *)
              [List.nth imem (Rng.int rng w); pick_arr pc_q;
               (if Rng.chance rng 0.3 then irq else pick_arr pc_q)]
            else begin
              let prev = stage_q.(s - 1) in
              let base = [pick_arr prev; pick_arr prev] in
              let base =
                (* register-file read feeds the early stages *)
                if s = 1 then
                  pick_arr rf_q.(Rng.int rng spec.regfile_words) :: base
                else base
              in
              let base =
                if s >= 2 && Rng.chance rng 0.4 then
                  List.nth dmem (Rng.int rng w) :: base
                else base
              in
              (* forwarding: a later stage feeds back *)
              if Rng.chance rng spec.forwarding then
                pick_arr stage_q.(n_stages - 1) :: base
              else base
            end
          in
          let rec tree nets =
            match nets with
            | [] -> assert false
            | [single] -> single
            | a :: b' :: rest ->
              let op = Rng.pick rng [Gates.And; Gates.Or; Gates.Xor; Gates.Nand] in
              tree (Gates.emit_fresh b op [a; b'] ~prefix:(Printf.sprintf "st%d_l%d" s k) :: rest)
          in
          let d = tree sources in
          ignore
            (Builder.add_cell b (Printf.sprintf "st%d_r%d" s k) "DFF_X1"
               [("CK", clk); ("D", d); ("Q", q)]))
        qs)
    stage_q;
  (* --- control FSM: self-looping state registers --- *)
  Array.iteri
    (fun k q ->
      let peer = ctrl_q.((k + 1) mod Array.length ctrl_q) in
      let stim = pick_arr stage_q.(0) in
      let t1 = Gates.emit_fresh b Gates.Nand [q; peer] ~prefix:(reg "ctrl_l" k) in
      let d = Gates.emit_fresh b Gates.Xor [t1; stim] ~prefix:(reg "ctrl_m" k) in
      ignore
        (Builder.add_cell b (reg "ctrl" k) "DFF_X1"
           [("CK", clk); ("D", d); ("Q", q)]))
    ctrl_q;
  (* --- outputs: data-memory interface from the last stages --- *)
  for k = 0 to w - 1 do
    Builder.add_output b (Printf.sprintf "daddr%d" k) (pick_arr exec_stage);
    Builder.add_output b (Printf.sprintf "dout%d" k) (pick_arr last_stage)
  done;
  Builder.freeze b

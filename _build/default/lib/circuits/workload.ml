type t =
  | Uniform_random of float
  | Self_check
  | Program of program

and program =
  | Pi
  | Hello_world
  | Rv32ui
  | Dhrystone
  | Coremark

let name = function
  | Uniform_random p -> Printf.sprintf "random(%.2f)" p
  | Self_check -> "self-check"
  | Program Pi -> "pi"
  | Program Hello_world -> "hello-world"
  | Program Rv32ui -> "rv32ui-v-simple"
  | Program Dhrystone -> "dhrystone"
  | Program Coremark -> "coremark"

(* Activity of the CPU interface ports per program: (imem, dmem, irq). *)
let program_rates = function
  | Pi -> (0.30, 0.20, 0.002)
  | Hello_world -> (0.12, 0.06, 0.002)
  | Rv32ui -> (0.28, 0.18, 0.0)
  | Dhrystone -> (0.38, 0.30, 0.002)
  | Coremark -> (0.46, 0.36, 0.002)

let has_prefix prefix s =
  String.length s >= String.length prefix
  && String.equal (String.sub s 0 (String.length prefix)) prefix

let stimulus t ~seed ~cycles design =
  let inputs = Sim.Stimulus.inputs_of design in
  match t with
  | Uniform_random p ->
    Sim.Stimulus.random ~seed ~cycles ~toggle_probability:p inputs
  | Self_check ->
    Sim.Stimulus.bursty ~seed ~cycles ~burst_len:48 ~idle_len:16
      ~toggle_probability:0.35 inputs
  | Program p ->
    let imem, dmem, irq = program_rates p in
    let profile input =
      if has_prefix "imem" input then imem
      else if has_prefix "dmem" input then dmem
      else if has_prefix "irq" input then irq
      else (imem +. dmem) /. 2.0
    in
    Sim.Stimulus.profiled ~seed ~cycles profile inputs

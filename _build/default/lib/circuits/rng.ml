type t = { mutable x : int64 }

let create seed = { x = Int64.of_int ((seed * 2654435769) + 12345) }

let next s =
  s.x <- Int64.add s.x 0x9E3779B97F4A7C15L;
  let z = s.x in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int s bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive"
  else Int64.to_int (Int64.rem (Int64.shift_right_logical (next s) 1) (Int64.of_int bound))

let float s =
  Int64.to_float (Int64.shift_right_logical (next s) 11) /. 9007199254740992.0

let bool s = float s < 0.5

let chance s p = float s < p

let pick s l =
  match l with
  | [] -> invalid_arg "Rng.pick: empty list"
  | _ :: _ -> List.nth l (int s (List.length l))

let shuffle s l =
  let tagged = List.map (fun x -> (float s, x)) l in
  List.map snd (List.sort (fun (a, _) (b, _) -> compare a b) tagged)

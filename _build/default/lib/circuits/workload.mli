(** Workload models: input-activity profiles standing in for the paper's
    testbench programs (pseudo-random streams for ISCAS, the CEP
    self-check programs, "pi" / "hello world" / "rv32ui-v-simple" for the
    CPU testbenches, and Dhrystone / Coremark for Fig. 4). *)

type t =
  | Uniform_random of float       (** toggle probability per input *)
  | Self_check                    (** bursty: active vectors then idle *)
  | Program of program

and program =
  | Pi          (** Plasma's "pi" benchmark: steady arithmetic *)
  | Hello_world (** mostly idle, occasional I/O *)
  | Rv32ui      (** ISA test: moderate, regular *)
  | Dhrystone   (** integer-heavy, busy memory interface *)
  | Coremark    (** busiest mix *)

val name : t -> string

(** [stimulus t ~seed ~cycles design] builds the per-cycle input stream.
    Program profiles give CPU interface ports (imem/dmem/irq) their own
    activity levels. *)
val stimulus :
  t -> seed:int -> cycles:int -> Netlist.Design.t -> Sim.Stimulus.t

(** Structural CPU-like benchmark circuits standing in for the paper's
    Plasma (3-stage MIPS), RISC-V Rocket and Arm Cortex-M0 designs.

    Each CPU is assembled from the blocks that shape its flip-flop graph:
    a self-looping program counter with branch feedback from execute, a
    register file in clock-gated banks written from the last stage (long
    feedback), pipeline rank registers with forwarding paths, and a
    self-looping control FSM.  Register totals match the published
    counts (Plasma 1606, Rocket 2795, Cortex-M0 1397). *)

type spec = {
  name : string;
  seed : int;
  width : int;
  regfile_words : int;
  stage_regs : int array;   (** registers per pipeline rank *)
  ctrl_ffs : int;           (** control-FSM registers (self-looping) *)
  forwarding : float;       (** probability of a forwarding tap per reg *)
  frequency_mhz : float;
}

val num_flip_flops : spec -> int

val plasma : spec

val riscv : spec

val arm_m0 : spec

val make : ?library:Cell_lib.Library.t -> spec -> Netlist.Design.t

(** The linear pipelines of the paper's Fig. 1: [width]-bit data flowing
    through [stages] ranks of flip-flops with a thin layer of logic
    between ranks and no feedback anywhere.  By default each bit is an
    independent chain, so the closed-form optimum of Section III-B
    ({!Phase3.Pipeline} in this project) applies exactly;
    [~cross_mix:true] XORs neighbouring bits for a denser variant. *)

val make :
  ?library:Cell_lib.Library.t -> ?seed:int -> ?cross_mix:bool ->
  ?logic_depth:int -> width:int -> stages:int -> unit -> Netlist.Design.t

module Builder = Netlist.Builder
module Gates = Netlist.Gates

type spec = {
  name : string;
  seed : int;
  inputs : int;
  outputs : int;
  layers : int array;
  fanin : int;
  cone_depth : int;
  self_loop_fraction : float;
  cross_feedback : float;
  reuse : float;
  gated_fraction : float;
  bank_size : int;
  po_cones : int;
  frequency_mhz : float;
}

let num_flip_flops spec = Array.fold_left ( + ) 0 spec.layers

let binary_ops = [Gates.And; Gates.Or; Gates.Xor; Gates.Nand; Gates.Nor; Gates.Xnor]

(* Build a random gate tree over [sources], depth-bounded, reusing
   intermediate nets from [pool] with probability [spec.reuse]. *)
let random_cone rng spec b pool prefix sources =
  let fresh_level nets depth =
    (* pairwise combine until one net remains *)
    let rec combine nets depth =
      match nets with
      | [] -> invalid_arg "random_cone: no sources"
      | [single] -> single
      | _ :: _ :: _ when depth >= spec.cone_depth ->
        (* flatten the rest with one n-ary gate *)
        Gates.emit_fresh b (Rng.pick rng [Gates.And; Gates.Or; Gates.Xor])
          nets ~prefix
      | a :: b' :: rest ->
        let op = Rng.pick rng binary_ops in
        let combined = Gates.emit_fresh b op [a; b'] ~prefix in
        if Rng.chance rng spec.reuse then pool := combined :: !pool;
        combine (rest @ [combined]) (depth + 1)
    in
    combine nets depth
  in
  let sources =
    List.map
      (fun s ->
        if Rng.chance rng 0.15 then Gates.emit_fresh b Gates.Not [s] ~prefix
        else s)
      sources
  in
  fresh_level sources 0

let synthesize ?library spec =
  let library =
    match library with Some l -> l | None -> Cell_lib.Default_library.library ()
  in
  let rng = Rng.create spec.seed in
  let b = Builder.create ~name:spec.name ~library in
  let clk = Builder.add_input ~clock:true b "clk" in
  let pis =
    List.init (max 1 spec.inputs) (fun k -> Builder.add_input b (Printf.sprintf "i%d" k))
  in
  let n_layers = Array.length spec.layers in
  (* pre-create all register output nets so cones can reference any FF *)
  let q_nets =
    Array.mapi
      (fun l count ->
        Array.init count (fun k -> Builder.fresh_net b (Printf.sprintf "q_%d_%d" l k)))
      spec.layers
  in
  (* clock gating banks: registers in each layer are covered left to right *)
  let gated_share l count =
    ignore l;
    int_of_float (Float.round (spec.gated_fraction *. float_of_int count))
  in
  (* enable cones must come from registers (stable within the cycle); use
     the previous layer, or inputs for layer 0 *)
  let enable_sources l =
    if l = 0 || Array.length q_nets.(l - 1) = 0 then pis
    else Array.to_list q_nets.(l - 1)
  in
  let gated_clock_of = Hashtbl.create 64 in  (* (layer, idx) -> net *)
  Array.iteri
    (fun l count ->
      let n_gated = gated_share l count in
      let rec banks start bank =
        if start < n_gated then begin
          let size = min spec.bank_size (n_gated - start) in
          let srcs = enable_sources l in
          let en_srcs =
            List.init (min 2 (List.length srcs)) (fun _ -> Rng.pick rng srcs)
          in
          let en =
            match en_srcs with
            | [] -> Builder.const b true
            | [single] -> single
            | _ :: _ :: _ ->
              Gates.emit_fresh b (Rng.pick rng [Gates.Or; Gates.Nand])
                en_srcs ~prefix:(Printf.sprintf "en_%d_%d" l bank)
          in
          let gck = Builder.fresh_net b (Printf.sprintf "gck_%d_%d" l bank) in
          ignore
            (Builder.add_cell b (Printf.sprintf "icg_%d_%d" l bank) "ICG_X1"
               [("CK", clk); ("EN", en); ("GCK", gck)]);
          for k = start to start + size - 1 do
            Hashtbl.replace gated_clock_of (l, k) gck
          done;
          banks (start + size) (bank + 1)
        end
      in
      banks 0 0)
    spec.layers;
  (* D cones and registers *)
  Array.iteri
    (fun l count ->
      let pool = ref [] in
      let prev_sources =
        if l = 0 then pis else Array.to_list q_nets.(l - 1)
      in
      let prev_sources = if prev_sources = [] then pis else prev_sources in
      for k = 0 to count - 1 do
        let n_src = 1 + Rng.int rng (max 1 spec.fanin) in
        let base =
          List.init n_src (fun _ ->
              if Rng.chance rng spec.reuse && !pool <> [] then Rng.pick rng !pool
              else Rng.pick rng prev_sources)
        in
        let base =
          if Rng.chance rng spec.self_loop_fraction then
            q_nets.(l).(k) :: base
          else base
        in
        let base =
          if Rng.chance rng spec.cross_feedback && n_layers > 0 then begin
            let l2 = Rng.int rng n_layers in
            if Array.length q_nets.(l2) > 0 then
              q_nets.(l2).(Rng.int rng (Array.length q_nets.(l2))) :: base
            else base
          end
          else base
        in
        let dnet =
          match base with
          | [single] ->
            (* keep at least one gate so D is not the raw source *)
            Gates.emit_fresh b Gates.Buf [single] ~prefix:(Printf.sprintf "d_%d_%d" l k)
          | _ :: _ :: _ | [] ->
            random_cone rng spec b pool (Printf.sprintf "d_%d_%d" l k) base
        in
        let ck =
          match Hashtbl.find_opt gated_clock_of (l, k) with
          | Some gck -> gck
          | None -> clk
        in
        ignore
          (Builder.add_cell b (Printf.sprintf "r_%d_%d" l k) "DFF_X1"
             [("CK", ck); ("D", dnet); ("Q", q_nets.(l).(k))])
      done)
    spec.layers;
  (* primary outputs: cones over the last layers plus direct taps *)
  let all_qs = Array.to_list q_nets |> List.concat_map Array.to_list in
  let last_qs =
    if n_layers = 0 || Array.length q_nets.(n_layers - 1) = 0 then all_qs
    else Array.to_list q_nets.(n_layers - 1)
  in
  let last_qs = if last_qs = [] then pis else last_qs in
  let po_pool = ref [] in
  for k = 0 to spec.po_cones - 1 do
    let srcs = List.init (max 2 spec.fanin) (fun _ -> Rng.pick rng last_qs) in
    po_pool :=
      random_cone rng spec b (ref []) (Printf.sprintf "po_cone%d" k) srcs :: !po_pool
  done;
  let taps = !po_pool @ last_qs in
  for k = 0 to max 1 spec.outputs - 1 do
    Builder.add_output b (Printf.sprintf "o%d" k) (List.nth taps (k mod List.length taps))
  done;
  Builder.freeze b

let alternating_layers ~ffs ~n_layers ~ratio =
  let n_layers = max 1 n_layers in
  let weights =
    Array.init n_layers (fun k -> if k mod 2 = 0 then ratio else 1.0 -. ratio)
  in
  let weight_sum = Array.fold_left ( +. ) 0.0 weights in
  let raw = Array.map (fun w -> w /. weight_sum *. float_of_int ffs) weights in
  let layers = Array.map (fun r -> int_of_float (Float.round r)) raw in
  (* fix rounding drift on the widest layer *)
  let diff = ffs - Array.fold_left ( + ) 0 layers in
  if Array.length layers > 0 then layers.(0) <- max 1 (layers.(0) + diff);
  layers

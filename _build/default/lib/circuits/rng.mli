(** Deterministic splitmix-style PRNG for reproducible circuit
    generation (independent of the global [Random] state). *)

type t

val create : int -> t

val int : t -> int -> int
(** [int t bound] in [0, bound). *)

val float : t -> float
(** uniform in [0, 1). *)

val bool : t -> bool

val chance : t -> float -> bool
(** [chance t p] is true with probability [p]. *)

val pick : t -> 'a list -> 'a
(** uniform element of a non-empty list. *)

val shuffle : t -> 'a list -> 'a list

(** Synthetic benchmark synthesis.

    Real benchmark RTL (ISCAS89 netlists, the MIT-LL CEP submodules) is
    not redistributable inside this repository, so each benchmark is
    replaced by a generated circuit with the same register count and the
    structural character that drives the paper's results: the layering of
    registers into pipeline stages, the fraction of flip-flops with
    combinational self-loops, cross-layer feedback density, and the
    grouping of registers under clock-gate enables.  See DESIGN.md for the
    substitution rationale. *)

type spec = {
  name : string;
  seed : int;
  inputs : int;
  outputs : int;
  layers : int array;           (** flip-flops per pipeline layer *)
  fanin : int;                  (** distinct sources per register D cone *)
  cone_depth : int;             (** max gate-tree depth of a D cone *)
  self_loop_fraction : float;   (** registers with direct comb feedback *)
  cross_feedback : float;       (** probability a cone also samples a
                                    non-previous layer (creates FF-graph
                                    cycles like control logic does) *)
  reuse : float;                (** probability of reusing an existing
                                    intermediate net (fanout sharing) *)
  gated_fraction : float;       (** registers behind integrated clock
                                    gates, grouped in banks *)
  bank_size : int;
  po_cones : int;               (** extra comb cones feeding outputs *)
  frequency_mhz : float;
}

(** Sum of [layers]. *)
val num_flip_flops : spec -> int

val synthesize : ?library:Cell_lib.Library.t -> spec -> Netlist.Design.t

(** [alternating_layers ~ffs ~n_layers ~ratio] splits [ffs] registers into
    alternating wide/narrow layers with the wide layers holding [ratio] of
    each wide+narrow pair — the structure of datapath-dominated designs
    (wide state ranks, narrow key/control ranks) where conversion keeps
    most registers as single latches. *)
val alternating_layers : ffs:int -> n_layers:int -> ratio:float -> int array

module Builder = Netlist.Builder
module Gates = Netlist.Gates

(* Per-bit chains keep the FF graph a disjoint union of paths, so the
   closed-form optimum of Section III-B applies exactly.  [cross_mix]
   optionally XORs neighbouring bits between stages for a denser
   datapath-like variant. *)
let make ?library ?(seed = 1) ?(cross_mix = false) ?(logic_depth = 1) ~width
    ~stages () =
  let library =
    match library with Some l -> l | None -> Cell_lib.Default_library.library ()
  in
  let rng = Rng.create seed in
  let b = Builder.create ~name:(Printf.sprintf "linpipe_w%d_s%d" width stages) ~library in
  let clk = Builder.add_input ~clock:true b "clk" in
  let ins = List.init width (fun k -> Builder.add_input b (Printf.sprintf "i%d" k)) in
  let stage s data =
    let arr = Array.of_list data in
    List.init width (fun k ->
        (* optional buffer chain models deeper per-stage logic; it sits
           right after the upstream register, where retiming can move the
           inserted latches forward without changing the reset state *)
        let rec deepen src j =
          if j <= 1 then src
          else
            deepen
              (Gates.emit_fresh b Gates.Buf [src]
                 ~prefix:(Printf.sprintf "b_%d_%d_%d" s k j))
              (j - 1)
        in
        let deep = deepen arr.(k) logic_depth in
        let d =
          if cross_mix && Rng.chance rng 0.5 then
            Gates.emit_fresh b Gates.Xor
              [deep; arr.((k + 1) mod width)]
              ~prefix:(Printf.sprintf "x_%d_%d" s k)
          else
            Gates.emit_fresh b Gates.Not [deep] ~prefix:(Printf.sprintf "n_%d_%d" s k)
        in
        let q = Builder.fresh_net b (Printf.sprintf "q_%d_%d" s k) in
        ignore
          (Builder.add_cell b (Printf.sprintf "r_%d_%d" s k) "DFF_X1"
             [("CK", clk); ("D", d); ("Q", q)]);
        q)
  in
  let rec run s data = if s >= stages then data else run (s + 1) (stage s data) in
  let outs = run 0 ins in
  List.iteri (fun k n -> Builder.add_output b (Printf.sprintf "o%d" k) n) outs;
  Builder.freeze b

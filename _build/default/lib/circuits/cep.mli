(** CEP-submodule-like benchmark profiles: crypto datapaths with the
    register counts of the MIT-LL Common Evaluation Platform blocks the
    paper uses.  AES and MD5 are wide feed-forward round pipelines (large
    single-latch opportunity); SHA256's chained working variables create a
    denser feedback structure; DES3 sits in between. *)

val aes : Generator.spec
val des3 : Generator.spec
val sha256 : Generator.spec
val md5 : Generator.spec

val all : Generator.spec list

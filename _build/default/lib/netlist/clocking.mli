(** Clock-network tracing: walk a clock pin's net back to its root port,
    through clock buffers, inverters and integrated clock-gating cells. *)

type path_element =
  | Through_icg of Design.inst
  | Through_buffer of Design.inst   (** buffer or inverter on the clock path *)

type trace = {
  root_port : string;               (** the primary-input clock port *)
  elements : path_element list;     (** root-to-leaf order *)
}

(** [trace_to_root d net] walks backwards from [net].  Returns [None] when
    the net does not originate at a clock port (e.g. a generated clock from
    ordinary logic, which this project treats as unsupported). *)
val trace_to_root : Design.t -> Design.net -> trace option

(** The ICG instance directly gating [net], if any (the last ICG on the
    path from the root). *)
val gating_icg : Design.t -> Design.net -> Design.inst option

(** All nets belonging to the clock network rooted at port [port]:
    the port net plus every net downstream through buffers/inverters/ICGs,
    stopping at sequential clock pins. *)
val clock_network_nets : Design.t -> port:string -> Design.net list

(** Sequential instances whose clock pin is (transitively) driven from
    [port]. *)
val sinks_of_port : Design.t -> port:string -> Design.inst list

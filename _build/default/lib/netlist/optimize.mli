(** Light netlist cleanup, the tail end of what a synthesis tool would run
    after a structural rewrite:

    - {b constant folding}: combinational cells whose output is fixed by
      constant inputs are replaced by ties, iterated to a fixed point;
    - {b buffer collapsing}: non-inverting single-input cells are removed
      and their readers rewired to the source (clock-network buffers are
      kept — they model the clock tree);
    - {b dead-logic sweep}: cells driving nets that no instance and no
      output port reads are deleted, iterated to a fixed point.

    The pass never touches sequential elements or clock-gating cells, so
    stream equivalence is preserved by construction (and asserted in the
    tests). *)

type stats = {
  folded : int;       (** cells replaced by constants *)
  collapsed : int;    (** buffers removed *)
  swept : int;        (** dead cells removed *)
}

val run : Design.t -> Design.t * stats

(** Convenience constructors that map n-ary logic operations onto the
    binary/ternary cells available in a library, building balanced trees.
    Shared by the format parsers and the benchmark-circuit generators. *)

type op = And | Or | Nand | Nor | Xor | Xnor | Not | Buf

(** [emit b op inputs ~out ~prefix] instantiates cells computing
    [op inputs] onto net [out].  Intermediate nets and instances are named
    from [prefix].  Raises [Invalid_argument] when [inputs] is empty (or
    not a singleton for [Not]/[Buf]). *)
val emit :
  Builder.t -> op -> Design.net list -> out:Design.net -> prefix:string -> unit

(** [emit_fresh b op inputs ~prefix] allocates the output net itself. *)
val emit_fresh : Builder.t -> op -> Design.net list -> prefix:string -> Design.net

(** A 2:1 mux: [mux2 b ~sel ~a ~b_in ~prefix] returns the output net
    carrying [sel ? b_in : a]. *)
val mux2 :
  Builder.t -> sel:Design.net -> a:Design.net -> b_in:Design.net ->
  prefix:string -> Design.net

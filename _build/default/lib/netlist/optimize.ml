type stats = {
  folded : int;
  collapsed : int;
  swept : int;
}

(* three-valued constant evaluation over cell functions *)
let rec eval_const env = function
  | Cell_lib.Expr.Const b -> Some b
  | Cell_lib.Expr.Pin p -> env p
  | Cell_lib.Expr.Not e -> Option.map not (eval_const env e)
  | Cell_lib.Expr.And (a, b) ->
    (match eval_const env a, eval_const env b with
     | Some false, _ | _, Some false -> Some false
     | Some true, Some true -> Some true
     | _, _ -> None)
  | Cell_lib.Expr.Or (a, b) ->
    (match eval_const env a, eval_const env b with
     | Some true, _ | _, Some true -> Some true
     | Some false, Some false -> Some false
     | _, _ -> None)
  | Cell_lib.Expr.Xor (a, b) ->
    (match eval_const env a, eval_const env b with
     | Some x, Some y -> Some (x <> y)
     | _, _ -> None)

let run d =
  let n_nets = Design.num_nets d in
  (* --- constant propagation (memoised, cycle-guarded) --------------- *)
  let const_memo : bool option option array = Array.make n_nets None in
  let rec const_of net =
    match const_memo.(net) with
    | Some v -> v
    | None ->
      const_memo.(net) <- Some None;  (* guard *)
      let v =
        match d.Design.net_driver.(net) with
        | Design.Driven_const b -> Some b
        | Design.Driven_by_input _ | Design.Undriven -> None
        | Design.Driven_by (i, pin) ->
          let c = Design.cell d i in
          (match c.Cell_lib.Cell.kind with
           | Cell_lib.Cell.Combinational ->
             (match Cell_lib.Cell.find_pin c pin with
              | Some { Cell_lib.Cell.func = Some f; _ } ->
                eval_const
                  (fun pname ->
                    match Design.pin_net_opt d i pname with
                    | Some m -> const_of m
                    | None -> None)
                  f
              | Some _ | None -> None)
           | Cell_lib.Cell.Flip_flop _ | Cell_lib.Cell.Latch _
           | Cell_lib.Cell.Clock_gate _ -> None)
      in
      const_memo.(net) <- Some v;
      v
  in
  (* clock-network nets: buffers there stay (they model the clock tree) *)
  let clock_nets = Hashtbl.create 64 in
  List.iter
    (fun port ->
      List.iter (fun m -> Hashtbl.replace clock_nets m ())
        (Clocking.clock_network_nets d ~port))
    d.Design.clock_ports;
  (* --- classification ------------------------------------------------ *)
  (* per net: `Keep, `Const of bool, or `Alias of source_net *)
  let folded = ref 0 and collapsed = ref 0 in
  let classify = Array.make n_nets `Keep in
  for net = 0 to n_nets - 1 do
    match d.Design.net_driver.(net) with
    | Design.Driven_by (i, pin) when not (Hashtbl.mem clock_nets net) ->
      let c = Design.cell d i in
      (match c.Cell_lib.Cell.kind with
       | Cell_lib.Cell.Combinational ->
         (match const_of net with
          | Some b ->
            classify.(net) <- `Const b;
            incr folded
          | None ->
            (* non-inverting single-input cell = buffer *)
            (match Cell_lib.Cell.find_pin c pin with
             | Some { Cell_lib.Cell.func = Some (Cell_lib.Expr.Pin p); _ } ->
               (match Design.pin_net_opt d i p with
                | Some src ->
                  classify.(net) <- `Alias src;
                  incr collapsed
                | None -> ())
             | Some _ | None -> ()))
       | Cell_lib.Cell.Flip_flop _ | Cell_lib.Cell.Latch _
       | Cell_lib.Cell.Clock_gate _ -> ())
    | Design.Driven_by _ | Design.Driven_by_input _ | Design.Driven_const _
    | Design.Undriven -> ()
  done;
  (* resolve a net to its representative through alias/const chains *)
  let rec resolve net fuel =
    if fuel = 0 then `Keep_net net
    else
      match classify.(net) with
      | `Const b -> `Const b
      | `Alias src -> resolve src (fuel - 1)
      | `Keep -> `Keep_net net
  in
  let resolve net = resolve net n_nets in
  (* an instance is obsolete when its only role was producing a folded or
     collapsed net *)
  let inst_obsolete i =
    let c = Design.cell d i in
    c.Cell_lib.Cell.kind = Cell_lib.Cell.Combinational
    && (match Design.output_nets d i with
        | [out] ->
          (match classify.(out) with `Const _ | `Alias _ -> true | `Keep -> false)
        | [] | _ :: _ :: _ -> false)
  in
  (* --- liveness sweep ------------------------------------------------ *)
  let live_net = Array.make n_nets false in
  let queue = Queue.create () in
  let mark net =
    match resolve net with
    | `Const _ -> ()
    | `Keep_net m ->
      if not live_net.(m) then begin
        live_net.(m) <- true;
        Queue.add m queue
      end
  in
  List.iter (fun (_, net) -> mark net) d.Design.primary_outputs;
  Design.fold_insts
    (fun i () ->
      let c = Design.cell d i in
      match c.Cell_lib.Cell.kind with
      | Cell_lib.Cell.Flip_flop _ | Cell_lib.Cell.Latch _
      | Cell_lib.Cell.Clock_gate _ ->
        List.iter mark (Design.input_nets d i)
      | Cell_lib.Cell.Combinational -> ())
    d ();
  while not (Queue.is_empty queue) do
    let net = Queue.pop queue in
    match d.Design.net_driver.(net) with
    | Design.Driven_by (i, _) when not (inst_obsolete i) ->
      List.iter mark (Design.input_nets d i)
    | Design.Driven_by _ | Design.Driven_by_input _ | Design.Driven_const _
    | Design.Undriven -> ()
  done;
  let swept = ref 0 in
  let keep_inst i =
    let c = Design.cell d i in
    match c.Cell_lib.Cell.kind with
    | Cell_lib.Cell.Flip_flop _ | Cell_lib.Cell.Latch _
    | Cell_lib.Cell.Clock_gate _ -> true
    | Cell_lib.Cell.Combinational ->
      if inst_obsolete i then false
      else if Hashtbl.mem clock_nets (match Design.output_nets d i with
          | out :: _ -> out
          | [] -> -1)
      then true
      else
        let alive = List.exists (fun n -> live_net.(n)) (Design.output_nets d i) in
        if not alive then incr swept;
        alive
  in
  (* --- rebuild -------------------------------------------------------- *)
  let b = Builder.create ~name:d.Design.design_name ~library:d.Design.library in
  let net_map = Array.make n_nets (-1) in
  List.iter
    (fun (port, net) ->
      net_map.(net) <- Builder.add_input ~clock:(Design.is_clock_port d port) b port)
    d.Design.primary_inputs;
  let rec map_net net =
    match resolve net with
    | `Const v -> Builder.const b v
    | `Keep_net m ->
      if m <> net then map_net m
      else begin
        (match d.Design.net_driver.(m) with
         | Design.Driven_const v -> if net_map.(m) < 0 then net_map.(m) <- Builder.const b v
         | Design.Driven_by _ | Design.Driven_by_input _ | Design.Undriven -> ());
        if net_map.(m) < 0 then net_map.(m) <- Builder.fresh_net b (Design.net_name d m);
        net_map.(m)
      end
  in
  Design.fold_insts
    (fun i () ->
      if keep_inst i then begin
        let conns =
          Array.to_list d.Design.inst_conns.(i)
          |> List.map (fun (pin, net) -> (pin, map_net net))
        in
        ignore (Builder.add_instance b (Design.inst_name d i) (Design.cell d i) conns)
      end)
    d ();
  List.iter
    (fun (port, net) -> Builder.add_output b port (map_net net))
    d.Design.primary_outputs;
  (Builder.freeze b, { folded = !folded; collapsed = !collapsed; swept = !swept })

(** Topological traversal of the combinational portion of a design.

    Sources are primary inputs, constants and the outputs of sequential and
    clock-gating cells; only [Combinational] instances are ordered. *)

(** [comb_topo d] returns combinational instances in dependency order
    (drivers before readers), or [Error insts] listing instances caught in
    a combinational cycle. *)
val comb_topo : Design.t -> (Design.inst list, Design.inst list) result

(** [comb_topo_exn d] raises [Invalid_argument] on a combinational cycle. *)
val comb_topo_exn : Design.t -> Design.inst list

(** [net_levels d] assigns each net a level: sources are 0, the output of
    a combinational instance is 1 + max of its input levels.  Outputs of
    sequential/ICG cells are level 0.  Raises on combinational cycles. *)
val net_levels : Design.t -> int array

(** [reachable_seq_inputs d ~from] walks forward from net [from] through
    combinational instances only and returns the sequential instances whose
    data pin is reached, together with a flag per instance marking whether
    the path also reaches an ICG enable pin. *)
val reachable_seq_inputs : Design.t -> from:Design.net -> Design.inst list

(** Register counts and area totals, the raw material of the paper's
    Table I. *)

type t = {
  flip_flops : int;
  latches : int;
  clock_gates : int;
  comb_cells : int;
  registers : int;          (** flip_flops + latches *)
  seq_area : float;
  clock_gate_area : float;
  comb_area : float;
  total_area : float;
  total_leakage : float;    (** nW *)
}

val compute : Design.t -> t

val pp : Format.formatter -> t -> unit

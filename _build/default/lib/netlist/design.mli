(** The gate-level netlist intermediate representation.

    A design is a frozen graph of cell instances connected by nets.  Nets
    and instances are identified by dense integer ids, so analyses can use
    arrays.  Construction goes through {!Builder}; a frozen design is
    immutable (rewrites produce a new design). *)

type net = int

type inst = int

(** How a net is driven. *)
type driver =
  | Driven_by of inst * string  (** instance output pin *)
  | Driven_by_input of string   (** primary-input port name *)
  | Driven_const of bool        (** tie-high / tie-low *)
  | Undriven

type t = {
  design_name : string;
  library : Cell_lib.Library.t;
  net_names : string array;
  net_driver : driver array;
  net_sinks : (inst * string) list array;  (** instance input pins reading the net *)
  inst_names : string array;
  inst_cells : Cell_lib.Cell.t array;
  inst_conns : (string * net) array array; (** pin name -> net, all pins *)
  primary_inputs : (string * net) list;    (** includes clock ports *)
  primary_outputs : (string * net) list;
  clock_ports : string list;               (** subset of primary input names *)
}

val num_nets : t -> int

val num_insts : t -> int

val net_name : t -> net -> string

val inst_name : t -> inst -> string

val cell : t -> inst -> Cell_lib.Cell.t

(** [pin_net d i pin] is the net connected to [pin] of instance [i].
    Raises [Not_found] when the pin is unconnected. *)
val pin_net : t -> inst -> string -> net

val pin_net_opt : t -> inst -> string -> net option

(** Nets read (input pins) / driven (output pins) by an instance. *)
val input_nets : t -> inst -> net list

val output_nets : t -> inst -> net list

(** All instances, in id order. *)
val insts : t -> inst list

(** Sequential elements (flip-flops and latches), in id order. *)
val sequential_insts : t -> inst list

val clock_gate_insts : t -> inst list

(** The net driving the clock/enable pin of a sequential or ICG instance. *)
val clock_net_of : t -> inst -> net option

(** The data input net of a flip-flop or latch. *)
val data_net_of : t -> inst -> net option

(** The (single) output net of a sequential or ICG instance, if driven. *)
val q_net_of : t -> inst -> net option

val is_clock_port : t -> string -> bool

(** Find a primary input net by port name. *)
val find_input : t -> string -> net option

val find_inst : t -> string -> inst option

(** Fold over all instances. *)
val fold_insts : (inst -> 'a -> 'a) -> t -> 'a -> 'a

lib/netlist/dot.ml: Array Buffer Cell_lib Design List Printf String

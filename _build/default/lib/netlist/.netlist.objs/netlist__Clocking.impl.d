lib/netlist/clocking.ml: Array Cell_lib Design Hashtbl List String

lib/netlist/dot.mli: Design

lib/netlist/design.mli: Cell_lib

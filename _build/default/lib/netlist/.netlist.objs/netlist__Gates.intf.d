lib/netlist/gates.mli: Builder Design

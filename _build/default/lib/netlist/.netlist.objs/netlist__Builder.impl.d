lib/netlist/builder.ml: Array Cell_lib Design Hashtbl List Printf

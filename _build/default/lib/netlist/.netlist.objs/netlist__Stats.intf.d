lib/netlist/stats.mli: Design Format

lib/netlist/ff_graph.mli: Design Hashtbl

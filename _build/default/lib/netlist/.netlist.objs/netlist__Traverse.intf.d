lib/netlist/traverse.mli: Design

lib/netlist/optimize.ml: Array Builder Cell_lib Clocking Design Hashtbl List Option Queue

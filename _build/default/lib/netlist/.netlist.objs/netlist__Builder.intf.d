lib/netlist/builder.mli: Cell_lib Design

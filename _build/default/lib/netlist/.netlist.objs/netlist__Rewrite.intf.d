lib/netlist/rewrite.mli: Builder Design

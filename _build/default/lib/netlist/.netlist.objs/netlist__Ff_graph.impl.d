lib/netlist/ff_graph.ml: Array Buffer Design Hashtbl List Printf Traverse

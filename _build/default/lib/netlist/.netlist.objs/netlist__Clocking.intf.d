lib/netlist/clocking.mli: Design

lib/netlist/check.ml: Array Clocking Design Format Hashtbl List Traverse

lib/netlist/optimize.mli: Design

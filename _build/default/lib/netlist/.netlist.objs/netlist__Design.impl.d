lib/netlist/design.ml: Array Cell_lib Fun List Option String

lib/netlist/gates.ml: Builder Cell_lib List Printf String

lib/netlist/stats.ml: Cell_lib Design Format

lib/netlist/traverse.ml: Array Cell_lib Design Hashtbl List Printf Queue String

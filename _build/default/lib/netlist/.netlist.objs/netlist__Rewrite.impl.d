lib/netlist/rewrite.ml: Array Builder Design List Option

type t = {
  original : Design.t;
  b : Builder.t;
  net_map : int array;
}

let start ?name d =
  let name = Option.value ~default:d.Design.design_name name in
  let b = Builder.create ~name ~library:d.Design.library in
  let net_map = Array.make (Design.num_nets d) (-1) in
  List.iter
    (fun (port, net) ->
      net_map.(net) <- Builder.add_input ~clock:(Design.is_clock_port d port) b port)
    d.Design.primary_inputs;
  Array.iteri
    (fun n drv ->
      match drv with
      | Design.Driven_const v -> net_map.(n) <- Builder.const b v
      | Design.Driven_by _ | Design.Driven_by_input _ | Design.Undriven -> ())
    d.Design.net_driver;
  { original = d; b; net_map }

let builder t = t.b

let map_net t old =
  if t.net_map.(old) < 0 then
    t.net_map.(old) <- Builder.fresh_net t.b (Design.net_name t.original old);
  t.net_map.(old)

let copy_inst ?(override = []) t i =
  let d = t.original in
  let conns =
    Array.to_list d.Design.inst_conns.(i)
    |> List.map (fun (pin, n) ->
        match List.assoc_opt pin override with
        | Some net -> (pin, net)
        | None -> (pin, map_net t n))
  in
  ignore (Builder.add_instance t.b (Design.inst_name d i) (Design.cell d i) conns)

let finish t =
  List.iter
    (fun (port, net) -> Builder.add_output t.b port (map_net t net))
    t.original.Design.primary_outputs;
  Builder.freeze t.b

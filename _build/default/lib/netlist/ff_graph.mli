(** The flip-flop reachability graph of Section IV-A of the paper.

    Node [u]'s fanout set [FO(u)] contains the sequential elements whose
    data input is reachable from [u]'s output through combinational logic
    only.  Primary inputs (other than clock ports) are tracked separately
    because the ILP treats them as virtually clocked by phase [p1]. *)

type t = {
  members : Design.inst array;       (** sequential instances, graph position order *)
  position : (Design.inst, int) Hashtbl.t;
  fanout : int list array;           (** position -> fanout positions *)
  fanin : int list array;            (** position -> fanin positions *)
  self_loop : bool array;            (** u in FO(u) *)
  pi_names : string array;           (** non-clock primary inputs *)
  pi_fanout : int list array;        (** PI index -> positions *)
}

val build : Design.t -> t

val size : t -> int

(** Positions of nodes with combinational feedback onto themselves. *)
val self_loop_count : t -> int

(** [to_dot g d] renders the graph for debugging. *)
val to_dot : t -> Design.t -> string

(** Structural validation of a design.  Used before and after conversion
    to catch netlist-rewrite bugs early. *)

type issue = {
  severity : [ `Error | `Warning ];
  message : string;
}

(** [run d] performs all checks:
    - every instance input pin and primary output is driven;
    - no combinational cycles;
    - every sequential clock pin traces back to a declared clock port;
    - instance and net names are unique. *)
val run : Design.t -> issue list

(** [validate d] returns [Ok ()] when {!run} finds no [`Error]-severity
    issue, otherwise [Error messages]. *)
val validate : Design.t -> (unit, string list) result

val pp_issue : Format.formatter -> issue -> unit

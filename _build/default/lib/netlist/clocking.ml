type path_element =
  | Through_icg of Design.inst
  | Through_buffer of Design.inst

type trace = {
  root_port : string;
  elements : path_element list;
}

let is_buffer_like (c : Cell_lib.Cell.t) =
  c.Cell_lib.Cell.kind = Cell_lib.Cell.Combinational
  && List.length (Cell_lib.Cell.input_pins c) = 1

let trace_to_root d net =
  let rec go net acc fuel =
    if fuel = 0 then None
    else
      match d.Design.net_driver.(net) with
      | Design.Driven_by_input port ->
        if Design.is_clock_port d port then Some { root_port = port; elements = acc }
        else None
      | Design.Driven_const _ | Design.Undriven -> None
      | Design.Driven_by (i, _) ->
        let c = Design.cell d i in
        (match c.Cell_lib.Cell.kind with
         | Cell_lib.Cell.Clock_gate { clock_pin; _ } ->
           (match Design.pin_net_opt d i clock_pin with
            | Some upstream -> go upstream (Through_icg i :: acc) (fuel - 1)
            | None -> None)
         | Cell_lib.Cell.Combinational when is_buffer_like c ->
           (match Design.input_nets d i with
            | [upstream] -> go upstream (Through_buffer i :: acc) (fuel - 1)
            | [] | _ :: _ :: _ -> None)
         | Cell_lib.Cell.Combinational | Cell_lib.Cell.Flip_flop _
         | Cell_lib.Cell.Latch _ -> None)
  in
  go net [] 10_000

let gating_icg d net =
  match trace_to_root d net with
  | None -> None
  | Some { elements; _ } ->
    List.fold_left
      (fun acc el -> match el with Through_icg i -> Some i | Through_buffer _ -> acc)
      None elements

let clock_network_nets d ~port =
  match Design.find_input d port with
  | None -> []
  | Some root ->
    let visited = Hashtbl.create 64 in
    let out = ref [] in
    let rec walk net =
      if not (Hashtbl.mem visited net) then begin
        Hashtbl.add visited net ();
        out := net :: !out;
        List.iter
          (fun (i, pin) ->
            let c = Design.cell d i in
            match c.Cell_lib.Cell.kind with
            | Cell_lib.Cell.Clock_gate { clock_pin; _ } when String.equal pin clock_pin ->
              List.iter walk (Design.output_nets d i)
            | Cell_lib.Cell.Combinational when is_buffer_like c ->
              List.iter walk (Design.output_nets d i)
            | Cell_lib.Cell.Clock_gate _ | Cell_lib.Cell.Combinational
            | Cell_lib.Cell.Flip_flop _ | Cell_lib.Cell.Latch _ -> ())
          d.Design.net_sinks.(net)
      end
    in
    walk root;
    List.rev !out

let sinks_of_port d ~port =
  let nets = clock_network_nets d ~port in
  let net_set = Hashtbl.create 64 in
  List.iter (fun n -> Hashtbl.add net_set n ()) nets;
  List.filter
    (fun i ->
      match Design.clock_net_of d i with
      | Some n -> Hashtbl.mem net_set n
      | None -> false)
    (Design.sequential_insts d)

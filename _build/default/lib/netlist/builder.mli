(** Mutable netlist construction.  Typical usage:

    {[
      let b = Builder.create ~name:"top" ~library in
      let clk = Builder.add_input b "clk" ~clock:true in
      let a = Builder.add_input b "a" in
      let n1 = Builder.fresh_net b "n1" in
      ignore (Builder.add_cell b "u1" "INV_X1" [ "A", a; "ZN", n1 ]);
      Builder.add_output b "y" n1;
      let design = Builder.freeze b in
      ...
    ]}

    [freeze] checks structural sanity (every pin known to the cell, at most
    one driver per net) and computes the driver/sink indexes. *)

type t

val create : name:string -> library:Cell_lib.Library.t -> t

val library : t -> Cell_lib.Library.t

(** [fresh_net b base] creates a new net.  If [base] is already used, a
    numeric suffix is appended to keep names unique. *)
val fresh_net : t -> string -> Design.net

(** [add_input b port] creates a primary input port and its net.  Ports
    with [~clock:true] are recorded as clock roots. *)
val add_input : ?clock:bool -> t -> string -> Design.net

val add_output : t -> string -> Design.net -> unit

(** [const b v] returns the net tied to constant [v], creating it on first
    use. *)
val const : t -> bool -> Design.net

(** [add_cell b inst_name cell_name conns] instantiates a library cell.
    Raises [Invalid_argument] if the cell or one of its pins is unknown. *)
val add_cell : t -> string -> string -> (string * Design.net) list -> Design.inst

(** Like {!add_cell} but with an already-resolved cell. *)
val add_instance : t -> string -> Cell_lib.Cell.t -> (string * Design.net) list -> Design.inst

(** Number of instances added so far (useful for generating names). *)
val size : t -> int

(** Validate and produce the immutable design.
    Raises [Invalid_argument] on multiply-driven nets. *)
val freeze : t -> Design.t

type t = {
  members : Design.inst array;
  position : (Design.inst, int) Hashtbl.t;
  fanout : int list array;
  fanin : int list array;
  self_loop : bool array;
  pi_names : string array;
  pi_fanout : int list array;
}

let build d =
  let members = Array.of_list (Design.sequential_insts d) in
  let n = Array.length members in
  let position = Hashtbl.create (2 * n) in
  Array.iteri (fun pos i -> Hashtbl.add position i pos) members;
  let fanout = Array.make n [] in
  let fanin = Array.make n [] in
  let self_loop = Array.make n false in
  let reach_from net =
    List.filter_map
      (fun i -> Hashtbl.find_opt position i)
      (Traverse.reachable_seq_inputs d ~from:net)
  in
  Array.iteri
    (fun pos i ->
      match Design.q_net_of d i with
      | None -> ()
      | Some q ->
        let outs = reach_from q in
        fanout.(pos) <- outs;
        List.iter
          (fun v ->
            if v = pos then self_loop.(pos) <- true;
            fanin.(v) <- pos :: fanin.(v))
          outs)
    members;
  Array.iteri (fun v ins -> fanin.(v) <- List.rev ins) fanin;
  let pis =
    List.filter (fun (p, _) -> not (Design.is_clock_port d p)) d.Design.primary_inputs
  in
  let pi_names = Array.of_list (List.map fst pis) in
  let pi_fanout =
    Array.of_list (List.map (fun (_, net) -> reach_from net) pis)
  in
  { members; position; fanout; fanin; self_loop; pi_names; pi_fanout }

let size g = Array.length g.members

let self_loop_count g =
  Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 g.self_loop

let to_dot g d =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph ff_graph {\n";
  Array.iteri
    (fun pos i ->
      Buffer.add_string buf
        (Printf.sprintf "  n%d [label=\"%s\"%s];\n" pos (Design.inst_name d i)
           (if g.self_loop.(pos) then ", style=filled, fillcolor=salmon" else "")))
    g.members;
  Array.iteri
    (fun pos outs ->
      List.iter
        (fun v -> Buffer.add_string buf (Printf.sprintf "  n%d -> n%d;\n" pos v))
        outs)
    g.fanout;
  Array.iteri
    (fun k outs ->
      if outs <> [] then begin
        Buffer.add_string buf
          (Printf.sprintf "  pi%d [label=\"%s\", shape=box];\n" k g.pi_names.(k));
        List.iter
          (fun v -> Buffer.add_string buf (Printf.sprintf "  pi%d -> n%d;\n" k v))
          outs
      end)
    g.pi_fanout;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

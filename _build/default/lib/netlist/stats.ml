type t = {
  flip_flops : int;
  latches : int;
  clock_gates : int;
  comb_cells : int;
  registers : int;
  seq_area : float;
  clock_gate_area : float;
  comb_area : float;
  total_area : float;
  total_leakage : float;
}

let compute d =
  let zero = {
    flip_flops = 0; latches = 0; clock_gates = 0; comb_cells = 0; registers = 0;
    seq_area = 0.0; clock_gate_area = 0.0; comb_area = 0.0; total_area = 0.0;
    total_leakage = 0.0;
  } in
  let acc =
    Design.fold_insts
      (fun i acc ->
        let c = Design.cell d i in
        let area = c.Cell_lib.Cell.area in
        let acc = { acc with
                    total_area = acc.total_area +. area;
                    total_leakage = acc.total_leakage +. c.Cell_lib.Cell.leakage } in
        match c.Cell_lib.Cell.kind with
        | Cell_lib.Cell.Flip_flop _ ->
          { acc with flip_flops = acc.flip_flops + 1; seq_area = acc.seq_area +. area }
        | Cell_lib.Cell.Latch _ ->
          { acc with latches = acc.latches + 1; seq_area = acc.seq_area +. area }
        | Cell_lib.Cell.Clock_gate _ ->
          { acc with clock_gates = acc.clock_gates + 1;
                     clock_gate_area = acc.clock_gate_area +. area }
        | Cell_lib.Cell.Combinational ->
          { acc with comb_cells = acc.comb_cells + 1;
                     comb_area = acc.comb_area +. area })
      d zero
  in
  { acc with registers = acc.flip_flops + acc.latches }

let pp ppf s =
  Format.fprintf ppf
    "@[<v>registers: %d (%d FF + %d latch), %d ICG, %d comb cells@,\
     area: %.1f um^2 (seq %.1f, icg %.1f, comb %.1f), leakage %.1f nW@]"
    s.registers s.flip_flops s.latches s.clock_gates s.comb_cells
    s.total_area s.seq_area s.clock_gate_area s.comb_area s.total_leakage

type op = And | Or | Nand | Nor | Xor | Xnor | Not | Buf

let fresh_name b prefix = Printf.sprintf "%s_g%d" prefix (Builder.size b)

let pin_names cell =
  let inputs = Cell_lib.Cell.input_pins cell in
  let outputs = Cell_lib.Cell.output_pins cell in
  match outputs with
  | [o] ->
    (List.map (fun (p : Cell_lib.Cell.pin) -> p.Cell_lib.Cell.pin_name) inputs,
     o.Cell_lib.Cell.pin_name)
  | [] | _ :: _ :: _ -> invalid_arg "Gates: cell must have exactly one output"

let instantiate b cell_name inputs out prefix =
  let cell = Cell_lib.Library.find_exn (Builder.library b) cell_name in
  let in_pins, out_pin = pin_names cell in
  if List.length in_pins <> List.length inputs then
    invalid_arg (Printf.sprintf "Gates: %s arity mismatch" cell_name);
  let conns = List.combine in_pins inputs @ [(out_pin, out)] in
  ignore (Builder.add_instance b (fresh_name b prefix) cell conns)

(* Cell names per positive base op, widest first. *)
let widths_of op =
  match op with
  | And -> [3, "AND3_X1"; 2, "AND2_X1"]
  | Or -> [3, "OR3_X1"; 2, "OR2_X1"]
  | Xor -> [2, "XOR2_X1"]
  | Nand -> [4, "NAND4_X1"; 3, "NAND3_X1"; 2, "NAND2_X1"]
  | Nor -> [3, "NOR3_X1"; 2, "NOR2_X1"]
  | Xnor -> [2, "XNOR2_X1"]
  | Not -> [1, "INV_X1"]
  | Buf -> [1, "BUF_X2"]

(* Reduce [inputs] with a positive associative op (And/Or/Xor) into [out],
   chunking through the widest available cell. *)
let rec reduce b op inputs out prefix =
  let widths = widths_of op in
  let max_w, _ = match widths with w :: _ -> w | [] -> assert false in
  match inputs with
  | [] -> invalid_arg "Gates: no inputs"
  | [single] -> instantiate b "BUF_X2" [single] out prefix
  | _ :: _ :: _ when List.length inputs <= max_w ->
    let n = List.length inputs in
    let cell_name =
      match List.assoc_opt n widths with
      | Some c -> c
      | None ->
        (* e.g. 3 inputs but only 2-input cells: split *)
        ""
    in
    if String.equal cell_name "" then split_reduce b op inputs out prefix
    else instantiate b cell_name inputs out prefix
  | _ :: _ :: _ -> split_reduce b op inputs out prefix

and split_reduce b op inputs out prefix =
  let widths = widths_of op in
  let max_w = match widths with (w, _) :: _ -> w | [] -> assert false in
  (* chunk inputs into groups of max_w, reduce each, recurse *)
  let rec chunk acc cur k = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | x :: rest ->
      if k = max_w then chunk (List.rev cur :: acc) [x] 1 rest
      else chunk acc (x :: cur) (k + 1) rest
  in
  let groups = chunk [] [] 0 inputs in
  let partials =
    List.map
      (fun group ->
        match group with
        | [single] -> single
        | _ :: _ :: _ ->
          let net = Builder.fresh_net b (prefix ^ "_t") in
          reduce b op group net prefix;
          net
        | [] -> assert false)
      groups
  in
  reduce b op partials out prefix

let emit b op inputs ~out ~prefix =
  match op, inputs with
  | (Not | Buf), [single] ->
    instantiate b (if op = Not then "INV_X1" else "BUF_X2") [single] out prefix
  | (Not | Buf), ([] | _ :: _ :: _) -> invalid_arg "Gates: Not/Buf need one input"
  | (And | Or | Xor), _ -> reduce b op inputs out prefix
  | Nand, _ ->
    let n = List.length inputs in
    (match List.assoc_opt n (widths_of Nand) with
     | Some cell -> instantiate b cell inputs out prefix
     | None ->
       let t = Builder.fresh_net b (prefix ^ "_a") in
       reduce b And inputs t prefix;
       instantiate b "INV_X1" [t] out prefix)
  | Nor, _ ->
    let n = List.length inputs in
    (match List.assoc_opt n (widths_of Nor) with
     | Some cell -> instantiate b cell inputs out prefix
     | None ->
       let t = Builder.fresh_net b (prefix ^ "_o") in
       reduce b Or inputs t prefix;
       instantiate b "INV_X1" [t] out prefix)
  | Xnor, _ ->
    (match inputs with
     | [_; _] -> instantiate b "XNOR2_X1" inputs out prefix
     | _ ->
       let t = Builder.fresh_net b (prefix ^ "_x") in
       reduce b Xor inputs t prefix;
       instantiate b "INV_X1" [t] out prefix)

let emit_fresh b op inputs ~prefix =
  let out = Builder.fresh_net b (prefix ^ "_n") in
  emit b op inputs ~out ~prefix;
  out

let mux2 b ~sel ~a ~b_in ~prefix =
  let out = Builder.fresh_net b (prefix ^ "_mux") in
  let cell = Cell_lib.Library.find_exn (Builder.library b) "MUX2_X1" in
  ignore
    (Builder.add_instance b (fresh_name b prefix) cell
       [("A", a); ("B", b_in); ("S", sel); ("Z", out)]);
  out

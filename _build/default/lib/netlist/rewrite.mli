(** Support for design-to-design rewrites: a builder pre-loaded with the
    original ports and constants, a lazy net map, and instance copying
    with optional connection overrides.  Used by retiming and clock-gating
    transforms that keep most of the netlist intact. *)

type t

(** [start d] creates the rewrite context and copies primary inputs
    (including clock ports) and constants. *)
val start : ?name:string -> Design.t -> t

val builder : t -> Builder.t

(** The new net corresponding to an original net (created on demand). *)
val map_net : t -> Design.net -> Design.net

(** [copy_inst t i] copies instance [i] with all nets mapped.
    [override] replaces the mapped connection of the listed pins. *)
val copy_inst : ?override:(string * Design.net) list -> t -> Design.inst -> unit

(** Copy primary outputs and freeze. *)
val finish : t -> Design.t

(** Graphviz export of a design, for debugging and documentation. *)

(** [of_design d] renders instances as nodes and nets as edges.  Sequential
    cells are drawn as boxes, clock gates as diamonds. *)
val of_design : Design.t -> string

let escape s =
  String.concat "" (List.map (function '"' -> "\\\"" | c -> String.make 1 c)
                      (List.init (String.length s) (String.get s)))

let of_design d =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "digraph \"%s\" {\n  rankdir=LR;\n" (escape d.Design.design_name);
  List.iter
    (fun (port, _) -> add "  \"pi_%s\" [label=\"%s\", shape=triangle];\n" port port)
    d.Design.primary_inputs;
  List.iter
    (fun (port, _) -> add "  \"po_%s\" [label=\"%s\", shape=invtriangle];\n" port port)
    d.Design.primary_outputs;
  for i = 0 to Design.num_insts d - 1 do
    let c = Design.cell d i in
    let shape =
      match c.Cell_lib.Cell.kind with
      | Cell_lib.Cell.Combinational -> "ellipse"
      | Cell_lib.Cell.Flip_flop _ | Cell_lib.Cell.Latch _ -> "box"
      | Cell_lib.Cell.Clock_gate _ -> "diamond"
    in
    add "  \"i%d\" [label=\"%s\\n%s\", shape=%s];\n" i
      (escape (Design.inst_name d i)) c.Cell_lib.Cell.name shape
  done;
  let src_of net =
    match d.Design.net_driver.(net) with
    | Design.Driven_by (i, _) -> Some (Printf.sprintf "\"i%d\"" i)
    | Design.Driven_by_input port -> Some (Printf.sprintf "\"pi_%s\"" port)
    | Design.Driven_const v -> Some (if v then "\"tie1\"" else "\"tie0\"")
    | Design.Undriven -> None
  in
  for net = 0 to Design.num_nets d - 1 do
    match src_of net with
    | None -> ()
    | Some src ->
      List.iter
        (fun (j, pin) ->
          add "  %s -> \"i%d\" [label=\"%s\"];\n" src j (escape pin))
        d.Design.net_sinks.(net)
  done;
  List.iter
    (fun (port, net) ->
      match src_of net with
      | None -> ()
      | Some src -> add "  %s -> \"po_%s\";\n" src port)
    d.Design.primary_outputs;
  add "}\n";
  Buffer.contents buf

type issue = {
  severity : [ `Error | `Warning ];
  message : string;
}

let err fmt = Format.kasprintf (fun message -> { severity = `Error; message }) fmt
let warn fmt = Format.kasprintf (fun message -> { severity = `Warning; message }) fmt

let check_drivers d issues =
  let issues = ref issues in
  for i = 0 to Design.num_insts d - 1 do
    List.iter
      (fun net ->
        match d.Design.net_driver.(net) with
        | Design.Undriven ->
          issues := err "instance %s reads undriven net %s"
              (Design.inst_name d i) (Design.net_name d net) :: !issues
        | Design.Driven_by _ | Design.Driven_by_input _ | Design.Driven_const _ -> ())
      (Design.input_nets d i)
  done;
  List.iter
    (fun (port, net) ->
      match d.Design.net_driver.(net) with
      | Design.Undriven ->
        issues := err "primary output %s is undriven" port :: !issues
      | Design.Driven_by _ | Design.Driven_by_input _ | Design.Driven_const _ -> ())
    d.Design.primary_outputs;
  !issues

let check_comb_cycles d issues =
  match Traverse.comb_topo d with
  | Ok _ -> issues
  | Error insts ->
    err "combinational cycle involving %d instances (e.g. %s)"
      (List.length insts)
      (match insts with [] -> "?" | i :: _ -> Design.inst_name d i)
    :: issues

let check_clock_roots d issues =
  List.fold_left
    (fun issues i ->
      match Design.clock_net_of d i with
      | None ->
        err "sequential instance %s has no clock connection" (Design.inst_name d i)
        :: issues
      | Some net ->
        (match Clocking.trace_to_root d net with
         | Some _ -> issues
         | None ->
           err "clock pin of %s does not trace to a clock port (net %s)"
             (Design.inst_name d i) (Design.net_name d net)
           :: issues))
    issues (Design.sequential_insts d)

let check_unique_names d issues =
  let dup what names issues =
    let seen = Hashtbl.create (Array.length names) in
    Array.fold_left
      (fun issues name ->
        if Hashtbl.mem seen name then warn "duplicate %s name %s" what name :: issues
        else begin
          Hashtbl.add seen name ();
          issues
        end)
      issues names
  in
  issues |> dup "net" d.Design.net_names |> dup "instance" d.Design.inst_names

let check_dangling d issues =
  let used = Array.make (Design.num_nets d) false in
  List.iter (fun (_, n) -> used.(n) <- true) d.Design.primary_outputs;
  for i = 0 to Design.num_insts d - 1 do
    List.iter (fun n -> used.(n) <- true) (Design.input_nets d i)
  done;
  let issues = ref issues in
  for i = 0 to Design.num_insts d - 1 do
    List.iter
      (fun n ->
        if not used.(n) then
          issues := warn "output net %s of %s drives nothing"
              (Design.net_name d n) (Design.inst_name d i) :: !issues)
      (Design.output_nets d i)
  done;
  !issues

let run d =
  []
  |> check_drivers d
  |> check_comb_cycles d
  |> check_clock_roots d
  |> check_unique_names d
  |> check_dangling d
  |> List.rev

let validate d =
  let errors =
    List.filter_map
      (fun i -> match i.severity with `Error -> Some i.message | `Warning -> None)
      (run d)
  in
  if errors = [] then Ok () else Error errors

let pp_issue ppf i =
  Format.fprintf ppf "%s: %s"
    (match i.severity with `Error -> "error" | `Warning -> "warning")
    i.message

type t = {
  name : string;
  lib : Cell_lib.Library.t;
  mutable net_names : string list;        (* reversed *)
  mutable n_nets : int;
  net_index : (string, int) Hashtbl.t;
  mutable insts : (string * Cell_lib.Cell.t * (string * Design.net) array) list;  (* reversed *)
  mutable n_insts : int;
  mutable inputs : (string * Design.net) list;   (* reversed *)
  mutable outputs : (string * Design.net) list;  (* reversed *)
  mutable clocks : string list;                  (* reversed *)
  mutable tie0 : Design.net option;
  mutable tie1 : Design.net option;
  mutable consts : (Design.net * bool) list;
}

let create ~name ~library = {
  name;
  lib = library;
  net_names = [];
  n_nets = 0;
  net_index = Hashtbl.create 1024;
  insts = [];
  n_insts = 0;
  inputs = [];
  outputs = [];
  clocks = [];
  tie0 = None;
  tie1 = None;
  consts = [];
}

let library b = b.lib

let fresh_net b base =
  let name =
    if Hashtbl.mem b.net_index base then (
      let rec try_suffix k =
        let candidate = Printf.sprintf "%s_%d" base k in
        if Hashtbl.mem b.net_index candidate then try_suffix (k + 1) else candidate
      in
      try_suffix 1)
    else base
  in
  let id = b.n_nets in
  b.n_nets <- id + 1;
  b.net_names <- name :: b.net_names;
  Hashtbl.add b.net_index name id;
  id

let add_input ?(clock = false) b port =
  let n = fresh_net b port in
  b.inputs <- (port, n) :: b.inputs;
  if clock then b.clocks <- port :: b.clocks;
  n

let add_output b port net = b.outputs <- (port, net) :: b.outputs

let const b v =
  let existing = if v then b.tie1 else b.tie0 in
  match existing with
  | Some n -> n
  | None ->
    let n = fresh_net b (if v then "tie1" else "tie0") in
    if v then b.tie1 <- Some n else b.tie0 <- Some n;
    b.consts <- (n, v) :: b.consts;
    n

let add_instance b inst_name cell conns =
  List.iter
    (fun (pin, _) ->
      match Cell_lib.Cell.find_pin cell pin with
      | Some _ -> ()
      | None ->
        invalid_arg
          (Printf.sprintf "Builder.add_instance %s: cell %s has no pin %s"
             inst_name cell.Cell_lib.Cell.name pin))
    conns;
  let id = b.n_insts in
  b.n_insts <- id + 1;
  b.insts <- (inst_name, cell, Array.of_list conns) :: b.insts;
  id

let add_cell b inst_name cell_name conns =
  match Cell_lib.Library.find b.lib cell_name with
  | Some cell -> add_instance b inst_name cell conns
  | None ->
    invalid_arg
      (Printf.sprintf "Builder.add_cell %s: no cell %s in library" inst_name cell_name)

let size b = b.n_insts

let freeze b =
  let net_names = Array.of_list (List.rev b.net_names) in
  let n_nets = Array.length net_names in
  let insts = Array.of_list (List.rev b.insts) in
  let inst_names = Array.map (fun (n, _, _) -> n) insts in
  let inst_cells = Array.map (fun (_, c, _) -> c) insts in
  let inst_conns = Array.map (fun (_, _, cs) -> cs) insts in
  let net_driver = Array.make n_nets Design.Undriven in
  let net_sinks = Array.make n_nets [] in
  let set_driver n drv =
    match net_driver.(n) with
    | Design.Undriven -> net_driver.(n) <- drv
    | Design.Driven_by _ | Design.Driven_by_input _ | Design.Driven_const _ ->
      invalid_arg
        (Printf.sprintf "Builder.freeze: net %s is multiply driven" net_names.(n))
  in
  List.iter (fun (port, n) -> set_driver n (Design.Driven_by_input port)) b.inputs;
  List.iter (fun (n, v) -> set_driver n (Design.Driven_const v)) b.consts;
  Array.iteri
    (fun i conns ->
      let cell = inst_cells.(i) in
      Array.iter
        (fun (pin, n) ->
          match Cell_lib.Cell.find_pin cell pin with
          | Some p when p.Cell_lib.Cell.direction = Cell_lib.Cell.Output ->
            set_driver n (Design.Driven_by (i, pin))
          | Some _ -> net_sinks.(n) <- (i, pin) :: net_sinks.(n)
          | None -> assert false)
        conns)
    inst_conns;
  Array.iteri (fun n sinks -> net_sinks.(n) <- List.rev sinks) net_sinks;
  { Design.design_name = b.name;
    library = b.lib;
    net_names;
    net_driver;
    net_sinks;
    inst_names;
    inst_cells;
    inst_conns;
    primary_inputs = List.rev b.inputs;
    primary_outputs = List.rev b.outputs;
    clock_ports = List.rev b.clocks }

let is_comb d i = (Design.cell d i).Cell_lib.Cell.kind = Cell_lib.Cell.Combinational

(* Kahn's algorithm restricted to combinational instances. *)
let comb_topo d =
  let n = Design.num_insts d in
  let indegree = Array.make n 0 in
  let comb = Array.init n (is_comb d) in
  (* indegree counts combinational fanin instances, not nets *)
  for i = 0 to n - 1 do
    if comb.(i) then
      List.iter
        (fun net ->
          match d.Design.net_driver.(net) with
          | Design.Driven_by (j, _) when comb.(j) -> indegree.(i) <- indegree.(i) + 1
          | Design.Driven_by _ | Design.Driven_by_input _ | Design.Driven_const _
          | Design.Undriven -> ())
        (Design.input_nets d i)
  done;
  let queue = Queue.create () in
  for i = 0 to n - 1 do
    if comb.(i) && indegree.(i) = 0 then Queue.add i queue
  done;
  let order = ref [] in
  let seen = ref 0 in
  let total = Array.fold_left (fun acc c -> if c then acc + 1 else acc) 0 comb in
  while not (Queue.is_empty queue) do
    let i = Queue.pop queue in
    order := i :: !order;
    incr seen;
    List.iter
      (fun net ->
        List.iter
          (fun (j, _) ->
            if comb.(j) then begin
              indegree.(j) <- indegree.(j) - 1;
              if indegree.(j) = 0 then Queue.add j queue
            end)
          d.Design.net_sinks.(net))
      (Design.output_nets d i)
  done;
  if !seen = total then Ok (List.rev !order)
  else begin
    let stuck = ref [] in
    for i = n - 1 downto 0 do
      if comb.(i) && indegree.(i) > 0 then stuck := i :: !stuck
    done;
    Error !stuck
  end

let comb_topo_exn d =
  match comb_topo d with
  | Ok order -> order
  | Error insts ->
    invalid_arg
      (Printf.sprintf "combinational cycle through %d instances (e.g. %s)"
         (List.length insts)
         (match insts with [] -> "?" | i :: _ -> Design.inst_name d i))

let net_levels d =
  let levels = Array.make (Design.num_nets d) 0 in
  let order = comb_topo_exn d in
  List.iter
    (fun i ->
      let in_level =
        List.fold_left (fun acc net -> max acc levels.(net)) 0 (Design.input_nets d i)
      in
      List.iter (fun net -> levels.(net) <- in_level + 1) (Design.output_nets d i))
    order;
  levels

let reachable_seq_inputs d ~from =
  let n_nets = Design.num_nets d in
  let visited = Array.make n_nets false in
  let found = Hashtbl.create 16 in
  let order = ref [] in
  let rec walk net =
    if not visited.(net) then begin
      visited.(net) <- true;
      List.iter
        (fun (i, pin) ->
          let c = Design.cell d i in
          match c.Cell_lib.Cell.kind with
          | Cell_lib.Cell.Combinational ->
            List.iter walk (Design.output_nets d i)
          | Cell_lib.Cell.Flip_flop { data_pin; _ }
          | Cell_lib.Cell.Latch { data_pin; _ } ->
            if String.equal pin data_pin && not (Hashtbl.mem found i) then begin
              Hashtbl.add found i ();
              order := i :: !order
            end
          | Cell_lib.Cell.Clock_gate _ -> ())
        d.Design.net_sinks.(net)
    end
  in
  walk from;
  List.rev !order

type net = int

type inst = int

type driver =
  | Driven_by of inst * string
  | Driven_by_input of string
  | Driven_const of bool
  | Undriven

type t = {
  design_name : string;
  library : Cell_lib.Library.t;
  net_names : string array;
  net_driver : driver array;
  net_sinks : (inst * string) list array;
  inst_names : string array;
  inst_cells : Cell_lib.Cell.t array;
  inst_conns : (string * net) array array;
  primary_inputs : (string * net) list;
  primary_outputs : (string * net) list;
  clock_ports : string list;
}

let num_nets d = Array.length d.net_names

let num_insts d = Array.length d.inst_names

let net_name d n = d.net_names.(n)

let inst_name d i = d.inst_names.(i)

let cell d i = d.inst_cells.(i)

let pin_net_opt d i pin =
  let conns = d.inst_conns.(i) in
  let rec go k =
    if k >= Array.length conns then None
    else
      let p, n = conns.(k) in
      if String.equal p pin then Some n else go (k + 1)
  in
  go 0

let pin_net d i pin =
  match pin_net_opt d i pin with
  | Some n -> n
  | None -> raise Not_found

let pins_with_direction d i dir =
  let c = d.inst_cells.(i) in
  Array.fold_right
    (fun (pin, n) acc ->
      match Cell_lib.Cell.find_pin c pin with
      | Some p when p.Cell_lib.Cell.direction = dir -> n :: acc
      | Some _ | None -> acc)
    d.inst_conns.(i) []

let input_nets d i = pins_with_direction d i Cell_lib.Cell.Input

let output_nets d i = pins_with_direction d i Cell_lib.Cell.Output

let insts d = List.init (num_insts d) Fun.id

let sequential_insts d =
  List.filter (fun i -> Cell_lib.Cell.is_sequential d.inst_cells.(i)) (insts d)

let clock_gate_insts d =
  List.filter (fun i -> Cell_lib.Cell.is_clock_gate d.inst_cells.(i)) (insts d)

let clock_net_of d i =
  match Cell_lib.Cell.clock_pin_of d.inst_cells.(i) with
  | None -> None
  | Some pin -> pin_net_opt d i pin

let data_net_of d i =
  match d.inst_cells.(i).Cell_lib.Cell.kind with
  | Cell_lib.Cell.Flip_flop { data_pin; _ } | Cell_lib.Cell.Latch { data_pin; _ } ->
    pin_net_opt d i data_pin
  | Cell_lib.Cell.Combinational | Cell_lib.Cell.Clock_gate _ -> None

let q_net_of d i =
  match output_nets d i with
  | [n] -> Some n
  | [] -> None
  | n :: _ :: _ -> Some n

let is_clock_port d name = List.exists (String.equal name) d.clock_ports

let find_input d name =
  Option.map snd (List.find_opt (fun (p, _) -> String.equal p name) d.primary_inputs)

let find_inst d name =
  let n = num_insts d in
  let rec go i =
    if i >= n then None
    else if String.equal d.inst_names.(i) name then Some i
    else go (i + 1)
  in
  go 0

let fold_insts f d acc =
  let r = ref acc in
  for i = 0 to num_insts d - 1 do
    r := f i !r
  done;
  !r

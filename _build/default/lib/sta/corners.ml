type corner = {
  corner_name : string;
  derate_early : float;
  derate_late : float;
  skew : float;
}

let default_corners = [
  { corner_name = "fast"; derate_early = 0.75; derate_late = 0.85; skew = 0.06 };
  { corner_name = "typical"; derate_early = 1.0; derate_late = 1.0; skew = 0.04 };
  { corner_name = "slow"; derate_early = 1.1; derate_late = 1.3; skew = 0.06 };
]

let check_all ?(wire = Delay.no_wire) ?(corners = default_corners) d ~clocks =
  List.map
    (fun c ->
      (c,
       Smo.check ~wire ~clock_skew:c.skew
         ~derate:(c.derate_early, c.derate_late) d ~clocks))
    corners

let ok_all ?wire ?corners d ~clocks =
  List.for_all (fun (_, r) -> Smo.ok r) (check_all ?wire ?corners d ~clocks)

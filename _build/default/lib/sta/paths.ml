type endpoint =
  | Reg of Netlist.Design.inst
  | Port of string

type path = {
  src : endpoint;
  dst : endpoint;
  max_delay : float;
  min_delay : float;
}

type t = {
  paths : path list;
  by_dst : (Netlist.Design.inst, path list) Hashtbl.t;
  by_src : (Netlist.Design.inst, path list) Hashtbl.t;
}

(* Longest/shortest arrival at every net from one source net, by DAG
   relaxation over the combinational topological order. *)
let relax d wire order ~src_net =
  let n = Netlist.Design.num_nets d in
  let neg_inf = Float.neg_infinity and pos_inf = Float.infinity in
  let amax = Array.make n neg_inf and amin = Array.make n pos_inf in
  amax.(src_net) <- 0.0;
  amin.(src_net) <- 0.0;
  List.iter
    (fun i ->
      let in_max, in_min =
        List.fold_left
          (fun (mx, mn) net -> (Float.max mx amax.(net), Float.min mn amin.(net)))
          (neg_inf, pos_inf)
          (Netlist.Design.input_nets d i)
      in
      if in_max > neg_inf then begin
        let dmax = Delay.inst_delay_max d wire i in
        let dmin = Delay.inst_delay_min d wire i in
        List.iter
          (fun net ->
            amax.(net) <- Float.max amax.(net) (in_max +. dmax);
            amin.(net) <- Float.min amin.(net) (in_min +. dmin))
          (Netlist.Design.output_nets d i)
      end)
    order;
  (amax, amin)

let compute ?(wire = Delay.no_wire) d =
  let order = Netlist.Traverse.comb_topo_exn d in
  let seqs = Netlist.Design.sequential_insts d in
  let sources =
    List.filter_map
      (fun i -> Option.map (fun q -> (Reg i, q)) (Netlist.Design.q_net_of d i))
      seqs
    @ List.filter_map
        (fun (p, net) ->
          if Netlist.Design.is_clock_port d p then None else Some (Port p, net))
        d.Netlist.Design.primary_inputs
  in
  let dst_pins =
    List.filter_map
      (fun i -> Option.map (fun dn -> (Reg i, dn)) (Netlist.Design.data_net_of d i))
      seqs
    @ List.map (fun (p, net) -> (Port p, net)) d.Netlist.Design.primary_outputs
  in
  let paths = ref [] in
  List.iter
    (fun (src, src_net) ->
      let amax, amin = relax d wire order ~src_net in
      List.iter
        (fun (dst, dst_net) ->
          if amax.(dst_net) > Float.neg_infinity then
            paths := { src; dst; max_delay = amax.(dst_net);
                       min_delay = amin.(dst_net) } :: !paths)
        dst_pins)
    sources;
  let by_dst = Hashtbl.create 256 and by_src = Hashtbl.create 256 in
  List.iter
    (fun p ->
      (match p.dst with
       | Reg i ->
         Hashtbl.replace by_dst i (p :: Option.value ~default:[] (Hashtbl.find_opt by_dst i))
       | Port _ -> ());
      (match p.src with
       | Reg i ->
         Hashtbl.replace by_src i (p :: Option.value ~default:[] (Hashtbl.find_opt by_src i))
       | Port _ -> ()))
    !paths;
  { paths = !paths; by_dst; by_src }

let all t = t.paths

let into t i = Option.value ~default:[] (Hashtbl.find_opt t.by_dst i)

let out_of t i = Option.value ~default:[] (Hashtbl.find_opt t.by_src i)

let critical t =
  List.fold_left
    (fun acc p ->
      match acc with
      | None -> Some p
      | Some best -> if p.max_delay > best.max_delay then Some p else acc)
    None t.paths

let max_into t i =
  List.fold_left (fun acc p -> Float.max acc p.max_delay) 0.0 (into t i)

let max_out_of t i =
  List.fold_left (fun acc p -> Float.max acc p.max_delay) 0.0 (out_of t i)

let class_arrivals ?(wire = Delay.no_wire) d classes =
  let order = Netlist.Traverse.comb_topo_exn d in
  List.map
    (fun (key, nets) ->
      let n = Netlist.Design.num_nets d in
      let amax = Array.make n Float.neg_infinity in
      let amin = Array.make n Float.infinity in
      List.iter (fun net -> amax.(net) <- 0.0; amin.(net) <- 0.0) nets;
      List.iter
        (fun i ->
          let in_max, in_min =
            List.fold_left
              (fun (mx, mn) net -> (Float.max mx amax.(net), Float.min mn amin.(net)))
              (Float.neg_infinity, Float.infinity)
              (Netlist.Design.input_nets d i)
          in
          if in_max > Float.neg_infinity then begin
            let dmax = Delay.inst_delay_max d wire i in
            let dmin = Delay.inst_delay_min d wire i in
            List.iter
              (fun net ->
                amax.(net) <- Float.max amax.(net) (in_max +. dmax);
                amin.(net) <- Float.min amin.(net) (in_min +. dmin))
              (Netlist.Design.output_nets d i)
          end)
        order;
      (key, (amax, amin)))
    classes

let forward_arrivals ?(wire = Delay.no_wire) d =
  let sources =
    List.filter_map (fun i -> Netlist.Design.q_net_of d i)
      (Netlist.Design.sequential_insts d)
    @ List.filter_map
        (fun (p, net) ->
          if Netlist.Design.is_clock_port d p then None else Some net)
        d.Netlist.Design.primary_inputs
  in
  match class_arrivals ~wire d [((), sources)] with
  | [((), (amax, _))] -> amax
  | _ -> assert false

let backward_delays ?(wire = Delay.no_wire) d =
  let order = List.rev (Netlist.Traverse.comb_topo_exn d) in
  let n = Netlist.Design.num_nets d in
  let dist = Array.make n Float.neg_infinity in
  (* seed: nets read by a register data pin or driving a primary output *)
  List.iter
    (fun i ->
      match Netlist.Design.data_net_of d i with
      | Some net -> dist.(net) <- Float.max dist.(net) 0.0
      | None -> ())
    (Netlist.Design.sequential_insts d);
  List.iter (fun (_, net) -> dist.(net) <- Float.max dist.(net) 0.0)
    d.Netlist.Design.primary_outputs;
  List.iter
    (fun i ->
      let out_best =
        List.fold_left
          (fun acc net -> Float.max acc dist.(net))
          Float.neg_infinity
          (Netlist.Design.output_nets d i)
      in
      if out_best > Float.neg_infinity then begin
        let dmax = Delay.inst_delay_max d wire i in
        List.iter
          (fun net -> dist.(net) <- Float.max dist.(net) (out_best +. dmax))
          (Netlist.Design.input_nets d i)
      end)
    order;
  dist

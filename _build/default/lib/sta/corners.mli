(** Multi-corner timing sign-off: the SMO checks repeated across
    process/voltage/temperature corners, the analysis the paper's
    conclusion points to ("quantifying these benefits associated with
    higher tolerance to PVT variations"). *)

type corner = {
  corner_name : string;
  derate_early : float;  (** scales minimum (hold) path delays *)
  derate_late : float;   (** scales maximum (setup) path delays *)
  skew : float;          (** clock uncertainty at this corner, ns *)
}

(** Typical three-corner set: fast (hold-critical), typical, slow
    (setup-critical). *)
val default_corners : corner list

(** [check_all d ~clocks] — one report per corner. *)
val check_all :
  ?wire:Delay.wire_model -> ?corners:corner list ->
  Netlist.Design.t -> clocks:Sim.Clock_spec.t -> (corner * Smo.report) list

(** [ok_all] — true when every corner passes. *)
val ok_all :
  ?wire:Delay.wire_model -> ?corners:corner list ->
  Netlist.Design.t -> clocks:Sim.Clock_spec.t -> bool

module Design = Netlist.Design

type step = {
  inst : Design.inst;
  cell : string;
  through : string;
  delay : float;
  arrival : float;
}

type endpoint =
  | At_register of Design.inst
  | At_output of string

type path = {
  startpoint : string;
  endpoint : endpoint;
  total_delay : float;
  steps : step list;
}

(* Walk back from [net] through the instance whose output realises the
   worst arrival, collecting steps in reverse. *)
let trace d wire arrivals net =
  let rec go net acc =
    match d.Design.net_driver.(net) with
    | Design.Driven_by (i, _) ->
      let c = Design.cell d i in
      (match c.Cell_lib.Cell.kind with
       | Cell_lib.Cell.Combinational ->
         let delay = Delay.inst_delay_max d wire i in
         let step = {
           inst = i;
           cell = c.Cell_lib.Cell.name;
           through = Design.net_name d net;
           delay;
           arrival = arrivals.(net);
         } in
         (* pick the input pin with the largest arrival *)
         let worst_in =
           List.fold_left
             (fun best n ->
               match best with
               | None -> Some n
               | Some b -> if arrivals.(n) > arrivals.(b) then Some n else best)
             None (Design.input_nets d i)
         in
         (match worst_in with
          | Some n when arrivals.(n) > Float.neg_infinity -> go n (step :: acc)
          | Some _ | None -> (Design.inst_name d i, step :: acc))
       | Cell_lib.Cell.Flip_flop _ | Cell_lib.Cell.Latch _
       | Cell_lib.Cell.Clock_gate _ -> (Design.inst_name d i, acc))
    | Design.Driven_by_input port -> (port, acc)
    | Design.Driven_const _ | Design.Undriven ->
      (Design.net_name d net, acc)
  in
  go net []

let worst_paths ?(wire = Delay.no_wire) ?(count = 5) d =
  let arrivals = Paths.forward_arrivals ~wire d in
  let endpoints =
    List.filter_map
      (fun i ->
        match Design.data_net_of d i with
        | Some dn when arrivals.(dn) > Float.neg_infinity ->
          Some (At_register i, dn, arrivals.(dn))
        | Some _ | None -> None)
      (Design.sequential_insts d)
    @ List.filter_map
        (fun (p, n) ->
          if arrivals.(n) > Float.neg_infinity then Some (At_output p, n, arrivals.(n))
          else None)
        d.Design.primary_outputs
  in
  let sorted =
    List.sort (fun (_, _, a) (_, _, b) -> compare b a) endpoints
  in
  let rec take k = function
    | [] -> []
    | _ when k = 0 -> []
    | x :: rest -> x :: take (k - 1) rest
  in
  List.map
    (fun (endpoint, net, total_delay) ->
      let startpoint, steps = trace d wire arrivals net in
      { startpoint; endpoint; total_delay; steps })
    (take count sorted)

let pp_path d ppf p =
  let endpoint_name = match p.endpoint with
    | At_register i -> Design.inst_name d i ^ "/D"
    | At_output port -> "output " ^ port
  in
  Format.fprintf ppf "@[<v 2>path %s -> %s: %.4f ns@," p.startpoint endpoint_name
    p.total_delay;
  List.iter
    (fun s ->
      Format.fprintf ppf "%-24s %-12s +%.4f = %.4f (%s)@,"
        (Design.inst_name d s.inst) s.cell s.delay s.arrival s.through)
    p.steps;
  Format.fprintf ppf "@]"

let pp d ppf paths =
  List.iteri
    (fun k p -> Format.fprintf ppf "#%d %a@." (k + 1) (pp_path d) p)
    paths

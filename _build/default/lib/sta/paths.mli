(** Register-to-register path delays through combinational logic.

    For every pair (source register j, destination register i) connected by
    a purely combinational path, computes the longest and shortest path
    delays (the paper's Delta_ji and delta_ji).  Sources also include
    non-clock primary inputs; destinations also include primary outputs. *)

type endpoint =
  | Reg of Netlist.Design.inst
  | Port of string

type path = {
  src : endpoint;
  dst : endpoint;
  max_delay : float;  (** ns, excluding source clk->q, including all gates *)
  min_delay : float;
}

type t

(** [compute ?wire d] walks the combinational network once per source. *)
val compute : ?wire:Delay.wire_model -> Netlist.Design.t -> t

val all : t -> path list

(** Paths into a given destination register. *)
val into : t -> Netlist.Design.inst -> path list

(** Paths out of a given source register. *)
val out_of : t -> Netlist.Design.inst -> path list

(** The longest combinational delay anywhere (for minimum-period estims). *)
val critical : t -> path option

(** Longest delay of the combinational cone feeding each register's data
    pin, from any source (register or input port). *)
val max_into : t -> Netlist.Design.inst -> float

val max_out_of : t -> Netlist.Design.inst -> float

(** Scalable variants: one relaxation per class / direction instead of one
    per register, for large designs. *)

(** [class_arrivals d classes] relaxes once per class; each class is a set
    of source nets launched together.  Returns per class the arrays of
    max/min arrival per net ([neg_infinity]/[infinity] when unreachable). *)
val class_arrivals :
  ?wire:Delay.wire_model -> Netlist.Design.t ->
  ('k * Netlist.Design.net list) list -> ('k * (float array * float array)) list

(** Longest combinational delay from any register output or input port to
    each net. *)
val forward_arrivals : ?wire:Delay.wire_model -> Netlist.Design.t -> float array

(** Longest combinational delay from each net to any register data pin or
    primary output. *)
val backward_delays : ?wire:Delay.wire_model -> Netlist.Design.t -> float array

type wire_model = Netlist.Design.net -> float

let no_wire _ = 0.0

let fanout_wire d k net = k *. float_of_int (List.length d.Netlist.Design.net_sinks.(net))

let net_load d wire net =
  let pin_caps =
    List.fold_left
      (fun acc (i, pin) ->
        match Cell_lib.Cell.find_pin (Netlist.Design.cell d i) pin with
        | Some p -> acc +. p.Cell_lib.Cell.capacitance
        | None -> acc)
      0.0 d.Netlist.Design.net_sinks.(net)
  in
  pin_caps +. wire net

let output_load d wire i =
  List.fold_left (fun acc n -> acc +. net_load d wire n) 0.0
    (Netlist.Design.output_nets d i)

let inst_delay_max d wire i =
  Cell_lib.Cell.delay_through (Netlist.Design.cell d i) ~load:(output_load d wire i)

let inst_delay_min d wire i =
  Cell_lib.Cell.min_delay_through (Netlist.Design.cell d i) ~load:(output_load d wire i)

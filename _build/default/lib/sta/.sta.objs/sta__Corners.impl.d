lib/sta/corners.ml: Delay List Smo

lib/sta/paths.mli: Delay Netlist

lib/sta/delay.ml: Array Cell_lib List Netlist

lib/sta/hold_fix.mli: Netlist Sim

lib/sta/timing_report.ml: Array Cell_lib Delay Float Format List Netlist Paths

lib/sta/corners.mli: Delay Netlist Sim Smo

lib/sta/smo.mli: Delay Format Netlist Sim

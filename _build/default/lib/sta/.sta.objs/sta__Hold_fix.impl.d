lib/sta/hold_fix.ml: Cell_lib Float Hashtbl List Netlist Option Printf Smo Stdlib

lib/sta/smo.ml: Array Cell_lib Delay Float Format Hashtbl List Map Netlist Paths Printf Sim String

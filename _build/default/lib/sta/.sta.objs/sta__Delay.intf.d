lib/sta/delay.mli: Netlist

lib/sta/paths.ml: Array Delay Float Hashtbl List Netlist Option

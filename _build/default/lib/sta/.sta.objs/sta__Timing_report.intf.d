lib/sta/timing_report.mli: Delay Format Netlist

(** Critical-path reporting in the style of a timing tool's
    [report_timing]: the N worst combinational paths, traced cell by cell
    from their launching register (or input port) to the capturing
    register's data pin (or output port). *)

type step = {
  inst : Netlist.Design.inst;
  cell : string;
  through : string;         (** output net name *)
  delay : float;            (** this cell's contribution, ns *)
  arrival : float;          (** cumulative, ns *)
}

type endpoint =
  | At_register of Netlist.Design.inst
  | At_output of string

type path = {
  startpoint : string;      (** launching register/port name *)
  endpoint : endpoint;
  total_delay : float;      (** combinational delay, excl. clk->q *)
  steps : step list;        (** launch to capture order *)
}

(** [worst_paths ?wire ?count d] — the [count] (default 5) endpoints with
    the largest combinational arrival, each with its traced path. *)
val worst_paths :
  ?wire:Delay.wire_model -> ?count:int -> Netlist.Design.t -> path list

val pp_path : Netlist.Design.t -> Format.formatter -> path -> unit

val pp : Netlist.Design.t -> Format.formatter -> path list -> unit

(** The linear gate-delay model: cell delay = intrinsic + drive resistance
    x output load.  Loads combine sink pin capacitances with an optional
    per-net wire capacitance (supplied after placement). *)

type wire_model = Netlist.Design.net -> float
(** extra capacitance per net, fF *)

(** No routing parasitics (pre-layout). *)
val no_wire : wire_model

(** A fanout-based estimate: [k] fF per sink pin. *)
val fanout_wire : Netlist.Design.t -> float -> wire_model

(** [net_load d wire net] — total capacitance seen by the driver, fF. *)
val net_load : Netlist.Design.t -> wire_model -> Netlist.Design.net -> float

(** Max/min propagation delay through instance [i] (ns). *)
val inst_delay_max : Netlist.Design.t -> wire_model -> Netlist.Design.inst -> float

val inst_delay_min : Netlist.Design.t -> wire_model -> Netlist.Design.inst -> float

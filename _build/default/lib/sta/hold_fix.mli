(** Hold (min-delay) fixing: pad violating register data inputs with
    delay buffers until the SMO hold checks pass under the given clock
    skew.

    This step reproduces a power effect the paper highlights: edge-
    triggered designs have register-to-register paths with near-zero logic
    whose hold margin is eaten by clock skew, so the tool inserts hold
    buffers; latch designs separate launching and capturing phases by a
    third of the cycle (and master-slave by half), leaving ample margin —
    "latch-based designs ... often have less glitching and fewer hold
    buffers than their FF-based counterparts" (Section V). *)

type stats = {
  buffers_added : int;
  iterations : int;
  fixed : bool;   (** all hold checks pass at the end *)
}

(** [run ?skew d ~clocks] — default skew 0.05 ns. *)
val run :
  ?skew:float -> ?hold_margin:float -> ?max_iterations:int ->
  Netlist.Design.t -> clocks:Sim.Clock_spec.t -> Netlist.Design.t * stats

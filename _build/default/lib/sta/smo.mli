(** Multi-phase timing verification after Sakallah-Mudge-Olukotun (the
    paper's Section II).

    Every sequential element is modelled as a latch with an opening and a
    closing time inside the common period (a flip-flop is a zero-width
    latch closing at its capture edge; primary inputs are zero-width
    sources launching at cycle start).  Departure times iterate to a fixed
    point so level-sensitive time borrowing is honoured, then the General
    System Timing Constraints are checked:

    setup:  arrival at latch [i] (relative to its closing edge) + setup <= 0
    hold:   earliest arrival after the previous closing edge >= hold

    Launch points are grouped into per-clock-port classes (one path
    relaxation per class), which scales to large designs at the cost of
    slight pessimism: the worst departure of a class is combined with the
    worst path delay of the class.  [~exact:true] makes every register its
    own launch class, removing that pairing pessimism at O(registers)
    relaxations — use it on small designs or for sign-off spot checks. *)

type violation = {
  dst : Netlist.Design.inst;
  kind : [ `Setup | `Hold ];
  slack : float;               (** negative = violated *)
  src_class : string;          (** launching clock port or "input" *)
}

type report = {
  worst_setup_slack : float;
  worst_hold_slack : float;
  violations : violation list;
  max_borrow : float;          (** worst positive departure (time borrowed) *)
  iterations : int;
}

val ok : report -> bool

(** [check d ~clocks] — [setup_margin]/[hold_margin] default to 0.03/0.02
    ns.  [input_delay] = (min, max) ns after the cycle start at which
    primary inputs change, the usual external timing constraint; defaults
    to (0.05, 0.10).  [clock_skew] (default 0) tightens both checks by
    the given uncertainty.  [derate] = (early, late) scales minimum and
    maximum path delays for process/voltage/temperature corner analysis
    (e.g. [(0.8, 1.25)]). *)
val check :
  ?wire:Delay.wire_model ->
  ?exact:bool ->
  ?setup_margin:float ->
  ?hold_margin:float ->
  ?input_delay:float * float ->
  ?clock_skew:float ->
  ?derate:float * float ->
  Netlist.Design.t -> clocks:Sim.Clock_spec.t -> report

val pp_report : Format.formatter -> report -> unit

(** A reader and writer for the subset of the Liberty (.lib) format this
    project uses to describe technology libraries.

    The subset covers [library], [cell], [pin], [ff], [latch], [icg] and
    [timing] groups, plus simple [name : value ;] attributes.  Parsing
    happens in two stages: a generic group tree ({!group}) is built first,
    then interpreted into a {!Library.t}-ready list of cells. *)

(** Generic Liberty group: [name (args) { attributes subgroups }]. *)
type group = {
  g_name : string;
  g_args : string list;
  g_attrs : (string * string) list;
  g_subs : group list;
}

exception Error of string

(** Parse Liberty source text into its top-level group (normally
    [library(...)]).  Raises {!Error} on malformed input. *)
val parse_group : string -> group

(** Attribute lookup helpers.  [attr g name] returns the raw value string. *)
val attr : group -> string -> string option

val attr_float : group -> string -> float option

val sub_groups : group -> string -> group list

(** Interpret a parsed [library] group into library name, technology
    parameters and cells.  Raises {!Error} when a cell is inconsistent. *)
val interpret : group -> string * Tech.t * Cell.t list

(** [parse source] = [interpret (parse_group source)]. *)
val parse : string -> string * Tech.t * Cell.t list

(** Render a library back to Liberty text (used for tests and export). *)
val print : Format.formatter -> string * Tech.t * Cell.t list -> unit

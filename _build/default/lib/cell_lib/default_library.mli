(** The built-in synthetic technology library ("repro28"), loosely modelled
    on a 28nm FDSOI standard-cell library.  Absolute values are synthetic;
    what matters for the reproduction are the relative ratios: a latch is
    roughly 0.55x the area of a flip-flop and its clock pin presents about
    half the capacitance, integrated clock-gating cells cost area but stop
    downstream clock toggling, and the M1/M2 ICG variants are cheaper than
    the standard one. *)

(** The Liberty source text of the built-in library. *)
val source : string

(** The parsed built-in library.  Parsing happens once, lazily. *)
val library : unit -> Library.t

type t =
  | Const of bool
  | Pin of string
  | Not of t
  | And of t * t
  | Or of t * t
  | Xor of t * t

let rec equal a b =
  match a, b with
  | Const x, Const y -> x = y
  | Pin x, Pin y -> String.equal x y
  | Not x, Not y -> equal x y
  | And (x1, x2), And (y1, y2)
  | Or (x1, x2), Or (y1, y2)
  | Xor (x1, x2), Xor (y1, y2) -> equal x1 y1 && equal x2 y2
  | (Const _ | Pin _ | Not _ | And _ | Or _ | Xor _), _ -> false

exception Parse_error of string

(* Recursive-descent parser.  Grammar (lowest precedence first):
     or   ::= xor (('|' | '+') xor)*
     xor  ::= and ('^' and)*
     and  ::= unary (('&' | '*') unary)*
     unary::= '!' unary | atom '\''* | atom
     atom ::= '(' or ')' | '0' | '1' | ident *)

type token = Tok_pin of string | Tok_op of char | Tok_eof

let tokenize s =
  let n = String.length s in
  let toks = ref [] in
  let is_ident c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9') || c = '_' || c = '[' || c = ']' || c = '.'
  in
  let rec go i =
    if i >= n then ()
    else
      match s.[i] with
      | ' ' | '\t' | '\n' | '\r' | '"' -> go (i + 1)
      | '!' | '&' | '*' | '|' | '+' | '^' | '(' | ')' | '\'' as c ->
        toks := Tok_op c :: !toks;
        go (i + 1)
      | c when is_ident c ->
        let j = ref i in
        while !j < n && is_ident s.[!j] do incr j done;
        toks := Tok_pin (String.sub s i (!j - i)) :: !toks;
        go !j
      | c -> raise (Parse_error (Printf.sprintf "unexpected character %C" c))
  in
  go 0;
  List.rev !toks

let parse s =
  let toks = ref (tokenize s) in
  let peek () = match !toks with [] -> Tok_eof | t :: _ -> t in
  let advance () = match !toks with [] -> () | _ :: rest -> toks := rest in
  let rec parse_or () =
    let left = parse_xor () in
    match peek () with
    | Tok_op ('|' | '+') ->
      advance ();
      Or (left, parse_or ())
    | Tok_op _ | Tok_pin _ | Tok_eof -> left
  and parse_xor () =
    let left = parse_and () in
    match peek () with
    | Tok_op '^' ->
      advance ();
      Xor (left, parse_xor ())
    | Tok_op _ | Tok_pin _ | Tok_eof -> left
  and parse_and () =
    let left = parse_unary () in
    match peek () with
    | Tok_op ('&' | '*') ->
      advance ();
      And (left, parse_and ())
    (* Liberty allows juxtaposition for AND: "A B" *)
    | Tok_pin _ | Tok_op ('!' | '(') -> And (left, parse_and ())
    | Tok_op _ | Tok_eof -> left
  and parse_unary () =
    match peek () with
    | Tok_op '!' ->
      advance ();
      postfix (Not (parse_unary ()))
    | Tok_op _ | Tok_pin _ | Tok_eof -> postfix (parse_atom ())
  and postfix e =
    match peek () with
    | Tok_op '\'' ->
      advance ();
      postfix (Not e)
    | Tok_op _ | Tok_pin _ | Tok_eof -> e
  and parse_atom () =
    match peek () with
    | Tok_op '(' ->
      advance ();
      let e = parse_or () in
      (match peek () with
       | Tok_op ')' -> advance (); e
       | Tok_op _ | Tok_pin _ | Tok_eof -> raise (Parse_error "expected ')'"))
    | Tok_pin "0" -> advance (); Const false
    | Tok_pin "1" -> advance (); Const true
    | Tok_pin p -> advance (); Pin p
    | Tok_op c -> raise (Parse_error (Printf.sprintf "unexpected %C" c))
    | Tok_eof -> raise (Parse_error "unexpected end of expression")
  in
  let e = parse_or () in
  match peek () with
  | Tok_eof -> e
  | Tok_op c -> raise (Parse_error (Printf.sprintf "trailing %C" c))
  | Tok_pin p -> raise (Parse_error ("trailing " ^ p))

let pins e =
  let module S = Set.Make (String) in
  let rec go acc = function
    | Const _ -> acc
    | Pin p -> S.add p acc
    | Not a -> go acc a
    | And (a, b) | Or (a, b) | Xor (a, b) -> go (go acc a) b
  in
  S.elements (go S.empty e)

let rec eval env = function
  | Const b -> b
  | Pin p -> env p
  | Not a -> not (eval env a)
  | And (a, b) -> eval env a && eval env b
  | Or (a, b) -> eval env a || eval env b
  | Xor (a, b) -> eval env a <> eval env b

let rec pp ppf = function
  | Const false -> Format.pp_print_string ppf "0"
  | Const true -> Format.pp_print_string ppf "1"
  | Pin p -> Format.pp_print_string ppf p
  | Not a -> Format.fprintf ppf "!%a" pp_atom a
  | And (a, b) -> Format.fprintf ppf "%a & %a" pp_atom a pp_atom b
  | Or (a, b) -> Format.fprintf ppf "%a | %a" pp_atom a pp_atom b
  | Xor (a, b) -> Format.fprintf ppf "%a ^ %a" pp_atom a pp_atom b

and pp_atom ppf e =
  match e with
  | Const _ | Pin _ | Not _ -> pp ppf e
  | And _ | Or _ | Xor _ -> Format.fprintf ppf "(%a)" pp e

let to_string e = Format.asprintf "%a" pp e

(** Technology-level electrical parameters shared by all cells of a
    library.  These drive the wire, clock-tree and power models. *)

type t = {
  voltage : float;          (** supply, V *)
  wire_cap_per_um : float;  (** routed wire capacitance, fF/um *)
  wire_res_per_um : float;  (** routed wire resistance, ohm/um (for CTS) *)
  row_height : float;       (** placement row height, um *)
  track_pitch : float;      (** horizontal pitch, um *)
  max_clock_fanout : int;   (** sinks per clock buffer during CTS *)
}

(** Reasonable 28nm-FDSOI-like defaults. *)
val default : t

(** A technology library: a named collection of {!Cell.t} plus the
    {!Tech.t} electrical parameters, with role-based cell selection used
    by the conversion flow (e.g. "give me an active-high latch"). *)

type t

val make : name:string -> tech:Tech.t -> Cell.t list -> t

val name : t -> string

val tech : t -> Tech.t

val cells : t -> Cell.t list

val find : t -> string -> Cell.t option

(** [find_exn lib cell_name] raises [Not_found] with a helpful message via
    [Invalid_argument] when the cell does not exist. *)
val find_exn : t -> string -> Cell.t

(** Role-based selection.  Each returns the smallest-area cell matching the
    role and raises [Invalid_argument] if the library has none. *)

val flip_flop : t -> Cell.t

val flip_flop_with_reset : t -> Cell.t

val latch : t -> transparent:Cell.level -> Cell.t

val latch_with_reset : t -> transparent:Cell.level -> Cell.t

val clock_gate : t -> style:Cell.icg_style -> Cell.t

val inverter : t -> Cell.t

val buffer : t -> Cell.t

val clock_buffer : t -> Cell.t

(** Two-input gate whose single output implements the requested function of
    inputs named by the returned pin names: [gate2 lib f] returns
    [(cell, in_a, in_b, out)]. [f] is matched structurally against AND, OR,
    XOR and XNOR of two pins. *)
val and2 : t -> Cell.t
val or2 : t -> Cell.t
val xor2 : t -> Cell.t
val xnor2 : t -> Cell.t

(** Parse a Liberty source into a library. *)
val of_liberty : string -> t

val to_liberty : t -> string

lib/cell_lib/default_library.mli: Library

lib/cell_lib/liberty.ml: Cell Expr Format List Option String Tech

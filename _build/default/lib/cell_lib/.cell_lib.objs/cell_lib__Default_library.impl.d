lib/cell_lib/default_library.ml: Lazy Library

lib/cell_lib/tech.mli:

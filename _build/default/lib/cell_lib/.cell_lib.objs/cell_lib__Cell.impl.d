lib/cell_lib/cell.ml: Expr List String

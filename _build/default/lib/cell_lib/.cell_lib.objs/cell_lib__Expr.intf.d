lib/cell_lib/expr.mli: Format

lib/cell_lib/tech.ml:

lib/cell_lib/library.ml: Cell Expr Format Liberty List Map Printf String Tech

lib/cell_lib/liberty.mli: Cell Format Tech

lib/cell_lib/expr.ml: Format List Printf Set String

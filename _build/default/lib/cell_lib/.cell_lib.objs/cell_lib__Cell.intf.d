lib/cell_lib/cell.mli: Expr

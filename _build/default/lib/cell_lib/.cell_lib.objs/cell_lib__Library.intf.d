lib/cell_lib/library.mli: Cell Tech

module String_map = Map.Make (String)

type t = {
  lib_name : string;
  lib_tech : Tech.t;
  by_name : Cell.t String_map.t;
  ordered : Cell.t list;
}

let make ~name ~tech cells =
  let by_name =
    List.fold_left
      (fun acc (c : Cell.t) -> String_map.add c.Cell.name c acc)
      String_map.empty cells
  in
  { lib_name = name; lib_tech = tech; by_name; ordered = cells }

let name t = t.lib_name

let tech t = t.lib_tech

let cells t = t.ordered

let find t n = String_map.find_opt n t.by_name

let find_exn t n =
  match find t n with
  | Some c -> c
  | None -> invalid_arg (Printf.sprintf "Library.find_exn: no cell %s in %s" n t.lib_name)

let smallest ~what t pred =
  let candidates = List.filter pred t.ordered in
  match List.sort (fun (a : Cell.t) b -> compare a.Cell.area b.Cell.area) candidates with
  | c :: _ -> c
  | [] -> invalid_arg (Printf.sprintf "Library: no %s cell in %s" what t.lib_name)

let flip_flop t =
  let pred (c : Cell.t) = match c.Cell.kind with
    | Cell.Flip_flop { reset_pin = None; _ } -> true
    | Cell.Flip_flop _ | Cell.Combinational | Cell.Latch _ | Cell.Clock_gate _ -> false
  in
  smallest ~what:"flip-flop" t pred

let flip_flop_with_reset t =
  let pred (c : Cell.t) = match c.Cell.kind with
    | Cell.Flip_flop { reset_pin = Some _; _ } -> true
    | Cell.Flip_flop _ | Cell.Combinational | Cell.Latch _ | Cell.Clock_gate _ -> false
  in
  smallest ~what:"resettable flip-flop" t pred

let latch t ~transparent =
  let pred (c : Cell.t) = match c.Cell.kind with
    | Cell.Latch { transparent = lv; reset_pin = None; _ } -> lv = transparent
    | Cell.Latch _ | Cell.Combinational | Cell.Flip_flop _ | Cell.Clock_gate _ -> false
  in
  smallest ~what:"latch" t pred

let latch_with_reset t ~transparent =
  let pred (c : Cell.t) = match c.Cell.kind with
    | Cell.Latch { transparent = lv; reset_pin = Some _; _ } -> lv = transparent
    | Cell.Latch _ | Cell.Combinational | Cell.Flip_flop _ | Cell.Clock_gate _ -> false
  in
  smallest ~what:"resettable latch" t pred

let clock_gate t ~style =
  let pred (c : Cell.t) = match c.Cell.kind with
    | Cell.Clock_gate { style = s; _ } -> s = style
    | Cell.Combinational | Cell.Flip_flop _ | Cell.Latch _ -> false
  in
  smallest ~what:"clock-gate" t pred

(* Structural matching of single-output combinational functions. *)

let output_function (c : Cell.t) =
  match Cell.output_pins c with
  | [p] -> p.Cell.func
  | [] | _ :: _ :: _ -> None

let is_unary_fn match_fn (c : Cell.t) =
  c.Cell.kind = Cell.Combinational
  && List.length (Cell.input_pins c) = 1
  && (match output_function c with
      | Some f -> match_fn f
      | None -> false)

let inverter t =
  let pred = is_unary_fn (function
    | Expr.Not (Expr.Pin _) -> true
    | Expr.Const _ | Expr.Pin _ | Expr.Not _ | Expr.And _ | Expr.Or _ | Expr.Xor _ -> false)
  in
  smallest ~what:"inverter" t pred

let buffer t =
  let pred = is_unary_fn (function
    | Expr.Pin _ -> true
    | Expr.Const _ | Expr.Not _ | Expr.And _ | Expr.Or _ | Expr.Xor _ -> false)
  in
  smallest ~what:"buffer" t pred

let clock_buffer t =
  (* Prefer a cell named CLKBUF*, otherwise the largest buffer. *)
  let named =
    List.filter
      (fun (c : Cell.t) ->
        String.length c.Cell.name >= 6 && String.sub c.Cell.name 0 6 = "CLKBUF")
      t.ordered
  in
  match named with
  | c :: _ -> c
  | [] -> buffer t

let binary_fn match_fn (c : Cell.t) =
  c.Cell.kind = Cell.Combinational
  && List.length (Cell.input_pins c) = 2
  && (match output_function c with
      | Some f -> match_fn f
      | None -> false)

let and2 t =
  smallest ~what:"AND2" t (binary_fn (function
    | Expr.And (Expr.Pin _, Expr.Pin _) -> true
    | Expr.Const _ | Expr.Pin _ | Expr.Not _ | Expr.And _ | Expr.Or _ | Expr.Xor _ -> false))

let or2 t =
  smallest ~what:"OR2" t (binary_fn (function
    | Expr.Or (Expr.Pin _, Expr.Pin _) -> true
    | Expr.Const _ | Expr.Pin _ | Expr.Not _ | Expr.And _ | Expr.Or _ | Expr.Xor _ -> false))

let xor2 t =
  smallest ~what:"XOR2" t (binary_fn (function
    | Expr.Xor (Expr.Pin _, Expr.Pin _) -> true
    | Expr.Const _ | Expr.Pin _ | Expr.Not _ | Expr.And _ | Expr.Or _ | Expr.Xor _ -> false))

let xnor2 t =
  smallest ~what:"XNOR2" t (binary_fn (function
    | Expr.Not (Expr.Xor (Expr.Pin _, Expr.Pin _)) -> true
    | Expr.Xor (Expr.Not (Expr.Pin _), Expr.Pin _) -> true
    | Expr.Const _ | Expr.Pin _ | Expr.Not _ | Expr.And _ | Expr.Or _ | Expr.Xor _ -> false))

let of_liberty src =
  let name, tech, cells = Liberty.parse src in
  make ~name ~tech cells

let to_liberty t =
  Format.asprintf "%a" Liberty.print (t.lib_name, t.lib_tech, t.ordered)

(** Boolean expressions over named pins, as found in Liberty [function]
    attributes.  Used both to describe combinational cell behaviour and to
    evaluate cells during simulation. *)

type t =
  | Const of bool
  | Pin of string
  | Not of t
  | And of t * t
  | Or of t * t
  | Xor of t * t

val equal : t -> t -> bool

(** [parse s] parses a Liberty-style boolean expression.  Supported
    operators, in decreasing precedence: [!] / trailing ['] (negation),
    [&] or [*] (conjunction), [^] (exclusive or), [|] or [+] (disjunction).
    Parentheses group.  Raises [Parse_error] on malformed input. *)
val parse : string -> t

exception Parse_error of string

(** [pins e] lists the distinct pin names appearing in [e], sorted. *)
val pins : t -> string list

(** [eval env e] evaluates [e] with pin values supplied by [env].
    Raises [Not_found] if [env] has no binding for a pin. *)
val eval : (string -> bool) -> t -> bool

(** Pretty-printer producing Liberty syntax. *)
val pp : Format.formatter -> t -> unit

val to_string : t -> string

type level = Active_high | Active_low

type icg_style =
  | Icg_standard
  | Icg_m1_p3
  | Icg_m2_latchless

type kind =
  | Combinational
  | Flip_flop of {
      clock_pin : string;
      data_pin : string;
      edge : level;
      reset_pin : string option;
    }
  | Latch of {
      enable_pin : string;
      data_pin : string;
      transparent : level;
      reset_pin : string option;
    }
  | Clock_gate of {
      clock_pin : string;
      enable_pin : string;
      style : icg_style;
      aux_clock_pin : string option;
    }

type direction = Input | Output

type pin = {
  pin_name : string;
  direction : direction;
  capacitance : float;
  func : Expr.t option;
}

type t = {
  name : string;
  kind : kind;
  area : float;
  leakage : float;
  pins : pin list;
  delay_min : float;
  delay_max : float;
  drive_resistance : float;
  internal_energy : float;
}

let find_pin c name =
  List.find_opt (fun p -> String.equal p.pin_name name) c.pins

let input_pins c = List.filter (fun p -> p.direction = Input) c.pins

let output_pins c = List.filter (fun p -> p.direction = Output) c.pins

let clock_pin_of c =
  match c.kind with
  | Combinational -> None
  | Flip_flop { clock_pin; _ } | Clock_gate { clock_pin; _ } -> Some clock_pin
  | Latch { enable_pin; _ } -> Some enable_pin

let is_sequential c =
  match c.kind with
  | Flip_flop _ | Latch _ -> true
  | Combinational | Clock_gate _ -> false

let is_flip_flop c = match c.kind with
  | Flip_flop _ -> true
  | Combinational | Latch _ | Clock_gate _ -> false

let is_latch c = match c.kind with
  | Latch _ -> true
  | Combinational | Flip_flop _ | Clock_gate _ -> false

let is_clock_gate c = match c.kind with
  | Clock_gate _ -> true
  | Combinational | Flip_flop _ | Latch _ -> false

let delay_through c ~load = c.delay_max +. (c.drive_resistance *. load)

let min_delay_through c ~load = c.delay_min +. (c.drive_resistance *. load)

(* Units: area um^2, capacitance fF, delay ns, leakage nW, energy fJ.
   The ratios that matter: LATCH area / DFF area ~ 0.55, latch clock-pin
   cap / DFF clock-pin cap ~ 0.5, ICG_P3 (M1) cheaper than ICG, ICG_NL
   (M2) cheaper still. *)
let source = {lib|
library (repro28) {
  voltage : 0.9 ;
  wire_cap_per_um : 0.20 ;
  wire_res_per_um : 2.0 ;
  row_height : 1.2 ;
  track_pitch : 0.1 ;
  max_clock_fanout : 24 ;

  cell (INV_X1) {
    area : 0.49 ; cell_leakage_power : 0.9 ; internal_energy : 0.35 ;
    pin (A) { direction : input ; capacitance : 0.9 ; }
    pin (ZN) { direction : output ; capacitance : 0 ; function : "!A" ; }
    timing () { intrinsic_min : 0.008 ; intrinsic_max : 0.014 ; drive_resistance : 0.0042 ; }
  }
  cell (INV_X4) {
    area : 1.31 ; cell_leakage_power : 3.2 ; internal_energy : 1.1 ;
    pin (A) { direction : input ; capacitance : 3.4 ; }
    pin (ZN) { direction : output ; capacitance : 0 ; function : "!A" ; }
    timing () { intrinsic_min : 0.007 ; intrinsic_max : 0.012 ; drive_resistance : 0.0012 ; }
  }
  cell (BUF_X2) {
    area : 0.98 ; cell_leakage_power : 1.7 ; internal_energy : 0.8 ;
    pin (A) { direction : input ; capacitance : 1.1 ; }
    pin (Z) { direction : output ; capacitance : 0 ; function : "A" ; }
    timing () { intrinsic_min : 0.018 ; intrinsic_max : 0.028 ; drive_resistance : 0.0021 ; }
  }
  cell (CLKBUF_X4) {
    area : 1.63 ; cell_leakage_power : 3.8 ; internal_energy : 1.6 ;
    pin (A) { direction : input ; capacitance : 1.9 ; }
    pin (Z) { direction : output ; capacitance : 0 ; function : "A" ; }
    timing () { intrinsic_min : 0.016 ; intrinsic_max : 0.024 ; drive_resistance : 0.0011 ; }
  }
  cell (NAND2_X1) {
    area : 0.65 ; cell_leakage_power : 1.2 ; internal_energy : 0.5 ;
    pin (A1) { direction : input ; capacitance : 1.0 ; }
    pin (A2) { direction : input ; capacitance : 1.0 ; }
    pin (ZN) { direction : output ; capacitance : 0 ; function : "!(A1 & A2)" ; }
    timing () { intrinsic_min : 0.010 ; intrinsic_max : 0.018 ; drive_resistance : 0.0046 ; }
  }
  cell (NAND3_X1) {
    area : 0.82 ; cell_leakage_power : 1.5 ; internal_energy : 0.6 ;
    pin (A1) { direction : input ; capacitance : 1.1 ; }
    pin (A2) { direction : input ; capacitance : 1.1 ; }
    pin (A3) { direction : input ; capacitance : 1.1 ; }
    pin (ZN) { direction : output ; capacitance : 0 ; function : "!(A1 & A2 & A3)" ; }
    timing () { intrinsic_min : 0.013 ; intrinsic_max : 0.024 ; drive_resistance : 0.0050 ; }
  }
  cell (NAND4_X1) {
    area : 0.98 ; cell_leakage_power : 1.8 ; internal_energy : 0.7 ;
    pin (A1) { direction : input ; capacitance : 1.2 ; }
    pin (A2) { direction : input ; capacitance : 1.2 ; }
    pin (A3) { direction : input ; capacitance : 1.2 ; }
    pin (A4) { direction : input ; capacitance : 1.2 ; }
    pin (ZN) { direction : output ; capacitance : 0 ; function : "!(A1 & A2 & A3 & A4)" ; }
    timing () { intrinsic_min : 0.016 ; intrinsic_max : 0.029 ; drive_resistance : 0.0054 ; }
  }
  cell (NOR2_X1) {
    area : 0.65 ; cell_leakage_power : 1.1 ; internal_energy : 0.5 ;
    pin (A1) { direction : input ; capacitance : 1.0 ; }
    pin (A2) { direction : input ; capacitance : 1.0 ; }
    pin (ZN) { direction : output ; capacitance : 0 ; function : "!(A1 | A2)" ; }
    timing () { intrinsic_min : 0.011 ; intrinsic_max : 0.020 ; drive_resistance : 0.0052 ; }
  }
  cell (NOR3_X1) {
    area : 0.82 ; cell_leakage_power : 1.4 ; internal_energy : 0.6 ;
    pin (A1) { direction : input ; capacitance : 1.1 ; }
    pin (A2) { direction : input ; capacitance : 1.1 ; }
    pin (A3) { direction : input ; capacitance : 1.1 ; }
    pin (ZN) { direction : output ; capacitance : 0 ; function : "!(A1 | A2 | A3)" ; }
    timing () { intrinsic_min : 0.015 ; intrinsic_max : 0.027 ; drive_resistance : 0.0058 ; }
  }
  cell (AND2_X1) {
    area : 0.82 ; cell_leakage_power : 1.3 ; internal_energy : 0.6 ;
    pin (A1) { direction : input ; capacitance : 0.9 ; }
    pin (A2) { direction : input ; capacitance : 0.9 ; }
    pin (Z) { direction : output ; capacitance : 0 ; function : "A1 & A2" ; }
    timing () { intrinsic_min : 0.018 ; intrinsic_max : 0.030 ; drive_resistance : 0.0040 ; }
  }
  cell (AND3_X1) {
    area : 0.98 ; cell_leakage_power : 1.6 ; internal_energy : 0.7 ;
    pin (A1) { direction : input ; capacitance : 1.0 ; }
    pin (A2) { direction : input ; capacitance : 1.0 ; }
    pin (A3) { direction : input ; capacitance : 1.0 ; }
    pin (Z) { direction : output ; capacitance : 0 ; function : "A1 & A2 & A3" ; }
    timing () { intrinsic_min : 0.021 ; intrinsic_max : 0.035 ; drive_resistance : 0.0043 ; }
  }
  cell (OR2_X1) {
    area : 0.82 ; cell_leakage_power : 1.3 ; internal_energy : 0.6 ;
    pin (A1) { direction : input ; capacitance : 0.9 ; }
    pin (A2) { direction : input ; capacitance : 0.9 ; }
    pin (Z) { direction : output ; capacitance : 0 ; function : "A1 | A2" ; }
    timing () { intrinsic_min : 0.019 ; intrinsic_max : 0.032 ; drive_resistance : 0.0041 ; }
  }
  cell (OR3_X1) {
    area : 0.98 ; cell_leakage_power : 1.6 ; internal_energy : 0.7 ;
    pin (A1) { direction : input ; capacitance : 1.0 ; }
    pin (A2) { direction : input ; capacitance : 1.0 ; }
    pin (A3) { direction : input ; capacitance : 1.0 ; }
    pin (Z) { direction : output ; capacitance : 0 ; function : "A1 | A2 | A3" ; }
    timing () { intrinsic_min : 0.022 ; intrinsic_max : 0.037 ; drive_resistance : 0.0044 ; }
  }
  cell (XOR2_X1) {
    area : 1.47 ; cell_leakage_power : 2.1 ; internal_energy : 1.0 ;
    pin (A1) { direction : input ; capacitance : 1.5 ; }
    pin (A2) { direction : input ; capacitance : 1.5 ; }
    pin (Z) { direction : output ; capacitance : 0 ; function : "A1 ^ A2" ; }
    timing () { intrinsic_min : 0.022 ; intrinsic_max : 0.038 ; drive_resistance : 0.0048 ; }
  }
  cell (XNOR2_X1) {
    area : 1.47 ; cell_leakage_power : 2.1 ; internal_energy : 1.0 ;
    pin (A1) { direction : input ; capacitance : 1.5 ; }
    pin (A2) { direction : input ; capacitance : 1.5 ; }
    pin (ZN) { direction : output ; capacitance : 0 ; function : "!(A1 ^ A2)" ; }
    timing () { intrinsic_min : 0.022 ; intrinsic_max : 0.038 ; drive_resistance : 0.0048 ; }
  }
  cell (MUX2_X1) {
    area : 1.63 ; cell_leakage_power : 2.4 ; internal_energy : 1.1 ;
    pin (A) { direction : input ; capacitance : 1.0 ; }
    pin (B) { direction : input ; capacitance : 1.0 ; }
    pin (S) { direction : input ; capacitance : 1.3 ; }
    pin (Z) { direction : output ; capacitance : 0 ; function : "(S & B) | (!S & A)" ; }
    timing () { intrinsic_min : 0.024 ; intrinsic_max : 0.040 ; drive_resistance : 0.0045 ; }
  }
  cell (AOI21_X1) {
    area : 0.82 ; cell_leakage_power : 1.4 ; internal_energy : 0.6 ;
    pin (A1) { direction : input ; capacitance : 1.1 ; }
    pin (A2) { direction : input ; capacitance : 1.1 ; }
    pin (B) { direction : input ; capacitance : 1.0 ; }
    pin (ZN) { direction : output ; capacitance : 0 ; function : "!((A1 & A2) | B)" ; }
    timing () { intrinsic_min : 0.014 ; intrinsic_max : 0.026 ; drive_resistance : 0.0050 ; }
  }
  cell (OAI21_X1) {
    area : 0.82 ; cell_leakage_power : 1.4 ; internal_energy : 0.6 ;
    pin (A1) { direction : input ; capacitance : 1.1 ; }
    pin (A2) { direction : input ; capacitance : 1.1 ; }
    pin (B) { direction : input ; capacitance : 1.0 ; }
    pin (ZN) { direction : output ; capacitance : 0 ; function : "!((A1 | A2) & B)" ; }
    timing () { intrinsic_min : 0.014 ; intrinsic_max : 0.026 ; drive_resistance : 0.0050 ; }
  }

  cell (DFF_X1) {
    area : 4.41 ; cell_leakage_power : 6.5 ; internal_energy : 2.4 ;
    ff (IQ) { clocked_on : "CK" ; next_state : "D" ; }
    pin (CK) { direction : input ; capacitance : 0.72 ; }
    pin (D) { direction : input ; capacitance : 0.85 ; }
    pin (Q) { direction : output ; capacitance : 0 ; function : "IQ" ; }
    timing () { intrinsic_min : 0.055 ; intrinsic_max : 0.085 ; drive_resistance : 0.0044 ; }
  }
  cell (DFFR_X1) {
    area : 5.23 ; cell_leakage_power : 7.4 ; internal_energy : 2.6 ;
    ff (IQ) { clocked_on : "CK" ; next_state : "D" ; clear : "!RN" ; }
    pin (CK) { direction : input ; capacitance : 0.74 ; }
    pin (D) { direction : input ; capacitance : 0.86 ; }
    pin (RN) { direction : input ; capacitance : 0.8 ; }
    pin (Q) { direction : output ; capacitance : 0 ; function : "IQ" ; }
    timing () { intrinsic_min : 0.057 ; intrinsic_max : 0.088 ; drive_resistance : 0.0044 ; }
  }
  cell (LATH_X1) {
    area : 2.45 ; cell_leakage_power : 3.4 ; internal_energy : 1.25 ;
    latch (IQ) { enable : "E" ; data_in : "D" ; }
    pin (E) { direction : input ; capacitance : 0.36 ; }
    pin (D) { direction : input ; capacitance : 0.75 ; }
    pin (Q) { direction : output ; capacitance : 0 ; function : "IQ" ; }
    timing () { intrinsic_min : 0.042 ; intrinsic_max : 0.066 ; drive_resistance : 0.0044 ; }
  }
  cell (LATHR_X1) {
    area : 2.94 ; cell_leakage_power : 4.0 ; internal_energy : 1.35 ;
    latch (IQ) { enable : "E" ; data_in : "D" ; clear : "!RN" ; }
    pin (E) { direction : input ; capacitance : 0.37 ; }
    pin (D) { direction : input ; capacitance : 0.76 ; }
    pin (RN) { direction : input ; capacitance : 0.7 ; }
    pin (Q) { direction : output ; capacitance : 0 ; function : "IQ" ; }
    timing () { intrinsic_min : 0.044 ; intrinsic_max : 0.068 ; drive_resistance : 0.0044 ; }
  }
  cell (LATL_X1) {
    area : 2.69 ; cell_leakage_power : 3.9 ; internal_energy : 1.65 ;
    latch (IQ) { enable : "!E" ; data_in : "D" ; }
    pin (E) { direction : input ; capacitance : 0.55 ; }
    pin (D) { direction : input ; capacitance : 0.75 ; }
    pin (Q) { direction : output ; capacitance : 0 ; function : "IQ" ; }
    timing () { intrinsic_min : 0.042 ; intrinsic_max : 0.066 ; drive_resistance : 0.0044 ; }
  }

  cell (PLATCH_X1) {
    area : 2.62 ; cell_leakage_power : 3.6 ; internal_energy : 1.35 ;
    ff (IQ) { clocked_on : "CK" ; next_state : "D" ; }
    pin (CK) { direction : input ; capacitance : 0.38 ; }
    pin (D) { direction : input ; capacitance : 0.75 ; }
    pin (Q) { direction : output ; capacitance : 0 ; function : "IQ" ; }
    timing () { intrinsic_min : 0.043 ; intrinsic_max : 0.067 ; drive_resistance : 0.0044 ; }
  }
  cell (PLATCHR_X1) {
    area : 3.11 ; cell_leakage_power : 4.2 ; internal_energy : 1.45 ;
    ff (IQ) { clocked_on : "CK" ; next_state : "D" ; clear : "!RN" ; }
    pin (CK) { direction : input ; capacitance : 0.39 ; }
    pin (D) { direction : input ; capacitance : 0.76 ; }
    pin (RN) { direction : input ; capacitance : 0.7 ; }
    pin (Q) { direction : output ; capacitance : 0 ; function : "IQ" ; }
    timing () { intrinsic_min : 0.045 ; intrinsic_max : 0.069 ; drive_resistance : 0.0044 ; }
  }
  cell (LATLR_X1) {
    area : 3.18 ; cell_leakage_power : 4.5 ; internal_energy : 1.75 ;
    latch (IQ) { enable : "!E" ; data_in : "D" ; clear : "!RN" ; }
    pin (E) { direction : input ; capacitance : 0.56 ; }
    pin (D) { direction : input ; capacitance : 0.76 ; }
    pin (RN) { direction : input ; capacitance : 0.7 ; }
    pin (Q) { direction : output ; capacitance : 0 ; function : "IQ" ; }
    timing () { intrinsic_min : 0.044 ; intrinsic_max : 0.068 ; drive_resistance : 0.0044 ; }
  }

  cell (ICG_X1) {
    area : 3.43 ; cell_leakage_power : 5.0 ; internal_energy : 1.6 ;
    icg () { clock : CK ; enable : EN ; style : standard ; }
    pin (CK) { direction : input ; capacitance : 0.78 ; }
    pin (EN) { direction : input ; capacitance : 0.62 ; }
    pin (GCK) { direction : output ; capacitance : 0 ; }
    timing () { intrinsic_min : 0.030 ; intrinsic_max : 0.048 ; drive_resistance : 0.0020 ; }
  }
  cell (ICGP3_X1) {
    area : 3.10 ; cell_leakage_power : 4.4 ; internal_energy : 1.35 ;
    icg () { clock : CK ; enable : EN ; style : m1_p3 ; aux_clock : P3 ; }
    pin (CK) { direction : input ; capacitance : 0.78 ; }
    pin (EN) { direction : input ; capacitance : 0.62 ; }
    pin (P3) { direction : input ; capacitance : 0.34 ; }
    pin (GCK) { direction : output ; capacitance : 0 ; }
    timing () { intrinsic_min : 0.029 ; intrinsic_max : 0.046 ; drive_resistance : 0.0020 ; }
  }
  cell (ICGNL_X1) {
    area : 1.14 ; cell_leakage_power : 1.9 ; internal_energy : 0.65 ;
    icg () { clock : CK ; enable : EN ; style : m2_latchless ; }
    pin (CK) { direction : input ; capacitance : 0.78 ; }
    pin (EN) { direction : input ; capacitance : 0.55 ; }
    pin (GCK) { direction : output ; capacitance : 0 ; }
    timing () { intrinsic_min : 0.015 ; intrinsic_max : 0.026 ; drive_resistance : 0.0022 ; }
  }
}
|lib}

let parsed = lazy (Library.of_liberty source)

let library () = Lazy.force parsed

(** Standard-cell descriptions: geometry, power, timing and behaviour.

    A cell is either combinational (its outputs carry boolean functions of
    its inputs), a sequential element (flip-flop or level-sensitive latch)
    or an integrated clock-gating (ICG) cell.  The three ICG styles model
    the paper's Fig. 3: the conventional cell (c0), the modification M1
    that reuses phase [p3] instead of an internal inverter (c1), and the
    modification M2 that removes the internal latch entirely (c2). *)

(** Transparency level of a latch or the active edge of a flip-flop. *)
type level = Active_high | Active_low

type icg_style =
  | Icg_standard      (** latch + AND, inverted clock via internal inverter *)
  | Icg_m1_p3         (** latch clocked by the extra [P3] pin (paper's M1) *)
  | Icg_m2_latchless  (** no internal latch (paper's M2) *)

type kind =
  | Combinational
  | Flip_flop of {
      clock_pin : string;
      data_pin : string;
      edge : level;            (** [Active_high] = rising-edge triggered *)
      reset_pin : string option;  (** asynchronous, active-low when present *)
    }
  | Latch of {
      enable_pin : string;
      data_pin : string;
      transparent : level;     (** level of [enable_pin] that opens the latch *)
      reset_pin : string option;
    }
  | Clock_gate of {
      clock_pin : string;
      enable_pin : string;
      style : icg_style;
      aux_clock_pin : string option;  (** the [P3] pin of the M1 style *)
    }

type direction = Input | Output

type pin = {
  pin_name : string;
  direction : direction;
  capacitance : float;       (** input pin capacitance, fF *)
  func : Expr.t option;      (** output function (combinational / ICG) *)
}

type t = {
  name : string;
  kind : kind;
  area : float;              (** um^2 *)
  leakage : float;           (** nW *)
  pins : pin list;
  delay_min : float;         (** intrinsic min delay, ns *)
  delay_max : float;         (** intrinsic max delay, ns *)
  drive_resistance : float;  (** ns per fF of load, for the linear model *)
  internal_energy : float;   (** fJ consumed per output toggle / clock event *)
}

val find_pin : t -> string -> pin option

val input_pins : t -> pin list

val output_pins : t -> pin list

(** [clock_pin_of c] returns the clock/enable pin name of a sequential or
    clock-gating cell, [None] for combinational cells. *)
val clock_pin_of : t -> string option

val is_sequential : t -> bool

val is_flip_flop : t -> bool

val is_latch : t -> bool

val is_clock_gate : t -> bool

(** Worst-case propagation delay through the cell driving [load] fF. *)
val delay_through : t -> load:float -> float

(** Best-case propagation delay through the cell driving [load] fF. *)
val min_delay_through : t -> load:float -> float

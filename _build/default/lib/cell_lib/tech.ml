type t = {
  voltage : float;
  wire_cap_per_um : float;
  wire_res_per_um : float;
  row_height : float;
  track_pitch : float;
  max_clock_fanout : int;
}

let default = {
  voltage = 0.9;
  wire_cap_per_um = 0.20;
  wire_res_per_um = 2.0;
  row_height = 1.2;
  track_pitch = 0.1;
  max_clock_fanout = 24;
}

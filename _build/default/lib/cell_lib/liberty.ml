type group = {
  g_name : string;
  g_args : string list;
  g_attrs : (string * string) list;
  g_subs : group list;
}

exception Error of string

let error fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

(* --- Lexer --- *)

type token =
  | Ident of string
  | Str of string
  | Colon
  | Semi
  | Lparen
  | Rparen
  | Lbrace
  | Rbrace
  | Comma
  | Eof

let tokenize src =
  let n = String.length src in
  let toks = ref [] in
  let is_word c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9')
    || c = '_' || c = '.' || c = '-' || c = '+' || c = '!' || c = '[' || c = ']'
  in
  let rec go i =
    if i >= n then ()
    else
      match src.[i] with
      | ' ' | '\t' | '\n' | '\r' -> go (i + 1)
      | '/' when i + 1 < n && src.[i + 1] = '*' ->
        let j = ref (i + 2) in
        while !j + 1 < n && not (src.[!j] = '*' && src.[!j + 1] = '/') do incr j done;
        go (!j + 2)
      | '/' when i + 1 < n && src.[i + 1] = '/' ->
        let j = ref (i + 2) in
        while !j < n && src.[!j] <> '\n' do incr j done;
        go !j
      | '"' ->
        let j = ref (i + 1) in
        while !j < n && src.[!j] <> '"' do incr j done;
        if !j >= n then error "unterminated string";
        toks := Str (String.sub src (i + 1) (!j - i - 1)) :: !toks;
        go (!j + 1)
      | ':' -> toks := Colon :: !toks; go (i + 1)
      | ';' -> toks := Semi :: !toks; go (i + 1)
      | '(' -> toks := Lparen :: !toks; go (i + 1)
      | ')' -> toks := Rparen :: !toks; go (i + 1)
      | '{' -> toks := Lbrace :: !toks; go (i + 1)
      | '}' -> toks := Rbrace :: !toks; go (i + 1)
      | ',' -> toks := Comma :: !toks; go (i + 1)
      | c when is_word c ->
        let j = ref i in
        while !j < n && is_word src.[!j] do incr j done;
        toks := Ident (String.sub src i (!j - i)) :: !toks;
        go !j
      | c -> error "unexpected character %C" c
  in
  go 0;
  List.rev !toks

(* --- Parser --- *)

type state = { mutable toks : token list }

let peek st = match st.toks with [] -> Eof | t :: _ -> t

let advance st = match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let expect st tok what =
  if peek st = tok then advance st else error "expected %s" what

(* group ::= ident '(' args ')' '{' item* '}'
   item  ::= ident ':' value ';' | group *)
let rec parse_group_body st name =
  let args = parse_args st in
  expect st Lbrace "'{'";
  let attrs = ref [] and subs = ref [] in
  let rec items () =
    match peek st with
    | Rbrace -> advance st
    | Ident id ->
      advance st;
      (match peek st with
       | Colon ->
         advance st;
         let v = parse_value st in
         expect st Semi "';'";
         attrs := (id, v) :: !attrs;
         items ()
       | Lparen ->
         subs := parse_group_body st id :: !subs;
         items ()
       | Str _ | Semi | Rparen | Lbrace | Rbrace | Comma | Ident _ | Eof ->
         error "expected ':' or '(' after %s" id)
    | Str _ | Colon | Semi | Lparen | Rparen | Lbrace | Comma ->
      error "unexpected token in group %s" name
    | Eof -> error "unexpected end of input in group %s" name
  in
  items ();
  { g_name = name;
    g_args = List.rev !args;
    g_attrs = List.rev !attrs;
    g_subs = List.rev !subs }

and parse_args st =
  expect st Lparen "'('";
  let args = ref [] in
  let rec go () =
    match peek st with
    | Rparen -> advance st; !args
    | Comma -> advance st; go ()
    | Ident id -> advance st; args := id :: !args; go ()
    | Str s -> advance st; args := s :: !args; go ()
    | Colon | Semi | Lparen | Lbrace | Rbrace | Eof -> error "malformed argument list"
  in
  ref (go ())

and parse_value st =
  match peek st with
  | Ident id -> advance st; id
  | Str s -> advance st; s
  | Colon | Semi | Lparen | Rparen | Lbrace | Rbrace | Comma | Eof ->
    error "expected attribute value"

let parse_group src =
  let st = { toks = tokenize src } in
  match peek st with
  | Ident id ->
    advance st;
    let g = parse_group_body st id in
    (match peek st with
     | Eof -> g
     | Ident _ | Str _ | Colon | Semi | Lparen | Rparen | Lbrace | Rbrace
     | Comma -> error "trailing input after top-level group")
  | Str _ | Colon | Semi | Lparen | Rparen | Lbrace | Rbrace | Comma | Eof ->
    error "expected a top-level group"

(* --- Accessors --- *)

let attr g name =
  List.assoc_opt name g.g_attrs

let attr_float g name =
  match attr g name with
  | None -> None
  | Some v ->
    (match float_of_string_opt v with
     | Some f -> Some f
     | None -> error "attribute %s is not a number: %s" name v)

let sub_groups g name =
  List.filter (fun s -> String.equal s.g_name name) g.g_subs

(* --- Interpretation --- *)

let level_of_signal s =
  if String.length s > 0 && s.[0] = '!'
  then Cell.Active_low, String.sub s 1 (String.length s - 1)
  else Cell.Active_high, s

let interpret_pin cell_name g =
  let name = match g.g_args with
    | [n] -> n
    | [] | _ :: _ -> error "cell %s: pin group needs exactly one name" cell_name
  in
  let direction = match attr g "direction" with
    | Some "input" -> Cell.Input
    | Some "output" -> Cell.Output
    | Some other -> error "cell %s pin %s: bad direction %s" cell_name name other
    | None -> error "cell %s pin %s: missing direction" cell_name name
  in
  let capacitance = Option.value ~default:0.0 (attr_float g "capacitance") in
  let func = match attr g "function" with
    | None -> None
    | Some src ->
      (try Some (Expr.parse src)
       with Expr.Parse_error msg ->
         error "cell %s pin %s: bad function %S: %s" cell_name name src msg)
  in
  let timing = sub_groups g "timing" in
  let pin = { Cell.pin_name = name; direction; capacitance; func } in
  (pin, timing)

let icg_style_of_string cell_name = function
  | "standard" -> Cell.Icg_standard
  | "m1_p3" -> Cell.Icg_m1_p3
  | "m2_latchless" -> Cell.Icg_m2_latchless
  | other -> error "cell %s: unknown icg style %s" cell_name other

let interpret_cell g =
  let name = match g.g_args with
    | [n] -> n
    | [] | _ :: _ -> error "cell group needs exactly one name"
  in
  let area = Option.value ~default:0.0 (attr_float g "area") in
  let leakage = Option.value ~default:0.0 (attr_float g "cell_leakage_power") in
  let internal_energy =
    Option.value ~default:0.0 (attr_float g "internal_energy") in
  let pins_and_timing = List.map (interpret_pin name) (sub_groups g "pin") in
  let pins = List.map fst pins_and_timing in
  let timings = sub_groups g "timing" @ List.concat_map snd pins_and_timing in
  let delay_min, delay_max, drive_resistance =
    match timings with
    | [] -> 0.0, 0.0, 0.0
    | t :: _ ->
      Option.value ~default:0.0 (attr_float t "intrinsic_min"),
      Option.value ~default:0.0 (attr_float t "intrinsic_max"),
      Option.value ~default:0.0 (attr_float t "drive_resistance")
  in
  let required a grp what =
    match attr grp a with
    | Some v -> v
    | None -> error "cell %s: %s group missing %s" name what a
  in
  let kind =
    match sub_groups g "ff", sub_groups g "latch", sub_groups g "icg" with
    | [ff], [], [] ->
      let edge, clock_pin = level_of_signal (required "clocked_on" ff "ff") in
      let data_pin = required "next_state" ff "ff" in
      let reset_pin = Option.map (fun s -> snd (level_of_signal s)) (attr ff "clear") in
      Cell.Flip_flop { clock_pin; data_pin; edge; reset_pin }
    | [], [lt], [] ->
      let transparent, enable_pin = level_of_signal (required "enable" lt "latch") in
      let data_pin = required "data_in" lt "latch" in
      let reset_pin = Option.map (fun s -> snd (level_of_signal s)) (attr lt "clear") in
      Cell.Latch { enable_pin; data_pin; transparent; reset_pin }
    | [], [], [icg] ->
      let clock_pin = required "clock" icg "icg" in
      let enable_pin = required "enable" icg "icg" in
      let style = icg_style_of_string name (required "style" icg "icg") in
      let aux_clock_pin = attr icg "aux_clock" in
      Cell.Clock_gate { clock_pin; enable_pin; style; aux_clock_pin }
    | [], [], [] -> Cell.Combinational
    | _ :: _, _ :: _, _ | _ :: _, _, _ :: _ | _, _ :: _, _ :: _
    | _ :: _ :: _, _, _ | _, _ :: _ :: _, _ | _, _, _ :: _ :: _ ->
      error "cell %s: conflicting sequential groups" name
  in
  { Cell.name; kind; area; leakage; pins; delay_min; delay_max;
    drive_resistance; internal_energy }

let interpret g =
  if not (String.equal g.g_name "library") then
    error "expected a library group, found %s" g.g_name;
  let name = match g.g_args with
    | [n] -> n
    | [] | _ :: _ -> error "library group needs exactly one name"
  in
  let d = Tech.default in
  let tech = {
    Tech.voltage = Option.value ~default:d.Tech.voltage (attr_float g "voltage");
    wire_cap_per_um =
      Option.value ~default:d.Tech.wire_cap_per_um (attr_float g "wire_cap_per_um");
    wire_res_per_um =
      Option.value ~default:d.Tech.wire_res_per_um (attr_float g "wire_res_per_um");
    row_height = Option.value ~default:d.Tech.row_height (attr_float g "row_height");
    track_pitch = Option.value ~default:d.Tech.track_pitch (attr_float g "track_pitch");
    max_clock_fanout =
      (match attr_float g "max_clock_fanout" with
       | None -> d.Tech.max_clock_fanout
       | Some f -> int_of_float f);
  } in
  let cells = List.map interpret_cell (sub_groups g "cell") in
  (name, tech, cells)

let parse src = interpret (parse_group src)

(* --- Printing --- *)

let pp_pin ppf (p : Cell.pin) =
  Format.fprintf ppf "@[<v 2>pin (%s) {@," p.Cell.pin_name;
  Format.fprintf ppf "direction : %s ;"
    (match p.Cell.direction with Cell.Input -> "input" | Cell.Output -> "output");
  Format.fprintf ppf "@,capacitance : %g ;" p.Cell.capacitance;
  (match p.Cell.func with
   | None -> ()
   | Some f -> Format.fprintf ppf "@,function : \"%s\" ;" (Expr.to_string f));
  Format.fprintf ppf "@]@,}"

let pp_signal level pin =
  match level with
  | Cell.Active_high -> pin
  | Cell.Active_low -> "!" ^ pin

let pp_kind ppf (c : Cell.t) =
  match c.Cell.kind with
  | Cell.Combinational -> ()
  | Cell.Flip_flop { clock_pin; data_pin; edge; reset_pin } ->
    Format.fprintf ppf "@,@[<v 2>ff (IQ) {@,clocked_on : \"%s\" ;@,next_state : \"%s\" ;"
      (pp_signal edge clock_pin) data_pin;
    (match reset_pin with
     | None -> ()
     | Some r -> Format.fprintf ppf "@,clear : \"%s\" ;" r);
    Format.fprintf ppf "@]@,}"
  | Cell.Latch { enable_pin; data_pin; transparent; reset_pin } ->
    Format.fprintf ppf "@,@[<v 2>latch (IQ) {@,enable : \"%s\" ;@,data_in : \"%s\" ;"
      (pp_signal transparent enable_pin) data_pin;
    (match reset_pin with
     | None -> ()
     | Some r -> Format.fprintf ppf "@,clear : \"%s\" ;" r);
    Format.fprintf ppf "@]@,}"
  | Cell.Clock_gate { clock_pin; enable_pin; style; aux_clock_pin } ->
    let style_str = match style with
      | Cell.Icg_standard -> "standard"
      | Cell.Icg_m1_p3 -> "m1_p3"
      | Cell.Icg_m2_latchless -> "m2_latchless"
    in
    Format.fprintf ppf "@,@[<v 2>icg () {@,clock : %s ;@,enable : %s ;@,style : %s ;"
      clock_pin enable_pin style_str;
    (match aux_clock_pin with
     | None -> ()
     | Some p -> Format.fprintf ppf "@,aux_clock : %s ;" p);
    Format.fprintf ppf "@]@,}"

let pp_cell ppf (c : Cell.t) =
  Format.fprintf ppf "@[<v 2>cell (%s) {@,area : %g ;@,cell_leakage_power : %g ;@,internal_energy : %g ;"
    c.Cell.name c.Cell.area c.Cell.leakage c.Cell.internal_energy;
  pp_kind ppf c;
  List.iter (fun p -> Format.fprintf ppf "@,%a" pp_pin p) c.Cell.pins;
  if c.Cell.delay_max > 0.0 || c.Cell.drive_resistance > 0.0 then
    Format.fprintf ppf
      "@,@[<v 2>timing () {@,intrinsic_min : %g ;@,intrinsic_max : %g ;@,drive_resistance : %g ;@]@,}"
      c.Cell.delay_min c.Cell.delay_max c.Cell.drive_resistance;
  Format.fprintf ppf "@]@,}"

let print ppf (name, (tech : Tech.t), cells) =
  Format.fprintf ppf "@[<v 2>library (%s) {@," name;
  Format.fprintf ppf "voltage : %g ;@," tech.Tech.voltage;
  Format.fprintf ppf "wire_cap_per_um : %g ;@," tech.Tech.wire_cap_per_um;
  Format.fprintf ppf "wire_res_per_um : %g ;@," tech.Tech.wire_res_per_um;
  Format.fprintf ppf "row_height : %g ;@," tech.Tech.row_height;
  Format.fprintf ppf "track_pitch : %g ;@," tech.Tech.track_pitch;
  Format.fprintf ppf "max_clock_fanout : %d ;" tech.Tech.max_clock_fanout;
  List.iter (fun c -> Format.fprintf ppf "@,%a" pp_cell c) cells;
  Format.fprintf ppf "@]@,}@."

lib/physical/implement.mli: Clock_tree Netlist Placement Sta

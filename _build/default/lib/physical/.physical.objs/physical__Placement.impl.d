lib/physical/placement.ml: Array Cell_lib Float List Netlist Queue Stdlib

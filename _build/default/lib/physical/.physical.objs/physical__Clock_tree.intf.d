lib/physical/clock_tree.mli: Netlist Placement

lib/physical/placement.mli: Netlist

lib/physical/implement.ml: Cell_lib Clock_tree Netlist Placement Sta

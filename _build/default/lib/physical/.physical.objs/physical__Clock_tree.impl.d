lib/physical/clock_tree.ml: Array Cell_lib Float List Netlist Option Placement Stdlib String

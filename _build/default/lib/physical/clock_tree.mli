(** Clock-tree synthesis estimate.

    Each clock subnet (a root clock port or an ICG output, with the
    sequential clock pins, downstream ICG clock pins and auxiliary clock
    pins it drives) gets a buffer tree sized for its load: clock buffers
    drive a bounded capacitance, so tree cost scales with the total pin
    capacitance rather than the sink count — the behaviour the paper's
    master-slave data exhibits (twice the sinks at half the pin cap cost
    the same clock power).  Wire length combines per-buffer local cluster
    spans with a per-level trunk.  The result feeds the clock-power
    group: capacitance that toggles at the subnet's rate. *)

type subnet = {
  driver : [ `Port of string | `Icg of Netlist.Design.inst ];
  root_net : Netlist.Design.net;
  sinks : int;
  buffers : int;
  levels : int;
  wire_cap : float;     (** fF of clock routing *)
  sink_pin_cap : float; (** fF of the driven clock pins *)
  buffer_cap : float;   (** fF of inserted buffer input pins *)
  buffer_area : float;  (** um^2 of inserted buffers *)
  buffer_leakage : float;
  buffer_internal_energy : float; (** fJ per clock toggle, all buffers *)
}

type t = {
  subnets : subnet list;
  total_buffers : int;
  total_wire_cap : float;
  total_area : float;
}

val synthesize : Netlist.Design.t -> Placement.t -> t

val subnet_cap : subnet -> float

module Design = Netlist.Design

type t = {
  x : float array;
  y : float array;
  die_width : float;
  die_height : float;
  rows : int;
  utilization : float;
}

(* Positions of the cells on a net: driver first when placed. *)
let net_positions d pl net =
  let sinks = List.map fst d.Design.net_sinks.(net) in
  let insts =
    match d.Design.net_driver.(net) with
    | Design.Driven_by (i, _) -> i :: sinks
    | Design.Driven_by_input _ | Design.Driven_const _ | Design.Undriven -> sinks
  in
  List.map (fun i -> (pl.x.(i), pl.y.(i))) insts

let net_hpwl d pl net =
  match net_positions d pl net with
  | [] | [_] -> 0.0
  | (x0, y0) :: rest ->
    let xmin, xmax, ymin, ymax =
      List.fold_left
        (fun (a, b, c, e) (x, y) ->
          (Float.min a x, Float.max b x, Float.min c y, Float.max e y))
        (x0, x0, y0, y0) rest
    in
    (xmax -. xmin) +. (ymax -. ymin)

let total_wirelength d pl =
  let sum = ref 0.0 in
  for n = 0 to Design.num_nets d - 1 do
    sum := !sum +. net_hpwl d pl n
  done;
  !sum

let place ?(utilization = 0.7) ?(iterations = 4) d =
  let tech = Cell_lib.Library.tech d.Design.library in
  let n = Design.num_insts d in
  let total_area =
    Design.fold_insts
      (fun i acc -> acc +. (Design.cell d i).Cell_lib.Cell.area)
      d 0.0
  in
  let die_area = Float.max 1.0 (total_area /. utilization) in
  let die_width = Float.max tech.Cell_lib.Tech.row_height (sqrt die_area) in
  let rows =
    Stdlib.max 1 (int_of_float (die_width /. tech.Cell_lib.Tech.row_height))
  in
  let die_height = float_of_int rows *. tech.Cell_lib.Tech.row_height in
  (* initial order: BFS from primary inputs through the netlist *)
  let order = Array.make n (-1) in
  let rank = Array.make n max_int in
  let next = ref 0 in
  let queue = Queue.create () in
  let enqueue i =
    if rank.(i) = max_int then begin
      rank.(i) <- !next;
      order.(!next) <- i;
      incr next;
      Queue.add i queue
    end
  in
  List.iter
    (fun (_, net) -> List.iter (fun (i, _) -> enqueue i) d.Design.net_sinks.(net))
    d.Design.primary_inputs;
  let bfs () =
    while not (Queue.is_empty queue) do
      let i = Queue.pop queue in
      List.iter
        (fun net -> List.iter (fun (j, _) -> enqueue j) d.Design.net_sinks.(net))
        (Design.output_nets d i)
    done
  in
  bfs ();
  for i = 0 to n - 1 do
    enqueue i;
    bfs ()
  done;
  let x = Array.make n 0.0 and y = Array.make n 0.0 in
  let per_row = (n + rows - 1) / max 1 rows in
  let slot_width = die_width /. float_of_int (max 1 per_row) in
  let assign_positions ordering =
    Array.iteri
      (fun k i ->
        let row = k / per_row and col = k mod per_row in
        (* snake rows for locality *)
        let col = if row mod 2 = 0 then col else per_row - 1 - col in
        x.(i) <- (float_of_int col +. 0.5) *. slot_width;
        y.(i) <- (float_of_int row +. 0.5) *. tech.Cell_lib.Tech.row_height)
      ordering
  in
  assign_positions order;
  let pl = { x; y; die_width; die_height; rows; utilization } in
  (* barycenter refinement: move each instance towards the centroid of its
     neighbours, then re-legalize by sorting *)
  let neighbours = Array.make n [] in
  for net = 0 to Design.num_nets d - 1 do
    let insts =
      (match d.Design.net_driver.(net) with
       | Design.Driven_by (i, _) -> [i]
       | Design.Driven_by_input _ | Design.Driven_const _ | Design.Undriven -> [])
      @ List.map fst d.Design.net_sinks.(net)
    in
    (* gated-clock nets cluster their bank around the gate (clock-aware
       placement: short gated subtrees); other huge nets (free clocks)
       are skipped *)
    let gated_clock =
      match d.Design.net_driver.(net) with
      | Design.Driven_by (i, _) -> Cell_lib.Cell.is_clock_gate (Design.cell d i)
      | Design.Driven_by_input _ | Design.Driven_const _ | Design.Undriven ->
        false
    in
    if gated_clock then
      (* double weight pulls the bank tight *)
      List.iter
        (fun i ->
          let others = List.filter (fun j -> j <> i) insts in
          neighbours.(i) <- others @ others @ neighbours.(i))
        insts
    else if List.length insts <= 16 then
      List.iter
        (fun i ->
          neighbours.(i) <-
            List.filter (fun j -> j <> i) insts @ neighbours.(i))
        insts
  done;
  for _pass = 1 to iterations do
    let desired =
      Array.init n (fun i ->
          match neighbours.(i) with
          | [] -> (x.(i), y.(i))
          | ns ->
            let sx = List.fold_left (fun a j -> a +. x.(j)) 0.0 ns in
            let sy = List.fold_left (fun a j -> a +. y.(j)) 0.0 ns in
            let c = float_of_int (List.length ns) in
            (sx /. c, sy /. c))
    in
    (* order instances by desired (row, x) and re-assign slots *)
    let keyed =
      Array.init n (fun i ->
          let dx, dy = desired.(i) in
          (dy, dx, i))
    in
    Array.sort compare keyed;
    let new_order = Array.map (fun (_, _, i) -> i) keyed in
    assign_positions new_order
  done;
  pl

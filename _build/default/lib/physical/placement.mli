(** Standard-cell placement: row-based legalized positions refined by a
    few barycenter sweeps.  A light-weight stand-in for the paper's
    commercial place-and-route step — what matters downstream is that
    wire lengths scale with connectivity and die size. *)

type t = {
  x : float array;          (** per instance, um *)
  y : float array;
  die_width : float;
  die_height : float;
  rows : int;
  utilization : float;
}

(** [place ?utilization ?iterations d] — default 0.7 utilization, 4
    barycenter sweeps. *)
val place : ?utilization:float -> ?iterations:int -> Netlist.Design.t -> t

(** Half-perimeter wire length of a net (driver + sink positions), um. *)
val net_hpwl : Netlist.Design.t -> t -> Netlist.Design.net -> float

val total_wirelength : Netlist.Design.t -> t -> float

(** The "physical design" step of the flow: place, estimate routing, and
    synthesize clock trees.  Bundles what the power model needs. *)

type t = {
  design : Netlist.Design.t;
  placement : Placement.t;
  clock_tree : Clock_tree.t;
  wire : Sta.Delay.wire_model;
  total_wirelength : float;   (** um, signal nets *)
  cell_area : float;          (** um^2, netlist cells *)
  total_area : float;         (** cells + clock-tree buffers *)
}

val run : ?utilization:float -> Netlist.Design.t -> t

module Design = Netlist.Design

type subnet = {
  driver : [ `Port of string | `Icg of Design.inst ];
  root_net : Design.net;
  sinks : int;
  buffers : int;
  levels : int;
  wire_cap : float;
  sink_pin_cap : float;
  buffer_cap : float;
  buffer_area : float;
  buffer_leakage : float;
  buffer_internal_energy : float;
}

type t = {
  subnets : subnet list;
  total_buffers : int;
  total_wire_cap : float;
  total_area : float;
}

let subnet_cap s = s.wire_cap +. s.sink_pin_cap +. s.buffer_cap

(* Clock sinks of one net: sequential clock pins and ICG clock pins (the
   ICG output then forms its own subnet). *)
let direct_sinks d net =
  List.filter_map
    (fun (i, pin) ->
      let c = Design.cell d i in
      match Cell_lib.Cell.clock_pin_of c with
      | Some cp when String.equal cp pin ->
        (match Cell_lib.Cell.find_pin c pin with
         | Some p -> Some (i, p.Cell_lib.Cell.capacitance)
         | None -> None)
      | Some _ | None ->
        (* auxiliary clock pins (the P3 input of M1-style gates) also load
           the tree; enable pins are data and excluded *)
        (match c.Cell_lib.Cell.kind with
         | Cell_lib.Cell.Clock_gate { aux_clock_pin = Some aux; _ }
           when String.equal aux pin ->
           (match Cell_lib.Cell.find_pin c pin with
            | Some p -> Some (i, p.Cell_lib.Cell.capacitance)
            | None -> None)
         | Cell_lib.Cell.Clock_gate _ | Cell_lib.Cell.Combinational
         | Cell_lib.Cell.Flip_flop _ | Cell_lib.Cell.Latch _ -> None))
    d.Design.net_sinks.(net)

(* Buffers are sized for load, so the tree cost scales with the total pin
   capacitance it drives (the paper's master-slave data confirms this:
   twice the sinks at half the pin cap costs the same clock power as the
   flip-flop original).  Each buffer drives [drive_cap] fF of load across
   a local cluster whose span shrinks as buffers multiply; a small trunk
   per level connects the clusters. *)
let drive_cap = 12.0

(* Routed clock distribution (stubs, shielding, intermediate repeater
   wiring) scales with the load it serves; silicon clock networks carry
   roughly 2-4x the sink capacitance in wire.  *)
let distribution_factor = 3.0

let synthesize d pl =
  let lib = d.Design.library in
  let tech = Cell_lib.Library.tech lib in
  let clkbuf = Cell_lib.Library.clock_buffer lib in
  let clkbuf_in_cap =
    match Cell_lib.Cell.input_pins clkbuf with
    | [p] -> p.Cell_lib.Cell.capacitance
    | [] | _ :: _ :: _ -> 1.5
  in
  let die_span = pl.Placement.die_width +. pl.Placement.die_height in
  let die_area = pl.Placement.die_width *. pl.Placement.die_height in
  let roots =
    List.filter_map
      (fun port ->
        Option.map (fun net -> (`Port port, net)) (Design.find_input d port))
      d.Design.clock_ports
    @ List.filter_map
        (fun i ->
          Option.map (fun net -> (`Icg i, net)) (Design.q_net_of d i))
        (Design.clock_gate_insts d)
  in
  ignore die_area;
  let subnets =
    List.map
      (fun (driver, net) ->
        let sinks = direct_sinks d net in
        let n_sinks = List.length sinks in
        let sink_pin_cap = List.fold_left (fun a (_, c) -> a +. c) 0.0 sinks in
        (* bounding box of the placed sinks *)
        let bbox_span =
          match sinks with
          | [] -> 0.0
          | (i0, _) :: rest ->
            let x0 = pl.Placement.x.(i0) and y0 = pl.Placement.y.(i0) in
            let xmin, xmax, ymin, ymax =
              List.fold_left
                (fun (a, b, c, e) (i, _) ->
                  let x = pl.Placement.x.(i) and y = pl.Placement.y.(i) in
                  (Float.min a x, Float.max b x, Float.min c y, Float.max e y))
                (x0, x0, y0, y0) rest
            in
            (xmax -. xmin) +. (ymax -. ymin)
        in
        (* CTS-aware placement clusters the sinks of a gated subnet, so
           the usable span is bounded by the area the sinks themselves
           occupy *)
        let bbox_span =
          Float.min bbox_span (4.0 *. sqrt (float_of_int n_sinks *. 3.0))
        in
        (* light subnets are driven directly by their ICG; heavier ones
           get load-sized buffers *)
        let buffers =
          if n_sinks = 0 || sink_pin_cap <= drive_cap then 0
          else int_of_float (ceil (sink_pin_cap /. drive_cap))
        in
        let levels =
          if buffers <= 1 then 1
          else 1 + int_of_float (ceil (log (float_of_int buffers) /. log 4.0))
        in
        let wire_um =
          if n_sinks = 0 then 0.0
          else
            (1.2 *. bbox_span *. sqrt (float_of_int (Stdlib.max 1 buffers)))
            +. (float_of_int (levels - 1) *. die_span /. 4.0)
        in
        { driver;
          root_net = net;
          sinks = n_sinks;
          buffers;
          levels;
          wire_cap =
            (wire_um *. tech.Cell_lib.Tech.wire_cap_per_um)
            +. (distribution_factor *. sink_pin_cap);
          sink_pin_cap;
          buffer_cap = float_of_int buffers *. clkbuf_in_cap;
          buffer_area = float_of_int buffers *. clkbuf.Cell_lib.Cell.area;
          buffer_leakage = float_of_int buffers *. clkbuf.Cell_lib.Cell.leakage;
          buffer_internal_energy =
            float_of_int buffers *. clkbuf.Cell_lib.Cell.internal_energy })
      roots
  in
  { subnets;
    total_buffers = List.fold_left (fun a s -> a + s.buffers) 0 subnets;
    total_wire_cap = List.fold_left (fun a s -> a +. s.wire_cap) 0.0 subnets;
    total_area = List.fold_left (fun a s -> a +. s.buffer_area) 0.0 subnets }

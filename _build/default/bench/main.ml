(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Tables I and II, Figs. 1-4, the run-time discussion), the
   ablation studies from DESIGN.md, and Bechamel micro-benchmarks of the
   flow's expensive steps.

   Usage:
     bench/main.exe                  run everything on the full suite
     bench/main.exe quick            one benchmark per family
     bench/main.exe table1 fig4 ...  selected experiments only
   Experiments: table1 table2 fig1 fig2 fig3 fig4 runtime
                ablation-solver ablation-cg ablation-retime ablation-ddcg
                ablation-skew ablation-pvt baselines freq-sweep micro *)

let log fmt = Printf.eprintf (fmt ^^ "\n%!")

let wants args name =
  args = [] || List.exists (String.equal name) args

let run_suite quick =
  let benches = if quick then Circuits.Suite.quick () else Circuits.Suite.all () in
  List.map
    (fun b ->
      log "[suite] running %s ..." b.Circuits.Suite.bench_name;
      let r = Experiments.Runner.run b in
      log "[suite] %s done in %.1fs" b.Circuits.Suite.bench_name
        r.Experiments.Runner.total_time_s;
      r)
    benches

let print_tables ts = List.iter (fun t -> Report.Table.print t; print_newline ()) ts

(* --- Bechamel micro-benchmarks ------------------------------------- *)

let micro () =
  let open Bechamel in
  let bench = match Circuits.Suite.find "s5378" with
    | Some b -> b
    | None -> assert false
  in
  let design = bench.Circuits.Suite.build () in
  let config = Phase3.Flow.default_config ~period:bench.Circuits.Suite.period_ns in
  let asg = Phase3.Assignment.solve design in
  let converted = Phase3.Convert.to_three_phase design asg in
  let clocks = Phase3.Flow.clocks_of config in
  let engine = Sim.Engine.create converted ~clocks in
  let inputs = Sim.Stimulus.inputs_of converted in
  let stim_cycle =
    match Sim.Stimulus.random ~seed:3 ~cycles:1 ~toggle_probability:0.3 inputs with
    | [cycle] -> cycle
    | _ -> assert false
  in
  let tests =
    Test.make_grouped ~name:"threephase"
      [ Test.make ~name:"table1:assignment-ilp-s5378"
          (Staged.stage (fun () -> Phase3.Assignment.solve ~solver:`Mis design));
        Test.make ~name:"table1:convert-s5378"
          (Staged.stage (fun () -> Phase3.Convert.to_three_phase design asg));
        Test.make ~name:"table1:master-slave-s5378"
          (Staged.stage (fun () -> Phase3.Master_slave.convert design));
        Test.make ~name:"table1:retime-s5378"
          (Staged.stage (fun () -> Phase3.Retime.run converted));
        Test.make ~name:"table1:placement-s5378"
          (Staged.stage (fun () -> Physical.Placement.place design));
        Test.make ~name:"table2:sim-cycle-s5378-3p"
          (Staged.stage (fun () -> ignore (Sim.Engine.run_cycle engine stim_cycle)));
        Test.make ~name:"table2:smo-check-s5378"
          (Staged.stage (fun () -> Sta.Smo.check converted ~clocks)) ]
  in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 1.5) () in
  let raw = Benchmark.all cfg [Toolkit.Instance.monotonic_clock] tests in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let t =
    Report.Table.create ~title:"Micro-benchmarks (Bechamel, ns/run)"
      [ ("step", Report.Table.Left); ("ns/run", Report.Table.Right) ]
  in
  let rows = Hashtbl.fold (fun name est acc -> (name, est) :: acc) results [] in
  List.iter
    (fun (name, est) ->
      let ns =
        match Bechamel.Analyze.OLS.estimates est with
        | Some [v] -> Printf.sprintf "%.0f" v
        | Some _ | None -> "-"
      in
      Report.Table.add_row t [name; ns])
    (List.sort compare rows);
  Report.Table.print t;
  print_newline ()

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let quick = List.exists (String.equal "quick") args in
  let args = List.filter (fun a -> not (String.equal a "quick")) args in
  let need_suite =
    List.exists (wants args) ["table1"; "table2"; "runtime"]
  in
  let results = if need_suite then run_suite quick else [] in
  if wants args "table1" then print_tables (Experiments.Tables.table1 results);
  if wants args "table2" then print_tables (Experiments.Tables.table2 results);
  if wants args "fig1" then print_tables [Experiments.Tables.fig1 ()];
  if wants args "fig2" then print_tables [Experiments.Tables.fig2 ()];
  if wants args "fig3" then print_tables [Experiments.Tables.fig3 ()];
  if wants args "fig4" then begin
    log "[fig4] CPU workload sweep ...";
    print_tables [Experiments.Tables.fig4 ()]
  end;
  if wants args "runtime" then print_tables [Experiments.Tables.runtime results];
  if wants args "ablation-solver" then
    print_tables [Experiments.Ablation.solver ()];
  if wants args "ablation-cg" then
    print_tables [Experiments.Ablation.clock_gating ()];
  if wants args "ablation-retime" then
    print_tables [Experiments.Ablation.retiming ()];
  if wants args "ablation-ddcg" then
    print_tables [Experiments.Ablation.ddcg_fanout ()];
  if wants args "ablation-skew" then
    print_tables [Experiments.Ablation.skew_tolerance ()];
  if wants args "baselines" then
    print_tables [Experiments.Tables.baselines ()];
  if wants args "ablation-pvt" then
    print_tables [Experiments.Ablation.pvt ()];
  if wants args "freq-sweep" then
    print_tables [Experiments.Tables.frequency_sweep ()];
  if wants args "micro" then micro ()

test/test_ilp.ml: Alcotest Array Cell_lib Float Fun Ilp List Lp Netlist Phase3 Printf QCheck QCheck_alcotest

test/test_experiments.ml: Alcotest Astring Circuits Experiments List Power Report

test/test_artifacts.ml: Alcotest Astring Cell_lib Circuits List Netlist Netlist_io Option Phase3 Sim Sta String

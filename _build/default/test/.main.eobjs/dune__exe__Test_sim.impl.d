test/test_sim.ml: Alcotest Array Cell_lib List Netlist Option Printf Sim String

test/test_netlist.ml: Alcotest Array Astring Cell_lib Circuits Format Fun Hashtbl List Netlist Option Printf QCheck QCheck_alcotest Sim String

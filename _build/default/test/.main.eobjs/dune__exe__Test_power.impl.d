test/test_power.ml: Alcotest Cell_lib Circuits Netlist Phase3 Physical Power Printf Sim

test/test_fuzz.ml: Alcotest Cell_lib Char Circuits List Netlist Netlist_io Option QCheck QCheck_alcotest Sim Sta String

test/test_sta.ml: Alcotest Array Cell_lib Circuits List Netlist Option Phase3 Printf Sim Sta

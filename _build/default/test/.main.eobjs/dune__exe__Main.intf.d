test/main.mli:

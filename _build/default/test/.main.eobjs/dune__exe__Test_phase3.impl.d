test/test_phase3.ml: Alcotest Array Astring Cell_lib Circuits Float Format List Netlist Option Phase3 Printf QCheck QCheck_alcotest Sim Sta String

test/test_physical.ml: Alcotest Array Cell_lib Circuits List Netlist Phase3 Physical Printf

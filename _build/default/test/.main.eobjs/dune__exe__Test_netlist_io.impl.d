test/test_netlist_io.ml: Alcotest Cell_lib Circuits Format List Netlist Netlist_io Phase3 Printf Sim String

test/test_circuits.ml: Alcotest Array Circuits Float List Netlist Netlist_io Phase3 Printf Sim String

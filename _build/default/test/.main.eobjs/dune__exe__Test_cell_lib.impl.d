test/test_cell_lib.ml: Alcotest Cell_lib Fun List Printf QCheck QCheck_alcotest String

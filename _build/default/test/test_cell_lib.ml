(* Unit and property tests for the technology-library substrate:
   boolean expressions, the Liberty subset, and cell selection. *)

let check = Alcotest.check

module Expr = Cell_lib.Expr

(* --- Expr --- *)

let test_expr_parse_basic () =
  check Alcotest.bool "and" true
    (Expr.equal (Expr.parse "A & B") (Expr.And (Expr.Pin "A", Expr.Pin "B")));
  check Alcotest.bool "not" true
    (Expr.equal (Expr.parse "!A") (Expr.Not (Expr.Pin "A")));
  check Alcotest.bool "postfix not" true
    (Expr.equal (Expr.parse "A'") (Expr.Not (Expr.Pin "A")));
  check Alcotest.bool "xor" true
    (Expr.equal (Expr.parse "A ^ B") (Expr.Xor (Expr.Pin "A", Expr.Pin "B")));
  check Alcotest.bool "const" true
    (Expr.equal (Expr.parse "0") (Expr.Const false))

let test_expr_precedence () =
  (* ! binds tighter than &, & tighter than ^, ^ tighter than | *)
  let e = Expr.parse "!A & B | C ^ D" in
  let expected =
    Expr.Or
      (Expr.And (Expr.Not (Expr.Pin "A"), Expr.Pin "B"),
       Expr.Xor (Expr.Pin "C", Expr.Pin "D"))
  in
  check Alcotest.bool "precedence" true (Expr.equal e expected)

let test_expr_parens () =
  let e = Expr.parse "!(A | B) & C" in
  let expected =
    Expr.And (Expr.Not (Expr.Or (Expr.Pin "A", Expr.Pin "B")), Expr.Pin "C")
  in
  check Alcotest.bool "parens" true (Expr.equal e expected)

let test_expr_juxtaposition () =
  (* Liberty allows "A B" for AND *)
  let e = Expr.parse "A B" in
  check Alcotest.bool "juxtaposition is and" true
    (Expr.equal e (Expr.And (Expr.Pin "A", Expr.Pin "B")))

let test_expr_errors () =
  Alcotest.check_raises "unbalanced" (Expr.Parse_error "expected ')'")
    (fun () -> ignore (Expr.parse "(A & B"));
  (try
     ignore (Expr.parse "A &");
     Alcotest.fail "expected parse error"
   with Expr.Parse_error _ -> ())

let test_expr_pins () =
  check (Alcotest.list Alcotest.string) "pins sorted unique"
    ["A"; "B"; "C"]
    (Expr.pins (Expr.parse "(A & B) | (!A ^ C)"))

let test_expr_eval () =
  let e = Expr.parse "(A & !B) | C" in
  let env a b c p = match p with
    | "A" -> a | "B" -> b | "C" -> c | _ -> raise Not_found
  in
  check Alcotest.bool "101 -> true" true (Expr.eval (env true false true) e);
  check Alcotest.bool "110 -> false" false (Expr.eval (env true true false) e);
  check Alcotest.bool "100 -> true" true (Expr.eval (env true false false) e)

(* qcheck: printing then parsing is the identity *)
let expr_gen =
  let open QCheck.Gen in
  let pin = map (fun k -> Expr.Pin (Printf.sprintf "P%d" k)) (int_bound 4) in
  fix
    (fun self depth ->
      if depth <= 0 then pin
      else
        frequency
          [ (2, pin);
            (1, map (fun e -> Expr.Not e) (self (depth - 1)));
            (2, map2 (fun a b -> Expr.And (a, b)) (self (depth - 1)) (self (depth - 1)));
            (2, map2 (fun a b -> Expr.Or (a, b)) (self (depth - 1)) (self (depth - 1)));
            (1, map2 (fun a b -> Expr.Xor (a, b)) (self (depth - 1)) (self (depth - 1))) ])
    4

let expr_arbitrary = QCheck.make ~print:Expr.to_string expr_gen

let prop_expr_roundtrip =
  QCheck.Test.make ~name:"expr print/parse roundtrip" ~count:200 expr_arbitrary
    (fun e -> Expr.equal e (Expr.parse (Expr.to_string e)))

let prop_expr_eval_stable =
  (* parsing the printed form evaluates identically on all assignments of
     up to 5 pins *)
  QCheck.Test.make ~name:"expr eval stable under roundtrip" ~count:100
    expr_arbitrary (fun e ->
      let e' = Expr.parse (Expr.to_string e) in
      List.for_all
        (fun mask ->
          let env p =
            let k = int_of_string (String.sub p 1 (String.length p - 1)) in
            (mask lsr k) land 1 = 1
          in
          Expr.eval env e = Expr.eval env e')
        (List.init 32 Fun.id))

(* --- Liberty --- *)

let default_lib = Cell_lib.Default_library.library ()

let test_liberty_roundtrip () =
  let text = Cell_lib.Library.to_liberty default_lib in
  let lib2 = Cell_lib.Library.of_liberty text in
  check Alcotest.int "cell count preserved"
    (List.length (Cell_lib.Library.cells default_lib))
    (List.length (Cell_lib.Library.cells lib2));
  List.iter
    (fun (c : Cell_lib.Cell.t) ->
      match Cell_lib.Library.find lib2 c.Cell_lib.Cell.name with
      | None -> Alcotest.failf "cell %s lost in roundtrip" c.Cell_lib.Cell.name
      | Some c2 ->
        check (Alcotest.float 1e-9) (c.Cell_lib.Cell.name ^ " area")
          c.Cell_lib.Cell.area c2.Cell_lib.Cell.area;
        check Alcotest.bool (c.Cell_lib.Cell.name ^ " kind") true
          (c.Cell_lib.Cell.kind = c2.Cell_lib.Cell.kind))
    (Cell_lib.Library.cells default_lib)

let test_liberty_errors () =
  let bad = "library (x) { cell (A) { pin (P) { direction : sideways ; } } }" in
  (try
     ignore (Cell_lib.Library.of_liberty bad);
     Alcotest.fail "expected Liberty.Error"
   with Cell_lib.Liberty.Error _ -> ());
  (try
     ignore (Cell_lib.Library.of_liberty "cell (A) {}");
     Alcotest.fail "expected library-group error"
   with Cell_lib.Liberty.Error _ -> ())

let test_liberty_comments () =
  let src = {|
library (c) { /* block comment */
  // line comment
  cell (INV) {
    area : 1.0 ;
    pin (A) { direction : input ; capacitance : 1.0 ; }
    pin (Z) { direction : output ; function : "!A" ; }
  }
}|}
  in
  let lib = Cell_lib.Library.of_liberty src in
  check Alcotest.int "one cell" 1 (List.length (Cell_lib.Library.cells lib))

(* --- Library selectors --- *)

let test_selectors () =
  let module L = Cell_lib.Library in
  let module C = Cell_lib.Cell in
  (* the smallest flip-flop by area is the pulsed-latch cell (flip-flop
     semantics, latch footprint) *)
  check Alcotest.string "ff" "PLATCH_X1" (L.flip_flop default_lib).C.name;
  check Alcotest.string "ffr" "PLATCHR_X1" (L.flip_flop_with_reset default_lib).C.name;
  check Alcotest.string "lath" "LATH_X1"
    (L.latch default_lib ~transparent:C.Active_high).C.name;
  check Alcotest.string "latl" "LATL_X1"
    (L.latch default_lib ~transparent:C.Active_low).C.name;
  check Alcotest.string "icg std" "ICG_X1"
    (L.clock_gate default_lib ~style:C.Icg_standard).C.name;
  check Alcotest.string "icg m1" "ICGP3_X1"
    (L.clock_gate default_lib ~style:C.Icg_m1_p3).C.name;
  check Alcotest.string "icg m2" "ICGNL_X1"
    (L.clock_gate default_lib ~style:C.Icg_m2_latchless).C.name;
  check Alcotest.string "inv" "INV_X1" (L.inverter default_lib).C.name;
  check Alcotest.string "xor" "XOR2_X1" (L.xor2 default_lib).C.name;
  check Alcotest.string "clkbuf" "CLKBUF_X4" (L.clock_buffer default_lib).C.name

let test_ratios () =
  (* the ratios the reproduction depends on *)
  let module L = Cell_lib.Library in
  let module C = Cell_lib.Cell in
  let ff = L.find_exn default_lib "DFF_X1" in
  let lat = L.latch default_lib ~transparent:C.Active_high in
  let area_ratio = lat.C.area /. ff.C.area in
  check Alcotest.bool "latch area between 0.4x and 0.7x FF" true
    (area_ratio > 0.4 && area_ratio < 0.7);
  let clk_cap c pin =
    match C.find_pin c pin with
    | Some p -> p.C.capacitance
    | None -> Alcotest.failf "missing pin %s" pin
  in
  let cap_ratio = clk_cap lat "E" /. clk_cap ff "CK" in
  check Alcotest.bool "latch clock-pin cap near half of FF" true
    (cap_ratio > 0.35 && cap_ratio < 0.65);
  let icg = L.clock_gate default_lib ~style:C.Icg_standard in
  let m1 = L.clock_gate default_lib ~style:C.Icg_m1_p3 in
  let m2 = L.clock_gate default_lib ~style:C.Icg_m2_latchless in
  check Alcotest.bool "M1 cheaper than standard ICG" true (m1.C.area < icg.C.area);
  check Alcotest.bool "M2 cheaper than M1" true (m2.C.area < m1.C.area)

let test_delay_model () =
  let module C = Cell_lib.Cell in
  let inv = Cell_lib.Library.inverter default_lib in
  let d0 = C.delay_through inv ~load:0.0 in
  let d10 = C.delay_through inv ~load:10.0 in
  check Alcotest.bool "delay grows with load" true (d10 > d0);
  check Alcotest.bool "min <= max" true
    (C.min_delay_through inv ~load:5.0 <= C.delay_through inv ~load:5.0)

let suite =
  [ Alcotest.test_case "expr parse basics" `Quick test_expr_parse_basic;
    Alcotest.test_case "expr precedence" `Quick test_expr_precedence;
    Alcotest.test_case "expr parentheses" `Quick test_expr_parens;
    Alcotest.test_case "expr juxtaposition" `Quick test_expr_juxtaposition;
    Alcotest.test_case "expr errors" `Quick test_expr_errors;
    Alcotest.test_case "expr pins" `Quick test_expr_pins;
    Alcotest.test_case "expr eval" `Quick test_expr_eval;
    QCheck_alcotest.to_alcotest prop_expr_roundtrip;
    QCheck_alcotest.to_alcotest prop_expr_eval_stable;
    Alcotest.test_case "liberty roundtrip" `Quick test_liberty_roundtrip;
    Alcotest.test_case "liberty errors" `Quick test_liberty_errors;
    Alcotest.test_case "liberty comments" `Quick test_liberty_comments;
    Alcotest.test_case "library selectors" `Quick test_selectors;
    Alcotest.test_case "library ratios" `Quick test_ratios;
    Alcotest.test_case "delay model" `Quick test_delay_model ]

(* Tests for the netlist IR: builder, traversal, FF graph, clock tracing,
   validation and the gate-tree constructors. *)

let check = Alcotest.check

let lib = Cell_lib.Default_library.library ()

module B = Netlist.Builder
module D = Netlist.Design

(* A small reference design used by several tests:
   clk -> [icg en] -> r0 ; r0 -> inv -> r1 ; r1,a -> nand -> y *)
let sample () =
  let b = B.create ~name:"sample" ~library:lib in
  let clk = B.add_input ~clock:true b "clk" in
  let en = B.add_input b "en" in
  let a = B.add_input b "a" in
  let d0 = B.add_input b "d0" in
  let gck = B.fresh_net b "gck" in
  ignore (B.add_cell b "icg0" "ICG_X1" [("CK", clk); ("EN", en); ("GCK", gck)]);
  let q0 = B.fresh_net b "q0" in
  ignore (B.add_cell b "r0" "DFF_X1" [("CK", gck); ("D", d0); ("Q", q0)]);
  let n1 = B.fresh_net b "n1" in
  ignore (B.add_cell b "inv" "INV_X1" [("A", q0); ("ZN", n1)]);
  let q1 = B.fresh_net b "q1" in
  ignore (B.add_cell b "r1" "DFF_X1" [("CK", clk); ("D", n1); ("Q", q1)]);
  let y = B.fresh_net b "y" in
  ignore (B.add_cell b "g" "NAND2_X1" [("A1", q1); ("A2", a); ("ZN", y)]);
  B.add_output b "y" y;
  B.freeze b

let test_builder_basics () =
  let d = sample () in
  check Alcotest.int "insts" 5 (D.num_insts d);
  check Alcotest.int "sequential" 2 (List.length (D.sequential_insts d));
  check Alcotest.int "clock gates" 1 (List.length (D.clock_gate_insts d));
  let r0 = Option.get (D.find_inst d "r0") in
  check Alcotest.string "q net name" "q0" (D.net_name d (Option.get (D.q_net_of d r0)));
  check Alcotest.string "d net name" "d0" (D.net_name d (Option.get (D.data_net_of d r0)))

let test_multiply_driven_rejected () =
  let b = B.create ~name:"bad" ~library:lib in
  let a = B.add_input b "a" in
  let n = B.fresh_net b "n" in
  ignore (B.add_cell b "i1" "INV_X1" [("A", a); ("ZN", n)]);
  ignore (B.add_cell b "i2" "INV_X1" [("A", a); ("ZN", n)]);
  (try
     ignore (B.freeze b);
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ())

let test_unknown_pin_rejected () =
  let b = B.create ~name:"bad" ~library:lib in
  let a = B.add_input b "a" in
  (try
     ignore (B.add_cell b "i1" "INV_X1" [("NOPE", a)]);
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ())

let test_fresh_net_uniqueness () =
  let b = B.create ~name:"n" ~library:lib in
  let n1 = B.fresh_net b "x" in
  let n2 = B.fresh_net b "x" in
  check Alcotest.bool "distinct ids" true (n1 <> n2)

let test_const_sharing () =
  let b = B.create ~name:"c" ~library:lib in
  check Alcotest.int "tie1 shared" (B.const b true) (B.const b true);
  check Alcotest.bool "tie0 distinct from tie1" true
    (B.const b false <> B.const b true)

(* --- Traverse --- *)

let test_topo_order () =
  let d = sample () in
  let order = Netlist.Traverse.comb_topo_exn d in
  (* inv must come before g is irrelevant (independent), but both comb
     cells and only those are in the order *)
  check Alcotest.int "comb cells ordered" 2 (List.length order)

let test_comb_cycle_detection () =
  let b = B.create ~name:"cyc" ~library:lib in
  let a = B.add_input b "a" in
  let n1 = B.fresh_net b "n1" in
  let n2 = B.fresh_net b "n2" in
  ignore (B.add_cell b "g1" "NAND2_X1" [("A1", a); ("A2", n2); ("ZN", n1)]);
  ignore (B.add_cell b "g2" "INV_X1" [("A", n1); ("ZN", n2)]);
  B.add_output b "y" n1;
  let d = B.freeze b in
  (match Netlist.Traverse.comb_topo d with
   | Error (_ :: _) -> ()
   | Error [] | Ok _ -> Alcotest.fail "cycle not detected");
  (match Netlist.Check.validate d with
   | Error _ -> ()
   | Ok () -> Alcotest.fail "check should reject combinational cycles")

let test_net_levels () =
  let d = sample () in
  let levels = Netlist.Traverse.net_levels d in
  let r1 = Option.get (D.find_inst d "r1") in
  let n1 = Option.get (D.data_net_of d r1) in
  check Alcotest.int "inv output at level 1" 1 levels.(n1)

(* --- Ff_graph --- *)

let test_ff_graph () =
  let d = sample () in
  let g = Netlist.Ff_graph.build d in
  check Alcotest.int "two nodes" 2 (Netlist.Ff_graph.size g);
  check Alcotest.int "no self loops" 0 (Netlist.Ff_graph.self_loop_count g);
  (* r0 -> r1 through the inverter *)
  let pos_r0 = Hashtbl.find g.Netlist.Ff_graph.position (Option.get (D.find_inst d "r0")) in
  let pos_r1 = Hashtbl.find g.Netlist.Ff_graph.position (Option.get (D.find_inst d "r1")) in
  check (Alcotest.list Alcotest.int) "r0 fanout" [pos_r1]
    g.Netlist.Ff_graph.fanout.(pos_r0);
  check (Alcotest.list Alcotest.int) "r1 fanout empty" []
    g.Netlist.Ff_graph.fanout.(pos_r1)

let test_ff_graph_self_loop () =
  let b = B.create ~name:"loop" ~library:lib in
  let clk = B.add_input ~clock:true b "clk" in
  let q = B.fresh_net b "q" in
  let nq = B.fresh_net b "nq" in
  ignore (B.add_cell b "inv" "INV_X1" [("A", q); ("ZN", nq)]);
  ignore (B.add_cell b "r" "DFF_X1" [("CK", clk); ("D", nq); ("Q", q)]);
  B.add_output b "y" q;
  let d = B.freeze b in
  let g = Netlist.Ff_graph.build d in
  check Alcotest.int "self loop found" 1 (Netlist.Ff_graph.self_loop_count g)

let test_pi_fanout () =
  let d = sample () in
  let g = Netlist.Ff_graph.build d in
  (* d0 reaches r0; en reaches nothing through data; a reaches nothing *)
  let idx name =
    let rec go k =
      if k >= Array.length g.Netlist.Ff_graph.pi_names then
        Alcotest.failf "input %s not tracked" name
      else if String.equal g.Netlist.Ff_graph.pi_names.(k) name then k
      else go (k + 1)
    in
    go 0
  in
  check Alcotest.int "d0 reaches one ff" 1
    (List.length g.Netlist.Ff_graph.pi_fanout.(idx "d0"));
  check Alcotest.int "a reaches none" 0
    (List.length g.Netlist.Ff_graph.pi_fanout.(idx "a"))

(* --- Clocking --- *)

let test_clock_trace () =
  let d = sample () in
  let r0 = Option.get (D.find_inst d "r0") in
  let cn = Option.get (D.clock_net_of d r0) in
  (match Netlist.Clocking.trace_to_root d cn with
   | Some { Netlist.Clocking.root_port; elements } ->
     check Alcotest.string "root" "clk" root_port;
     check Alcotest.int "one icg on path" 1
       (List.length
          (List.filter
             (function
               | Netlist.Clocking.Through_icg _ -> true
               | Netlist.Clocking.Through_buffer _ -> false)
             elements))
   | None -> Alcotest.fail "no clock root found");
  let sinks = Netlist.Clocking.sinks_of_port d ~port:"clk" in
  check Alcotest.int "both registers reachable from clk" 2 (List.length sinks)

let test_gating_icg () =
  let d = sample () in
  let r0 = Option.get (D.find_inst d "r0") in
  let r1 = Option.get (D.find_inst d "r1") in
  (match Netlist.Clocking.gating_icg d (Option.get (D.clock_net_of d r0)) with
   | Some icg -> check Alcotest.string "r0 gated by icg0" "icg0" (D.inst_name d icg)
   | None -> Alcotest.fail "r0 should be gated");
  check Alcotest.bool "r1 ungated" true
    (Netlist.Clocking.gating_icg d (Option.get (D.clock_net_of d r1)) = None)

(* --- Check --- *)

let test_check_clean () =
  match Netlist.Check.validate (sample ()) with
  | Ok () -> ()
  | Error es -> Alcotest.failf "unexpected errors: %s" (String.concat "; " es)

let test_check_undriven () =
  let b = B.create ~name:"und" ~library:lib in
  let n = B.fresh_net b "floating" in
  ignore (B.add_cell b "i" "INV_X1" [("A", n); ("ZN", B.fresh_net b "o")]);
  B.add_output b "y" n;
  let d = B.freeze b in
  (match Netlist.Check.validate d with
   | Error _ -> ()
   | Ok () -> Alcotest.fail "undriven nets must be errors")

(* --- Gates --- *)

(* Evaluate a single-output design's output for given input values by
   direct simulation (combinational only). *)
let eval_design d inputs =
  let clocks = Sim.Clock_spec.single ~period:1.0 ~port:"__noclk" in
  let engine = Sim.Engine.create d ~clocks in
  let out = Sim.Engine.run_cycle engine inputs in
  List.assoc "y" out

let test_gates_wide_ops () =
  List.iter
    (fun (op, arity, f) ->
      let b = B.create ~name:"g" ~library:lib in
      let ins =
        List.init arity (fun k -> (Printf.sprintf "i%d" k, B.add_input b (Printf.sprintf "i%d" k)))
      in
      let out = B.fresh_net b "y" in
      Netlist.Gates.emit b op (List.map snd ins) ~out ~prefix:"t";
      B.add_output b "y" out;
      let d = B.freeze b in
      (* try all input combinations *)
      for mask = 0 to (1 lsl arity) - 1 do
        let vals =
          List.mapi (fun k (name, _) -> (name, Sim.Logic.of_bool ((mask lsr k) land 1 = 1)))
            ins
        in
        let bits = List.init arity (fun k -> (mask lsr k) land 1 = 1) in
        let got = eval_design d vals in
        let expect = Sim.Logic.of_bool (f bits) in
        if not (Sim.Logic.equal got expect) then
          Alcotest.failf "arity %d mask %d: got %c want %c" arity mask
            (Sim.Logic.to_char got) (Sim.Logic.to_char expect)
      done)
    [ (Netlist.Gates.And, 7, fun bs -> List.for_all Fun.id bs);
      (Netlist.Gates.Or, 6, fun bs -> List.exists Fun.id bs);
      (Netlist.Gates.Nand, 5, fun bs -> not (List.for_all Fun.id bs));
      (Netlist.Gates.Nor, 5, fun bs -> not (List.exists Fun.id bs));
      (Netlist.Gates.Xor, 6, fun bs -> List.fold_left ( <> ) false bs);
      (Netlist.Gates.Xnor, 4, fun bs -> not (List.fold_left ( <> ) false bs)) ]

let test_mux2 () =
  let b = B.create ~name:"m" ~library:lib in
  let a = B.add_input b "a" in
  let c = B.add_input b "c" in
  let s = B.add_input b "s" in
  let out = Netlist.Gates.mux2 b ~sel:s ~a ~b_in:c ~prefix:"m" in
  B.add_output b "y" out;
  let d = B.freeze b in
  List.iter
    (fun (sv, av, cv, expect) ->
      let got =
        eval_design d
          [("a", Sim.Logic.of_bool av); ("c", Sim.Logic.of_bool cv);
           ("s", Sim.Logic.of_bool sv)]
      in
      check Alcotest.char
        (Printf.sprintf "mux s=%b" sv)
        (Sim.Logic.to_char (Sim.Logic.of_bool expect))
        (Sim.Logic.to_char got))
    [ (false, true, false, true); (false, false, true, false);
      (true, true, false, false); (true, false, true, true) ]

(* --- Rewrite --- *)

let test_rewrite_identity () =
  let d = sample () in
  let rw = Netlist.Rewrite.start d in
  D.fold_insts (fun i () -> Netlist.Rewrite.copy_inst rw i) d ();
  let d2 = Netlist.Rewrite.finish rw in
  check Alcotest.int "same inst count" (D.num_insts d) (D.num_insts d2);
  let s1 = Netlist.Stats.compute d and s2 = Netlist.Stats.compute d2 in
  check (Alcotest.float 1e-9) "same area" s1.Netlist.Stats.total_area
    s2.Netlist.Stats.total_area;
  (* behaviourally identical *)
  let stim = Sim.Stimulus.random ~seed:5 ~cycles:40 ~toggle_probability:0.4
      (Sim.Stimulus.inputs_of d) in
  let clocks = Sim.Clock_spec.single ~period:1.0 ~port:"clk" in
  (match Sim.Equivalence.check ~reference:d ~dut:d2 ~reference_clocks:clocks
           ~dut_clocks:clocks ~stimulus:stim () with
   | Sim.Equivalence.Equivalent { shift } -> check Alcotest.int "no shift" 0 shift
   | Sim.Equivalence.Mismatch m ->
     Alcotest.failf "rewrite changed behaviour: %s"
       (Format.asprintf "%a" Sim.Equivalence.pp_mismatch m))

let test_stats () =
  let s = Netlist.Stats.compute (sample ()) in
  check Alcotest.int "ffs" 2 s.Netlist.Stats.flip_flops;
  check Alcotest.int "latches" 0 s.Netlist.Stats.latches;
  check Alcotest.int "icgs" 1 s.Netlist.Stats.clock_gates;
  check Alcotest.int "comb" 2 s.Netlist.Stats.comb_cells;
  check Alcotest.bool "area positive" true (s.Netlist.Stats.total_area > 0.0)

let test_dot_export () =
  let dot = Netlist.Dot.of_design (sample ()) in
  check Alcotest.bool "mentions icg" true
    (Astring.String.is_infix ~affix:"icg0" dot);
  check Alcotest.bool "digraph" true
    (Astring.String.is_prefix ~affix:"digraph" dot)

let suite =
  [ Alcotest.test_case "builder basics" `Quick test_builder_basics;
    Alcotest.test_case "multiply driven rejected" `Quick test_multiply_driven_rejected;
    Alcotest.test_case "unknown pin rejected" `Quick test_unknown_pin_rejected;
    Alcotest.test_case "fresh nets unique" `Quick test_fresh_net_uniqueness;
    Alcotest.test_case "const sharing" `Quick test_const_sharing;
    Alcotest.test_case "topological order" `Quick test_topo_order;
    Alcotest.test_case "comb cycle detection" `Quick test_comb_cycle_detection;
    Alcotest.test_case "net levels" `Quick test_net_levels;
    Alcotest.test_case "ff graph edges" `Quick test_ff_graph;
    Alcotest.test_case "ff graph self loop" `Quick test_ff_graph_self_loop;
    Alcotest.test_case "pi fanout" `Quick test_pi_fanout;
    Alcotest.test_case "clock trace" `Quick test_clock_trace;
    Alcotest.test_case "gating icg" `Quick test_gating_icg;
    Alcotest.test_case "check clean design" `Quick test_check_clean;
    Alcotest.test_case "check undriven" `Quick test_check_undriven;
    Alcotest.test_case "gate trees all ops" `Quick test_gates_wide_ops;
    Alcotest.test_case "mux2" `Quick test_mux2;
    Alcotest.test_case "rewrite identity" `Quick test_rewrite_identity;
    Alcotest.test_case "stats" `Quick test_stats;
    Alcotest.test_case "dot export" `Quick test_dot_export ]

(* --- Optimize --- *)

let test_optimize_folds_and_sweeps () =
  let b = B.create ~name:"opt" ~library:lib in
  let clk = B.add_input ~clock:true b "clk" in
  let a = B.add_input b "a" in
  let zero = B.const b false in
  (* a & 0 = 0 feeds an OR that therefore passes [a] through *)
  let t1 = B.fresh_net b "t1" in
  ignore (B.add_cell b "g1" "AND2_X1" [("A1", a); ("A2", zero); ("Z", t1)]);
  let t2 = B.fresh_net b "t2" in
  ignore (B.add_cell b "g2" "OR2_X1" [("A1", t1); ("A2", a); ("Z", t2)]);
  (* a buffer in the data path *)
  let t3 = B.fresh_net b "t3" in
  ignore (B.add_cell b "g3" "BUF_X2" [("A", t2); ("Z", t3)]);
  let q = B.fresh_net b "q" in
  ignore (B.add_cell b "r" "DFF_X1" [("CK", clk); ("D", t3); ("Q", q)]);
  (* dead logic: an inverter nobody reads *)
  ignore (B.add_cell b "dead" "INV_X1" [("A", a); ("ZN", B.fresh_net b "unused")]);
  B.add_output b "y" q;
  let d = B.freeze b in
  let d', stats = Netlist.Optimize.run d in
  check Alcotest.bool "folded" true (stats.Netlist.Optimize.folded >= 1);
  check Alcotest.bool "collapsed buffer" true (stats.Netlist.Optimize.collapsed >= 1);
  check Alcotest.bool "swept dead" true (stats.Netlist.Optimize.swept >= 1);
  let s = Netlist.Stats.compute d' in
  check Alcotest.bool "fewer comb cells" true
    (s.Netlist.Stats.comb_cells < (Netlist.Stats.compute d).Netlist.Stats.comb_cells);
  (match Netlist.Check.validate d' with
   | Ok () -> ()
   | Error es -> Alcotest.failf "optimized invalid: %s" (String.concat ";" es));
  let stim = Sim.Stimulus.random ~seed:9 ~cycles:60 ~toggle_probability:0.5 ["a"] in
  let clocks = Sim.Clock_spec.single ~period:1.0 ~port:"clk" in
  match Sim.Equivalence.check ~reference:d ~dut:d' ~reference_clocks:clocks
          ~dut_clocks:clocks ~stimulus:stim () with
  | Sim.Equivalence.Equivalent { shift } -> check Alcotest.int "no shift" 0 shift
  | Sim.Equivalence.Mismatch m ->
    Alcotest.failf "optimize changed behaviour: %s"
      (Format.asprintf "%a" Sim.Equivalence.pp_mismatch m)

let test_optimize_keeps_clock_buffers () =
  let b = B.create ~name:"ock" ~library:lib in
  let clk = B.add_input ~clock:true b "clk" in
  let cb = B.fresh_net b "cb" in
  ignore (B.add_cell b "cbuf" "CLKBUF_X4" [("A", clk); ("Z", cb)]);
  let a = B.add_input b "a" in
  let q = B.fresh_net b "q" in
  ignore (B.add_cell b "r" "DFF_X1" [("CK", cb); ("D", a); ("Q", q)]);
  B.add_output b "y" q;
  let d = B.freeze b in
  let d', _ = Netlist.Optimize.run d in
  check Alcotest.bool "clock buffer preserved" true
    (Netlist.Design.find_inst d' "cbuf" <> None)

let prop_optimize_equivalent =
  QCheck.Test.make ~name:"optimize preserves streams on generated circuits"
    ~count:8 QCheck.(int_range 0 500)
    (fun seed ->
      let spec = { Circuits.Generator.name = "oq"; seed; inputs = 5; outputs = 4;
                   layers = [|6; 5|]; fanin = 3; cone_depth = 3;
                   self_loop_fraction = 0.2; cross_feedback = 0.2; reuse = 0.3;
                   gated_fraction = 0.4; bank_size = 3; po_cones = 3;
                   frequency_mhz = 1000.0 }
      in
      let d = Circuits.Generator.synthesize spec in
      let d', _ = Netlist.Optimize.run d in
      let stim = Sim.Stimulus.random ~seed:(seed + 5) ~cycles:60
          ~toggle_probability:0.4 (Sim.Stimulus.inputs_of d) in
      let clocks = Sim.Clock_spec.single ~period:1.0 ~port:"clk" in
      match Sim.Equivalence.check ~reference:d ~dut:d' ~reference_clocks:clocks
              ~dut_clocks:clocks ~stimulus:stim () with
      | Sim.Equivalence.Equivalent _ -> true
      | Sim.Equivalence.Mismatch _ -> false)

let suite =
  suite
  @ [ Alcotest.test_case "optimize folds and sweeps" `Quick test_optimize_folds_and_sweeps;
      Alcotest.test_case "optimize keeps clock buffers" `Quick test_optimize_keeps_clock_buffers;
      QCheck_alcotest.to_alcotest prop_optimize_equivalent ]

(* Fuzz/robustness tests: malformed input must raise the module's typed
   error (never a crash or an unrelated exception), and core pipelines
   behave deterministically. *)

let check = Alcotest.check

let lib = Cell_lib.Default_library.library ()

(* printable-ish random strings *)
let garbage_gen =
  QCheck.Gen.(string_size ~gen:(map Char.chr (int_range 32 126)) (int_range 0 120))

let prop_bench_parser_total =
  QCheck.Test.make ~name:"bench parser: error or parse, never crash" ~count:300
    (QCheck.make garbage_gen)
    (fun src ->
      match Netlist_io.Bench_format.parse ~name:"f" ~library:lib src with
      | _ -> true
      | exception Netlist_io.Bench_format.Error _ -> true
      | exception Invalid_argument _ -> true  (* freeze-level rejection *)
      | exception _ -> false)

let prop_verilog_parser_total =
  QCheck.Test.make ~name:"verilog parser: error or parse, never crash"
    ~count:300 (QCheck.make garbage_gen)
    (fun src ->
      match Netlist_io.Verilog.parse ~library:lib src with
      | _ -> true
      | exception Netlist_io.Verilog.Error _ -> true
      | exception Invalid_argument _ -> true
      | exception _ -> false)

let prop_liberty_parser_total =
  QCheck.Test.make ~name:"liberty parser: error or parse, never crash"
    ~count:300 (QCheck.make garbage_gen)
    (fun src ->
      match Cell_lib.Liberty.parse src with
      | _ -> true
      | exception Cell_lib.Liberty.Error _ -> true
      | exception Cell_lib.Expr.Parse_error _ -> true
      | exception _ -> false)

let prop_expr_parser_total =
  QCheck.Test.make ~name:"expr parser: error or parse, never crash" ~count:300
    (QCheck.make garbage_gen)
    (fun src ->
      match Cell_lib.Expr.parse src with
      | _ -> true
      | exception Cell_lib.Expr.Parse_error _ -> true
      | exception _ -> false)

(* structured-ish fuzz: mutate a valid bench source *)
let mutate_gen =
  let base = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ns = DFF(n)\nn = NAND(a, b)\ny = NOT(s)\n" in
  QCheck.Gen.(
    map
      (fun (pos, c) ->
        let pos = pos mod String.length base in
        String.mapi (fun i old -> if i = pos then c else old) base)
      (pair (int_bound 1000) (map Char.chr (int_range 32 126))))

let prop_bench_mutations_total =
  QCheck.Test.make ~name:"bench parser: single-char mutations survive"
    ~count:400 (QCheck.make mutate_gen)
    (fun src ->
      match Netlist_io.Bench_format.parse ~name:"m" ~library:lib src with
      | _ -> true
      | exception Netlist_io.Bench_format.Error _ -> true
      | exception Invalid_argument _ -> true
      | exception _ -> false)

(* determinism: two engines over the same design and stream agree *)
let prop_engine_deterministic =
  QCheck.Test.make ~name:"engine is deterministic" ~count:20
    QCheck.(int_range 0 1000)
    (fun seed ->
      let spec = { Circuits.Generator.name = "det"; seed; inputs = 5; outputs = 4;
                   layers = [|5; 5|]; fanin = 3; cone_depth = 3;
                   self_loop_fraction = 0.2; cross_feedback = 0.2; reuse = 0.2;
                   gated_fraction = 0.3; bank_size = 3; po_cones = 3;
                   frequency_mhz = 1000.0 }
      in
      let d = Circuits.Generator.synthesize spec in
      let clocks = Sim.Clock_spec.single ~period:1.0 ~port:"clk" in
      let stim = Sim.Stimulus.random ~seed:(seed + 1) ~cycles:30
          ~toggle_probability:0.5 (Sim.Stimulus.inputs_of d) in
      let run () =
        Sim.Engine.run_stream (Sim.Engine.create d ~clocks) stim
      in
      run () = run ())

(* hold fix gives up gracefully on an unfixable margin *)
let test_hold_fix_unfixable () =
  let b = Netlist.Builder.create ~name:"uh" ~library:lib in
  let clk = Netlist.Builder.add_input ~clock:true b "clk" in
  let a = Netlist.Builder.add_input b "a" in
  let q1 = Netlist.Builder.fresh_net b "q1" in
  ignore (Netlist.Builder.add_cell b "r1" "DFF_X1" [("CK", clk); ("D", a); ("Q", q1)]);
  let q2 = Netlist.Builder.fresh_net b "q2" in
  ignore (Netlist.Builder.add_cell b "r2" "DFF_X1" [("CK", clk); ("D", q1); ("Q", q2)]);
  Netlist.Builder.add_output b "y" q2;
  let d = Netlist.Builder.freeze b in
  let clocks = Sim.Clock_spec.single ~period:1.0 ~port:"clk" in
  (* an absurd margin cannot be met within the iteration cap *)
  let _, stats = Sta.Hold_fix.run ~skew:0.0 ~hold_margin:5.0 ~max_iterations:2
      d ~clocks in
  check Alcotest.bool "reports not fixed" false stats.Sta.Hold_fix.fixed;
  check Alcotest.bool "still added padding" true (stats.Sta.Hold_fix.buffers_added > 0)

(* clock tracing crosses explicit clock buffers *)
let test_clock_trace_through_buffer () =
  let b = Netlist.Builder.create ~name:"cb" ~library:lib in
  let clk = Netlist.Builder.add_input ~clock:true b "clk" in
  let buf_out = Netlist.Builder.fresh_net b "clkb" in
  ignore (Netlist.Builder.add_cell b "cb0" "CLKBUF_X4" [("A", clk); ("Z", buf_out)]);
  let a = Netlist.Builder.add_input b "a" in
  let q = Netlist.Builder.fresh_net b "q" in
  ignore (Netlist.Builder.add_cell b "r" "DFF_X1" [("CK", buf_out); ("D", a); ("Q", q)]);
  Netlist.Builder.add_output b "y" q;
  let d = Netlist.Builder.freeze b in
  (match Netlist.Check.validate d with
   | Ok () -> ()
   | Error es -> Alcotest.failf "buffered clock rejected: %s" (String.concat ";" es));
  let r = Option.get (Netlist.Design.find_inst d "r") in
  match Netlist.Clocking.trace_to_root d (Option.get (Netlist.Design.clock_net_of d r)) with
  | Some { Netlist.Clocking.root_port; elements } ->
    check Alcotest.string "root through buffer" "clk" root_port;
    check Alcotest.int "one buffer element" 1 (List.length elements)
  | None -> Alcotest.fail "trace failed through clock buffer"

(* liberty semantic errors *)
let test_liberty_conflicting_groups () =
  let src = {|
library (x) {
  cell (BAD) {
    ff (IQ) { clocked_on : "CK" ; next_state : "D" ; }
    latch (IQ) { enable : "E" ; data_in : "D" ; }
    pin (CK) { direction : input ; capacitance : 1.0 ; }
  }
}|}
  in
  (try
     ignore (Cell_lib.Liberty.parse src);
     Alcotest.fail "conflicting ff+latch groups must be rejected"
   with Cell_lib.Liberty.Error _ -> ());
  let bad_num = "library (x) { cell (A) { area : banana ; } }" in
  (try
     ignore (Cell_lib.Liberty.parse bad_num);
     Alcotest.fail "non-numeric area must be rejected"
   with Cell_lib.Liberty.Error _ -> ())

let suite =
  [ QCheck_alcotest.to_alcotest prop_bench_parser_total;
    QCheck_alcotest.to_alcotest prop_verilog_parser_total;
    QCheck_alcotest.to_alcotest prop_liberty_parser_total;
    QCheck_alcotest.to_alcotest prop_expr_parser_total;
    QCheck_alcotest.to_alcotest prop_bench_mutations_total;
    QCheck_alcotest.to_alcotest prop_engine_deterministic;
    Alcotest.test_case "hold fix unfixable" `Quick test_hold_fix_unfixable;
    Alcotest.test_case "clock trace through buffer" `Quick test_clock_trace_through_buffer;
    Alcotest.test_case "liberty conflicting groups" `Quick test_liberty_conflicting_groups ]

(* Tests for the dense two-phase simplex. *)

let check = Alcotest.check

module P = Lp.Problem
module S = Lp.Simplex

let solve_opt p =
  match S.solve p with
  | S.Optimal { x; objective } -> (x, objective)
  | S.Infeasible -> Alcotest.fail "unexpected infeasible"
  | S.Unbounded -> Alcotest.fail "unexpected unbounded"

let test_max_basic () =
  (* max 3x + 2y st x + y <= 4; x + 3y <= 6 -> 12 at (4, 0) *)
  let p = P.make ~num_vars:2 ~sense:P.Maximize ~objective:[(0, 3.0); (1, 2.0)]
      [ P.constr [(0, 1.0); (1, 1.0)] P.Le 4.0;
        P.constr [(0, 1.0); (1, 3.0)] P.Le 6.0 ]
  in
  let x, obj = solve_opt p in
  check (Alcotest.float 1e-6) "objective" 12.0 obj;
  check (Alcotest.float 1e-6) "x" 4.0 x.(0)

let test_min_with_eq () =
  (* min x + y st x + y >= 3; x - y = 1 -> 3 at (2, 1) *)
  let p = P.make ~num_vars:2 ~sense:P.Minimize ~objective:[(0, 1.0); (1, 1.0)]
      [ P.constr [(0, 1.0); (1, 1.0)] P.Ge 3.0;
        P.constr [(0, 1.0); (1, -1.0)] P.Eq 1.0 ]
  in
  let x, obj = solve_opt p in
  check (Alcotest.float 1e-6) "objective" 3.0 obj;
  check (Alcotest.float 1e-6) "x" 2.0 x.(0);
  check (Alcotest.float 1e-6) "y" 1.0 x.(1)

let test_negative_rhs () =
  (* constraints with negative right-hand sides are normalised correctly:
     min x st -x <= -2  (i.e. x >= 2) *)
  let p = P.make ~num_vars:1 ~sense:P.Minimize ~objective:[(0, 1.0)]
      [ P.constr [(0, -1.0)] P.Le (-2.0) ]
  in
  let x, obj = solve_opt p in
  check (Alcotest.float 1e-6) "objective" 2.0 obj;
  check (Alcotest.float 1e-6) "x" 2.0 x.(0)

let test_infeasible () =
  let p = P.make ~num_vars:1 ~sense:P.Maximize ~objective:[(0, 1.0)]
      [ P.constr [(0, 1.0)] P.Le 1.0; P.constr [(0, 1.0)] P.Ge 2.0 ]
  in
  match S.solve p with
  | S.Infeasible -> ()
  | S.Optimal _ | S.Unbounded -> Alcotest.fail "should be infeasible"

let test_unbounded () =
  let p = P.make ~num_vars:1 ~sense:P.Maximize ~objective:[(0, 1.0)] [] in
  match S.solve p with
  | S.Unbounded -> ()
  | S.Optimal _ | S.Infeasible -> Alcotest.fail "should be unbounded"

let test_degenerate () =
  (* degenerate vertex should not cycle (Bland's rule) *)
  let p = P.make ~num_vars:2 ~sense:P.Maximize ~objective:[(0, 1.0); (1, 1.0)]
      [ P.constr [(0, 1.0)] P.Le 1.0;
        P.constr [(1, 1.0)] P.Le 1.0;
        P.constr [(0, 1.0); (1, 1.0)] P.Le 2.0;
        P.constr [(0, 1.0); (1, 1.0)] P.Ge 2.0 ]
  in
  let _, obj = solve_opt p in
  check (Alcotest.float 1e-6) "objective" 2.0 obj

(* random LP generator for property tests *)
let random_problem rand =
  let open QCheck.Gen in
  let n = 1 + int_bound 4 rand in
  let m = 1 + int_bound 5 rand in
  let coeff _ = float_range (-3.0) 3.0 rand in
  let constraints =
    List.init m (fun _ ->
        let coeffs = List.init n (fun j -> (j, coeff ())) in
        (* keep Le with non-negative rhs so x = 0 is feasible and the
           optimum exists when the objective rewards staying bounded *)
        P.constr coeffs P.Le (Float.abs (coeff ())))
  in
  let objective = List.init n (fun j -> (j, coeff ())) in
  P.make ~num_vars:n ~sense:P.Minimize ~objective constraints

let prop_solution_feasible =
  QCheck.Test.make ~name:"simplex solutions are feasible" ~count:200
    (QCheck.make random_problem)
    (fun p ->
      match S.solve p with
      | S.Optimal { x; _ } -> P.feasible p x
      | S.Infeasible -> false  (* x = 0 is always feasible here *)
      | S.Unbounded -> true)

let prop_optimal_beats_random_points =
  QCheck.Test.make ~name:"simplex optimum beats sampled feasible points"
    ~count:100 (QCheck.make random_problem)
    (fun p ->
      match S.solve p with
      | S.Unbounded -> true
      | S.Infeasible -> false
      | S.Optimal { objective; _ } ->
        (* sample random feasible points (scalings of 0 and small grids) *)
        let n = p.P.num_vars in
        let candidates =
          Array.to_list
            (Array.init 50 (fun k ->
                 Array.init n (fun j ->
                     float_of_int ((k * 7 + j * 13) mod 5) /. 4.0)))
        in
        List.for_all
          (fun x ->
            (not (P.feasible p x)) || P.objective_value p x >= objective -. 1e-6)
          (Array.make n 0.0 :: candidates))

let suite =
  [ Alcotest.test_case "maximize basic" `Quick test_max_basic;
    Alcotest.test_case "minimize with equality" `Quick test_min_with_eq;
    Alcotest.test_case "negative rhs normalisation" `Quick test_negative_rhs;
    Alcotest.test_case "infeasible detected" `Quick test_infeasible;
    Alcotest.test_case "unbounded detected" `Quick test_unbounded;
    Alcotest.test_case "degenerate vertex" `Quick test_degenerate;
    QCheck_alcotest.to_alcotest prop_solution_feasible;
    QCheck_alcotest.to_alcotest prop_optimal_beats_random_points ]

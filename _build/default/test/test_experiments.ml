(* Smoke tests for the experiment harness shared by bench/main.exe. *)

let check = Alcotest.check

let test_fig1_table () =
  let t = Experiments.Tables.fig1 ~widths:[2] ~stages:[2; 3; 4] () in
  let rendered = Report.Table.render t in
  check Alcotest.bool "no failures flagged" false
    (Astring.String.is_infix ~affix:"NO" rendered);
  check Alcotest.bool "rows present" true
    (Astring.String.is_infix ~affix:"w2 x s3" rendered)

let test_fig2_table () =
  let t = Experiments.Tables.fig2 () in
  let rendered = Report.Table.render t in
  check Alcotest.bool "both styles shown" true
    (Astring.String.is_infix ~affix:"enabled clock" rendered
     && Astring.String.is_infix ~affix:"gated clock" rendered)

let test_fig3_table () =
  let t = Experiments.Tables.fig3 () in
  let rendered = Report.Table.render t in
  check Alcotest.bool "trace rows" true
    (Astring.String.is_infix ~affix:"gck2" rendered)

let test_runner_small_bench () =
  match Circuits.Suite.find "s1196" with
  | None -> Alcotest.fail "s1196 missing"
  | Some b ->
    let r = Experiments.Runner.run ~cycles:96 b in
    check Alcotest.bool "3P register saving positive" true
      (r.Experiments.Runner.threep.Experiments.Runner.regs
       < 2 * r.Experiments.Runner.ff.Experiments.Runner.regs);
    check Alcotest.bool "M-S doubles registers" true
      (r.Experiments.Runner.ms.Experiments.Runner.regs
       = 2 * r.Experiments.Runner.ff.Experiments.Runner.regs);
    check Alcotest.bool "powers positive" true
      (Power.Estimate.total r.Experiments.Runner.ff.Experiments.Runner.power > 0.0
       && Power.Estimate.total r.Experiments.Runner.threep.Experiments.Runner.power > 0.0);
    let t1 = Experiments.Tables.table1 [r] in
    let t2 = Experiments.Tables.table2 [r] in
    check Alcotest.int "two table-1 views" 2 (List.length t1);
    check Alcotest.int "one table-2 view" 1 (List.length t2)

let test_report_table_layout () =
  let t = Report.Table.create ~title:"T" [("a", Report.Table.Left); ("b", Report.Table.Right)] in
  Report.Table.add_row t ["x"; "1"];
  Report.Table.add_rule t;
  Report.Table.add_row t ["longer"; "22"];
  let s = Report.Table.render t in
  check Alcotest.bool "contains rows" true
    (Astring.String.is_infix ~affix:"longer" s);
  check Alcotest.string "pct" "25.0" (Report.Table.pct ~ref_:4.0 3.0)

let suite =
  [ Alcotest.test_case "fig1 table" `Quick test_fig1_table;
    Alcotest.test_case "fig2 table" `Slow test_fig2_table;
    Alcotest.test_case "fig3 table" `Quick test_fig3_table;
    Alcotest.test_case "runner on s1196" `Slow test_runner_small_bench;
    Alcotest.test_case "report table layout" `Quick test_report_table_layout ]

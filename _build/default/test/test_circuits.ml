(* Tests for the benchmark generators and the suite definition. *)

let check = Alcotest.check

let test_generator_valid_and_sized () =
  List.iter
    (fun seed ->
      let spec = { Circuits.Generator.name = Printf.sprintf "v%d" seed;
                   seed; inputs = 7; outputs = 5; layers = [|9; 4; 7|];
                   fanin = 3; cone_depth = 4; self_loop_fraction = 0.3;
                   cross_feedback = 0.3; reuse = 0.3; gated_fraction = 0.5;
                   bank_size = 4; po_cones = 5; frequency_mhz = 500.0 }
      in
      let d = Circuits.Generator.synthesize spec in
      (match Netlist.Check.validate d with
       | Ok () -> ()
       | Error es -> Alcotest.failf "seed %d invalid: %s" seed (String.concat ";" es));
      let stats = Netlist.Stats.compute d in
      check Alcotest.int
        (Printf.sprintf "seed %d ff count" seed)
        (Circuits.Generator.num_flip_flops spec) stats.Netlist.Stats.flip_flops)
    [1; 2; 3; 4; 5]

let test_generator_deterministic () =
  let spec = { Circuits.Generator.name = "det"; seed = 5; inputs = 5; outputs = 4;
               layers = [|6; 6|]; fanin = 3; cone_depth = 3;
               self_loop_fraction = 0.2; cross_feedback = 0.2; reuse = 0.2;
               gated_fraction = 0.3; bank_size = 4; po_cones = 3;
               frequency_mhz = 1000.0 }
  in
  let d1 = Circuits.Generator.synthesize spec in
  let d2 = Circuits.Generator.synthesize spec in
  check Alcotest.string "identical netlists"
    (Netlist_io.Verilog.write d1) (Netlist_io.Verilog.write d2)

let test_alternating_layers () =
  let layers = Circuits.Generator.alternating_layers ~ffs:300 ~n_layers:6 ~ratio:0.75 in
  check Alcotest.int "six layers" 6 (Array.length layers);
  check Alcotest.int "total preserved" 300 (Array.fold_left ( + ) 0 layers);
  check Alcotest.bool "wide layers wider" true (layers.(0) > layers.(1))

let test_linear_pipeline_structure () =
  let d = Circuits.Linear_pipeline.make ~width:3 ~stages:5 () in
  let stats = Netlist.Stats.compute d in
  check Alcotest.int "ffs" 15 stats.Netlist.Stats.flip_flops;
  let g = Netlist.Ff_graph.build d in
  check Alcotest.int "no self loops" 0 (Netlist.Ff_graph.self_loop_count g)

let test_cpu_counts () =
  List.iter
    (fun (spec, expect) ->
      check Alcotest.int (spec.Circuits.Cpu.name ^ " spec count") expect
        (Circuits.Cpu.num_flip_flops spec);
      let d = Circuits.Cpu.make spec in
      let stats = Netlist.Stats.compute d in
      check Alcotest.int (spec.Circuits.Cpu.name ^ " netlist count") expect
        stats.Netlist.Stats.flip_flops;
      match Netlist.Check.validate d with
      | Ok () -> ()
      | Error es -> Alcotest.failf "%s invalid: %s" spec.Circuits.Cpu.name
          (String.concat ";" es))
    [ (Circuits.Cpu.plasma, 1606); (Circuits.Cpu.riscv, 2795);
      (Circuits.Cpu.arm_m0, 1397) ]

let test_suite_matches_published_ff_counts () =
  List.iter
    (fun b ->
      let pff, _, _ = b.Circuits.Suite.published.Circuits.Suite.pub_regs in
      let d = b.Circuits.Suite.build () in
      let stats = Netlist.Stats.compute d in
      check Alcotest.int (b.Circuits.Suite.bench_name ^ " ff count") pff
        stats.Netlist.Stats.flip_flops)
    (* the big CEP circuits are exercised by the benchmark harness; keep
       the unit test quick with the small and mid-size entries *)
    (List.filter
       (fun b ->
         List.mem b.Circuits.Suite.bench_name
           ["s1196"; "s1238"; "s1423"; "s1488"; "s5378"; "s9234"; "des3"; "md5"])
       (Circuits.Suite.all ()))

let test_conversion_tracks_published_3p_counts () =
  (* calibration guard: generated structure keeps the conversion results
     within 15% of the published 3-phase latch counts *)
  List.iter
    (fun name ->
      match Circuits.Suite.find name with
      | None -> Alcotest.failf "missing benchmark %s" name
      | Some b ->
        let d = b.Circuits.Suite.build () in
        let asg = Phase3.Assignment.solve ~solver:`Mis d in
        let _, _, p3p = b.Circuits.Suite.published.Circuits.Suite.pub_regs in
        let mine = Phase3.Assignment.total_latches asg in
        let err =
          Float.abs (float_of_int (mine - p3p)) /. float_of_int p3p
        in
        if err > 0.15 then
          Alcotest.failf "%s: %d latches vs published %d (%.0f%% off)" name
            mine p3p (100.0 *. err))
    ["s1423"; "s1488"; "s5378"; "s13207"; "des3"; "md5"; "plasma"]

let test_workload_profiles_differ () =
  let d = Circuits.Cpu.make Circuits.Cpu.arm_m0 in
  let count_toggles w =
    let stim = Circuits.Workload.stimulus w ~seed:3 ~cycles:100 d in
    List.fold_left
      (fun acc cycle ->
        List.fold_left (fun a (_, v) -> if v = Sim.Logic.L1 then a + 1 else a) acc cycle)
      0 stim
  in
  let hello = count_toggles (Circuits.Workload.Program Circuits.Workload.Hello_world) in
  let coremark = count_toggles (Circuits.Workload.Program Circuits.Workload.Coremark) in
  (* activity ordering is what Fig. 4 relies on *)
  check Alcotest.bool "profiles produce streams" true (hello > 0 && coremark > 0)

let test_workload_names () =
  check Alcotest.string "dhrystone" "dhrystone"
    (Circuits.Workload.name (Circuits.Workload.Program Circuits.Workload.Dhrystone));
  check Alcotest.string "self-check" "self-check"
    (Circuits.Workload.name Circuits.Workload.Self_check)

let test_suite_completeness () =
  let all = Circuits.Suite.all () in
  check Alcotest.int "18 benchmarks" 18 (List.length all);
  check Alcotest.int "11 iscas" 11
    (List.length (List.filter (fun b -> b.Circuits.Suite.family = Circuits.Suite.Iscas) all));
  check Alcotest.int "4 cep" 4
    (List.length (List.filter (fun b -> b.Circuits.Suite.family = Circuits.Suite.Cep) all));
  check Alcotest.int "3 cpu" 3
    (List.length (List.filter (fun b -> b.Circuits.Suite.family = Circuits.Suite.Cpu) all));
  check Alcotest.bool "quick subset is a subset" true
    (List.for_all
       (fun q -> List.exists (fun b -> b.Circuits.Suite.bench_name = q.Circuits.Suite.bench_name) all)
       (Circuits.Suite.quick ()))

let suite =
  [ Alcotest.test_case "generator valid and sized" `Quick test_generator_valid_and_sized;
    Alcotest.test_case "generator deterministic" `Quick test_generator_deterministic;
    Alcotest.test_case "alternating layers" `Quick test_alternating_layers;
    Alcotest.test_case "linear pipeline structure" `Quick test_linear_pipeline_structure;
    Alcotest.test_case "cpu register counts" `Quick test_cpu_counts;
    Alcotest.test_case "suite ff counts" `Quick test_suite_matches_published_ff_counts;
    Alcotest.test_case "conversion tracks published" `Slow
      test_conversion_tracks_published_3p_counts;
    Alcotest.test_case "workload profiles" `Quick test_workload_profiles_differ;
    Alcotest.test_case "workload names" `Quick test_workload_names;
    Alcotest.test_case "suite completeness" `Quick test_suite_completeness ]

let test_cpu_structure () =
  (* structural sanity of the CPU generator: register file is gated, the
     PC self-loops, control registers self-loop *)
  let d = Circuits.Cpu.make Circuits.Cpu.plasma in
  let g = Netlist.Ff_graph.build d in
  check Alcotest.bool "control/pc self-loops exist" true
    (Netlist.Ff_graph.self_loop_count g > 0);
  let gated =
    List.filter
      (fun i ->
        match Netlist.Design.clock_net_of d i with
        | Some cn -> Netlist.Clocking.gating_icg d cn <> None
        | None -> false)
      (Netlist.Design.sequential_insts d)
  in
  (* the register file (32 x 32) is behind clock gates *)
  check Alcotest.bool "at least the register file is gated" true
    (List.length gated >= 1024);
  check Alcotest.int "one icg per register-file word" 32
    (List.length (Netlist.Design.clock_gate_insts d))

let test_workload_activity_ordering () =
  (* coremark drives the interfaces harder than hello-world *)
  let d = Circuits.Cpu.make Circuits.Cpu.riscv in
  let clocks = Sim.Clock_spec.single ~period:3.0 ~port:"clk" in
  let toggles w =
    let engine = Sim.Engine.create d ~clocks in
    let stim = Circuits.Workload.stimulus w ~seed:5 ~cycles:128 d in
    ignore (Sim.Engine.run_stream engine stim);
    Array.fold_left ( + ) 0 (Sim.Engine.toggles engine)
  in
  let hello = toggles (Circuits.Workload.Program Circuits.Workload.Hello_world) in
  let coremark = toggles (Circuits.Workload.Program Circuits.Workload.Coremark) in
  check Alcotest.bool
    (Printf.sprintf "coremark (%d) busier than hello (%d)" coremark hello)
    true (coremark > hello)

let suite =
  suite
  @ [ Alcotest.test_case "cpu structure" `Quick test_cpu_structure;
      Alcotest.test_case "workload activity ordering" `Slow
        test_workload_activity_ordering ]

(* Tests for placement and clock-tree synthesis. *)

let check = Alcotest.check

let lib = Cell_lib.Default_library.library ()

let sample () =
  Circuits.Generator.synthesize
    { Circuits.Generator.name = "phys"; seed = 61; inputs = 8; outputs = 6;
      layers = [|10; 10|]; fanin = 3; cone_depth = 3; self_loop_fraction = 0.2;
      cross_feedback = 0.2; reuse = 0.2; gated_fraction = 0.4; bank_size = 5;
      po_cones = 4; frequency_mhz = 1000.0 }

let test_placement_legal () =
  let d = sample () in
  let pl = Physical.Placement.place d in
  check Alcotest.bool "die has area" true
    (pl.Physical.Placement.die_width > 0.0 && pl.Physical.Placement.die_height > 0.0);
  for i = 0 to Netlist.Design.num_insts d - 1 do
    let x = pl.Physical.Placement.x.(i) and y = pl.Physical.Placement.y.(i) in
    if x < 0.0 || x > pl.Physical.Placement.die_width
       || y < 0.0 || y > pl.Physical.Placement.die_height then
      Alcotest.failf "instance %d placed off-die (%.2f, %.2f)" i x y
  done

let test_placement_wirelength_sane () =
  let d = sample () in
  let pl = Physical.Placement.place d in
  let wl = Physical.Placement.total_wirelength d pl in
  check Alcotest.bool "positive wirelength" true (wl > 0.0);
  (* refinement should not be worse than a reversed-order strawman by a
     large factor; just sanity-bound against die perimeter * nets *)
  let bound =
    float_of_int (Netlist.Design.num_nets d)
    *. (pl.Physical.Placement.die_width +. pl.Physical.Placement.die_height)
  in
  check Alcotest.bool "below trivial bound" true (wl < bound)

let test_hpwl () =
  let d = sample () in
  let pl = Physical.Placement.place d in
  (* single-pin nets have zero HPWL; all HPWLs are non-negative *)
  for n = 0 to Netlist.Design.num_nets d - 1 do
    let h = Physical.Placement.net_hpwl d pl n in
    if h < 0.0 then Alcotest.failf "negative hpwl on net %d" n
  done

let test_cts_covers_sinks () =
  let d = sample () in
  let pl = Physical.Placement.place d in
  let ct = Physical.Clock_tree.synthesize d pl in
  let covered =
    List.fold_left (fun a s -> a + s.Physical.Clock_tree.sinks) 0
      ct.Physical.Clock_tree.subnets
  in
  (* every sequential element's clock pin plus every ICG's clock pin *)
  let expected =
    List.length (Netlist.Design.sequential_insts d)
    + List.length (Netlist.Design.clock_gate_insts d)
  in
  check Alcotest.int "all clock sinks covered" expected covered

let test_cts_load_proportional () =
  (* tree cost tracks pin load, not sink count: the master-slave design
     has twice the sinks, with slaves at half the FF pin cap and masters
     (transparent-low, internal clock inverter) somewhat above half — so
     the M-S tree lands moderately above the FF tree, far below the 2x a
     sink-count model would give *)
  let d = sample () in
  let ms = Phase3.Master_slave.convert d in
  let cap design =
    let pl = Physical.Placement.place design in
    let ct = Physical.Clock_tree.synthesize design pl in
    List.fold_left
      (fun a s -> a +. Physical.Clock_tree.subnet_cap s)
      0.0 ct.Physical.Clock_tree.subnets
  in
  let c_ff = cap d and c_ms = cap ms in
  let ratio = c_ms /. c_ff in
  check Alcotest.bool
    (Printf.sprintf "M-S tree tracks load, not sink count (ratio %.2f)" ratio)
    true (ratio > 0.95 && ratio < 1.6)

let test_implement_bundle () =
  let d = sample () in
  let impl = Physical.Implement.run d in
  check Alcotest.bool "cell area positive" true
    (impl.Physical.Implement.cell_area > 0.0);
  check Alcotest.bool "total >= cells" true
    (impl.Physical.Implement.total_area >= impl.Physical.Implement.cell_area);
  (* the wire model returns non-negative caps *)
  for n = 0 to Netlist.Design.num_nets d - 1 do
    if impl.Physical.Implement.wire n < 0.0 then
      Alcotest.failf "negative wire cap on net %d" n
  done

let test_cts_gated_subnets () =
  (* gated banks become their own subnets rooted at ICG outputs *)
  let d = sample () in
  let pl = Physical.Placement.place d in
  let ct = Physical.Clock_tree.synthesize d pl in
  let icg_subnets =
    List.filter
      (fun s -> match s.Physical.Clock_tree.driver with
         | `Icg _ -> true
         | `Port _ -> false)
      ct.Physical.Clock_tree.subnets
  in
  check Alcotest.int "one subnet per ICG"
    (List.length (Netlist.Design.clock_gate_insts d))
    (List.length icg_subnets)

let suite =
  [ Alcotest.test_case "placement legality" `Quick test_placement_legal;
    Alcotest.test_case "placement wirelength" `Quick test_placement_wirelength_sane;
    Alcotest.test_case "hpwl non-negative" `Quick test_hpwl;
    Alcotest.test_case "cts covers all sinks" `Quick test_cts_covers_sinks;
    Alcotest.test_case "cts load proportional" `Quick test_cts_load_proportional;
    Alcotest.test_case "implement bundle" `Quick test_implement_bundle;
    Alcotest.test_case "cts gated subnets" `Quick test_cts_gated_subnets ]

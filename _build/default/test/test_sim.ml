(* Tests for the simulation substrate: logic values, clock waveforms, the
   event-driven engine's sequential semantics, stimulus and equivalence. *)

let check = Alcotest.check

let lib = Cell_lib.Default_library.library ()

module B = Netlist.Builder
module L = Sim.Logic

(* --- Logic --- *)

let test_logic_tables () =
  check Alcotest.char "and 1x" 'x' (L.to_char (L.land_ L.L1 L.LX));
  check Alcotest.char "and 0x" '0' (L.to_char (L.land_ L.L0 L.LX));
  check Alcotest.char "or 1x" '1' (L.to_char (L.lor_ L.L1 L.LX));
  check Alcotest.char "or 0x" 'x' (L.to_char (L.lor_ L.L0 L.LX));
  check Alcotest.char "xor 1x" 'x' (L.to_char (L.lxor_ L.L1 L.LX));
  check Alcotest.char "not x" 'x' (L.to_char (L.lnot L.LX));
  check Alcotest.bool "rising" true (L.rising ~from_:L.L0 ~to_:L.L1);
  check Alcotest.bool "x to 1 is not an edge" false (L.rising ~from_:L.LX ~to_:L.L1)

(* --- Clock_spec --- *)

let test_clock_events () =
  let spec = Sim.Clock_spec.three_phase ~gap:0.04 ~period:3.0 ~p1:"p1" ~p2:"p2" ~p3:"p3" () in
  let events = Sim.Clock_spec.events spec in
  check Alcotest.int "six events (p3 fall shares t=0 slot alone)" 6
    (List.length events);
  (* sorted ascending *)
  let times = List.map fst events in
  check Alcotest.bool "sorted" true
    (List.sort compare times = times);
  (* p1 closes at T/3 *)
  check (Alcotest.option (Alcotest.float 1e-9)) "p1 closing" (Some 1.0)
    (Sim.Clock_spec.closing_time spec "p1")

let test_clock_levels () =
  let spec = Sim.Clock_spec.single ~period:2.0 ~port:"clk" in
  check (Alcotest.option Alcotest.bool) "high early" (Some true)
    (Sim.Clock_spec.level_at spec "clk" 0.5);
  check (Alcotest.option Alcotest.bool) "low late" (Some false)
    (Sim.Clock_spec.level_at spec "clk" 1.5);
  check (Alcotest.option Alcotest.bool) "periodic" (Some true)
    (Sim.Clock_spec.level_at spec "clk" 4.3);
  check (Alcotest.option Alcotest.bool) "unknown port" None
    (Sim.Clock_spec.level_at spec "nope" 0.0)

(* --- Engine: flip-flop semantics --- *)

let ff_chain () =
  let b = B.create ~name:"chain" ~library:lib in
  let clk = B.add_input ~clock:true b "clk" in
  let a = B.add_input b "a" in
  let q1 = B.fresh_net b "q1" in
  let q2 = B.fresh_net b "q2" in
  ignore (B.add_cell b "f1" "DFF_X1" [("CK", clk); ("D", a); ("Q", q1)]);
  ignore (B.add_cell b "f2" "DFF_X1" [("CK", clk); ("D", q1); ("Q", q2)]);
  B.add_output b "y" q2;
  B.freeze b

let test_ff_chain_latency () =
  let d = ff_chain () in
  let engine = Sim.Engine.create d ~clocks:(Sim.Clock_spec.single ~period:1.0 ~port:"clk") in
  let inputs = [L.L1; L.L0; L.L1; L.L1; L.L0; L.L0; L.L1] in
  let outs = List.map (fun v -> List.assoc "y" (Sim.Engine.run_cycle engine [("a", v)])) inputs in
  (* y at cycle k equals a at cycle k-2 (simultaneous-capture semantics) *)
  List.iteri
    (fun k out ->
      if k >= 2 then
        check Alcotest.char (Printf.sprintf "cycle %d" k)
          (L.to_char (List.nth inputs (k - 2))) (L.to_char out))
    outs

let test_ff_simultaneous_capture () =
  (* shift register: f2 must capture f1's OLD value on the shared edge *)
  let d = ff_chain () in
  let engine = Sim.Engine.create d ~clocks:(Sim.Clock_spec.single ~period:1.0 ~port:"clk") in
  ignore (Sim.Engine.run_cycle engine [("a", L.L1)]);
  ignore (Sim.Engine.run_cycle engine [("a", L.L0)]);
  (* after 2 cycles: q2 = a(0) only if captures were simultaneous *)
  let out = Sim.Engine.run_cycle engine [("a", L.L0)] in
  check Alcotest.char "no shoot-through" '1' (L.to_char (List.assoc "y" out))

(* --- Engine: latch semantics --- *)

let test_latch_follows_and_holds () =
  let b = B.create ~name:"lat" ~library:lib in
  let en = B.add_input ~clock:true b "en" in
  let a = B.add_input b "a" in
  let q = B.fresh_net b "q" in
  ignore (B.add_cell b "l0" "LATH_X1" [("E", en); ("D", a); ("Q", q)]);
  B.add_output b "y" q;
  let d = B.freeze b in
  (* enable high during the first half of each period *)
  let engine = Sim.Engine.create d ~clocks:(Sim.Clock_spec.single ~period:1.0 ~port:"en") in
  let y1 = List.assoc "y" (Sim.Engine.run_cycle engine [("a", L.L1)]) in
  (* at end of cycle the latch is opaque and holds the value sampled while
     open *)
  check Alcotest.char "held 1" '1' (L.to_char y1);
  let y2 = List.assoc "y" (Sim.Engine.run_cycle engine [("a", L.L0)]) in
  check Alcotest.char "follows to 0" '0' (L.to_char y2)

(* --- Engine: ICG behaviour --- *)

let gated_reg style_cell =
  let b = B.create ~name:"g" ~library:lib in
  let clk = B.add_input ~clock:true b "clk" in
  let p3 = B.add_input ~clock:true b "p3" in
  let en = B.add_input b "en" in
  let a = B.add_input b "a" in
  let gck = B.fresh_net b "gck" in
  let conns = [("CK", clk); ("EN", en); ("GCK", gck)] in
  let conns =
    if String.equal style_cell "ICGP3_X1" then ("P3", p3) :: conns else conns
  in
  ignore (B.add_cell b "cg" style_cell conns);
  let q = B.fresh_net b "q" in
  ignore (B.add_cell b "r" "DFF_X1" [("CK", gck); ("D", a); ("Q", q)]);
  B.add_output b "y" q;
  (B.freeze b, gck)

let ms_clocks = Sim.Clock_spec.master_slave ~period:1.0 ~clk:"clk" ~clkbar:"p3"

let test_icg_standard_gates_pulses () =
  let d, gck = gated_reg "ICG_X1" in
  let engine = Sim.Engine.create d ~clocks:ms_clocks in
  (* enable low: no gated pulses, register holds *)
  ignore (Sim.Engine.run_cycle engine [("en", L.L0); ("a", L.L1)]);
  ignore (Sim.Engine.run_cycle engine [("en", L.L0); ("a", L.L1)]);
  let toggles_when_off = (Sim.Engine.toggles engine).(gck) in
  let y = List.assoc "y" (Sim.Engine.run_cycle engine [("en", L.L1); ("a", L.L1)]) in
  check Alcotest.int "gck silent while disabled" 0 toggles_when_off;
  check Alcotest.char "held reset value while gated" '0' (L.to_char y);
  (* enable captured, next cycle the register takes the data *)
  let y2 = List.assoc "y" (Sim.Engine.run_cycle engine [("en", L.L1); ("a", L.L1)]) in
  check Alcotest.char "captures once enabled" '1' (L.to_char y2)

let test_icg_glitch_free_vs_latchless () =
  (* the standard ICG ignores an enable that rises while CK is high; the
     latch-less M2 cell propagates it (that is the hazard the paper's
     condition must rule out) — both behaviours are modelled *)
  let d_std, gck_std = gated_reg "ICG_X1" in
  let d_nl, gck_nl = gated_reg "ICGNL_X1" in
  ignore gck_std;
  ignore gck_nl;
  (* behavioural difference is observable on enables toggling with data;
     here we just verify both simulate and gate when EN = 0 *)
  List.iter
    (fun d ->
      let engine = Sim.Engine.create d ~clocks:ms_clocks in
      ignore (Sim.Engine.run_cycle engine [("en", L.L0); ("a", L.L1)]);
      let y = List.assoc "y" (Sim.Engine.run_cycle engine [("en", L.L0); ("a", L.L1)]) in
      check Alcotest.char "gated off" '0' (L.to_char y))
    [d_std; d_nl]

let test_oscillation_detected () =
  (* a combinational loop through a transparent latch oscillates *)
  let b = B.create ~name:"osc" ~library:lib in
  let en = B.add_input ~clock:true b "en" in
  let q = B.fresh_net b "q" in
  let nq = B.fresh_net b "nq" in
  ignore (B.add_cell b "inv" "INV_X1" [("A", q); ("ZN", nq)]);
  ignore (B.add_cell b "l" "LATH_X1" [("E", en); ("D", nq); ("Q", q)]);
  B.add_output b "y" q;
  let d = B.freeze b in
  let engine = Sim.Engine.create d ~clocks:(Sim.Clock_spec.single ~period:1.0 ~port:"en") in
  try
    ignore (Sim.Engine.run_cycle engine []);
    Alcotest.fail "expected Oscillation"
  with Sim.Engine.Oscillation _ -> ()

let test_toggle_counting () =
  let d = ff_chain () in
  let engine = Sim.Engine.create d ~clocks:(Sim.Clock_spec.single ~period:1.0 ~port:"clk") in
  List.iter
    (fun v -> ignore (Sim.Engine.run_cycle engine [("a", v)]))
    [L.L1; L.L0; L.L1; L.L0];
  let toggles = Sim.Engine.toggles engine in
  let clk_net = Option.get (Netlist.Design.find_input d "clk") in
  check Alcotest.int "clock toggles twice per cycle" 8 toggles.(clk_net);
  check Alcotest.int "cycles counted" 4 (Sim.Engine.cycles engine)

(* --- Stimulus --- *)

let test_stimulus_deterministic () =
  let s1 = Sim.Stimulus.random ~seed:9 ~cycles:20 ~toggle_probability:0.5 ["a"; "b"] in
  let s2 = Sim.Stimulus.random ~seed:9 ~cycles:20 ~toggle_probability:0.5 ["a"; "b"] in
  check Alcotest.bool "same seed same stream" true (s1 = s2);
  let s3 = Sim.Stimulus.random ~seed:10 ~cycles:20 ~toggle_probability:0.5 ["a"; "b"] in
  check Alcotest.bool "different seed differs" true (s1 <> s3)

let test_stimulus_constant () =
  let s = Sim.Stimulus.constant ~cycles:3 L.L1 ["x"] in
  check Alcotest.int "3 cycles" 3 (List.length s);
  List.iter
    (fun cycle -> check Alcotest.char "held" '1' (L.to_char (List.assoc "x" cycle)))
    s

(* --- Equivalence --- *)

let test_equivalence_shift_detection () =
  let mk k = [("y", if k land 1 = 1 then L.L1 else L.L0)] in
  let ref_stream = List.init 20 mk in
  let dut_stream = mk 1 :: List.init 20 mk in
  (* dut has an extra leading sample: reference matches at shift 1 *)
  (match Sim.Equivalence.compare_streams ~warmup:2 ~max_shift:2
           ref_stream dut_stream with
   | Sim.Equivalence.Equivalent { shift } -> check Alcotest.int "shift" 1 shift
   | Sim.Equivalence.Mismatch _ -> Alcotest.fail "should align at shift 1")

let test_equivalence_mismatch_reported () =
  let a = List.init 10 (fun k -> [("y", if k = 7 then L.L1 else L.L0)]) in
  let b = List.init 10 (fun _ -> [("y", L.L0)]) in
  match Sim.Equivalence.compare_streams ~warmup:2 ~max_shift:0 a b with
  | Sim.Equivalence.Mismatch m ->
    check Alcotest.int "cycle" 7 m.Sim.Equivalence.cycle;
    check Alcotest.string "port" "y" m.Sim.Equivalence.port
  | Sim.Equivalence.Equivalent _ -> Alcotest.fail "must mismatch"

let suite =
  [ Alcotest.test_case "logic tables" `Quick test_logic_tables;
    Alcotest.test_case "clock events" `Quick test_clock_events;
    Alcotest.test_case "clock levels" `Quick test_clock_levels;
    Alcotest.test_case "ff chain latency" `Quick test_ff_chain_latency;
    Alcotest.test_case "ff simultaneous capture" `Quick test_ff_simultaneous_capture;
    Alcotest.test_case "latch follows and holds" `Quick test_latch_follows_and_holds;
    Alcotest.test_case "icg gates pulses" `Quick test_icg_standard_gates_pulses;
    Alcotest.test_case "icg styles simulate" `Quick test_icg_glitch_free_vs_latchless;
    Alcotest.test_case "oscillation detected" `Quick test_oscillation_detected;
    Alcotest.test_case "toggle counting" `Quick test_toggle_counting;
    Alcotest.test_case "stimulus deterministic" `Quick test_stimulus_deterministic;
    Alcotest.test_case "stimulus constant" `Quick test_stimulus_constant;
    Alcotest.test_case "equivalence shift" `Quick test_equivalence_shift_detection;
    Alcotest.test_case "equivalence mismatch" `Quick test_equivalence_mismatch_reported ]

(* --- asynchronous reset cells --- *)

let test_dffr_reset () =
  let b = B.create ~name:"rst" ~library:lib in
  let clk = B.add_input ~clock:true b "clk" in
  let rn = B.add_input b "rn" in
  let a = B.add_input b "a" in
  let q = B.fresh_net b "q" in
  ignore (B.add_cell b "r" "DFFR_X1" [("CK", clk); ("D", a); ("Q", q); ("RN", rn)]);
  B.add_output b "y" q;
  let d = B.freeze b in
  let engine = Sim.Engine.create d ~clocks:(Sim.Clock_spec.single ~period:1.0 ~port:"clk") in
  (* load a 1 *)
  ignore (Sim.Engine.run_cycle engine [("a", L.L1); ("rn", L.L1)]);
  let y = List.assoc "y" (Sim.Engine.run_cycle engine [("a", L.L1); ("rn", L.L1)]) in
  check Alcotest.char "captured" '1' (L.to_char y);
  (* assert reset: output clears regardless of data *)
  let y = List.assoc "y" (Sim.Engine.run_cycle engine [("a", L.L1); ("rn", L.L0)]) in
  check Alcotest.char "cleared" '0' (L.to_char y);
  (* release: next capture takes data again *)
  ignore (Sim.Engine.run_cycle engine [("a", L.L1); ("rn", L.L1)]);
  let y = List.assoc "y" (Sim.Engine.run_cycle engine [("a", L.L1); ("rn", L.L1)]) in
  check Alcotest.char "recaptured" '1' (L.to_char y)

let test_lathr_reset () =
  let b = B.create ~name:"rstl" ~library:lib in
  let en = B.add_input ~clock:true b "en" in
  let rn = B.add_input b "rn" in
  let a = B.add_input b "a" in
  let q = B.fresh_net b "q" in
  ignore (B.add_cell b "l" "LATHR_X1" [("E", en); ("D", a); ("Q", q); ("RN", rn)]);
  B.add_output b "y" q;
  let d = B.freeze b in
  let engine = Sim.Engine.create d ~clocks:(Sim.Clock_spec.single ~period:1.0 ~port:"en") in
  ignore (Sim.Engine.run_cycle engine [("a", L.L1); ("rn", L.L1)]);
  let y = List.assoc "y" (Sim.Engine.run_cycle engine [("a", L.L1); ("rn", L.L0)]) in
  check Alcotest.char "latch cleared by reset" '0' (L.to_char y)

let test_x_init_propagates () =
  let d = ff_chain () in
  let engine =
    Sim.Engine.create ~init:`X d
      ~clocks:(Sim.Clock_spec.single ~period:1.0 ~port:"clk")
  in
  (* before any defined input reaches the chain output it reads X *)
  let y = List.assoc "y" (Sim.Engine.run_cycle engine [("a", L.L1)]) in
  check Alcotest.char "x initially" 'x' (L.to_char y);
  ignore (Sim.Engine.run_cycle engine [("a", L.L1)]);
  ignore (Sim.Engine.run_cycle engine [("a", L.L1)]);
  let y = List.assoc "y" (Sim.Engine.run_cycle engine [("a", L.L1)]) in
  check Alcotest.char "washes out" '1' (L.to_char y)

let test_unknown_input_rejected () =
  let d = ff_chain () in
  let engine = Sim.Engine.create d ~clocks:(Sim.Clock_spec.single ~period:1.0 ~port:"clk") in
  try
    ignore (Sim.Engine.run_cycle engine [("nonexistent", L.L1)]);
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let suite =
  suite
  @ [ Alcotest.test_case "dffr async reset" `Quick test_dffr_reset;
      Alcotest.test_case "lathr async reset" `Quick test_lathr_reset;
      Alcotest.test_case "x-init propagation" `Quick test_x_init_propagates;
      Alcotest.test_case "unknown input rejected" `Quick test_unknown_input_rejected ]

let test_three_phase_gap () =
  let spec = Sim.Clock_spec.three_phase ~gap:0.05 ~period:1.0 ~p1:"p1" ~p2:"p2" ~p3:"p3" () in
  (* each phase opens strictly after the previous closes *)
  let wf p = List.assoc p spec.Sim.Clock_spec.ports in
  check Alcotest.bool "p1 opens after t=0" true ((wf "p1").Sim.Clock_spec.rise_at > 0.0);
  check Alcotest.bool "p2 opens after p1 closes" true
    ((wf "p2").Sim.Clock_spec.rise_at > (wf "p1").Sim.Clock_spec.fall_at);
  check Alcotest.bool "p3 opens after p2 closes" true
    ((wf "p3").Sim.Clock_spec.rise_at > (wf "p2").Sim.Clock_spec.fall_at);
  (* no instant has two phases high *)
  let high t =
    List.filter
      (fun (p, _) -> Sim.Clock_spec.level_at spec p t = Some true)
      spec.Sim.Clock_spec.ports
  in
  List.iter
    (fun t ->
      if List.length (high t) > 1 then
        Alcotest.failf "phases overlap at t=%.3f" t)
    [0.0; 0.1; 0.2; 0.34; 0.36; 0.5; 0.68; 0.71; 0.9; 0.999]

let suite =
  suite @ [ Alcotest.test_case "three-phase gap non-overlap" `Quick test_three_phase_gap ]

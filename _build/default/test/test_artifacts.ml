(* Tests for the flow artifacts: VCD dumps, timing reports, SDC
   constraints and multi-corner analysis. *)

let check = Alcotest.check

let lib = Cell_lib.Default_library.library ()

let contains affix s = Astring.String.is_infix ~affix s

let small_design () =
  Netlist_io.Bench_format.parse ~name:"art" ~library:lib {|
INPUT(a)
INPUT(b)
OUTPUT(y)
s0 = DFF(n1)
s1 = DFF(s0)
n1 = XOR(a, b)
y = AND(s1, s0)
|}

(* --- VCD --- *)

let test_vcd_structure () =
  let d = small_design () in
  let engine = Sim.Engine.create d ~clocks:(Sim.Clock_spec.single ~period:1.0 ~port:"clock") in
  let stim = Sim.Stimulus.random ~seed:4 ~cycles:16 ~toggle_probability:0.5 ["a"; "b"] in
  let vcd = Sim.Vcd.run_and_dump engine stim in
  check Alcotest.bool "has timescale" true (contains "$timescale" vcd);
  check Alcotest.bool "declares y" true (contains " y $end" vcd);
  check Alcotest.bool "declares register" true (contains "s0_reg" vcd);
  check Alcotest.bool "has timestamps" true (contains "#0" vcd);
  check Alcotest.bool "enddefinitions" true (contains "$enddefinitions" vcd)

let test_vcd_change_compression () =
  (* constant inputs: after the first sample, no further value changes for
     the input wires *)
  let d = small_design () in
  let engine = Sim.Engine.create d ~clocks:(Sim.Clock_spec.single ~period:1.0 ~port:"clock") in
  let t = Sim.Vcd.create engine ~nets:[] in
  for _ = 1 to 8 do
    ignore (Sim.Engine.run_cycle engine [("a", Sim.Logic.L1); ("b", Sim.Logic.L0)]);
    Sim.Vcd.sample t
  done;
  let vcd = Sim.Vcd.render t in
  (* only clock wires recorded; they are sampled at the same end-of-cycle
     level every cycle, so exactly one timestamped section appears *)
  let sections =
    List.length
      (List.filter (fun line -> String.length line > 0 && line.[0] = '#')
         (String.split_on_char '\n' vcd))
  in
  check Alcotest.bool "no redundant change records" true (sections <= 2)

let test_vcd_ids_unique () =
  (* the short-id generator must not collide for a few hundred signals *)
  let d = Circuits.Generator.synthesize
      { Circuits.Generator.name = "big"; seed = 3; inputs = 10; outputs = 8;
        layers = [|40; 40|]; fanin = 3; cone_depth = 3; self_loop_fraction = 0.2;
        cross_feedback = 0.2; reuse = 0.2; gated_fraction = 0.3; bank_size = 8;
        po_cones = 6; frequency_mhz = 500.0 }
  in
  let engine = Sim.Engine.create d ~clocks:(Sim.Clock_spec.single ~period:2.0 ~port:"clk") in
  let t = Sim.Vcd.create_default engine in
  Sim.Vcd.sample t;
  let vcd = Sim.Vcd.render t in
  let ids =
    List.filter_map
      (fun line ->
        match String.split_on_char ' ' line with
        | ["$var"; "wire"; "1"; id; _; "$end"] -> Some id
        | _ -> None)
      (String.split_on_char '\n' vcd)
  in
  check Alcotest.int "ids unique" (List.length ids)
    (List.length (List.sort_uniq compare ids))

(* --- Timing report --- *)

let test_timing_report () =
  let d = small_design () in
  let paths = Sta.Timing_report.worst_paths ~count:3 d in
  check Alcotest.bool "some paths" true (paths <> []);
  let worst = List.hd paths in
  (* worst path is the XOR cone into s0 *)
  check (Alcotest.float 1e-6) "worst delay is the xor cone"
    (let xor = Option.get (Netlist.Design.find_inst d "n1_g2") in
     Sta.Delay.inst_delay_max d Sta.Delay.no_wire xor)
    worst.Sta.Timing_report.total_delay;
  (* arrivals increase monotonically along every path *)
  List.iter
    (fun (p : Sta.Timing_report.path) ->
      let rec mono last = function
        | [] -> ()
        | (s : Sta.Timing_report.step) :: rest ->
          if s.Sta.Timing_report.arrival < last -. 1e-9 then
            Alcotest.fail "arrivals not monotone";
          mono s.Sta.Timing_report.arrival rest
      in
      mono 0.0 p.Sta.Timing_report.steps)
    paths

let test_timing_report_sorted () =
  let d = Circuits.Generator.synthesize
      { Circuits.Generator.name = "tr"; seed = 8; inputs = 6; outputs = 4;
        layers = [|8; 8|]; fanin = 4; cone_depth = 5; self_loop_fraction = 0.2;
        cross_feedback = 0.2; reuse = 0.2; gated_fraction = 0.0; bank_size = 4;
        po_cones = 4; frequency_mhz = 1000.0 }
  in
  let paths = Sta.Timing_report.worst_paths ~count:10 d in
  let delays = List.map (fun p -> p.Sta.Timing_report.total_delay) paths in
  check Alcotest.bool "descending" true
    (List.sort (fun a b -> compare b a) delays = delays)

(* --- SDC --- *)

let test_sdc_three_phase () =
  let d = small_design () in
  let config = { (Phase3.Flow.default_config ~period:1.0) with
                 Phase3.Flow.verify_equivalence = false } in
  let r = Phase3.Flow.run ~config d in
  let sdc =
    Netlist_io.Sdc.write r.Phase3.Flow.final ~clocks:(Phase3.Flow.clocks_of config)
  in
  check Alcotest.bool "three create_clock" true
    (List.length
       (List.filter (contains "create_clock")
          (String.split_on_char '\n' sdc)) = 3);
  check Alcotest.bool "physically exclusive" true
    (contains "physically_exclusive" sdc);
  check Alcotest.bool "input delays" true (contains "set_input_delay" sdc);
  check Alcotest.bool "p2 waveform offset" true (contains "0.3733" sdc)

let test_sdc_single_clock () =
  let d = small_design () in
  let sdc = Netlist_io.Sdc.write d ~clocks:(Sim.Clock_spec.single ~period:2.0 ~port:"clock") in
  check Alcotest.bool "one clock" true
    (List.length
       (List.filter (contains "create_clock")
          (String.split_on_char '\n' sdc)) = 1);
  check Alcotest.bool "no exclusive groups" false (contains "physically_exclusive" sdc)

(* --- Corners --- *)

let test_corners () =
  let d = small_design () in
  let clocks = Sim.Clock_spec.single ~period:1.0 ~port:"clock" in
  let reports = Sta.Corners.check_all d ~clocks in
  check Alcotest.int "three corners" 3 (List.length reports);
  (* slow corner has less setup slack than fast corner *)
  let slack name =
    let _, r =
      List.find (fun ((c : Sta.Corners.corner), _) ->
          String.equal c.Sta.Corners.corner_name name) reports
    in
    r.Sta.Smo.worst_setup_slack
  in
  check Alcotest.bool "slow tighter than fast" true (slack "slow" < slack "fast")

let test_corner_derate_effect () =
  let d = small_design () in
  let clocks = Sim.Clock_spec.single ~period:1.0 ~port:"clock" in
  let base = Sta.Smo.check d ~clocks in
  let derated = Sta.Smo.check ~derate:(1.0, 2.0) d ~clocks in
  check Alcotest.bool "late derate reduces setup slack" true
    (derated.Sta.Smo.worst_setup_slack < base.Sta.Smo.worst_setup_slack)

let suite =
  [ Alcotest.test_case "vcd structure" `Quick test_vcd_structure;
    Alcotest.test_case "vcd change compression" `Quick test_vcd_change_compression;
    Alcotest.test_case "vcd ids unique" `Quick test_vcd_ids_unique;
    Alcotest.test_case "timing report paths" `Quick test_timing_report;
    Alcotest.test_case "timing report sorted" `Quick test_timing_report_sorted;
    Alcotest.test_case "sdc three-phase" `Quick test_sdc_three_phase;
    Alcotest.test_case "sdc single clock" `Quick test_sdc_single_clock;
    Alcotest.test_case "corner sweep" `Quick test_corners;
    Alcotest.test_case "derate effect" `Quick test_corner_derate_effect ]

(* --- Activity / SAIF --- *)

let test_activity_capture () =
  let d = small_design () in
  let engine = Sim.Engine.create d ~clocks:(Sim.Clock_spec.single ~period:1.0 ~port:"clock") in
  let stim = Sim.Stimulus.random ~seed:6 ~cycles:50 ~toggle_probability:0.5 ["a"; "b"] in
  ignore (Sim.Engine.run_stream engine stim);
  let act = Sim.Activity.capture engine in
  check Alcotest.int "cycles recorded" 50 act.Sim.Activity.cycles;
  (* the clock is the busiest net: 2 toggles per cycle *)
  (match act.Sim.Activity.entries with
   | top :: _ ->
     check Alcotest.string "clock on top" "clock" top.Sim.Activity.net_name;
     check Alcotest.int "2 toggles/cycle" 100 top.Sim.Activity.toggles
   | [] -> Alcotest.fail "no entries");
  check Alcotest.bool "mean rate positive" true (Sim.Activity.mean_rate act > 0.0);
  let quiet = Sim.Activity.quiet_nets act ~threshold:0.01 in
  check Alcotest.bool "quiet nets below threshold" true
    (List.for_all (fun e -> e.Sim.Activity.rate < 0.01) quiet);
  let saif = Sim.Activity.render act in
  check Alcotest.bool "saif header" true (contains "SAIFILE" saif);
  check Alcotest.bool "toggle counts present" true (contains "(TC " saif)

let suite =
  suite @ [ Alcotest.test_case "activity capture and saif" `Quick test_activity_capture ]

(* --- optimize interplay with artifacts --- *)

let test_optimized_flow_artifacts () =
  (* the optimized flow output still yields valid Verilog and SDC *)
  let d = small_design () in
  let config = { (Phase3.Flow.default_config ~period:1.0) with
                 Phase3.Flow.optimize = true } in
  let r = Phase3.Flow.run ~config d in
  let final = r.Phase3.Flow.final in
  let text = Netlist_io.Verilog.write final in
  let d2 = Netlist_io.Verilog.parse ~library:lib text in
  (match Netlist.Check.validate d2 with
   | Ok () -> ()
   | Error es -> Alcotest.failf "reparsed invalid: %s" (String.concat ";" es));
  let sdc = Netlist_io.Sdc.write final ~clocks:(Phase3.Flow.clocks_of config) in
  check Alcotest.bool "sdc still names three clocks" true
    (contains "create_clock -name p3" sdc)

let suite =
  suite
  @ [ Alcotest.test_case "optimized flow artifacts" `Quick
        test_optimized_flow_artifacts ]

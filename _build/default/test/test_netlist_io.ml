(* Tests for the .bench and Verilog-subset readers/writers, including
   behavioural roundtrip properties on generated circuits. *)

let check = Alcotest.check

let lib = Cell_lib.Default_library.library ()

let bench_src = {|
# comment line
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(y)
OUTPUT(z)
s0 = DFF(n2)
s1 = DFF(s0)
n1 = NAND(a, b, c)     # wide gate decomposes
n2 = XOR(n1, s1)
y = NOT(s0)
z = BUFF(s1)
|}

let test_bench_parse () =
  let d = Netlist_io.Bench_format.parse ~name:"t" ~library:lib bench_src in
  let s = Netlist.Stats.compute d in
  check Alcotest.int "ffs" 2 s.Netlist.Stats.flip_flops;
  check Alcotest.int "primary inputs (clock added)" 4
    (List.length d.Netlist.Design.primary_inputs);
  check Alcotest.bool "clock port" true (Netlist.Design.is_clock_port d "clock");
  check Alcotest.int "outputs" 2 (List.length d.Netlist.Design.primary_outputs);
  match Netlist.Check.validate d with
  | Ok () -> ()
  | Error es -> Alcotest.failf "invalid: %s" (String.concat ";" es)

let test_bench_errors () =
  let expect_error src =
    try
      ignore (Netlist_io.Bench_format.parse ~name:"x" ~library:lib src);
      Alcotest.fail "expected Bench_format.Error"
    with Netlist_io.Bench_format.Error _ -> ()
  in
  expect_error "INPUT(a)\ny = FROB(a)\nOUTPUT(y)\n";
  expect_error "y = AND(a, b)\nOUTPUT(y)\n";          (* undefined signals *)
  expect_error "INPUT(a)\nINPUT(a)\n";                 (* duplicate input *)
  expect_error "INPUT(a)\nOUTPUT(y)\ny = DFF(a, a)\n"  (* DFF arity *)

let test_bench_roundtrip_behaviour () =
  let d = Netlist_io.Bench_format.parse ~name:"t" ~library:lib bench_src in
  let text = Netlist_io.Bench_format.write d in
  let d2 = Netlist_io.Bench_format.parse ~name:"t2" ~library:lib text in
  let stim = Sim.Stimulus.random ~seed:3 ~cycles:60 ~toggle_probability:0.4
      (Sim.Stimulus.inputs_of d) in
  let clocks = Sim.Clock_spec.single ~period:1.0 ~port:"clock" in
  match Sim.Equivalence.check ~reference:d ~dut:d2 ~reference_clocks:clocks
          ~dut_clocks:clocks ~stimulus:stim () with
  | Sim.Equivalence.Equivalent { shift } -> check Alcotest.int "no shift" 0 shift
  | Sim.Equivalence.Mismatch m ->
    Alcotest.failf "bench roundtrip changed behaviour: %s"
      (Format.asprintf "%a" Sim.Equivalence.pp_mismatch m)

let test_bench_write_rejects_latches () =
  let b = Netlist.Builder.create ~name:"l" ~library:lib in
  let clk = Netlist.Builder.add_input ~clock:true b "clk" in
  let a = Netlist.Builder.add_input b "a" in
  let q = Netlist.Builder.fresh_net b "q" in
  ignore (Netlist.Builder.add_cell b "l0" "LATH_X1" [("E", clk); ("D", a); ("Q", q)]);
  Netlist.Builder.add_output b "y" q;
  let d = Netlist.Builder.freeze b in
  try
    ignore (Netlist_io.Bench_format.write d);
    Alcotest.fail "expected Error for latch"
  with Netlist_io.Bench_format.Error _ -> ()

let verilog_src = {|
// @clocks ck
module top (ck, a, b, y, z);
  input ck;
  input a, b;
  output y;
  output z;
  wire n1, q0;
  NAND2_X1 u1 (.A1(a), .A2(b), .ZN(n1));
  DFF_X1 r0 (.CK(ck), .D(n1), .Q(q0));
  assign y = q0;
  MUX2_X1 u2 (.A(q0), .B(a), .S(b), .Z(z));
endmodule
|}

let test_verilog_parse () =
  let d = Netlist_io.Verilog.parse ~library:lib verilog_src in
  check Alcotest.string "module name" "top" d.Netlist.Design.design_name;
  check Alcotest.bool "clock from comment" true (Netlist.Design.is_clock_port d "ck");
  let s = Netlist.Stats.compute d in
  check Alcotest.int "one ff" 1 s.Netlist.Stats.flip_flops;
  check Alcotest.int "two comb" 2 s.Netlist.Stats.comb_cells

let test_verilog_constants () =
  let src = {|
module c (a, y);
  input a;
  output y;
  wire t;
  AND2_X1 u (.A1(a), .A2(t), .Z(y));
  assign t = 1'b1;
endmodule
|}
  in
  let d = Netlist_io.Verilog.parse ~library:lib src in
  match Netlist.Check.validate d with
  | Ok () -> ()
  | Error es -> Alcotest.failf "constant design invalid: %s" (String.concat ";" es)

let test_verilog_errors () =
  let expect_error src =
    try
      ignore (Netlist_io.Verilog.parse ~library:lib src);
      Alcotest.fail "expected Verilog.Error"
    with Netlist_io.Verilog.Error _ -> ()
  in
  expect_error "module m (a); input a; NOSUCHCELL u (.A(a)); endmodule";
  expect_error "module m (a); input a; INV_X1 u (.A(undeclared), .ZN(a)); endmodule";
  expect_error "module m (a); input a;"  (* missing endmodule *)

let test_verilog_roundtrip_generated () =
  (* random generated circuits survive a write/parse cycle behaviourally *)
  List.iter
    (fun seed ->
      let spec = { Circuits.Generator.name = Printf.sprintf "rt%d" seed;
                   seed; inputs = 5; outputs = 4; layers = [|5; 4|];
                   fanin = 3; cone_depth = 3; self_loop_fraction = 0.2;
                   cross_feedback = 0.2; reuse = 0.2; gated_fraction = 0.3;
                   bank_size = 3; po_cones = 3; frequency_mhz = 1000.0 }
      in
      let d = Circuits.Generator.synthesize spec in
      let d2 = Netlist_io.Verilog.parse ~library:lib (Netlist_io.Verilog.write d) in
      let stim = Sim.Stimulus.random ~seed:(seed + 70) ~cycles:50
          ~toggle_probability:0.4 (Sim.Stimulus.inputs_of d) in
      let clocks = Sim.Clock_spec.single ~period:1.0 ~port:"clk" in
      match Sim.Equivalence.check ~reference:d ~dut:d2 ~reference_clocks:clocks
              ~dut_clocks:clocks ~stimulus:stim () with
      | Sim.Equivalence.Equivalent _ -> ()
      | Sim.Equivalence.Mismatch m ->
        Alcotest.failf "seed %d: %s" seed
          (Format.asprintf "%a" Sim.Equivalence.pp_mismatch m))
    [1; 2; 3; 4; 5]

let test_verilog_preserves_converted_design () =
  (* a converted 3-phase design (latches, ICGs, three clocks) roundtrips *)
  let src = Netlist_io.Bench_format.parse ~name:"t" ~library:lib bench_src in
  let config = { (Phase3.Flow.default_config ~period:1.0) with
                 Phase3.Flow.verify_equivalence = false } in
  let r = Phase3.Flow.run ~config src in
  let final = r.Phase3.Flow.final in
  let d2 = Netlist_io.Verilog.parse ~library:lib (Netlist_io.Verilog.write final) in
  check (Alcotest.list Alcotest.string) "clock ports preserved"
    final.Netlist.Design.clock_ports d2.Netlist.Design.clock_ports;
  let s1 = Netlist.Stats.compute final and s2 = Netlist.Stats.compute d2 in
  check Alcotest.int "latches preserved" s1.Netlist.Stats.latches
    s2.Netlist.Stats.latches;
  check Alcotest.int "icgs preserved" s1.Netlist.Stats.clock_gates
    s2.Netlist.Stats.clock_gates

let suite =
  [ Alcotest.test_case "bench parse" `Quick test_bench_parse;
    Alcotest.test_case "bench errors" `Quick test_bench_errors;
    Alcotest.test_case "bench roundtrip behaviour" `Quick test_bench_roundtrip_behaviour;
    Alcotest.test_case "bench write rejects latches" `Quick test_bench_write_rejects_latches;
    Alcotest.test_case "verilog parse" `Quick test_verilog_parse;
    Alcotest.test_case "verilog constants" `Quick test_verilog_constants;
    Alcotest.test_case "verilog errors" `Quick test_verilog_errors;
    Alcotest.test_case "verilog roundtrip generated" `Quick test_verilog_roundtrip_generated;
    Alcotest.test_case "verilog roundtrips converted design" `Quick
      test_verilog_preserves_converted_design ]

let test_bench_wide_gate_decomposition () =
  (* a 7-input AND becomes a tree of available cells but keeps behaviour *)
  let src =
    "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nINPUT(e)\nINPUT(f)\nINPUT(g)\n\
     OUTPUT(y)\ny = AND(a, b, c, d, e, f, g)\n"
  in
  let d = Netlist_io.Bench_format.parse ~name:"wide" ~library:lib src in
  let clocks = Sim.Clock_spec.single ~period:1.0 ~port:"__none" in
  let engine = Sim.Engine.create d ~clocks in
  let inputs = ["a"; "b"; "c"; "d"; "e"; "f"; "g"] in
  for mask = 0 to 127 do
    let vals =
      List.mapi (fun k name -> (name, Sim.Logic.of_bool ((mask lsr k) land 1 = 1)))
        inputs
    in
    let out = List.assoc "y" (Sim.Engine.run_cycle engine vals) in
    let expect = Sim.Logic.of_bool (mask = 127) in
    if not (Sim.Logic.equal out expect) then
      Alcotest.failf "mask %d: got %c" mask (Sim.Logic.to_char out)
  done

let suite =
  suite
  @ [ Alcotest.test_case "bench wide gate decomposition" `Quick
        test_bench_wide_gate_decomposition ]

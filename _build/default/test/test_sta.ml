(* Tests for the timing substrate: path delays, SMO multi-phase checks and
   hold fixing. *)

let check = Alcotest.check

let lib = Cell_lib.Default_library.library ()

module B = Netlist.Builder
module D = Netlist.Design

(* clk -> r1 -> inv -> inv -> r2 : exact delays are computable by hand *)
let two_stage () =
  let b = B.create ~name:"two" ~library:lib in
  let clk = B.add_input ~clock:true b "clk" in
  let a = B.add_input b "a" in
  let q1 = B.fresh_net b "q1" in
  ignore (B.add_cell b "r1" "DFF_X1" [("CK", clk); ("D", a); ("Q", q1)]);
  let n1 = B.fresh_net b "n1" in
  ignore (B.add_cell b "i1" "INV_X1" [("A", q1); ("ZN", n1)]);
  let n2 = B.fresh_net b "n2" in
  ignore (B.add_cell b "i2" "INV_X1" [("A", n1); ("ZN", n2)]);
  let q2 = B.fresh_net b "q2" in
  ignore (B.add_cell b "r2" "DFF_X1" [("CK", clk); ("D", n2); ("Q", q2)]);
  B.add_output b "y" q2;
  B.freeze b

let inv_delay d wire inst_name =
  let i = Option.get (D.find_inst d inst_name) in
  Sta.Delay.inst_delay_max d wire i

let test_path_delays_exact () =
  let d = two_stage () in
  let paths = Sta.Paths.compute d in
  let r1 = Option.get (D.find_inst d "r1") in
  let r2 = Option.get (D.find_inst d "r2") in
  let p =
    List.find
      (fun (p : Sta.Paths.path) ->
        p.Sta.Paths.src = Sta.Paths.Reg r1 && p.Sta.Paths.dst = Sta.Paths.Reg r2)
      (Sta.Paths.all paths)
  in
  let expect = inv_delay d Sta.Delay.no_wire "i1" +. inv_delay d Sta.Delay.no_wire "i2" in
  check (Alcotest.float 1e-9) "max = sum of inverter delays" expect
    p.Sta.Paths.max_delay;
  check Alcotest.bool "min <= max" true (p.Sta.Paths.min_delay <= p.Sta.Paths.max_delay)

let test_forward_backward_consistent () =
  let d = two_stage () in
  let fwd = Sta.Paths.forward_arrivals d in
  let bwd = Sta.Paths.backward_delays d in
  let r2 = Option.get (D.find_inst d "r2") in
  let dn = Option.get (D.data_net_of d r2) in
  let r1 = Option.get (D.find_inst d "r1") in
  let qn = Option.get (D.q_net_of d r1) in
  (* forward arrival at r2's D equals backward delay from r1's Q *)
  check (Alcotest.float 1e-9) "forward = backward on a chain" fwd.(dn) bwd.(qn)

let test_smo_ff_design_ok () =
  let d = two_stage () in
  let clocks = Sim.Clock_spec.single ~period:1.0 ~port:"clk" in
  let r = Sta.Smo.check d ~clocks in
  check Alcotest.bool "meets timing at 1ns" true (Sta.Smo.ok r);
  (* setup slack should be roughly T - margins - path - clk2q *)
  check Alcotest.bool "slack below period" true
    (r.Sta.Smo.worst_setup_slack < 1.0)

let test_smo_catches_setup_violation () =
  let d = two_stage () in
  let clocks = Sim.Clock_spec.single ~period:0.1 ~port:"clk" in
  let r = Sta.Smo.check d ~clocks in
  check Alcotest.bool "violated at 100ps" false (Sta.Smo.ok r);
  check Alcotest.bool "reports setup violations" true
    (List.exists (fun v -> v.Sta.Smo.kind = `Setup) r.Sta.Smo.violations)

let test_smo_three_phase_budgets () =
  (* p2 -> p1 paths get roughly 2T/3 of budget; validate on a converted
     pipeline that timing passes at the design period but fails when the
     period shrinks below the combinational delay's phase budget *)
  let d = Circuits.Linear_pipeline.make ~width:4 ~stages:4 () in
  let config = { (Phase3.Flow.default_config ~period:1.0) with
                 Phase3.Flow.verify_equivalence = false } in
  let r = Phase3.Flow.run ~config d in
  let final = r.Phase3.Flow.final in
  let ok_spec = Phase3.Flow.clocks_of config in
  check Alcotest.bool "passes at 1ns" true (Sta.Smo.ok (Sta.Smo.check final ~clocks:ok_spec));
  let tight =
    Sim.Clock_spec.three_phase ~period:0.12 ~p1:"p1" ~p2:"p2" ~p3:"p3" ()
  in
  check Alcotest.bool "fails at 120ps" false
    (Sta.Smo.ok (Sta.Smo.check final ~clocks:tight))

let test_smo_borrowing_reported () =
  (* a latch pipeline with a long cone borrows into the next window *)
  let b = B.create ~name:"borrow" ~library:lib in
  let p1 = B.add_input ~clock:true b "p1" in
  let p2 = B.add_input ~clock:true b "p2" in
  let p3 = B.add_input ~clock:true b "p3" in
  ignore p3;
  let a = B.add_input b "a" in
  let q1 = B.fresh_net b "q1" in
  ignore (B.add_cell b "l1" "LATH_X1" [("E", p1); ("D", a); ("Q", q1)]);
  (* long inverter chain *)
  let rec chain src k =
    if k = 0 then src
    else begin
      let n = B.fresh_net b (Printf.sprintf "c%d" k) in
      ignore (B.add_cell b (Printf.sprintf "iv%d" k) "INV_X1" [("A", src); ("ZN", n)]);
      chain n (k - 1)
    end
  in
  let long = chain q1 14 in
  let q2 = B.fresh_net b "q2" in
  ignore (B.add_cell b "l2" "LATH_X1" [("E", p2); ("D", long); ("Q", q2)]);
  B.add_output b "y" q2;
  let d = B.freeze b in
  let clocks = Sim.Clock_spec.three_phase ~period:0.8 ~p1:"p1" ~p2:"p2" ~p3:"p3" () in
  let r = Sta.Smo.check d ~clocks in
  (* the chain is longer than the p1->p2 shift, so l2's departure borrows *)
  check Alcotest.bool "borrowing observed" true (r.Sta.Smo.max_borrow > 0.0)

let test_hold_fix_pads_ff_design () =
  (* a direct register-to-register path violates hold under skew and gets
     padded until clean *)
  let b = B.create ~name:"hold" ~library:lib in
  let clk = B.add_input ~clock:true b "clk" in
  let a = B.add_input b "a" in
  let q1 = B.fresh_net b "q1" in
  ignore (B.add_cell b "r1" "DFF_X1" [("CK", clk); ("D", a); ("Q", q1)]);
  let q2 = B.fresh_net b "q2" in
  ignore (B.add_cell b "r2" "DFF_X1" [("CK", clk); ("D", q1); ("Q", q2)]);
  B.add_output b "y" q2;
  let d = B.freeze b in
  let clocks = Sim.Clock_spec.single ~period:1.0 ~port:"clk" in
  let d', stats = Sta.Hold_fix.run ~skew:0.08 d ~clocks in
  check Alcotest.bool "buffers added" true (stats.Sta.Hold_fix.buffers_added > 0);
  check Alcotest.bool "fixed" true stats.Sta.Hold_fix.fixed;
  let r = Sta.Smo.check ~clock_skew:0.08 d' ~clocks in
  check Alcotest.bool "hold clean after fix" true (r.Sta.Smo.worst_hold_slack >= 0.0);
  (* behaviour is unchanged by buffering *)
  let stim = Sim.Stimulus.random ~seed:2 ~cycles:40 ~toggle_probability:0.5 ["a"] in
  match Sim.Equivalence.check ~reference:d ~dut:d' ~reference_clocks:clocks
          ~dut_clocks:clocks ~stimulus:stim () with
  | Sim.Equivalence.Equivalent { shift } -> check Alcotest.int "no shift" 0 shift
  | Sim.Equivalence.Mismatch _ -> Alcotest.fail "hold buffers changed behaviour"

let test_hold_fix_three_phase_needs_fewer () =
  (* the same logical design converted to 3-phase needs fewer hold buffers
     than the FF original — the paper's comb-power argument *)
  let d = Circuits.Linear_pipeline.make ~width:8 ~stages:4 () in
  let period = 1.0 in
  let ff_clocks = Sim.Clock_spec.single ~period ~port:"clk" in
  let _, ff_stats = Sta.Hold_fix.run d ~clocks:ff_clocks in
  let config = { (Phase3.Flow.default_config ~period) with
                 Phase3.Flow.verify_equivalence = false } in
  let r = Phase3.Flow.run ~config d in
  let _, tp_stats =
    Sta.Hold_fix.run r.Phase3.Flow.final ~clocks:(Phase3.Flow.clocks_of config)
  in
  check Alcotest.bool "3-phase needs no more hold buffers than FF" true
    (tp_stats.Sta.Hold_fix.buffers_added <= ff_stats.Sta.Hold_fix.buffers_added)

let suite =
  [ Alcotest.test_case "path delays exact" `Quick test_path_delays_exact;
    Alcotest.test_case "forward/backward consistent" `Quick test_forward_backward_consistent;
    Alcotest.test_case "smo ok on ff design" `Quick test_smo_ff_design_ok;
    Alcotest.test_case "smo catches setup violation" `Quick test_smo_catches_setup_violation;
    Alcotest.test_case "smo three-phase budgets" `Quick test_smo_three_phase_budgets;
    Alcotest.test_case "smo reports borrowing" `Quick test_smo_borrowing_reported;
    Alcotest.test_case "hold fix pads ff design" `Quick test_hold_fix_pads_ff_design;
    Alcotest.test_case "hold fix favours latches" `Quick test_hold_fix_three_phase_needs_fewer ]

let test_smo_exact_vs_class () =
  (* exact mode can only report equal or better (larger) slacks than the
     class-based approximation, and they agree when each port has a single
     register *)
  let d = Circuits.Generator.synthesize
      { Circuits.Generator.name = "sx"; seed = 17; inputs = 6; outputs = 4;
        layers = [|7; 7|]; fanin = 3; cone_depth = 4; self_loop_fraction = 0.2;
        cross_feedback = 0.2; reuse = 0.2; gated_fraction = 0.0; bank_size = 4;
        po_cones = 3; frequency_mhz = 1000.0 }
  in
  let clocks = Sim.Clock_spec.single ~period:1.0 ~port:"clk" in
  let approx = Sta.Smo.check d ~clocks in
  let exact = Sta.Smo.check ~exact:true d ~clocks in
  check Alcotest.bool "exact setup slack >= class slack" true
    (exact.Sta.Smo.worst_setup_slack >= approx.Sta.Smo.worst_setup_slack -. 1e-9);
  check Alcotest.bool "exact hold slack >= class slack" true
    (exact.Sta.Smo.worst_hold_slack >= approx.Sta.Smo.worst_hold_slack -. 1e-9);
  (* the converted three-phase design agrees too *)
  let config = { (Phase3.Flow.default_config ~period:1.0) with
                 Phase3.Flow.verify_equivalence = false } in
  let r = Phase3.Flow.run ~config d in
  let c3 = Phase3.Flow.clocks_of config in
  let a3 = Sta.Smo.check r.Phase3.Flow.final ~clocks:c3 in
  let e3 = Sta.Smo.check ~exact:true r.Phase3.Flow.final ~clocks:c3 in
  check Alcotest.bool "3-phase: exact >= class" true
    (e3.Sta.Smo.worst_setup_slack >= a3.Sta.Smo.worst_setup_slack -. 1e-9)

let suite =
  suite @ [ Alcotest.test_case "smo exact vs class" `Quick test_smo_exact_vs_class ]

(* Tests for the power model. *)

let check = Alcotest.check

let sample () =
  Circuits.Generator.synthesize
    { Circuits.Generator.name = "pw"; seed = 71; inputs = 8; outputs = 6;
      layers = [|8; 8|]; fanin = 3; cone_depth = 3; self_loop_fraction = 0.2;
      cross_feedback = 0.2; reuse = 0.2; gated_fraction = 0.5; bank_size = 4;
      po_cones = 4; frequency_mhz = 1000.0 }

let measure ?(toggle = 0.4) ?(cycles = 200) d =
  let clocks = Sim.Clock_spec.single ~period:1.0 ~port:"clk" in
  let impl = Physical.Implement.run d in
  let engine = Sim.Engine.create d ~clocks in
  let stim = Sim.Stimulus.random ~seed:7 ~cycles ~toggle_probability:toggle
      (Sim.Stimulus.inputs_of d) in
  ignore (Sim.Engine.run_stream engine stim);
  Power.Estimate.run impl
    ~activity:(Sim.Engine.toggles engine, Sim.Engine.cycles engine) ~period:1.0

let test_groups_positive () =
  let detail = measure (sample ()) in
  let o = detail.Power.Estimate.overall in
  check Alcotest.bool "clock positive" true (o.Power.Estimate.clock > 0.0);
  check Alcotest.bool "seq positive" true (o.Power.Estimate.seq > 0.0);
  check Alcotest.bool "comb positive" true (o.Power.Estimate.comb > 0.0);
  check (Alcotest.float 1e-9) "total = sum"
    (o.Power.Estimate.clock +. o.Power.Estimate.seq +. o.Power.Estimate.comb)
    (Power.Estimate.total o)

let test_leakage_independent_of_activity () =
  let d = sample () in
  let quiet = measure ~toggle:0.01 d in
  let busy = measure ~toggle:0.6 d in
  check (Alcotest.float 1e-9) "leakage equal"
    (Power.Estimate.total { Power.Estimate.clock = quiet.Power.Estimate.leakage.Power.Estimate.clock;
                            seq = quiet.Power.Estimate.leakage.Power.Estimate.seq;
                            comb = quiet.Power.Estimate.leakage.Power.Estimate.comb })
    (Power.Estimate.total { Power.Estimate.clock = busy.Power.Estimate.leakage.Power.Estimate.clock;
                            seq = busy.Power.Estimate.leakage.Power.Estimate.seq;
                            comb = busy.Power.Estimate.leakage.Power.Estimate.comb })

let test_activity_monotone () =
  let d = sample () in
  let quiet = measure ~toggle:0.02 d in
  let busy = measure ~toggle:0.6 d in
  check Alcotest.bool "busier inputs burn more comb power" true
    (busy.Power.Estimate.overall.Power.Estimate.comb
     > quiet.Power.Estimate.overall.Power.Estimate.comb)

let test_dynamic_plus_leakage () =
  let detail = measure (sample ()) in
  let approx = Alcotest.float 1e-9 in
  check approx "clock adds up"
    (detail.Power.Estimate.dynamic.Power.Estimate.clock
     +. detail.Power.Estimate.leakage.Power.Estimate.clock)
    detail.Power.Estimate.overall.Power.Estimate.clock

let test_gating_saves_clock_power () =
  (* a permanently disabled gated bank burns less clock power than an
     always-enabled one: drive en=0 vs en=1 on a hand-made design *)
  let lib = Cell_lib.Default_library.library () in
  let b = Netlist.Builder.create ~name:"bank" ~library:lib in
  let clk = Netlist.Builder.add_input ~clock:true b "clk" in
  let en = Netlist.Builder.add_input b "en" in
  let gck = Netlist.Builder.fresh_net b "gck" in
  ignore (Netlist.Builder.add_cell b "icg" "ICG_X1" [("CK", clk); ("EN", en); ("GCK", gck)]);
  let src = ref (Netlist.Builder.const b false) in
  for k = 0 to 15 do
    let q = Netlist.Builder.fresh_net b (Printf.sprintf "q%d" k) in
    ignore (Netlist.Builder.add_cell b (Printf.sprintf "r%d" k) "DFF_X1"
              [("CK", gck); ("D", !src); ("Q", q)]);
    src := q
  done;
  Netlist.Builder.add_output b "y" !src;
  let d = Netlist.Builder.freeze b in
  let clocks = Sim.Clock_spec.single ~period:1.0 ~port:"clk" in
  let impl = Physical.Implement.run d in
  let run en_v =
    let engine = Sim.Engine.create d ~clocks in
    for _ = 1 to 100 do
      ignore (Sim.Engine.run_cycle engine [("en", en_v)])
    done;
    (Power.Estimate.run impl
       ~activity:(Sim.Engine.toggles engine, Sim.Engine.cycles engine)
       ~period:1.0).Power.Estimate.overall.Power.Estimate.clock
  in
  let off = run Sim.Logic.L0 and on = run Sim.Logic.L1 in
  check Alcotest.bool
    (Printf.sprintf "gated-off clock %.4f < enabled %.4f" off on)
    true (off < on)

let test_glitch_model_favours_latches () =
  (* same structure, FF registers vs latch registers: the FF design's comb
     group carries the higher glitch factor *)
  let d = sample () in
  let config = { (Phase3.Flow.default_config ~period:1.0) with
                 Phase3.Flow.verify_equivalence = false } in
  let r = Phase3.Flow.run ~config d in
  let ff = measure d in
  let clocks3 = Phase3.Flow.clocks_of config in
  let impl3 = Physical.Implement.run r.Phase3.Flow.final in
  let engine = Sim.Engine.create r.Phase3.Flow.final ~clocks:clocks3 in
  let stim = Sim.Stimulus.random ~seed:7 ~cycles:200 ~toggle_probability:0.4
      (Sim.Stimulus.inputs_of r.Phase3.Flow.final) in
  ignore (Sim.Engine.run_stream engine stim);
  let tp = Power.Estimate.run impl3
      ~activity:(Sim.Engine.toggles engine, Sim.Engine.cycles engine) ~period:1.0
  in
  (* with near-identical logic and activity, the latch design's comb group
     is not higher than the FF design's (glitch factor difference) *)
  check Alcotest.bool "comb(3P) <= comb(FF) * 1.1" true
    (tp.Power.Estimate.overall.Power.Estimate.comb
     <= 1.1 *. ff.Power.Estimate.overall.Power.Estimate.comb)

let suite =
  [ Alcotest.test_case "groups positive and additive" `Quick test_groups_positive;
    Alcotest.test_case "leakage independent of activity" `Quick
      test_leakage_independent_of_activity;
    Alcotest.test_case "activity monotone" `Quick test_activity_monotone;
    Alcotest.test_case "dynamic + leakage = overall" `Quick test_dynamic_plus_leakage;
    Alcotest.test_case "gating saves clock power" `Quick test_gating_saves_clock_power;
    Alcotest.test_case "glitch model favours latches" `Quick
      test_glitch_model_favours_latches ]

(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Tables I and II, Figs. 1-4, the run-time discussion), the
   ablation studies from DESIGN.md, and Bechamel micro-benchmarks of the
   flow's expensive steps.

   Usage:
     bench/main.exe                  run everything on the full suite
     bench/main.exe quick            one benchmark per family
     bench/main.exe table1 fig4 ...  selected experiments only
     bench/main.exe micro --json     also write BENCH_sim.json
     bench/main.exe ilp --json       also write BENCH_ilp.json
     bench/main.exe --trace t.json   also write a Chrome trace of the run
                                     (open in chrome://tracing or Perfetto)
                                     and print the Obs summary table
   The suite loop and each benchmark's variants run on multiple domains;
   set THREEPHASE_JOBS=1 to force a serial run.
   Experiments: table1 table2 fig1 fig2 fig3 fig4 runtime
                ablation-solver ablation-cg ablation-retime ablation-ddcg
                ablation-skew ablation-pvt baselines freq-sweep micro ilp *)

let log fmt = Printf.eprintf (fmt ^^ "\n%!")

let wants args name =
  args = [] || List.exists (String.equal name) args

let run_suite quick =
  let benches = if quick then Circuits.Suite.quick () else Circuits.Suite.all () in
  (* benchmarks fan out over domains (THREEPHASE_JOBS); results keep the
     suite order.  The shared cell library parses lazily and Lazy.force
     is not domain-safe, so force it before spawning. *)
  ignore (Cell_lib.Default_library.library ());
  Jobs.parallel_map
    (fun b ->
      log "[suite] running %s ..." b.Circuits.Suite.bench_name;
      let r = Experiments.Runner.run b in
      log "[suite] %s done in %.1fs" b.Circuits.Suite.bench_name
        r.Experiments.Runner.total_time_s;
      r)
    benches

let print_tables ts = List.iter (fun t -> Report.Table.print t; print_newline ()) ts

(* --- Bechamel micro-benchmarks ------------------------------------- *)

let micro ~json () =
  let open Bechamel in
  let bench = match Circuits.Suite.find "s5378" with
    | Some b -> b
    | None -> assert false
  in
  let design = bench.Circuits.Suite.build () in
  let config = Phase3.Flow.default_config ~period:bench.Circuits.Suite.period_ns in
  let asg = Phase3.Assignment.solve design in
  let converted = Phase3.Convert.to_three_phase design asg in
  let clocks = Phase3.Flow.clocks_of config in
  let engine = Sim.Engine.create converted ~clocks in
  let kernel = Sim.Kernel.create converted ~clocks in
  let inputs = Sim.Stimulus.inputs_of converted in
  let stim_cycle =
    match Sim.Stimulus.random ~seed:3 ~cycles:1 ~toggle_probability:0.3 inputs with
    | [cycle] -> cycle
    | _ -> assert false
  in
  let tests =
    Test.make_grouped ~name:"threephase"
      [ Test.make ~name:"table1:assignment-ilp-s5378"
          (Staged.stage (fun () -> Phase3.Assignment.solve ~solver:`Mis design));
        Test.make ~name:"table1:convert-s5378"
          (Staged.stage (fun () -> Phase3.Convert.to_three_phase design asg));
        Test.make ~name:"table1:master-slave-s5378"
          (Staged.stage (fun () -> Phase3.Master_slave.convert design));
        Test.make ~name:"table1:retime-s5378"
          (Staged.stage (fun () -> Phase3.Retime.run converted));
        Test.make ~name:"table1:placement-s5378"
          (Staged.stage (fun () -> Physical.Placement.place design));
        Test.make ~name:"table2:sim-cycle-s5378-3p"
          (Staged.stage (fun () -> ignore (Sim.Engine.run_cycle engine stim_cycle)));
        Test.make ~name:"table2:kernel-cycle-s5378-3p"
          (Staged.stage (fun () -> Sim.Kernel.run_cycle_broadcast kernel stim_cycle));
        Test.make ~name:"table2:smo-check-s5378"
          (Staged.stage (fun () -> Sta.Smo.check converted ~clocks)) ]
  in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 1.5) () in
  let raw = Benchmark.all cfg [Toolkit.Instance.monotonic_clock] tests in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let t =
    Report.Table.create ~title:"Micro-benchmarks (Bechamel, ns/run)"
      [ ("step", Report.Table.Left); ("ns/run", Report.Table.Right) ]
  in
  let rows = Hashtbl.fold (fun name est acc -> (name, est) :: acc) results [] in
  let ns_of est =
    match Bechamel.Analyze.OLS.estimates est with
    | Some [v] -> Some v
    | Some _ | None -> None
  in
  List.iter
    (fun (name, est) ->
      let ns =
        match ns_of est with
        | Some v -> Printf.sprintf "%.0f" v
        | None -> "-"
      in
      Report.Table.add_row t [name; ns])
    (* estimates are abstract, so order rows by name alone *)
    (List.sort (fun (a, _) (b, _) -> String.compare a b) rows);
  Report.Table.print t;
  print_newline ();
  if json then begin
    let contains_sub s sub =
      let n = String.length s and m = String.length sub in
      let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
      go 0
    in
    let find infix =
      List.find_map
        (fun (name, est) ->
          if contains_sub name infix then ns_of est else None)
        rows
    in
    match find "sim-cycle-s5378", find "kernel-cycle-s5378" with
    | Some scalar_ns, Some kernel_ns ->
      let lanes = Sim.Kernel.lanes kernel in
      let per_lane = kernel_ns /. float_of_int lanes in
      let payload =
        Printf.sprintf
          "{\n  \"benchmark\": \"s5378-3phase\",\n  \
           \"scalar_ns_per_cycle\": %.1f,\n  \
           \"kernel_ns_per_cycle\": %.1f,\n  \
           \"lanes\": %d,\n  \
           \"kernel_ns_per_lane_cycle\": %.2f,\n  \
           \"speedup_per_lane_cycle\": %.1f\n}\n"
          scalar_ns kernel_ns lanes per_lane (scalar_ns /. per_lane)
      in
      let oc = open_out "BENCH_sim.json" in
      output_string oc payload;
      close_out oc;
      log "[micro] wrote BENCH_sim.json (%.1fx per lane-cycle)"
        (scalar_ns /. per_lane)
    | _ -> log "[micro] missing simulator estimates; BENCH_sim.json not written"
  end

(* --- ILP solver benchmark ------------------------------------------- *)

(* Phase-assignment ILPs, monolithic vs decomposed (1 job and N jobs).
   The headline instance is the largest circuit where the monolithic
   baseline still proves optimality — beyond that (s1423 up) it cannot
   close the gap at any practical budget while the decomposed solver
   proves the optimum outright, so wall-clock ratios there compare
   different result qualities and are reported but not headlined. *)
let ilp ~quick ~json () =
  let ilp_node_budget = 2000 in
  let mono_cap_vars = 50 in
  let time_best f =
    (* one measured warm-up decides how many repetitions we can afford *)
    let run () =
      let t0 = Unix.gettimeofday () in
      let r = f () in
      (r, Unix.gettimeofday () -. t0)
    in
    let r, t0 = run () in
    let reps = if t0 < 0.01 then 20 else if t0 < 0.5 then 5 else 1 in
    let best = ref t0 in
    for _ = 2 to reps do
      let _, t = run () in
      if t < !best then best := t
    done;
    (r, !best)
  in
  let names = if quick then ["s1196"] else ["s1196"; "s1238"; "s1423"] in
  let t =
    Report.Table.create ~title:"Phase-assignment ILP: monolithic vs decomposed"
      [ ("circuit", Report.Table.Left); ("vars", Report.Table.Right);
        ("comps", Report.Table.Right); ("mono s", Report.Table.Right);
        ("dec 1-job s", Report.Table.Right); ("dec N-job s", Report.Table.Right);
        ("speedup", Report.Table.Right); ("mono obj", Report.Table.Right);
        ("dec obj", Report.Table.Right); ("match", Report.Table.Left) ]
  in
  let headline = ref None in
  let rows =
    List.filter_map
      (fun name ->
        match Circuits.Suite.find name with
        | None -> None
        | Some b ->
          log "[ilp] %s ..." name;
          let d = b.Circuits.Suite.build () in
          let m = Phase3.Assignment.model_of d in
          let n_vars = m.Ilp.Model.num_vars in
          (* the monolithic baseline re-solves the full dense tableau at
             every node: above [mono_cap_vars] variables it cannot prove
             optimality, so cap its budget to keep the run honest about
             time while it reports an incumbent *)
          let mono_budget =
            if n_vars <= mono_cap_vars then ilp_node_budget else 500
          in
          let mono, t_mono =
            time_best (fun () ->
                Ilp.Branch_bound.solve_monolithic ~node_budget:mono_budget m)
          in
          let dec1, t_dec1 =
            time_best (fun () ->
                Ilp.Branch_bound.solve ~parallel:false
                  ~node_budget:ilp_node_budget m)
          in
          let decn, t_decn =
            time_best (fun () ->
                Ilp.Branch_bound.solve ~parallel:true
                  ~node_budget:ilp_node_budget m)
          in
          (match mono, dec1, decn with
           | Some (sm, stm), Some (s1, _), Some (sn, stn) ->
             assert (s1.Ilp.Model.objective = sn.Ilp.Model.objective);
             assert (s1.Ilp.Model.values = sn.Ilp.Model.values);
             let matches =
               Float.abs (sm.Ilp.Model.objective -. sn.Ilp.Model.objective)
               < 1e-6
             in
             let speedup = t_mono /. t_decn in
             Report.Table.add_row t
               [ name; string_of_int n_vars;
                 string_of_int stn.Ilp.Branch_bound.components;
                 Printf.sprintf "%.4f" t_mono;
                 Printf.sprintf "%.4f" t_dec1;
                 Printf.sprintf "%.4f" t_decn;
                 Printf.sprintf "%.1fx" speedup;
                 Printf.sprintf "%g%s" sm.Ilp.Model.objective
                   (if sm.Ilp.Model.optimal then "" else "*");
                 Printf.sprintf "%g%s" sn.Ilp.Model.objective
                   (if sn.Ilp.Model.optimal then "" else "*");
                 (if matches then "yes" else "no") ];
             if matches && sm.Ilp.Model.optimal && sn.Ilp.Model.optimal then
               headline := Some (name, n_vars, t_mono, t_decn, speedup,
                                 sn.Ilp.Model.objective);
             Some
               (Printf.sprintf
                  "    { \"circuit\": \"%s\", \"num_vars\": %d, \
                   \"components\": %d,\n      \
                   \"mono\": { \"time_s\": %.5f, \"objective\": %g, \
                   \"optimal\": %b, \"nodes\": %d },\n      \
                   \"dec_serial\": { \"time_s\": %.5f },\n      \
                   \"dec_parallel\": { \"time_s\": %.5f, \"objective\": %g, \
                   \"optimal\": %b, \"nodes\": %d, \"lp_solves\": %d, \
                   \"propagations\": %d },\n      \
                   \"speedup\": %.2f, \"objectives_match\": %b }"
                  name n_vars stn.Ilp.Branch_bound.components
                  t_mono sm.Ilp.Model.objective sm.Ilp.Model.optimal
                  stm.Ilp.Branch_bound.nodes_explored
                  t_dec1
                  t_decn sn.Ilp.Model.objective sn.Ilp.Model.optimal
                  stn.Ilp.Branch_bound.nodes_explored
                  stn.Ilp.Branch_bound.lp_solves
                  stn.Ilp.Branch_bound.propagations
                  speedup matches)
           | _ ->
             log "[ilp] %s: infeasible model?!" name;
             None))
      names
  in
  Report.Table.print t;
  print_newline ();
  if json then begin
    match !headline with
    | None -> log "[ilp] no comparable instance; BENCH_ilp.json not written"
    | Some (name, n_vars, t_mono, t_decn, speedup, obj) ->
      let payload =
        Printf.sprintf
          "{\n  \"benchmark\": \"phase-assignment-ilp\",\n  \
           \"headline\": { \"circuit\": \"%s\", \"num_vars\": %d, \
           \"mono_s\": %.5f, \"dec_parallel_s\": %.5f, \
           \"speedup\": %.2f, \"objective\": %g, \
           \"objectives_match\": true, \"both_optimal\": true },\n  \
           \"rows\": [\n%s\n  ]\n}\n"
          name n_vars t_mono t_decn speedup obj
          (String.concat ",\n" rows)
      in
      let oc = open_out "BENCH_ilp.json" in
      output_string oc payload;
      close_out oc;
      log "[ilp] wrote BENCH_ilp.json (headline %s: %.1fx)" name speedup
  end

let rec extract_trace acc = function
  | "--trace" :: path :: rest -> (Some path, List.rev_append acc rest)
  | a :: rest -> extract_trace (a :: acc) rest
  | [] -> (None, List.rev acc)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let trace, args = extract_trace [] args in
  let quick = List.exists (String.equal "quick") args in
  let json = List.exists (String.equal "--json") args in
  let args =
    List.filter
      (fun a -> not (String.equal a "quick" || String.equal a "--json"))
      args
  in
  let need_suite =
    List.exists (wants args) ["table1"; "table2"; "runtime"]
  in
  let results = if need_suite then run_suite quick else [] in
  if wants args "table1" then print_tables (Experiments.Tables.table1 results);
  if wants args "table2" then print_tables (Experiments.Tables.table2 results);
  if wants args "fig1" then print_tables [Experiments.Tables.fig1 ()];
  if wants args "fig2" then print_tables [Experiments.Tables.fig2 ()];
  if wants args "fig3" then print_tables [Experiments.Tables.fig3 ()];
  if wants args "fig4" then begin
    log "[fig4] CPU workload sweep ...";
    print_tables [Experiments.Tables.fig4 ()]
  end;
  if wants args "runtime" then
    print_tables
      [ Experiments.Tables.runtime results;
        Experiments.Tables.runtime_stages results ];
  if wants args "ablation-solver" then
    print_tables [Experiments.Ablation.solver ()];
  if wants args "ablation-cg" then
    print_tables [Experiments.Ablation.clock_gating ()];
  if wants args "ablation-retime" then
    print_tables [Experiments.Ablation.retiming ()];
  if wants args "ablation-ddcg" then
    print_tables [Experiments.Ablation.ddcg_fanout ()];
  if wants args "ablation-skew" then
    print_tables [Experiments.Ablation.skew_tolerance ()];
  if wants args "baselines" then
    print_tables [Experiments.Tables.baselines ()];
  if wants args "ablation-pvt" then
    print_tables [Experiments.Ablation.pvt ()];
  if wants args "freq-sweep" then
    print_tables [Experiments.Tables.frequency_sweep ()];
  if wants args "micro" then micro ~json ();
  if wants args "ilp" then ilp ~quick ~json ();
  match trace with
  | None -> ()
  | Some path ->
    Obs.write_chrome_trace path;
    print_tables [Obs.summary_table ()];
    log "[obs] wrote %s" path

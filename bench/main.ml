(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Tables I and II, Figs. 1-4, the run-time discussion), the
   ablation studies from DESIGN.md, and Bechamel micro-benchmarks of the
   flow's expensive steps.

   Usage:
     bench/main.exe                  run everything on the full suite
     bench/main.exe quick            one benchmark per family
     bench/main.exe table1 fig4 ...  selected experiments only
     bench/main.exe micro --json     also write BENCH_sim.json (a QoR record)
     bench/main.exe ilp --json       also write BENCH_ilp.json (a QoR record)
     bench/main.exe simbig --json    domain-parallel kernel gate on the big
                                     sbig circuit, writes BENCH_sim_big.json
                                     (explicit only: not part of the default
                                     everything-run)
     bench/main.exe --qor-dir qor    append QoR run records (suite variants,
                                     micro, ilp) to the given store —
                                     see docs/QOR.md
     bench/main.exe --trace t.json   also write a Chrome trace of the run
                                     (open in chrome://tracing or Perfetto)
                                     and print the Obs summary table
   The suite loop and each benchmark's variants run on multiple domains;
   set THREEPHASE_JOBS=1 to force a serial run.
   Experiments: table1 table2 fig1 fig2 fig3 fig4 runtime
                ablation-solver ablation-cg ablation-retime ablation-ddcg
                ablation-skew ablation-pvt baselines freq-sweep micro ilp
                simbig *)

let log fmt = Printf.eprintf (fmt ^^ "\n%!")

let wants args name =
  args = [] || List.exists (String.equal name) args

let run_suite quick =
  let benches = if quick then Circuits.Suite.quick () else Circuits.Suite.all () in
  (* benchmarks fan out over domains (THREEPHASE_JOBS); results keep the
     suite order.  The shared cell library parses lazily and Lazy.force
     is not domain-safe, so force it before spawning. *)
  ignore (Cell_lib.Default_library.library ());
  Array.to_list
    (Jobs.parallel_mapi_array
       (fun _ b ->
         log "[suite] running %s ..." b.Circuits.Suite.bench_name;
         let r = Experiments.Runner.run b in
         log "[suite] %s done in %.1fs" b.Circuits.Suite.bench_name
           r.Experiments.Runner.total_time_s;
         r)
       (Array.of_list benches))

let print_tables ts = List.iter (fun t -> Report.Table.print t; print_newline ()) ts

(* --- Bechamel micro-benchmarks ------------------------------------- *)

let micro ~json ~qor_dir () =
  let open Bechamel in
  let bench = match Circuits.Suite.find "s5378" with
    | Some b -> b
    | None -> assert false
  in
  let design = bench.Circuits.Suite.build () in
  let config = Phase3.Flow.default_config ~period:bench.Circuits.Suite.period_ns in
  let asg = Phase3.Assignment.solve design in
  let converted = Phase3.Convert.to_three_phase design asg in
  let clocks = Phase3.Flow.clocks_of config in
  let engine = Sim.Engine.create converted ~clocks in
  let kernel = Sim.Kernel.create converted ~clocks in
  let inputs = Sim.Stimulus.inputs_of converted in
  let stim_cycle =
    match Sim.Stimulus.random ~seed:3 ~cycles:1 ~toggle_probability:0.3 inputs with
    | [cycle] -> cycle
    | _ -> assert false
  in
  let tests =
    Test.make_grouped ~name:"threephase"
      [ Test.make ~name:"table1:assignment-ilp-s5378"
          (Staged.stage (fun () -> Phase3.Assignment.solve ~solver:`Mis design));
        Test.make ~name:"table1:convert-s5378"
          (Staged.stage (fun () -> Phase3.Convert.to_three_phase design asg));
        Test.make ~name:"table1:master-slave-s5378"
          (Staged.stage (fun () -> Phase3.Master_slave.convert design));
        Test.make ~name:"table1:retime-s5378"
          (Staged.stage (fun () -> Phase3.Retime.run converted));
        Test.make ~name:"table1:placement-s5378"
          (Staged.stage (fun () -> Physical.Placement.place design));
        Test.make ~name:"table2:sim-cycle-s5378-3p"
          (Staged.stage (fun () -> ignore (Sim.Engine.run_cycle engine stim_cycle)));
        Test.make ~name:"table2:kernel-cycle-s5378-3p"
          (Staged.stage (fun () -> Sim.Kernel.run_cycle_broadcast kernel stim_cycle));
        Test.make ~name:"table2:smo-check-s5378"
          (Staged.stage (fun () -> Sta.Smo.check converted ~clocks)) ]
  in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 1.5) () in
  let raw = Benchmark.all cfg [Toolkit.Instance.monotonic_clock] tests in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let t =
    Report.Table.create ~title:"Micro-benchmarks (Bechamel, ns/run)"
      [ ("step", Report.Table.Left); ("ns/run", Report.Table.Right) ]
  in
  let rows = Hashtbl.fold (fun name est acc -> (name, est) :: acc) results [] in
  let ns_of est =
    match Bechamel.Analyze.OLS.estimates est with
    | Some [v] -> Some v
    | Some _ | None -> None
  in
  List.iter
    (fun (name, est) ->
      let ns =
        match ns_of est with
        | Some v -> Printf.sprintf "%.0f" v
        | None -> "-"
      in
      Report.Table.add_row t [name; ns])
    (* estimates are abstract, so order rows by name alone *)
    (List.sort (fun (a, _) (b, _) -> String.compare a b) rows);
  Report.Table.print t;
  print_newline ();
  if json then begin
    let contains_sub s sub =
      let n = String.length s and m = String.length sub in
      let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
      go 0
    in
    let find infix =
      List.find_map
        (fun (name, est) ->
          if contains_sub name infix then ns_of est else None)
        rows
    in
    match find "sim-cycle-s5378", find "kernel-cycle-s5378" with
    | Some scalar_ns, Some kernel_ns ->
      let lanes = Sim.Kernel.lanes kernel in
      let per_lane = kernel_ns /. float_of_int lanes in
      let kstats = Sim.Kernel.stats kernel in
      let cycles = max 1 (Sim.Kernel.cycles kernel) in
      (* Bechamel estimates are wall-clock and the skip counters depend
         on how many cycles Bechamel chose to run: both live in the
         noisy [wall] section.  Only the lane count, the compile-time
         fusion stats, and the won/lost verdict are deterministic. *)
      let wall =
        ("scalar_ns_per_cycle", scalar_ns)
        :: ("kernel_ns_per_cycle", kernel_ns)
        :: ("kernel_ns_per_lane_cycle", per_lane)
        :: ("kernel_waves_skipped_per_cycle",
            float_of_int kstats.Sim.Kernel.stat_waves_skipped
            /. float_of_int cycles)
        :: ("kernel_cones_skipped_per_cycle",
            float_of_int kstats.Sim.Kernel.stat_cones_skipped
            /. float_of_int cycles)
        :: List.filter_map
             (fun (name, est) ->
               Option.map (fun v -> ("micro." ^ name ^ "_ns", v)) (ns_of est))
             rows
      in
      let record =
        Qor.Record.make
          ~config:
            [ ("bechamel_limit", Qor.Json.Num 200.0);
              ("bechamel_quota_s", Qor.Json.Num 1.5) ]
          ~metrics:
            [ ("sim.lanes", float_of_int lanes);
              ("sim.kernel.units", float_of_int kstats.Sim.Kernel.units);
              ("sim.kernel.fused_ops",
               float_of_int kstats.Sim.Kernel.fused_ops);
              (* the hard perf gate: 1.0 iff one multi-lane kernel cycle
                 is cheaper than one scalar engine cycle *)
              ("sim.kernel_beats_scalar",
               if kernel_ns < scalar_ns then 1.0 else 0.0) ]
          ~headline:
            [ ("benchmark", Qor.Json.Str "s5378-3phase");
              ("scalar_ns_per_cycle", Qor.Json.Num scalar_ns);
              ("kernel_ns_per_cycle", Qor.Json.Num kernel_ns);
              ("lanes", Qor.Json.Num (float_of_int lanes));
              ("kernel_ns_per_lane_cycle", Qor.Json.Num per_lane);
              ("full_cycle_speedup", Qor.Json.Num (scalar_ns /. kernel_ns));
              ("full_cycle_slowdown", Qor.Json.Num (kernel_ns /. scalar_ns));
              ("speedup_per_lane_cycle", Qor.Json.Num (scalar_ns /. per_lane));
              ("fused_ops", Qor.Json.Num (float_of_int kstats.Sim.Kernel.fused_ops));
              ("waves_skipped_per_cycle",
               Qor.Json.Num
                 (float_of_int kstats.Sim.Kernel.stat_waves_skipped
                  /. float_of_int cycles));
              ("cones_skipped_per_cycle",
               Qor.Json.Num
                 (float_of_int kstats.Sim.Kernel.stat_cones_skipped
                  /. float_of_int cycles));
              ("note",
               Qor.Json.Str
                 "gate fusion and activity-gated clock events make one \
                  63-lane kernel cycle cheaper than one scalar engine \
                  cycle, so the kernel wins outright — on top of the \
                  per-lane-cycle advantage of advancing all lanes at \
                  once") ]
          ~wall
          (Qor.Collect.provenance ~kind:"bench.sim" ~circuit:"s5378-3phase")
      in
      let oc = open_out "BENCH_sim.json" in
      output_string oc (Qor.Record.render record);
      close_out oc;
      log
        "[micro] wrote BENCH_sim.json (%.2fx faster per full cycle, %.1fx \
         faster per lane-cycle)"
        (scalar_ns /. kernel_ns)
        (scalar_ns /. per_lane);
      Option.iter
        (fun dir ->
          log "[micro] appended QoR record to %s"
            (Qor.Store.append ~dir record))
        qor_dir
    | _ -> log "[micro] missing simulator estimates; BENCH_sim.json not written"
  end

(* --- ILP solver benchmark ------------------------------------------- *)

(* Phase-assignment ILPs, monolithic vs decomposed (1 job and N jobs).
   The headline instance is the largest circuit where the monolithic
   baseline still proves optimality — beyond that (s1423 up) it cannot
   close the gap at any practical budget while the decomposed solver
   proves the optimum outright, so wall-clock ratios there compare
   different result qualities and are reported but not headlined. *)
let ilp ~quick ~json ~qor_dir () =
  let ilp_node_budget = 2000 in
  let mono_cap_vars = 50 in
  let time_best f =
    (* one measured warm-up decides how many repetitions we can afford *)
    let run () =
      let t0 = Unix.gettimeofday () in
      let r = f () in
      (r, Unix.gettimeofday () -. t0)
    in
    let r, t0 = run () in
    let reps = if t0 < 0.01 then 20 else if t0 < 0.5 then 5 else 1 in
    let best = ref t0 in
    for _ = 2 to reps do
      let _, t = run () in
      if t < !best then best := t
    done;
    (r, !best)
  in
  let names = if quick then ["s1196"] else ["s1196"; "s1238"; "s1423"] in
  let t =
    Report.Table.create ~title:"Phase-assignment ILP: monolithic vs decomposed"
      [ ("circuit", Report.Table.Left); ("vars", Report.Table.Right);
        ("comps", Report.Table.Right); ("mono s", Report.Table.Right);
        ("dec 1-job s", Report.Table.Right); ("dec N-job s", Report.Table.Right);
        ("speedup", Report.Table.Right); ("mono obj", Report.Table.Right);
        ("dec obj", Report.Table.Right); ("match", Report.Table.Left) ]
  in
  let headline = ref None in
  let rows =
    List.filter_map
      (fun name ->
        match Circuits.Suite.find name with
        | None -> None
        | Some b ->
          log "[ilp] %s ..." name;
          let d = b.Circuits.Suite.build () in
          let m = Phase3.Assignment.model_of d in
          let n_vars = m.Ilp.Model.num_vars in
          (* the monolithic baseline re-solves the full dense tableau at
             every node: above [mono_cap_vars] variables it cannot prove
             optimality, so cap its budget to keep the run honest about
             time while it reports an incumbent *)
          let mono_budget =
            if n_vars <= mono_cap_vars then ilp_node_budget else 500
          in
          let mono, t_mono =
            time_best (fun () ->
                Ilp.Branch_bound.solve_monolithic ~node_budget:mono_budget m)
          in
          let dec1, t_dec1 =
            time_best (fun () ->
                Ilp.Branch_bound.solve ~parallel:false
                  ~node_budget:ilp_node_budget m)
          in
          let decn, t_decn =
            time_best (fun () ->
                Ilp.Branch_bound.solve ~parallel:true
                  ~node_budget:ilp_node_budget m)
          in
          (match mono, dec1, decn with
           | Some (sm, stm), Some (s1, _), Some (sn, stn) ->
             assert (s1.Ilp.Model.objective = sn.Ilp.Model.objective);
             assert (s1.Ilp.Model.values = sn.Ilp.Model.values);
             let matches =
               Float.abs (sm.Ilp.Model.objective -. sn.Ilp.Model.objective)
               < 1e-6
             in
             let speedup = t_mono /. t_decn in
             Report.Table.add_row t
               [ name; string_of_int n_vars;
                 string_of_int stn.Ilp.Branch_bound.components;
                 Printf.sprintf "%.4f" t_mono;
                 Printf.sprintf "%.4f" t_dec1;
                 Printf.sprintf "%.4f" t_decn;
                 Printf.sprintf "%.1fx" speedup;
                 Printf.sprintf "%g%s" sm.Ilp.Model.objective
                   (if sm.Ilp.Model.optimal then "" else "*");
                 Printf.sprintf "%g%s" sn.Ilp.Model.objective
                   (if sn.Ilp.Model.optimal then "" else "*");
                 (if matches then "yes" else "no") ];
             if matches && sm.Ilp.Model.optimal && sn.Ilp.Model.optimal then
               headline := Some (name, n_vars, t_mono, t_decn, speedup,
                                 sn.Ilp.Model.objective);
             (* objectives/optimality are deterministic (gated exactly);
                solve times and their ratio are wall-clock (noise band) *)
             let metrics =
               [ (name ^ ".num_vars", float_of_int n_vars);
                 (name ^ ".components",
                  float_of_int stn.Ilp.Branch_bound.components);
                 (name ^ ".mono.objective", sm.Ilp.Model.objective);
                 (name ^ ".mono.optimal",
                  if sm.Ilp.Model.optimal then 1.0 else 0.0);
                 (name ^ ".dec.objective", sn.Ilp.Model.objective);
                 (name ^ ".dec.optimal",
                  if sn.Ilp.Model.optimal then 1.0 else 0.0);
                 (name ^ ".objectives_match", if matches then 1.0 else 0.0) ]
             in
             let wall =
               [ (name ^ ".mono_s", t_mono);
                 (name ^ ".dec_serial_s", t_dec1);
                 (name ^ ".dec_parallel_s", t_decn);
                 (name ^ ".speedup", speedup) ]
             in
             let fl = float_of_int in
             let row_json =
               Qor.Json.Obj
                 [ ("circuit", Qor.Json.Str name);
                   ("num_vars", Qor.Json.Num (fl n_vars));
                   ("components",
                    Qor.Json.Num (fl stn.Ilp.Branch_bound.components));
                   ("mono",
                    Qor.Json.Obj
                      [ ("time_s", Qor.Json.Num t_mono);
                        ("objective", Qor.Json.Num sm.Ilp.Model.objective);
                        ("optimal", Qor.Json.Bool sm.Ilp.Model.optimal);
                        ("nodes",
                         Qor.Json.Num
                           (fl stm.Ilp.Branch_bound.nodes_explored)) ]);
                   ("dec_serial",
                    Qor.Json.Obj [("time_s", Qor.Json.Num t_dec1)]);
                   ("dec_parallel",
                    Qor.Json.Obj
                      [ ("time_s", Qor.Json.Num t_decn);
                        ("objective", Qor.Json.Num sn.Ilp.Model.objective);
                        ("optimal", Qor.Json.Bool sn.Ilp.Model.optimal);
                        ("nodes",
                         Qor.Json.Num
                           (fl stn.Ilp.Branch_bound.nodes_explored));
                        ("lp_solves",
                         Qor.Json.Num (fl stn.Ilp.Branch_bound.lp_solves));
                        ("propagations",
                         Qor.Json.Num
                           (fl stn.Ilp.Branch_bound.propagations)) ]);
                   ("speedup", Qor.Json.Num speedup);
                   ("objectives_match", Qor.Json.Bool matches) ]
             in
             Some (metrics, wall, row_json)
           | _ ->
             log "[ilp] %s: infeasible model?!" name;
             None))
      names
  in
  Report.Table.print t;
  print_newline ();
  if json then begin
    let headline_json =
      ("benchmark", Qor.Json.Str "phase-assignment-ilp")
      ::
      (match !headline with
       | None -> []
       | Some (name, n_vars, t_mono, t_decn, speedup, obj) ->
         [ ("circuit", Qor.Json.Str name);
           ("num_vars", Qor.Json.Num (float_of_int n_vars));
           ("mono_s", Qor.Json.Num t_mono);
           ("dec_parallel_s", Qor.Json.Num t_decn);
           ("speedup", Qor.Json.Num speedup);
           ("objective", Qor.Json.Num obj);
           ("objectives_match", Qor.Json.Bool true);
           ("both_optimal", Qor.Json.Bool true) ])
      @ [("rows", Qor.Json.Arr (List.map (fun (_, _, r) -> r) rows))]
    in
    let record =
      Qor.Record.make
        ~config:
          [ ("node_budget", Qor.Json.Num (float_of_int ilp_node_budget));
            ("mono_cap_vars", Qor.Json.Num (float_of_int mono_cap_vars));
            ("quick", Qor.Json.Bool quick) ]
        ~metrics:(List.concat_map (fun (m, _, _) -> m) rows)
        ~headline:headline_json
        ~wall:(List.concat_map (fun (_, w, _) -> w) rows)
        (Qor.Collect.provenance ~kind:"bench.ilp"
           ~circuit:"phase-assignment-ilp")
    in
    let oc = open_out "BENCH_ilp.json" in
    output_string oc (Qor.Record.render record);
    close_out oc;
    (match !headline with
     | Some (name, _, _, _, speedup, _) ->
       log "[ilp] wrote BENCH_ilp.json (headline %s: %.1fx)" name speedup
     | None -> log "[ilp] wrote BENCH_ilp.json (no headline instance)");
    Option.iter
      (fun dir ->
        log "[ilp] appended QoR record to %s" (Qor.Store.append ~dir record))
      qor_dir
  end

(* --- Domain-parallel simulator benchmark ---------------------------- *)

(* The big-circuit gate for the kernel's domain-parallel waves: on the
   s38417-class [sbig] circuit (~10x s5378's registers, three very wide
   levelized waves) a 4-domain kernel must beat the serial kernel by the
   ratio in [speedup_goal] while producing byte-identical toggles.

   Record layout follows the QoR determinism contract (docs/QOR.md):
   everything in [metrics] is independent of timing AND of the domain
   count — CI diffs two runs of this experiment under THREEPHASE_JOBS=1
   and =4 and any metrics drift fails — while times, speedups and
   per-domain work distribution live in [wall]/[headline]. *)
let simbig ~json ~qor_dir () =
  let speedup_goal = 1.5 in
  let profile_cycles = 12 and perf_cycles = 20 in
  (* Monte-Carlo shape: 252 lanes = 4 bitplane words per net, each lane
     driven by its own random stream, so nearly every cone is dirty at
     every clock event — the workload the parallel waves exist for.  The
     128-unit engage threshold is tuned for this class: one 128-unit
     chunk of fused cones at 4 words dwarfs a pool barrier. *)
  let lanes = 252 and par_threshold = 128 and jobs = 4 in
  let bench =
    match Circuits.Suite.find "sbig" with
    | Some b -> b
    | None -> assert false
  in
  log "[simbig] building sbig ...";
  let design = bench.Circuits.Suite.build () in
  let asg = Phase3.Assignment.solve design in
  let converted = Phase3.Convert.to_three_phase design asg in
  let config =
    Phase3.Flow.default_config ~period:bench.Circuits.Suite.period_ns
  in
  let clocks = Phase3.Flow.clocks_of config in
  let inputs = Sim.Stimulus.inputs_of converted in
  let streams_of ~seed ~cycles =
    Array.init lanes (fun lane ->
        Sim.Stimulus.random ~seed:(seed + lane) ~cycles
          ~toggle_probability:0.35 inputs)
  in
  (* Monte-Carlo profiling pass: the captured per-net toggle rates feed
     the activity-predictive packer of the kernels timed below. *)
  let profile =
    let k = Sim.Kernel.create ~jobs:1 ~lanes converted ~clocks in
    Sim.Kernel.run_streams k (streams_of ~seed:500 ~cycles:profile_cycles);
    Sim.Activity.counts (Sim.Activity.capture_kernel k)
  in
  let stim = streams_of ~seed:9000 ~cycles:perf_cycles in
  let time_best ~reps f =
    f ();  (* warm-up: page in the bitplanes before measuring *)
    let best = ref infinity in
    for _ = 1 to reps do
      let t0 = Unix.gettimeofday () in
      f ();
      let t = Unix.gettimeofday () -. t0 in
      if t < !best then best := t
    done;
    !best
  in
  log "[simbig] timing serial kernel ...";
  let serial =
    Sim.Kernel.create ~jobs:1 ~lanes ~par_threshold ~activity:profile
      converted ~clocks
  in
  let t_serial =
    time_best ~reps:3 (fun () -> Sim.Kernel.run_streams serial stim)
  in
  log "[simbig] timing %d-domain kernel ..." jobs;
  let par =
    Sim.Kernel.create ~lanes ~par_threshold ~activity:profile converted ~clocks
  in
  Sim.Kernel.enable_parallel ~jobs par;
  let t_par = time_best ~reps:3 (fun () -> Sim.Kernel.run_streams par stim) in
  let kstats = Sim.Kernel.stats par in
  Sim.Kernel.disable_parallel par;
  let speedup = t_serial /. t_par in
  let matches = Sim.Kernel.toggles serial = Sim.Kernel.toggles par in
  (* the serial kernel's toggle counts, folded to one exact fingerprint:
     identical for every THREEPHASE_JOBS and every domain count *)
  let toggles = Sim.Kernel.toggles serial in
  let total = Array.fold_left ( + ) 0 toggles in
  let checksum =
    Array.fold_left (fun acc t -> (acc * 131 + t) land 0x3FFFFFFF) 0 toggles
  in
  let sstats = Sim.Kernel.stats serial in
  log "[simbig] serial %.3fs, %d-domain %.3fs: %.2fx (goal %.1fx), %s"
    t_serial jobs t_par speedup speedup_goal
    (if matches then "toggles identical" else "TOGGLE MISMATCH");
  if json then begin
    let fl = float_of_int in
    let par_units =
      Array.to_list
        (Array.mapi
           (fun d u -> (Printf.sprintf "sim.parallel.units.d%d" d, fl u))
           kstats.Sim.Kernel.stat_par_units)
    in
    let record =
      Qor.Record.make
        ~config:
          [ ("profile_cycles", Qor.Json.Num (fl profile_cycles));
            ("perf_cycles", Qor.Json.Num (fl perf_cycles));
            ("lanes", Qor.Json.Num (fl lanes));
            ("par_threshold", Qor.Json.Num (fl par_threshold));
            ("jobs_parallel", Qor.Json.Num (fl jobs));
            ("speedup_goal", Qor.Json.Num speedup_goal) ]
        ~metrics:
          [ ("sim.lanes", fl (Sim.Kernel.lanes serial));
            ("sim.kernel.units", fl sstats.Sim.Kernel.units);
            ("sim.kernel.fused_ops", fl sstats.Sim.Kernel.fused_ops);
            ("sim.kernel.waves_skipped", fl sstats.Sim.Kernel.stat_waves_skipped);
            ("sim.kernel.cones_skipped", fl sstats.Sim.Kernel.stat_cones_skipped);
            ("sim.toggles_total", fl total);
            ("sim.toggles_checksum", fl checksum);
            (* both gates: byte-identical results on every lane, and the
               wall-clock verdict (the only timing-derived metric —
               deterministic on any machine with >= 4 hardware threads) *)
            ("sim.parallel_matches_serial", if matches then 1.0 else 0.0);
            ("sim.parallel_beats_serial",
             if speedup >= speedup_goal then 1.0 else 0.0) ]
        ~headline:
          [ ("benchmark", Qor.Json.Str "sbig-3phase");
            ("serial_s", Qor.Json.Num t_serial);
            ("parallel_s", Qor.Json.Num t_par);
            ("speedup", Qor.Json.Num speedup);
            ("domains", Qor.Json.Num (fl kstats.Sim.Kernel.stat_domains));
            ("par_waves", Qor.Json.Num (fl kstats.Sim.Kernel.stat_par_waves));
            ("load_balance",
             Qor.Json.Num kstats.Sim.Kernel.stat_load_balance);
            ("toggles_identical", Qor.Json.Bool matches);
            ("note",
             Qor.Json.Str
               "activity-packed domain-parallel waves: each levelized \
                wave splits into weight-balanced chunks, one barrier per \
                level, wakes replayed in slot order — byte-identical to \
                the serial kernel at any domain count") ]
        ~wall:
          (("serial_s", t_serial)
           :: ("parallel_s", t_par)
           :: ("speedup", speedup)
           :: ("par_waves", fl kstats.Sim.Kernel.stat_par_waves)
           :: ("load_balance", kstats.Sim.Kernel.stat_load_balance)
           :: par_units)
        (Qor.Collect.provenance ~kind:"bench.sim_big" ~circuit:"sbig-3phase")
    in
    let oc = open_out "BENCH_sim_big.json" in
    output_string oc (Qor.Record.render record);
    close_out oc;
    log "[simbig] wrote BENCH_sim_big.json";
    Option.iter
      (fun dir ->
        log "[simbig] appended QoR record to %s" (Qor.Store.append ~dir record))
      qor_dir
  end

let extract_opt key args =
  let rec go acc = function
    | k :: value :: rest when String.equal k key ->
      (Some value, List.rev_append acc rest)
    | a :: rest -> go (a :: acc) rest
    | [] -> (None, List.rev acc)
  in
  go [] args

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let trace, args = extract_opt "--trace" args in
  let qor_dir, args = extract_opt "--qor-dir" args in
  let quick = List.exists (String.equal "quick") args in
  let json = List.exists (String.equal "--json") args in
  let args =
    List.filter
      (fun a -> not (String.equal a "quick" || String.equal a "--json"))
      args
  in
  let need_suite =
    List.exists (wants args) ["table1"; "table2"; "runtime"]
  in
  let results = if need_suite then run_suite quick else [] in
  Option.iter
    (fun dir ->
      List.iter
        (fun r ->
          List.iter
            (fun record -> ignore (Qor.Store.append ~dir record))
            (Experiments.Runner.records r))
        results;
      if results <> [] then
        log "[suite] appended %d QoR records to %s" (3 * List.length results)
          dir)
    qor_dir;
  if wants args "table1" then print_tables (Experiments.Tables.table1 results);
  if wants args "table2" then print_tables (Experiments.Tables.table2 results);
  if wants args "fig1" then print_tables [Experiments.Tables.fig1 ()];
  if wants args "fig2" then print_tables [Experiments.Tables.fig2 ()];
  if wants args "fig3" then print_tables [Experiments.Tables.fig3 ()];
  if wants args "fig4" then begin
    log "[fig4] CPU workload sweep ...";
    print_tables [Experiments.Tables.fig4 ()]
  end;
  if wants args "runtime" then
    print_tables
      [ Experiments.Tables.runtime results;
        Experiments.Tables.runtime_stages results ];
  if wants args "ablation-solver" then
    print_tables [Experiments.Ablation.solver ()];
  if wants args "ablation-cg" then
    print_tables [Experiments.Ablation.clock_gating ()];
  if wants args "ablation-retime" then
    print_tables [Experiments.Ablation.retiming ()];
  if wants args "ablation-ddcg" then
    print_tables [Experiments.Ablation.ddcg_fanout ()];
  if wants args "ablation-skew" then
    print_tables [Experiments.Ablation.skew_tolerance ()];
  if wants args "baselines" then
    print_tables [Experiments.Tables.baselines ()];
  if wants args "ablation-pvt" then
    print_tables [Experiments.Ablation.pvt ()];
  if wants args "freq-sweep" then
    print_tables [Experiments.Tables.frequency_sweep ()];
  if wants args "micro" then micro ~json ~qor_dir ();
  if wants args "ilp" then ilp ~quick ~json ~qor_dir ();
  if List.exists (String.equal "simbig") args then simbig ~json ~qor_dir ();
  match trace with
  | None -> ()
  | Some path ->
    Obs.write_chrome_trace path;
    print_tables [Obs.summary_table ()];
    log "[obs] wrote %s" path

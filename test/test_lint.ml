(* Tests for the lint subsystem: the diagnostic core (ordering, waivers,
   emitters), the independent phase-legality / hold / clock-network /
   reset audits, RTL lints, and mutation soundness — every injected
   violation class must fire its rule while clean designs stay silent. *)

let check = Alcotest.check

let lib = Cell_lib.Default_library.library ()

module B = Netlist.Builder
module D = Netlist.Design
module Diag = Lint_core.Diagnostic

let three_phase ?(period = 1.0) () =
  Sim.Clock_spec.three_phase ~period ~p1:"p1" ~p2:"p2" ~p3:"p3" ()

let is_infix s sub = Astring.String.is_infix ~affix:sub s

let gen_spec ?(layers = [|6; 6; 5|]) seed =
  { Circuits.Generator.name = Printf.sprintf "lintg%d" seed;
    seed; inputs = 6; outputs = 4; layers; fanin = 3; cone_depth = 4;
    self_loop_fraction = 0.3; cross_feedback = 0.25; reuse = 0.25;
    gated_fraction = 0.4; bank_size = 4; po_cones = 4;
    frequency_mhz = 1000.0 }

(* convert a generated circuit; the flow's own lint stage is left on, so
   reaching the result at all already means the auditor found no error *)
let convert seed =
  let d = Circuits.Generator.synthesize (gen_spec seed) in
  let config =
    { (Phase3.Flow.default_config ~period:1.0) with
      Phase3.Flow.verify_equivalence = false;
      activity_cycles = 16 }
  in
  Phase3.Flow.run ~config d

let rules_of report =
  List.filter_map
    (fun d -> if Diag.is_error d && not d.Diag.waived then Some d.Diag.rule else None)
    report.Lint.Engine.diagnostics

let has_rule report rule = List.exists (String.equal rule) (rules_of report)

(* --- diagnostic core --- *)

let test_diag_order () =
  let d1 = Diag.make ~rule:"NET-005" ~severity:Diag.Warning ~loc:(Diag.Object "b") "w" in
  let d2 = Diag.make ~rule:"PHASE-003" ~severity:Diag.Error ~loc:(Diag.Object "z") "e" in
  let d3 = Diag.make ~rule:"RST-001" ~severity:Diag.Info "i" in
  let d4 = Diag.make ~rule:"PHASE-001" ~severity:Diag.Error ~loc:(Diag.Object "a") "e" in
  let sorted = List.sort Diag.compare [d1; d3; d2; d4] in
  check (Alcotest.list Alcotest.string) "errors first, then rule order"
    ["PHASE-001"; "PHASE-003"; "NET-005"; "RST-001"]
    (List.map (fun d -> d.Diag.rule) sorted);
  let e, w, i = Diag.counts [d1; d2; d3; d4] in
  check Alcotest.(triple int int int) "counts" (2, 1, 1) (e, w, i);
  (* waived entries drop out of the counts but stay in the list *)
  let e, w, i = Diag.counts [{ d2 with Diag.waived = true }; d1] in
  check Alcotest.(triple int int int) "waived not counted" (0, 1, 0) (e, w, i);
  check Alcotest.string "loc strings" "design" (Diag.loc_string Diag.Design_level);
  check Alcotest.string "src loc" "a.sv:3:7"
    (Diag.loc_string (Diag.Src { Diag.file = "a.sv"; line = 3; col = 7 }))

let test_waivers () =
  let gm pattern s = Lint_core.Waiver.glob_match ~pattern s in
  check Alcotest.bool "star suffix" true (gm "PHASE-*" "PHASE-003");
  check Alcotest.bool "anchored" false (gm "NET-1" "NET-001");
  check Alcotest.bool "bare star" true (gm "*" "anything");
  check Alcotest.bool "backtracking" true (gm "a*b*c" "axxbyybzc");
  check Alcotest.bool "no match" false (gm "a*b*c" "axxbyyb");
  (match Lint_core.Waiver.parse "# comment\n\nPHASE-003 mul*\nRST-*\n" with
   | Error e -> Alcotest.failf "parse failed: %s" e
   | Ok entries ->
     check Alcotest.int "two entries" 2 (List.length entries);
     let d1 =
       Diag.make ~rule:"PHASE-003" ~severity:Diag.Error
         ~loc:(Diag.Object "mul$acc3 -> mul$acc4") "borrow"
     in
     let d2 =
       Diag.make ~rule:"PHASE-003" ~severity:Diag.Error
         ~loc:(Diag.Object "pc -> pc2") "borrow"
     in
     let d3 = Diag.make ~rule:"RST-001" ~severity:Diag.Info "no reset" in
     (match Lint_core.Waiver.apply entries [d1; d2; d3] with
      | [w1; w2; w3] ->
        check Alcotest.bool "loc glob waives" true w1.Diag.waived;
        check Alcotest.bool "other loc stays" false w2.Diag.waived;
        check Alcotest.bool "rule glob waives" true w3.Diag.waived
      | _ -> Alcotest.fail "apply changed the list length"));
  (match Lint_core.Waiver.parse "A B C\n" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "three fields should be rejected")

let test_emitters () =
  let ds =
    [ Diag.make ~rule:"PHASE-001" ~severity:Diag.Error ~loc:(Diag.Object "l1 -> l2")
        "same-phase \"arc\"";
      { (Diag.make ~rule:"NET-005" ~severity:Diag.Warning ~loc:(Diag.Object "n")
           "dangles")
        with Diag.waived = true };
      Diag.make ~rule:"RTL-001" ~severity:Diag.Warning
        ~loc:(Diag.Src { Diag.file = "t.sv"; line = 2; col = 5 }) "truncates" ]
  in
  let text = Format.asprintf "%a" (Lint_core.Emit.text ~show_waived:false) ds in
  check Alcotest.bool "text summary" true
    (is_infix text "1 error(s), 1 warning(s), 0 info(s)");
  check Alcotest.bool "waived hidden by default" false (is_infix text "NET-005");
  let text_w = Format.asprintf "%a" (Lint_core.Emit.text ~show_waived:true) ds in
  check Alcotest.bool "waived shown on demand" true (is_infix text_w "(waived)");
  let json = Format.asprintf "%a" Lint_core.Emit.json ds in
  check Alcotest.bool "json has diagnostics" true (is_infix json "\"diagnostics\"");
  check Alcotest.bool "json escapes quotes" true
    (is_infix json "same-phase \\\"arc\\\"");
  check Alcotest.bool "json summary errors" true (is_infix json "\"errors\": 1");
  let sarif = Format.asprintf "%a" (Lint_core.Emit.sarif ?tool_name:None) ds in
  check Alcotest.bool "sarif schema" true (is_infix sarif "sarif-schema-2.1.0");
  check Alcotest.bool "sarif suppressions" true (is_infix sarif "suppressions");
  check Alcotest.bool "sarif physical location" true
    (is_infix sarif "\"startLine\": 2");
  check Alcotest.bool "sarif level note absent" false (is_infix sarif "\"note\"")

let test_excerpt_tab_caret () =
  (* the caret must line up under the token once tabs expand: byte
     column 3 of "\t\tassign" renders at text column 16 *)
  let source = "line1\n\t\tassign y = q;\n" in
  let loc = Netlist_io.Srcloc.make ~file:"t.sv" ~line:2 ~col:3 in
  (match Netlist_io.Srcloc.excerpt ~source loc with
   | None -> Alcotest.fail "excerpt expected"
   | Some e ->
     (match String.split_on_char '\n' e with
      | [text; caret] ->
        check Alcotest.bool "tabs expanded" false (String.contains text '\t');
        check Alcotest.bool "caret line is spaces + ^" true
          (not (String.contains caret '\t'));
        let caret_at = String.index caret '^' in
        let token_at =
          (* the 'a' of "assign" in the expanded, 2-space-prefixed text *)
          Astring.String.find_sub ~sub:"assign" text |> Option.get
        in
        check Alcotest.int "caret under the token" token_at caret_at
      | _ -> Alcotest.fail "excerpt is two lines"));
  (* column past the end of the line clamps instead of raising *)
  let loc = Netlist_io.Srcloc.make ~file:"t.sv" ~line:1 ~col:99 in
  (match Netlist_io.Srcloc.excerpt ~source loc with
   | Some _ -> ()
   | None -> Alcotest.fail "clamped excerpt expected")

(* --- the engine on clean designs --- *)

let test_flow_reports_lint () =
  let r = convert 3 in
  (match r.Phase3.Flow.lint with
   | None -> Alcotest.fail "flow should carry a lint report"
   | Some report ->
     check Alcotest.int "no errors on a converted design" 0
       report.Lint.Engine.errors;
     check Alcotest.bool "report is ok" true (Lint.Engine.ok report));
  check Alcotest.bool "lint stage timed" true
    (List.mem_assoc "lint" r.Phase3.Flow.stage_times)

let test_clean_designs_silent () =
  (* original (single-clock FF) and converted (3-phase) suite designs
     both audit clean; only warnings and infos remain *)
  let d = Circuits.Generator.synthesize Circuits.Iscas.s1196 in
  let clocks = Sim.Clock_spec.single ~period:1.0 ~port:"clk" in
  let report = Lint.Engine.run d ~clocks in
  check Alcotest.int "s1196 original has no errors" 0 report.Lint.Engine.errors;
  let r = convert 11 in
  let report =
    Lint.Engine.run r.Phase3.Flow.final ~clocks:(three_phase ())
  in
  check Alcotest.int "converted design has no errors" 0
    report.Lint.Engine.errors;
  List.iter
    (fun rule -> Alcotest.failf "unexpected error rule %s" rule)
    (rules_of report)

(* --- mutation soundness: injected violations must fire --- *)

(* two transparent-high latches on the same phase with only a buffer
   between them: a transparency race the auditor must reject *)
let test_same_phase_race () =
  let b = B.create ~name:"race" ~library:lib in
  let p1 = B.add_input ~clock:true b "p1" in
  let _p2 = B.add_input ~clock:true b "p2" in
  let _p3 = B.add_input ~clock:true b "p3" in
  let d_in = B.add_input b "d" in
  let n1 = B.fresh_net b "n1" in
  ignore (B.add_cell b "l1" "LATH_X1" [("E", p1); ("D", d_in); ("Q", n1)]);
  let n2 = B.fresh_net b "n2" in
  ignore (B.add_cell b "u1" "BUF_X2" [("A", n1); ("Z", n2)]);
  let n3 = B.fresh_net b "n3" in
  ignore (B.add_cell b "l2" "LATH_X1" [("E", p1); ("D", n2); ("Q", n3)]);
  B.add_output b "y" n3;
  let d = B.freeze b in
  let report = Lint.Engine.run d ~clocks:(three_phase ()) in
  check Alcotest.bool "PHASE-001 fires" true (has_rule report "PHASE-001")

let enable_pin_of d i =
  match (D.cell d i).Cell_lib.Cell.kind with
  | Cell_lib.Cell.Latch { enable_pin; _ } -> enable_pin
  | _ -> Alcotest.failf "%s is not a latch" (D.inst_name d i)

let data_pin_of d i =
  match (D.cell d i).Cell_lib.Cell.kind with
  | Cell_lib.Cell.Latch { data_pin; _ } | Cell_lib.Cell.Flip_flop { data_pin; _ } ->
    data_pin
  | _ -> Alcotest.failf "%s is not sequential" (D.inst_name d i)

(* retarget the enable of one inserted p2 latch to another phase's port:
   the phase-sequence audit must notice even though the assignment that
   produced the design was optimal *)
let retarget_enable d ~victim ~port =
  let pnet =
    match D.find_input d port with
    | Some n -> n
    | None -> Alcotest.failf "no port %s" port
  in
  let rw = Netlist.Rewrite.start d in
  List.iter
    (fun i ->
      if String.equal (D.inst_name d i) victim then
        Netlist.Rewrite.copy_inst
          ~override:[(enable_pin_of d i, Netlist.Rewrite.map_net rw pnet)]
          rw i
      else Netlist.Rewrite.copy_inst rw i)
    (D.insts d);
  Netlist.Rewrite.finish rw

let inserted_p2_latches d =
  List.filter
    (fun i ->
      Cell_lib.Cell.is_latch (D.cell d i)
      && is_infix (D.inst_name d i) Phase3.Convert.p2_suffix)
    (D.sequential_insts d)

let test_phase_skip_mutation () =
  let final = (convert 5).Phase3.Flow.final in
  match inserted_p2_latches final with
  | [] -> Alcotest.fail "no inserted p2 latch to mutate"
  | victim :: _ ->
    let mutated =
      retarget_enable final ~victim:(D.inst_name final victim) ~port:"p1"
    in
    let report = Lint.Engine.run mutated ~clocks:(three_phase ()) in
    check Alcotest.bool "phase mutation is caught" true
      (report.Lint.Engine.errors > 0);
    check Alcotest.bool "a PHASE rule fires" true
      (List.exists (fun r -> is_infix r "PHASE-0") (rules_of report))

(* stretch one latch's data path with a long buffer chain: the borrow on
   that arc overruns the transparency window *)
let test_borrow_overrun_mutation () =
  let final = (convert 7).Phase3.Flow.final in
  let victim =
    match inserted_p2_latches final with
    | v :: _ -> v
    | [] -> Alcotest.fail "no latch to mutate"
  in
  let vname = D.inst_name final victim in
  let rw = Netlist.Rewrite.start final in
  List.iter
    (fun i ->
      if String.equal (D.inst_name final i) vname then begin
        let dn = Option.get (D.data_net_of final i) in
        let src = ref (Netlist.Rewrite.map_net rw dn) in
        let b = Netlist.Rewrite.builder rw in
        for k = 1 to 30 do
          let out = B.fresh_net b (Printf.sprintf "mut_n%d" k) in
          ignore
            (B.add_cell b (Printf.sprintf "mut_buf%d" k) "BUF_X2"
               [("A", !src); ("Z", out)]);
          src := out
        done;
        Netlist.Rewrite.copy_inst
          ~override:[(data_pin_of final i, !src)] rw i
      end
      else Netlist.Rewrite.copy_inst rw i)
    (D.insts final);
  let mutated = Netlist.Rewrite.finish rw in
  let report = Lint.Engine.run mutated ~clocks:(three_phase ()) in
  check Alcotest.bool "borrow overrun is caught" true
    (List.exists
       (fun r -> String.equal r "PHASE-002" || String.equal r "PHASE-003")
       (rules_of report))

(* gate a latch enable with an ICG whose EN is computed from the clock
   itself: a glitch-prone gated clock the clock-network audit rejects *)
let test_gated_clock_glitch_mutation () =
  let b = B.create ~name:"glitch" ~library:lib in
  let p1 = B.add_input ~clock:true b "p1" in
  let _p2 = B.add_input ~clock:true b "p2" in
  let _p3 = B.add_input ~clock:true b "p3" in
  let d_in = B.add_input b "d" in
  let en = B.fresh_net b "en" in
  ignore (B.add_cell b "u_en" "AND2_X1" [("A1", p1); ("A2", d_in); ("Z", en)]);
  let gck = B.fresh_net b "gck" in
  ignore (B.add_cell b "u_icg" "ICG_X1" [("CK", p1); ("EN", en); ("GCK", gck)]);
  let q = B.fresh_net b "q" in
  ignore (B.add_cell b "l1" "LATH_X1" [("E", gck); ("D", d_in); ("Q", q)]);
  B.add_output b "y" q;
  let d = B.freeze b in
  let report = Lint.Engine.run d ~clocks:(three_phase ()) in
  check Alcotest.bool "CLK-003 fires on a clock-derived enable" true
    (has_rule report "CLK-003");
  check Alcotest.bool "CLK-002 fires on the clock-to-data sink" true
    (has_rule report "CLK-002")

let test_undriven_mutation () =
  let b = B.create ~name:"undriven" ~library:lib in
  let _clk = B.add_input ~clock:true b "clock" in
  let a = B.add_input b "a" in
  let floating = B.fresh_net b "floating" in
  let y = B.fresh_net b "y" in
  ignore (B.add_cell b "u1" "AND2_X1" [("A1", a); ("A2", floating); ("Z", y)]);
  B.add_output b "y" y;
  let d = B.freeze b in
  let report =
    Lint.Engine.run d ~clocks:(Sim.Clock_spec.single ~period:1.0 ~port:"clock")
  in
  check Alcotest.bool "NET-001 fires" true (has_rule report "NET-001")

(* --- RTL lints collected during elaboration --- *)

let elab_lints src =
  let _, findings =
    Elab.Diag.collect (fun () ->
        Elab.Elaborate.read ~file:"t.sv" ~library:lib src)
  in
  List.map (fun d -> d.Diag.rule) findings

let test_rtl_lints () =
  let rules =
    elab_lints
      "module m(input logic clk, input logic [7:0] a, output logic [3:0] y);\n\
       \  always_ff @(posedge clk) y <= a;\nendmodule\n"
  in
  check Alcotest.bool "RTL-001 truncation" true
    (List.mem "RTL-001" rules);
  let rules =
    elab_lints
      "module m(input logic [1:0] s, output logic y);\n\
       \  always_comb begin\n\
       \    case (s)\n\
       \      2'd1: y = 1'b1;\n\
       \      3'd5: y = 1'b0;\n\
       \      2'd1: y = 1'b0;\n\
       \      default: y = 1'b0;\n\
       \    endcase\n\
       \  end\nendmodule\n"
  in
  check Alcotest.int "RTL-002 never-match and duplicate" 2
    (List.length (List.filter (String.equal "RTL-002") rules));
  let rules =
    elab_lints
      "module m(input logic a, output logic y);\n\
       \  logic unused;\n\
       \  assign unused = a;\n\
       \  assign y = a;\nendmodule\n"
  in
  check Alcotest.bool "RTL-003 never read" true (List.mem "RTL-003" rules);
  let rules =
    elab_lints
      "module m(input logic a, output logic y);\n\
       \  logic ghost;\n\
       \  assign y = a & ghost;\nendmodule\n"
  in
  check Alcotest.bool "RTL-004 never driven" true (List.mem "RTL-004" rules);
  (* a clean module stays silent *)
  check (Alcotest.list Alcotest.string) "clean module" []
    (elab_lints
       "module m(input logic a, input logic b, output logic y);\n\
        \  assign y = a & b;\nendmodule\n")

(* --- cross-check against the hold fixer --- *)

let test_hold_cross_check () =
  let final = (convert 13).Phase3.Flow.final in
  let clocks = three_phase () in
  let tight =
    { Lint.Engine.default_config with Lint.Engine.hold_margin = 0.1 }
  in
  let before = Lint.Engine.run ~config:tight final ~clocks in
  check Alcotest.bool "HOLD-001 fires under a tight margin" true
    (has_rule before "HOLD-001");
  let fixed, stats = Sta.Hold_fix.run ~hold_margin:0.1 final ~clocks in
  check Alcotest.bool "hold fixer converged" true stats.Sta.Hold_fix.fixed;
  let after = Lint.Engine.run ~config:tight fixed ~clocks in
  check Alcotest.bool "HOLD-001 silent after the fix" false
    (has_rule after "HOLD-001")

(* --- waivers end to end --- *)

let test_waived_report () =
  let final = (convert 5).Phase3.Flow.final in
  let victim =
    match inserted_p2_latches final with
    | v :: _ -> D.inst_name final v
    | [] -> Alcotest.fail "no latch"
  in
  let mutated = retarget_enable final ~victim ~port:"p1" in
  let clocks = three_phase () in
  let dirty = Lint.Engine.run mutated ~clocks in
  check Alcotest.bool "mutation reports errors" true (dirty.Lint.Engine.errors > 0);
  (* waiving every firing rule drives the error count to zero while the
     findings stay visible in the diagnostic list *)
  let waivers =
    List.map
      (fun rule ->
        { Lint_core.Waiver.rule_pattern = rule; loc_pattern = "*"; line = 1 })
      (List.sort_uniq String.compare (rules_of dirty))
  in
  let waived = Lint.Engine.run ~waivers mutated ~clocks in
  check Alcotest.int "waived errors gone" 0 waived.Lint.Engine.errors;
  check Alcotest.bool "waived findings kept" true
    (List.exists (fun d -> d.Diag.waived) waived.Lint.Engine.diagnostics)

(* --- qcheck: soundness over generated circuits --- *)

let qcheck_converted_clean =
  QCheck.Test.make ~count:6 ~name:"converted designs audit clean"
    QCheck.(int_range 20 2000)
    (fun seed ->
      (* the flow raises when its lint stage finds an error *)
      let r = convert seed in
      match r.Phase3.Flow.lint with
      | Some report -> report.Lint.Engine.errors = 0
      | None -> false)

let qcheck_phase_mutation_caught =
  QCheck.Test.make ~count:6 ~name:"phase mutations never go unnoticed"
    QCheck.(pair (int_range 20 2000) bool)
    (fun (seed, to_p1) ->
      let final = (convert seed).Phase3.Flow.final in
      match inserted_p2_latches final with
      | [] -> QCheck.assume_fail ()
      | v :: _ ->
        let mutated =
          retarget_enable final ~victim:(D.inst_name final v)
            ~port:(if to_p1 then "p1" else "p3")
        in
        let report = Lint.Engine.run mutated ~clocks:(three_phase ()) in
        report.Lint.Engine.errors > 0)

let suite =
  [ Alcotest.test_case "diagnostic ordering and counts" `Quick test_diag_order;
    Alcotest.test_case "waiver globs, parsing, application" `Quick test_waivers;
    Alcotest.test_case "text, json and sarif emitters" `Quick test_emitters;
    Alcotest.test_case "excerpt caret aligns across tabs" `Quick
      test_excerpt_tab_caret;
    Alcotest.test_case "flow carries the lint report" `Quick
      test_flow_reports_lint;
    Alcotest.test_case "clean designs are silent" `Quick
      test_clean_designs_silent;
    Alcotest.test_case "same-phase transparency race" `Quick
      test_same_phase_race;
    Alcotest.test_case "phase-skip mutation caught" `Quick
      test_phase_skip_mutation;
    Alcotest.test_case "borrow-overrun mutation caught" `Quick
      test_borrow_overrun_mutation;
    Alcotest.test_case "gated-clock glitch caught" `Quick
      test_gated_clock_glitch_mutation;
    Alcotest.test_case "undriven net caught" `Quick test_undriven_mutation;
    Alcotest.test_case "rtl lints fire and stay silent" `Quick test_rtl_lints;
    Alcotest.test_case "hold audit agrees with the fixer" `Quick
      test_hold_cross_check;
    Alcotest.test_case "waivers suppress but keep findings" `Quick
      test_waived_report;
    QCheck_alcotest.to_alcotest qcheck_converted_clean;
    QCheck_alcotest.to_alcotest qcheck_phase_mutation_caught ]

(* Golden-test helper: elaborate a .sv file and print the flat
   structural-Verilog netlist on stdout.  The dune rules in this
   directory diff its output against the committed golden_*.v files;
   regenerate them with `dune promote` after an intentional change. *)

let () =
  let path = Sys.argv.(1) in
  let ic = open_in path in
  let src = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let library = Cell_lib.Default_library.library () in
  match Elab.Elaborate.read ~file:path ~library src with
  | d -> print_string (Netlist_io.Verilog.write d)
  | exception Elab.Diag.Error (_, msg) ->
    prerr_endline msg;
    exit 1

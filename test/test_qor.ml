(* QoR run records, diffing and the regression gate (lib/qor). *)

let prov ?(kind = "test") ?(circuit = "unit") () =
  { Qor.Record.circuit;
    kind;
    git_rev = None;
    jobs = 1;
    hostname = "testhost";
    timestamp = "2026-01-01T00:00:00Z" }

let mk ?(metrics = []) ?(counters = []) ?(wall = []) ?(gauges = []) () =
  Qor.Record.make ~metrics ~counters ~wall ~gauges (prov ())

let cls_of diff name =
  match List.find_opt (fun e -> e.Qor.Diff.name = name) diff.Qor.Diff.entries with
  | Some e -> Qor.Diff.cls_name e.Qor.Diff.cls
  | None -> Alcotest.failf "no diff entry for %s" name

let check_cls diff name expected =
  Alcotest.(check string) name expected (cls_of diff name)

(* --- diff: exact sections -------------------------------------------- *)

let test_exact_gate () =
  let baseline = mk ~metrics:[("latch.count", 8.0); ("power.total_mw", 2.0)] () in
  (* a lower count is an improvement, but the gate is a ratchet: any
     deterministic change fails until the baseline is refreshed *)
  let current = mk ~metrics:[("latch.count", 7.0); ("power.total_mw", 2.0)] () in
  let d = Qor.Diff.run ~baseline current in
  check_cls d "latch.count" "improved";
  check_cls d "power.total_mw" "unchanged";
  Alcotest.(check (list string)) "gate failures" ["latch.count"]
    d.Qor.Diff.gate_failures;
  Alcotest.(check bool) "gate fails on improvement" false (Qor.Diff.ok d)

let test_exact_direction () =
  let baseline =
    mk ~metrics:[("timing.worst_setup_slack_ns", 0.1); ("area.cells_um2", 25.0)]
      ()
  in
  let current =
    mk ~metrics:[("timing.worst_setup_slack_ns", 0.2); ("area.cells_um2", 26.0)]
      ()
  in
  let d = Qor.Diff.run ~baseline current in
  check_cls d "timing.worst_setup_slack_ns" "improved";
  check_cls d "area.cells_um2" "REGRESSED"

let test_missing_metric () =
  let baseline = mk ~metrics:[("ff.count", 5.0); ("latch.count", 8.0)] () in
  let current = mk ~metrics:[("cg.coverage", 1.0); ("ff.count", 5.0)] () in
  let d = Qor.Diff.run ~baseline current in
  check_cls d "latch.count" "MISSING (current)";
  check_cls d "cg.coverage" "new";
  (* a vanished metric fails the gate; a new one does not *)
  Alcotest.(check (list string)) "gate failures" ["latch.count"]
    d.Qor.Diff.gate_failures

let test_nan_inf () =
  let baseline =
    mk
      ~metrics:
        [ ("a.nan", Float.nan); ("b.nan_vs_finite", Float.nan);
          ("c.inf", Float.infinity); ("d.finite_vs_nan", 1.0) ]
      ()
  in
  let current =
    mk
      ~metrics:
        [ ("a.nan", Float.nan); ("b.nan_vs_finite", 0.5);
          ("c.inf", Float.infinity); ("d.finite_vs_nan", Float.nan) ]
      ()
  in
  let d = Qor.Diff.run ~baseline current in
  check_cls d "a.nan" "unchanged";
  check_cls d "b.nan_vs_finite" "REGRESSED";
  check_cls d "c.inf" "unchanged";
  check_cls d "d.finite_vs_nan" "REGRESSED"

(* --- diff: noisy sections -------------------------------------------- *)

let test_zero_baseline_abs_floor () =
  (* relative band of a 0.0 baseline is 0; only the absolute floor
     keeps tiny absolute jitter from flagging *)
  let baseline = mk ~wall:[("stage.fast", 0.0); ("stage.slow", 0.0)] () in
  let current = mk ~wall:[("stage.fast", 0.005); ("stage.slow", 0.02)] () in
  let d = Qor.Diff.run ~baseline current in
  check_cls d "stage.fast" "unchanged";
  check_cls d "stage.slow" "REGRESSED";
  Alcotest.(check (list string)) "wall regressions" ["stage.slow"]
    d.Qor.Diff.wall_regressions;
  Alcotest.(check (list string)) "gate untouched" [] d.Qor.Diff.gate_failures;
  Alcotest.(check bool) "ok by default" true (Qor.Diff.ok d);
  Alcotest.(check bool) "fails with fail_on_wall" false
    (Qor.Diff.ok ~fail_on_wall:true d)

let test_band_boundary_inclusive () =
  (* |delta| = noise_band * |baseline| exactly: inside the band *)
  let baseline = mk ~wall:[("flow.total_s", 2.0)] ~gauges:[("gc.heap", 2.0)] () in
  let at = mk ~wall:[("flow.total_s", 3.0)] ~gauges:[("gc.heap", 1.0)] () in
  let beyond = mk ~wall:[("flow.total_s", 3.01)] ~gauges:[("gc.heap", 0.98)] () in
  let d_at = Qor.Diff.run ~noise_band:0.5 ~baseline at in
  check_cls d_at "flow.total_s" "unchanged";
  check_cls d_at "gc.heap" "unchanged";
  let d_beyond = Qor.Diff.run ~noise_band:0.5 ~abs_floor:0.0 ~baseline beyond in
  check_cls d_beyond "flow.total_s" "REGRESSED";
  check_cls d_beyond "gc.heap" "improved"

(* --- diff: histogram readouts and attribution ------------------------ *)

let hist_of l = List.fold_left Obs.Histogram.add Obs.Histogram.empty l

let test_hist_gate () =
  let baseline =
    Qor.Record.make
      ~hists:[("ilp.component_nodes", hist_of [1.0; 2.0; 4.0])]
      (prov ())
  in
  let same =
    Qor.Record.make
      ~hists:[("ilp.component_nodes", hist_of [1.0; 2.0; 4.0])]
      (prov ())
  in
  let d = Qor.Diff.run ~baseline same in
  Alcotest.(check (list string)) "identical hists gate clean" []
    d.Qor.Diff.gate_failures;
  (* one extra sample moves count and p99: both flagged, exactly *)
  let moved =
    Qor.Record.make
      ~hists:[("ilp.component_nodes", hist_of [1.0; 2.0; 4.0; 64.0])]
      (prov ())
  in
  let d = Qor.Diff.run ~baseline moved in
  Alcotest.(check bool) "hist change fails the gate" false (Qor.Diff.ok d);
  Alcotest.(check bool) "count flagged" true
    (List.mem "ilp.component_nodes.count" d.Qor.Diff.gate_failures);
  Alcotest.(check bool) "max flagged" true
    (List.mem "ilp.component_nodes.max" d.Qor.Diff.gate_failures);
  Alcotest.(check bool) "p50 not flagged" true
    (not (List.mem "ilp.component_nodes.p50" d.Qor.Diff.gate_failures))

let test_attribution () =
  (* power regressed, and the power stage's own telemetry moved with
     it: the diff must name the co-located counter as a suspect *)
  let baseline =
    Qor.Record.make
      ~metrics:[("power.total_mw", 2.0); ("assign.objective", 3.0)]
      ~counters:
        [("sim.kernel.events", 1000); ("ilp.nodes", 40); ("lint.checks", 7)]
      (prov ())
  in
  let current =
    Qor.Record.make
      ~metrics:[("power.total_mw", 2.5); ("assign.objective", 4.0)]
      ~counters:
        [("sim.kernel.events", 1800); ("ilp.nodes", 90); ("lint.checks", 7)]
      (prov ())
  in
  let d = Qor.Diff.run ~baseline current in
  let find metric =
    match
      List.find_opt
        (fun a -> a.Qor.Diff.at_metric = metric)
        d.Qor.Diff.attributions
    with
    | Some a -> a
    | None -> Alcotest.failf "no attribution for %s" metric
  in
  let power = find "power.total_mw" in
  Alcotest.(check string) "power owned by power stage" "power"
    power.Qor.Diff.at_stage;
  Alcotest.(check (list string)) "kernel counter is the suspect"
    ["sim.kernel.events"]
    (List.map (fun s -> s.Qor.Diff.su_name) power.Qor.Diff.at_suspects);
  let assign = find "assign.objective" in
  Alcotest.(check string) "objective owned by assign stage" "assign"
    assign.Qor.Diff.at_stage;
  Alcotest.(check (list string)) "solver counter is the suspect"
    ["ilp.nodes"]
    (List.map (fun s -> s.Qor.Diff.su_name) assign.Qor.Diff.at_suspects);
  (* the unchanged lint counter accuses nobody *)
  Alcotest.(check bool) "attribution lines name the stage" true
    (List.exists
       (fun l -> Astring.String.is_infix ~affix:"stage power" l)
       (Qor.Diff.attribution_lines d))

(* --- trend ------------------------------------------------------------ *)

let test_trend_anomaly_rule () =
  (* too little history: never flagged *)
  Alcotest.(check bool) "3 points never flag" false
    (Qor.Trend.anomalous [1.0; 1.0; 9.0]);
  (* constant history, constant latest: clean *)
  Alcotest.(check bool) "flat is clean" false
    (Qor.Trend.anomalous [5.0; 5.0; 5.0; 5.0; 5.0]);
  (* constant history (MAD = 0), any deviation flags *)
  Alcotest.(check bool) "MAD=0 deviation flags" true
    (Qor.Trend.anomalous [5.0; 5.0; 5.0; 5.0; 5.1]);
  (* jittery history absorbs a small move *)
  Alcotest.(check bool) "inside 3.5 sigma" false
    (Qor.Trend.anomalous [10.0; 11.0; 9.0; 10.5; 10.2]);
  (* far outlier flags *)
  Alcotest.(check bool) "far outlier flags" true
    (Qor.Trend.anomalous [10.0; 11.0; 9.0; 10.5; 30.0]);
  Alcotest.(check bool) "NaN latest flags" true
    (Qor.Trend.anomalous [1.0; 1.0; 1.0; Float.nan])

let test_trend_series () =
  let at ts metrics wall =
    { (Qor.Record.make ~metrics ~wall (prov ())) with
      Qor.Record.prov = { (prov ()) with Qor.Record.timestamp = ts } }
  in
  let records =
    [ at "t1" [("ff.count", 5.0)] [("stage.assign", 0.1)];
      at "t2" [("ff.count", 5.0)] [("stage.assign", 0.2)];
      at "t3" [("ff.count", 5.0)] [("stage.assign", 0.1)];
      at "t4" [("ff.count", 9.0)] [("stage.assign", 0.15)] ]
  in
  let series = Qor.Trend.series_of_records records in
  let find name =
    match
      List.find_opt (fun s -> s.Qor.Trend.sr_name = name) series
    with
    | Some s -> s
    | None -> Alcotest.failf "no series for %s" name
  in
  let ff = find "ff.count" in
  Alcotest.(check int) "four points" 4 (List.length ff.Qor.Trend.sr_points);
  Alcotest.(check (list string)) "points keep record order"
    ["t1"; "t2"; "t3"; "t4"]
    (List.map fst ff.Qor.Trend.sr_points);
  Alcotest.(check bool) "deterministic series" true
    ff.Qor.Trend.sr_deterministic;
  Alcotest.(check bool) "MAD=0 jump is anomalous" true
    ff.Qor.Trend.sr_anomaly;
  let wall = find "stage.assign" in
  Alcotest.(check bool) "wall series is noisy" false
    wall.Qor.Trend.sr_deterministic;
  (* only deterministic anomalies are CI-worthy *)
  Alcotest.(check (list string)) "anomalies pick the metric"
    ["ff.count"]
    (List.map
       (fun s -> s.Qor.Trend.sr_name)
       (Qor.Trend.anomalies series));
  Alcotest.(check bool) "sparkline renders" true
    (String.length (Qor.Trend.sparkline [1.0; 2.0; 3.0]) > 0)

(* --- record render / parse ------------------------------------------- *)

let test_render_roundtrip () =
  let r =
    Qor.Record.make
      ~config:[("solver", Qor.Json.Str "auto"); ("retime", Qor.Json.Bool true)]
      ~metrics:
        [ ("z.last", 1.0); ("a.first", 0.1); ("n.nan", Float.nan);
          ("i.inf", Float.infinity); ("m.neg_inf", Float.neg_infinity);
          ("t.tiny", 1e-300); ("x.pi", 4.0 *. atan 1.0) ]
      ~counters:[("b.count", 2); ("a.count", 40)]
      ~hists:
        [ ("h.sizes", hist_of [1.0; 2.0; 2.1; 700.0]);
          ("h.with_underflow", hist_of [0.0; -1.0; 3.0]) ]
      ~wall:[("stage.x", 0.25)]
      ~gauges:[("gc.heap_words", 12345.0)]
      ~spans:[{ Qor.Record.span_name = "flow.convert"; calls = 1; total_s = 0.1 }]
      ~tree:
        [ { Qor.Record.t_name = "flow.convert";
            t_calls = 1;
            t_total_s = 0.1;
            t_self_s = 0.04;
            t_children =
              [ { Qor.Record.t_name = "qor.power";
                  t_calls = 1;
                  t_total_s = 0.06;
                  t_self_s = 0.06;
                  t_children = [] } ] } ]
      (prov ())
  in
  let text = Qor.Record.render r in
  let r2 =
    match Qor.Record.parse text with
    | Ok r2 -> r2
    | Error e -> Alcotest.failf "parse failed: %s" e
  in
  Alcotest.(check string) "render/parse round-trips bytes" text
    (Qor.Record.render r2);
  (* maps come back sorted (canonical order) *)
  Alcotest.(check (list string)) "metrics sorted"
    [ "a.first"; "i.inf"; "m.neg_inf"; "n.nan"; "t.tiny"; "x.pi"; "z.last" ]
    (List.map fst r2.Qor.Record.metrics);
  (match Qor.Record.metric r2 "n.nan" with
   | Some v -> Alcotest.(check bool) "nan survives" true (Float.is_nan v)
   | None -> Alcotest.fail "n.nan lost");
  (match Qor.Record.metric r2 "i.inf" with
   | Some v ->
     Alcotest.(check bool) "inf survives" true (v = Float.infinity)
   | None -> Alcotest.fail "i.inf lost");
  (* counters resolve through the unified metric lookup too *)
  Alcotest.(check (option (float 0.0))) "counter lookup" (Some 40.0)
    (Qor.Record.metric r2 "a.count");
  (* histograms and the span tree survive the round-trip structurally *)
  (match List.assoc_opt "h.with_underflow" r2.Qor.Record.hists with
   | Some h ->
     Alcotest.(check int) "hist underflow survives" 2
       (Obs.Histogram.underflow h)
   | None -> Alcotest.fail "h.with_underflow lost");
  (match r2.Qor.Record.tree with
   | [root] ->
     Alcotest.(check string) "tree root survives" "flow.convert"
       root.Qor.Record.t_name;
     Alcotest.(check int) "tree child survives" 1
       (List.length root.Qor.Record.t_children)
   | _ -> Alcotest.fail "tree lost")

let test_unknown_fields_tolerated () =
  let text = Qor.Record.render (mk ~metrics:[("ff.count", 5.0)] ()) in
  (* graft unknown fields at the top level and inside provenance; a
     same-version reader must ignore them *)
  let body = String.sub text 1 (String.length text - 1) in
  let with_extras = "{\n  \"future_top_level\": {\"x\": 1}," ^ body in
  (match Qor.Record.parse with_extras with
   | Ok r ->
     Alcotest.(check (option (float 0.0))) "metric kept" (Some 5.0)
       (Qor.Record.metric r "ff.count")
   | Error e -> Alcotest.failf "unknown top-level field rejected: %s" e)

let test_reader_strictness () =
  let good = mk () in
  let json = Qor.Record.to_json good in
  let without key =
    match json with
    | Qor.Json.Obj kvs ->
      Qor.Json.Obj (List.filter (fun (k, _) -> k <> key) kvs)
    | _ -> assert false
  in
  let replace key v =
    match json with
    | Qor.Json.Obj kvs ->
      Qor.Json.Obj (List.map (fun (k, x) -> (k, if k = key then v else x)) kvs)
    | _ -> assert false
  in
  (match Qor.Record.of_json (without "circuit") with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "missing circuit accepted");
  (match Qor.Record.of_json (replace "schema_version" (Qor.Json.Num 99.0)) with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "future schema version accepted");
  (match Qor.Record.of_json (replace "metrics" (Qor.Json.Str "oops")) with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "ill-typed metrics accepted")

(* --- store ----------------------------------------------------------- *)

let test_store () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "qor-test-%d" (Unix.getpid ()))
  in
  let r1 = mk ~metrics:[("ff.count", 5.0)] () in
  let r2 = mk ~metrics:[("ff.count", 6.0)] () in
  let p1 = Qor.Store.append ~dir r1 in
  let p2 = Qor.Store.append ~dir r2 in
  (* identical provenance, so the second file gets a collision suffix *)
  Alcotest.(check bool) "distinct run files" true (p1 <> p2);
  (match Qor.Store.load p1 with
   | Ok r -> Alcotest.(check string) "file round-trip"
               (Qor.Record.render r1) (Qor.Record.render r)
   | Error e -> Alcotest.failf "load failed: %s" e);
  let h = Qor.Store.history ~dir in
  Alcotest.(check int) "two history lines" 2 (List.length h);
  (match Qor.Store.latest ~dir ~kind:"test" ~circuit:"unit" () with
   | Some r ->
     Alcotest.(check (option (float 0.0))) "latest is second append"
       (Some 6.0) (Qor.Record.metric r "ff.count")
   | None -> Alcotest.fail "latest found nothing");
  Alcotest.(check bool) "kind filter excludes" true
    (Qor.Store.latest ~dir ~kind:"flow" ~circuit:"unit" () = None)

(* --- end-to-end: flow record against itself and a perturbed baseline - *)

let quickstart_design () =
  let ic = open_in "../examples/quickstart.bench" in
  let src = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let library = Cell_lib.Default_library.library () in
  Netlist_io.Bench_format.parse ~name:"quickstart" ~library src

let test_flow_record_gate () =
  Obs.reset ();
  let d = quickstart_design () in
  let config = Phase3.Flow.default_config ~period:1.0 in
  let result = Phase3.Flow.run ~config d in
  let record = Qor.Collect.of_flow ~circuit:"quickstart" result in
  (* the acceptance property: a record gates cleanly against itself *)
  let self = Qor.Diff.run ~baseline:record record in
  Alcotest.(check (list string)) "self-diff gate" []
    self.Qor.Diff.gate_failures;
  Alcotest.(check (list string)) "self-diff wall" []
    self.Qor.Diff.wall_regressions;
  (* perturb one deterministic metric plus a co-located stage counter
     in the baseline: the gate must name exactly those entries, and
     the attribution must rank the counter as a suspect for the
     metric's owning stage *)
  let perturbed =
    { record with
      Qor.Record.metrics =
        List.map
          (fun (k, v) ->
            if k = "power.total_mw" then (k, v *. 0.9) else (k, v))
          record.Qor.Record.metrics;
      Qor.Record.counters =
        List.map
          (fun (k, v) ->
            if k = "sim.kernel.lane_cycles" then (k, v / 2) else (k, v))
          record.Qor.Record.counters }
  in
  let diff = Qor.Diff.run ~baseline:perturbed record in
  Alcotest.(check (list string)) "gate names the entries"
    ["power.total_mw"; "sim.kernel.lane_cycles"] diff.Qor.Diff.gate_failures;
  Alcotest.(check bool) "gate fails" false (Qor.Diff.ok diff);
  (match
     List.find_opt
       (fun a -> a.Qor.Diff.at_metric = "power.total_mw")
       diff.Qor.Diff.attributions
   with
   | Some a ->
     Alcotest.(check string) "owning stage" "power" a.Qor.Diff.at_stage;
     Alcotest.(check bool) "kernel counter among suspects" true
       (List.exists
          (fun s -> s.Qor.Diff.su_name = "sim.kernel.lane_cycles")
          a.Qor.Diff.at_suspects)
   | None -> Alcotest.fail "no attribution for power.total_mw");
  let md = Qor.Diff.markdown diff in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (needle ^ " in markdown") true
        (Astring.String.is_infix ~affix:needle md))
    ["Gate: FAIL"; "power.total_mw"];
  Alcotest.(check bool) "self markdown passes" true
    (Astring.String.is_infix ~affix:"Gate: PASS" (Qor.Diff.markdown self));
  (* the flow record carries the new telemetry: deterministic solver
     and kernel histograms, and the span call tree *)
  Alcotest.(check bool) "record has kernel wave histogram" true
    (List.mem_assoc "sim.kernel.wave.units" record.Qor.Record.hists);
  Alcotest.(check bool) "record has solver histograms" true
    (List.mem_assoc "ilp.component_vars" record.Qor.Record.hists);
  Alcotest.(check bool) "record has a span tree" true
    (record.Qor.Record.tree <> [])

let test_html_report () =
  Obs.reset ();
  let d = quickstart_design () in
  let config = Phase3.Flow.default_config ~period:1.0 in
  let result = Phase3.Flow.run ~config d in
  let record = Qor.Collect.of_flow ~circuit:"quickstart" result in
  let html = Qor.Report_html.page ~history:[record; record] record in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (needle ^ " in page") true
        (Astring.String.is_infix ~affix:needle html))
    [ "<!DOCTYPE html>"; "quickstart"; "Span tree"; "Histograms";
      "sim.kernel.wave.units"; "power.total_mw"; "</html>" ];
  (* self-contained: no external fetches of any kind *)
  List.iter
    (fun banned ->
      Alcotest.(check bool) ("no " ^ banned) false
        (Astring.String.is_infix ~affix:banned html))
    ["src=\"http"; "href=\"http"; "<script"; "@import"; "url("];
  (* diff mode carries the verdict and the suspects *)
  let perturbed =
    { record with
      Qor.Record.metrics =
        List.map
          (fun (k, v) ->
            if k = "power.total_mw" then (k, v *. 0.9) else (k, v))
          record.Qor.Record.metrics;
      Qor.Record.counters =
        List.map
          (fun (k, v) ->
            if k = "sim.kernel.lane_cycles" then (k, v / 2) else (k, v))
          record.Qor.Record.counters }
  in
  let html = Qor.Report_html.page ~baseline:perturbed record in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (needle ^ " in diff page") true
        (Astring.String.is_infix ~affix:needle html))
    ["Gate: FAIL"; "Suspects"; "sim.kernel.lane_cycles"]

let suite =
  [ Alcotest.test_case "exact change fails the gate in either direction" `Quick
      test_exact_gate;
    Alcotest.test_case "direction conventions (slack up, area down)" `Quick
      test_exact_direction;
    Alcotest.test_case "missing metric gates, new metric reports" `Quick
      test_missing_metric;
    Alcotest.test_case "NaN/inf compare structurally" `Quick test_nan_inf;
    Alcotest.test_case "zero baseline uses the absolute floor" `Quick
      test_zero_baseline_abs_floor;
    Alcotest.test_case "noise band boundary is inclusive" `Quick
      test_band_boundary_inclusive;
    Alcotest.test_case "histogram readouts gate exactly" `Quick test_hist_gate;
    Alcotest.test_case "regressions attribute to co-located telemetry" `Quick
      test_attribution;
    Alcotest.test_case "trend anomaly rule (median/MAD)" `Quick
      test_trend_anomaly_rule;
    Alcotest.test_case "trend series split deterministic vs noisy" `Quick
      test_trend_series;
    Alcotest.test_case "render/parse round-trip incl. NaN and inf" `Quick
      test_render_roundtrip;
    Alcotest.test_case "reader tolerates unknown fields" `Quick
      test_unknown_fields_tolerated;
    Alcotest.test_case "reader rejects missing/ill-typed/future" `Quick
      test_reader_strictness;
    Alcotest.test_case "store appends, loads, lists history" `Quick test_store;
    Alcotest.test_case "flow record gates against itself and perturbation"
      `Quick test_flow_record_gate;
    Alcotest.test_case "html report is self-contained and carries suspects"
      `Quick test_html_report ]

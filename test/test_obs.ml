(* lib/obs: span structure, cross-domain counter merging, the Chrome
   trace_event exporter, and the flow-level guarantee that every enabled
   stage emits exactly one span. *)

(* --- a minimal JSON parser, just enough to validate our exporter ---- *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  exception Bad of string

  let parse (s : string) : t =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') -> advance (); skip_ws ()
      | _ -> ()
    in
    let expect c =
      match peek () with
      | Some c' when c' = c -> advance ()
      | _ -> fail (Printf.sprintf "expected %c" c)
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        match peek () with
        | None -> fail "unterminated string"
        | Some '"' -> advance ()
        | Some '\\' ->
          advance ();
          (match peek () with
           | Some 'n' -> Buffer.add_char buf '\n'; advance ()
           | Some 't' -> Buffer.add_char buf '\t'; advance ()
           | Some 'r' -> Buffer.add_char buf '\r'; advance ()
           | Some 'u' ->
             advance ();
             for _ = 1 to 4 do
               (match peek () with
                | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
                | _ -> fail "bad \\u escape")
             done;
             Buffer.add_char buf '?'
           | Some c -> Buffer.add_char buf c; advance ()
           | None -> fail "unterminated escape");
          go ()
        | Some c -> Buffer.add_char buf c; advance (); go ()
      in
      go ();
      Buffer.contents buf
    in
    let parse_number () =
      let start = !pos in
      let is_num_char = function
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while (match peek () with Some c when is_num_char c -> true | _ -> false) do
        advance ()
      done;
      match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some f -> Num f
      | None -> fail "bad number"
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then (advance (); Obj [])
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); members ((k, v) :: acc)
            | Some '}' -> advance (); Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected , or }"
          in
          members []
        end
      | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then (advance (); Arr [])
        else begin
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); elements (v :: acc)
            | Some ']' -> advance (); Arr (List.rev (v :: acc))
            | _ -> fail "expected , or ]"
          in
          elements []
        end
      | Some '"' -> Str (parse_string ())
      | Some 't' -> pos := !pos + 4; Bool true
      | Some 'f' -> pos := !pos + 5; Bool false
      | Some 'n' -> pos := !pos + 4; Null
      | Some _ -> parse_number ()
      | None -> fail "unexpected end of input"
    in
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v

  let member k = function
    | Obj kvs -> List.assoc_opt k kvs
    | _ -> None
end

(* Validate a Chrome trace_event JSON document: top-level object with a
   traceEvents array; every event carries name/ph/pid (and tid/ts for
   B/E/C); B/E events balance like brackets per tid with matching
   names and non-decreasing timestamps. *)
let validate_chrome_trace (text : string) =
  let doc = Json.parse text in
  let events =
    match Json.member "traceEvents" doc with
    | Some (Json.Arr evs) -> evs
    | _ -> Alcotest.fail "no traceEvents array"
  in
  let stacks : (int, (string * float) list ref) Hashtbl.t = Hashtbl.create 8 in
  let stack_of tid =
    match Hashtbl.find_opt stacks tid with
    | Some r -> r
    | None ->
      let r = ref [] in
      Hashtbl.add stacks tid r;
      r
  in
  let str k e =
    match Json.member k e with
    | Some (Json.Str s) -> s
    | _ -> Alcotest.fail (Printf.sprintf "event missing string %S" k)
  in
  let num k e =
    match Json.member k e with
    | Some (Json.Num f) -> f
    | _ -> Alcotest.fail (Printf.sprintf "event missing number %S" k)
  in
  List.iter
    (fun e ->
      let ph = str "ph" e in
      let name = str "name" e in
      ignore (num "pid" e);
      match ph with
      | "M" -> ()
      | "B" | "E" | "C" ->
        let tid = int_of_float (num "tid" e) in
        let ts = num "ts" e in
        let stack = stack_of tid in
        (match !stack with
         | (_, prev_ts) :: _ when ts < prev_ts -.1e-9 ->
           Alcotest.fail
             (Printf.sprintf "timestamp moved backwards on tid %d" tid)
         | _ -> ());
        (match ph with
         | "B" -> stack := (name, ts) :: !stack
         | "E" ->
           (match !stack with
            | (top, _) :: rest when String.equal top name -> stack := rest
            | (top, _) :: _ ->
              Alcotest.fail
                (Printf.sprintf "E %S does not match open span %S" name top)
            | [] -> Alcotest.fail (Printf.sprintf "E %S with no open span" name))
         | _ ->
           (match Json.member "args" e with
            | Some (Json.Obj _) -> ()
            | _ -> Alcotest.fail "C event without args"))
      | other -> Alcotest.fail (Printf.sprintf "unknown phase %S" other))
    events;
  Hashtbl.iter
    (fun tid stack ->
      if !stack <> [] then
        Alcotest.fail (Printf.sprintf "tid %d left %d spans open" tid
                         (List.length !stack)))
    stacks;
  List.length events

(* --- span structure -------------------------------------------------- *)

let test_span_nesting () =
  Obs.reset ();
  let r =
    Obs.span "outer" (fun () ->
        Obs.span "inner_a" (fun () -> ());
        Obs.span "inner_b" (fun () -> 7))
  in
  Alcotest.(check int) "span returns" 7 r;
  let evs = List.concat_map snd (Obs.events ()) in
  let names =
    List.filter_map
      (function
        | Obs.Begin { name; _ } -> Some ("B:" ^ name)
        | Obs.End { name; _ } -> Some ("E:" ^ name)
        | Obs.Count _ | Obs.Gauge _ | Obs.Hist _ -> None)
      evs
  in
  Alcotest.(check (list string)) "B/E order"
    [ "B:outer"; "B:inner_a"; "E:inner_a"; "B:inner_b"; "E:inner_b"; "E:outer" ]
    names;
  let stats = Obs.span_stats () in
  Alcotest.(check int) "three names" 3 (List.length stats);
  Alcotest.(check int) "outer calls" 1 (Obs.calls_of "outer");
  let outer = Obs.time_of "outer" in
  let inner = Obs.time_of "inner_a" +. Obs.time_of "inner_b" in
  Alcotest.(check bool) "outer covers inners" true (outer >= inner)

let test_span_exception () =
  Obs.reset ();
  (try Obs.span "boom" (fun () -> failwith "expected") with Failure _ -> ());
  Alcotest.(check int) "End recorded despite raise" 1 (Obs.calls_of "boom");
  ignore (validate_chrome_trace (Obs.chrome_trace ()))

(* --- counters and gauges --------------------------------------------- *)

let test_counter_merge_deterministic () =
  Obs.reset ();
  let items = List.init 40 (fun i -> i + 1) in
  let serial = List.map (fun i -> Obs.count "merge.serial" i; i) items in
  let parallel = Jobs.parallel_map (fun i -> Obs.count "merge.parallel" i; i) items in
  Alcotest.(check (list int)) "parallel_map order preserved" serial parallel;
  let expected = List.fold_left ( + ) 0 items in
  (* the parallel sum lands across several domain buffers, the serial
     one in a single buffer: the merged totals must be identical *)
  Alcotest.(check int) "serial total" expected (Obs.counter_of "merge.serial");
  Alcotest.(check int) "parallel total" expected (Obs.counter_of "merge.parallel");
  Alcotest.(check int) "absent counter is 0" 0 (Obs.counter_of "no.such")

let test_gauge_max_merge () =
  Obs.reset ();
  ignore
    (Jobs.parallel_map
       (fun v -> Obs.gauge "g.depth" (float_of_int v))
       [3; 41; 7; 2]);
  Obs.gauge "g.depth" 5.0;
  match List.assoc_opt "g.depth" (Obs.gauges ()) with
  | Some v -> Alcotest.(check (float 1e-9)) "max wins" 41.0 v
  | None -> Alcotest.fail "gauge missing"

(* --- Chrome exporter ------------------------------------------------- *)

let test_chrome_roundtrip () =
  Obs.reset ();
  Obs.span "stage \"one\"" (fun () ->
      Obs.count "events" 3;
      Obs.span "nested\n" (fun () -> Obs.gauge "depth" 2.0));
  ignore
    (Jobs.parallel_map
       (fun i -> Obs.span "worker" (fun () -> Obs.count "events" i))
       [1; 2; 3]);
  let n = validate_chrome_trace (Obs.chrome_trace ()) in
  Alcotest.(check bool) "several events survive" true (n >= 8)

let test_summary_table () =
  Obs.reset ();
  Obs.span "sum.span" (fun () -> Obs.count "sum.counter" 11);
  Obs.gauge "sum.gauge" 1.5;
  let text = Report.Table.render (Obs.summary_table ()) in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (needle ^ " in summary") true
        (Astring.String.is_infix ~affix:needle text))
    ["sum.span"; "sum.counter"; "sum.gauge"; "11"]

(* --- histograms ------------------------------------------------------- *)

let test_hist_bucket_boundaries () =
  let idx = Obs.Histogram.bucket_index in
  (* quarter-octave buckets: [2^o * (1 + s/4), 2^o * (1 + (s+1)/4)) *)
  Alcotest.(check int) "1.0 -> 0" 0 (idx 1.0);
  Alcotest.(check int) "1.25 -> 1" 1 (idx 1.25);
  Alcotest.(check int) "1.5 -> 2" 2 (idx 1.5);
  Alcotest.(check int) "1.75 -> 3" 3 (idx 1.75);
  Alcotest.(check int) "2.0 -> 4" 4 (idx 2.0);
  Alcotest.(check int) "0.5 -> -4" (-4) (idx 0.5);
  Alcotest.(check int) "0.75 -> -2" (-2) (idx 0.75);
  (* the lower boundary belongs to its bucket; a hair below does not *)
  Alcotest.(check int) "2.5 -> 5" 5 (idx 2.5);
  Alcotest.(check int) "just below 2.5" 4 (idx 2.4999999);
  (* lower/upper reconstruct the bucket the value hashed into *)
  List.iter
    (fun v ->
      let i = idx v in
      Alcotest.(check bool)
        (Printf.sprintf "%g in [lower, upper) of bucket %d" v i)
        true
        (Obs.Histogram.bucket_lower i <= v
         && v < Obs.Histogram.bucket_upper i))
    [1.0; 1.1; 1.25; 2.0; 3.7; 0.5; 0.013; 1234.5; 7e18; 1e-12];
  (* buckets tile: upper of i = lower of i+1 *)
  List.iter
    (fun i ->
      Alcotest.(check (float 0.0))
        (Printf.sprintf "bucket %d tiles" i)
        (Obs.Histogram.bucket_upper i)
        (Obs.Histogram.bucket_lower (i + 1)))
    [-9; -4; -1; 0; 3; 4; 17]

let test_hist_percentiles () =
  let h =
    List.fold_left Obs.Histogram.add Obs.Histogram.empty
      (List.init 100 (fun i -> float_of_int (i + 1)))
  in
  Alcotest.(check int) "count" 100 (Obs.Histogram.count h);
  Alcotest.(check (float 0.0)) "max is exact" 100.0 (Obs.Histogram.max_value h);
  (* nearest-rank percentile lands in the right bucket: the readout is
     the bucket midpoint, so check bucket membership not equality *)
  let check_pct q lo hi =
    let v = Obs.Histogram.percentile h q in
    Alcotest.(check bool)
      (Printf.sprintf "p%.0f in [%g, %g]" (100.0 *. q) lo hi)
      true
      (lo <= v && v <= hi)
  in
  (* rank 50 -> value 50, bucket [48, 56) *)
  check_pct 0.50 48.0 56.0;
  (* rank 99 -> value 99, bucket [96, 112) clamped by max *)
  check_pct 0.99 96.0 100.0;
  (* p100 is clamped by the exact max *)
  Alcotest.(check (float 0.0)) "p100 <= max" 100.0
    (Float.max (Obs.Histogram.percentile h 1.0) 100.0);
  (* non-positive and NaN samples land in underflow, not buckets *)
  let hu = Obs.Histogram.add (Obs.Histogram.add h 0.0) (-3.0) in
  Alcotest.(check int) "underflow counted" 2 (Obs.Histogram.underflow hu);
  Alcotest.(check int) "underflow in count" 102 (Obs.Histogram.count hu);
  Alcotest.(check (float 0.0)) "underflow reads as 0" 0.0
    (Obs.Histogram.percentile hu 0.01)

let hist_arbitrary =
  let gen =
    QCheck.Gen.(
      list_size (int_bound 60)
        (map
           (fun (sign, m) ->
             (* spread across magnitudes, include non-positives *)
             if sign = 0 then 0.0
             else if sign = 1 then -.m
             else m *. m *. m)
           (pair (int_bound 4) (float_bound_inclusive 50.0))))
  in
  QCheck.make
    ~print:(fun l -> String.concat ";" (List.map string_of_float l))
    gen

let prop_hist_merge_is_sequential_add =
  QCheck.Test.make ~name:"hist merge == sequential add" ~count:200
    (QCheck.pair hist_arbitrary hist_arbitrary)
    (fun (xs, ys) ->
      let of_list l = List.fold_left Obs.Histogram.add Obs.Histogram.empty l in
      let merged = Obs.Histogram.merge (of_list xs) (of_list ys) in
      let seq = of_list (xs @ ys) in
      String.equal (Obs.Histogram.to_string merged)
        (Obs.Histogram.to_string seq))

let prop_hist_merge_commutes =
  QCheck.Test.make ~name:"hist merge commutes and associates" ~count:200
    (QCheck.triple hist_arbitrary hist_arbitrary hist_arbitrary)
    (fun (xs, ys, zs) ->
      let of_list l = List.fold_left Obs.Histogram.add Obs.Histogram.empty l in
      let a = of_list xs and b = of_list ys and c = of_list zs in
      let s = Obs.Histogram.to_string in
      String.equal (s (Obs.Histogram.merge a b)) (s (Obs.Histogram.merge b a))
      && String.equal
           (s (Obs.Histogram.merge (Obs.Histogram.merge a b) c))
           (s (Obs.Histogram.merge a (Obs.Histogram.merge b c))))

let test_hist_cross_domain_merge () =
  Obs.reset ();
  let items = List.init 40 (fun i -> float_of_int (i + 1)) in
  List.iter (fun v -> Obs.hist "h.serial" v) items;
  ignore (Jobs.parallel_map (fun v -> Obs.hist "h.parallel" v) items);
  let find name =
    match List.assoc_opt name (Obs.histograms ()) with
    | Some h -> h
    | None -> Alcotest.failf "histogram %s missing" name
  in
  (* scattering samples across domain buffers must merge to the same
     bytes as the single-buffer serial run *)
  Alcotest.(check string) "order-independent merge"
    (Obs.Histogram.to_string (find "h.serial"))
    (Obs.Histogram.to_string (find "h.parallel"));
  (* exec-shaped histograms live in a separate channel *)
  Obs.hist ~exec:true "h.exec" 5.0;
  Alcotest.(check bool) "exec hist not in deterministic set" true
    (List.assoc_opt "h.exec" (Obs.histograms ()) = None);
  Alcotest.(check bool) "exec hist in exec set" true
    (List.assoc_opt "h.exec" (Obs.exec_histograms ()) <> None)

(* --- span tree -------------------------------------------------------- *)

let test_span_tree () =
  Obs.reset ();
  Obs.span "outer" (fun () ->
      Obs.span "child_a" (fun () ->
          Obs.span "grand" (fun () -> ()));
      Obs.span "child_b" (fun () -> ()));
  Obs.span "outer" (fun () -> Obs.span "child_a" (fun () -> ()));
  let tree = Obs.span_tree () in
  Alcotest.(check int) "one root" 1 (List.length tree);
  let outer = List.hd tree in
  Alcotest.(check string) "root name" "outer" outer.Obs.node_name;
  Alcotest.(check int) "root calls merged" 2 outer.Obs.n_calls;
  Alcotest.(check (list string)) "children sorted by name"
    ["child_a"; "child_b"]
    (List.map (fun n -> n.Obs.node_name) outer.Obs.n_children);
  let child_a = List.hd outer.Obs.n_children in
  Alcotest.(check int) "child_a calls merged" 2 child_a.Obs.n_calls;
  Alcotest.(check string) "path is /-joined" "outer/child_a"
    child_a.Obs.path;
  (* self = total - child time, never negative *)
  Alcotest.(check bool) "root self <= total" true
    (0.0 <= outer.Obs.n_self_s && outer.Obs.n_self_s <= outer.Obs.n_total_s);
  let child_total =
    List.fold_left
      (fun acc n -> acc +. n.Obs.n_total_s)
      0.0 outer.Obs.n_children
  in
  Alcotest.(check bool) "self + children ~ total" true
    (Float.abs (outer.Obs.n_self_s +. child_total -. outer.Obs.n_total_s)
     < 1e-6)

let test_summary_table_hists () =
  Obs.reset ();
  Obs.hist "sum.hist" 4.0;
  Obs.hist ~exec:true "sum.exec_hist" 2.0;
  let text = Report.Table.render (Obs.summary_table ()) in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (needle ^ " in summary") true
        (Astring.String.is_infix ~affix:needle text))
    ["sum.hist"; "sum.exec_hist"]

(* --- flow-level guarantee -------------------------------------------- *)

let quickstart_design () =
  let ic = open_in "../examples/quickstart.bench" in
  let src = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let library = Cell_lib.Default_library.library () in
  Netlist_io.Bench_format.parse ~name:"quickstart" ~library src

let test_flow_stage_spans () =
  Obs.reset ();
  let d = quickstart_design () in
  let config = Phase3.Flow.default_config ~period:1.0 in
  let result = Phase3.Flow.run ~config d in
  (* with the default config every pipeline stage is enabled: each must
     emit exactly one flow.<stage> span and one stage_times entry *)
  List.iter
    (fun stage ->
      Alcotest.(check int) ("one span for " ^ stage) 1
        (Obs.calls_of ("flow." ^ stage)))
    Phase3.Flow.stage_names;
  Alcotest.(check (list string)) "stage_times order"
    Phase3.Flow.stage_names
    (List.map fst result.Phase3.Flow.stage_times);
  List.iter
    (fun (stage, t) ->
      Alcotest.(check bool) (stage ^ " time sane") true (t >= 0.0 && t < 60.0))
    result.Phase3.Flow.stage_times;
  Alcotest.(check bool) "solver counters flowed" true
    (Obs.counter_of "assign.registers" > 0);
  Alcotest.(check bool) "kernel counters flowed" true
    (Obs.counter_of "sim.kernel.lane_cycles" > 0);
  ignore (validate_chrome_trace (Obs.chrome_trace ()))

let test_flow_disabled_stages () =
  Obs.reset ();
  let d = quickstart_design () in
  let config =
    { (Phase3.Flow.default_config ~period:1.0) with
      Phase3.Flow.retime = false;
      verify_equivalence = false }
  in
  let result = Phase3.Flow.run ~config d in
  Alcotest.(check int) "no retime span" 0 (Obs.calls_of "flow.retime");
  Alcotest.(check int) "no equivalence span" 0 (Obs.calls_of "flow.equivalence");
  Alcotest.(check int) "smo span still present" 1 (Obs.calls_of "flow.smo");
  Alcotest.(check bool) "stage_times skips disabled stages" true
    (not (List.mem_assoc "retime" result.Phase3.Flow.stage_times))

let suite =
  [ Alcotest.test_case "span nesting produces ordered B/E pairs" `Quick
      test_span_nesting;
    Alcotest.test_case "span records End on exception" `Quick
      test_span_exception;
    Alcotest.test_case "counter merge is deterministic across domains" `Quick
      test_counter_merge_deterministic;
    Alcotest.test_case "gauge merge takes the maximum" `Quick
      test_gauge_max_merge;
    Alcotest.test_case "chrome trace round-trips a validator" `Quick
      test_chrome_roundtrip;
    Alcotest.test_case "summary table renders every metric kind" `Quick
      test_summary_table;
    Alcotest.test_case "histogram bucket boundaries are exact" `Quick
      test_hist_bucket_boundaries;
    Alcotest.test_case "histogram percentiles on known inputs" `Quick
      test_hist_percentiles;
    QCheck_alcotest.to_alcotest prop_hist_merge_is_sequential_add;
    QCheck_alcotest.to_alcotest prop_hist_merge_commutes;
    Alcotest.test_case "histogram merge is order-independent across domains"
      `Quick test_hist_cross_domain_merge;
    Alcotest.test_case "span tree reconstructs nesting with self time" `Quick
      test_span_tree;
    Alcotest.test_case "summary table renders histograms" `Quick
      test_summary_table_hists;
    Alcotest.test_case "every enabled flow stage emits exactly one span" `Quick
      test_flow_stage_spans;
    Alcotest.test_case "disabled flow stages emit no span" `Quick
      test_flow_disabled_stages ]

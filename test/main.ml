let () =
  Alcotest.run "threephase"
    [ ("cell_lib", Test_cell_lib.suite);
      ("netlist", Test_netlist.suite);
      ("netlist_io", Test_netlist_io.suite);
      ("lp", Test_lp.suite);
      ("ilp", Test_ilp.suite);
      ("sim", Test_sim.suite);
      ("kernel", Test_kernel.suite);
      ("sta", Test_sta.suite);
      ("phase3", Test_phase3.suite);
      ("physical", Test_physical.suite);
      ("power", Test_power.suite);
      ("circuits", Test_circuits.suite);
      ("experiments", Test_experiments.suite);
      ("obs", Test_obs.suite);
      ("qor", Test_qor.suite);
      ("elab", Test_elab.suite);
      ("lint", Test_lint.suite);
      ("artifacts", Test_artifacts.suite);
      ("fuzz", Test_fuzz.suite) ]

(* Tests for the binary-program solvers: branch and bound against brute
   force, and the independent-set solver's exact paths. *)

let check = Alcotest.check

module P = Lp.Problem

let random_model rand =
  let open QCheck.Gen in
  let n = 2 + int_bound 7 rand in
  let m = 1 + int_bound 5 rand in
  let names = Array.init n (Printf.sprintf "x%d") in
  let constraints =
    List.init m (fun _ ->
        let coeffs =
          List.filter_map
            (fun j ->
              if bool rand then Some (j, float_of_int (int_range (-3) 3 rand))
              else None)
            (List.init n Fun.id)
        in
        let rel = match int_bound 2 rand with
          | 0 -> P.Le
          | 1 -> P.Ge
          | _ -> P.Eq
        in
        P.constr coeffs rel (float_of_int (int_range (-2) 4 rand)))
  in
  let objective = List.init n (fun j -> (j, float_of_int (1 + int_bound 4 rand))) in
  let sense = if bool rand then P.Maximize else P.Minimize in
  Ilp.Model.make ~var_names:names ~sense ~objective constraints

let prop_bb_matches_brute_force =
  QCheck.Test.make ~name:"branch&bound = brute force" ~count:120
    (QCheck.make random_model)
    (fun m ->
      let bf = Ilp.Brute_force.solve m in
      let bb = Ilp.Branch_bound.solve m in
      match bf, bb with
      | None, None -> true
      | Some s1, Some (s2, _) ->
        Float.abs (s1.Ilp.Model.objective -. s2.Ilp.Model.objective) < 1e-6
        && Ilp.Model.feasible m s2.Ilp.Model.values
      | Some _, None | None, Some _ -> false)

(* A model built from disjoint variable blocks: constraints never cross
   blocks, so the incidence graph has one component per block (or more)
   and the decomposed solver must still agree with the monolithic one. *)
let random_blocks_model rand =
  let open QCheck.Gen in
  let n_blocks = 2 + int_bound 2 rand in
  let sense = if bool rand then P.Maximize else P.Minimize in
  let blocks =
    List.init n_blocks (fun _ ->
        let n = 2 + int_bound 2 rand in
        let m = 1 + int_bound 2 rand in
        let constraints =
          List.init m (fun _ ->
              let coeffs =
                List.filter_map
                  (fun j ->
                    if bool rand then
                      Some (j, float_of_int (int_range (-3) 3 rand))
                    else None)
                  (List.init n Fun.id)
              in
              let rel = match int_bound 2 rand with
                | 0 -> P.Le
                | 1 -> P.Ge
                | _ -> P.Eq
              in
              P.constr coeffs rel (float_of_int (int_range (-2) 4 rand)))
        in
        let objective =
          List.init n (fun j -> (j, float_of_int (1 + int_bound 4 rand)))
        in
        (n, constraints, objective))
  in
  let total = List.fold_left (fun acc (n, _, _) -> acc + n) 0 blocks in
  let names = Array.init total (Printf.sprintf "x%d") in
  let shift off = List.map (fun (j, a) -> (j + off, a)) in
  let _, constraints, objective =
    List.fold_left
      (fun (off, cs, os) (n, bc, bo) ->
        ( off + n,
          cs @ List.map (fun c -> { c with P.coeffs = shift off c.P.coeffs }) bc,
          os @ shift off bo ))
      (0, [], []) blocks
  in
  Ilp.Model.make ~var_names:names ~sense ~objective constraints

let prop_decomposed_matches_monolithic =
  QCheck.Test.make ~name:"decomposed = monolithic on multi-component models"
    ~count:120
    (QCheck.make random_blocks_model)
    (fun m ->
      let dec = Ilp.Branch_bound.solve m in
      let mono = Ilp.Branch_bound.solve_monolithic m in
      match dec, mono with
      | None, None -> true
      | Some (s1, _), Some (s2, _) ->
        Float.abs (s1.Ilp.Model.objective -. s2.Ilp.Model.objective) < 1e-6
        && Ilp.Model.feasible m s1.Ilp.Model.values
        && s1.Ilp.Model.optimal && s2.Ilp.Model.optimal
      | Some _, None | None, Some _ -> false)

let prop_parallel_deterministic =
  QCheck.Test.make ~name:"parallel fan-out is bit-identical to serial"
    ~count:60
    (QCheck.make random_blocks_model)
    (fun m ->
      let a = Ilp.Branch_bound.solve ~parallel:true m in
      let b = Ilp.Branch_bound.solve ~parallel:false m in
      match a, b with
      | None, None -> true
      | Some (s1, st1), Some (s2, st2) ->
        s1.Ilp.Model.values = s2.Ilp.Model.values
        && s1.Ilp.Model.objective = s2.Ilp.Model.objective
        && s1.Ilp.Model.best_bound = s2.Ilp.Model.best_bound
        && s1.Ilp.Model.optimal = s2.Ilp.Model.optimal
        && st1.Ilp.Branch_bound.nodes_explored = st2.Ilp.Branch_bound.nodes_explored
        && st1.Ilp.Branch_bound.lp_solves = st2.Ilp.Branch_bound.lp_solves
        && st1.Ilp.Branch_bound.propagations = st2.Ilp.Branch_bound.propagations
        && st1.Ilp.Branch_bound.components = st2.Ilp.Branch_bound.components
        && st1.Ilp.Branch_bound.component_nodes = st2.Ilp.Branch_bound.component_nodes
      | Some _, None | None, Some _ -> false)

let prop_presolve_sound =
  (* probing only fixes a variable when the opposite value propagates to
     a wipeout, so every feasible assignment must agree with the fixing *)
  QCheck.Test.make ~name:"presolve fixings hold in every feasible point"
    ~count:120
    (QCheck.make random_model)
    (fun m ->
      let n = m.Ilp.Model.num_vars in
      match Ilp.Branch_bound.presolve m with
      | None -> Ilp.Brute_force.solve m = None
      | Some (fixed, _) ->
        let ok = ref true in
        for mask = 0 to (1 lsl n) - 1 do
          let values = Array.init n (fun j -> (mask lsr j) land 1 = 1) in
          if Ilp.Model.feasible m values then
            Array.iteri
              (fun j f ->
                if f >= 0 && values.(j) <> (f = 1) then ok := false)
              fixed
        done;
        !ok)

let random_graph ?(max_n = 12) ?(edge_pct = 30) rand =
  let open QCheck.Gen in
  let n = 2 + int_bound (max_n - 2) rand in
  let edges =
    List.concat
      (List.init n (fun u ->
           List.filter_map
             (fun v ->
               if v > u && int_bound 99 rand < edge_pct then Some (u, v) else None)
             (List.init n Fun.id)))
  in
  (n, edges)

let brute_force_mis n edges =
  let best = ref 0 in
  for mask = 0 to (1 lsl n) - 1 do
    let independent =
      List.for_all
        (fun (u, v) ->
          not ((mask lsr u) land 1 = 1 && (mask lsr v) land 1 = 1))
        edges
    in
    if independent then begin
      let size = ref 0 in
      for k = 0 to n - 1 do
        if (mask lsr k) land 1 = 1 then incr size
      done;
      if !size > !best then best := !size
    end
  done;
  !best

let prop_mis_exact_small =
  QCheck.Test.make ~name:"indep-set solver exact on small graphs" ~count:150
    (QCheck.make random_graph)
    (fun (n, edges) ->
      let g = Ilp.Indep_set.graph_of_edges ~n edges in
      let r = Ilp.Indep_set.solve g in
      r.Ilp.Indep_set.size = brute_force_mis n edges
      && r.Ilp.Indep_set.optimal
      (* the chosen set really is independent *)
      && List.for_all
           (fun (u, v) ->
             not (r.Ilp.Indep_set.chosen.(u) && r.Ilp.Indep_set.chosen.(v)))
           edges)

let prop_greedy_independent =
  QCheck.Test.make ~name:"greedy set is independent and maximal" ~count:150
    (QCheck.make random_graph)
    (fun (n, edges) ->
      let g = Ilp.Indep_set.graph_of_edges ~n edges in
      let chosen = Ilp.Indep_set.greedy g in
      let independent =
        List.for_all (fun (u, v) -> not (chosen.(u) && chosen.(v))) edges
      in
      let maximal =
        List.for_all
          (fun v ->
            chosen.(v)
            || List.exists (fun w -> chosen.(w)) g.Ilp.Indep_set.adj.(v))
          (List.init n Fun.id)
      in
      independent && maximal)

let prop_local_search_improves =
  QCheck.Test.make ~name:"local search keeps independence, never shrinks"
    ~count:100 (QCheck.make random_graph)
    (fun (n, edges) ->
      let g = Ilp.Indep_set.graph_of_edges ~n edges in
      let warm = Ilp.Indep_set.greedy g in
      let warm_list =
        List.filter (fun v -> warm.(v)) (List.init n Fun.id)
      in
      let improved = Ilp.Indep_set.local_search g warm_list in
      let in_improved = Array.make n false in
      List.iter (fun v -> in_improved.(v) <- true) improved;
      List.length improved >= List.length warm_list
      && List.for_all
           (fun (u, v) -> not (in_improved.(u) && in_improved.(v)))
           edges)

let test_bipartite_exact () =
  (* layered bipartite graph solved exactly by the Koenig path *)
  let n = 900 in
  let edges =
    List.concat
      (List.init 450 (fun u ->
           List.init 3 (fun k -> (u, 450 + ((u * 11 + k * 77) mod 450)))))
  in
  let g = Ilp.Indep_set.graph_of_edges ~n edges in
  let r = Ilp.Indep_set.solve g in
  check Alcotest.bool "optimal" true r.Ilp.Indep_set.optimal;
  check Alcotest.bool "at least one side" true (r.Ilp.Indep_set.size >= 450);
  check Alcotest.bool "independent" true
    (List.for_all
       (fun (u, v) -> not (r.Ilp.Indep_set.chosen.(u) && r.Ilp.Indep_set.chosen.(v)))
       edges)

let test_two_colour () =
  let g = Ilp.Indep_set.graph_of_edges ~n:4 [(0, 1); (1, 2); (2, 3)] in
  (match Ilp.Indep_set.two_colour g [0; 1; 2; 3] with
   | Some side ->
     check Alcotest.bool "alternating" true
       (side.(0) <> side.(1) && side.(1) <> side.(2) && side.(2) <> side.(3))
   | None -> Alcotest.fail "path is bipartite");
  let odd = Ilp.Indep_set.graph_of_edges ~n:3 [(0, 1); (1, 2); (2, 0)] in
  check Alcotest.bool "triangle rejected" true
    (Ilp.Indep_set.two_colour odd [0; 1; 2] = None)

let test_matching_maximum () =
  (* perfect matching on an even cycle *)
  let n = 8 in
  let edges = List.init n (fun k -> (k, (k + 1) mod n)) in
  let g = Ilp.Indep_set.graph_of_edges ~n edges in
  let mate = Ilp.Indep_set.max_matching g (List.init n Fun.id) in
  let matched = List.length (List.filter (fun v -> mate.(v) >= 0) (List.init n Fun.id)) in
  check Alcotest.int "all matched" n matched

let test_mis_budget_anytime () =
  (* with a tiny budget the solver still returns a valid independent set
     and reports non-optimality (or optimality when reductions solved it) *)
  let n = 60 in
  let edges =
    List.concat
      (List.init n (fun u ->
           List.filter_map
             (fun v -> if v > u && (u * v) mod 7 = 1 then Some (u, v) else None)
             (List.init n Fun.id)))
  in
  let g = Ilp.Indep_set.graph_of_edges ~n edges in
  let r = Ilp.Indep_set.solve ~node_budget:5 g in
  check Alcotest.bool "independent" true
    (List.for_all
       (fun (u, v) -> not (r.Ilp.Indep_set.chosen.(u) && r.Ilp.Indep_set.chosen.(v)))
       edges);
  check Alcotest.bool "bound sane" true
    (r.Ilp.Indep_set.upper_bound >= r.Ilp.Indep_set.size)

let test_exhaustion_honest_bound () =
  (* C5 vertex cover with objective weight 1.5 per vertex: the LP
     relaxation is half-integral (all 0.5, objective 3.75) and the true
     optimum covers three vertices (4.5).  [brute_max:0] forces the
     branch-and-bound path even on this small component. *)
  let n = 5 in
  let names = Array.init n (Printf.sprintf "x%d") in
  let constraints =
    List.init n (fun k -> P.constr [(k, 1.0); ((k + 1) mod n, 1.0)] P.Ge 1.0)
  in
  let objective = List.init n (fun j -> (j, 1.5)) in
  let m = Ilp.Model.make ~var_names:names ~sense:P.Minimize ~objective constraints in
  let solve budget =
    match Ilp.Branch_bound.solve ~brute_max:0 ~node_budget:budget m with
    | None -> Alcotest.fail "C5 cover is feasible"
    | Some (s, _) -> s
  in
  (* budget 1: only the root LP ran; the greedy all-ones cover is the
     incumbent and the dual bound is the open frontier *)
  let s1 = solve 1 in
  check (Alcotest.float 1e-9) "budget 1 incumbent" 7.5 s1.Ilp.Model.objective;
  check Alcotest.bool "budget 1 not optimal" false s1.Ilp.Model.optimal;
  check (Alcotest.float 1e-9) "budget 1 open bound" 3.75 s1.Ilp.Model.best_bound;
  (* budget 2: the dive already found the optimum but cannot prove it —
     the root sibling is still open at the root bound *)
  let s2 = solve 2 in
  check (Alcotest.float 1e-9) "budget 2 incumbent" 4.5 s2.Ilp.Model.objective;
  check Alcotest.bool "budget 2 not optimal" false s2.Ilp.Model.optimal;
  check (Alcotest.float 1e-9) "budget 2 open bound" 3.75 s2.Ilp.Model.best_bound;
  (* the dual sandwich every exhausted solve must respect *)
  check Alcotest.bool "bound below optimum" true
    (s2.Ilp.Model.best_bound <= 4.5 +. 1e-9);
  (* budget 3: proven — the gap closes and the bound meets the objective *)
  let s3 = solve 3 in
  check (Alcotest.float 1e-9) "budget 3 optimum" 4.5 s3.Ilp.Model.objective;
  check Alcotest.bool "budget 3 optimal" true s3.Ilp.Model.optimal;
  check (Alcotest.float 1e-9) "budget 3 closed bound" 4.5 s3.Ilp.Model.best_bound

let suite =
  [ QCheck_alcotest.to_alcotest prop_bb_matches_brute_force;
    QCheck_alcotest.to_alcotest prop_decomposed_matches_monolithic;
    QCheck_alcotest.to_alcotest prop_parallel_deterministic;
    QCheck_alcotest.to_alcotest prop_presolve_sound;
    Alcotest.test_case "honest bound on exhaustion" `Quick
      test_exhaustion_honest_bound;
    QCheck_alcotest.to_alcotest prop_mis_exact_small;
    QCheck_alcotest.to_alcotest prop_greedy_independent;
    QCheck_alcotest.to_alcotest prop_local_search_improves;
    Alcotest.test_case "bipartite path exact" `Quick test_bipartite_exact;
    Alcotest.test_case "two-colouring" `Quick test_two_colour;
    Alcotest.test_case "matching on even cycle" `Quick test_matching_maximum;
    Alcotest.test_case "anytime budget" `Quick test_mis_budget_anytime ]

let test_penalized_reduction_matches_ilp () =
  (* the auxiliary-vertex encoding of the input penalty agrees with the
     literal formulation on hand-built shapes where the penalty matters *)
  let lib = Cell_lib.Default_library.library () in
  (* star: one input feeds k registers that form an independent set;
     keeping them all single costs one input latch *)
  let b = Netlist.Builder.create ~name:"star" ~library:lib in
  let clk = Netlist.Builder.add_input ~clock:true b "clk" in
  let a = Netlist.Builder.add_input b "a" in
  let qs =
    List.init 4 (fun k ->
        let q = Netlist.Builder.fresh_net b (Printf.sprintf "q%d" k) in
        let d =
          Netlist.Gates.emit_fresh b Netlist.Gates.Not [a]
            ~prefix:(Printf.sprintf "d%d" k)
        in
        ignore (Netlist.Builder.add_cell b (Printf.sprintf "r%d" k) "DFF_X1"
                  [("CK", clk); ("D", d); ("Q", q)]);
        q)
  in
  List.iteri (fun k q -> Netlist.Builder.add_output b (Printf.sprintf "y%d" k) q) qs;
  let d = Netlist.Builder.freeze b in
  let ilp = Phase3.Assignment.solve ~solver:`Ilp d in
  let mis = Phase3.Assignment.solve ~solver:`Mis d in
  Alcotest.(check int) "both cost exactly the one input latch" 1
    ilp.Phase3.Assignment.inserted_latches;
  Alcotest.(check int) "reduction agrees" ilp.Phase3.Assignment.inserted_latches
    mis.Phase3.Assignment.inserted_latches

let suite =
  suite
  @ [ Alcotest.test_case "penalized reduction matches ilp" `Quick
        test_penalized_reduction_matches_ilp ]

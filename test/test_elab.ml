(* Tests for the word-level SystemVerilog front-end (lib/elab):
   located diagnostics, parameters, selects, reset styles, and qcheck
   cross-checks of the techmapped arithmetic against OCaml integers via
   both simulators. *)

module L = Sim.Logic

let library = Cell_lib.Default_library.library ()

let elab ?top src = Elab.Elaborate.read ~file:"t.sv" ?top ~library src

let expect_error ?(file = "t.sv") ~needle src =
  match Elab.Elaborate.read ~file ~library src with
  | _ -> Alcotest.failf "expected an error mentioning %S" needle
  | exception Elab.Diag.Error (loc, msg) ->
    Alcotest.(check bool)
      (Printf.sprintf "message %S mentions %S" msg needle)
      true
      (Astring.String.is_infix ~affix:needle msg);
    Alcotest.(check bool) "message carries file:line:col" true
      (Astring.String.is_infix ~affix:(file ^ ":") msg);
    Alcotest.(check bool) "location is attached" true (loc <> None)

(* --- helpers: drive a design with integer words --- *)

let bits name width v =
  List.init width (fun i ->
    let n = if width = 1 then name else Printf.sprintf "%s[%d]" name i in
    (n, L.of_bool ((v lsr i) land 1 = 1)))

let word_of outs name width =
  let bit i =
    let n = if width = 1 then name else Printf.sprintf "%s[%d]" name i in
    match List.assoc n outs with
    | L.L1 -> 1
    | L.L0 -> 0
    | L.LX -> Alcotest.failf "output %s is X" n
  in
  List.fold_left (fun acc i -> acc lor (bit i lsl i)) 0 (List.init width Fun.id)

let clk = Sim.Clock_spec.single ~period:1.0 ~port:"clk"

(* --- diagnostics --- *)

let test_located_errors () =
  expect_error ~needle:"always_comb or always_ff"
    "module m(input a, output y);\n  always @(a) y = a;\nendmodule\n";
  expect_error ~needle:"x/z digits"
    "module m(output logic [3:0] y);\n  assign y = 4'b10xz;\nendmodule\n";
  expect_error ~needle:"unknown signal 'b'"
    "module m(input a, output y);\n  assign y = b;\nendmodule\n";
  expect_error ~needle:"generate"
    "module m(input a);\n  generate endgenerate\nendmodule\n";
  expect_error ~needle:"multiple drivers"
    "module m(input a, output y);\n  assign y = a;\n  assign y = !a;\nendmodule\n";
  (* the excerpt line/col points at the offending token *)
  (match elab "module m(input a, output y);\n  assign y = q;\nendmodule\n" with
   | _ -> Alcotest.fail "expected error"
   | exception Elab.Diag.Error (Some loc, _) ->
     Alcotest.(check int) "line" 2 loc.Netlist_io.Srcloc.line
   | exception Elab.Diag.Error (None, _) -> Alcotest.fail "expected a location")

let test_comb_latch_error () =
  expect_error ~needle:"every path"
    "module m(input a, input b, output logic y);\n\
    \  always_comb if (a) y = b;\nendmodule\n";
  expect_error ~needle:"read before"
    "module m(input a, output logic y);\n\
    \  always_comb begin y = y | a; end\nendmodule\n"

(* --- parameters --- *)

let param_src =
  "module inner #(parameter W = 4) (input logic [W-1:0] d, \
   output logic [W-1:0] q);\n\
  \  assign q = ~d;\nendmodule\n\
   module outer(input logic [6:0] d, output logic [6:0] q);\n\
  \  inner #(.W(7)) u (.d(d), .q(q));\nendmodule\n"

let test_parameter_override () =
  let d = elab param_src in
  (* top 'outer' instantiates inner with W=7: 7 inverters *)
  Alcotest.(check int) "primary inputs" 7
    (List.length d.Netlist.Design.primary_inputs);
  let stats = Netlist.Stats.compute d in
  Alcotest.(check int) "no flops" 0 stats.Netlist.Stats.flip_flops;
  (* default width when not overridden *)
  let d4 =
    elab ~top:"inner"
      "module inner #(parameter W = 4) (input logic [W-1:0] d, \
       output logic [W-1:0] q);\n  assign q = ~d;\nendmodule\n"
  in
  Alcotest.(check int) "default W=4" 4
    (List.length d4.Netlist.Design.primary_inputs)

let test_clog2_param () =
  let d =
    elab
      "module m #(parameter DEPTH = 12, parameter AW = $clog2(DEPTH)) \
       (input logic [AW-1:0] a, output logic [AW-1:0] y);\n\
      \  assign y = a;\nendmodule\n"
  in
  Alcotest.(check int) "clog2(12) = 4 address bits" 4
    (List.length d.Netlist.Design.primary_inputs)

(* --- selects and expressions, simulated --- *)

let run_comb src ~ins ~outs:outw =
  (* single-register pass-through: y is registered so the design has a
     clock.  The engine's edge captures the previous cycle's inputs, so
     hold each vector for two cycles and sample the second. *)
  let d = elab src in
  let e = Sim.Engine.create d ~clocks:clk in
  fun values ->
    let inputs = List.concat_map (fun ((n, w), v) -> bits n w v) (List.combine ins values) in
    ignore (Sim.Engine.run_cycle e inputs);
    let outs = Sim.Engine.run_cycle e inputs in
    List.map (fun (n, w) -> word_of outs n w) outw

let test_part_select () =
  let f =
    run_comb
      "module m(input clk, input logic [7:0] a, output logic [3:0] hi, \
       output logic [3:0] lo, output logic b6);\n\
      \  always_ff @(posedge clk) begin\n\
      \    hi <= a[7:4];\n    lo <= a[3:0];\n    b6 <= a[6];\n  end\nendmodule\n"
      ~ins:[ ("a", 8) ]
      ~outs:[ ("hi", 4); ("lo", 4); ("b6", 1) ]
  in
  List.iter
    (fun a ->
      match f [ a ] with
      | [ hi; lo; b6 ] ->
        Alcotest.(check int) "hi" (a lsr 4) hi;
        Alcotest.(check int) "lo" (a land 15) lo;
        Alcotest.(check int) "b6" ((a lsr 6) land 1) b6
      | _ -> assert false)
    [ 0; 1; 0x5A; 0xA5; 0xFF; 0x40 ]

let test_concat_repl () =
  let f =
    run_comb
      "module m(input clk, input logic [3:0] a, output logic [7:0] y, \
       output logic [5:0] r);\n\
      \  always_ff @(posedge clk) begin\n\
      \    y <= {a, 4'hC};\n    r <= {3{a[1:0]}};\n  end\nendmodule\n"
      ~ins:[ ("a", 4) ]
      ~outs:[ ("y", 8); ("r", 6) ]
  in
  List.iter
    (fun a ->
      match f [ a ] with
      | [ y; r ] ->
        Alcotest.(check int) "concat" ((a lsl 4) lor 0xC) y;
        let two = a land 3 in
        Alcotest.(check int) "repl" (two lor (two lsl 2) lor (two lsl 4)) r
      | _ -> assert false)
    [ 0; 3; 9; 15 ]

(* --- reset styles --- *)

let count_cells d name =
  Array.fold_left
    (fun acc c -> if String.equal c.Cell_lib.Cell.name name then acc + 1 else acc)
    0 d.Netlist.Design.inst_cells

let async_src =
  "module m(input clk, input rst_n, input logic [3:0] d, \
   output logic [3:0] q);\n\
  \  always_ff @(posedge clk or negedge rst_n)\n\
  \    if (!rst_n) q <= 4'd0;\n    else q <= d;\nendmodule\n"

let sync_src =
  "module m(input clk, input rst, input logic [3:0] d, \
   output logic [3:0] q);\n\
  \  always_ff @(posedge clk)\n\
  \    if (rst) q <= 4'd0;\n    else q <= d;\nendmodule\n"

let test_async_vs_sync_reset () =
  let da = elab async_src in
  Alcotest.(check int) "async: 4 DFFR" 4 (count_cells da "DFFR_X1");
  Alcotest.(check int) "async: no plain DFF" 0 (count_cells da "DFF_X1");
  let ds = elab sync_src in
  Alcotest.(check int) "sync: 4 DFF" 4 (count_cells ds "DFF_X1");
  Alcotest.(check int) "sync: no DFFR" 0 (count_cells ds "DFFR_X1");
  Alcotest.(check bool) "sync: reset becomes data muxes" true
    (count_cells ds "MUX2_X1" >= 4);
  (* behaviour: async clear pulls q low mid-stream *)
  let e = Sim.Engine.create da ~clocks:clk in
  ignore (Sim.Engine.run_cycle e (("rst_n", L.L1) :: bits "d" 4 9));
  let outs = Sim.Engine.run_cycle e (("rst_n", L.L1) :: bits "d" 4 9) in
  Alcotest.(check int) "loads 9" 9 (word_of outs "q" 4);
  let outs = Sim.Engine.run_cycle e [ ("rst_n", L.L0) ] in
  Alcotest.(check int) "async clear" 0 (word_of outs "q" 4)

let test_reset_to_ones () =
  (* reset-to-1 bits store the complement around DFFR *)
  let d =
    elab
      "module m(input clk, input rst_n, input logic [1:0] d, \
       output logic [1:0] q);\n\
      \  always_ff @(posedge clk or negedge rst_n)\n\
      \    if (!rst_n) q <= 2'b10;\n    else q <= d;\nendmodule\n"
  in
  let e = Sim.Engine.create d ~clocks:clk in
  let outs = Sim.Engine.run_cycle e (("rst_n", L.L0) :: bits "d" 2 0) in
  Alcotest.(check int) "resets to 2" 2 (word_of outs "q" 2);
  ignore (Sim.Engine.run_cycle e (("rst_n", L.L1) :: bits "d" 2 1));
  let outs = Sim.Engine.run_cycle e (("rst_n", L.L1) :: bits "d" 2 1) in
  Alcotest.(check int) "then loads 1" 1 (word_of outs "q" 2)

let test_missing_reset_value () =
  expect_error ~needle:"reset branch"
    "module m(input clk, input rst_n, input d, output logic q, \
     output logic r);\n\
    \  always_ff @(posedge clk or negedge rst_n)\n\
    \    if (!rst_n) q <= 1'b0;\n    else begin q <= d; r <= d; end\nendmodule\n"

(* --- qcheck: techmapped arithmetic vs OCaml integers --- *)

let arith_src w =
  Printf.sprintf
    "module m(input clk, input logic [%d:0] a, input logic [%d:0] b,\n\
    \         output logic [%d:0] sum, output logic [%d:0] prod,\n\
    \         output logic lt, output logic eq2, output logic [%d:0] sh);\n\
    \  always_ff @(posedge clk) begin\n\
    \    sum <= {1'b0, a} + b;\n\
    \    prod <= a * b;\n\
    \    lt <= a < b;\n\
    \    eq2 <= a == b;\n\
    \    sh <= a << b[1:0];\n\
    \  end\nendmodule\n"
    (w - 1) (w - 1) w (2 * w - 1) (w - 1)

let test_qcheck_arith () =
  let w = 6 in
  let d = elab (arith_src w) in
  let engine = Sim.Engine.create d ~clocks:clk in
  let kernel = Sim.Kernel.create d ~clocks:clk in
  let gen = QCheck.Gen.(pair (int_bound ((1 lsl w) - 1)) (int_bound ((1 lsl w) - 1))) in
  let prop (a, b) =
    let inputs = bits "a" w a @ bits "b" w b in
    (* hold for two cycles: the edge captures the previous inputs *)
    ignore (Sim.Engine.run_cycle engine inputs);
    Sim.Kernel.run_cycle_broadcast kernel inputs;
    let outs = Sim.Engine.run_cycle engine inputs in
    Sim.Kernel.run_cycle_broadcast kernel inputs;
    let kouts = Sim.Kernel.output_sample kernel ~lane:0 in
    let mask = (1 lsl w) - 1 in
    word_of outs "sum" (w + 1) = a + b
    && word_of outs "prod" (2 * w) = a * b
    && word_of outs "lt" 1 = (if a < b then 1 else 0)
    && word_of outs "eq2" 1 = (if a = b then 1 else 0)
    && word_of outs "sh" w = (a lsl (b land 3)) land mask
    (* kernel lane 0 must agree with the event-driven engine bit for bit *)
    && List.for_all
         (fun (n, v) -> L.equal v (List.assoc n kouts))
         outs
  in
  let cell = QCheck.Test.make ~count:100 ~name:"elab arithmetic vs ints"
      (QCheck.make gen) prop
  in
  QCheck.Test.check_exn cell

(* --- end-to-end: vendored RTL through the 3-phase flow --- *)

let read_file path =
  let ic = open_in path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let test_mulpipe_flow () =
  let src = read_file "../examples/rtl/mulpipe.sv" in
  let d = Elab.Elaborate.read ~file:"mulpipe.sv" ~library src in
  let config = Phase3.Flow.default_config ~period:2.0 in
  let result = Phase3.Flow.run ~config d in
  (match result.Phase3.Flow.equivalence with
   | Some (Sim.Equivalence.Equivalent _) -> ()
   | Some (Sim.Equivalence.Mismatch _) -> Alcotest.fail "not equivalent"
   | None -> Alcotest.fail "equivalence not run");
  (* converted design: kernel lane 0 bit-exact vs engine *)
  let final = result.Phase3.Flow.final in
  let clocks = Phase3.Flow.clocks_of config in
  let engine = Sim.Engine.create final ~clocks in
  let kernel = Sim.Kernel.create final ~clocks in
  let stim =
    Sim.Stimulus.random ~seed:7 ~cycles:32 ~toggle_probability:0.4
      (Sim.Stimulus.inputs_of final)
  in
  List.iter
    (fun inputs ->
      let outs = Sim.Engine.run_cycle engine inputs in
      Sim.Kernel.run_cycle_broadcast kernel inputs;
      let kouts = Sim.Kernel.output_sample kernel ~lane:0 in
      List.iter
        (fun (n, v) ->
          if not (L.equal v (List.assoc n kouts)) then
            Alcotest.failf "kernel/engine mismatch on %s" n)
        outs)
    stim

let test_aesround_behaviour () =
  (* the toy core consumes din and raises done after ROUNDS steps *)
  let src = read_file "../examples/rtl/aesround.sv" in
  let d = Elab.Elaborate.read ~file:"aesround.sv" ~library src in
  let e = Sim.Engine.create d ~clocks:clk in
  let step ?(rst = 0) ?(start = 0) din key =
    Sim.Engine.run_cycle e
      ([ ("rst", L.of_bool (rst = 1)); ("start", L.of_bool (start = 1)) ]
       @ bits "din" 16 din @ bits "key" 16 key)
  in
  ignore (step ~rst:1 0 0);
  ignore (step ~start:1 0x1234 0xBEEF);
  let rec run n outs =
    if word_of outs "done" 1 = 1 then n
    else if n > 20 then Alcotest.fail "done never rose"
    else run (n + 1) (step 0x1234 0xBEEF)
  in
  let cycles = run 0 (step 0x1234 0xBEEF) in
  Alcotest.(check int) "done after 10 rounds" 10 cycles

let suite =
  [ Alcotest.test_case "located errors" `Quick test_located_errors;
    Alcotest.test_case "comb completeness errors" `Quick test_comb_latch_error;
    Alcotest.test_case "parameter override" `Quick test_parameter_override;
    Alcotest.test_case "clog2 parameter" `Quick test_clog2_param;
    Alcotest.test_case "part/bit select" `Quick test_part_select;
    Alcotest.test_case "concat and replication" `Quick test_concat_repl;
    Alcotest.test_case "async vs sync reset" `Quick test_async_vs_sync_reset;
    Alcotest.test_case "reset to ones" `Quick test_reset_to_ones;
    Alcotest.test_case "missing reset value" `Quick test_missing_reset_value;
    Alcotest.test_case "qcheck arithmetic" `Quick test_qcheck_arith;
    Alcotest.test_case "mulpipe through the flow" `Quick test_mulpipe_flow;
    Alcotest.test_case "aesround behaviour" `Quick test_aesround_behaviour ]

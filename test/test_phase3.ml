(* Tests for the conversion flow itself: assignment optimality and
   constraint compliance (the paper's C1-C3), netlist conversion, the
   master-slave baseline, retiming and clock gating — including
   property-style sweeps over generated circuits. *)

let check = Alcotest.check

let lib = Cell_lib.Default_library.library ()

module B = Netlist.Builder
module D = Netlist.Design
module A = Phase3.Assignment

let gen_spec ?(layers = [|6; 6; 5|]) ?(self_loop = 0.3) ?(cross = 0.25)
    ?(gated = 0.4) seed =
  { Circuits.Generator.name = Printf.sprintf "g%d" seed;
    seed; inputs = 6; outputs = 4; layers; fanin = 3; cone_depth = 4;
    self_loop_fraction = self_loop; cross_feedback = cross; reuse = 0.25;
    gated_fraction = gated; bank_size = 4; po_cones = 4;
    frequency_mhz = 1000.0 }

(* phase of a sequential element in a converted design *)
let phase_of d i =
  match D.clock_net_of d i with
  | None -> None
  | Some cn ->
    Option.map (fun t -> t.Netlist.Clocking.root_port)
      (Netlist.Clocking.trace_to_root d cn)

(* C2 as a structural property: no combinational path connects two latches
   of the same phase, and p3 latches only reach p2 latches ("no direct
   data path from p3 to p1"). *)
let check_phase_adjacency d =
  let seqs = D.sequential_insts d in
  let classes =
    List.fold_left
      (fun acc phase ->
        let nets =
          List.filter_map
            (fun i ->
              if phase_of d i = Some phase then D.q_net_of d i else None)
            seqs
        in
        (phase, nets) :: acc)
      [] ["p1"; "p2"; "p3"]
  in
  let arrivals = Sta.Paths.class_arrivals d classes in
  List.iter
    (fun i ->
      match phase_of d i, D.data_net_of d i with
      | Some dst_phase, Some dn ->
        List.iter
          (fun (src_phase, (amax, _)) ->
            let reachable = amax.(dn) > Float.neg_infinity in
            if reachable && String.equal src_phase dst_phase then
              Alcotest.failf "same-phase %s data path into %s" dst_phase
                (D.inst_name d i);
            if reachable && String.equal src_phase "p3"
               && String.equal dst_phase "p1" then
              Alcotest.failf "direct p3 -> p1 path into %s" (D.inst_name d i))
          arrivals
      | (Some _ | None), _ -> ())
    seqs

(* C1: every original flip-flop position is still latched (same instance
   name exists as a latch whose Q drives the same logical net name). *)
let check_positions_latched original converted =
  List.iter
    (fun i ->
      let name = D.inst_name original i in
      match D.find_inst converted name with
      | None -> Alcotest.failf "original register %s lost" name
      | Some j ->
        if not (Cell_lib.Cell.is_latch (D.cell converted j)) then
          Alcotest.failf "original register %s is not a latch" name)
    (D.sequential_insts original)

(* --- Assignment --- *)

let test_assignment_chain () =
  (* a 4-stage 1-bit chain fed by an input: optimal = 2 inserted (even
     positions single, cf. Section III-B) *)
  let d = Circuits.Linear_pipeline.make ~width:1 ~stages:4 () in
  let asg = A.solve ~solver:`Ilp d in
  check Alcotest.int "inserted" 2 asg.A.inserted_latches;
  check Alcotest.bool "optimal" true asg.A.optimal;
  check (Alcotest.list Alcotest.string) "no input latch needed" []
    asg.A.pi_latches

let test_assignment_self_loop_forced () =
  let b = B.create ~name:"loop" ~library:lib in
  let clk = B.add_input ~clock:true b "clk" in
  let q = B.fresh_net b "q" in
  let nq = B.fresh_net b "nq" in
  ignore (B.add_cell b "inv" "INV_X1" [("A", q); ("ZN", nq)]);
  ignore (B.add_cell b "r" "DFF_X1" [("CK", clk); ("D", nq); ("Q", q)]);
  B.add_output b "y" q;
  let d = B.freeze b in
  let asg = A.solve d in
  check Alcotest.int "self-loop pairs" 1 asg.A.inserted_latches;
  check Alcotest.bool "plan is a pair" true
    (match asg.A.plans.(0) with
     | A.Pair_p1 | A.Pair_p3 -> true
     | A.Single_p1 -> false)

let test_assignment_pi_latch () =
  (* input feeding a register whose optimal phase is p1 forces an input
     latch; construct: in -> r (no other registers) *)
  let b = B.create ~name:"pi" ~library:lib in
  let clk = B.add_input ~clock:true b "clk" in
  let a = B.add_input b "a" in
  let n = B.fresh_net b "n" in
  ignore (B.add_cell b "i" "INV_X1" [("A", a); ("ZN", n)]);
  let q = B.fresh_net b "q" in
  ignore (B.add_cell b "r" "DFF_X1" [("CK", clk); ("D", n); ("Q", q)]);
  B.add_output b "y" q;
  let d = B.freeze b in
  let asg = A.solve ~solver:`Ilp d in
  (* either the register pairs (cost 1) or stays single with an input
     latch (cost 1): both optimal with objective 1 *)
  check Alcotest.int "objective 1" 1 asg.A.inserted_latches;
  check (Alcotest.list Alcotest.string) "no validation issues" []
    (A.validate d asg)

let test_assignment_solvers_agree () =
  List.iter
    (fun seed ->
      let d = Circuits.Generator.synthesize (gen_spec seed) in
      let ilp = A.solve ~solver:`Ilp d in
      let mis = A.solve ~solver:`Mis d in
      check Alcotest.int
        (Printf.sprintf "seed %d: ILP = MIS objective" seed)
        ilp.A.inserted_latches mis.A.inserted_latches;
      let greedy = A.solve ~solver:`Greedy d in
      check Alcotest.bool "greedy not better than exact" true
        (greedy.A.inserted_latches >= mis.A.inserted_latches);
      check (Alcotest.list Alcotest.string) "ILP valid" [] (A.validate d ilp);
      check (Alcotest.list Alcotest.string) "MIS valid" [] (A.validate d mis);
      check (Alcotest.list Alcotest.string) "greedy valid" [] (A.validate d greedy))
    [3; 4; 5; 6]

let test_total_latches_formula () =
  let d = Circuits.Generator.synthesize (gen_spec 9) in
  let asg = A.solve d in
  let converted = Phase3.Convert.to_three_phase d asg in
  let stats = Netlist.Stats.compute converted in
  check Alcotest.int "total_latches matches converted netlist"
    (A.total_latches asg) stats.Netlist.Stats.latches

(* --- Convert --- *)

let test_convert_invariants () =
  List.iter
    (fun seed ->
      let d = Circuits.Generator.synthesize (gen_spec seed) in
      let asg = A.solve d in
      let converted = Phase3.Convert.to_three_phase d asg in
      (match Netlist.Check.validate converted with
       | Ok () -> ()
       | Error es -> Alcotest.failf "invalid: %s" (String.concat ";" es));
      check_positions_latched d converted;
      check_phase_adjacency converted;
      let stats = Netlist.Stats.compute converted in
      check Alcotest.int "no flip-flops remain" 0 stats.Netlist.Stats.flip_flops)
    [11; 12; 13]

let test_convert_preserves_streams () =
  List.iter
    (fun seed ->
      let d = Circuits.Generator.synthesize (gen_spec seed) in
      let asg = A.solve d in
      let converted = Phase3.Convert.to_three_phase d asg in
      let stim = Sim.Stimulus.random ~seed:(seed * 3) ~cycles:120
          ~toggle_probability:0.4 (Sim.Stimulus.inputs_of d) in
      match
        Sim.Equivalence.check ~reference:d ~dut:converted
          ~reference_clocks:(Sim.Clock_spec.single ~period:1.0 ~port:"clk")
          ~dut_clocks:(Sim.Clock_spec.three_phase ~period:1.0 ~p1:"p1" ~p2:"p2" ~p3:"p3" ())
          ~stimulus:stim ()
      with
      | Sim.Equivalence.Equivalent { shift } ->
        check Alcotest.int "zero latency shift" 0 shift
      | Sim.Equivalence.Mismatch m ->
        Alcotest.failf "seed %d: %s" seed
          (Format.asprintf "%a" Sim.Equivalence.pp_mismatch m))
    [21; 22; 23; 24]

let test_convert_rejects_latch_input () =
  let b = B.create ~name:"bad" ~library:lib in
  let clk = B.add_input ~clock:true b "clk" in
  let a = B.add_input b "a" in
  let q = B.fresh_net b "q" in
  ignore (B.add_cell b "l" "LATH_X1" [("E", clk); ("D", a); ("Q", q)]);
  B.add_output b "y" q;
  let d = B.freeze b in
  let asg = A.solve d in
  try
    ignore (Phase3.Convert.to_three_phase d asg);
    Alcotest.fail "expected Invalid_argument for existing latch"
  with Invalid_argument _ -> ()

(* --- Master-slave --- *)

let test_master_slave () =
  let d = Circuits.Generator.synthesize (gen_spec 31) in
  let ms = Phase3.Master_slave.convert d in
  let s_ff = Netlist.Stats.compute d and s_ms = Netlist.Stats.compute ms in
  check Alcotest.int "exactly 2x registers"
    (2 * s_ff.Netlist.Stats.flip_flops) s_ms.Netlist.Stats.latches;
  check Alcotest.int "icgs preserved" s_ff.Netlist.Stats.clock_gates
    s_ms.Netlist.Stats.clock_gates;
  let stim = Sim.Stimulus.random ~seed:77 ~cycles:120 ~toggle_probability:0.4
      (Sim.Stimulus.inputs_of d) in
  let clocks = Sim.Clock_spec.single ~period:1.0 ~port:"clk" in
  match Sim.Equivalence.check ~reference:d ~dut:ms ~reference_clocks:clocks
          ~dut_clocks:clocks ~stimulus:stim () with
  | Sim.Equivalence.Equivalent { shift } -> check Alcotest.int "no shift" 0 shift
  | Sim.Equivalence.Mismatch m ->
    Alcotest.failf "master-slave mismatch: %s"
      (Format.asprintf "%a" Sim.Equivalence.pp_mismatch m)

(* --- Retime --- *)

let retime_test_design () =
  (* rA is adjacent to both rB and rC in the FF graph, so the optimum
     pairs rA and keeps rB/rC single; rA's inserted p2 latch then sits in
     front of a private buffer chain with clear forward-move benefit
     (buffers preserve the reset value, so moves stay legal) *)
  let b = B.create ~name:"rt" ~library:lib in
  let clk = B.add_input ~clock:true b "clk" in
  let qa = B.fresh_net b "qa" in
  let qb = B.fresh_net b "qb" in
  let qc = B.fresh_net b "qc" in
  let da = B.fresh_net b "da" in
  ignore (B.add_cell b "gin" "BUF_X2" [("A", qb); ("Z", da)]);
  ignore (B.add_cell b "rA" "DFF_X1" [("CK", clk); ("D", da); ("Q", qa)]);
  let rec chain src k =
    if k = 0 then src
    else begin
      let n = B.fresh_net b (Printf.sprintf "ch%d" k) in
      ignore (B.add_cell b (Printf.sprintf "cb%d" k) "BUF_X2" [("A", src); ("Z", n)]);
      chain n (k - 1)
    end
  in
  let tail = chain qa 8 in
  ignore (B.add_cell b "rB" "DFF_X1" [("CK", clk); ("D", tail); ("Q", qb)]);
  ignore (B.add_cell b "rC" "DFF_X1" [("CK", clk); ("D", tail); ("Q", qc)]);
  B.add_output b "y" qc;
  B.freeze b

let test_retime_moves_and_preserves () =
  let d = retime_test_design () in
  let asg = A.solve d in
  let converted = Phase3.Convert.to_three_phase d asg in
  let retimed, stats = Phase3.Retime.run converted in
  check Alcotest.bool "some moves happen" true (stats.Phase3.Retime.moves > 0);
  (match Netlist.Check.validate retimed with
   | Ok () -> ()
   | Error es -> Alcotest.failf "retimed invalid: %s" (String.concat ";" es));
  check_phase_adjacency retimed;
  (* stream equivalence of the retimed result (autonomous design: the
     stimulus stream is empty but still drives the clocks) *)
  let stim = Sim.Stimulus.random ~seed:5 ~cycles:120 ~toggle_probability:0.4
      (Sim.Stimulus.inputs_of d) in
  (match Sim.Equivalence.check ~reference:d ~dut:retimed
           ~reference_clocks:(Sim.Clock_spec.single ~period:1.0 ~port:"clk")
           ~dut_clocks:(Sim.Clock_spec.three_phase ~period:1.0 ~p1:"p1" ~p2:"p2" ~p3:"p3" ())
           ~stimulus:stim () with
   | Sim.Equivalence.Equivalent _ -> ()
   | Sim.Equivalence.Mismatch m ->
     Alcotest.failf "retime broke streams: %s"
       (Format.asprintf "%a" Sim.Equivalence.pp_mismatch m));
  (* retiming balanced the long cone: the worst of (in, out) delay around
     moved latches shrank, visible as improved setup slack at short period *)
  let clocks = Sim.Clock_spec.three_phase ~period:0.4 ~p1:"p1" ~p2:"p2" ~p3:"p3" () in
  let before = (Sta.Smo.check converted ~clocks).Sta.Smo.worst_setup_slack in
  let after = (Sta.Smo.check retimed ~clocks).Sta.Smo.worst_setup_slack in
  check Alcotest.bool "setup slack improved" true (after > before)

(* --- Clock gating --- *)

let test_clock_gating_structures () =
  let d = Circuits.Generator.synthesize (gen_spec ~gated:0.6 41) in
  let config = { (Phase3.Flow.default_config ~period:1.0) with
                 Phase3.Flow.verify_equivalence = false } in
  let r = Phase3.Flow.run ~config d in
  (match r.Phase3.Flow.cg_stats with
   | None -> Alcotest.fail "clock gating should run"
   | Some s ->
     check Alcotest.bool "some p2 latches got gated" true
       (s.Phase3.Clock_gating.gated_common_enable > 0
        || s.Phase3.Clock_gating.ddcg_gated > 0
        || s.Phase3.Clock_gating.m2_replaced > 0));
  (* the M1 cells exist in the final design when common-enable fired *)
  let final = r.Phase3.Flow.final in
  let styles =
    List.filter_map
      (fun i ->
        match (D.cell final i).Cell_lib.Cell.kind with
        | Cell_lib.Cell.Clock_gate { style; _ } -> Some style
        | Cell_lib.Cell.Combinational | Cell_lib.Cell.Flip_flop _
        | Cell_lib.Cell.Latch _ -> None)
      (D.clock_gate_insts final)
  in
  check Alcotest.bool "flow produced clock gates" true (styles <> [])

let test_flow_end_to_end_sweep () =
  (* the umbrella property: full flow on a spread of generated circuits
     verifies equivalence internally and passes SMO *)
  List.iter
    (fun seed ->
      let d = Circuits.Generator.synthesize (gen_spec seed) in
      let config = Phase3.Flow.default_config ~period:1.0 in
      let r = Phase3.Flow.run ~config d in
      check Alcotest.bool
        (Printf.sprintf "seed %d timing" seed) true (Sta.Smo.ok r.Phase3.Flow.timing);
      check_phase_adjacency r.Phase3.Flow.final)
    [51; 52; 53; 54; 55]

let test_flow_rejects_invalid_input () =
  let b = B.create ~name:"floating" ~library:lib in
  let n = B.fresh_net b "n" in
  ignore (B.add_cell b "i" "INV_X1" [("A", n); ("ZN", B.fresh_net b "o")]);
  B.add_output b "y" n;
  let d = B.freeze b in
  try
    ignore (Phase3.Flow.run ~config:(Phase3.Flow.default_config ~period:1.0) d);
    Alcotest.fail "expected Flow_error"
  with Phase3.Flow.Flow_error _ -> ()

(* --- Pipeline closed form --- *)

let test_pipeline_closed_form () =
  check Alcotest.int "0 stages" 0 (Phase3.Pipeline.minimum_inserted_stages 0);
  check Alcotest.int "1 stage" 1 (Phase3.Pipeline.minimum_inserted_stages 1);
  check Alcotest.int "2 stages" 1 (Phase3.Pipeline.minimum_inserted_stages 2);
  check Alcotest.int "5 stages" 3 (Phase3.Pipeline.minimum_inserted_stages 5);
  check Alcotest.int "expected latches" 24
    (Phase3.Pipeline.expected_latches ~stages:4 ~width:4)

let prop_pipeline_matches_solver =
  QCheck.Test.make ~name:"pipeline closed form = solver optimum" ~count:12
    QCheck.(pair (int_range 1 4) (int_range 2 8))
    (fun (width, stages) ->
      let d = Circuits.Linear_pipeline.make ~width ~stages () in
      let asg = A.solve d in
      A.total_latches asg = Phase3.Pipeline.expected_latches ~stages ~width)

let suite =
  [ Alcotest.test_case "assignment: chain optimum" `Quick test_assignment_chain;
    Alcotest.test_case "assignment: self loop pairs" `Quick test_assignment_self_loop_forced;
    Alcotest.test_case "assignment: input latch economics" `Quick test_assignment_pi_latch;
    Alcotest.test_case "assignment: solvers agree" `Quick test_assignment_solvers_agree;
    Alcotest.test_case "assignment: latch formula" `Quick test_total_latches_formula;
    Alcotest.test_case "convert: structural invariants" `Quick test_convert_invariants;
    Alcotest.test_case "convert: stream equivalence" `Quick test_convert_preserves_streams;
    Alcotest.test_case "convert: rejects latch input" `Quick test_convert_rejects_latch_input;
    Alcotest.test_case "master-slave baseline" `Quick test_master_slave;
    Alcotest.test_case "retime: moves, preserves, improves" `Quick test_retime_moves_and_preserves;
    Alcotest.test_case "clock gating structures" `Quick test_clock_gating_structures;
    Alcotest.test_case "flow end-to-end sweep" `Slow test_flow_end_to_end_sweep;
    Alcotest.test_case "flow rejects invalid input" `Quick test_flow_rejects_invalid_input;
    Alcotest.test_case "pipeline closed form" `Quick test_pipeline_closed_form;
    QCheck_alcotest.to_alcotest prop_pipeline_matches_solver ]

(* --- resettable registers through the whole flow --- *)

let reset_design () =
  let b = B.create ~name:"rstflow" ~library:lib in
  let clk = B.add_input ~clock:true b "clk" in
  let rn = B.add_input b "rn" in
  let a = B.add_input b "a" in
  (* resettable pipeline with feedback *)
  let q0 = B.fresh_net b "q0" in
  let q1 = B.fresh_net b "q1" in
  let q2 = B.fresh_net b "q2" in
  let d0 = Netlist.Gates.emit_fresh b Netlist.Gates.Xor [a; q2] ~prefix:"d0" in
  ignore (B.add_cell b "r0" "DFFR_X1" [("CK", clk); ("D", d0); ("Q", q0); ("RN", rn)]);
  let d1 = Netlist.Gates.emit_fresh b Netlist.Gates.Not [q0] ~prefix:"d1" in
  ignore (B.add_cell b "r1" "DFFR_X1" [("CK", clk); ("D", d1); ("Q", q1); ("RN", rn)]);
  let d2 = Netlist.Gates.emit_fresh b Netlist.Gates.And [q1; q0] ~prefix:"d2" in
  ignore (B.add_cell b "r2" "DFFR_X1" [("CK", clk); ("D", d2); ("Q", q2); ("RN", rn)]);
  B.add_output b "y" q2;
  B.freeze b

let test_flow_with_reset_registers () =
  let d = reset_design () in
  let config = Phase3.Flow.default_config ~period:1.0 in
  (* the flow's internal equivalence check streams random values on rn
     too, so matching behaviour under arbitrary reset activity is part of
     the pass criterion *)
  let r = Phase3.Flow.run ~config d in
  let final = r.Phase3.Flow.final in
  (* every latch that replaced a DFFR carries the reset pin *)
  List.iter
    (fun i ->
      match (D.cell final i).Cell_lib.Cell.kind with
      | Cell_lib.Cell.Latch { reset_pin; _ } ->
        check Alcotest.bool
          (Printf.sprintf "%s has reset" (D.inst_name final i))
          true (reset_pin <> None)
      | Cell_lib.Cell.Combinational | Cell_lib.Cell.Flip_flop _
      | Cell_lib.Cell.Clock_gate _ -> ())
    (D.sequential_insts final)

let test_master_slave_with_reset () =
  let d = reset_design () in
  let ms = Phase3.Master_slave.convert d in
  let stim = Sim.Stimulus.random ~seed:13 ~cycles:120 ~toggle_probability:0.3
      (Sim.Stimulus.inputs_of d) in
  let clocks = Sim.Clock_spec.single ~period:1.0 ~port:"clk" in
  match Sim.Equivalence.check ~reference:d ~dut:ms ~reference_clocks:clocks
          ~dut_clocks:clocks ~stimulus:stim () with
  | Sim.Equivalence.Equivalent _ -> ()
  | Sim.Equivalence.Mismatch m ->
    Alcotest.failf "reset M-S mismatch: %s"
      (Format.asprintf "%a" Sim.Equivalence.pp_mismatch m)

let suite =
  suite
  @ [ Alcotest.test_case "flow with reset registers" `Quick
        test_flow_with_reset_registers;
      Alcotest.test_case "master-slave with reset" `Quick
        test_master_slave_with_reset ]

(* --- pulsed-latch baseline --- *)

let test_pulsed_latch () =
  let d = Circuits.Generator.synthesize (gen_spec 61) in
  let pl = Phase3.Pulsed_latch.convert d in
  let s_ff = Netlist.Stats.compute d and s_pl = Netlist.Stats.compute pl in
  check Alcotest.int "register count unchanged" s_ff.Netlist.Stats.registers
    s_pl.Netlist.Stats.registers;
  check Alcotest.bool "sequential area shrinks" true
    (s_pl.Netlist.Stats.seq_area < s_ff.Netlist.Stats.seq_area);
  let stim = Sim.Stimulus.random ~seed:91 ~cycles:120 ~toggle_probability:0.4
      (Sim.Stimulus.inputs_of d) in
  let clocks = Sim.Clock_spec.single ~period:1.0 ~port:"clk" in
  (match Sim.Equivalence.check ~reference:d ~dut:pl ~reference_clocks:clocks
           ~dut_clocks:clocks ~stimulus:stim () with
   | Sim.Equivalence.Equivalent { shift } -> check Alcotest.int "no shift" 0 shift
   | Sim.Equivalence.Mismatch m ->
     Alcotest.failf "pulsed-latch mismatch: %s"
       (Format.asprintf "%a" Sim.Equivalence.pp_mismatch m));
  (* the hold exposure: at equal skew, the pulsed design needs more hold
     buffers than the flip-flop original *)
  let _, ff_hold = Sta.Hold_fix.run ~skew:0.05 d ~clocks in
  let _, pl_hold =
    Sta.Hold_fix.run ~skew:0.05
      ~hold_margin:(Phase3.Pulsed_latch.hold_margin ~period:1.0 ()) pl ~clocks
  in
  check Alcotest.bool "pulsed needs more hold padding" true
    (pl_hold.Sta.Hold_fix.buffers_added >= ff_hold.Sta.Hold_fix.buffers_added)

let suite =
  suite
  @ [ Alcotest.test_case "pulsed-latch baseline" `Quick test_pulsed_latch ]

(* --- backward retiming --- *)

let test_backward_retime () =
  (* one pair whose p2 latch sits at the head of a long buffer chain:
     walking it into the chain balances the halves, so retiming must act *)
  let b = B.create ~name:"bwd" ~library:lib in
  let clk = B.add_input ~clock:true b "clk" in
  let qa = B.fresh_net b "qa" in
  let qb = B.fresh_net b "qb" in
  let da = B.fresh_net b "da" in
  ignore (B.add_cell b "rA" "DFF_X1" [("CK", clk); ("D", da); ("Q", qa)]);
  let rec chain src k =
    if k = 0 then src
    else begin
      let n = B.fresh_net b (Printf.sprintf "bw%d" k) in
      ignore (B.add_cell b (Printf.sprintf "bb%d" k) "BUF_X2" [("A", src); ("Z", n)]);
      chain n (k - 1)
    end
  in
  let tail = chain qa 8 in
  (* rA's pair is forced — not tie-broken — by its combinational
     self-loop through the chain; [qa] keeps its single reader so the
     inserted p2 latch stays movable *)
  ignore (B.add_cell b "gin" "AND2_X1" [("A1", qb); ("A2", tail); ("Z", da)]);
  ignore (B.add_cell b "rB" "DFF_X1" [("CK", clk); ("D", tail); ("Q", qb)]);
  B.add_output b "y" qb;
  let d = B.freeze b in
  let asg = A.solve d in
  let converted = Phase3.Convert.to_three_phase d asg in
  let retimed, stats = Phase3.Retime.run converted in
  check Alcotest.bool "retiming acted" true (stats.Phase3.Retime.moves > 0);
  (match Netlist.Check.validate retimed with
   | Ok () -> ()
   | Error es -> Alcotest.failf "invalid: %s" (String.concat ";" es));
  check_phase_adjacency retimed;
  let stim = Sim.Stimulus.random ~seed:3 ~cycles:100 ~toggle_probability:0.4
      (Sim.Stimulus.inputs_of d) in
  match Sim.Equivalence.check ~reference:d ~dut:retimed
          ~reference_clocks:(Sim.Clock_spec.single ~period:1.0 ~port:"clk")
          ~dut_clocks:(Sim.Clock_spec.three_phase ~period:1.0 ~p1:"p1" ~p2:"p2" ~p3:"p3" ())
          ~stimulus:stim () with
  | Sim.Equivalence.Equivalent _ -> ()
  | Sim.Equivalence.Mismatch m ->
    Alcotest.failf "backward retime broke streams: %s"
      (Format.asprintf "%a" Sim.Equivalence.pp_mismatch m)

let suite =
  suite @ [ Alcotest.test_case "backward retiming" `Quick test_backward_retime ]

let test_flow_with_optimize () =
  let d = Circuits.Generator.synthesize (gen_spec 71) in
  let config = { (Phase3.Flow.default_config ~period:1.0) with
                 Phase3.Flow.optimize = true } in
  (* equivalence is checked inside the flow, after optimisation *)
  let r = Phase3.Flow.run ~config d in
  check Alcotest.bool "timing holds after optimize" true
    (Sta.Smo.ok r.Phase3.Flow.timing)

let suite =
  suite @ [ Alcotest.test_case "flow with optimize" `Quick test_flow_with_optimize ]

(* --- scan insertion --- *)

let scan_base () =
  let b = B.create ~name:"scn" ~library:lib in
  let clk = B.add_input ~clock:true b "clk" in
  let a = B.add_input b "a" in
  let q0 = B.fresh_net b "q0" in
  let q1 = B.fresh_net b "q1" in
  let q2 = B.fresh_net b "q2" in
  let d0 = Netlist.Gates.emit_fresh b Netlist.Gates.Xor [a; q2] ~prefix:"d0" in
  ignore (B.add_cell b "r0" "DFF_X1" [("CK", clk); ("D", d0); ("Q", q0)]);
  let d1 = Netlist.Gates.emit_fresh b Netlist.Gates.Not [q0] ~prefix:"d1" in
  ignore (B.add_cell b "r1" "DFF_X1" [("CK", clk); ("D", d1); ("Q", q1)]);
  let d2 = Netlist.Gates.emit_fresh b Netlist.Gates.Or [q1; a] ~prefix:"d2" in
  ignore (B.add_cell b "r2" "DFF_X1" [("CK", clk); ("D", d2); ("Q", q2)]);
  B.add_output b "y" q2;
  B.freeze b

let test_scan_functional_mode () =
  (* with scan_en = 0 the scanned design behaves exactly like the original *)
  let d = scan_base () in
  let scanned, chain = Phase3.Scan.insert d in
  check Alcotest.int "chain covers all registers" 3
    (List.length chain.Phase3.Scan.order);
  let clocks = Sim.Clock_spec.single ~period:1.0 ~port:"clk" in
  let base_stim = Sim.Stimulus.random ~seed:3 ~cycles:80 ~toggle_probability:0.5 ["a"] in
  let ref_out = Sim.Engine.run_stream (Sim.Engine.create d ~clocks) base_stim in
  let scan_stim =
    List.map
      (fun cycle ->
        (chain.Phase3.Scan.scan_en, Sim.Logic.L0)
        :: (chain.Phase3.Scan.scan_in, Sim.Logic.L0) :: cycle)
      base_stim
  in
  let dut_out = Sim.Engine.run_stream (Sim.Engine.create scanned ~clocks) scan_stim in
  match Sim.Equivalence.compare_streams ~warmup:4 ~max_shift:0 ref_out dut_out with
  | Sim.Equivalence.Equivalent _ -> ()
  | Sim.Equivalence.Mismatch m ->
    Alcotest.failf "scan broke functional mode: %s"
      (Format.asprintf "%a" Sim.Equivalence.pp_mismatch m)

let test_scan_shift () =
  (* shifting a known pattern through the chain loads the registers *)
  let d = scan_base () in
  let scanned, chain = Phase3.Scan.insert d in
  let clocks = Sim.Clock_spec.single ~period:1.0 ~port:"clk" in
  let engine = Sim.Engine.create scanned ~clocks in
  let pattern = [true; false; true] in
  (* shift in MSB-first.  Inputs change just after each capture edge, so
     a bit applied during cycle k is captured at the edge opening cycle
     k+1: one extra shift cycle drains the pipeline. *)
  List.iter
    (fun bit ->
      ignore
        (Sim.Engine.run_cycle engine
           [ (chain.Phase3.Scan.scan_en, Sim.Logic.L1);
             (chain.Phase3.Scan.scan_in, Sim.Logic.of_bool bit);
             ("a", Sim.Logic.L0) ]))
    pattern;
  ignore
    (Sim.Engine.run_cycle engine
       [ (chain.Phase3.Scan.scan_en, Sim.Logic.L1);
         (chain.Phase3.Scan.scan_in, Sim.Logic.L0);
         ("a", Sim.Logic.L0) ]);
  let q_of name =
    let i = Option.get (Netlist.Design.find_inst scanned name) in
    Sim.Engine.net_value engine (Option.get (Netlist.Design.q_net_of scanned i))
  in
  (* chain order is r0 -> r1 -> r2; after 3 shifts the first-in bit has
     reached r2 *)
  check Alcotest.char "r2 holds first bit" '1' (Sim.Logic.to_char (q_of "r2"));
  check Alcotest.char "r1 holds second bit" '0' (Sim.Logic.to_char (q_of "r1"));
  check Alcotest.char "r0 holds third bit" '1' (Sim.Logic.to_char (q_of "r0"))

let test_scan_survives_conversion () =
  (* the 3-phase flow converts a scanned design and stays equivalent even
     while scan_en toggles randomly (the flow's internal check drives all
     primary inputs, scan ports included) *)
  let d = scan_base () in
  let scanned, _ = Phase3.Scan.insert d in
  let r = Phase3.Flow.run ~config:(Phase3.Flow.default_config ~period:1.0) scanned in
  check Alcotest.bool "timing ok" true (Sta.Smo.ok r.Phase3.Flow.timing)

let suite =
  suite
  @ [ Alcotest.test_case "scan functional mode" `Quick test_scan_functional_mode;
      Alcotest.test_case "scan shift" `Quick test_scan_shift;
      Alcotest.test_case "scan survives conversion" `Quick test_scan_survives_conversion ]

(* --- input-port latches --- *)

let test_pi_latch_materialised () =
  (* an input driving an isolated register: if the solver keeps the
     register single, the port must grow a p2 latch; either way the
     converted design is equivalent *)
  let b = B.create ~name:"pil" ~library:lib in
  let clk = B.add_input ~clock:true b "clk" in
  let a = B.add_input b "a" in
  let n = B.fresh_net b "n" in
  ignore (B.add_cell b "i" "INV_X1" [("A", a); ("ZN", n)]);
  let q = B.fresh_net b "q" in
  ignore (B.add_cell b "r" "DFF_X1" [("CK", clk); ("D", n); ("Q", q)]);
  B.add_output b "y" q;
  let d = B.freeze b in
  let asg = A.solve ~solver:`Ilp d in
  let converted = Phase3.Convert.to_three_phase d asg in
  let has_port_latch =
    List.exists
      (fun i ->
        String.equal (D.inst_name converted i) ("a" ^ Phase3.Convert.p2_suffix))
      (D.sequential_insts converted)
  in
  check Alcotest.bool "port latch present iff assignment says so"
    (asg.A.pi_latches <> []) has_port_latch;
  let stim = Sim.Stimulus.random ~seed:8 ~cycles:80 ~toggle_probability:0.5 ["a"] in
  match Sim.Equivalence.check ~reference:d ~dut:converted
          ~reference_clocks:(Sim.Clock_spec.single ~period:1.0 ~port:"clk")
          ~dut_clocks:(Sim.Clock_spec.three_phase ~period:1.0 ~p1:"p1" ~p2:"p2" ~p3:"p3" ())
          ~stimulus:stim () with
  | Sim.Equivalence.Equivalent _ -> ()
  | Sim.Equivalence.Mismatch m ->
    Alcotest.failf "pi-latch conversion mismatch: %s"
      (Format.asprintf "%a" Sim.Equivalence.pp_mismatch m)

(* --- DDCG behaviour --- *)

let test_ddcg_stops_quiet_clocks () =
  (* a p3 pair whose data is frozen: with DDCG the gated p2 stops
     toggling once the design settles *)
  let b = B.create ~name:"dq" ~library:lib in
  let clk = B.add_input ~clock:true b "clk" in
  let a = B.add_input b "a" in
  (* r0 self-loops (pair), feeding r1 which also pairs via adjacency to
     r0 and r2; hold a constant stream so data goes quiet *)
  let q0 = B.fresh_net b "q0" in
  let d0 = Netlist.Gates.emit_fresh b Netlist.Gates.And [q0; a] ~prefix:"d0" in
  ignore (B.add_cell b "r0" "DFF_X1" [("CK", clk); ("D", d0); ("Q", q0)]);
  let q1 = B.fresh_net b "q1" in
  let d1 = Netlist.Gates.emit_fresh b Netlist.Gates.Or [q0; a] ~prefix:"d1" in
  ignore (B.add_cell b "r1" "DFF_X1" [("CK", clk); ("D", d1); ("Q", q1)]);
  B.add_output b "y" q1;
  let d = B.freeze b in
  let cg = { Phase3.Clock_gating.default_options with
             Phase3.Clock_gating.common_enable = false;
             m2_latch_removal = false;
             ddcg = true;
             ddcg_threshold = 0.5 (* aggressive so the quiet pair qualifies *) }
  in
  let config = { (Phase3.Flow.default_config ~period:1.0) with
                 Phase3.Flow.clock_gating = cg; retime = false } in
  let r = Phase3.Flow.run ~config d in
  (match r.Phase3.Flow.cg_stats with
   | Some s when s.Phase3.Clock_gating.ddcg_gated > 0 -> ()
   | Some _ | None -> Alcotest.fail "expected a DDCG-gated latch");
  (* drive constant inputs; the ddcg gated-clock net must go quiet while
     the free p2 keeps toggling *)
  let final = r.Phase3.Flow.final in
  let clocks = Phase3.Flow.clocks_of config in
  let engine = Sim.Engine.create final ~clocks in
  for _ = 1 to 20 do
    ignore (Sim.Engine.run_cycle engine [("a", Sim.Logic.L0)])
  done;
  let toggles_before = Array.copy (Sim.Engine.toggles engine) in
  for _ = 1 to 20 do
    ignore (Sim.Engine.run_cycle engine [("a", Sim.Logic.L0)])
  done;
  let toggles_after = Sim.Engine.toggles engine in
  let ddcg_net =
    let rec find k =
      if k >= Netlist.Design.num_nets final then None
      else if Astring.String.is_prefix ~affix:"ddcg"
                (Netlist.Design.net_name final k)
              && Astring.String.is_suffix ~affix:"gck"
                   (Netlist.Design.net_name final k)
      then Some k
      else find (k + 1)
    in
    find 0
  in
  (match ddcg_net with
   | Some net ->
     check Alcotest.int "gated p2 silent on quiet data" 0
       (toggles_after.(net) - toggles_before.(net))
   | None -> Alcotest.fail "no ddcg gated-clock net found");
  let p2 = Option.get (Netlist.Design.find_input final "p2") in
  check Alcotest.int "free p2 still toggles" 40
    (toggles_after.(p2) - toggles_before.(p2))

let suite =
  suite
  @ [ Alcotest.test_case "input-port latch materialised" `Quick
        test_pi_latch_materialised;
      Alcotest.test_case "ddcg stops quiet clocks" `Quick
        test_ddcg_stops_quiet_clocks ]

(* Cross-checks of the bit-parallel Sim.Kernel against the scalar
   Sim.Engine oracle: lane 0 of the kernel must be bit-identical to the
   engine — same primary-output trace AND same per-net toggle counts —
   on random generated netlists and on the benchmark suite under all
   three design styles. *)

let check = Alcotest.check

let lib = Cell_lib.Default_library.library ()

module B = Netlist.Builder

let logic_to_string vs =
  String.concat ""
    (List.map (fun (p, v) -> Printf.sprintf "%s=%c " p (Sim.Logic.to_char v)) vs)

(* run both simulators cycle-for-cycle on the same stimulus; compare
   outputs each cycle and the full toggle arrays at the end *)
let cross_check ?(label = "") ?(lanes = Sim.Kernel.max_lanes) d ~clocks stim =
  let engine = Sim.Engine.create d ~clocks in
  let kernel = Sim.Kernel.create ~lanes d ~clocks in
  List.iteri
    (fun c inputs ->
      let eng_out = Sim.Engine.run_cycle engine inputs in
      Sim.Kernel.run_cycle_broadcast kernel inputs;
      let ker_out = Sim.Kernel.output_sample kernel ~lane:0 in
      if eng_out <> ker_out then
        Alcotest.failf "%s cycle %d outputs differ:\n engine %s\n kernel %s"
          label c (logic_to_string eng_out) (logic_to_string ker_out))
    stim;
  let et = Sim.Engine.toggles engine in
  let kt0 = Sim.Kernel.toggles_lane0 kernel in
  let kt = Sim.Kernel.toggles kernel in
  Array.iteri
    (fun n e ->
      if e <> kt0.(n) then
        Alcotest.failf "%s net %s: engine %d toggles, kernel lane0 %d" label
          (Netlist.Design.net_name d n) e kt0.(n);
      (* broadcast stimulus: every lane repeats lane 0 *)
      if kt.(n) <> lanes * kt0.(n) then
        Alcotest.failf "%s net %s: %d lanes x %d toggles <> total %d" label
          (Netlist.Design.net_name d n) lanes kt0.(n) kt.(n))
    et

let gen_spec seed =
  { Circuits.Generator.name = "xck"; seed; inputs = 5; outputs = 4;
    layers = [|5; 5|]; fanin = 3; cone_depth = 3; self_loop_fraction = 0.2;
    cross_feedback = 0.2; reuse = 0.2; gated_fraction = 0.3; bank_size = 3;
    po_cones = 3; frequency_mhz = 1000.0 }

let prop_kernel_matches_engine =
  QCheck.Test.make ~name:"kernel lane 0 matches engine on random netlists"
    ~count:15
    QCheck.(int_range 0 1000)
    (fun seed ->
      let d = Circuits.Generator.synthesize (gen_spec seed) in
      let clocks = Sim.Clock_spec.single ~period:1.0 ~port:"clk" in
      let stim =
        Sim.Stimulus.random ~seed:(seed + 1) ~cycles:24 ~toggle_probability:0.5
          (Sim.Stimulus.inputs_of d)
      in
      cross_check d ~clocks stim;
      true)

(* different stimulus per lane: each lane must reproduce a dedicated
   scalar run *)
let test_heterogeneous_lanes () =
  let d = Circuits.Generator.synthesize (gen_spec 7) in
  let clocks = Sim.Clock_spec.single ~period:1.0 ~port:"clk" in
  let lanes = 4 in
  let streams =
    Array.init lanes (fun l ->
        Sim.Stimulus.random ~seed:(100 + l) ~cycles:20 ~toggle_probability:0.4
          (Sim.Stimulus.inputs_of d))
  in
  let kernel = Sim.Kernel.create ~lanes d ~clocks in
  Sim.Kernel.run_streams kernel streams;
  Array.iteri
    (fun l stream ->
      let engine = Sim.Engine.create d ~clocks in
      let expected = List.rev (Sim.Engine.run_stream engine stream) in
      let final = match expected with o :: _ -> o | [] -> [] in
      check Alcotest.bool (Printf.sprintf "lane %d final outputs" l) true
        (final = Sim.Kernel.output_sample kernel ~lane:l))
    streams

(* the full quick suite, each design style with its own clocking *)
let test_suite_variants () =
  List.iter
    (fun (bench : Circuits.Suite.benchmark) ->
      let period = bench.Circuits.Suite.period_ns in
      let original = bench.Circuits.Suite.build () in
      let ff_clocks = Phase3.Flow.reference_clocks original ~period in
      let ms = Phase3.Master_slave.convert original in
      let config =
        { (Phase3.Flow.default_config ~period) with
          Phase3.Flow.verify_equivalence = false;
          activity_cycles = 32 }
      in
      let flow = Phase3.Flow.run ~config original in
      let threep_clocks = Phase3.Flow.clocks_of config in
      List.iter
        (fun (style, d, clocks) ->
          let stim =
            Sim.Stimulus.random ~seed:11 ~cycles:48 ~toggle_probability:0.35
              (Sim.Stimulus.inputs_of d)
          in
          let label =
            Printf.sprintf "%s/%s" bench.Circuits.Suite.bench_name style
          in
          cross_check ~label d ~clocks stim)
        [ ("ff", original, ff_clocks);
          ("ms", ms, ff_clocks);
          ("3p", flow.Phase3.Flow.final, threep_clocks) ])
    (Circuits.Suite.quick ())

let test_oscillation_budget () =
  (* a combinational loop through a transparent latch oscillates *)
  let b = B.create ~name:"osc" ~library:lib in
  let en = B.add_input ~clock:true b "en" in
  let q = B.fresh_net b "q" in
  let nq = B.fresh_net b "nq" in
  ignore (B.add_cell b "inv" "INV_X1" [("A", q); ("ZN", nq)]);
  ignore (B.add_cell b "l" "LATH_X1" [("E", en); ("D", nq); ("Q", q)]);
  B.add_output b "y" q;
  let d = B.freeze b in
  let clocks = Sim.Clock_spec.single ~period:1.0 ~port:"en" in
  let kernel = Sim.Kernel.create d ~clocks in
  try
    Sim.Kernel.run_cycle_broadcast kernel [];
    Alcotest.fail "expected Kernel.Oscillation"
  with Sim.Kernel.Oscillation _ -> ()

let test_popcount () =
  check Alcotest.int "zero" 0 (Sim.Kernel.popcount 0);
  check Alcotest.int "one" 1 (Sim.Kernel.popcount 1);
  check Alcotest.int "max_int" 62 (Sim.Kernel.popcount max_int);
  check Alcotest.int "min_int" 1 (Sim.Kernel.popcount min_int);
  (* OCaml ints are 63-bit: -1 is 63 ones, the full-width lane mask *)
  check Alcotest.int "all ones" 63 (Sim.Kernel.popcount (-1))

let suite =
  [ QCheck_alcotest.to_alcotest prop_kernel_matches_engine;
    Alcotest.test_case "heterogeneous lanes" `Quick test_heterogeneous_lanes;
    Alcotest.test_case "suite variants lane-0 identity" `Slow test_suite_variants;
    Alcotest.test_case "oscillation budget" `Quick test_oscillation_budget;
    Alcotest.test_case "popcount" `Quick test_popcount ]

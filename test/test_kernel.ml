(* Cross-checks of the bit-parallel Sim.Kernel against the scalar
   Sim.Engine oracle: lane 0 of the kernel must be bit-identical to the
   engine — same primary-output trace AND same per-net toggle counts —
   on random generated netlists and on the benchmark suite under all
   three design styles. *)

let check = Alcotest.check

let lib = Cell_lib.Default_library.library ()

module B = Netlist.Builder

let logic_to_string vs =
  String.concat ""
    (List.map (fun (p, v) -> Printf.sprintf "%s=%c " p (Sim.Logic.to_char v)) vs)

(* run both simulators cycle-for-cycle on the same stimulus; compare
   outputs each cycle (on lane 0 and on lanes straddling word
   boundaries) and the full toggle arrays at the end *)
let cross_check ?(label = "") ?(lanes = Sim.Kernel.max_lanes) d ~clocks stim =
  let engine = Sim.Engine.create d ~clocks in
  let kernel = Sim.Kernel.create ~lanes d ~clocks in
  let probe_lanes =
    List.sort_uniq compare
      (List.filter (fun l -> l > 0 && l < lanes) [1; 62; 63; 64; lanes - 1])
  in
  List.iteri
    (fun c inputs ->
      let eng_out = Sim.Engine.run_cycle engine inputs in
      Sim.Kernel.run_cycle_broadcast kernel inputs;
      let ker_out = Sim.Kernel.output_sample kernel ~lane:0 in
      if eng_out <> ker_out then
        Alcotest.failf "%s cycle %d outputs differ:\n engine %s\n kernel %s"
          label c (logic_to_string eng_out) (logic_to_string ker_out);
      List.iter
        (fun lane ->
          if Sim.Kernel.output_sample kernel ~lane <> eng_out then
            Alcotest.failf "%s cycle %d lane %d diverges from lane 0" label c
              lane)
        probe_lanes)
    stim;
  let et = Sim.Engine.toggles engine in
  let kt0 = Sim.Kernel.toggles_lane0 kernel in
  let kt = Sim.Kernel.toggles kernel in
  Array.iteri
    (fun n e ->
      if e <> kt0.(n) then
        Alcotest.failf "%s net %s: engine %d toggles, kernel lane0 %d" label
          (Netlist.Design.net_name d n) e kt0.(n);
      (* broadcast stimulus: every lane repeats lane 0 *)
      if kt.(n) <> lanes * kt0.(n) then
        Alcotest.failf "%s net %s: %d lanes x %d toggles <> total %d" label
          (Netlist.Design.net_name d n) lanes kt0.(n) kt.(n))
    et

let gen_spec seed =
  { Circuits.Generator.name = "xck"; seed; inputs = 5; outputs = 4;
    layers = [|5; 5|]; fanin = 3; cone_depth = 3; self_loop_fraction = 0.2;
    cross_feedback = 0.2; reuse = 0.2; gated_fraction = 0.3; bank_size = 3;
    po_cones = 3; frequency_mhz = 1000.0 }

let prop_kernel_matches_engine =
  QCheck.Test.make ~name:"kernel lane 0 matches engine on random netlists"
    ~count:15
    QCheck.(int_range 0 1000)
    (fun seed ->
      let d = Circuits.Generator.synthesize (gen_spec seed) in
      let clocks = Sim.Clock_spec.single ~period:1.0 ~port:"clk" in
      let stim =
        Sim.Stimulus.random ~seed:(seed + 1) ~cycles:24 ~toggle_probability:0.5
          (Sim.Stimulus.inputs_of d)
      in
      cross_check d ~clocks stim;
      true)

(* multi-word bitplanes: the same exactness must hold for lane counts
   below, at, and above the 63-lane word boundary, including partial
   final words *)
let prop_multiword_matches_engine =
  QCheck.Test.make ~name:"multi-word kernel matches engine across lane counts"
    ~count:8
    QCheck.(pair (int_range 0 1000) (oneofl [1; 63; 64; 126; 200]))
    (fun (seed, lanes) ->
      let d = Circuits.Generator.synthesize (gen_spec seed) in
      let clocks = Sim.Clock_spec.single ~period:1.0 ~port:"clk" in
      let stim =
        Sim.Stimulus.random ~seed:(seed + 1) ~cycles:16 ~toggle_probability:0.5
          (Sim.Stimulus.inputs_of d)
      in
      cross_check ~label:(Printf.sprintf "lanes=%d" lanes) ~lanes d ~clocks stim;
      true)

(* fusion and activity gating are pure optimisations: switching either
   off must not change a single output or toggle count on any lane *)
let prop_fusion_gating_equivalence =
  QCheck.Test.make ~name:"fusion/gating on-off equivalence" ~count:10
    QCheck.(int_range 0 1000)
    (fun seed ->
      let d = Circuits.Generator.synthesize (gen_spec seed) in
      let clocks = Sim.Clock_spec.single ~period:1.0 ~port:"clk" in
      let stim =
        Sim.Stimulus.random ~seed:(seed + 2) ~cycles:20 ~toggle_probability:0.4
          (Sim.Stimulus.inputs_of d)
      in
      let reference = Sim.Kernel.create d ~clocks in
      let variants =
        [ ("fuse-off", Sim.Kernel.create ~fuse:false d ~clocks);
          ("gating-off", Sim.Kernel.create ~gating:false d ~clocks);
          ("both-off", Sim.Kernel.create ~fuse:false ~gating:false d ~clocks) ]
      in
      List.iteri
        (fun c inputs ->
          Sim.Kernel.run_cycle_broadcast reference inputs;
          let expected = Sim.Kernel.output_sample reference ~lane:0 in
          List.iter
            (fun (label, k) ->
              Sim.Kernel.run_cycle_broadcast k inputs;
              if Sim.Kernel.output_sample k ~lane:0 <> expected then
                Alcotest.failf "%s cycle %d outputs diverge" label c)
            variants)
        stim;
      List.iter
        (fun (label, k) ->
          if Sim.Kernel.toggles k <> Sim.Kernel.toggles reference
             || Sim.Kernel.toggles_lane0 k
                <> Sim.Kernel.toggles_lane0 reference then
            Alcotest.failf "%s toggle counts diverge" label)
        variants;
      let off_stats = Sim.Kernel.stats (List.assoc "fuse-off" variants) in
      if off_stats.Sim.Kernel.fused_ops <> 0 then
        Alcotest.failf "fuse-off kernel reports %d fused ops"
          off_stats.Sim.Kernel.fused_ops;
      true)

(* different stimulus per lane: each lane must reproduce a dedicated
   scalar run *)
let test_heterogeneous_lanes () =
  let d = Circuits.Generator.synthesize (gen_spec 7) in
  let clocks = Sim.Clock_spec.single ~period:1.0 ~port:"clk" in
  let lanes = 4 in
  let streams =
    Array.init lanes (fun l ->
        Sim.Stimulus.random ~seed:(100 + l) ~cycles:20 ~toggle_probability:0.4
          (Sim.Stimulus.inputs_of d))
  in
  let kernel = Sim.Kernel.create ~lanes d ~clocks in
  Sim.Kernel.run_streams kernel streams;
  Array.iteri
    (fun l stream ->
      let engine = Sim.Engine.create d ~clocks in
      let expected = List.rev (Sim.Engine.run_stream engine stream) in
      let final = match expected with o :: _ -> o | [] -> [] in
      check Alcotest.bool (Printf.sprintf "lane %d final outputs" l) true
        (final = Sim.Kernel.output_sample kernel ~lane:l))
    streams

(* per-lane streams across a word boundary: every lane reproduces its
   dedicated scalar run, and the kernel's toggle totals are exactly the
   sum of the per-lane engine counts (catches partial-final-word mask
   errors in the popcount accounting) *)
let test_heterogeneous_lanes_multiword () =
  let d = Circuits.Generator.synthesize (gen_spec 9) in
  let clocks = Sim.Clock_spec.single ~period:1.0 ~port:"clk" in
  let lanes = 65 in
  let streams =
    Array.init lanes (fun l ->
        Sim.Stimulus.random ~seed:(300 + l) ~cycles:12 ~toggle_probability:0.4
          (Sim.Stimulus.inputs_of d))
  in
  let kernel = Sim.Kernel.create ~lanes d ~clocks in
  Sim.Kernel.run_streams kernel streams;
  let n_nets = Netlist.Design.num_nets d in
  let summed = Array.make n_nets 0 in
  Array.iteri
    (fun l stream ->
      let engine = Sim.Engine.create d ~clocks in
      let expected = List.rev (Sim.Engine.run_stream engine stream) in
      let final = match expected with o :: _ -> o | [] -> [] in
      check Alcotest.bool (Printf.sprintf "lane %d final outputs" l) true
        (final = Sim.Kernel.output_sample kernel ~lane:l);
      let et = Sim.Engine.toggles engine in
      Array.iteri (fun n c -> summed.(n) <- summed.(n) + c) et;
      if l = 0 then
        Array.iteri
          (fun n c ->
            if c <> (Sim.Kernel.toggles_lane0 kernel).(n) then
              Alcotest.failf "net %s lane-0 toggles: engine %d, kernel %d"
                (Netlist.Design.net_name d n) c
                (Sim.Kernel.toggles_lane0 kernel).(n))
          et)
    streams;
  let kt = Sim.Kernel.toggles kernel in
  Array.iteri
    (fun n total ->
      if total <> kt.(n) then
        Alcotest.failf "net %s: per-lane engine toggles sum %d, kernel %d"
          (Netlist.Design.net_name d n) total kt.(n))
    summed

let test_word_masks () =
  let masks = Alcotest.(list int) in
  let wm lanes = Array.to_list (Sim.Kernel.word_masks lanes) in
  check masks "1 lane" [1] (wm 1);
  check masks "62 lanes" [(1 lsl 62) - 1] (wm 62);
  check masks "63 lanes (exactly one full word)" [-1] (wm 63);
  check masks "64 lanes (one bit spills into word 2)" [-1; 1] (wm 64);
  check masks "126 lanes (two full words)" [-1; -1] (wm 126);
  check masks "200 lanes (partial final word)" [-1; -1; -1; (1 lsl 11) - 1]
    (wm 200)

(* the full quick suite, each design style with its own clocking *)
let test_suite_variants () =
  List.iter
    (fun (bench : Circuits.Suite.benchmark) ->
      let period = bench.Circuits.Suite.period_ns in
      let original = bench.Circuits.Suite.build () in
      let ff_clocks = Phase3.Flow.reference_clocks original ~period in
      let ms = Phase3.Master_slave.convert original in
      let config =
        { (Phase3.Flow.default_config ~period) with
          Phase3.Flow.verify_equivalence = false;
          activity_cycles = 32;
          (* plasma carries known SMO setup violations at its published
             period; this test exercises simulation, not sign-off *)
          lint = false }
      in
      let flow = Phase3.Flow.run ~config original in
      let threep_clocks = Phase3.Flow.clocks_of config in
      List.iter
        (fun (style, d, clocks) ->
          let stim =
            Sim.Stimulus.random ~seed:11 ~cycles:48 ~toggle_probability:0.35
              (Sim.Stimulus.inputs_of d)
          in
          let label =
            Printf.sprintf "%s/%s" bench.Circuits.Suite.bench_name style
          in
          cross_check ~label d ~clocks stim)
        [ ("ff", original, ff_clocks);
          ("ms", ms, ff_clocks);
          ("3p", flow.Phase3.Flow.final, threep_clocks) ])
    (Circuits.Suite.quick ())

let test_oscillation_budget () =
  (* a combinational loop through a transparent latch oscillates *)
  let b = B.create ~name:"osc" ~library:lib in
  let en = B.add_input ~clock:true b "en" in
  let q = B.fresh_net b "q" in
  let nq = B.fresh_net b "nq" in
  ignore (B.add_cell b "inv" "INV_X1" [("A", q); ("ZN", nq)]);
  ignore (B.add_cell b "l" "LATH_X1" [("E", en); ("D", nq); ("Q", q)]);
  B.add_output b "y" q;
  let d = B.freeze b in
  let clocks = Sim.Clock_spec.single ~period:1.0 ~port:"en" in
  let kernel = Sim.Kernel.create d ~clocks in
  try
    Sim.Kernel.run_cycle_broadcast kernel [];
    Alcotest.fail "expected Kernel.Oscillation"
  with Sim.Kernel.Oscillation _ -> ()

let test_popcount () =
  check Alcotest.int "zero" 0 (Sim.Kernel.popcount 0);
  check Alcotest.int "one" 1 (Sim.Kernel.popcount 1);
  check Alcotest.int "max_int" 62 (Sim.Kernel.popcount max_int);
  check Alcotest.int "min_int" 1 (Sim.Kernel.popcount min_int);
  (* OCaml ints are 63-bit: -1 is 63 ones, the full-width lane mask *)
  check Alcotest.int "all ones" 63 (Sim.Kernel.popcount (-1))

(* --- domain-parallel wave execution -------------------------------- *)

(* Parallel settle must be invisible: for any domain count, outputs,
   toggle counts (total and lane 0) and the jobs-independent stats all
   byte-match a serial kernel — and lane 0 stays bit-exact against the
   engine via the serial cross-checks above.  [par_threshold:1] forces
   every wave through the pool, worst case for the barrier merge. *)
let prop_parallel_matches_serial =
  QCheck.Test.make ~name:"parallel kernel matches serial for any domain count"
    ~count:5
    QCheck.(pair (int_range 0 1000) (oneofl [1; 63; 126]))
    (fun (seed, lanes) ->
      let d = Circuits.Generator.synthesize (gen_spec seed) in
      let clocks = Sim.Clock_spec.single ~period:1.0 ~port:"clk" in
      let streams =
        Array.init lanes (fun l ->
            Sim.Stimulus.random ~seed:(700 + seed + l) ~cycles:10
              ~toggle_probability:0.4 (Sim.Stimulus.inputs_of d))
      in
      let serial = Sim.Kernel.create ~jobs:1 ~lanes d ~clocks in
      Sim.Kernel.run_streams serial streams;
      let sstats = Sim.Kernel.stats serial in
      (* activity-predictive packing on one variant: re-packing by toggle
         rates moves chunk boundaries, never results *)
      let activity = (Sim.Kernel.toggles serial, Sim.Kernel.lane_cycles serial) in
      List.iter
        (fun jobs ->
          let activity = if jobs = 4 then Some activity else None in
          let k =
            Sim.Kernel.create ?activity ~lanes ~par_threshold:1 d ~clocks
          in
          Sim.Kernel.enable_parallel ~jobs k;
          Fun.protect ~finally:(fun () -> Sim.Kernel.disable_parallel k)
            (fun () -> Sim.Kernel.run_streams k streams);
          let label = Printf.sprintf "jobs=%d lanes=%d" jobs lanes in
          for lane = 0 to lanes - 1 do
            if Sim.Kernel.output_sample k ~lane
               <> Sim.Kernel.output_sample serial ~lane then
              Alcotest.failf "%s lane %d outputs diverge from serial" label lane
          done;
          if Sim.Kernel.toggles k <> Sim.Kernel.toggles serial then
            Alcotest.failf "%s toggle totals diverge" label;
          if Sim.Kernel.toggles_lane0 k <> Sim.Kernel.toggles_lane0 serial then
            Alcotest.failf "%s lane-0 toggles diverge" label;
          let kstats = Sim.Kernel.stats k in
          if
            (kstats.Sim.Kernel.units, kstats.Sim.Kernel.fused_ops,
             kstats.Sim.Kernel.stat_waves_skipped,
             kstats.Sim.Kernel.stat_cones_skipped)
            <> (sstats.Sim.Kernel.units, sstats.Sim.Kernel.fused_ops,
                sstats.Sim.Kernel.stat_waves_skipped,
                sstats.Sim.Kernel.stat_cones_skipped)
          then Alcotest.failf "%s jobs-independent stats diverge" label)
        [1; 2; 4; 7];
      true)

(* Barrier-ordering regression: heavy net reuse plus feedback builds a
   wide first wave whose units share fanout across any chunk boundary,
   so a merge that replayed wakes in completion order instead of slot
   order would reorder evaluations of the shared readers and corrupt
   glitch toggle counts.  Cross-check against the scalar engine, which
   also pins lane 0 end to end. *)
let test_parallel_cross_chunk_fanout () =
  let spec =
    { Circuits.Generator.name = "xchunk"; seed = 41; inputs = 8; outputs = 6;
      layers = [|48|]; fanin = 5; cone_depth = 3; self_loop_fraction = 0.5;
      cross_feedback = 0.5; reuse = 0.7; gated_fraction = 0.3; bank_size = 4;
      po_cones = 6; frequency_mhz = 1000.0 }
  in
  let d = Circuits.Generator.synthesize spec in
  let clocks = Sim.Clock_spec.single ~period:1.0 ~port:"clk" in
  let stim =
    Sim.Stimulus.random ~seed:42 ~cycles:20 ~toggle_probability:0.5
      (Sim.Stimulus.inputs_of d)
  in
  let engine = Sim.Engine.create d ~clocks in
  let k = Sim.Kernel.create ~par_threshold:1 d ~clocks in
  Sim.Kernel.enable_parallel ~jobs:3 k;
  Fun.protect ~finally:(fun () -> Sim.Kernel.disable_parallel k)
    (fun () ->
      check Alcotest.int "three domains" 3 (Sim.Kernel.parallel_domains k);
      List.iteri
        (fun c inputs ->
          let eng_out = Sim.Engine.run_cycle engine inputs in
          Sim.Kernel.run_cycle_broadcast k inputs;
          if Sim.Kernel.output_sample k ~lane:0 <> eng_out then
            Alcotest.failf "cycle %d: parallel kernel diverges from engine" c)
        stim);
  let et = Sim.Engine.toggles engine in
  let kt0 = Sim.Kernel.toggles_lane0 k in
  Array.iteri
    (fun n e ->
      if e <> kt0.(n) then
        Alcotest.failf "net %s: engine %d toggles, parallel kernel lane0 %d"
          (Netlist.Design.net_name d n) e kt0.(n))
    et;
  let kstats = Sim.Kernel.stats k in
  if kstats.Sim.Kernel.stat_par_waves = 0 then
    Alcotest.fail "pool attached but no wave ran in parallel";
  check Alcotest.int "stats report the attached domain count" 3
    kstats.Sim.Kernel.stat_domains;
  if Array.fold_left ( + ) 0 kstats.Sim.Kernel.stat_par_units = 0 then
    Alcotest.fail "parallel waves ran but per-domain unit counts are zero";
  if kstats.Sim.Kernel.stat_load_balance < 1.0 then
    Alcotest.failf "load balance %f below 1.0 (heaviest/ideal)"
      kstats.Sim.Kernel.stat_load_balance

(* run_streams manages a pool itself when [create ~jobs] allows it and
   the compiled shape can benefit: the pool must exist only for the
   duration of the run, and the run must match a serial kernel *)
let test_parallel_auto_attach () =
  let spec =
    { Circuits.Generator.name = "xauto"; seed = 43; inputs = 8; outputs = 6;
      layers = [|32|]; fanin = 4; cone_depth = 3; self_loop_fraction = 0.3;
      cross_feedback = 0.3; reuse = 0.4; gated_fraction = 0.3; bank_size = 5;
      po_cones = 4; frequency_mhz = 1000.0 }
  in
  let d = Circuits.Generator.synthesize spec in
  let clocks = Sim.Clock_spec.single ~period:1.0 ~port:"clk" in
  let streams =
    Array.init 4 (fun l ->
        Sim.Stimulus.random ~seed:(900 + l) ~cycles:12 ~toggle_probability:0.4
          (Sim.Stimulus.inputs_of d))
  in
  let serial = Sim.Kernel.create ~jobs:1 ~lanes:4 d ~clocks in
  Sim.Kernel.run_streams serial streams;
  let auto = Sim.Kernel.create ~jobs:3 ~lanes:4 ~par_threshold:1 d ~clocks in
  check Alcotest.int "no pool before the run" 1 (Sim.Kernel.parallel_domains auto);
  Sim.Kernel.run_streams auto streams;
  check Alcotest.int "pool detached after the run" 1
    (Sim.Kernel.parallel_domains auto);
  let kstats = Sim.Kernel.stats auto in
  if kstats.Sim.Kernel.stat_par_waves = 0 then
    Alcotest.fail "auto-attached pool ran no parallel wave";
  check Alcotest.int "auto-attached pool had three domains" 3
    kstats.Sim.Kernel.stat_domains;
  if Sim.Kernel.toggles auto <> Sim.Kernel.toggles serial then
    Alcotest.fail "auto-parallel run diverges from serial"

(* The deterministic wave-size histogram must be byte-identical for
   any THREEPHASE_JOBS: samples are taken at cursor arrival, before
   the wave is split across domains, so serial and parallel drains see
   the same occupancy sequence.  Heavy reuse + feedback (the xchunk
   shape) makes wide multi-chunk waves, the case where a sample taken
   inside the drain would diverge. *)
let test_wave_histogram_jobs_invariant () =
  let spec =
    { Circuits.Generator.name = "xhist"; seed = 47; inputs = 8; outputs = 6;
      layers = [|48|]; fanin = 5; cone_depth = 3; self_loop_fraction = 0.5;
      cross_feedback = 0.5; reuse = 0.7; gated_fraction = 0.3; bank_size = 4;
      po_cones = 6; frequency_mhz = 1000.0 }
  in
  let d = Circuits.Generator.synthesize spec in
  let clocks = Sim.Clock_spec.single ~period:1.0 ~port:"clk" in
  let streams =
    Array.init 4 (fun l ->
        Sim.Stimulus.random ~seed:(1100 + l) ~cycles:16
          ~toggle_probability:0.4 (Sim.Stimulus.inputs_of d))
  in
  let run jobs =
    Obs.reset ();
    let k = Sim.Kernel.create ~lanes:4 ~par_threshold:1 d ~clocks in
    if jobs > 1 then begin
      Sim.Kernel.enable_parallel ~jobs k;
      Fun.protect ~finally:(fun () -> Sim.Kernel.disable_parallel k)
        (fun () -> Sim.Kernel.run_streams k streams);
      if (Sim.Kernel.stats k).Sim.Kernel.stat_par_waves = 0 then
        Alcotest.fail "parallel path never engaged"
    end
    else Sim.Kernel.run_streams k streams;
    Obs.render_histograms ()
  in
  let serial = run 1 in
  if not (Astring.String.is_infix ~affix:"sim.kernel.wave.units" serial) then
    Alcotest.fail "wave histogram not populated";
  List.iter
    (fun jobs ->
      check Alcotest.string
        (Printf.sprintf "histograms byte-identical at jobs=%d" jobs)
        serial (run jobs))
    [2; 4]

let suite =
  [ QCheck_alcotest.to_alcotest prop_kernel_matches_engine;
    QCheck_alcotest.to_alcotest prop_multiword_matches_engine;
    QCheck_alcotest.to_alcotest prop_fusion_gating_equivalence;
    Alcotest.test_case "heterogeneous lanes" `Quick test_heterogeneous_lanes;
    Alcotest.test_case "heterogeneous lanes multi-word" `Quick
      test_heterogeneous_lanes_multiword;
    Alcotest.test_case "suite variants lane-0 identity" `Slow test_suite_variants;
    QCheck_alcotest.to_alcotest prop_parallel_matches_serial;
    Alcotest.test_case "parallel cross-chunk fanout" `Quick
      test_parallel_cross_chunk_fanout;
    Alcotest.test_case "parallel auto attach" `Quick test_parallel_auto_attach;
    Alcotest.test_case "wave histogram is jobs-invariant" `Quick
      test_wave_histogram_jobs_invariant;
    Alcotest.test_case "oscillation budget" `Quick test_oscillation_budget;
    Alcotest.test_case "popcount" `Quick test_popcount;
    Alcotest.test_case "word masks" `Quick test_word_masks ]

open Lexer

type st = {
  mutable toks : (token * Ast.loc) list;
  src : string;
  mutable last : Ast.loc;
}

let fail st loc fmt =
  Format.kasprintf (fun msg -> Diag.fail ~source:st.src ~loc "%s" msg) fmt

let cur_loc st = match st.toks with [] -> st.last | (_, l) :: _ -> l

let peek st = match st.toks with [] -> Teof | (t, _) :: _ -> t

let peek2 st = match st.toks with _ :: (t, _) :: _ -> t | _ -> Teof

let next st =
  match st.toks with
  | [] -> Teof
  | (t, l) :: rest -> st.toks <- rest; st.last <- l; t

let expect st want =
  let t = peek st in
  if t = Top want then ignore (next st)
  else fail st (cur_loc st) "expected '%s', got '%s'" want (token_to_string t)

let expect_kw st kw =
  let t = peek st in
  if t = Tid kw then ignore (next st)
  else fail st (cur_loc st) "expected '%s', got '%s'" kw (token_to_string t)

let expect_id st what =
  match peek st with
  | Tid s when not (String.length s > 0 && s.[0] = '$') ->
    ignore (next st); s
  | t -> fail st (cur_loc st) "expected %s, got '%s'" what (token_to_string t)

(* Keywords that cannot start an expression or a declarator name. *)
let reserved =
  [ "module"; "endmodule"; "input"; "output"; "inout"; "wire"; "logic";
    "reg"; "bit"; "assign"; "always_comb"; "always_ff"; "always";
    "always_latch"; "begin"; "end"; "if"; "else"; "case"; "casez"; "casex";
    "endcase"; "default"; "posedge"; "negedge"; "or"; "parameter";
    "localparam"; "generate"; "endgenerate"; "genvar"; "for"; "while";
    "function"; "endfunction"; "task"; "endtask"; "typedef"; "enum";
    "struct"; "union"; "interface"; "endinterface"; "package";
    "endpackage"; "import"; "initial"; "signed"; "unsigned"; "int";
    "integer"; "unique"; "priority"; "return" ]

let is_reserved s = List.mem s reserved

(* Explicitly rejected constructs, with a pointer to what to use instead;
   docs/RTL.md keeps the same table. *)
let unsupported =
  [ "always", "use always_comb or always_ff";
    "always_latch", "intentional latches are not part of the subset";
    "initial", "initial blocks are not synthesizable here";
    "generate", "generate blocks are unsupported; expand manually";
    "genvar", "generate blocks are unsupported; expand manually";
    "for", "loops are unsupported; expand manually";
    "while", "loops are unsupported; expand manually";
    "function", "functions are unsupported; use a module";
    "task", "tasks are unsupported";
    "typedef", "user types are unsupported; use plain vectors";
    "enum", "enums are unsupported; use localparam constants";
    "struct", "structs are unsupported; use plain vectors";
    "union", "unions are unsupported";
    "interface", "interfaces are unsupported; use plain ports";
    "package", "packages are unsupported";
    "import", "packages are unsupported";
    "inout", "bidirectional ports are unsupported";
    "signed", "signed arithmetic is unsupported; compute unsigned";
    "casez", "wildcard cases are unsupported; use case";
    "casex", "wildcard cases are unsupported; use case" ]

let check_unsupported st =
  match peek st with
  | Tid kw ->
    (match List.assoc_opt kw unsupported with
     | Some hint -> fail st (cur_loc st) "'%s' is unsupported: %s" kw hint
     | None -> ())
  | _ -> ()

(* --- Expressions: precedence climbing --- *)

(* Binary precedence levels, loosest first. *)
let binary_levels =
  [ ["||"]; ["&&"]; ["|"]; ["^"; "~^"; "^~"]; ["&"];
    ["=="; "!="]; ["<"; "<="; ">"; ">="]; ["<<"; ">>"; "<<<"; ">>>"];
    ["+"; "-"]; ["*"; "/"; "%"] ]

let unary_ops = ["~"; "!"; "-"; "+"; "&"; "|"; "^"; "~&"; "~|"; "~^"]

let rec parse_expr st : Ast.expr =
  let cond = parse_binary st binary_levels in
  match peek st with
  | Top "?" ->
    let loc = cur_loc st in
    ignore (next st);
    let then_e = parse_expr st in
    expect st ":";
    let else_e = parse_expr st in
    Ast.Eternary (cond, then_e, else_e, loc)
  | _ -> cond

and parse_binary st levels : Ast.expr =
  match levels with
  | [] -> parse_unary st
  | ops :: tighter ->
    let lhs = ref (parse_binary st tighter) in
    let continue = ref true in
    while !continue do
      match peek st with
      | Top op when List.mem op ops ->
        let loc = cur_loc st in
        ignore (next st);
        let rhs = parse_binary st tighter in
        lhs := Ast.Ebinary (op, !lhs, rhs, loc)
      | _ -> continue := false
    done;
    !lhs

and parse_unary st : Ast.expr =
  match peek st with
  | Top op when List.mem op unary_ops ->
    let loc = cur_loc st in
    ignore (next st);
    let operand = parse_unary st in
    if String.equal op "+" then operand else Ast.Eunary (op, operand, loc)
  | _ -> parse_primary st

and parse_primary st : Ast.expr =
  check_unsupported st;
  let loc = cur_loc st in
  match next st with
  | Tnum { width; value } -> Ast.Enum { width; value; loc }
  | Top "(" ->
    let e = parse_expr st in
    expect st ")";
    e
  | Top "{" ->
    let first = parse_expr st in
    (match peek st with
     | Top "{" ->
       (* replication {N{x}} *)
       ignore (next st);
       let inner = parse_expr st in
       expect st "}";
       expect st "}";
       Ast.Erepl (first, inner, loc)
     | _ ->
       let parts = ref [first] in
       while peek st = Top "," do
         ignore (next st);
         parts := parse_expr st :: !parts
       done;
       expect st "}";
       Ast.Econcat (List.rev !parts, loc))
  | Tid name when String.length name > 0 && name.[0] = '$' ->
    (* system function call, constant-context only ($clog2) *)
    expect st "(";
    let args = ref [parse_expr st] in
    while peek st = Top "," do
      ignore (next st);
      args := parse_expr st :: !args
    done;
    expect st ")";
    Ast.Efun (name, List.rev !args, loc)
  | Tid name when not (is_reserved name) -> parse_select st name loc
  | t -> fail st loc "expected an expression, got '%s'" (token_to_string t)

(* a, a[i], a[msb:lsb], a[base +: w], a[base -: w] *)
and parse_select st name loc : Ast.expr =
  match peek st with
  | Top "[" ->
    ignore (next st);
    let first = parse_expr st in
    (match peek st with
     | Top ":" ->
       ignore (next st);
       let lsb = parse_expr st in
       expect st "]";
       Ast.Epart (name, first, lsb, loc)
     | Top "+:" ->
       ignore (next st);
       let width = parse_expr st in
       expect st "]";
       (* a[base +: w] = a[base+w-1 : base] *)
       let msb =
         Ast.Ebinary ("-",
           Ast.Ebinary ("+", first, width, loc),
           Ast.Enum { width = None; value = 1; loc }, loc)
       in
       Ast.Epart (name, msb, first, loc)
     | Top "-:" ->
       ignore (next st);
       let width = parse_expr st in
       expect st "]";
       (* a[base -: w] = a[base : base-w+1] *)
       let lsb =
         Ast.Ebinary ("+",
           Ast.Ebinary ("-", first, width, loc),
           Ast.Enum { width = None; value = 1; loc }, loc)
       in
       Ast.Epart (name, first, lsb, loc)
     | _ ->
       expect st "]";
       (match peek st with
        | Top "[" ->
          fail st (cur_loc st)
            "multi-dimensional select on %s: memories/arrays are unsupported"
            name
        | _ -> Ast.Ebit (name, first, loc)))
  | _ -> Ast.Eid (name, loc)

(* --- Assignment targets --- *)

let rec parse_lval st : Ast.lval =
  let loc = cur_loc st in
  match peek st with
  | Top "{" ->
    ignore (next st);
    let parts = ref [parse_lval st] in
    while peek st = Top "," do
      ignore (next st);
      parts := parse_lval st :: !parts
    done;
    expect st "}";
    Ast.Lconcat (List.rev !parts, loc)
  | Tid name when not (is_reserved name) ->
    ignore (next st);
    (match peek st with
     | Top "[" ->
       ignore (next st);
       let first = parse_expr st in
       (match peek st with
        | Top ":" ->
          ignore (next st);
          let lsb = parse_expr st in
          expect st "]";
          Ast.Lpart (name, first, lsb, loc)
        | _ ->
          expect st "]";
          Ast.Lbit (name, first, loc))
     | _ -> Ast.Lid (name, loc))
  | t ->
    check_unsupported st;
    fail st loc "expected an assignment target, got '%s'" (token_to_string t)

(* --- Statements --- *)

(* [blocking] selects the required assignment operator: '=' inside
   always_comb, '<=' inside always_ff. *)
let rec parse_stmt st ~blocking : Ast.stmt =
  check_unsupported st;
  let loc = cur_loc st in
  match peek st with
  | Tid "begin" ->
    ignore (next st);
    let stmts = ref [] in
    while peek st <> Tid "end" && peek st <> Teof do
      stmts := parse_stmt st ~blocking :: !stmts
    done;
    expect_kw st "end";
    Ast.Sblock (List.rev !stmts, loc)
  | Tid "if" ->
    ignore (next st);
    expect st "(";
    let cond = parse_expr st in
    expect st ")";
    let then_s = parse_stmt st ~blocking in
    let else_s =
      if peek st = Tid "else" then begin
        ignore (next st);
        Some (parse_stmt st ~blocking)
      end
      else None
    in
    Ast.Sif (cond, then_s, else_s, loc)
  | Tid "case" ->
    ignore (next st);
    expect st "(";
    let subject = parse_expr st in
    expect st ")";
    let arms = ref [] and default = ref None in
    while peek st <> Tid "endcase" && peek st <> Teof do
      if peek st = Tid "default" then begin
        ignore (next st);
        if peek st = Top ":" then ignore (next st);
        (match !default with
         | Some _ -> fail st loc "duplicate default arm"
         | None -> default := Some (parse_stmt st ~blocking))
      end
      else begin
        let labels = ref [parse_expr st] in
        while peek st = Top "," do
          ignore (next st);
          labels := parse_expr st :: !labels
        done;
        expect st ":";
        let body = parse_stmt st ~blocking in
        arms := (List.rev !labels, body) :: !arms
      end
    done;
    expect_kw st "endcase";
    Ast.Scase (subject, List.rev !arms, !default, loc)
  | _ ->
    let lv = parse_lval st in
    (match next st with
     | Top "=" when blocking -> ()
     | Top "<=" when not blocking -> ()
     | Top "=" ->
       fail st loc "blocking '=' inside always_ff; use '<='"
     | Top "<=" ->
       fail st loc "non-blocking '<=' inside always_comb; use '='"
     | t -> fail st loc "expected an assignment, got '%s'" (token_to_string t));
    let rhs = parse_expr st in
    expect st ";";
    Ast.Sassign (lv, rhs, loc)

(* --- Declarations and module items --- *)

(* Skip an optional data-type-ish prefix in parameter declarations:
   'int', 'integer', 'unsigned', or a packed range. *)
let skip_param_type st =
  (match peek st with
   | Tid "int" | Tid "integer" -> ignore (next st)
   | _ -> ());
  (match peek st with
   | Tid "unsigned" -> ignore (next st)
   | _ -> ());
  (match peek st with
   | Top "[" ->
     (* ranged parameter: accept and ignore the range (values are ints) *)
     ignore (next st);
     let _ = parse_expr st in
     expect st ":";
     let _ = parse_expr st in
     expect st "]"
   | _ -> ())

let parse_range_opt st : Ast.range option =
  match peek st with
  | Top "[" ->
    ignore (next st);
    let msb = parse_expr st in
    expect st ":";
    let lsb = parse_expr st in
    expect st "]";
    (match peek st with
     | Top "[" ->
       fail st (cur_loc st) "multi-dimensional ranges (memories) are unsupported"
     | _ -> ());
    Some { Ast.msb; lsb }
  | _ -> None

let skip_net_kw st =
  match peek st with
  | Tid ("wire" | "logic" | "reg" | "bit") -> ignore (next st)
  | Tid "signed" ->
    fail st (cur_loc st) "'signed' is unsupported: signed arithmetic is unsupported; compute unsigned"
  | _ -> ()

(* Header parameter list: #(parameter int A = 1, B = 2, localparam ...) *)
let parse_param_ports st =
  expect st "#";
  expect st "(";
  let params = ref [] in
  let rec go () =
    (match peek st with
     | Tid "parameter" | Tid "localparam" -> ignore (next st)
     | _ -> ());
    skip_param_type st;
    let name = expect_id st "a parameter name" in
    expect st "=";
    let value = parse_expr st in
    params := (name, value) :: !params;
    match next st with
    | Top "," -> go ()
    | Top ")" -> ()
    | t ->
      fail st (cur_loc st) "malformed parameter list at '%s'" (token_to_string t)
  in
  (match peek st with
   | Top ")" -> ignore (next st)  (* empty #() *)
   | _ -> go ());
  List.rev !params

(* ANSI port list.  Direction and range carry over bare continuation
   names: (input logic [7:0] a, b, output y). *)
let parse_port_list st =
  expect st "(";
  let ports = ref [] in
  let dir = ref None and range = ref None in
  let rec go () =
    check_unsupported st;
    let loc = cur_loc st in
    (match peek st with
     | Tid "input" -> ignore (next st); dir := Some Ast.Input;
       skip_net_kw st; range := parse_range_opt st
     | Tid "output" -> ignore (next st); dir := Some Ast.Output;
       skip_net_kw st; range := parse_range_opt st
     | _ -> ());
    let name = expect_id st "a port name" in
    (match !dir with
     | None -> fail st loc "port %s needs a direction (non-ANSI headers are unsupported)" name
     | Some d ->
       ports :=
         { Ast.port_name = name; dir = d; port_range = !range; port_loc = loc }
         :: !ports);
    match next st with
    | Top "," -> go ()
    | Top ")" -> ()
    | t -> fail st (cur_loc st) "malformed port list at '%s'" (token_to_string t)
  in
  (match peek st with
   | Top ")" -> ignore (next st)
   | _ -> go ());
  List.rev !ports

let parse_sensitivity st =
  expect st "@";
  expect st "(";
  let edge_of () =
    match next st with
    | Tid "posedge" -> Ast.Posedge
    | Tid "negedge" -> Ast.Negedge
    | Top "*" ->
      fail st (cur_loc st) "always_ff requires posedge/negedge events"
    | t ->
      fail st (cur_loc st)
        "expected posedge/negedge, got '%s'" (token_to_string t)
  in
  let e1 = edge_of () in
  let s1 = expect_id st "a clock signal" in
  let second =
    if peek st = Tid "or" then begin
      ignore (next st);
      let e2 = edge_of () in
      let s2 = expect_id st "a reset signal" in
      Some (e2, s2)
    end
    else None
  in
  expect st ")";
  (e1, s1, second)

let parse_instance st ~target ~loc =
  let param_overrides =
    if peek st = Top "#" then begin
      ignore (next st);
      expect st "(";
      let ps = ref [] in
      let rec go () =
        expect st ".";
        let name = expect_id st "a parameter name" in
        expect st "(";
        let v = parse_expr st in
        expect st ")";
        ps := (name, v) :: !ps;
        match next st with
        | Top "," -> go ()
        | Top ")" -> ()
        | t ->
          fail st (cur_loc st) "malformed parameter override at '%s'"
            (token_to_string t)
      in
      (match peek st with
       | Top ")" -> ignore (next st)
       | _ -> go ());
      List.rev !ps
    end
    else []
  in
  let inst_name = expect_id st "an instance name" in
  expect st "(";
  let conns = ref [] in
  let rec go () =
    (match peek st with
     | Top "." when peek2 st = Top "*" ->
       fail st (cur_loc st) "'.*' connections are unsupported; name every port"
     | _ -> ());
    expect st ".";
    let port = expect_id st "a port name" in
    (match peek st with
     | Top "(" ->
       ignore (next st);
       (match peek st with
        | Top ")" -> ignore (next st); conns := (port, None) :: !conns
        | _ ->
          let e = parse_expr st in
          expect st ")";
          conns := (port, Some e) :: !conns)
     | _ ->
       (* .clk shorthand for .clk(clk) *)
       conns := (port, Some (Ast.Eid (port, cur_loc st))) :: !conns);
    match next st with
    | Top "," -> go ()
    | Top ")" -> ()
    | t -> fail st (cur_loc st) "malformed connection list at '%s'" (token_to_string t)
  in
  (match peek st with
   | Top ")" -> ignore (next st)
   | _ -> go ());
  expect st ";";
  Ast.Iinst
    { target; inst_name; param_overrides; conns = List.rev !conns;
      inst_loc = loc }

let rec parse_items st acc =
  check_unsupported st;
  let loc = cur_loc st in
  match peek st with
  | Tid "endmodule" ->
    ignore (next st);
    (* optional "endmodule : name" label *)
    (match peek st with
     | Top ":" -> ignore (next st); ignore (expect_id st "the module name")
     | _ -> ());
    List.rev acc
  | Teof -> fail st loc "missing endmodule"
  | Tid ("parameter" | "localparam") ->
    ignore (next st);
    skip_param_type st;
    let rec decls acc' =
      let name = expect_id st "a parameter name" in
      expect st "=";
      let value = parse_expr st in
      let d = Ast.Ilocalparam { lp_name = name; lp_value = value; lp_loc = loc } in
      match next st with
      | Top "," -> decls (d :: acc')
      | Top ";" -> List.rev (d :: acc')
      | t -> fail st (cur_loc st) "malformed parameter at '%s'" (token_to_string t)
    in
    parse_items st (List.rev_append (decls []) acc)
  | Tid ("wire" | "logic" | "reg" | "bit") ->
    ignore (next st);
    let range = parse_range_opt st in
    let rec decls acc' =
      let name = expect_id st "a net name" in
      let d = Ast.Inet { net_name = name; net_range = range; net_loc = loc } in
      match next st with
      | Top "," -> decls (d :: acc')
      | Top ";" -> List.rev (d :: acc')
      | Top "=" ->
        (* declaration with init: logic [3:0] x = expr; *)
        let rhs = parse_expr st in
        expect st ";";
        List.rev (Ast.Iassign (Ast.Lid (name, loc), rhs, loc) :: d :: acc')
      | t -> fail st (cur_loc st) "malformed declaration at '%s'" (token_to_string t)
    in
    parse_items st (List.rev_append (decls []) acc)
  | Tid "assign" ->
    ignore (next st);
    let lv = parse_lval st in
    expect st "=";
    let rhs = parse_expr st in
    expect st ";";
    parse_items st (Ast.Iassign (lv, rhs, loc) :: acc)
  | Tid "always_comb" ->
    ignore (next st);
    let body = parse_stmt st ~blocking:true in
    parse_items st (Ast.Ialways_comb (body, loc) :: acc)
  | Tid "always_ff" ->
    ignore (next st);
    let e1, s1, second = parse_sensitivity st in
    let body = parse_stmt st ~blocking:false in
    parse_items st
      (Ast.Ialways_ff
         { clock = s1; clock_edge = e1; areset = second; ff_body = body;
           ff_loc = loc }
       :: acc)
  | Tid name when not (is_reserved name) ->
    ignore (next st);
    parse_items st (parse_instance st ~target:name ~loc :: acc)
  | t -> fail st loc "unexpected '%s' in module body" (token_to_string t)

let parse_module st =
  expect_kw st "module";
  let loc = st.last in
  let name = expect_id st "a module name" in
  let params = if peek st = Top "#" then parse_param_ports st else [] in
  let ports = if peek st = Top "(" then parse_port_list st else [] in
  expect st ";";
  let items = parse_items st [] in
  { Ast.module_name = name; params; ports; items; module_loc = loc }

let parse ?(file = "<string>") src =
  let st = { toks = Lexer.tokenize ~file src; src;
             last = Netlist_io.Srcloc.make ~file ~line:1 ~col:1 }
  in
  let modules = ref [] in
  while peek st <> Teof do
    check_unsupported st;
    (match peek st with
     | Tid "module" -> modules := parse_module st :: !modules
     | t ->
       fail st (cur_loc st) "expected 'module', got '%s'" (token_to_string t))
  done;
  let ms = List.rev !modules in
  (* duplicate module names are almost always a paste error *)
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (m : Ast.module_) ->
      if Hashtbl.mem seen m.Ast.module_name then
        Diag.fail ~source:src ~loc:m.Ast.module_loc
          "duplicate module %s" m.Ast.module_name;
      Hashtbl.add seen m.Ast.module_name ())
    ms;
  { Ast.file; text = src; modules = ms }

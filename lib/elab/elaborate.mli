(** Elaboration: parsed SystemVerilog to the gate-level IR.

    Takes an {!Ast.source}, picks a top module, flattens the hierarchy
    (parameter overrides are evaluated per instance), lowers
    [always_ff]/[always_comb]/[assign] through {!Techmap} onto library
    gates, and maps registers onto the library's flip-flops — a plain
    DFF when the block has no async reset, the resettable DFF (with
    complement storage for reset-to-1 bits) when it does.  Vector
    signals become one net per bit named [v[i]]; hierarchy flattens
    into [inst$sig] names, so designs round-trip through
    {!Netlist_io.Verilog.write}.

    Clock discovery: any signal used as an [always_ff] clock, or
    reaching a child's clock port, is a clock; at the top it must be a
    scalar input port and is registered as a clock root.  Async-reset
    signals are ordinary data inputs.

    Width rules are self-determined and unsigned (documented
    divergences from IEEE 1800 — see [docs/RTL.md]): arithmetic and
    bitwise results take [max] of the operand widths (the add carry is
    dropped; write [{1'b0, a} + b] to keep it), [*] produces the full
    product, comparisons and reductions are 1 bit, shifts take the left
    operand's width, and assignments zero-extend or truncate.

    All failures raise {!Diag.Error} with file/line/column and a source
    excerpt. *)

(** [design_of_source ?top ~library src] elaborates [src].  [top]
    selects the root module; when omitted the unique uninstantiated
    module is used (anything else is an error). *)
val design_of_source :
  ?top:string -> library:Cell_lib.Library.t -> Ast.source ->
  Netlist.Design.t

(** [read ?file ?top ~library src] = {!Parser.parse} +
    {!design_of_source}; [file] labels diagnostics. *)
val read :
  ?file:string -> ?top:string -> library:Cell_lib.Library.t -> string ->
  Netlist.Design.t

exception Error of Netlist_io.Srcloc.t option * string

let () =
  Printexc.register_printer (function
    | Error (loc, msg) ->
      Some
        (Printf.sprintf "Elab.Diag.Error (%s)"
           (match loc with
            | Some l -> Netlist_io.Srcloc.to_string l ^ ": " ^ msg
            | None -> msg))
    | _ -> None)

let fail ?source ?loc fmt =
  Format.kasprintf
    (fun msg ->
      raise (Error (loc, Netlist_io.Srcloc.message ?source ?loc msg)))
    fmt

let message_of = function
  | Error (_, msg) -> msg
  | e -> Printexc.to_string e

(* --- Lint collection ---------------------------------------------- *)

(* Non-fatal findings (rules RTL-001..RTL-004) accumulate here while a [collect] is
   active; outside one, [lintf] is a no-op so plain elaboration is
   unaffected. *)
let collector : Lint_core.Diagnostic.t list ref option ref = ref None

let lint_pos (l : Netlist_io.Srcloc.t) =
  Lint_core.Diagnostic.Src
    { Lint_core.Diagnostic.file = l.Netlist_io.Srcloc.file;
      line = l.Netlist_io.Srcloc.line;
      col = l.Netlist_io.Srcloc.col }

let lintf ~rule ~severity ?loc fmt =
  Format.kasprintf
    (fun msg ->
      match !collector with
      | None -> ()
      | Some acc ->
        acc :=
          Lint_core.Diagnostic.make ~rule ~severity
            ?loc:(Option.map lint_pos loc) msg
          :: !acc)
    fmt

let collect f =
  let acc = ref [] in
  let saved = !collector in
  collector := Some acc;
  Fun.protect
    ~finally:(fun () -> collector := saved)
    (fun () ->
      let r = f () in
      (r, List.rev !acc))

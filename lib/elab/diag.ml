exception Error of Netlist_io.Srcloc.t option * string

let () =
  Printexc.register_printer (function
    | Error (loc, msg) ->
      Some
        (Printf.sprintf "Elab.Diag.Error (%s)"
           (match loc with
            | Some l -> Netlist_io.Srcloc.to_string l ^ ": " ^ msg
            | None -> msg))
    | _ -> None)

let fail ?source ?loc fmt =
  Format.kasprintf
    (fun msg ->
      raise (Error (loc, Netlist_io.Srcloc.message ?source ?loc msg)))
    fmt

let message_of = function
  | Error (_, msg) -> msg
  | e -> Printexc.to_string e

type token =
  | Tid of string                               (* identifiers and keywords *)
  | Tnum of { width : int option; value : int } (* numeric literal *)
  | Top of string                               (* operator / punctuation *)
  | Teof

let token_to_string = function
  | Tid s -> s
  | Tnum { width = Some w; value } -> Printf.sprintf "%d'd%d" w value
  | Tnum { width = None; value } -> string_of_int value
  | Top s -> s
  | Teof -> "<eof>"

(* Multi-character operators, longest first so maximal munch works. *)
let operators =
  [ "<<<"; ">>>"; "<<"; ">>"; "<="; ">="; "=="; "!="; "&&"; "||";
    "~&"; "~|"; "~^"; "^~"; "+:"; "-:";
    "+"; "-"; "*"; "/"; "%"; "&"; "|"; "^"; "~"; "!"; "<"; ">"; "=";
    "("; ")"; "["; "]"; "{"; "}"; ";"; ","; "."; ":"; "?"; "@"; "#" ]

let is_id_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = '$'

let is_id_char c = is_id_start c || (c >= '0' && c <= '9')

let is_digit c = c >= '0' && c <= '9'

let digit_value base c =
  let v =
    if is_digit c then Char.code c - Char.code '0'
    else if c >= 'a' && c <= 'f' then 10 + Char.code c - Char.code 'a'
    else if c >= 'A' && c <= 'F' then 10 + Char.code c - Char.code 'A'
    else -1
  in
  if v >= 0 && v < base then Some v else None

let tokenize ~file src =
  let n = String.length src in
  let toks = ref [] in
  let line = ref 1 and bol = ref 0 in
  let loc_at i = Netlist_io.Srcloc.make ~file ~line:!line ~col:(i - !bol + 1) in
  let fail i fmt =
    Format.kasprintf
      (fun msg -> Diag.fail ~source:src ~loc:(loc_at i) "%s" msg) fmt
  in
  let newline i = incr line; bol := i + 1 in
  (* based digits after a ' marker: returns (value, next index) *)
  let based_digits i0 base =
    let v = ref 0 and i = ref i0 and seen = ref false in
    let continue = ref true in
    while !continue && !i < n do
      let c = src.[!i] in
      if c = '_' then incr i
      else
        match digit_value base c with
        | Some d ->
          if !v > (max_int - d) / base then fail !i "numeric literal overflows";
          v := (!v * base) + d;
          seen := true;
          incr i
        | None ->
          if (c = 'x' || c = 'X' || c = 'z' || c = 'Z' || c = '?')
          && (base = 2 || base = 8 || base = 16) then
            fail !i "x/z digits are unsupported (2-valued elaboration)"
          else continue := false
    done;
    if not !seen then fail i0 "expected digits in based literal";
    (!v, !i)
  in
  let rec go i =
    if i >= n then ()
    else
      match src.[i] with
      | '\n' -> newline i; go (i + 1)
      | ' ' | '\t' | '\r' -> go (i + 1)
      | '/' when i + 1 < n && src.[i + 1] = '/' ->
        let j = ref i in
        while !j < n && src.[!j] <> '\n' do incr j done;
        go !j
      | '/' when i + 1 < n && src.[i + 1] = '*' ->
        let j = ref (i + 2) in
        while !j + 1 < n && not (src.[!j] = '*' && src.[!j + 1] = '/') do
          if src.[!j] = '\n' then newline !j;
          incr j
        done;
        if !j + 1 >= n then fail i "unterminated block comment";
        go (!j + 2)
      | '(' when i + 1 < n && src.[i + 1] = '*' ->
        (* attribute instance (* ... *) — skipped; '(' followed by '*' is
           never legal expression syntax, so this is unambiguous *)
        let j = ref (i + 2) in
        while !j + 1 < n && not (src.[!j] = '*' && src.[!j + 1] = ')') do
          if src.[!j] = '\n' then newline !j;
          incr j
        done;
        if !j + 1 >= n then fail i "unterminated (* attribute *)";
        go (!j + 2)
      | '`' ->
        (* compiler directives (`timescale, `define, ...): skip the line *)
        let j = ref i in
        while !j < n && src.[!j] <> '\n' do incr j done;
        go !j
      | '"' -> fail i "string literals are unsupported"
      | '\'' ->
        (* unbased or unsized-based literal: '0, 'b101, 'hFF *)
        if i + 1 >= n then fail i "lone '"
        else begin
          let j = i + 1 in
          let j = if j < n && (src.[j] = 's' || src.[j] = 'S') then
              fail j "signed literals are unsupported" else j
          in
          match src.[j] with
          | 'b' | 'B' ->
            let v, k = based_digits (j + 1) 2 in
            toks := (Tnum { width = None; value = v }, loc_at i) :: !toks;
            go k
          | 'o' | 'O' ->
            let v, k = based_digits (j + 1) 8 in
            toks := (Tnum { width = None; value = v }, loc_at i) :: !toks;
            go k
          | 'd' | 'D' ->
            let v, k = based_digits (j + 1) 10 in
            toks := (Tnum { width = None; value = v }, loc_at i) :: !toks;
            go k
          | 'h' | 'H' ->
            let v, k = based_digits (j + 1) 16 in
            toks := (Tnum { width = None; value = v }, loc_at i) :: !toks;
            go k
          | '0' ->
            toks := (Tnum { width = None; value = 0 }, loc_at i) :: !toks;
            go (j + 1)
          | '1' ->
            fail i "unbased '1 is unsupported; use a sized literal like 4'hF"
          | c -> fail i "bad literal '%c" c
        end
      | c when is_digit c ->
        (* decimal run, optionally the size of a based literal *)
        let j = ref i and v = ref 0 in
        while !j < n && (is_digit src.[!j] || src.[!j] = '_') do
          if src.[!j] <> '_' then begin
            let d = Char.code src.[!j] - Char.code '0' in
            if !v > (max_int - d) / 10 then fail i "numeric literal overflows";
            v := (!v * 10) + d
          end;
          incr j
        done;
        if !j < n && src.[!j] = '\'' then begin
          (* sized based literal: 8'hFF *)
          let width = !v in
          if width <= 0 then fail i "literal width must be positive";
          if width > 62 then
            fail i "literal width %d exceeds the supported 62 bits" width;
          let k = !j + 1 in
          if k >= n then fail !j "truncated based literal";
          let k =
            if src.[k] = 's' || src.[k] = 'S' then
              fail k "signed literals are unsupported"
            else k
          in
          let base =
            match src.[k] with
            | 'b' | 'B' -> 2 | 'o' | 'O' -> 8 | 'd' | 'D' -> 10 | 'h' | 'H' -> 16
            | c -> fail k "bad base '%c' in literal" c
          in
          let value, k' = based_digits (k + 1) base in
          if width < 62 && value lsr width <> 0 then
            fail i "literal value does not fit in %d bits" width;
          toks := (Tnum { width = Some width; value }, loc_at i) :: !toks;
          go k'
        end
        else begin
          toks := (Tnum { width = None; value = !v }, loc_at i) :: !toks;
          go !j
        end
      | c when is_id_start c ->
        let j = ref i in
        while !j < n && is_id_char src.[!j] do incr j done;
        toks := (Tid (String.sub src i (!j - i)), loc_at i) :: !toks;
        go !j
      | _ ->
        (match
           List.find_opt
             (fun op ->
               let l = String.length op in
               i + l <= n && String.equal (String.sub src i l) op)
             operators
         with
         | Some op ->
           toks := (Top op, loc_at i) :: !toks;
           go (i + String.length op)
         | None -> fail i "unexpected character %C" src.[i])
  in
  go 0;
  List.rev !toks

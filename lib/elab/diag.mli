(** Diagnostics for the SystemVerilog front-end.

    All lexer, parser and elaborator failures raise {!Error} carrying
    the source position (file, 1-based line/column) of the offending
    token and a message that already embeds a ["file:line:col:"] prefix
    plus a one-line source excerpt with a caret — see
    {!Netlist_io.Srcloc}. *)

exception Error of Netlist_io.Srcloc.t option * string

(** [fail ?source ?loc fmt ...] raises {!Error} with a formatted
    message; when [source] is given the excerpt line is appended. *)
val fail :
  ?source:string -> ?loc:Netlist_io.Srcloc.t ->
  ('a, Format.formatter, unit, 'b) format4 -> 'a

(** The human-readable message of an {!Error} (already located), or
    [Printexc.to_string] for any other exception. *)
val message_of : exn -> string

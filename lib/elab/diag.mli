(** Diagnostics for the SystemVerilog front-end.

    All lexer, parser and elaborator failures raise {!Error} carrying
    the source position (file, 1-based line/column) of the offending
    token and a message that already embeds a ["file:line:col:"] prefix
    plus a one-line source excerpt with a caret — see
    {!Netlist_io.Srcloc}.

    Non-fatal findings (the [RTL-*] lint rules) go through {!lintf}:
    inside a {!collect} they accumulate as {!Lint_core.Diagnostic.t}s,
    outside one they are dropped, so elaboration behaves identically
    whether or not anyone is listening. *)

exception Error of Netlist_io.Srcloc.t option * string

(** [fail ?source ?loc fmt ...] raises {!Error} with a formatted
    message; when [source] is given the excerpt line is appended. *)
val fail :
  ?source:string -> ?loc:Netlist_io.Srcloc.t ->
  ('a, Format.formatter, unit, 'b) format4 -> 'a

(** The human-readable message of an {!Error} (already located), or
    [Printexc.to_string] for any other exception. *)
val message_of : exn -> string

(** Record a lint finding at an (optional) source location.  A no-op
    unless a {!collect} is active. *)
val lintf :
  rule:string -> severity:Lint_core.Diagnostic.severity ->
  ?loc:Netlist_io.Srcloc.t ->
  ('a, Format.formatter, unit, unit) format4 -> 'a

(** [collect f] runs [f] with lint collection enabled and returns its
    result along with the findings, in emission order.  Nests: the
    enclosing collector is restored afterwards (also on exceptions). *)
val collect : (unit -> 'a) -> 'a * Lint_core.Diagnostic.t list

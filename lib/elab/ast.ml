(* Abstract syntax for the supported word-level SystemVerilog subset.
   Produced by Parser, consumed by Elaborate; docs/RTL.md documents the
   concrete grammar.  Locations are Netlist_io.Srcloc.t and point at the
   first token of each node. *)

type loc = Netlist_io.Srcloc.t

type edge = Posedge | Negedge

(* Expressions.  Selects apply to identifiers only (no select-of-select),
   which is all the subset's grammar can produce. *)
type expr =
  | Eid of string * loc
  | Enum of { width : int option; value : int; loc : loc }
      (* sized or unsized literal; unsized literals take minimal width *)
  | Eunary of string * expr * loc
      (* ~ ! - & | ^ ~& ~| ~^ (reduction ops included) *)
  | Ebinary of string * expr * expr * loc
      (* + - * / % & | ^ ~^ && || == != < <= > >= << >> <<< >>> *)
  | Eternary of expr * expr * expr * loc
  | Ebit of string * expr * loc          (* a[i]; i constant or dynamic *)
  | Epart of string * expr * expr * loc  (* a[msb:lsb]; both constant *)
  | Econcat of expr list * loc           (* {a, b, ...}, msb-first *)
  | Erepl of expr * expr * loc           (* {N{x}}; N constant *)
  | Efun of string * expr list * loc     (* $clog2 in constant context *)

(* Assignment targets. *)
type lval =
  | Lid of string * loc
  | Lbit of string * expr * loc          (* q[i]; i constant *)
  | Lpart of string * expr * expr * loc  (* q[msb:lsb]; constant *)
  | Lconcat of lval list * loc           (* {c, s}, msb-first *)

(* Procedural statements (bodies of always_comb / always_ff). *)
type stmt =
  | Sblock of stmt list * loc
  | Sassign of lval * expr * loc   (* '=' in always_comb, '<=' in always_ff *)
  | Sif of expr * stmt * stmt option * loc
  | Scase of expr * (expr list * stmt) list * stmt option * loc
      (* arms are (labels, body); the option is the default arm *)

type range = { msb : expr; lsb : expr }  (* constant expressions *)

type direction = Input | Output

type port = {
  port_name : string;
  dir : direction;
  port_range : range option;  (* None = scalar *)
  port_loc : loc;
}

type item =
  | Ilocalparam of { lp_name : string; lp_value : expr; lp_loc : loc }
  | Inet of { net_name : string; net_range : range option; net_loc : loc }
  | Iassign of lval * expr * loc
  | Ialways_comb of stmt * loc
  | Ialways_ff of {
      clock : string;
      clock_edge : edge;
      areset : (edge * string) option;  (* async reset in the sensitivity *)
      ff_body : stmt;
      ff_loc : loc;
    }
  | Iinst of {
      target : string;                       (* instantiated module name *)
      inst_name : string;
      param_overrides : (string * expr) list;
      conns : (string * expr option) list;   (* named; None = unconnected *)
      inst_loc : loc;
    }

type module_ = {
  module_name : string;
  params : (string * expr) list;  (* header parameters with defaults, ordered *)
  ports : port list;
  items : item list;
  module_loc : loc;
}

type source = {
  file : string;
  text : string;       (* original source, for error excerpts *)
  modules : module_ list;
}

let loc_of_expr = function
  | Eid (_, l) | Eunary (_, _, l) | Ebinary (_, _, _, l)
  | Eternary (_, _, _, l) | Ebit (_, _, l) | Epart (_, _, _, l)
  | Econcat (_, l) | Erepl (_, _, l) | Efun (_, _, l) -> l
  | Enum { loc; _ } -> loc

let loc_of_lval = function
  | Lid (_, l) | Lbit (_, _, l) | Lpart (_, _, _, l) | Lconcat (_, l) -> l

let loc_of_stmt = function
  | Sblock (_, l) | Sassign (_, _, l) | Sif (_, _, _, l) | Scase (_, _, _, l) -> l

let find_module src name =
  List.find_opt (fun m -> String.equal m.module_name name) src.modules

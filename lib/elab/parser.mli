(** Recursive-descent parser for the supported SystemVerilog subset.

    Accepts ANSI-header modules with [#(parameter ...)] lists, vector
    ports and nets, [assign], [always_comb], [always_ff] (posedge clock
    with an optional async-reset event), [if]/[case] statements, and
    named-connection instantiation with [#(.P(v))] overrides and the
    [.clk] shorthand.  Constructs outside the subset ([generate],
    functions, [for], typedefs, non-ANSI headers, [.*], positional
    connections, [signed], ...) raise {!Diag.Error} with a located
    message naming the construct and, where one exists, the supported
    alternative.  The accepted grammar is tabulated in [docs/RTL.md]. *)

(** [parse ?file src] parses every module in [src].  Raises
    {!Diag.Error} on lexical or syntax errors; [file] only labels
    diagnostics. *)
val parse : ?file:string -> string -> Ast.source

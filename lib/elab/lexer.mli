(** Tokenizer for the SystemVerilog subset.

    Produces located tokens; keywords are returned as {!Tid} and
    distinguished by the parser.  Comments, [(* attribute *)] instances
    and backtick compiler directives (whole line) are skipped.  Numeric
    literals are 2-valued and limited to 62 bits (an OCaml immediate):
    [x]/[z] digits, signed ([s]) markers, string literals and the
    unbased all-ones ['1] raise {!Diag.Error} with the offending
    position. *)

type token =
  | Tid of string
      (** identifier or keyword *)
  | Tnum of { width : int option; value : int }
      (** numeric literal; [width = None] for unsized (including ['0]
          and unsized-based forms like ['hFF]) *)
  | Top of string
      (** operator or punctuation, spelled as written *)
  | Teof

(** Rendering for error messages. *)
val token_to_string : token -> string

(** [tokenize ~file src] scans the whole source.  Raises {!Diag.Error}
    on lexical errors. *)
val tokenize :
  file:string -> string -> (token * Netlist_io.Srcloc.t) list

(** Word-level operators over library gates.

    A {!word} is an array of nets, index 0 = LSB.  Every operator builds
    combinational cells through {!Netlist.Gates} / {!Netlist.Builder};
    when an [?out] word is supplied the result is driven onto those nets
    (used to land values on a variable's canonical nets), otherwise
    fresh nets are allocated.  [prefix] seeds generated net and instance
    names and must be unique per call site.

    Width discipline is the elaborator's job: binary operators assert
    equal operand widths; use {!resize} (zero-extend / truncate) first.
    All arithmetic is unsigned — see [docs/RTL.md] for the divergences
    from IEEE 1800 width rules. *)

type word = Netlist.Design.net array

val width : word -> int

(** [width]-bit constant; bits beyond 62 are zero. *)
val const_word : Netlist.Builder.t -> width:int -> int -> word

(** Zero-extend or truncate to the given width.  Never emits gates. *)
val resize : Netlist.Builder.t -> word -> int -> word

(** Per-bit buffer; the way a computed word is tied onto canonical nets. *)
val buf : Netlist.Builder.t -> ?out:word -> word -> prefix:string -> word

val bnot : Netlist.Builder.t -> ?out:word -> word -> prefix:string -> word

(** Per-bit binary bitwise op ([And]/[Or]/[Xor]/[Xnor]/...). *)
val binop :
  Netlist.Builder.t -> Netlist.Gates.op -> ?out:word -> word -> word ->
  prefix:string -> word

(** Reduction ([&w], [|w], [^w] and inverted forms) to a 1-bit word. *)
val reduce :
  Netlist.Builder.t -> Netlist.Gates.op -> word -> prefix:string -> word

(** [mux b ~sel ~if0 ~if1 ()] = [sel ? if1 : if0], one MUX2 per bit;
    bits whose arms are the same net pass through cell-free. *)
val mux :
  Netlist.Builder.t -> sel:Netlist.Design.net -> ?out:word ->
  if0:word -> if1:word -> prefix:string -> unit -> word

(** Ripple-carry [a + b + cin]; returns (sum, carry-out). *)
val add_c :
  Netlist.Builder.t -> ?out:word -> word -> word ->
  cin:Netlist.Design.net -> prefix:string -> word * Netlist.Design.net

(** [a + b], carry dropped (write [{1'b0,a} + b] in RTL to keep it). *)
val add :
  Netlist.Builder.t -> ?out:word -> word -> word -> prefix:string -> word

(** [a - b] (two's complement wraparound). *)
val sub :
  Netlist.Builder.t -> ?out:word -> word -> word -> prefix:string -> word

(** Unsigned [a < b] / [a >= b] as 1-bit words, via one subtract chain. *)
val ult : Netlist.Builder.t -> word -> word -> prefix:string -> word
val uge : Netlist.Builder.t -> word -> word -> prefix:string -> word

(** Equality / inequality as 1-bit words. *)
val eq : Netlist.Builder.t -> word -> word -> prefix:string -> word
val ne : Netlist.Builder.t -> word -> word -> prefix:string -> word

(** Full [wa+wb]-bit unsigned product (shift-and-add). *)
val mul :
  Netlist.Builder.t -> ?out:word -> word -> word -> prefix:string -> word

(** Logical shifts by a dynamic amount (logarithmic barrel shifter,
    zero fill; amounts >= the word width yield zero).  Constant shift
    amounts should be handled as pure rearrangement by the caller. *)
val shl :
  Netlist.Builder.t -> ?out:word -> word -> word -> prefix:string -> word
val shr :
  Netlist.Builder.t -> ?out:word -> word -> word -> prefix:string -> word

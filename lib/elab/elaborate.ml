open Ast
module Env = Map.Make (String)
module SSet = Set.Make (String)

(* An elaborated variable: canonical nets (index 0 = LSB), the declared
   LSB offset ([7:4] stores lsb = 4), and per-bit driver bookkeeping so
   conflicting drivers fail with a located message instead of a late
   Builder.freeze exception. *)
type var = {
  nets : Techmap.word;
  v_lsb : int;
  driven : bool array;
  mutable v_read : bool;  (* any bit read anywhere, for RTL-003 *)
}

type ctx = {
  b : Netlist.Builder.t;
  src : string;
  modules : Ast.module_ list;
  clock_sets : (string, SSet.t) Hashtbl.t;
  ff_cell : Cell_lib.Cell.t;
  ffr_cell : Cell_lib.Cell.t;
  mutable gensym : int;
}

type scope = {
  ctx : ctx;
  prefix : string;  (* hierarchical path, "" at top, "u1$" below *)
  mutable params : int Env.t;
  vars : (string, var) Hashtbl.t;
}

(* Reads inside procedural blocks differ by block kind:
   - continuous assigns read canonical nets;
   - always_ff reads canonical nets too (non-blocking semantics: every
     RHS sees pre-edge values);
   - always_comb reads of the block's own targets go through the
     procedural environment (blocking semantics), everything else is
     canonical. *)
type mode = Mcont | Mff | Mcomb of SSet.t

(* Procedural value: per-bit nets, None = not assigned on every path. *)
type pval = Netlist.Design.net option array

let errf ctx loc fmt = Diag.fail ~source:ctx.src ~loc fmt

let gpfx sc base =
  sc.ctx.gensym <- sc.ctx.gensym + 1;
  Printf.sprintf "%s%s%d" sc.prefix base sc.ctx.gensym

let bits_needed v =
  let rec go n acc = if n = 0 then max 1 acc else go (n lsr 1) (acc + 1) in
  go v 0

let clog2 n = if n <= 1 then 0 else bits_needed (n - 1)

let bitname prefix name ~scalar ~lsb i =
  if scalar then prefix ^ name
  else Printf.sprintf "%s%s[%d]" prefix name (lsb + i)

(* --- Constant expressions (parameters, ranges, selects) --- *)

let rec eval_const ctx params e : int =
  let ec = eval_const ctx params in
  match e with
  | Enum { value; _ } -> value
  | Eid (n, loc) ->
    (match Env.find_opt n params with
     | Some v -> v
     | None ->
       errf ctx loc "'%s' is not a constant (only parameters are allowed here)" n)
  | Eunary ("-", a, _) -> -(ec a)
  | Eunary ("!", a, _) -> if ec a = 0 then 1 else 0
  | Eunary (op, _, loc) ->
    errf ctx loc "operator '%s' is not supported in constant expressions" op
  | Ebinary (op, a, b, loc) ->
    let va = ec a and vb = ec b in
    let nonzero what = if vb = 0 then errf ctx loc "%s by zero" what else vb in
    (match op with
     | "+" -> va + vb
     | "-" -> va - vb
     | "*" -> va * vb
     | "/" -> va / nonzero "division"
     | "%" -> va mod nonzero "modulo"
     | "<<" | "<<<" ->
       if vb < 0 || vb > 62 then errf ctx loc "shift amount %d out of range" vb
       else va lsl vb
     | ">>" | ">>>" ->
       if vb < 0 || vb > 62 then errf ctx loc "shift amount %d out of range" vb
       else va lsr vb
     | "==" -> if va = vb then 1 else 0
     | "!=" -> if va <> vb then 1 else 0
     | "<" -> if va < vb then 1 else 0
     | "<=" -> if va <= vb then 1 else 0
     | ">" -> if va > vb then 1 else 0
     | ">=" -> if va >= vb then 1 else 0
     | "&&" -> if va <> 0 && vb <> 0 then 1 else 0
     | "||" -> if va <> 0 || vb <> 0 then 1 else 0
     | "&" -> va land vb
     | "|" -> va lor vb
     | "^" -> va lxor vb
     | _ ->
       errf ctx loc "operator '%s' is not supported in constant expressions" op)
  | Eternary (c, t, f, _) -> if ec c <> 0 then ec t else ec f
  | Efun ("$clog2", [ a ], _) -> clog2 (ec a)
  | Efun (n, _, loc) ->
    errf ctx loc "unknown system function %s (only $clog2 is supported)" n
  | Ebit _ | Epart _ | Econcat _ | Erepl _ ->
    errf ctx (loc_of_expr e) "expected a constant expression"

let ec sc e = eval_const sc.ctx sc.params e

let try_const sc e =
  match ec sc e with v -> Some v | exception Diag.Error _ -> None

(* --- Variables --- *)

let find_var sc name loc =
  match Hashtbl.find_opt sc.vars name with
  | Some v -> v
  | None ->
    if Env.mem name sc.params then
      errf sc.ctx loc "'%s' is a parameter, not a signal" name
    else errf sc.ctx loc "unknown signal '%s'" name

let var_width (v : var) = Array.length v.nets

let mark_driven sc (name : string) (v : var) i loc =
  if v.driven.(i) then
    errf sc.ctx loc "%s[%d] has multiple drivers" name (v.v_lsb + i)
  else v.driven.(i) <- true

(* --- Expression lowering --- *)

let resize sc w n = Techmap.resize sc.ctx.b w n

let bool_of sc w =
  if Techmap.width w = 1 then w.(0)
  else (Techmap.reduce sc.ctx.b Netlist.Gates.Or w ~prefix:(gpfx sc "any")).(0)

let read_word sc mode (env : pval Env.t) name loc : Techmap.word =
  match Env.find_opt name sc.params with
  | Some v -> Techmap.const_word sc.ctx.b ~width:(bits_needed v) v
  | None ->
    let v = find_var sc name loc in
    v.v_read <- true;
    let proc =
      match mode with Mcomb targets -> SSet.mem name targets | _ -> false
    in
    if not proc then v.nets
    else
      match Env.find_opt name env with
      | None ->
        errf sc.ctx loc
          "'%s' is read before it is assigned in this always_comb block" name
      | Some pv ->
        Array.map
          (function
            | Some n -> n
            | None ->
              errf sc.ctx loc
                "'%s' is read but not assigned on every path above" name)
          pv

let rec lower sc mode env e : Techmap.word =
  let b = sc.ctx.b in
  let low = lower sc mode env in
  match e with
  | Enum { width = Some w; value; _ } -> Techmap.const_word b ~width:w value
  | Enum { width = None; value; _ } ->
    Techmap.const_word b ~width:(bits_needed value) value
  | Eid (n, loc) -> read_word sc mode env n loc
  | Eunary (op, a, loc) ->
    let wa = low a in
    (match op with
     | "~" -> Techmap.bnot b wa ~prefix:(gpfx sc "not")
     | "-" ->
       let z = Techmap.const_word b ~width:(Techmap.width wa) 0 in
       Techmap.sub b z wa ~prefix:(gpfx sc "neg")
     | "!" -> Techmap.reduce b Netlist.Gates.Nor wa ~prefix:(gpfx sc "lnot")
     | "&" -> Techmap.reduce b Netlist.Gates.And wa ~prefix:(gpfx sc "rand")
     | "~&" -> Techmap.reduce b Netlist.Gates.Nand wa ~prefix:(gpfx sc "rnand")
     | "|" -> Techmap.reduce b Netlist.Gates.Or wa ~prefix:(gpfx sc "ror")
     | "~|" -> Techmap.reduce b Netlist.Gates.Nor wa ~prefix:(gpfx sc "rnor")
     | "^" -> Techmap.reduce b Netlist.Gates.Xor wa ~prefix:(gpfx sc "rxor")
     | "~^" -> Techmap.reduce b Netlist.Gates.Xnor wa ~prefix:(gpfx sc "rxnor")
     | _ -> errf sc.ctx loc "unsupported unary operator '%s'" op)
  | Ebinary (op, a, bx, loc) -> lower_binary sc mode env op a bx loc
  | Eternary (c, t, f, _) ->
    let cn = bool_of sc (low c) in
    let wt = low t and wf = low f in
    let n = max (Techmap.width wt) (Techmap.width wf) in
    Techmap.mux b ~sel:cn ~if0:(resize sc wf n) ~if1:(resize sc wt n)
      ~prefix:(gpfx sc "sel") ()
  | Ebit (name, idx, loc) ->
    let v = find_var sc name loc in
    let w = read_word sc mode env name loc in
    (match try_const sc idx with
     | Some i ->
       let j = i - v.v_lsb in
       if j < 0 || j >= var_width v then
         errf sc.ctx loc "bit %d is outside %s[%d:%d]" i
           (name) (v.v_lsb + var_width v - 1) v.v_lsb
       else [| w.(j) |]
     | None ->
       if v.v_lsb <> 0 then
         errf sc.ctx loc
           "dynamic bit-select on %s requires an [N-1:0] range" name
       else
         let shifted =
           Techmap.shr sc.ctx.b w (lower sc mode env idx)
             ~prefix:(gpfx sc "dynsel")
         in
         [| shifted.(0) |])
  | Epart (name, msb, lsb, loc) ->
    let v = find_var sc name loc in
    let w = read_word sc mode env name loc in
    let im = ec_part sc msb and il = ec_part sc lsb in
    let jm = im - v.v_lsb and jl = il - v.v_lsb in
    if jl < 0 || jm >= var_width v || jm < jl then
      errf sc.ctx loc "part-select [%d:%d] is outside %s[%d:%d]" im il name
        (v.v_lsb + var_width v - 1) v.v_lsb
    else Array.sub w jl (jm - jl + 1)
  | Econcat (es, _) ->
    Array.concat (List.rev_map low es)
  | Erepl (count, x, loc) ->
    let k = ec sc count in
    if k < 1 then errf sc.ctx loc "replication count must be >= 1"
    else
      let w = low x in
      Array.concat (List.init k (fun _ -> w))
  | Efun (_, _, _) ->
    let v = ec sc e in
    Techmap.const_word b ~width:(bits_needed v) v

and ec_part sc e =
  (* part-select bounds must be constant *)
  match try_const sc e with
  | Some v -> v
  | None ->
    errf sc.ctx (loc_of_expr e)
      "part-select bounds must be constant (use shifts for dynamic access)"

and lower_binary sc mode env op a bx loc : Techmap.word =
  let b = sc.ctx.b in
  let low = lower sc mode env in
  let same () =
    let wa = low a and wb = low bx in
    let n = max (Techmap.width wa) (Techmap.width wb) in
    (resize sc wa n, resize sc wb n)
  in
  let gate g =
    let wa, wb = same () in
    Techmap.binop b g wa wb ~prefix:(gpfx sc "bit")
  in
  let logical g =
    let na = bool_of sc (low a) and nb = bool_of sc (low bx) in
    Techmap.binop b g [| na |] [| nb |] ~prefix:(gpfx sc "log")
  in
  let pow2 what =
    match try_const sc bx with
    | Some k when k > 0 && k land (k - 1) = 0 ->
      let rec log2 n = if n <= 1 then 0 else 1 + log2 (n / 2) in
      log2 k
    | Some _ | None ->
      errf sc.ctx loc "%s is only supported by constant powers of two" what
  in
  match op with
  | "&" -> gate Netlist.Gates.And
  | "|" -> gate Netlist.Gates.Or
  | "^" -> gate Netlist.Gates.Xor
  | "~^" | "^~" -> gate Netlist.Gates.Xnor
  | "&&" -> logical Netlist.Gates.And
  | "||" -> logical Netlist.Gates.Or
  | "+" ->
    let wa, wb = same () in
    Techmap.add b wa wb ~prefix:(gpfx sc "add")
  | "-" ->
    let wa, wb = same () in
    Techmap.sub b wa wb ~prefix:(gpfx sc "sub")
  | "*" -> Techmap.mul b (low a) (low bx) ~prefix:(gpfx sc "mul")
  | "/" ->
    let s = pow2 "division" in
    let wa = low a in
    let n = Techmap.width wa in
    Array.init n (fun i ->
      if i + s < n then wa.(i + s) else Netlist.Builder.const b false)
  | "%" ->
    let s = pow2 "modulo" in
    let wa = low a in
    let n = Techmap.width wa in
    Array.init n (fun i ->
      if i < s then wa.(i) else Netlist.Builder.const b false)
  | "<<" | "<<<" ->
    let wa = low a in
    let n = Techmap.width wa in
    (match try_const sc bx with
     | Some k when k >= 0 ->
       Array.init n (fun i ->
         if i - k >= 0 && i - k < n then wa.(i - k)
         else Netlist.Builder.const b false)
     | Some k -> errf sc.ctx loc "negative shift amount %d" k
     | None -> Techmap.shl b wa (low bx) ~prefix:(gpfx sc "shl"))
  | ">>" ->
    let wa = low a in
    let n = Techmap.width wa in
    (match try_const sc bx with
     | Some k when k >= 0 ->
       Array.init n (fun i ->
         if i + k < n then wa.(i + k) else Netlist.Builder.const b false)
     | Some k -> errf sc.ctx loc "negative shift amount %d" k
     | None -> Techmap.shr b wa (low bx) ~prefix:(gpfx sc "shr"))
  | ">>>" ->
    errf sc.ctx loc
      "'>>>' is unsupported (unsigned-only subset); use '>>'"
  | "==" ->
    let wa, wb = same () in
    Techmap.eq b wa wb ~prefix:(gpfx sc "eq")
  | "!=" ->
    let wa, wb = same () in
    Techmap.ne b wa wb ~prefix:(gpfx sc "ne")
  | "<" ->
    let wa, wb = same () in
    Techmap.ult b wa wb ~prefix:(gpfx sc "lt")
  | ">" ->
    let wa, wb = same () in
    Techmap.ult b wb wa ~prefix:(gpfx sc "gt")
  | "<=" ->
    let wa, wb = same () in
    Techmap.uge b wb wa ~prefix:(gpfx sc "le")
  | ">=" ->
    let wa, wb = same () in
    Techmap.uge b wa wb ~prefix:(gpfx sc "ge")
  | _ -> errf sc.ctx loc "unsupported operator '%s'" op

(* RTL-001: [resize] zero-extends silently, which is what SystemVerilog
   asks for, but silent *truncation* at a drive site is the classic
   width bug — flag it before resizing. *)
let resize_lint sc ~loc what w n =
  let ww = Techmap.width w in
  if ww > n then
    Diag.lintf ~rule:"RTL-001" ~severity:Lint_core.Diagnostic.Warning ~loc
      "%s truncates a %d-bit value to %d bits" what ww n;
  resize sc w n

let loc_of_lval = function
  | Lid (_, l) | Lbit (_, _, l) | Lpart (_, _, _, l) | Lconcat (_, l) -> l

let desc_of_lval = function
  | Lid (n, _) | Lbit (n, _, _) | Lpart (n, _, _, _) ->
    Printf.sprintf "assignment to '%s'" n
  | Lconcat _ -> "assignment to concatenation"

(* --- Assignment targets inside procedural blocks --- *)

let rec lval_width sc = function
  | Lid (n, loc) -> var_width (find_var sc n loc)
  | Lbit (_, _, _) -> 1
  | Lpart (n, msb, lsb, loc) ->
    let v = find_var sc n loc in
    let im = ec_part sc msb and il = ec_part sc lsb in
    if im - v.v_lsb >= var_width v || il < v.v_lsb || im < il then
      errf sc.ctx loc "part-select [%d:%d] is outside %s[%d:%d]" im il n
        (v.v_lsb + var_width v - 1) v.v_lsb
    else im - il + 1
  | Lconcat (parts, _) ->
    List.fold_left (fun acc p -> acc + lval_width sc p) 0 parts

(* Destination bits of an lval, LSB-first. *)
let rec lval_dest_bits sc = function
  | Lid (n, loc) ->
    let v = find_var sc n loc in
    List.init (var_width v) (fun i -> (n, v, i, loc))
  | Lbit (n, idx, loc) ->
    let v = find_var sc n loc in
    let i =
      match try_const sc idx with
      | Some i -> i - v.v_lsb
      | None ->
        errf sc.ctx loc "assignment bit index on %s must be constant" n
    in
    if i < 0 || i >= var_width v then
      errf sc.ctx loc "bit %d is outside %s[%d:%d]" (i + v.v_lsb) n
        (v.v_lsb + var_width v - 1) v.v_lsb
    else [ (n, v, i, loc) ]
  | Lpart (n, msb, lsb, loc) ->
    let v = find_var sc n loc in
    let im = ec_part sc msb - v.v_lsb and il = ec_part sc lsb - v.v_lsb in
    if il < 0 || im >= var_width v || im < il then
      errf sc.ctx loc "part-select is outside %s" n
    else List.init (im - il + 1) (fun k -> (n, v, il + k, loc))
  | Lconcat (parts, _) ->
    (* msb-first in the source; LSB-first overall = reverse the parts *)
    List.concat_map (lval_dest_bits sc) (List.rev parts)

(* Continuous drive: buffer each value bit onto the canonical net. *)
let drive_bits sc lv (w : Techmap.word) =
  let dests = lval_dest_bits sc lv in
  let w =
    resize_lint sc ~loc:(loc_of_lval lv) (desc_of_lval lv) w (List.length dests)
  in
  List.iteri
    (fun k (name, v, i, loc) ->
      mark_driven sc name v i loc;
      Netlist.Gates.emit sc.ctx.b Netlist.Gates.Buf [ w.(k) ] ~out:v.nets.(i)
        ~prefix:(gpfx sc "drv"))
    dests

(* --- Procedural environment --- *)

let base_pval mode (v : var) : pval =
  match mode with
  | Mff | Mcont -> Array.map (fun n -> Some n) v.nets
  | Mcomb _ -> Array.make (var_width v) None

let rec assign_env sc mode (env : pval Env.t) lv (w : Techmap.word) =
  match lv with
  | Lid (n, loc) ->
    let v = find_var sc n loc in
    let w =
      resize_lint sc ~loc (Printf.sprintf "assignment to '%s'" n) w (var_width v)
    in
    Env.add n (Array.map (fun x -> Some x) w) env
  | Lbit (n, idx, loc) ->
    let v = find_var sc n loc in
    let i =
      match try_const sc idx with
      | Some i -> i - v.v_lsb
      | None ->
        errf sc.ctx loc "assignment bit index on %s must be constant" n
    in
    if i < 0 || i >= var_width v then
      errf sc.ctx loc "bit index is outside %s" n
    else begin
      let base =
        match Env.find_opt n env with
        | Some pv -> Array.copy pv
        | None -> base_pval mode v
      in
      base.(i) <-
        Some
          (resize_lint sc ~loc (Printf.sprintf "assignment to '%s'" n) w 1).(0);
      Env.add n base env
    end
  | Lpart (n, msb, lsb, loc) ->
    let v = find_var sc n loc in
    let im = ec_part sc msb - v.v_lsb and il = ec_part sc lsb - v.v_lsb in
    if il < 0 || im >= var_width v || im < il then
      errf sc.ctx loc "part-select is outside %s" n
    else begin
      let span = im - il + 1 in
      let w =
        resize_lint sc ~loc (Printf.sprintf "assignment to '%s'" n) w span
      in
      let base =
        match Env.find_opt n env with
        | Some pv -> Array.copy pv
        | None -> base_pval mode v
      in
      for k = 0 to span - 1 do
        base.(il + k) <- Some w.(k)
      done;
      Env.add n base env
    end
  | Lconcat (parts, cloc) ->
    let total = lval_width sc lv in
    let w = resize_lint sc ~loc:cloc "assignment to concatenation" w total in
    let off = ref 0 in
    List.fold_left
      (fun env p ->
        let wp = lval_width sc p in
        let chunk = Array.sub w !off wp in
        off := !off + wp;
        assign_env sc mode env p chunk)
      env (List.rev parts)

(* Merge two branch environments under condition [cond] (true = envT).
   Bits assigned on only one path become None in comb mode (reported at
   the end of the block); in ff mode the canonical Q value fills the
   missing side, which is exactly non-blocking hold semantics. *)
let merge_envs sc mode cond (envT : pval Env.t) (envF : pval Env.t) =
  let keys =
    Env.fold (fun k _ s -> SSet.add k s) envT
      (Env.fold (fun k _ s -> SSet.add k s) envF SSet.empty)
  in
  SSet.fold
    (fun name acc ->
      let v = find_var sc name (Netlist_io.Srcloc.make ~file:"" ~line:1 ~col:1) in
      let get e =
        match Env.find_opt name e with Some pv -> pv | None -> base_pval mode v
      in
      let pT = get envT and pF = get envF in
      let merged =
        Array.init (var_width v) (fun i ->
          match (pT.(i), pF.(i)) with
          | Some a, Some b when a = b -> Some a
          | Some a, Some b ->
            Some
              (Techmap.mux sc.ctx.b ~sel:cond ~if0:[| b |] ~if1:[| a |]
                 ~prefix:(gpfx sc "m") ()).(0)
          | _ -> None)
      in
      Env.add name merged acc)
    keys Env.empty

let rec exec sc mode (env : pval Env.t) (s : Ast.stmt) : pval Env.t =
  match s with
  | Sblock (ss, _) -> List.fold_left (exec sc mode) env ss
  | Sassign (lv, rhs, _) ->
    let w = lower sc mode env rhs in
    assign_env sc mode env lv w
  | Sif (c, t, eo, _) ->
    let cn = bool_of sc (lower sc mode env c) in
    let envT = exec sc mode env t in
    let envF = match eo with Some e -> exec sc mode env e | None -> env in
    merge_envs sc mode cn envT envF
  | Scase (subj, arms, dflt, _) ->
    let sw = lower sc mode env subj in
    let n = Techmap.width sw in
    (* RTL-002: constant labels that cannot match (wider than the
       subject, with high bits set) or duplicate an earlier arm *)
    let seen = Hashtbl.create 8 in
    List.iter
      (fun (labels, _) ->
        List.iter
          (fun l ->
            match try_const sc l with
            | None -> ()
            | Some v ->
              let lloc = loc_of_expr l in
              if n < 62 && v >= 0 && v lsr n > 0 then
                Diag.lintf ~rule:"RTL-002"
                  ~severity:Lint_core.Diagnostic.Warning ~loc:lloc
                  "case label %d is wider than the %d-bit subject and can \
                   never match"
                  v n
              else if Hashtbl.mem seen v then
                Diag.lintf ~rule:"RTL-002"
                  ~severity:Lint_core.Diagnostic.Warning ~loc:lloc
                  "duplicate case label %d: an earlier arm already matches it"
                  v
              else Hashtbl.add seen v ())
          labels)
      arms;
    let rec chain = function
      | [] -> (match dflt with Some d -> exec sc mode env d | None -> env)
      | (labels, body) :: rest ->
        let eqs =
          List.map
            (fun l ->
              let lw = resize sc (lower sc mode env l) n in
              (Techmap.eq sc.ctx.b sw lw ~prefix:(gpfx sc "cl")).(0))
            labels
        in
        let cn =
          match eqs with
          | [ e ] -> e
          | es ->
            Netlist.Gates.emit_fresh sc.ctx.b Netlist.Gates.Or es
              ~prefix:(gpfx sc "cor")
        in
        let envT = exec sc mode env body in
        let envF = chain rest in
        merge_envs sc mode cn envT envF
    in
    chain arms

(* Syntactic assignment targets of a statement (for comb-read rules). *)
let stmt_targets stmt =
  let rec lv acc = function
    | Lid (n, _) | Lbit (n, _, _) | Lpart (n, _, _, _) -> SSet.add n acc
    | Lconcat (ps, _) -> List.fold_left lv acc ps
  in
  let rec go acc = function
    | Sblock (ss, _) -> List.fold_left go acc ss
    | Sassign (l, _, _) -> lv acc l
    | Sif (_, t, eo, _) ->
      let acc = go acc t in
      (match eo with Some e -> go acc e | None -> acc)
    | Scase (_, arms, dflt, _) ->
      let acc = List.fold_left (fun a (_, s) -> go a s) acc arms in
      (match dflt with Some d -> go acc d | None -> acc)
  in
  go SSet.empty stmt

(* --- always_ff lowering --- *)

let rec unwrap_block = function
  | Sblock ([ s ], _) -> unwrap_block s
  | s -> s

(* Accepted reset-condition shapes for the top-level 'if' of an
   async-reset always_ff, per the reset edge in the sensitivity list. *)
let reset_cond_matches redge rname cond =
  match (redge, cond) with
  | Negedge, Eunary (("!" | "~"), Eid (n, _), _) -> String.equal n rname
  | Negedge, Ebinary ("==", Eid (n, _), Enum { value = 0; _ }, _) ->
    String.equal n rname
  | Posedge, Eid (n, _) -> String.equal n rname
  | Posedge, Ebinary ("==", Eid (n, _), Enum { value = 1; _ }, _) ->
    String.equal n rname
  | Posedge, Ebinary ("!=", Eid (n, _), Enum { value = 0; _ }, _) ->
    String.equal n rname
  | _ -> false

let ff_pins (cell : Cell_lib.Cell.t) =
  let q =
    List.find (fun p -> p.Cell_lib.Cell.direction = Cell_lib.Cell.Output)
      cell.Cell_lib.Cell.pins
  in
  match cell.Cell_lib.Cell.kind with
  | Cell_lib.Cell.Flip_flop { clock_pin; data_pin; reset_pin; _ } ->
    (clock_pin, data_pin, reset_pin, q.Cell_lib.Cell.pin_name)
  | _ -> invalid_arg "Elaborate.ff_pins: not a flip-flop"

let scalar_net sc name loc =
  let v = find_var sc name loc in
  v.v_read <- true;
  if var_width v <> 1 then
    errf sc.ctx loc "'%s' must be 1 bit wide here" name
  else v.nets.(0)

let elab_ff sc ~clock ~clock_edge ~areset ~ff_body ~ff_loc =
  let b = sc.ctx.b in
  if clock_edge = Negedge then
    errf sc.ctx ff_loc "negedge clocks are unsupported";
  let ck = scalar_net sc clock ff_loc in
  let emit_plain env =
    let ckp, dp, _, qp = ff_pins sc.ctx.ff_cell in
    Env.iter
      (fun name pv ->
        let v = find_var sc name ff_loc in
        Array.iteri
          (fun i bit ->
            let d = Option.get bit in
            mark_driven sc name v i ff_loc;
            ignore
              (Netlist.Builder.add_instance b
                 (Printf.sprintf "%s%s_ff%d" sc.prefix name (v.v_lsb + i))
                 sc.ctx.ff_cell
                 [ (ckp, ck); (dp, d); (qp, v.nets.(i)) ]))
          pv)
      env
  in
  match areset with
  | None -> emit_plain (exec sc Mff Env.empty ff_body)
  | Some (redge, rname) ->
    let rnet = scalar_net sc rname ff_loc in
    (match unwrap_block ff_body with
     | Sif (cond, rst_s, Some main_s, if_loc)
       when reset_cond_matches redge rname cond ->
       let renv = exec sc Mff Env.empty rst_s in
       let menv = exec sc Mff Env.empty main_s in
       let t0 = Netlist.Builder.const b false in
       let t1 = Netlist.Builder.const b true in
       (* the DFFR reset pin is active-low: invert a posedge reset once *)
       let rn =
         match redge with
         | Negedge -> rnet
         | Posedge ->
           Netlist.Gates.emit_fresh b Netlist.Gates.Not [ rnet ]
             ~prefix:(gpfx sc "rstn")
       in
       let ckp, dp, rp, qp = ff_pins sc.ctx.ffr_cell in
       let rp = Option.get rp in
       let names =
         SSet.union
           (Env.fold (fun k _ s -> SSet.add k s) renv SSet.empty)
           (Env.fold (fun k _ s -> SSet.add k s) menv SSet.empty)
       in
       SSet.iter
         (fun name ->
           let v = find_var sc name ff_loc in
           let rv =
             match Env.find_opt name renv with
             | Some pv -> pv
             | None ->
               errf sc.ctx if_loc
                 "'%s' is assigned in this always_ff but has no value in the \
                  reset branch" name
           in
           let dv =
             match Env.find_opt name menv with
             | Some pv -> pv
             | None -> Array.map (fun n -> Some n) v.nets (* hold *)
           in
           Array.iteri
             (fun i rbit ->
               let rb = Option.get rbit in
               let d = Option.get dv.(i) in
               mark_driven sc name v i ff_loc;
               let iname =
                 Printf.sprintf "%s%s_ff%d" sc.prefix name (v.v_lsb + i)
               in
               if rb = t0 then
                 ignore
                   (Netlist.Builder.add_instance b iname sc.ctx.ffr_cell
                      [ (ckp, ck); (dp, d); (rp, rn); (qp, v.nets.(i)) ])
               else if rb = t1 then begin
                 (* reset-to-1 on an active-low-clear FF: store the
                    complement and invert around the cell *)
                 let qn =
                   Netlist.Builder.fresh_net b
                     (Printf.sprintf "%s%s_n%d" sc.prefix name (v.v_lsb + i))
                 in
                 let dn =
                   if d = v.nets.(i) then qn (* hold: feed Q' back *)
                   else
                     Netlist.Gates.emit_fresh b Netlist.Gates.Not [ d ]
                       ~prefix:(gpfx sc "dn")
                 in
                 ignore
                   (Netlist.Builder.add_instance b iname sc.ctx.ffr_cell
                      [ (ckp, ck); (dp, dn); (rp, rn); (qp, qn) ]);
                 Netlist.Gates.emit b Netlist.Gates.Not [ qn ]
                   ~out:v.nets.(i) ~prefix:(iname ^ "_q")
               end
               else
                 errf sc.ctx if_loc
                   "reset value of '%s' must be a literal constant" name)
             rv)
         names
     | _ ->
       errf sc.ctx ff_loc
         "an async-reset always_ff must be a single 'if (%s) ... else ...' \
          matching the %s event on '%s'"
         (match redge with Negedge -> "!" ^ rname | Posedge -> rname)
         (match redge with Negedge -> "negedge" | Posedge -> "posedge")
         rname)

(* --- Hierarchy --- *)

(* Port geometry under a parameter binding: (name, dir, width, lsb). *)
let port_info ctx params (p : Ast.port) =
  match p.port_range with
  | None -> (p.port_name, p.dir, 1, 0, true)
  | Some r ->
    let m = eval_const ctx params r.msb and l = eval_const ctx params r.lsb in
    if m < l then
      errf ctx p.port_loc "port range [%d:%d] must be descending" m l
    else (p.port_name, p.dir, m - l + 1, l, false)

let rec lval_of_expr sc = function
  | Eid (n, l) -> Lid (n, l)
  | Ebit (n, i, l) -> Lbit (n, i, l)
  | Epart (n, m, lo, l) -> Lpart (n, m, lo, l)
  | Econcat (es, l) -> Lconcat (List.map (lval_of_expr sc) es, l)
  | e ->
    errf sc.ctx (loc_of_expr e)
      "an instance output must connect to a signal, select or concatenation"

let rec elab_body ctx ~depth (m : Ast.module_) ~params ~prefix
    ~(bound : (string * (Techmap.word * int)) list) =
  let sc = { ctx; prefix; params; vars = Hashtbl.create 16 } in
  let declare name v loc =
    if Hashtbl.mem sc.vars name || Env.mem name sc.params then
      errf ctx loc "duplicate declaration of '%s'" name
    else Hashtbl.add sc.vars name v
  in
  List.iter
    (fun (p : Ast.port) ->
      let w, lsb =
        match List.assoc_opt p.port_name bound with
        | Some x -> x
        | None -> invalid_arg "Elaborate.elab_body: unbound port"
      in
      let driven = Array.make (Array.length w) (p.dir = Input) in
      declare p.port_name
        { nets = w; v_lsb = lsb; driven; v_read = false }
        p.port_loc)
    m.ports;
  (* pass 1: parameters and net declarations, in order *)
  List.iter
    (function
      | Ilocalparam { lp_name; lp_value; lp_loc } ->
        if Env.mem lp_name sc.params || Hashtbl.mem sc.vars lp_name then
          errf ctx lp_loc "duplicate declaration of '%s'" lp_name
        else sc.params <- Env.add lp_name (ec sc lp_value) sc.params
      | Inet { net_name; net_range; net_loc } ->
        let width, lsb, scalar =
          match net_range with
          | None -> (1, 0, true)
          | Some r ->
            let m = ec sc r.msb and l = ec sc r.lsb in
            if m < l then
              errf ctx net_loc "range [%d:%d] must be descending" m l
            else (m - l + 1, l, false)
        in
        let nets =
          Array.init width (fun i ->
            Netlist.Builder.fresh_net ctx.b
              (bitname prefix net_name ~scalar ~lsb i))
        in
        declare net_name
          { nets; v_lsb = lsb; driven = Array.make width false; v_read = false }
          net_loc
      | _ -> ())
    m.items;
  (* pass 2: drivers *)
  List.iter
    (function
      | Ilocalparam _ | Inet _ -> ()
      | Iassign (lv, rhs, _) ->
        drive_bits sc lv (lower sc Mcont Env.empty rhs)
      | Ialways_comb (body, loc) ->
        let targets = stmt_targets body in
        let env = exec sc (Mcomb targets) Env.empty body in
        SSet.iter
          (fun name ->
            let v = find_var sc name loc in
            match Env.find_opt name env with
            | None -> errf ctx loc "'%s' is never assigned in always_comb" name
            | Some pv ->
              Array.iteri
                (fun i bit ->
                  match bit with
                  | None ->
                    errf ctx loc
                      "'%s' is not assigned on every path through this \
                       always_comb (would infer a latch)" name
                  | Some n ->
                    mark_driven sc name v i loc;
                    Netlist.Gates.emit ctx.b Netlist.Gates.Buf [ n ]
                      ~out:v.nets.(i) ~prefix:(gpfx sc "cmb"))
                pv)
          targets
      | Ialways_ff { clock; clock_edge; areset; ff_body; ff_loc } ->
        elab_ff sc ~clock ~clock_edge ~areset ~ff_body ~ff_loc
      | Iinst { target; inst_name; param_overrides; conns; inst_loc } ->
        elab_inst sc ~depth ~target ~inst_name ~param_overrides ~conns
          ~inst_loc)
    m.items;
  (* RTL-003/RTL-004: scan declared nets in declaration order (ports are
     exempt — an unread input or undriven output is the parent's business) *)
  List.iter
    (function
      | Inet { net_name; net_loc; _ } ->
        (match Hashtbl.find_opt sc.vars net_name with
         | None -> ()
         | Some v ->
           let width = var_width v in
           let undriven =
             Array.fold_left (fun acc b -> if b then acc else acc + 1) 0 v.driven
           in
           if not v.v_read then
             Diag.lintf ~rule:"RTL-003" ~severity:Lint_core.Diagnostic.Warning
               ~loc:net_loc "signal '%s%s' is never read" prefix net_name;
           if undriven = width && v.v_read then
             Diag.lintf ~rule:"RTL-004" ~severity:Lint_core.Diagnostic.Warning
               ~loc:net_loc "signal '%s%s' is read but never driven" prefix
               net_name
           else if undriven > 0 && undriven < width then
             Diag.lintf ~rule:"RTL-004" ~severity:Lint_core.Diagnostic.Warning
               ~loc:net_loc "%d of %d bits of signal '%s%s' are never driven"
               undriven width prefix net_name)
      | Ilocalparam _ | Iassign _ | Ialways_comb _ | Ialways_ff _ | Iinst _ ->
        ())
    m.items

and elab_inst sc ~depth ~target ~inst_name ~param_overrides ~conns
    ~inst_loc =
  let ctx = sc.ctx in
  if depth > 64 then
    errf ctx inst_loc "instantiation nests deeper than 64 (recursion?)";
  let child =
    match List.find_opt (fun c -> String.equal c.module_name target) ctx.modules with
    | Some c -> c
    | None -> errf ctx inst_loc "unknown module '%s'" target
  in
  List.iter
    (fun (pname, _) ->
      if not (List.mem_assoc pname child.params) then
        errf ctx inst_loc "module %s has no parameter '%s'" target pname)
    param_overrides;
  let penv =
    List.fold_left
      (fun acc (pname, default) ->
        let v =
          match List.assoc_opt pname param_overrides with
          | Some e -> eval_const ctx sc.params e (* parent scope *)
          | None -> eval_const ctx acc default   (* child scope so far *)
        in
        Env.add pname v acc)
      Env.empty child.params
  in
  List.iter
    (fun (cname, _) ->
      if not (List.exists (fun (p : Ast.port) ->
                  String.equal p.port_name cname) child.ports) then
        errf ctx inst_loc "module %s has no port '%s'" target cname)
    conns;
  let bound =
    List.map
      (fun (p : Ast.port) ->
        let pname, dir, pw, lsb, _ = port_info ctx penv p in
        let conn = List.assoc_opt pname conns in
        let word =
          match (dir, conn) with
          | Input, Some (Some e) ->
            resize_lint sc ~loc:(loc_of_expr e)
              (Printf.sprintf "connection to input port '%s' of %s" pname
                 target)
              (lower sc Mcont Env.empty e) pw
          | Input, (Some None | None) ->
            errf ctx inst_loc "input port '%s' of %s is unconnected" pname
              target
          | Output, Some (Some e) ->
            let lv = lval_of_expr sc e in
            let dests = lval_dest_bits sc lv in
            List.iter (fun (n, v, i, loc) -> mark_driven sc n v i loc) dests;
            let nets = List.map (fun (_, v, i, _) -> v.nets.(i)) dests in
            let wl = List.length nets in
            if wl = pw then Array.of_list nets
            else if wl < pw then
              (* child's upper output bits dangle in the parent *)
              Array.init pw (fun i ->
                if i < wl then List.nth nets i
                else
                  Netlist.Builder.fresh_net ctx.b
                    (gpfx sc (inst_name ^ "_nc")))
            else begin
              (* destination wider than the port: tie the rest to 0 *)
              let t0 = Netlist.Builder.const ctx.b false in
              List.iteri
                (fun i n ->
                  if i >= pw then
                    Netlist.Gates.emit ctx.b Netlist.Gates.Buf [ t0 ] ~out:n
                      ~prefix:(gpfx sc "pad"))
                nets;
              Array.of_list (List.filteri (fun i _ -> i < pw) nets)
            end
          | Output, (Some None | None) ->
            Array.init pw (fun _ ->
              Netlist.Builder.fresh_net ctx.b (gpfx sc (inst_name ^ "_nc")))
        in
        (pname, (word, lsb)))
      child.ports
  in
  elab_body ctx ~depth:(depth + 1) child ~params:penv
    ~prefix:(sc.prefix ^ inst_name ^ "$") ~bound

(* --- Clock discovery --- *)

(* Per module, the set of identifiers that play a clock role: used as an
   always_ff clock, or connected to a clock port of a child instance.
   Fixed point over the hierarchy; top-level input ports in the top
   module's set are marked as clock roots. *)
let clock_sets (src : Ast.source) =
  let tbl = Hashtbl.create 8 in
  List.iter (fun m -> Hashtbl.replace tbl m.module_name SSet.empty) src.modules;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun m ->
        let s = ref (Hashtbl.find tbl m.module_name) in
        List.iter
          (function
            | Ialways_ff { clock; _ } -> s := SSet.add clock !s
            | Iinst { target; conns; _ } ->
              (match Hashtbl.find_opt tbl target with
               | None -> ()
               | Some child_set ->
                 List.iter
                   (fun (port, e) ->
                     match e with
                     | Some (Eid (id, _)) when SSet.mem port child_set ->
                       s := SSet.add id !s
                     | _ -> ())
                   conns)
            | _ -> ())
          m.items;
        if not (SSet.equal !s (Hashtbl.find tbl m.module_name)) then begin
          Hashtbl.replace tbl m.module_name !s;
          changed := true
        end)
      src.modules
  done;
  (* a clock port must be fed a plain signal, not an expression *)
  List.iter
    (fun m ->
      List.iter
        (function
          | Iinst { target; conns; _ } ->
            (match Hashtbl.find_opt tbl target with
             | None -> ()
             | Some child_set ->
               List.iter
                 (fun (port, e) ->
                   match e with
                   | Some (Eid _) | None -> ()
                   | Some e when SSet.mem port child_set ->
                     Diag.fail ~source:src.text ~loc:(loc_of_expr e)
                       "clock port '%s' of %s must be connected to a plain \
                        signal" port target
                   | Some _ -> ())
                 conns)
          | _ -> ())
        m.items)
    src.modules;
  tbl

(* --- Top level --- *)

let pick_top ?top (src : Ast.source) =
  match top with
  | Some t ->
    (match find_module src t with
     | Some m -> m
     | None -> Diag.fail "unknown top module '%s'" t)
  | None ->
    let instantiated =
      List.fold_left
        (fun acc m ->
          List.fold_left
            (fun acc -> function
              | Iinst { target; _ } -> SSet.add target acc
              | _ -> acc)
            acc m.items)
        SSet.empty src.modules
    in
    (match
       List.filter
         (fun m -> not (SSet.mem m.module_name instantiated))
         src.modules
     with
     | [ m ] -> m
     | [] -> Diag.fail "no top-level module found (instantiation cycle?)"
     | ms ->
       Diag.fail "multiple top-level candidates (%s); select one with --top"
         (String.concat ", " (List.map (fun m -> m.module_name) ms)))

let design_of_source ?top ~library (src : Ast.source) =
  if src.modules = [] then Diag.fail "%s: no modules found" src.file;
  let m = pick_top ?top src in
  let csets = clock_sets src in
  let b = Netlist.Builder.create ~name:m.module_name ~library in
  let ctx =
    { b; src = src.text; modules = src.modules; clock_sets = csets;
      ff_cell =
        (* prefer the conventional DFF over the smallest Flip_flop-kind
           cell: the smallest may be a pulsed latch, which is the
           conversion flow's *output* vocabulary, not its input *)
        (match Cell_lib.Library.find library "DFF_X1" with
         | Some c -> c
         | None -> Cell_lib.Library.flip_flop library);
      ffr_cell =
        (match Cell_lib.Library.find library "DFFR_X1" with
         | Some c -> c
         | None -> Cell_lib.Library.flip_flop_with_reset library);
      gensym = 0 }
  in
  let params =
    List.fold_left
      (fun acc (pname, default) ->
        Env.add pname (eval_const ctx acc default) acc)
      Env.empty m.params
  in
  let top_clocks = Hashtbl.find csets m.module_name in
  let bound =
    List.map
      (fun (p : Ast.port) ->
        let pname, dir, pw, lsb, scalar = port_info ctx params p in
        let clockish = SSet.mem pname top_clocks in
        if clockish && (dir <> Input || pw <> 1) then
          errf ctx p.port_loc
            "clock '%s' must be a scalar input port" pname;
        let word =
          match dir with
          | Input ->
            Array.init pw (fun i ->
              Netlist.Builder.add_input ~clock:clockish b
                (bitname "" pname ~scalar ~lsb i))
          | Output ->
            Array.init pw (fun i ->
              let name = bitname "" pname ~scalar ~lsb i in
              let net = Netlist.Builder.fresh_net b name in
              Netlist.Builder.add_output b name net;
              net)
        in
        (pname, (word, lsb)))
      m.ports
  in
  elab_body ctx ~depth:0 m ~params ~prefix:"" ~bound;
  Netlist.Builder.freeze b

let read ?(file = "<string>") ?top ~library src =
  design_of_source ?top ~library (Parser.parse ~file src)

open Netlist

type word = Design.net array

let width = Array.length

let iname b prefix = Printf.sprintf "%s_%d" prefix (Builder.size b)

let const_word b ~width v =
  Array.init width (fun i ->
    let bit = if i < 62 then (v lsr i) land 1 = 1 else false in
    Builder.const b bit)

let resize b w n =
  let cur = width w in
  if n <= cur then Array.sub w 0 n
  else Array.init n (fun i -> if i < cur then w.(i) else Builder.const b false)

(* Emit [op] over per-bit inputs, into out.(i) when a destination word is
   given, else onto a fresh net. *)
let emit_bit b op ins ~out ~i ~prefix =
  let p = Printf.sprintf "%s_b%d" prefix i in
  match out with
  | Some o -> Gates.emit b op ins ~out:o.(i) ~prefix:p; o.(i)
  | None -> Gates.emit_fresh b op ins ~prefix:p

let buf b ?out w ~prefix =
  Array.init (width w) (fun i -> emit_bit b Gates.Buf [w.(i)] ~out ~i ~prefix)

let bnot b ?out w ~prefix =
  Array.init (width w) (fun i -> emit_bit b Gates.Not [w.(i)] ~out ~i ~prefix)

(* Bitwise binary op over equal-width words. *)
let binop b op ?out wa wb ~prefix =
  assert (width wa = width wb);
  Array.init (width wa)
    (fun i -> emit_bit b op [wa.(i); wb.(i)] ~out ~i ~prefix)

(* Reduction to a 1-bit word.  Gates.emit builds the balanced tree; a
   1-bit operand needs no gates for the non-inverting ops. *)
let reduce b op w ~prefix =
  if width w = 1 then
    match op with
    | Gates.And | Gates.Or | Gates.Xor | Gates.Buf -> [| w.(0) |]
    | Gates.Nand | Gates.Nor | Gates.Xnor | Gates.Not ->
      [| Gates.emit_fresh b Gates.Not [w.(0)] ~prefix |]
  else [| Gates.emit_fresh b op (Array.to_list w) ~prefix |]

(* sel ? if1 : if0 per bit, on MUX2 (pins A,B,S,Z; S=1 selects B).
   Bits where both arms are the same net pass through without a cell. *)
let mux b ~sel ?out ~if0 ~if1 ~prefix () =
  assert (width if0 = width if1);
  Array.init (width if0) (fun i ->
    if if0.(i) = if1.(i) && out = None then if0.(i)
    else begin
      let z =
        match out with
        | Some o -> o.(i)
        | None -> Builder.fresh_net b (Printf.sprintf "%s_z%d" prefix i)
      in
      if if0.(i) = if1.(i) then
        Gates.emit b Gates.Buf [if0.(i)] ~out:z
          ~prefix:(Printf.sprintf "%s_b%d" prefix i)
      else
        ignore
          (Builder.add_cell b (iname b prefix) "MUX2_X1"
             [ "A", if0.(i); "B", if1.(i); "S", sel; "Z", z ]);
      z
    end)

(* Ripple-carry a + b + cin; returns (sum, carry-out).  sum lands in
   [out] when given. *)
let add_c b ?out wa wb ~cin ~prefix =
  assert (width wa = width wb);
  let carry = ref cin in
  let sum =
    Array.init (width wa) (fun i ->
      let p = Printf.sprintf "%s_fa%d" prefix i in
      let axb = Gates.emit_fresh b Gates.Xor [wa.(i); wb.(i)] ~prefix:(p ^ "x") in
      let s = emit_bit b Gates.Xor [axb; !carry] ~out ~i ~prefix in
      let g = Gates.emit_fresh b Gates.And [wa.(i); wb.(i)] ~prefix:(p ^ "g") in
      let pr = Gates.emit_fresh b Gates.And [axb; !carry] ~prefix:(p ^ "p") in
      carry := Gates.emit_fresh b Gates.Or [g; pr] ~prefix:(p ^ "c");
      s)
  in
  (sum, !carry)

let add b ?out wa wb ~prefix =
  fst (add_c b ?out wa wb ~cin:(Builder.const b false) ~prefix)

(* a - b as a + ~b + 1; carry-out = 1 iff a >= b (no borrow). *)
let sub_c b ?out wa wb ~prefix =
  let nb = bnot b wb ~prefix:(prefix ^ "_n") in
  add_c b ?out wa nb ~cin:(Builder.const b true) ~prefix

let sub b ?out wa wb ~prefix = fst (sub_c b ?out wa wb ~prefix)

(* Unsigned comparisons, all built on one subtract chain. *)
let ult b wa wb ~prefix =
  let _, cout = sub_c b wa wb ~prefix in
  [| Gates.emit_fresh b Gates.Not [cout] ~prefix:(prefix ^ "_lt") |]

let uge b wa wb ~prefix =
  let _, cout = sub_c b wa wb ~prefix in
  [| cout |]

let eq b wa wb ~prefix =
  assert (width wa = width wb);
  let bits = binop b Gates.Xnor wa wb ~prefix:(prefix ^ "_x") in
  reduce b Gates.And bits ~prefix:(prefix ^ "_and")

let ne b wa wb ~prefix =
  assert (width wa = width wb);
  let bits = binop b Gates.Xor wa wb ~prefix:(prefix ^ "_x") in
  reduce b Gates.Or bits ~prefix:(prefix ^ "_or")

(* Full wa+wb-bit product by shift-and-add of AND-gated partial rows. *)
let mul b ?out wa wb ~prefix =
  let wtot = width wa + width wb in
  let zero = Builder.const b false in
  let row j =
    Array.init wtot (fun i ->
      if i >= j && i - j < width wa then
        Gates.emit_fresh b Gates.And [wa.(i - j); wb.(j)]
          ~prefix:(Printf.sprintf "%s_pp%d_%d" prefix j (i - j))
      else zero)
  in
  let acc = ref (row 0) in
  for j = 1 to width wb - 1 do
    let last = j = width wb - 1 in
    let dest = if last then out else None in
    acc := add b ?out:dest !acc (row j) ~prefix:(Printf.sprintf "%s_r%d" prefix j)
  done;
  if width wb = 1 then (match out with Some _ -> buf b ?out !acc ~prefix | None -> !acc)
  else !acc

(* Logarithmic barrel shifter.  [dir] picks the fill side; shift amounts
   >= the word width produce all zeros. *)
let shift b dir ?out w amt ~prefix =
  let wd = width w in
  let zero = Builder.const b false in
  let shifted_by acc k =
    Array.init wd (fun i ->
      let src = match dir with `Left -> i - k | `Right -> i + k in
      if src < 0 || src >= wd then zero else acc.(src))
  in
  (* Stages only for amount bits that shift < wd; higher bits force 0. *)
  let max_stage =
    let rec go k = if k < 62 && 1 lsl k < wd then go (k + 1) else k in
    go 0
  in
  let acc = ref w in
  for k = 0 to min max_stage (width amt) - 1 do
    acc :=
      mux b ~sel:amt.(k) ~if0:!acc ~if1:(shifted_by !acc (1 lsl k))
        ~prefix:(Printf.sprintf "%s_s%d" prefix k) ()
  done;
  let used = min max_stage (width amt) in
  let high = Array.sub amt used (width amt - used) in
  let staged = !acc in
  if width high = 0 then
    match out with Some _ -> buf b ?out staged ~prefix | None -> staged
  else begin
    let toobig = (reduce b Gates.Or high ~prefix:(prefix ^ "_hi")).(0) in
    mux b ~sel:toobig ?out ~if0:staged
      ~if1:(Array.make wd zero) ~prefix:(prefix ^ "_clip") ()
  end

let shl b ?out w amt ~prefix = shift b `Left ?out w amt ~prefix
let shr b ?out w amt ~prefix = shift b `Right ?out w amt ~prefix

type outcome =
  | Optimal of { x : float array; objective : float }
  | Infeasible
  | Unbounded

let eps = 1e-9

exception Exit_infeasible

(* Tableau layout: [m] constraint rows and one objective row.  Columns:
   [n] structural variables, then slack/surplus columns, then artificial
   columns, then the RHS.  We run phase 1 minimizing the artificial sum,
   then phase 2 on the real objective. *)

type tableau = {
  a : float array array;       (* (m+1) x (cols+1); row m is the objective *)
  basis : int array;           (* basic column of each constraint row *)
  m : int;
  cols : int;
}

let pivot t ~row ~col =
  let a = t.a in
  let p = a.(row).(col) in
  let width = t.cols + 1 in
  let arow = a.(row) in
  for j = 0 to width - 1 do
    arow.(j) <- arow.(j) /. p
  done;
  for i = 0 to t.m do
    if i <> row then begin
      let f = a.(i).(col) in
      if Float.abs f > eps then begin
        let ai = a.(i) in
        for j = 0 to width - 1 do
          ai.(j) <- ai.(j) -. (f *. arow.(j))
        done
      end
    end
  done;
  t.basis.(row) <- col

(* Bland's rule: entering = lowest-index column with negative reduced cost
   (minimization form: objective row holds reduced costs; we minimize). *)
let iterate ?(allowed = fun _ -> true) t =
  let rec step () =
    let obj = t.a.(t.m) in
    let entering =
      let rec find j =
        if j >= t.cols then None
        else if allowed j && obj.(j) < -.eps then Some j
        else find (j + 1)
      in
      find 0
    in
    match entering with
    | None -> `Optimal
    | Some col ->
      (* ratio test, Bland tie-break on basis index *)
      let best = ref None in
      for i = 0 to t.m - 1 do
        let aij = t.a.(i).(col) in
        if aij > eps then begin
          let ratio = t.a.(i).(t.cols) /. aij in
          match !best with
          | None -> best := Some (ratio, i)
          | Some (r, i') ->
            if ratio < r -. eps
            || (Float.abs (ratio -. r) <= eps && t.basis.(i) < t.basis.(i'))
            then best := Some (ratio, i)
        end
      done;
      (match !best with
       | None -> `Unbounded
       | Some (_, row) ->
         pivot t ~row ~col;
         step ())
  in
  step ()

let solve_raw (p : Problem.t) =
  let n = p.Problem.num_vars in
  (* Coefficient-free rows (e.g. left over after variable elimination)
     would otherwise enter the tableau as dead weight — or, for Ge/Eq
     rows, as artificials that can never leave the basis.  Decide them
     here and drop them. *)
  let rows =
    List.filter
      (fun (c : Problem.constr) ->
        if List.exists (fun (_, a) -> Float.abs a > eps) c.Problem.coeffs then
          true
        else begin
          (match c.Problem.relation with
           | Problem.Le -> if 0.0 > c.Problem.rhs +. eps then raise Exit_infeasible
           | Problem.Ge -> if 0.0 < c.Problem.rhs -. eps then raise Exit_infeasible
           | Problem.Eq ->
             if Float.abs c.Problem.rhs > eps then raise Exit_infeasible);
          false
        end)
      p.Problem.constraints
  in
  (* Normalise rows so rhs >= 0. *)
  let rows =
    List.map
      (fun (c : Problem.constr) ->
        if c.Problem.rhs < 0.0 then
          let coeffs = List.map (fun (j, a) -> (j, -.a)) c.Problem.coeffs in
          let relation = match c.Problem.relation with
            | Problem.Le -> Problem.Ge
            | Problem.Ge -> Problem.Le
            | Problem.Eq -> Problem.Eq
          in
          { Problem.coeffs; relation; rhs = -.c.Problem.rhs }
        else c)
      rows
  in
  let m = List.length rows in
  let n_slack =
    List.fold_left
      (fun acc (c : Problem.constr) ->
        match c.Problem.relation with
        | Problem.Le | Problem.Ge -> acc + 1
        | Problem.Eq -> acc)
      0 rows
  in
  (* Artificials: Ge and Eq rows need one; Le rows use their slack as the
     initial basis. *)
  let n_art =
    List.fold_left
      (fun acc (c : Problem.constr) ->
        match c.Problem.relation with
        | Problem.Ge | Problem.Eq -> acc + 1
        | Problem.Le -> acc)
      0 rows
  in
  let cols = n + n_slack + n_art in
  let a = Array.make_matrix (m + 1) (cols + 1) 0.0 in
  let basis = Array.make m (-1) in
  let slack_base = n in
  let art_base = n + n_slack in
  let next_slack = ref 0 and next_art = ref 0 in
  List.iteri
    (fun i (c : Problem.constr) ->
      List.iter (fun (j, v) -> a.(i).(j) <- a.(i).(j) +. v) c.Problem.coeffs;
      a.(i).(cols) <- c.Problem.rhs;
      (match c.Problem.relation with
       | Problem.Le ->
         let s = slack_base + !next_slack in
         incr next_slack;
         a.(i).(s) <- 1.0;
         basis.(i) <- s
       | Problem.Ge ->
         let s = slack_base + !next_slack in
         incr next_slack;
         a.(i).(s) <- -1.0;
         let r = art_base + !next_art in
         incr next_art;
         a.(i).(r) <- 1.0;
         basis.(i) <- r
       | Problem.Eq ->
         let r = art_base + !next_art in
         incr next_art;
         a.(i).(r) <- 1.0;
         basis.(i) <- r))
    rows;
  let t = { a; basis; m; cols } in
  (* Phase 1: minimize sum of artificials. *)
  if n_art > 0 then begin
    for j = art_base to art_base + n_art - 1 do
      a.(m).(j) <- 1.0
    done;
    (* Make the objective row consistent with the basis (artificials basic). *)
    for i = 0 to m - 1 do
      if basis.(i) >= art_base then begin
        let ai = a.(i) in
        for j = 0 to cols do
          a.(m).(j) <- a.(m).(j) -. ai.(j)
        done
      end
    done;
    (match iterate t with
     | `Unbounded -> ()  (* phase 1 is bounded below by 0; cannot happen *)
     | `Optimal -> ());
    if a.(m).(cols) < -.eps then raise Exit_infeasible
  end;
  (* Drive remaining artificials out of the basis when degenerate. *)
  for i = 0 to m - 1 do
    if basis.(i) >= art_base then begin
      let found = ref false in
      let j = ref 0 in
      while (not !found) && !j < art_base do
        if Float.abs a.(i).(!j) > eps then begin
          pivot t ~row:i ~col:!j;
          found := true
        end;
        incr j
      done
      (* if no pivot column exists the row is redundant; leave it *)
    end
  done;
  (* Phase 2: real objective, artificial columns forbidden. *)
  let sign = match p.Problem.sense with
    | Problem.Maximize -> -1.0   (* tableau minimizes; negate to maximize *)
    | Problem.Minimize -> 1.0
  in
  for j = 0 to cols do
    a.(m).(j) <- 0.0
  done;
  List.iter (fun (j, v) -> a.(m).(j) <- sign *. v) p.Problem.objective;
  (* Express objective in terms of non-basic variables. *)
  for i = 0 to m - 1 do
    let bj = basis.(i) in
    let f = a.(m).(bj) in
    if Float.abs f > eps then begin
      let ai = a.(i) in
      for j = 0 to cols do
        a.(m).(j) <- a.(m).(j) -. (f *. ai.(j))
      done
    end
  done;
  let allowed j = j < art_base in
  match iterate ~allowed t with
  | `Unbounded -> Unbounded
  | `Optimal ->
    let x = Array.make n 0.0 in
    for i = 0 to m - 1 do
      if basis.(i) < n then x.(basis.(i)) <- a.(i).(cols)
    done;
    let objective = Problem.objective_value p x in
    Optimal { x; objective }

let solve p = try solve_raw p with Exit_infeasible -> Infeasible

(** Linear-program description: continuous variables [x >= 0] with linear
    constraints.  Upper bounds are expressed as ordinary constraints. *)

type relation = Le | Ge | Eq

type constr = {
  coeffs : (int * float) list;  (** sparse: variable index, coefficient *)
  relation : relation;
  rhs : float;
}

type sense = Maximize | Minimize

type t = {
  num_vars : int;
  objective : (int * float) list;  (** sparse objective *)
  sense : sense;
  constraints : constr list;
}

val make :
  num_vars:int -> sense:sense -> objective:(int * float) list -> constr list -> t

(** [constr coeffs relation rhs] *)
val constr : (int * float) list -> relation -> float -> constr

(** Evaluate the objective at a point. *)
val objective_value : t -> float array -> float

(** [eliminate t ~value] substitutes every variable [j] with
    [value j = Some v] out of the problem: constraints fold the fixed
    contribution into their rhs, the objective's fixed part is returned
    as a constant offset, and the remaining variables are re-indexed
    densely.  The third component maps new indices back to the original
    ones.  Constraints left without coefficients are checked and
    dropped; if one is violated the problem is infeasible and the result
    is [None]. *)
val eliminate :
  ?eps:float -> t -> value:(int -> float option) ->
  (t * float * int array) option

(** [feasible ?eps t x] checks all constraints and non-negativity. *)
val feasible : ?eps:float -> t -> float array -> bool

type relation = Le | Ge | Eq

type constr = {
  coeffs : (int * float) list;
  relation : relation;
  rhs : float;
}

type sense = Maximize | Minimize

type t = {
  num_vars : int;
  objective : (int * float) list;
  sense : sense;
  constraints : constr list;
}

let make ~num_vars ~sense ~objective constraints =
  { num_vars; objective; sense; constraints }

let constr coeffs relation rhs = { coeffs; relation; rhs }

let dot coeffs x =
  List.fold_left (fun acc (j, a) -> acc +. (a *. x.(j))) 0.0 coeffs

let objective_value t x = dot t.objective x

(* Substitute fixed variables out of a problem.  The reduced problem is
   over the retained variables only (re-indexed densely); each constraint
   keeps its relation with the fixed contribution folded into the rhs.
   Constraints whose coefficients vanish entirely are checked against
   their rhs and dropped; a violated one makes the whole problem
   infeasible and [eliminate] returns [None]. *)
let eliminate ?(eps = 1e-9) t ~value =
  let keep = Array.make t.num_vars (-1) in
  let n' = ref 0 in
  for j = 0 to t.num_vars - 1 do
    match value j with
    | None ->
      keep.(j) <- !n';
      incr n'
    | Some _ -> ()
  done;
  let offset =
    List.fold_left
      (fun acc (j, a) ->
        match value j with Some v -> acc +. (a *. v) | None -> acc)
      0.0 t.objective
  in
  let objective =
    List.filter_map
      (fun (j, a) -> if keep.(j) >= 0 then Some (keep.(j), a) else None)
      t.objective
  in
  let violated = ref false in
  let constraints =
    List.filter_map
      (fun c ->
        let fixed_lhs = ref 0.0 in
        let coeffs =
          List.filter_map
            (fun (j, a) ->
              match value j with
              | Some v ->
                fixed_lhs := !fixed_lhs +. (a *. v);
                None
              | None -> Some (keep.(j), a))
            c.coeffs
        in
        let rhs = c.rhs -. !fixed_lhs in
        match coeffs with
        | [] ->
          (match c.relation with
           | Le -> if 0.0 > rhs +. eps then violated := true
           | Ge -> if 0.0 < rhs -. eps then violated := true
           | Eq -> if Float.abs rhs > eps then violated := true);
          None
        | _ :: _ -> Some { coeffs; relation = c.relation; rhs })
      t.constraints
  in
  if !violated then None
  else
    let old_index = Array.make !n' (-1) in
    Array.iteri (fun j k -> if k >= 0 then old_index.(k) <- j) keep;
    Some
      ({ num_vars = !n'; objective; sense = t.sense; constraints },
       offset, old_index)

let feasible ?(eps = 1e-6) t x =
  Array.for_all (fun v -> v >= -.eps) x
  && List.for_all
       (fun c ->
         let lhs = dot c.coeffs x in
         match c.relation with
         | Le -> lhs <= c.rhs +. eps
         | Ge -> lhs >= c.rhs -. eps
         | Eq -> Float.abs (lhs -. c.rhs) <= eps)
       t.constraints

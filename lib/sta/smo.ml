module Design = Netlist.Design

type violation = {
  dst : Design.inst;
  kind : [ `Setup | `Hold ];
  slack : float;
  src_class : string;
}

type report = {
  worst_setup_slack : float;
  worst_hold_slack : float;
  violations : violation list;
  max_borrow : float;
  iterations : int;
}

let ok r = r.worst_setup_slack >= 0.0 && r.worst_hold_slack >= 0.0

(* Timing view of one sequential element. *)
type reg_view = {
  inst : Design.inst;
  port : string;        (* root clock port *)
  close : float;        (* closing time within the period, ns *)
  width : float;        (* transparency window, 0 for FFs *)
  clk2q_max : float;
  clk2q_min : float;
}

let pi_class = "input"

let reg_views d (clocks : Sim.Clock_spec.t) wire =
  List.filter_map
    (fun i ->
      let c = Design.cell d i in
      match Design.clock_net_of d i with
      | None -> None
      | Some cn ->
        (match Netlist.Clocking.trace_to_root d cn with
         | None -> None
         | Some { Netlist.Clocking.root_port = port; _ } ->
           let wf =
             List.find_opt (fun (p, _) -> String.equal p port)
               clocks.Sim.Clock_spec.ports
           in
           (match wf with
            | None -> None
            | Some (_, w) ->
              let period = clocks.Sim.Clock_spec.period in
              let rise = w.Sim.Clock_spec.rise_at *. period in
              let fall = w.Sim.Clock_spec.fall_at *. period in
              let close, width =
                match c.Cell_lib.Cell.kind with
                | Cell_lib.Cell.Flip_flop _ -> rise, 0.0
                | Cell_lib.Cell.Latch { transparent = Cell_lib.Cell.Active_high; _ } ->
                  fall, fall -. rise
                | Cell_lib.Cell.Latch { transparent = Cell_lib.Cell.Active_low; _ } ->
                  (* transparent while the port is low: closes at rise *)
                  rise, period -. (fall -. rise)
                | Cell_lib.Cell.Combinational | Cell_lib.Cell.Clock_gate _ ->
                  0.0, 0.0
              in
              let load =
                List.fold_left
                  (fun acc n -> acc +. Delay.net_load d wire n)
                  0.0 (Design.output_nets d i)
              in
              Some { inst = i; port; close; width;
                     clk2q_max = Cell_lib.Cell.delay_through c ~load;
                     clk2q_min = Cell_lib.Cell.min_delay_through c ~load })))
    (Design.sequential_insts d)

(* forward phase shift from a closing edge to the next closing edge *)
let forward_shift period e_from e_to =
  let diff = Float.rem (e_to -. e_from) period in
  let diff = if diff <= 1e-12 then diff +. period else diff in
  diff

let check ?(wire = Delay.no_wire) ?(exact = false) ?(setup_margin = 0.03)
    ?(hold_margin = 0.02) ?(input_delay = (0.05, 0.10)) ?(clock_skew = 0.0)
    ?(derate = (1.0, 1.0)) d ~clocks =
  Obs.span "sta.smo.check" @@ fun () ->
  let derate_early, derate_late = derate in
  let input_delay_min, input_delay_max = input_delay in
  let base_hold_margin = hold_margin in
  let setup_margin = setup_margin +. clock_skew in
  let hold_margin = hold_margin +. clock_skew in
  let period = clocks.Sim.Clock_spec.period in
  let views = reg_views d clocks wire in
  let view_of = Hashtbl.create 64 in
  List.iter (fun v -> Hashtbl.replace view_of v.inst v) views;
  (* classes: one per (clock port, closing time) — a master-slave pair
     shares the port but launches from different edges — plus the
     primary-input class *)
  let module SM = Map.Make (String) in
  (* [exact] puts every register in its own launch class (one path
     relaxation per register): no worst-departure/worst-path pairing
     pessimism, at O(registers) relaxations instead of O(ports). *)
  let view_key v =
    if exact then Printf.sprintf "%s#%d" v.port v.inst
    else Printf.sprintf "%s@%.4f" v.port v.close
  in
  let class_members =
    List.fold_left
      (fun acc v ->
        SM.update (view_key v)
          (function None -> Some [v] | Some vs -> Some (v :: vs))
          acc)
      SM.empty views
  in
  (* port and closing time of a class, for skew exemptions *)
  let class_port_close = Hashtbl.create 8 in
  SM.iter
    (fun key vs ->
      match vs with
      | v :: _ -> Hashtbl.replace class_port_close key (v.port, v.close)
      | [] -> ())
    class_members;
  let pi_nets =
    List.filter_map
      (fun (p, net) -> if Design.is_clock_port d p then None else Some net)
      d.Design.primary_inputs
  in
  (* class timing: closing time and width representative (classes are
     homogeneous per port; FFs and latches on one port share close). *)
  let class_close key =
    if String.equal key pi_class then 0.0
    else
      match Hashtbl.find_opt class_port_close key with
      | Some (_, close) -> close
      | None -> 0.0
  in
  (* Skew exemption: complementary latches on the same clock port (a
     master-slave pair) share their clock leaf, so no inter-corner skew
     applies between them. *)
  let same_port_complementary key (v : reg_view) =
    match Hashtbl.find_opt class_port_close key with
    | Some (port, close) ->
      String.equal port v.port && Float.abs (close -. v.close) > 1e-9
    | None -> false
  in
  (* path delays per class *)
  let classes =
    SM.fold
      (fun key vs acc ->
        let nets = List.filter_map (fun v -> Design.q_net_of d v.inst) vs in
        (key, nets) :: acc)
      class_members []
    @ (if pi_nets = [] then [] else [(pi_class, pi_nets)])
  in
  let arrivals = Paths.class_arrivals ~wire d classes in
  (* departure iteration: D_j relative to class closing edge *)
  let departures = Hashtbl.create 64 in
  List.iter (fun v -> Hashtbl.replace departures v.inst (-.v.width)) views;
  let class_departure name =
    match SM.find_opt name class_members with
    | None -> input_delay_max  (* PI class: external input delay *)
    | Some vs ->
      List.fold_left
        (fun acc v ->
          Float.max acc
            (Hashtbl.find departures v.inst +. (v.clk2q_max *. derate_late)))
        Float.neg_infinity vs
  in
  let arrival_of v =
    match Design.data_net_of d v.inst with
    | None -> Float.neg_infinity
    | Some dn ->
      List.fold_left
        (fun acc (name, (amax, _)) ->
          if amax.(dn) > Float.neg_infinity then
            let e_c = class_close name in
            let shift = forward_shift period e_c v.close in
            Float.max acc
              (class_departure name +. (amax.(dn) *. derate_late) -. shift)
          else acc)
        Float.neg_infinity arrivals
  in
  let iterations = ref 0 in
  let changed = ref true in
  let failed_to_converge = ref false in
  while !changed && not !failed_to_converge do
    incr iterations;
    if !iterations > List.length views + 8 then failed_to_converge := true
    else begin
      changed := false;
      List.iter
        (fun v ->
          let a = arrival_of v in
          let dep = Float.max (-.v.width) a in
          let old = Hashtbl.find departures v.inst in
          if dep > old +. 1e-9 then begin
            Hashtbl.replace departures v.inst dep;
            changed := true
          end)
        views
    end
  done;
  (* constraint evaluation *)
  let violations = ref [] in
  let worst_setup = ref Float.infinity and worst_hold = ref Float.infinity in
  let max_borrow = ref 0.0 in
  List.iter
    (fun v ->
      (match Design.data_net_of d v.inst with
       | None -> ()
       | Some dn ->
         List.iter
           (fun (name, (amax, amin)) ->
             if amax.(dn) > Float.neg_infinity then begin
               let e_c = class_close name in
               let shift = forward_shift period e_c v.close in
               (* setup: arrival relative to closing + margin <= 0 *)
               let arr =
                 class_departure name +. (amax.(dn) *. derate_late) -. shift
               in
               let setup_slack = -.arr -. setup_margin in
               if setup_slack < !worst_setup then worst_setup := setup_slack;
               if setup_slack < 0.0 then
                 violations := { dst = v.inst; kind = `Setup;
                                 slack = setup_slack; src_class = name } :: !violations;
               (* hold: earliest arrival after the previous closing edge.
                  Earliest departure of the class is at its opening. *)
               let early_dep, clk2q_min =
                 match SM.find_opt name class_members with
                 | None -> input_delay_min, 0.0
                 | Some vs ->
                   List.fold_left
                     (fun (ed, cq) v2 -> (Float.min ed (-.v2.width),
                                          Float.min cq v2.clk2q_min))
                     (Float.infinity, Float.infinity) vs
               in
               let early_arrival =
                 early_dep +. ((clk2q_min +. amin.(dn)) *. derate_early)
                 -. shift +. period
               in
               let margin =
                 if same_port_complementary name v then base_hold_margin
                 else hold_margin
               in
               let hold_slack = early_arrival -. margin in
               if hold_slack < !worst_hold then worst_hold := hold_slack;
               if hold_slack < 0.0 then
                 violations := { dst = v.inst; kind = `Hold;
                                 slack = hold_slack; src_class = name } :: !violations
             end)
           arrivals);
      (* time borrowed: how far into the transparency window the data
         arrives (0 when it is ready before the latch opens) *)
      let dep = Hashtbl.find departures v.inst in
      let borrow = dep +. v.width in
      if v.width > 0.0 && borrow > !max_borrow then max_borrow := borrow)
    views;
  let worst_setup =
    if !failed_to_converge then Float.neg_infinity
    else if !worst_setup = Float.infinity then period
    else !worst_setup
  in
  let worst_hold = if !worst_hold = Float.infinity then period else !worst_hold in
  Obs.count "sta.smo.iterations" !iterations;
  Obs.count "sta.smo.registers_checked" (List.length views);
  { worst_setup_slack = worst_setup;
    worst_hold_slack = worst_hold;
    violations = List.rev !violations;
    max_borrow = !max_borrow;
    iterations = !iterations }

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>setup slack %.4f ns, hold slack %.4f ns, %d violation(s), \
     borrow %.4f ns, %d iteration(s)@]"
    r.worst_setup_slack r.worst_hold_slack (List.length r.violations)
    r.max_borrow r.iterations

module Design = Netlist.Design

type stats = {
  buffers_added : int;
  iterations : int;
  fixed : bool;
}

(* Insert [count] delay buffers in front of the data pin of [targets]. *)
let pad_inputs d targets =
  let rw = Netlist.Rewrite.start d in
  let b = Netlist.Rewrite.builder rw in
  let buf = Cell_lib.Library.buffer d.Design.library in
  let counter = ref 0 in
  Design.fold_insts
    (fun i () ->
      match Hashtbl.find_opt targets i with
      | None -> Netlist.Rewrite.copy_inst rw i
      | Some count ->
        let data_pin =
          match (Design.cell d i).Cell_lib.Cell.kind with
          | Cell_lib.Cell.Flip_flop { data_pin; _ }
          | Cell_lib.Cell.Latch { data_pin; _ } -> data_pin
          | Cell_lib.Cell.Combinational | Cell_lib.Cell.Clock_gate _ ->
            assert false
        in
        let old_net = Design.pin_net d i data_pin in
        let rec chain src k =
          if k = 0 then src
          else begin
            incr counter;
            let out =
              Netlist.Builder.fresh_net b
                (Printf.sprintf "%s_hold%d" (Design.inst_name d i) k)
            in
            let in_pin, out_pin =
              match Cell_lib.Cell.input_pins buf, Cell_lib.Cell.output_pins buf with
              | [ip], [op] -> ip.Cell_lib.Cell.pin_name, op.Cell_lib.Cell.pin_name
              | _, _ -> invalid_arg "Hold_fix: buffer cell must be 1-in 1-out"
            in
            ignore
              (Netlist.Builder.add_instance b
                 (Printf.sprintf "%s_holdbuf%d" (Design.inst_name d i) k) buf
                 [(in_pin, src); (out_pin, out)]);
            chain out (k - 1)
          end
        in
        let padded = chain (Netlist.Rewrite.map_net rw old_net) count in
        Netlist.Rewrite.copy_inst ~override:[(data_pin, padded)] rw i)
    d ();
  (Netlist.Rewrite.finish rw, !counter)

let run ?(skew = 0.05) ?(hold_margin = 0.02) ?(max_iterations = 4) d ~clocks =
  Obs.span "sta.hold_fix" @@ fun () ->
  let buf = Cell_lib.Library.buffer d.Design.library in
  let buf_min_delay = Float.max 0.012 buf.Cell_lib.Cell.delay_min in
  let rec loop d iteration added =
    let report = Smo.check ~hold_margin ~clock_skew:skew d ~clocks in
    let targets = Hashtbl.create 32 in
    List.iter
      (fun (v : Smo.violation) ->
        match v.Smo.kind with
        | `Hold ->
          let needed =
            Stdlib.min 6
              (int_of_float (ceil (-.v.Smo.slack /. buf_min_delay)))
          in
          let needed = Stdlib.max 1 needed in
          let current =
            Option.value ~default:0 (Hashtbl.find_opt targets v.Smo.dst)
          in
          Hashtbl.replace targets v.Smo.dst (Stdlib.max current needed)
        | `Setup -> ())
      report.Smo.violations;
    if Hashtbl.length targets = 0 then begin
      Obs.count "sta.hold_fix.buffers" added;
      (d, { buffers_added = added; iterations = iteration; fixed = true })
    end
    else if iteration >= max_iterations then begin
      Obs.count "sta.hold_fix.buffers" added;
      (d, { buffers_added = added; iterations = iteration; fixed = false })
    end
    else begin
      let d', count = pad_inputs d targets in
      loop d' (iteration + 1) (added + count)
    end
  in
  loop d 0 0

module Design = Netlist.Design

type breakdown = {
  clock : float;
  seq : float;
  comb : float;
}

let total b = b.clock +. b.seq +. b.comb

type detail = {
  dynamic : breakdown;
  leakage : breakdown;
  overall : breakdown;
}

type group = Clock | Seq | Comb

let add b g v =
  match g with
  | Clock -> { b with clock = b.clock +. v }
  | Seq -> { b with seq = b.seq +. v }
  | Comb -> { b with comb = b.comb +. v }

let zero = { clock = 0.0; seq = 0.0; comb = 0.0 }

(* Zero-delay simulation produces no glitches, but glitch power is a
   large share of combinational dynamic power in silicon and is one of
   the effects the paper credits for latch designs' savings: flip-flops
   launch every cone input on the same edge (maximal arrival races),
   while latch phases spread launches and time borrowing smooths arrival
   skews.  First-order model: combinational switching is scaled by
   [1 + rate * (logic depth - 1)], with [rate] interpolated between the
   edge-triggered and level-sensitive coefficients by the design's
   register mix. *)
let glitch_rate_ff = 0.22

let glitch_rate_latch = 0.08

let glitch_multiplier_cap = 2.5

let run (impl : Physical.Implement.t) ~activity:(toggles, cycles) ~period =
  Obs.span "power.estimate" @@ fun () ->
  let d = impl.Physical.Implement.design in
  if Array.length toggles < Design.num_nets d then
    invalid_arg
      (Printf.sprintf
         "Power.Estimate.run: activity covers %d nets, design has %d"
         (Array.length toggles) (Design.num_nets d));
  let tech = Cell_lib.Library.tech d.Design.library in
  let v2 = tech.Cell_lib.Tech.voltage *. tech.Cell_lib.Tech.voltage in
  let levels = Netlist.Traverse.net_levels d in
  let glitch_rate =
    let ffs = ref 0 and latches = ref 0 in
    Design.fold_insts
      (fun i () ->
        match (Design.cell d i).Cell_lib.Cell.kind with
        | Cell_lib.Cell.Flip_flop _ -> incr ffs
        | Cell_lib.Cell.Latch _ -> incr latches
        | Cell_lib.Cell.Combinational | Cell_lib.Cell.Clock_gate _ -> ())
      d ();
    let total = !ffs + !latches in
    if total = 0 then glitch_rate_latch
    else
      ((glitch_rate_ff *. float_of_int !ffs)
       +. (glitch_rate_latch *. float_of_int !latches))
      /. float_of_int total
  in
  let glitch net =
    Float.min glitch_multiplier_cap
      (1.0 +. (glitch_rate *. float_of_int (Stdlib.max 0 (levels.(net) - 1))))
  in
  (* back-to-back latch pairs abut in placement: a net from one latch
     straight into another latch's data pin carries no routed wire *)
  let is_abutted net =
    (match d.Design.net_driver.(net) with
     | Design.Driven_by (i, _) -> Cell_lib.Cell.is_latch (Design.cell d i)
     | Design.Driven_by_input _ | Design.Driven_const _ | Design.Undriven -> false)
    && (match d.Design.net_sinks.(net) with
        | [(j, pin)] ->
          (match (Design.cell d j).Cell_lib.Cell.kind with
           | Cell_lib.Cell.Latch { data_pin; _ } -> String.equal pin data_pin
           | Cell_lib.Cell.Combinational | Cell_lib.Cell.Flip_flop _
           | Cell_lib.Cell.Clock_gate _ -> false)
        | [] | _ :: _ :: _ -> false)
  in
  let clock_nets = Hashtbl.create 256 in
  List.iter
    (fun port ->
      List.iter
        (fun n -> Hashtbl.replace clock_nets n ())
        (Netlist.Clocking.clock_network_nets d ~port))
    d.Design.clock_ports;
  let pin_cap net =
    List.fold_left
      (fun acc (i, pin) ->
        match Cell_lib.Cell.find_pin (Design.cell d i) pin with
        | Some p -> acc +. p.Cell_lib.Cell.capacitance
        | None -> acc)
      0.0 d.Design.net_sinks.(net)
  in
  let group_of_net net =
    if Hashtbl.mem clock_nets net then Clock
    else
      match d.Design.net_driver.(net) with
      | Design.Driven_by (i, _) ->
        let c = Design.cell d i in
        (match c.Cell_lib.Cell.kind with
         | Cell_lib.Cell.Flip_flop _ | Cell_lib.Cell.Latch _ -> Seq
         | Cell_lib.Cell.Clock_gate _ -> Clock
         | Cell_lib.Cell.Combinational -> Comb)
      | Design.Driven_by_input _ | Design.Driven_const _ | Design.Undriven -> Comb
  in
  (* net switching energy (fJ over the whole simulation) *)
  let dynamic = ref zero in
  for net = 0 to Design.num_nets d - 1 do
    let t = float_of_int toggles.(net) in
    if t > 0.0 then begin
      let g = group_of_net net in
      let cap =
        (* clock-net routing is covered by the clock-tree model below *)
        if g = Clock then pin_cap net
        else if is_abutted net then pin_cap net
        else pin_cap net +. impl.Physical.Implement.wire net
      in
      let activity_scale = if g = Comb then glitch net else 1.0 in
      dynamic := add !dynamic g (t *. activity_scale *. 0.5 *. cap *. v2)
    end
  done;
  (* per-cell internal energy *)
  Design.fold_insts
    (fun i () ->
      let c = Design.cell d i in
      let e = c.Cell_lib.Cell.internal_energy in
      if e > 0.0 then begin
        match c.Cell_lib.Cell.kind with
        | Cell_lib.Cell.Combinational ->
          let t =
            List.fold_left
              (fun a n -> a +. (float_of_int toggles.(n) *. glitch n))
              0.0 (Design.output_nets d i)
          in
          (* combinational buffers sitting on the clock network belong to
             the clock group *)
          let g =
            match Design.output_nets d i with
            | n :: _ when Hashtbl.mem clock_nets n -> Clock
            | _ :: _ | [] -> Comb
          in
          dynamic := add !dynamic g (e *. t)
        | Cell_lib.Cell.Flip_flop _ | Cell_lib.Cell.Latch _ ->
          (match Design.clock_net_of d i with
           | Some cn ->
             dynamic := add !dynamic Seq (e *. float_of_int toggles.(cn) /. 2.0)
           | None -> ())
        | Cell_lib.Cell.Clock_gate { clock_pin; _ } ->
          (match Design.pin_net_opt d i clock_pin with
           | Some cn ->
             dynamic := add !dynamic Clock (e *. float_of_int toggles.(cn) /. 2.0)
           | None -> ())
      end)
    d ();
  (* clock-tree wire, buffers and their internal energy *)
  List.iter
    (fun (s : Physical.Clock_tree.subnet) ->
      let t = float_of_int toggles.(s.Physical.Clock_tree.root_net) in
      let cap =
        s.Physical.Clock_tree.wire_cap +. s.Physical.Clock_tree.buffer_cap
      in
      dynamic :=
        add !dynamic Clock
          ((t *. 0.5 *. cap *. v2)
           +. (s.Physical.Clock_tree.buffer_internal_energy *. t /. 2.0)))
    impl.Physical.Implement.clock_tree.Physical.Clock_tree.subnets;
  (* leakage, nW -> mW *)
  let leakage = ref zero in
  Design.fold_insts
    (fun i () ->
      let c = Design.cell d i in
      let g =
        match c.Cell_lib.Cell.kind with
        | Cell_lib.Cell.Flip_flop _ | Cell_lib.Cell.Latch _ -> Seq
        | Cell_lib.Cell.Clock_gate _ -> Clock
        | Cell_lib.Cell.Combinational ->
          (match Design.output_nets d i with
           | n :: _ when Hashtbl.mem clock_nets n -> Clock
           | _ :: _ | [] -> Comb)
      in
      leakage := add !leakage g (c.Cell_lib.Cell.leakage /. 1.0e6))
    d ();
  List.iter
    (fun (s : Physical.Clock_tree.subnet) ->
      leakage := add !leakage Clock (s.Physical.Clock_tree.buffer_leakage /. 1.0e6))
    impl.Physical.Implement.clock_tree.Physical.Clock_tree.subnets;
  (* fJ over the run -> mW: fJ / (cycles * period ns) = uW; / 1000 = mW *)
  let denom = float_of_int (max 1 cycles) *. period *. 1000.0 in
  let dynamic_mw =
    { clock = !dynamic.clock /. denom;
      seq = !dynamic.seq /. denom;
      comb = !dynamic.comb /. denom }
  in
  let overall =
    { clock = dynamic_mw.clock +. !leakage.clock;
      seq = dynamic_mw.seq +. !leakage.seq;
      comb = dynamic_mw.comb +. !leakage.comb }
  in
  { dynamic = dynamic_mw; leakage = !leakage; overall }

let pp_breakdown ppf b =
  Format.fprintf ppf "clock %.4f mW, seq %.4f mW, comb %.4f mW, total %.4f mW"
    b.clock b.seq b.comb (total b)

(** Power estimation in the paper's three groups: clock network, sequential
    cells, and combinational logic (Table II's columns).

    Dynamic power comes from simulated per-net toggle counts: every net
    toggle switches its pin and wire capacitance; every cell adds its
    internal energy per relevant event (output toggle for combinational
    cells, clock edge for sequential and clock-gating cells).  The clock
    group uses the clock-tree synthesis result instead of the generic
    wire estimate, so gating that stops a subnet's toggling is rewarded.
    Leakage is summed per group. *)

type breakdown = {
  clock : float;  (** mW *)
  seq : float;
  comb : float;
}

val total : breakdown -> float

type detail = {
  dynamic : breakdown;
  leakage : breakdown;
  overall : breakdown;   (** dynamic + leakage *)
}

(** [run impl ~activity:(toggles, cycles) ~period] — [period] in ns.
    [toggles] must cover every net of the implemented design (simulator
    counters or [Sim.Activity.counts] both qualify); [cycles] is the
    per-lane denominator, so multi-lane kernel runs pass
    [Kernel.lane_cycles].  Raises [Invalid_argument] if the activity
    array is shorter than the design's net count. *)
val run :
  Physical.Implement.t -> activity:int array * int -> period:float -> detail

val pp_breakdown : Format.formatter -> breakdown -> unit

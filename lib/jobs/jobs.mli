(** Bounded domain-level parallelism.

    The worker count comes from the [THREEPHASE_JOBS] environment
    variable when set (values below 1, or unparsable, fall back to
    serial), otherwise from [Domain.recommended_domain_count].  A global
    token budget bounds the total number of live domains across nested
    parallel sections, so the suite loop mapping over benchmarks and
    each runner mapping over variants cannot oversubscribe the machine.

    Determinism contract (shared by every entry point here): results
    preserve input order, the first exception (by input index for the
    maps, by participant index for [pool_run]) is re-raised with its
    backtrace, and work distribution never leaks into results — a
    parallel run is observationally identical to a serial one.  That
    extends to observability: [Obs] events recorded inside tasks land
    on per-domain buffers whose merged aggregates (summed counters,
    max-merged gauges) are identical for any worker count.  Both
    [pool_run] and the maps form a full barrier before returning, so
    reading [Obs] afterwards (or between runs on an idle pool) is
    race-free. *)

(** Effective worker count ([THREEPHASE_JOBS] or the domain count). *)
val default_jobs : unit -> int

(** {1 Persistent worker pools}

    A [pool] owns its worker domains for its whole lifetime: spawn cost
    is paid once at [pool_create], and each [pool_run] costs only a
    wakeup and a barrier — cheap enough to call once per levelized wave
    inside a simulation cycle.  Workers spin briefly between
    back-to-back tasks and park on a condition variable when the pool
    goes idle, so holding a pool open across a whole benchmark run is
    free. *)

type pool

(** [pool_create ()] sizes the pool from [default_jobs], throttled by
    the global budget (nested defaulted pools degrade to serial rather
    than oversubscribe).  [pool_create ~jobs] is {e exact}: it spawns
    [jobs - 1] worker domains even when the budget is exhausted,
    because explicit job counts exist to reproduce domain-dependent
    behaviour (tests, cross-jobs determinism checks).  Always destroy
    with [pool_destroy] (or use [with_pool]); worker domains and budget
    tokens are held until then. *)
val pool_create : ?jobs:int -> unit -> pool

(** Participants in [pool_run], including the caller (at least 1). *)
val pool_size : pool -> int

(** [pool_run p f] runs [f d] once per participant [d] in
    [0 .. pool_size p - 1] — [f 0] on the calling domain — and returns
    after all participants finish (a full barrier, establishing
    happens-before between everything the tasks wrote and the caller's
    subsequent reads).  [f] must confine shared-state writes to
    participant-disjoint locations.  The first participant's exception
    (by index) is re-raised after the barrier completes. *)
val pool_run : pool -> (int -> unit) -> unit

(** Stops and joins the workers and returns budget tokens.  Must only
    be called when no [pool_run] is in flight; idempotent. *)
val pool_destroy : pool -> unit

(** [with_pool f] = [pool_create], [f], [pool_destroy] (on any exit). *)
val with_pool : ?jobs:int -> (pool -> 'a) -> 'a

(** {1 Order-preserving parallel maps} *)

(** [parallel_mapi_array f items] maps [f i items.(i)] over an array,
    allocation-lean on the hot path (no list conversion, index-stealing
    distribution).  Reuses [~pool] when given — pass the pool you
    already hold instead of paying spawn cost per call — otherwise
    creates a budget-throttled pool for the duration of the call. *)
val parallel_mapi_array : ?pool:pool -> (int -> 'a -> 'b) -> 'a array -> 'b array

(** [parallel_map f items] maps [f] over [items], possibly on multiple
    domains; thin wrapper over [parallel_mapi_array].  [f] must not
    depend on evaluation order and, because it may run on a fresh
    domain, must not race on shared mutable state — force any
    lazily-initialised shared structure (e.g. the parsed cell library)
    before calling. *)
val parallel_map : ('a -> 'b) -> 'a list -> 'b list

(** Bounded domain-level parallelism for the experiment suite.

    The worker count comes from the [THREEPHASE_JOBS] environment
    variable when set (values below 1, or unparsable, fall back to
    serial), otherwise from [Domain.recommended_domain_count].  A global
    token budget bounds the total number of live domains across nested
    [parallel_map] calls, so the suite loop mapping over benchmarks and
    each runner mapping over variants cannot oversubscribe the machine.

    Results preserve input order and the first exception (by input
    index) is re-raised with its backtrace — a parallel run is
    observationally identical to a serial one.  That extends to
    observability: [Obs] events recorded inside [f] land on per-domain
    buffers whose merged aggregates (summed counters, max-merged
    gauges) are identical for any worker count, and [parallel_map]
    joins its workers before returning, so reading [Obs] afterwards is
    race-free. *)

(** Effective worker count ([THREEPHASE_JOBS] or the domain count). *)
val default_jobs : unit -> int

(** [parallel_map f items] maps [f] over [items], possibly on multiple
    domains.  [f] must not depend on evaluation order and, because it
    may run on a fresh domain, must not race on shared mutable state —
    force any lazily-initialised shared structure (e.g. the parsed cell
    library) before calling. *)
val parallel_map : ('a -> 'b) -> 'a list -> 'b list

(* Bounded domain-level parallelism for the experiment suite.

   [parallel_map] fans a list out over [Domain.spawn] workers while a
   global token budget keeps the total number of live worker domains
   bounded even when parallel sections nest (the suite loop in bench/
   maps over benchmarks whose runners themselves map over variants).
   Results come back in input order and exceptions are re-raised from
   the first failing index, so a parallel run is observationally
   identical to the serial one. *)

let default_jobs () =
  match Sys.getenv_opt "THREEPHASE_JOBS" with
  | Some s ->
    (match int_of_string_opt (String.trim s) with
     | Some n when n >= 1 -> n
     | Some _ | None -> 1)
  | None -> Domain.recommended_domain_count ()

(* tokens for *extra* domains beyond the calling one *)
let budget = Atomic.make (-1)

let init_budget () =
  (* first caller fixes the budget; races both write the same value *)
  if Atomic.get budget < 0 then
    Atomic.set budget (max 0 (default_jobs () - 1))

let rec try_reserve () =
  let n = Atomic.get budget in
  if n <= 0 then 0
  else begin
    let want = n in
    if Atomic.compare_and_set budget n 0 then want else try_reserve ()
  end

let release n = if n > 0 then ignore (Atomic.fetch_and_add budget n)

exception Worker of int * exn * Printexc.raw_backtrace

let parallel_map f items =
  init_budget ();
  let items = Array.of_list items in
  let n = Array.length items in
  if n <= 1 then Array.to_list (Array.map f items)
  else begin
    let tokens = try_reserve () in
    let extra = min tokens (n - 1) in
    if extra = 0 then begin
      release tokens;
      Array.to_list (Array.map f items)
    end
    else begin
      release (tokens - extra);
      let results = Array.make n None in
      let next = Atomic.make 0 in
      let work () =
        let continue = ref true in
        while !continue do
          let i = Atomic.fetch_and_add next 1 in
          if i >= n then continue := false
          else
            results.(i) <-
              (match f items.(i) with
               | r -> Some (Ok r)
               | exception e ->
                 Some (Error (i, e, Printexc.get_raw_backtrace ())))
        done
      in
      let domains = Array.init extra (fun _ -> Domain.spawn work) in
      work ();
      Array.iter Domain.join domains;
      release extra;
      (* surface the first failure in input order, like a serial run *)
      Array.iter
        (function
          | Some (Error (i, e, bt)) -> raise (Worker (i, e, bt))
          | Some (Ok _) | None -> ())
        results;
      Array.to_list
        (Array.map
           (function
             | Some (Ok r) -> r
             | Some (Error _) | None -> assert false)
           results)
    end
  end

let parallel_map f items =
  match parallel_map f items with
  | r -> r
  | exception Worker (_, e, bt) -> Printexc.raise_with_backtrace e bt

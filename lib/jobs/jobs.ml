(* Bounded domain-level parallelism.

   Two layers:

   - [pool] — a persistent worker pool with a barrier-style [pool_run]:
     domains are spawned once (per kernel run, per suite sweep, ...)
     and reused for many short tasks, so per-task cost is a fence and a
     wakeup rather than a [Domain.spawn].  Workers spin briefly between
     tasks and park on a condition variable when the pool goes idle.

   - [parallel_mapi_array] / [parallel_map] — order-preserving maps
     built on top of a pool.  Results come back in input order and the
     first exception (by input index) is re-raised with its backtrace,
     so a parallel run is observationally identical to the serial one.

   A global token budget bounds the number of live worker domains even
   when parallel sections nest (the suite loop in bench/ maps over
   benchmarks whose runners themselves map over variants).  Pools
   created with an explicit [~jobs] are exact — they spawn the
   requested domains even when the budget is exhausted — because they
   exist to make domain-count-dependent behaviour reproducible (tests,
   cross-jobs determinism checks); defaulted pools are throttled. *)

let default_jobs () =
  match Sys.getenv_opt "THREEPHASE_JOBS" with
  | Some s ->
    (match int_of_string_opt (String.trim s) with
     | Some n when n >= 1 -> n
     | Some _ | None -> 1)
  | None -> Domain.recommended_domain_count ()

(* tokens for *extra* domains beyond the calling one *)
let budget = Atomic.make (-1)

let init_budget () =
  (* first caller fixes the budget; races both write the same value *)
  if Atomic.get budget < 0 then
    Atomic.set budget (max 0 (default_jobs () - 1))

(* take up to [want] tokens, returning how many were granted *)
let rec reserve want =
  if want <= 0 then 0
  else
    let n = Atomic.get budget in
    if n <= 0 then 0
    else
      let take = min n want in
      if Atomic.compare_and_set budget n (n - take) then take
      else reserve want

let release n = if n > 0 then ignore (Atomic.fetch_and_add budget n)

type pool = {
  workers : int;  (* extra domains beyond the caller *)
  reserved : int; (* budget tokens held until destroy *)
  mutable fn : int -> unit;
  epoch : int Atomic.t;   (* task generation, incremented per run *)
  pending : int Atomic.t; (* workers still running the current task *)
  stop : bool Atomic.t;
  lock : Mutex.t;
  cond : Condition.t;
  mutable sleepers : int; (* workers parked on [cond]; guarded by [lock] *)
  errors : (exn * Printexc.raw_backtrace) option array;
  mutable domains : unit Domain.t array;
}

let pool_size p = p.workers + 1

(* spins before parking (worker) or yielding (caller); tuned so that
   back-to-back tasks — one bucket per level during a kernel settle —
   stay on the fast path while idle pools release the CPU *)
let spin_limit = 4096

let worker_loop pool p =
  let my = ref 1 in
  let running = ref true in
  while !running do
    let ready () = Atomic.get pool.stop || Atomic.get pool.epoch >= !my in
    let spins = ref 0 in
    while (not (ready ())) && !spins < spin_limit do
      incr spins;
      Domain.cpu_relax ()
    done;
    if not (ready ()) then begin
      Mutex.lock pool.lock;
      pool.sleepers <- pool.sleepers + 1;
      while not (ready ()) do
        Condition.wait pool.cond pool.lock
      done;
      pool.sleepers <- pool.sleepers - 1;
      Mutex.unlock pool.lock
    end;
    if Atomic.get pool.stop then running := false
    else begin
      (match pool.fn p with
       | () -> ()
       | exception e ->
         pool.errors.(p) <- Some (e, Printexc.get_raw_backtrace ()));
      ignore (Atomic.fetch_and_add pool.pending (-1));
      incr my
    end
  done

let pool_make ~exact ~want =
  init_budget ();
  let want = max 1 want in
  let granted = reserve (want - 1) in
  let workers = if exact then want - 1 else granted in
  let pool =
    { workers;
      reserved = granted;
      fn = ignore;
      epoch = Atomic.make 0;
      pending = Atomic.make 0;
      stop = Atomic.make false;
      lock = Mutex.create ();
      cond = Condition.create ();
      sleepers = 0;
      errors = Array.make (workers + 1) None;
      domains = [||] }
  in
  pool.domains <-
    Array.init workers (fun w ->
        Domain.spawn (fun () -> worker_loop pool (w + 1)));
  pool

let pool_create ?jobs () =
  match jobs with
  | Some j -> pool_make ~exact:true ~want:j
  | None -> pool_make ~exact:false ~want:(default_jobs ())

let pool_destroy pool =
  if not (Atomic.get pool.stop) then begin
    Atomic.set pool.stop true;
    Mutex.lock pool.lock;
    Condition.broadcast pool.cond;
    Mutex.unlock pool.lock;
    Array.iter Domain.join pool.domains;
    release pool.reserved
  end

let pool_run pool f =
  if pool.workers = 0 then f 0
  else begin
    Array.fill pool.errors 0 (Array.length pool.errors) None;
    pool.fn <- f;
    Atomic.set pool.pending pool.workers;
    (* the atomic increment publishes [fn]: workers read the epoch
       before touching the task closure *)
    Atomic.incr pool.epoch;
    Mutex.lock pool.lock;
    if pool.sleepers > 0 then Condition.broadcast pool.cond;
    Mutex.unlock pool.lock;
    (match f 0 with
     | () -> ()
     | exception e -> pool.errors.(0) <- Some (e, Printexc.get_raw_backtrace ()));
    let spins = ref 0 in
    while Atomic.get pool.pending > 0 do
      incr spins;
      if !spins < spin_limit then Domain.cpu_relax ()
      else begin
        (* oversubscribed (more domains than cores): let workers run *)
        spins := 0;
        Unix.sleepf 5e-5
      end
    done;
    Array.iter
      (function
        | Some (e, bt) -> Printexc.raise_with_backtrace e bt
        | None -> ())
      pool.errors
  end

let with_pool ?jobs f =
  let p = pool_create ?jobs () in
  Fun.protect ~finally:(fun () -> pool_destroy p) (fun () -> f p)

let parallel_mapi_array ?pool f items =
  let n = Array.length items in
  if n = 0 then [||]
  else begin
    let run p =
      if pool_size p = 1 || n = 1 then Array.mapi f items
      else begin
        let results = Array.make n None in
        let next = Atomic.make 0 in
        pool_run p (fun _ ->
            let continue = ref true in
            while !continue do
              let i = Atomic.fetch_and_add next 1 in
              if i >= n then continue := false
              else
                results.(i) <-
                  Some
                    (match f i items.(i) with
                     | r -> Ok r
                     | exception e -> Error (e, Printexc.get_raw_backtrace ()))
            done);
        (* surface the first failure in input order, like a serial run *)
        Array.iter
          (function
            | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
            | Some (Ok _) | None -> ())
          results;
        Array.map
          (function
            | Some (Ok r) -> r
            | Some (Error _) | None -> assert false)
          results
      end
    in
    match pool with
    | Some p -> run p
    | None ->
      if n = 1 then Array.mapi f items
      else begin
        init_budget ();
        let p = pool_make ~exact:false ~want:(min (default_jobs ()) n) in
        Fun.protect ~finally:(fun () -> pool_destroy p) (fun () -> run p)
      end
  end

let parallel_map f items =
  match items with
  | [] -> []
  | [ x ] -> [ f x ]
  | _ ->
    Array.to_list
      (parallel_mapi_array (fun _ x -> f x) (Array.of_list items))

(** Plain-text tables in the style of the paper's Tables I and II.

    A table is a mutable row accumulator over a fixed column layout;
    {!render} right-pads every cell to the widest entry of its column.
    Used by {!Experiments.Tables} for the paper reproductions and by
    [Obs.summary_table] for the observability report. *)

(** Per-column alignment. [Left] suits names, [Right] suits numbers. *)
type align = Left | Right

type t

(** [create ~title columns] makes an empty table with the given
    [(header, alignment)] columns.  The title prints above the header,
    underlined across the table width. *)
val create : title:string -> (string * align) list -> t

(** Add a data row; cells beyond the column count are dropped, missing
    cells are blank. *)
val add_row : t -> string list -> unit

(** Add a separator line (a dashed rule across all columns). *)
val add_rule : t -> unit

(** The whole table as a string, trailing newline included. *)
val render : t -> string

(** [print t] writes {!render} to standard output. *)
val print : t -> unit

(** Percentage string in the paper's style: [pct ~ref_ ~v] is the saving
    of [v] relative to [ref_], e.g. 15.5 means "v is 15.5% below ref". *)
val pct : ref_:float -> float -> string

(** One decimal place. *)
val f1 : float -> string

(** Two decimal places. *)
val f2 : float -> string

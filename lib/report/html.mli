(** Small HTML fragment builders for self-contained report pages.

    Pure string producers — no I/O, no page structure.  Everything
    here emits standalone markup (inline SVG, style attributes), so a
    page assembled from these fragments needs no external assets. *)

(** Escape for text and attribute contexts (ampersand, angle
    brackets, double and single quotes). *)
val escape : string -> string

(** Compact numeric rendering for table cells ([%.0f] for integers,
    [%.4g] otherwise, ["nan"] for NaN). *)
val num : float -> string

(** Inline SVG polyline sparkline of a value series (oldest first),
    with a dot on the latest point.  Non-finite values break the line;
    a constant series draws a midline; fewer than two points (or none
    finite) renders as [""].  Stroke colour is [currentColor], so it
    follows the surrounding text colour. *)
val spark_svg : ?width:int -> ?height:int -> float list -> string

(** [bar ~frac label] — a proportional horizontal bar ([frac] clamped
    to [0..1]) followed by an escaped label.  Styling hooks: the track
    has class ["track"], the fill [cls] (default ["bar"]), the label
    ["barlabel"]. *)
val bar : ?cls:string -> frac:float -> string -> string

(* Small HTML builders for the self-contained report pages: escaping,
   inline-SVG sparklines and proportional bars.  Pure string producers
   — no I/O, no document structure, so the composition (what a flow
   report looks like) can live next to the data it renders. *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' -> Buffer.add_string buf "&quot;"
      | '\'' -> Buffer.add_string buf "&#39;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let num v =
  if Float.is_nan v then "nan"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.4g" v

(* Inline SVG polyline sparkline.  Non-finite values break the line.
   Constant series draw a midline.  The viewBox is fixed so CSS can
   size it; vector-effect keeps the stroke width stable. *)
let spark_svg ?(width = 120) ?(height = 24) values =
  let finite = List.filter Float.is_finite values in
  let n = List.length values in
  if n < 2 || finite = [] then ""
  else begin
    let lo = List.fold_left Float.min infinity finite in
    let hi = List.fold_left Float.max neg_infinity finite in
    let w = float_of_int width and h = float_of_int height in
    let x i = float_of_int i /. float_of_int (n - 1) *. (w -. 4.0) +. 2.0 in
    let y v =
      if hi = lo then h /. 2.0
      else h -. 3.0 -. ((v -. lo) /. (hi -. lo) *. (h -. 6.0))
    in
    let buf = Buffer.create 256 in
    Printf.bprintf buf
      "<svg class=\"spark\" viewBox=\"0 0 %d %d\" width=\"%d\" height=\"%d\" \
       preserveAspectRatio=\"none\">"
      width height width height;
    let pending = Buffer.create 64 in
    let flush_segment () =
      if Buffer.length pending > 0 then begin
        Printf.bprintf buf
          "<polyline fill=\"none\" stroke=\"currentColor\" \
           stroke-width=\"1.5\" vector-effect=\"non-scaling-stroke\" \
           points=\"%s\"/>"
          (Buffer.contents pending);
        Buffer.clear pending
      end
    in
    List.iteri
      (fun i v ->
        if Float.is_finite v then
          Printf.bprintf pending "%s%.1f,%.1f"
            (if Buffer.length pending = 0 then "" else " ")
            (x i) (y v)
        else flush_segment ())
      values;
    flush_segment ();
    (* dot on the latest point *)
    (match List.rev values with
     | last :: _ when Float.is_finite last ->
       Printf.bprintf buf
         "<circle cx=\"%.1f\" cy=\"%.1f\" r=\"2\" fill=\"currentColor\"/>"
         (x (n - 1)) (y last)
     | _ -> ());
    Buffer.add_string buf "</svg>";
    Buffer.contents buf
  end

(* A proportional horizontal bar: [frac] of the track filled, label
   beside it.  Clamped; CSS class hooks for colouring. *)
let bar ?(cls = "bar") ~frac label =
  let pct = 100.0 *. Float.max 0.0 (Float.min 1.0 frac) in
  Printf.sprintf
    "<span class=\"track\"><span class=\"%s\" style=\"width:%.1f%%\"></span>\
     </span><span class=\"barlabel\">%s</span>"
    cls pct (escape label)

type config = {
  solver : Assignment.solver;
  node_budget : int;
  retime : bool;
  optimize : bool;
  clock_gating : Clock_gating.options;
  ports : Convert.clock_ports;
  period : float;
  activity_cycles : int;
  activity_seed : int;
  verify_equivalence : bool;
  verify_cycles : int;
  lint : bool;
}

let default_config ~period = {
  solver = `Auto;
  node_budget = 2_000_000;
  retime = true;
  optimize = false;
  clock_gating = Clock_gating.default_options;
  ports = Convert.default_ports;
  period;
  activity_cycles = 512;
  activity_seed = 1;
  verify_equivalence = true;
  verify_cycles = 256;
  lint = true;
}

type result = {
  config : config;
  original : Netlist.Design.t;
  assignment : Assignment.t;
  converted : Netlist.Design.t;
  retimed : Netlist.Design.t;
  final : Netlist.Design.t;
  retime_stats : Retime.stats option;
  cg_stats : Clock_gating.stats option;
  timing : Sta.Smo.report;
  lint : Lint.Engine.report option;
  equivalence : Sim.Equivalence.verdict option;
  stage_times : (string * float) list;
}

let stage_names =
  [ "validate"; "assign"; "convert"; "retime"; "clock_gating"; "smo"; "lint";
    "equivalence" ]

exception Flow_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Flow_error s)) fmt

let clocks_of config =
  Sim.Clock_spec.three_phase ~period:config.period
    ~p1:config.ports.Convert.p1
    ~p2:config.ports.Convert.p2
    ~p3:config.ports.Convert.p3 ()

let reference_clocks d ~period =
  match d.Netlist.Design.clock_ports with
  | [port] -> Sim.Clock_spec.single ~period ~port
  | [] -> Sim.Clock_spec.single ~period ~port:"clock"
  | _ :: _ :: _ ->
    fail "design %s has several clock ports" d.Netlist.Design.design_name

let run ~config d =
  let times = ref [] in
  (* every enabled stage records exactly one "flow.<stage>" Obs span,
     allocation-pressure gauges at its boundary (gc_span samples
     Gc.quick_stat around the call), and one entry of [stage_times],
     in execution order *)
  let stage name f =
    let t0 = Unix.gettimeofday () in
    let r = Obs.gc_span ("flow." ^ name) f in
    let dt = Unix.gettimeofday () -. t0 in
    times := (name, dt) :: !times;
    (* per-stage latency distribution across every flow run in the
       process — wall clock, hence execution-shaped *)
    Obs.hist ~exec:true "flow.stage_ms" (1e3 *. dt);
    r
  in
  stage "validate" (fun () ->
      match Netlist.Check.validate d with
      | Ok () -> ()
      | Error errors ->
        fail "input design %s is invalid: %s" d.Netlist.Design.design_name
          (String.concat "; " errors));
  let assignment =
    stage "assign" (fun () ->
        let assignment = Assignment.solve ~solver:config.solver
            ~node_budget:config.node_budget d in
        (match Assignment.validate d assignment with
         | [] -> ()
         | issues -> fail "assignment invalid: %s" (String.concat "; " issues));
        assignment)
  in
  let converted =
    stage "convert" (fun () ->
        let converted = Convert.to_three_phase ~ports:config.ports d assignment in
        (match Netlist.Check.validate converted with
         | Ok () -> ()
         | Error errors ->
           fail "converted design invalid: %s" (String.concat "; " errors));
        converted)
  in
  let retimed, retime_stats =
    if config.retime then
      stage "retime" (fun () ->
          let d', s = Retime.run converted in
          (d', Some s))
    else (converted, None)
  in
  let clocks = clocks_of config in
  let cg_on =
    config.clock_gating.Clock_gating.common_enable
    || config.clock_gating.Clock_gating.ddcg
    || config.clock_gating.Clock_gating.m2_latch_removal
  in
  let final, cg_stats =
    if cg_on then
      stage "clock_gating" (fun () ->
          (* profile activity on the pre-gating design: the bit-parallel
             kernel runs one independently seeded stimulus stream per lane,
             so the DDCG decisions see Monte-Carlo toggle statistics rather
             than a single random trace *)
          let activity =
            Obs.span "flow.clock_gating.activity" (fun () ->
                let kernel = Sim.Kernel.create retimed ~clocks in
                let inputs = Sim.Stimulus.inputs_of retimed in
                let streams =
                  Array.init (Sim.Kernel.lanes kernel) (fun l ->
                      Sim.Stimulus.random ~seed:(config.activity_seed + l)
                        ~cycles:config.activity_cycles ~toggle_probability:0.25
                        inputs)
                in
                Sim.Kernel.run_streams kernel streams;
                (Sim.Kernel.toggles kernel, Sim.Kernel.lane_cycles kernel))
          in
          let d', s =
            Clock_gating.run ~options:config.clock_gating ~ports:config.ports
              ~activity retimed
          in
          (d', Some s))
    else (retimed, None)
  in
  let final =
    if config.optimize then
      stage "optimize" (fun () -> fst (Netlist.Optimize.run final))
    else final
  in
  (match Netlist.Check.validate final with
   | Ok () -> ()
   | Error errors -> fail "final design invalid: %s" (String.concat "; " errors));
  let timing = stage "smo" (fun () -> Sta.Smo.check final ~clocks) in
  let lint_report =
    if config.lint then
      stage "lint" (fun () ->
          (* the independent auditor: recomputes phase legality from the
             netlist and clock spec without consulting the assignment *)
          let report = Lint.Engine.run final ~clocks in
          if not (Lint.Engine.ok report) then begin
            let firsts =
              List.filteri
                (fun i _ -> i < 3)
                (List.filter Lint_core.Diagnostic.is_error
                   report.Lint.Engine.diagnostics)
            in
            fail "converted design fails lint with %d error(s): %s"
              report.Lint.Engine.errors
              (String.concat "; "
                 (List.map Lint_core.Diagnostic.to_string firsts))
          end;
          Some report)
    else None
  in
  let equivalence =
    if config.verify_equivalence then
      stage "equivalence" (fun () ->
          let stim =
            Sim.Stimulus.random ~seed:(config.activity_seed + 17)
              ~cycles:config.verify_cycles ~toggle_probability:0.35
              (Sim.Stimulus.inputs_of d)
          in
          let verdict =
            Sim.Equivalence.check ~reference:d ~dut:final
              ~reference_clocks:(reference_clocks d ~period:config.period)
              ~dut_clocks:clocks ~stimulus:stim ()
          in
          (match verdict with
           | Sim.Equivalence.Equivalent _ -> ()
           | Sim.Equivalence.Mismatch m ->
             fail "3-phase design is not stream-equivalent: %a"
               Sim.Equivalence.pp_mismatch m);
          Some verdict)
    else None
  in
  { config; original = d; assignment; converted; retimed; final;
    retime_stats; cg_stats; timing; lint = lint_report; equivalence;
    stage_times = List.rev !times }

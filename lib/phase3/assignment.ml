module Design = Netlist.Design
module Ff_graph = Netlist.Ff_graph

type plan =
  | Single_p1
  | Pair_p1
  | Pair_p3

type solver = [ `Auto | `Ilp | `Mis | `Greedy ]

type t = {
  graph : Ff_graph.t;
  plans : plan array;
  pi_latches : string list;
  inserted_latches : int;
  optimal : bool;
  solver_used : solver;
  solve_time_s : float;
}

let total_latches t =
  let n = Array.length t.plans in
  let pairs =
    Array.fold_left
      (fun acc p -> match p with Single_p1 -> acc | Pair_p1 | Pair_p3 -> acc + 1)
      0 t.plans
  in
  (n - pairs) + (2 * pairs) + List.length t.pi_latches

(* K(v) = 1 iff the first latch of v is clocked by p1. *)
let k_of = function
  | Single_p1 | Pair_p1 -> true
  | Pair_p3 -> false

(* PI latches derived from the plans: an input needs a p2 latch iff some
   flip-flop in its fanout has its first latch on p1. *)
let derive_pi_latches (g : Ff_graph.t) plans =
  let needs = ref [] in
  Array.iteri
    (fun m fanout ->
      if List.exists (fun v -> k_of plans.(v)) fanout then
        needs := g.Ff_graph.pi_names.(m) :: !needs)
    g.Ff_graph.pi_fanout;
  List.rev !needs

let count_inserted plans pi_latches =
  Array.fold_left
    (fun acc p -> match p with Single_p1 -> acc | Pair_p1 | Pair_p3 -> acc + 1)
    0 plans
  + List.length pi_latches

(* --- MIS reduction --- *)

(* Augmented graph: one vertex per eligible (non-self-loop) flip-flop plus
   one auxiliary vertex per penalised primary input, adjacent to the
   input's eligible fanout set.  Maximum independent set = max (#singles +
   #avoided input penalties); see the module documentation. *)
let build_augmented (g : Ff_graph.t) =
  let n = Ff_graph.size g in
  let eligible = Array.init n (fun k -> not g.Ff_graph.self_loop.(k)) in
  let pi_with_fanout =
    Array.to_list g.Ff_graph.pi_fanout
    |> List.mapi (fun m fo -> (m, List.filter (fun v -> eligible.(v)) fo))
    |> List.filter (fun (_, fo) -> fo <> [])
  in
  let n_aux = List.length pi_with_fanout in
  let edges = ref [] in
  Array.iteri
    (fun u fanout ->
      if eligible.(u) then
        List.iter
          (fun v -> if v <> u && eligible.(v) then edges := (u, v) :: !edges)
          fanout)
    g.Ff_graph.fanout;
  List.iteri
    (fun k (_, fo) ->
      let aux = n + k in
      List.iter (fun v -> edges := (aux, v) :: !edges) fo)
    pi_with_fanout;
  let graph = Ilp.Indep_set.graph_of_edges ~n:(n + n_aux) !edges in
  (graph, eligible)

let decode_mis (g : Ff_graph.t) chosen eligible =
  let n = Ff_graph.size g in
  let plans =
    Array.init n (fun k ->
        if eligible.(k) && chosen.(k) then Single_p1 else Pair_p3)
  in
  let pi_latches = derive_pi_latches g plans in
  (plans, pi_latches)

(* --- Literal ILP formulation --- *)

let build_model (g : Ff_graph.t) =
  let n = Ff_graph.size g in
  let g_var u = 2 * u
  and k_var u = (2 * u) + 1 in
  let pi_with_fanout =
    Array.to_list g.Ff_graph.pi_fanout
    |> List.mapi (fun m fo -> (m, fo))
    |> List.filter (fun (_, fo) -> fo <> [])
  in
  let gpi_var =
    let tbl = Hashtbl.create 16 in
    List.iteri (fun k (m, _) -> Hashtbl.replace tbl m ((2 * n) + k)) pi_with_fanout;
    tbl
  in
  let num_vars = (2 * n) + List.length pi_with_fanout in
  let var_names =
    Array.init num_vars (fun j ->
        if j < 2 * n then
          Printf.sprintf "%s%d" (if j mod 2 = 0 then "G" else "K") (j / 2)
        else Printf.sprintf "Gpi%d" (j - (2 * n)))
  in
  let constraints = ref [] in
  for u = 0 to n - 1 do
    (* G(u) + K(u) >= 1 *)
    constraints :=
      Lp.Problem.constr [(g_var u, 1.0); (k_var u, 1.0)] Lp.Problem.Ge 1.0
      :: !constraints;
    (* G(u) >= K(u) + K(v) - 1 for v in FO(u); for v = u this becomes
       G(u) >= 2K(u) - 1 *)
    List.iter
      (fun v ->
        let coeffs =
          if v = u then [(g_var u, 1.0); (k_var u, -2.0)]
          else [(g_var u, 1.0); (k_var u, -1.0); (k_var v, -1.0)]
        in
        constraints := Lp.Problem.constr coeffs Lp.Problem.Ge (-1.0) :: !constraints)
      g.Ff_graph.fanout.(u)
  done;
  List.iter
    (fun (m, fo) ->
      let gp = Hashtbl.find gpi_var m in
      List.iter
        (fun v ->
          constraints :=
            Lp.Problem.constr [(gp, 1.0); (k_var v, -1.0)] Lp.Problem.Ge 0.0
            :: !constraints)
        fo)
    pi_with_fanout;
  let objective =
    List.init n (fun u -> (g_var u, 1.0))
    @ List.map (fun (m, _) -> (Hashtbl.find gpi_var m, 1.0)) pi_with_fanout
  in
  Ilp.Model.make ~var_names ~sense:Lp.Problem.Minimize ~objective !constraints

let decode_ilp (g : Ff_graph.t) (sol : Ilp.Model.solution) =
  let n = Ff_graph.size g in
  let plans =
    Array.init n (fun u ->
        let gv = sol.Ilp.Model.values.(2 * u) in
        let kv = sol.Ilp.Model.values.((2 * u) + 1) in
        match gv, kv with
        | false, _ -> Single_p1
        | true, true -> Pair_p1
        | true, false -> Pair_p3)
  in
  let pi_latches = derive_pi_latches g plans in
  (plans, pi_latches)

let model_of d = build_model (Ff_graph.build d)

let now () = Unix.gettimeofday ()

let solve ?(solver = `Auto) ?(node_budget = 2_000_000) d =
  let g = Ff_graph.build d in
  let n = Ff_graph.size g in
  let strategy =
    match solver with
    | `Auto -> if n <= 40 then `Ilp else `Mis
    | (`Ilp | `Mis | `Greedy) as s -> s
  in
  let t0 = now () in
  (* solver internals are published as Obs counters and histograms
     under the ilp./mis. prefixes by the solvers themselves; read them
     with Obs.counter_of / Obs.histograms *)
  let plans, pi_latches, optimal =
    match strategy with
    | `Ilp ->
      let model = build_model g in
      (match Ilp.Branch_bound.solve ~node_budget:(min node_budget 20_000) model with
       | Some (sol, _) ->
         let plans, pi = decode_ilp g sol in
         (plans, pi, sol.Ilp.Model.optimal)
       | None ->
         (* The formulation is always feasible (all pairs); cannot happen. *)
         assert false)
    | `Mis ->
      let graph, eligible = build_augmented g in
      let r = Obs.span "mis.solve" (fun () -> Ilp.Indep_set.solve ~node_budget graph) in
      Obs.count "mis.components" r.Ilp.Indep_set.components;
      Obs.count "mis.nodes" r.Ilp.Indep_set.nodes_explored;
      let plans, pi = decode_mis g r.Ilp.Indep_set.chosen eligible in
      (plans, pi, r.Ilp.Indep_set.optimal)
    | `Greedy ->
      let graph, eligible = build_augmented g in
      let chosen = Ilp.Indep_set.greedy graph in
      let plans, pi = decode_mis g chosen eligible in
      (plans, pi, false)
  in
  let solve_time_s = now () -. t0 in
  Obs.count "assign.registers" n;
  Obs.count "assign.inserted_latches" (count_inserted plans pi_latches);
  { graph = g;
    plans;
    pi_latches;
    inserted_latches = count_inserted plans pi_latches;
    optimal;
    solver_used = strategy;
    solve_time_s }

let validate d t =
  ignore d;
  let g = t.graph in
  let issues = ref [] in
  Array.iteri
    (fun u plan ->
      if g.Ff_graph.self_loop.(u) && plan = Single_p1 then
        issues :=
          Printf.sprintf "flip-flop %d has a combinational self-loop but is a single latch" u
          :: !issues;
      if plan = Single_p1 then
        List.iter
          (fun v ->
            if v <> u && k_of t.plans.(v) then
              issues :=
                Printf.sprintf
                  "single p1 latch %d feeds flip-flop %d whose first latch is p1" u v
                :: !issues)
          g.Ff_graph.fanout.(u))
    t.plans;
  Array.iteri
    (fun m fanout ->
      let needs = List.exists (fun v -> k_of t.plans.(v)) fanout in
      let has = List.exists (String.equal g.Ff_graph.pi_names.(m)) t.pi_latches in
      if needs && not has then
        issues :=
          Printf.sprintf "input %s feeds a p1 first latch but has no p2 latch"
            g.Ff_graph.pi_names.(m)
          :: !issues)
    g.Ff_graph.pi_fanout;
  List.rev !issues

(** Phase assignment: the paper's ILP (Section IV-A).

    Every flip-flop [u] receives two binary decisions: [G(u)] — whether it
    becomes a back-to-back latch pair (1) or a single latch (0) — and
    [K(u)] — whether its first latch is clocked by [p1] (1) or [p3] (0).
    Primary inputs behave as if clocked by [p1]; a [G] variable per input
    pays for a [p2] latch inserted at the port when an input feeds a
    [p1]-single latch.

    Three solving strategies:
    - [`Ilp]: the literal formulation solved exactly by
      {!Ilp.Branch_bound} (LP-relaxation branch and bound) — the direct
      stand-in for the paper's Gurobi call.  Practical up to a few dozen
      flip-flops.
    - [`Mis]: an exact reduction to maximum independent set solved by the
      combinatorial {!Ilp.Indep_set} solver.  A flip-flop can be a single
      [p1] latch iff it has no combinational self-loop and no other chosen
      flip-flop in its undirected fanout neighbourhood; each primary-input
      penalty becomes an auxiliary vertex adjacent to the input's fanout
      set.  Anytime on very large designs (returns the incumbent and a
      bound when the node budget runs out).
    - [`Greedy]: the min-degree greedy independent set (warm start only).

    [`Auto] picks [`Ilp] below 40 flip-flops and [`Mis] above. *)

type plan =
  | Single_p1             (** G=0: one latch, phase p1 *)
  | Pair_p1               (** G=1, K=1: p1 latch + inserted p2 latch *)
  | Pair_p3               (** G=1, K=0: p3 latch + inserted p2 latch *)

type solver = [ `Auto | `Ilp | `Mis | `Greedy ]

(** Solver internals (search nodes, LP solves, propagations,
    components) are published through {!Obs}: the counters
    [ilp.components]/[ilp.nodes]/[ilp.lp_solves]/[ilp.propagations] on
    the [`Ilp] path and [mis.components]/[mis.nodes] on [`Mis] — read
    them with {!Obs.counter_of} — plus the per-component histograms
    [ilp.component_vars]/[ilp.component_nodes]/[ilp.component_depth]
    and [mis.component_vars]/[mis.component_nodes] via
    {!Obs.histograms}.  (The [solver_stats] compatibility alias that
    duplicated the counters was removed.) *)
type t = {
  graph : Netlist.Ff_graph.t;
  plans : plan array;            (** per graph position *)
  pi_latches : string list;      (** input ports needing a p2 latch *)
  inserted_latches : int;        (** the ILP objective: sum of G *)
  optimal : bool;
  solver_used : solver;
  solve_time_s : float;
}

(** Number of latches the 3-phase design will contain
    (singles + 2 x pairs + input-port latches). *)
val total_latches : t -> int

val solve : ?solver:solver -> ?node_budget:int -> Netlist.Design.t -> t

(** The literal ILP model for a design's flip-flop graph — the exact
    instance the [`Ilp] strategy hands to {!Ilp.Branch_bound.solve}.
    Exposed for benchmarking and cross-checking solvers. *)
val model_of : Netlist.Design.t -> Ilp.Model.t

(** Check the paper's constraints on a finished assignment: no two
    adjacent [Single_p1]/first-latch-[p1] registers, every self-loop
    flip-flop paired, every input feeding a p1 single/pair is latched.
    Returns the list of violated rules (empty = valid). *)
val validate : Netlist.Design.t -> t -> string list

(** The end-to-end conversion flow (Section IV-B):

    validate -> phase assignment (ILP) -> netlist conversion ->
    modified retiming -> clock gating -> timing sign-off (SMO) ->
    lint audit -> stream-equivalence validation.

    Each step can be disabled for ablation studies.  The flow never
    modifies its input; every step yields a new design.

    Every enabled stage records exactly one [flow.<stage>] {!Obs.span}
    (with nested spans for inner work such as activity profiling),
    allocation-pressure gauges at its boundary
    ([flow.<stage>.gc.minor_words] etc. via {!Obs.gc_span}) and one
    entry in {!result.stage_times}, so traces, per-stage tables and
    QoR run records come for free — see docs/FLOW.md for the stage
    catalogue and docs/QOR.md for the record schema. *)

type config = {
  solver : Assignment.solver;
  node_budget : int;
  retime : bool;
  optimize : bool;          (** run {!Netlist.Optimize} on the result *)
  clock_gating : Clock_gating.options;
  ports : Convert.clock_ports;
  period : float;             (** ns; drives timing checks and power *)
  activity_cycles : int;      (** simulation length for toggle profiling *)
  activity_seed : int;
  verify_equivalence : bool;  (** stream-compare against the FF design *)
  verify_cycles : int;
  lint : bool;
  (** run the {!Lint.Engine} audit on the final design; the flow fails
      when any error-severity finding survives — the conversion cannot
      vouch for itself, the independent phase auditor must concur *)
}

val default_config : period:float -> config

type result = {
  config : config;
  original : Netlist.Design.t;
  assignment : Assignment.t;
  converted : Netlist.Design.t;   (** after conversion only *)
  retimed : Netlist.Design.t;     (** = converted when retiming is off *)
  final : Netlist.Design.t;       (** after clock gating *)
  retime_stats : Retime.stats option;
  cg_stats : Clock_gating.stats option;
  timing : Sta.Smo.report;
  lint : Lint.Engine.report option;  (** [None] when [config.lint] is off *)
  equivalence : Sim.Equivalence.verdict option;
  stage_times : (string * float) list;
  (** wall-clock seconds per executed stage, in execution order; keys
      are {!stage_names} entries (plus ["optimize"] when enabled) *)
}

(** The eight pipeline stages, in order: [validate], [assign],
    [convert], [retime], [clock_gating], [smo], [lint], [equivalence].
    Span names prefix these with ["flow."]. *)
val stage_names : string list

(** Three-phase clock spec matching the flow's config. *)
val clocks_of : config -> Sim.Clock_spec.t

(** Single-clock spec for the original design at the same period. *)
val reference_clocks : Netlist.Design.t -> period:float -> Sim.Clock_spec.t

exception Flow_error of string

(** [run ~config d] raises {!Flow_error} when the input design fails
    validation or the result fails equivalence. *)
val run : config:config -> Netlist.Design.t -> result

type t = {
  design : Netlist.Design.t;
  placement : Placement.t;
  clock_tree : Clock_tree.t;
  wire : Sta.Delay.wire_model;
  total_wirelength : float;
  cell_area : float;
  total_area : float;
}

let run ?(utilization = 0.7) d =
  Obs.span "physical.implement" @@ fun () ->
  let placement = Obs.span "physical.place" (fun () -> Placement.place ~utilization d) in
  let clock_tree =
    Obs.span "physical.cts" (fun () -> Clock_tree.synthesize d placement)
  in
  let tech = Cell_lib.Library.tech d.Netlist.Design.library in
  let wire net =
    Placement.net_hpwl d placement net *. tech.Cell_lib.Tech.wire_cap_per_um
  in
  let cell_area =
    Netlist.Design.fold_insts
      (fun i acc -> acc +. (Netlist.Design.cell d i).Cell_lib.Cell.area)
      d 0.0
  in
  Obs.count "physical.clock_buffers" clock_tree.Clock_tree.total_buffers;
  { design = d;
    placement;
    clock_tree;
    wire;
    total_wirelength = Placement.total_wirelength d placement;
    cell_area;
    total_area = cell_area +. clock_tree.Clock_tree.total_area }

type family = Iscas | Cep | Cpu

type published = {
  pub_regs : int * int * int;
  pub_area : float * float * float;
  pub_power_clock : float * float * float;
  pub_power_seq : float * float * float;
  pub_power_comb : float * float * float;
  pub_power_total : float * float * float;
}

type benchmark = {
  bench_name : string;
  family : family;
  build : unit -> Netlist.Design.t;
  period_ns : float;
  workload : Workload.t;
  published : published;
}

let family_name = function
  | Iscas -> "ISCAS"
  | Cep -> "CEP"
  | Cpu -> "CPU"

let period_of_mhz mhz = 1000.0 /. mhz

(* Published Table I and Table II values, (FF, M-S, 3-P) per field. *)
let pub ~regs ~area ~clock ~seq ~comb ~total = {
  pub_regs = regs;
  pub_area = area;
  pub_power_clock = clock;
  pub_power_seq = seq;
  pub_power_comb = comb;
  pub_power_total = total;
}

let iscas_bench (spec : Generator.spec) published = {
  bench_name = spec.Generator.name;
  family = Iscas;
  build = (fun () -> Generator.synthesize spec);
  period_ns = period_of_mhz spec.Generator.frequency_mhz;
  workload = Workload.Uniform_random 0.35;
  published;
}

let cep_bench (spec : Generator.spec) published = {
  bench_name = spec.Generator.name;
  family = Cep;
  build = (fun () -> Generator.synthesize spec);
  period_ns = period_of_mhz spec.Generator.frequency_mhz;
  workload = Workload.Self_check;
  published;
}

let cpu_bench (spec : Cpu.spec) workload published = {
  bench_name = spec.Cpu.name;
  family = Cpu;
  build = (fun () -> Cpu.make spec);
  period_ns = period_of_mhz spec.Cpu.frequency_mhz;
  workload;
  published;
}

let all () = [
  iscas_bench Iscas.s1196
    (pub ~regs:(18, 36, 26) ~area:(240.0, 228.0, 219.0)
       ~clock:(0.08, 0.09, 0.07) ~seq:(0.04, 0.04, 0.03)
       ~comb:(0.18, 0.18, 0.18) ~total:(0.30, 0.32, 0.28));
  iscas_bench Iscas.s1238
    (pub ~regs:(18, 36, 26) ~area:(238.0, 229.0, 215.0)
       ~clock:(0.08, 0.10, 0.07) ~seq:(0.04, 0.04, 0.03)
       ~comb:(0.17, 0.18, 0.17) ~total:(0.29, 0.32, 0.27));
  iscas_bench Iscas.s1423
    (pub ~regs:(81, 158, 146) ~area:(591.0, 466.0, 524.0)
       ~clock:(0.56, 0.42, 0.50) ~seq:(0.08, 0.08, 0.11)
       ~comb:(0.17, 0.12, 0.15) ~total:(0.82, 0.63, 0.75));
  iscas_bench Iscas.s1488
    (pub ~regs:(6, 16, 12) ~area:(217.0, 232.0, 239.0)
       ~clock:(0.03, 0.04, 0.03) ~seq:(0.01, 0.02, 0.01)
       ~comb:(0.13, 0.13, 0.12) ~total:(0.17, 0.19, 0.17));
  iscas_bench Iscas.s5378
    (pub ~regs:(163, 317, 250) ~area:(930.0, 914.0, 731.0)
       ~clock:(0.82, 0.84, 0.59) ~seq:(0.25, 0.25, 0.28)
       ~comb:(0.37, 0.24, 0.26) ~total:(1.44, 1.34, 1.13));
  iscas_bench Iscas.s9234
    (pub ~regs:(140, 278, 225) ~area:(902.0, 752.0, 741.0)
       ~clock:(0.69, 0.62, 0.55) ~seq:(0.10, 0.11, 0.10)
       ~comb:(0.10, 0.05, 0.08) ~total:(0.89, 0.78, 0.73));
  iscas_bench Iscas.s13207
    (pub ~regs:(457, 890, 725) ~area:(2675.0, 2058.0, 2056.0)
       ~clock:(2.04, 1.98, 1.53) ~seq:(0.43, 0.50, 0.46)
       ~comb:(0.42, 0.20, 0.22) ~total:(2.89, 2.69, 2.21));
  iscas_bench Iscas.s15850
    (pub ~regs:(454, 904, 747) ~area:(2885.0, 2565.0, 2315.0)
       ~clock:(2.13, 2.14, 1.81) ~seq:(0.31, 0.30, 0.30)
       ~comb:(0.53, 0.44, 0.35) ~total:(2.98, 2.87, 2.47));
  iscas_bench Iscas.s35932
    (pub ~regs:(1728, 3456, 2737) ~area:(11770.0, 9356.0, 9054.0)
       ~clock:(11.50, 10.60, 8.12) ~seq:(2.70, 3.01, 2.83)
       ~comb:(4.32, 3.11, 3.06) ~total:(18.50, 16.80, 14.00));
  iscas_bench Iscas.s38417
    (pub ~regs:(1489, 2751, 2366) ~area:(9395.0, 7272.0, 7863.0)
       ~clock:(6.34, 6.27, 4.81) ~seq:(0.88, 0.96, 0.96)
       ~comb:(2.05, 1.40, 1.47) ~total:(9.26, 8.62, 7.24));
  iscas_bench Iscas.s38584
    (pub ~regs:(1319, 2633, 2422) ~area:(9355.0, 7683.0, 7961.0)
       ~clock:(7.11, 7.04, 7.31) ~seq:(2.50, 2.68, 3.02)
       ~comb:(4.88, 3.54, 3.40) ~total:(14.50, 13.30, 13.70));
  cep_bench Cep.aes
    (pub ~regs:(9715, 16829, 12871) ~area:(133115.0, 121960.0, 119174.0)
       ~clock:(18.80, 14.30, 7.94) ~seq:(0.05, 0.06, 0.06)
       ~comb:(0.20, 0.17, 0.26) ~total:(19.10, 14.50, 8.27));
  cep_bench Cep.des3
    (pub ~regs:(436, 842, 573) ~area:(2711.0, 2738.0, 2449.0)
       ~clock:(0.26, 0.21, 0.20) ~seq:(0.14, 0.12, 0.10)
       ~comb:(0.51, 0.41, 0.41) ~total:(0.91, 0.74, 0.72));
  cep_bench Cep.sha256
    (pub ~regs:(1574, 3308, 2523) ~area:(9996.0, 9461.0, 8594.0)
       ~clock:(0.13, 0.27, 0.13) ~seq:(0.05, 0.06, 0.05)
       ~comb:(0.13, 0.09, 0.13) ~total:(0.31, 0.42, 0.30));
  cep_bench Cep.md5
    (pub ~regs:(804, 1889, 996) ~area:(7023.0, 6630.0, 6947.0)
       ~clock:(0.11, 0.38, 0.09) ~seq:(0.02, 0.19, 0.02)
       ~comb:(0.28, 1.21, 0.25) ~total:(0.40, 1.78, 0.36));
  cpu_bench Cpu.plasma (Workload.Program Workload.Pi)
    (pub ~regs:(1606, 2357, 2078) ~area:(8944.0, 7546.0, 8029.0)
       ~clock:(0.59, 0.99, 0.64) ~seq:(0.44, 0.19, 0.17)
       ~comb:(0.65, 0.45, 0.54) ~total:(1.68, 1.63, 1.36));
  cpu_bench Cpu.riscv (Workload.Program Workload.Rv32ui)
    (pub ~regs:(2795, 5312, 4084) ~area:(14453.0, 15268.0, 14002.0)
       ~clock:(0.52, 0.87, 0.54) ~seq:(0.11, 0.07, 0.07)
       ~comb:(0.37, 0.30, 0.30) ~total:(1.01, 1.25, 0.92));
  cpu_bench Cpu.arm_m0 (Workload.Program Workload.Hello_world)
    (pub ~regs:(1397, 2713, 2290) ~area:(10690.0, 11007.0, 11514.0)
       ~clock:(0.54, 1.23, 0.50) ~seq:(0.31, 0.23, 0.11)
       ~comb:(1.14, 1.34, 1.22) ~total:(2.00, 2.90, 1.84));
]

let quick () =
  List.filter
    (fun b ->
      List.exists (String.equal b.bench_name) ["s5378"; "des3"; "plasma"])
    (all ())

(* Circuits with no published paper numbers, kept out of [all] so the
   comparison tables only show rows Tables I/II can corroborate. *)
let extended () = [
  iscas_bench Iscas.sbig
    (pub ~regs:(0, 0, 0) ~area:(0.0, 0.0, 0.0) ~clock:(0.0, 0.0, 0.0)
       ~seq:(0.0, 0.0, 0.0) ~comb:(0.0, 0.0, 0.0) ~total:(0.0, 0.0, 0.0));
]

let find name =
  List.find_opt
    (fun b -> String.equal b.bench_name name)
    (all () @ extended ())

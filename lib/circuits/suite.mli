(** The paper's benchmark suite: 11 ISCAS89-like circuits, 4 CEP-like
    crypto blocks, and 3 CPU-like designs, each with its clock period,
    its testbench workload, and the numbers published in Tables I and II
    (so the harness can print paper-vs-measured side by side). *)

type family = Iscas | Cep | Cpu

(** Published values for (FF, master-slave, 3-phase). *)
type published = {
  pub_regs : int * int * int;
  pub_area : float * float * float;           (** um^2 *)
  pub_power_clock : float * float * float;    (** mW *)
  pub_power_seq : float * float * float;
  pub_power_comb : float * float * float;
  pub_power_total : float * float * float;
}

type benchmark = {
  bench_name : string;
  family : family;
  build : unit -> Netlist.Design.t;
  period_ns : float;
  workload : Workload.t;
  published : published;
}

val family_name : family -> string

(** All 18 benchmarks, ISCAS then CEP then CPU. *)
val all : unit -> benchmark list

(** A small subset (one per family) for fast runs. *)
val quick : unit -> benchmark list

(** Benchmarks with no published counterpart — currently the s38417-class
    [sbig] circuit used by the domain-parallel simulator gate.  Kept out
    of {!all} so paper-comparison tables stay faithful; {!find} resolves
    them. *)
val extended : unit -> benchmark list

(** Looks up a benchmark by name in {!all} and {!extended}. *)
val find : string -> benchmark option

(** ISCAS89-like benchmark profiles.

    Each entry reproduces the published register count of the original
    benchmark and approximates its structural character (feedback-heavy
    controllers vs. layered datapaths), which is what determines how many
    latches the 3-phase conversion can save.  [s1488] is the paper's
    control-dominated outlier: every flip-flop sits in combinational
    feedback, so conversion brings no register saving. *)

val s1196 : Generator.spec
val s1238 : Generator.spec
val s1423 : Generator.spec
val s1488 : Generator.spec
val s5378 : Generator.spec
val s9234 : Generator.spec
val s13207 : Generator.spec
val s15850 : Generator.spec
val s35932 : Generator.spec
val s38417 : Generator.spec
val s38584 : Generator.spec

(** s38417-class wide-wave circuit for the domain-parallel simulation
    benchmark; not part of the paper's tables (see {!Suite.extended}). *)
val sbig : Generator.spec

val all : Generator.spec list

(* Layer splits distribute the published flip-flop count; self-loop and
   cross-feedback fractions are calibrated so the conversion's pair
   fraction lands near the published 3-phase latch counts (see
   EXPERIMENTS.md for the comparison). *)

let split ffs n_layers =
  let base = ffs / n_layers and extra = ffs mod n_layers in
  Array.init n_layers (fun k -> base + if k < extra then 1 else 0)

let spec ~name ~seed ~ffs ~n_layers ~inputs ~outputs ~self_loop ~cross ~fanin
    ~po_cones =
  { Generator.name;
    seed;
    inputs;
    outputs;
    layers = split ffs n_layers;
    fanin;
    cone_depth = 4;
    self_loop_fraction = self_loop;
    cross_feedback = cross;
    reuse = 0.25;
    gated_fraction = 0.3;
    bank_size = 20;
    po_cones;
    frequency_mhz = 1000.0 }

let s1196 =
  spec ~name:"s1196" ~seed:11 ~ffs:18 ~n_layers:2 ~inputs:14 ~outputs:14
    ~self_loop:0.12 ~cross:0.25 ~fanin:3 ~po_cones:55

let s1238 =
  spec ~name:"s1238" ~seed:12 ~ffs:18 ~n_layers:2 ~inputs:14 ~outputs:14
    ~self_loop:0.10 ~cross:0.22 ~fanin:3 ~po_cones:55

let s1423 =
  spec ~name:"s1423" ~seed:13 ~ffs:81 ~n_layers:3 ~inputs:17 ~outputs:5
    ~self_loop:0.65 ~cross:0.5 ~fanin:4 ~po_cones:25

let s1488 =
  spec ~name:"s1488" ~seed:14 ~ffs:6 ~n_layers:1 ~inputs:8 ~outputs:19
    ~self_loop:1.0 ~cross:0.6 ~fanin:5 ~po_cones:45

let s5378 =
  spec ~name:"s5378" ~seed:15 ~ffs:163 ~n_layers:4 ~inputs:35 ~outputs:49
    ~self_loop:0.30 ~cross:0.25 ~fanin:3 ~po_cones:40

let s9234 =
  spec ~name:"s9234" ~seed:16 ~ffs:140 ~n_layers:4 ~inputs:36 ~outputs:39
    ~self_loop:0.35 ~cross:0.28 ~fanin:3 ~po_cones:60

let s13207 =
  spec ~name:"s13207" ~seed:17 ~ffs:457 ~n_layers:5 ~inputs:62 ~outputs:152
    ~self_loop:0.35 ~cross:0.28 ~fanin:3 ~po_cones:90

let s15850 =
  spec ~name:"s15850" ~seed:18 ~ffs:454 ~n_layers:5 ~inputs:77 ~outputs:150
    ~self_loop:0.40 ~cross:0.32 ~fanin:3 ~po_cones:110

let s35932 =
  spec ~name:"s35932" ~seed:19 ~ffs:1728 ~n_layers:6 ~inputs:35 ~outputs:320
    ~self_loop:0.33 ~cross:0.22 ~fanin:3 ~po_cones:180

let s38417 =
  spec ~name:"s38417" ~seed:20 ~ffs:1489 ~n_layers:6 ~inputs:28 ~outputs:106
    ~self_loop:0.35 ~cross:0.25 ~fanin:3 ~po_cones:170

let s38584 =
  spec ~name:"s38584" ~seed:21 ~ffs:1319 ~n_layers:5 ~inputs:38 ~outputs:304
    ~self_loop:0.72 ~cross:0.5 ~fanin:4 ~po_cones:190

(* s38417-class circuit (~10x s5378's registers) shaped for the
   domain-parallel kernel benchmark: few, very wide layers so each
   levelized wave carries thousands of execution units — enough to
   amortize one barrier per level.  Not a paper circuit; it has no
   published power numbers and is exposed through [Suite.extended]. *)
let sbig =
  { (spec ~name:"sbig" ~seed:77 ~ffs:2400 ~n_layers:3 ~inputs:64 ~outputs:64
       ~self_loop:0.30 ~cross:0.25 ~fanin:8 ~po_cones:300)
    with Generator.cone_depth = 5; reuse = 0.35 }

let all =
  [s1196; s1238; s1423; s1488; s5378; s9234; s13207; s15850; s35932; s38417; s38584]

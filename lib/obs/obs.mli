(** Flow-wide observability: timed spans, counters and gauges with a
    Chrome [trace_event] exporter and a plain-text summary table.

    Every subsystem of the conversion flow instruments itself through
    this module: {!Phase3.Flow} brackets each pipeline stage in a
    {!span}, {!Ilp.Branch_bound} counts search nodes, LP solves and
    propagations, {!Sim.Kernel} counts lane-cycles and toggles, and so
    on.  Recording is unconditional and cheap — one event record
    appended to a growable per-domain array — so there is no "enabled"
    switch to thread through the code.

    {2 Threading model}

    Each domain (the main one, every worker spawned by
    {!Jobs.parallel_mapi_array}/{!Jobs.parallel_map}, and every
    participant of a persistent {!Jobs.pool}) lazily owns a private
    buffer registered in a global list, so the write path never takes
    a lock.  Read-side functions ({!span_stats}, {!counters},
    {!chrome_trace}, ...) merge all buffers; call them only while no
    worker domain is recording.  {!Jobs.parallel_mapi_array} joins its
    workers before returning, and a pool's workers are quiescent
    whenever {!Jobs.pool_run} is not executing (they park between
    barriers and record nothing of their own), so ordinary sequential
    code — the CLI after a flow run, the benchmark harness after a
    suite, a kernel between [run_streams] calls — reads safely even
    while a pool stays attached.

    Merging is deterministic by construction where it matters:
    counters are summed and gauges take the maximum, both
    order-independent reductions, so the aggregate values are identical
    for any [THREEPHASE_JOBS] setting.  Span statistics sum durations
    per name, also order-independent; only the raw event interleaving
    across domains varies run to run. *)

(** One recorded event.  [Begin]/[End] bracket a {!span} (they nest
    properly within one domain because [span] is structured); [Count]
    carries a counter increment; [Gauge] a sampled value.  Timestamps
    are [Unix.gettimeofday] seconds. *)
type event =
  | Begin of { name : string; ts : float }
  | End of { name : string; ts : float }
  | Count of { name : string; ts : float; incr : int }
  | Gauge of { name : string; ts : float; value : float }

(** [span name f] runs [f ()] bracketed by [Begin]/[End] events on the
    calling domain's buffer.  The [End] event is recorded even when [f]
    raises, so pairs always balance.  Spans nest: a [span] inside [f]
    appears as a child in the Chrome trace. *)
val span : string -> (unit -> 'a) -> 'a

(** [count name n] adds [n] to the counter [name].  Increments of zero
    are dropped.  Counters merge across domains by summation, which is
    deterministic for any domain count. *)
val count : string -> int -> unit

(** [gauge name v] records a sample of the gauge [name].  Gauges merge
    across domains and samples by taking the {e maximum} — the only
    order-independent choice for a sampled value. *)
val gauge : string -> float -> unit

(** Sample {!Gc.quick_stat} as gauges: [<prefix>.minor_words],
    [<prefix>.major_words], [<prefix>.promoted_words],
    [<prefix>.heap_words], [<prefix>.compactions] (default prefix
    ["gc"]).  The words counters are cumulative for the calling
    domain, so the max-merge reports the high-water mark. *)
val gc_sample : ?prefix:string -> unit -> unit

(** [gc_span name f] is {!span}[ name f] plus allocation-pressure
    gauges for [f] itself: the {!Gc.quick_stat} deltas across the call
    are recorded as [<name>.gc.minor_words], [<name>.gc.major_words]
    and [<name>.gc.promoted_words] (recorded even when [f] raises,
    like the span's [End]).  Deltas are per-call; the max-merge keeps
    the worst call per name.  The flow brackets every pipeline stage
    with this, so run records capture per-stage allocation pressure. *)
val gc_span : string -> (unit -> 'a) -> 'a

(** Clear every buffer and re-base the trace clock.  Call only while no
    worker domain is recording. *)
val reset : unit -> unit

(** Raw event log, one [(domain_id, events)] pair per domain that
    recorded anything, ordered by domain id; events within a domain are
    in recording order.  Exposed for tests and custom exporters. *)
val events : unit -> (int * event list) list

(** Aggregated view of all spans with one name. *)
type span_stat = {
  span_name : string;
  calls : int;    (** completed [Begin]/[End] pairs *)
  total_s : float;  (** summed wall-clock duration, seconds *)
}

(** Per-name span statistics, merged across domains, sorted by name. *)
val span_stats : unit -> span_stat list

(** Summed counters, sorted by name.  Deterministic across
    [THREEPHASE_JOBS] settings. *)
val counters : unit -> (string * int) list

(** Max-merged gauges, sorted by name. *)
val gauges : unit -> (string * float) list

(** Total seconds spent in spans named [name]; [0.0] if none. *)
val time_of : string -> float

(** Completed spans named [name]; [0] if none. *)
val calls_of : string -> int

(** Value of counter [name]; [0] if never incremented. *)
val counter_of : string -> int

(** The whole event log as Chrome [trace_event] JSON — load it in
    [chrome://tracing] or {{:https://ui.perfetto.dev}Perfetto}.  Spans
    become [ph:"B"]/[ph:"E"] duration events (one track per domain),
    counters and gauges become [ph:"C"] counter tracks; timestamps are
    microseconds since the last {!reset} (or process start). *)
val chrome_trace : unit -> string

(** [write_chrome_trace path] writes {!chrome_trace} to [path]. *)
val write_chrome_trace : string -> unit

(** Everything recorded so far — spans with call counts, totals and
    means, then counters, then gauges — as a {!Report.Table} ready to
    print. *)
val summary_table : unit -> Report.Table.t

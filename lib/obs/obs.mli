(** Flow-wide observability: timed spans, counters, gauges and
    log-bucketed histograms, with a Chrome [trace_event] exporter and a
    plain-text summary table.

    Every subsystem of the conversion flow instruments itself through
    this module: {!Phase3.Flow} brackets each pipeline stage in a
    {!span}, {!Ilp.Branch_bound} counts search nodes, LP solves and
    propagations, {!Sim.Kernel} counts lane-cycles and toggles, and so
    on.  Recording is unconditional and cheap — one event record
    appended to a growable per-domain array — so there is no "enabled"
    switch to thread through the code.

    {2 Threading model}

    Each domain (the main one, every worker spawned by
    {!Jobs.parallel_mapi_array}/{!Jobs.parallel_map}, and every
    participant of a persistent {!Jobs.pool}) lazily owns a private
    buffer registered in a global list, so the write path never takes
    a lock.  Read-side functions ({!span_stats}, {!counters},
    {!chrome_trace}, ...) merge all buffers; call them only while no
    worker domain is recording.  {!Jobs.parallel_mapi_array} joins its
    workers before returning, and a pool's workers are quiescent
    whenever {!Jobs.pool_run} is not executing (they park between
    barriers and record nothing of their own), so ordinary sequential
    code — the CLI after a flow run, the benchmark harness after a
    suite, a kernel between [run_streams] calls — reads safely even
    while a pool stays attached.

    Merging is deterministic by construction where it matters:
    counters are summed, gauges take the maximum, and histogram bucket
    counts are summed — all order-independent reductions — so the
    aggregate values are identical for any [THREEPHASE_JOBS] setting.
    Span statistics sum durations per name, also order-independent;
    only the raw event interleaving across domains varies run to run.
    See docs/OBS.md for the full event model. *)

(** One recorded event.  [Begin]/[End] bracket a {!span} (they nest
    properly within one domain because [span] is structured); [Count]
    carries a counter increment; [Gauge] a sampled value; [Hist] one
    histogram sample ([exec] marks execution-shaped distributions, see
    {!hist}).  Timestamps are [Unix.gettimeofday] seconds; histogram
    samples carry none — they aggregate into distributions, never into
    time series, and skipping the clock read keeps them cheap enough
    for simulator inner loops. *)
type event =
  | Begin of { name : string; ts : float }
  | End of { name : string; ts : float }
  | Count of { name : string; ts : float; incr : int }
  | Gauge of { name : string; ts : float; value : float }
  | Hist of { name : string; value : float; exec : bool }

(** [span name f] runs [f ()] bracketed by [Begin]/[End] events on the
    calling domain's buffer.  The [End] event is recorded even when [f]
    raises, so pairs always balance.  Spans nest: a [span] inside [f]
    appears as a child in the Chrome trace and in {!span_tree}. *)
val span : string -> (unit -> 'a) -> 'a

(** [count name n] adds [n] to the counter [name].  Increments of zero
    are dropped.  Counters merge across domains by summation, which is
    deterministic for any domain count. *)
val count : string -> int -> unit

(** [gauge name v] records a sample of the gauge [name].  Gauges merge
    across domains and samples by taking the {e maximum} — an
    order-independent choice, but one that erases the distribution;
    prefer {!hist} when the spread matters. *)
val gauge : string -> float -> unit

(** [hist name v] records one sample into the log-bucketed histogram
    [name].  Bucket counts sum across domains, so the merged histogram
    — and every readout derived from it — is byte-identical for any
    [THREEPHASE_JOBS], {e provided the recorded values themselves are
    deterministic}.  For values that are shaped by the execution
    (per-chunk work sizes, stage latencies) pass [~exec:true]: the
    sample goes to a separate channel read by {!exec_histograms},
    excluded from {!histograms} and from the determinism contract —
    the same split as counters (deterministic) versus wall/gauges
    (noisy) in run records. *)
val hist : ?exec:bool -> string -> float -> unit

(** Deterministically mergeable log-bucketed histogram.  Buckets are
    quarter-octaves addressed through [Float.frexp]: bucket [4*o + s]
    ([s] in 0..3) covers [[2^o * (1 + s/4), 2^o * (1 + (s+1)/4))], so
    sub-unit values get negative indices and resolution is a constant
    ~6% of the value.  Only integer bucket counts, the underflow count
    (samples [<= 0] and NaN) and the raw maximum are stored — no float
    sum whose addition order could leak — and {!percentile}/{!mean}
    are derived from the buckets alone, so all readouts are exact
    functions of an order-independent merge. *)
module Histogram : sig
  type t

  val empty : t

  (** Add one sample; pure (returns a new histogram). *)
  val add : t -> float -> t

  (** Commutative, associative bucket-count merge. *)
  val merge : t -> t -> t

  (** Bucket index for a value [> 0]. *)
  val bucket_index : float -> int

  (** Inclusive lower / exclusive upper bound of a bucket. *)
  val bucket_lower : int -> float

  val bucket_upper : int -> float

  val count : t -> int
  val underflow : t -> int

  (** Raw maximum over all samples; [neg_infinity] when empty. *)
  val max_value : t -> float

  (** Occupied buckets as [(index, count)] pairs, sorted by index. *)
  val bucket_counts : t -> (int * int) list

  (** Rebuild from stored parts (run-record reader); buckets are
      sorted and zero counts dropped. *)
  val of_parts :
    count:int -> underflow:int -> max_value:float ->
    buckets:(int * int) list -> t

  (** Nearest-rank percentile, [q] in [0..1]; underflow samples read as
      0, other buckets as their midpoint clamped by {!max_value}.
      [0.0] when empty. *)
  val percentile : t -> float -> float

  (** Bucket-midpoint mean (underflow reads as 0); [0.0] when empty. *)
  val mean : t -> float

  (** One-line rendering: count, underflow, max, p50/p90/p99 and the
      occupied buckets.  A deterministic histogram renders
      byte-identically for any [THREEPHASE_JOBS]. *)
  val to_string : t -> string
end

(** Sample {!Gc.quick_stat} as gauges: [<prefix>.minor_words],
    [<prefix>.major_words], [<prefix>.promoted_words],
    [<prefix>.heap_words], [<prefix>.compactions] (default prefix
    ["gc"]).  The words counters are cumulative for the calling
    domain, so the max-merge reports the high-water mark. *)
val gc_sample : ?prefix:string -> unit -> unit

(** [gc_span name f] is {!span}[ name f] plus allocation-pressure
    gauges for [f] itself: the {!Gc.quick_stat} deltas across the call
    are recorded as [<name>.gc.minor_words], [<name>.gc.major_words]
    and [<name>.gc.promoted_words] (recorded even when [f] raises,
    like the span's [End]).  Deltas are per-call; the max-merge keeps
    the worst call per name.  The flow brackets every pipeline stage
    with this, so run records capture per-stage allocation pressure. *)
val gc_span : string -> (unit -> 'a) -> 'a

(** Clear every buffer and re-base the trace clock.  Call only while no
    worker domain is recording. *)
val reset : unit -> unit

(** Raw event log, one [(domain_id, events)] pair per domain that
    recorded anything, ordered by domain id; events within a domain are
    in recording order.  Exposed for tests and custom exporters. *)
val events : unit -> (int * event list) list

(** Aggregated view of all spans with one name. *)
type span_stat = {
  span_name : string;
  calls : int;    (** completed [Begin]/[End] pairs *)
  total_s : float;  (** summed wall-clock duration, seconds *)
}

(** Per-name span statistics, merged across domains, sorted by name. *)
val span_stats : unit -> span_stat list

(** One node of the reconstructed span call tree. *)
type span_node = {
  node_name : string;       (** the span name as recorded *)
  path : string;            (** ["/"]-joined names from the root *)
  n_calls : int;
  n_total_s : float;        (** summed duration of this node's calls *)
  n_self_s : float;         (** total minus nested children (>= 0) *)
  n_children : span_node list;  (** sorted by name *)
}

(** The Begin/End nesting reconstructed as a call tree, merged across
    domains: spans with the same path aggregate into one node, children
    sorted by name.  A span recorded at a worker domain's top level
    (e.g. an ILP component solve inside [Jobs.parallel_map]) has no
    enclosing Begin in {e that} domain's buffer, so it appears as a
    root — the per-domain nesting is real, the cross-domain parentage
    is not recorded.  Self time is total minus the summed durations of
    directly nested spans, clamped at zero against float rounding. *)
val span_tree : unit -> span_node list

(** Summed counters, sorted by name.  Deterministic across
    [THREEPHASE_JOBS] settings. *)
val counters : unit -> (string * int) list

(** Max-merged gauges, sorted by name. *)
val gauges : unit -> (string * float) list

(** Bucket-merged {e deterministic} histograms (samples recorded
    without [~exec:true]), sorted by name.  Byte-identical readouts for
    any [THREEPHASE_JOBS]. *)
val histograms : unit -> (string * Histogram.t) list

(** Bucket-merged execution-shaped histograms ([~exec:true] samples):
    chunk sizes, stage latencies — honest distributions, but dependent
    on the domain count and the machine.  Kept out of {!histograms} so
    the determinism contract stays literal. *)
val exec_histograms : unit -> (string * Histogram.t) list

(** All deterministic histograms as ["name: " ^ ]{!Histogram.to_string}
    lines — the byte-comparable digest the determinism tests diff. *)
val render_histograms : unit -> string

(** Total seconds spent in spans named [name]; [0.0] if none. *)
val time_of : string -> float

(** Completed spans named [name]; [0] if none. *)
val calls_of : string -> int

(** Value of counter [name]; [0] if never incremented. *)
val counter_of : string -> int

(** The whole event log as Chrome [trace_event] JSON — load it in
    [chrome://tracing] or {{:https://ui.perfetto.dev}Perfetto}.  Spans
    become [ph:"B"]/[ph:"E"] duration events (one track per domain; the
    [E] event's args carry [dur_us] and [self_us] from the same
    reconstruction as {!span_tree}), counters and gauges become
    [ph:"C"] counter tracks; histogram samples are timestamp-free and
    do not appear.  Timestamps are microseconds since the last
    {!reset} (or process start). *)
val chrome_trace : unit -> string

(** [write_chrome_trace path] writes {!chrome_trace} to [path]. *)
val write_chrome_trace : string -> unit

(** Everything recorded so far — the span tree (indented, with self
    time), then counters, then histograms (deterministic, then
    execution-shaped marked [hist~]), then gauges — as a
    {!Report.Table} ready to print. *)
val summary_table : unit -> Report.Table.t

(* Flow-wide observability: hierarchical timed spans, counters and
   gauges, recorded into per-domain append-only buffers and merged on
   read.

   Recording is always on and cheap — one allocation plus an array
   append per event — so the flow, the solvers and the simulators
   instrument themselves unconditionally.  Every domain (the main one
   and every worker spawned by [Jobs.parallel_map]) lazily owns one
   buffer, registered in a mutex-protected global list, so recording
   never takes a lock and never contends.  Readers ([span_stats],
   [counters], [chrome_trace], ...) merge the buffers; they must run
   outside parallel sections — [Jobs.parallel_map] joins its workers
   before returning, so calling them from ordinary top-level code is
   safe. *)

type event =
  | Begin of { name : string; ts : float }
  | End of { name : string; ts : float }
  | Count of { name : string; ts : float; incr : int }
  | Gauge of { name : string; ts : float; value : float }

type buffer = {
  dom : int;
  mutable events : event array;
  mutable len : int;
}

let registry : buffer list ref = ref []

let registry_lock = Mutex.create ()

let now () = Unix.gettimeofday ()

(* trace time zero; reset () re-bases it *)
let epoch = Atomic.make (now ())

let dummy = End { name = ""; ts = 0.0 }

let key =
  Domain.DLS.new_key (fun () ->
      let b =
        { dom = (Domain.self () :> int); events = Array.make 64 dummy; len = 0 }
      in
      Mutex.lock registry_lock;
      registry := b :: !registry;
      Mutex.unlock registry_lock;
      b)

let buffer () = Domain.DLS.get key

let push b e =
  if b.len = Array.length b.events then begin
    let bigger = Array.make (2 * b.len) e in
    Array.blit b.events 0 bigger 0 b.len;
    b.events <- bigger
  end;
  b.events.(b.len) <- e;
  b.len <- b.len + 1

let span name f =
  let b = buffer () in
  push b (Begin { name; ts = now () });
  Fun.protect ~finally:(fun () -> push b (End { name; ts = now () })) f

let count name incr =
  if incr <> 0 then push (buffer ()) (Count { name; ts = now (); incr })

let gauge name value = push (buffer ()) (Gauge { name; ts = now (); value })

let gc_sample ?(prefix = "gc") () =
  let s = Gc.quick_stat () in
  gauge (prefix ^ ".minor_words") s.Gc.minor_words;
  gauge (prefix ^ ".major_words") s.Gc.major_words;
  gauge (prefix ^ ".promoted_words") s.Gc.promoted_words;
  gauge (prefix ^ ".heap_words") (float_of_int s.Gc.heap_words);
  gauge (prefix ^ ".compactions") (float_of_int s.Gc.compactions)

let gc_span name f =
  let before = Gc.quick_stat () in
  let record_delta () =
    let after = Gc.quick_stat () in
    gauge (name ^ ".gc.minor_words")
      (after.Gc.minor_words -. before.Gc.minor_words);
    gauge (name ^ ".gc.major_words")
      (after.Gc.major_words -. before.Gc.major_words);
    gauge (name ^ ".gc.promoted_words")
      (after.Gc.promoted_words -. before.Gc.promoted_words)
  in
  span name (fun () -> Fun.protect ~finally:record_delta f)

let reset () =
  Mutex.lock registry_lock;
  List.iter (fun b -> b.len <- 0) !registry;
  Mutex.unlock registry_lock;
  Atomic.set epoch (now ())

(* Snapshot of all buffers, ordered by domain id (the main domain is
   always the smallest id alive). *)
let events () =
  Mutex.lock registry_lock;
  let bufs = !registry in
  Mutex.unlock registry_lock;
  bufs
  |> List.filter (fun b -> b.len > 0)
  |> List.sort (fun a b -> compare a.dom b.dom)
  |> List.map (fun b -> (b.dom, Array.to_list (Array.sub b.events 0 b.len)))

(* --- aggregation ---------------------------------------------------- *)

type span_stat = {
  span_name : string;
  calls : int;
  total_s : float;
}

let span_stats () =
  let acc : (string, int ref * float ref) Hashtbl.t = Hashtbl.create 32 in
  let bump name dur =
    let calls, total =
      match Hashtbl.find_opt acc name with
      | Some cell -> cell
      | None ->
        let cell = (ref 0, ref 0.0) in
        Hashtbl.add acc name cell;
        cell
    in
    incr calls;
    total := !total +. dur
  in
  List.iter
    (fun (_, evs) ->
      (* spans are structured ([span] brackets a call), so Begin/End
         pairs nest properly within one domain's buffer *)
      let stack = ref [] in
      List.iter
        (function
          | Begin { name; ts } -> stack := (name, ts) :: !stack
          | End { name; ts } ->
            (match !stack with
             | (n, t0) :: rest when String.equal n name ->
               stack := rest;
               bump name (ts -. t0)
             | _ -> () (* unmatched End: drop rather than guess *))
          | Count _ | Gauge _ -> ())
        evs)
    (events ());
  Hashtbl.fold
    (fun span_name (calls, total) l ->
      { span_name; calls = !calls; total_s = !total } :: l)
    acc []
  |> List.sort (fun a b -> String.compare a.span_name b.span_name)

let counters () =
  let acc : (string, int ref) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun (_, evs) ->
      List.iter
        (function
          | Count { name; incr; _ } ->
            (match Hashtbl.find_opt acc name with
             | Some r -> r := !r + incr
             | None -> Hashtbl.add acc name (ref incr))
          | Begin _ | End _ | Gauge _ -> ())
        evs)
    (events ());
  Hashtbl.fold (fun name r l -> (name, !r) :: l) acc []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let gauges () =
  let acc : (string, float ref) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun (_, evs) ->
      List.iter
        (function
          | Gauge { name; value; _ } ->
            (match Hashtbl.find_opt acc name with
             | Some r -> if value > !r then r := value
             | None -> Hashtbl.add acc name (ref value))
          | Begin _ | End _ | Count _ -> ())
        evs)
    (events ());
  Hashtbl.fold (fun name r l -> (name, !r) :: l) acc []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let time_of name =
  match List.find_opt (fun s -> String.equal s.span_name name) (span_stats ()) with
  | Some s -> s.total_s
  | None -> 0.0

let calls_of name =
  match List.find_opt (fun s -> String.equal s.span_name name) (span_stats ()) with
  | Some s -> s.calls
  | None -> 0

let counter_of name =
  match List.assoc_opt name (counters ()) with Some v -> v | None -> 0

(* --- Chrome trace_event exporter ------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let chrome_trace () =
  let t0 = Atomic.get epoch in
  let us ts = (ts -. t0) *. 1e6 in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  let first = ref true in
  let emit s =
    if !first then first := false else Buffer.add_char buf ',';
    Buffer.add_string buf "\n  ";
    Buffer.add_string buf s
  in
  (* counter tracks show running totals; totals are kept per name across
     domains, in buffer order, which is what a merged track displays *)
  let totals : (string, int ref) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (tid, evs) ->
      emit
        (Printf.sprintf
           "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,\
            \"args\":{\"name\":\"domain %d\"}}"
           tid tid);
      List.iter
        (fun ev ->
          match ev with
          | Begin { name; ts } ->
            emit
              (Printf.sprintf
                 "{\"name\":\"%s\",\"ph\":\"B\",\"pid\":1,\"tid\":%d,\"ts\":%.1f}"
                 (json_escape name) tid (us ts))
          | End { name; ts } ->
            emit
              (Printf.sprintf
                 "{\"name\":\"%s\",\"ph\":\"E\",\"pid\":1,\"tid\":%d,\"ts\":%.1f}"
                 (json_escape name) tid (us ts))
          | Count { name; ts; incr } ->
            let r =
              match Hashtbl.find_opt totals name with
              | Some r -> r
              | None ->
                let r = ref 0 in
                Hashtbl.add totals name r;
                r
            in
            r := !r + incr;
            emit
              (Printf.sprintf
                 "{\"name\":\"%s\",\"ph\":\"C\",\"pid\":1,\"tid\":%d,\"ts\":%.1f,\
                  \"args\":{\"value\":%d}}"
                 (json_escape name) tid (us ts) !r)
          | Gauge { name; ts; value } ->
            emit
              (Printf.sprintf
                 "{\"name\":\"%s\",\"ph\":\"C\",\"pid\":1,\"tid\":%d,\"ts\":%.1f,\
                  \"args\":{\"value\":%g}}"
                 (json_escape name) tid (us ts) value))
        evs)
    (events ());
  Buffer.add_string buf "\n]}\n";
  Buffer.contents buf

let write_chrome_trace path =
  let oc = open_out path in
  output_string oc (chrome_trace ());
  close_out oc

(* --- plain-text summary --------------------------------------------- *)

let summary_table () =
  let t =
    Report.Table.create ~title:"Observability summary"
      [ ("metric", Report.Table.Left); ("kind", Report.Table.Left);
        ("calls", Report.Table.Right); ("total s", Report.Table.Right);
        ("mean ms", Report.Table.Right); ("value", Report.Table.Right) ]
  in
  let spans = span_stats () in
  List.iter
    (fun s ->
      Report.Table.add_row t
        [ s.span_name; "span"; string_of_int s.calls;
          Printf.sprintf "%.4f" s.total_s;
          Printf.sprintf "%.3f" (1e3 *. s.total_s /. float_of_int (max 1 s.calls));
          "" ])
    spans;
  let cs = counters () in
  if spans <> [] && cs <> [] then Report.Table.add_rule t;
  List.iter
    (fun (name, v) ->
      Report.Table.add_row t [name; "counter"; ""; ""; ""; string_of_int v])
    cs;
  let gs = gauges () in
  if (spans <> [] || cs <> []) && gs <> [] then Report.Table.add_rule t;
  List.iter
    (fun (name, v) ->
      Report.Table.add_row t [name; "gauge"; ""; ""; ""; Printf.sprintf "%g" v])
    gs;
  t

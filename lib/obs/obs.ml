(* Flow-wide observability: hierarchical timed spans, counters, gauges
   and log-bucketed histograms, recorded into per-domain append-only
   buffers and merged on read.

   Recording is always on and cheap — one allocation plus an array
   append per event — so the flow, the solvers and the simulators
   instrument themselves unconditionally.  Every domain (the main one
   and every worker spawned by [Jobs.parallel_map]) lazily owns one
   buffer, registered in a mutex-protected global list, so recording
   never takes a lock and never contends.  Readers ([span_stats],
   [counters], [chrome_trace], ...) merge the buffers; they must run
   outside parallel sections — [Jobs.parallel_map] joins its workers
   before returning, so calling them from ordinary top-level code is
   safe. *)

type event =
  | Begin of { name : string; ts : float }
  | End of { name : string; ts : float }
  | Count of { name : string; ts : float; incr : int }
  | Gauge of { name : string; ts : float; value : float }
  | Hist of { name : string; value : float; exec : bool }

type buffer = {
  dom : int;
  mutable events : event array;
  mutable len : int;
}

let registry : buffer list ref = ref []

let registry_lock = Mutex.create ()

let now () = Unix.gettimeofday ()

(* trace time zero; reset () re-bases it *)
let epoch = Atomic.make (now ())

let dummy = End { name = ""; ts = 0.0 }

let key =
  Domain.DLS.new_key (fun () ->
      let b =
        { dom = (Domain.self () :> int); events = Array.make 64 dummy; len = 0 }
      in
      Mutex.lock registry_lock;
      registry := b :: !registry;
      Mutex.unlock registry_lock;
      b)

let buffer () = Domain.DLS.get key

let push b e =
  if b.len = Array.length b.events then begin
    let bigger = Array.make (2 * b.len) e in
    Array.blit b.events 0 bigger 0 b.len;
    b.events <- bigger
  end;
  b.events.(b.len) <- e;
  b.len <- b.len + 1

let span name f =
  let b = buffer () in
  push b (Begin { name; ts = now () });
  Fun.protect ~finally:(fun () -> push b (End { name; ts = now () })) f

let count name incr =
  if incr <> 0 then push (buffer ()) (Count { name; ts = now (); incr })

let gauge name value = push (buffer ()) (Gauge { name; ts = now (); value })

(* Histogram samples carry no timestamp: they aggregate into a
   distribution, never into a time series, and skipping the clock read
   keeps sampling cheap enough for simulator inner loops. *)
let hist ?(exec = false) name value =
  push (buffer ()) (Hist { name; value; exec })

let gc_sample ?(prefix = "gc") () =
  let s = Gc.quick_stat () in
  gauge (prefix ^ ".minor_words") s.Gc.minor_words;
  gauge (prefix ^ ".major_words") s.Gc.major_words;
  gauge (prefix ^ ".promoted_words") s.Gc.promoted_words;
  gauge (prefix ^ ".heap_words") (float_of_int s.Gc.heap_words);
  gauge (prefix ^ ".compactions") (float_of_int s.Gc.compactions)

let gc_span name f =
  let before = Gc.quick_stat () in
  let record_delta () =
    let after = Gc.quick_stat () in
    gauge (name ^ ".gc.minor_words")
      (after.Gc.minor_words -. before.Gc.minor_words);
    gauge (name ^ ".gc.major_words")
      (after.Gc.major_words -. before.Gc.major_words);
    gauge (name ^ ".gc.promoted_words")
      (after.Gc.promoted_words -. before.Gc.promoted_words)
  in
  span name (fun () -> Fun.protect ~finally:record_delta f)

let reset () =
  Mutex.lock registry_lock;
  List.iter (fun b -> b.len <- 0) !registry;
  Mutex.unlock registry_lock;
  Atomic.set epoch (now ())

(* Snapshot of all buffers, ordered by domain id (the main domain is
   always the smallest id alive). *)
let events () =
  Mutex.lock registry_lock;
  let bufs = !registry in
  Mutex.unlock registry_lock;
  bufs
  |> List.filter (fun b -> b.len > 0)
  |> List.sort (fun a b -> compare a.dom b.dom)
  |> List.map (fun b -> (b.dom, Array.to_list (Array.sub b.events 0 b.len)))

(* --- histograms ------------------------------------------------------ *)

module Histogram = struct
  (* Quarter-octave log buckets addressed through [Float.frexp], so the
     index is exact float arithmetic — no libm, no platform drift.  For
     v > 0 with frexp giving v = m * 2^e, m in [0.5, 1): the mantissa
     quarter is s = trunc ((m - 0.5) * 8) in 0..3 ([m - 0.5] is exact by
     Sterbenz, [* 8] is a power of two), and bucket 4*(e-1) + s covers
     [2^(e-1) * (1 + s/4), 2^(e-1) * (1 + (s+1)/4)).  Sub-unit values
     get negative indices; v <= 0 and NaN land in the underflow count.

     No floating-point sum is kept — cross-domain addition order would
     leak into the value — only integer bucket counts, the underflow
     count and the raw maximum, all of which merge order-independently.
     Percentiles and the mean are derived from the buckets alone, so
     every readout is byte-identical for any THREEPHASE_JOBS. *)

  type t = {
    count : int;                  (* all samples, underflow included *)
    underflow : int;              (* samples <= 0 (and NaN) *)
    max_value : float;            (* raw max; neg_infinity when empty *)
    buckets : (int * int) list;   (* index -> count, sorted, counts > 0 *)
  }

  let empty = { count = 0; underflow = 0; max_value = neg_infinity; buckets = [] }

  let bucket_index v =
    let m, e = Float.frexp v in
    let s = int_of_float ((m -. 0.5) *. 8.0) in
    (4 * (e - 1)) + s

  let bucket_lower i =
    let o = if i >= 0 then i / 4 else (i - 3) / 4 in
    let s = i - (4 * o) in
    Float.ldexp (1.0 +. (float_of_int s /. 4.0)) o

  let bucket_upper i = bucket_lower (i + 1)

  let rec bump i = function
    | [] -> [(i, 1)]
    | (j, c) :: rest when j = i -> (j, c + 1) :: rest
    | (j, _) :: _ as l when j > i -> (i, 1) :: l
    | b :: rest -> b :: bump i rest

  let add t v =
    if v > 0.0 then
      { count = t.count + 1;
        underflow = t.underflow;
        max_value = Float.max t.max_value v;
        buckets = bump (bucket_index v) t.buckets }
    else
      { t with
        count = t.count + 1;
        underflow = t.underflow + 1;
        max_value = (if v = v then Float.max t.max_value v else t.max_value) }

  let merge a b =
    let rec go xs ys =
      match xs, ys with
      | [], l | l, [] -> l
      | (i, c) :: xr, (j, _) :: _ when i < j -> (i, c) :: go xr ys
      | (i, _) :: _, (j, d) :: yr when j < i -> (j, d) :: go xs yr
      | (i, c) :: xr, (_, d) :: yr -> (i, c + d) :: go xr yr
    in
    { count = a.count + b.count;
      underflow = a.underflow + b.underflow;
      max_value = Float.max a.max_value b.max_value;
      buckets = go a.buckets b.buckets }

  let count t = t.count
  let underflow t = t.underflow
  let max_value t = t.max_value
  let bucket_counts t = t.buckets

  let of_parts ~count ~underflow ~max_value ~buckets =
    { count; underflow; max_value;
      buckets =
        List.filter (fun (_, c) -> c > 0) buckets
        |> List.sort (fun (a, _) (b, _) -> compare a b) }

  let midpoint i = (bucket_lower i +. bucket_upper i) /. 2.0

  (* Nearest-rank on the bucketed distribution; underflow samples read
     as 0.  The representative is the bucket midpoint clamped by the raw
     max (the max lives in the highest occupied bucket, so the clamp
     only sharpens the top bucket). *)
  let percentile t q =
    if t.count = 0 then 0.0
    else begin
      let rank =
        min t.count (max 1 (int_of_float (Float.ceil (q *. float_of_int t.count))))
      in
      if rank <= t.underflow then 0.0
      else begin
        let rec go seen = function
          | [] -> t.max_value
          | (i, c) :: rest ->
            let seen = seen + c in
            if rank <= seen then Float.min (midpoint i) t.max_value
            else go seen rest
        in
        go t.underflow t.buckets
      end
    end

  let mean t =
    if t.count = 0 then 0.0
    else
      let s =
        List.fold_left
          (fun acc (i, c) -> acc +. (float_of_int c *. midpoint i))
          0.0 t.buckets
      in
      s /. float_of_int t.count

  let to_string t =
    let b = Buffer.create 96 in
    Buffer.add_string b
      (Printf.sprintf "count=%d underflow=%d max=%g p50=%g p90=%g p99=%g"
         t.count t.underflow
         (if t.count = 0 then 0.0 else t.max_value)
         (percentile t 0.50) (percentile t 0.90) (percentile t 0.99));
    Buffer.add_string b " buckets=[";
    List.iteri
      (fun k (i, c) ->
        if k > 0 then Buffer.add_char b ' ';
        Buffer.add_string b (Printf.sprintf "%d:%d" i c))
      t.buckets;
    Buffer.add_char b ']';
    Buffer.contents b
end

let histograms_of ~exec:want_exec () =
  let acc : (string, Histogram.t ref) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (_, evs) ->
      List.iter
        (function
          | Hist { name; value; exec } when exec = want_exec ->
            (match Hashtbl.find_opt acc name with
             | Some r -> r := Histogram.add !r value
             | None -> Hashtbl.add acc name (ref (Histogram.add Histogram.empty value)))
          | Hist _ | Begin _ | End _ | Count _ | Gauge _ -> ())
        evs)
    (events ());
  Hashtbl.fold (fun name r l -> (name, !r) :: l) acc []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let histograms () = histograms_of ~exec:false ()
let exec_histograms () = histograms_of ~exec:true ()

let render_histograms () =
  let b = Buffer.create 256 in
  List.iter
    (fun (name, h) ->
      Buffer.add_string b name;
      Buffer.add_string b ": ";
      Buffer.add_string b (Histogram.to_string h);
      Buffer.add_char b '\n')
    (histograms ());
  Buffer.contents b

(* --- aggregation ---------------------------------------------------- *)

type span_stat = {
  span_name : string;
  calls : int;
  total_s : float;
}

let span_stats () =
  let acc : (string, int ref * float ref) Hashtbl.t = Hashtbl.create 32 in
  let bump name dur =
    let calls, total =
      match Hashtbl.find_opt acc name with
      | Some cell -> cell
      | None ->
        let cell = (ref 0, ref 0.0) in
        Hashtbl.add acc name cell;
        cell
    in
    incr calls;
    total := !total +. dur
  in
  List.iter
    (fun (_, evs) ->
      (* spans are structured ([span] brackets a call), so Begin/End
         pairs nest properly within one domain's buffer *)
      let stack = ref [] in
      List.iter
        (function
          | Begin { name; ts } -> stack := (name, ts) :: !stack
          | End { name; ts } ->
            (match !stack with
             | (n, t0) :: rest when String.equal n name ->
               stack := rest;
               bump name (ts -. t0)
             | _ -> () (* unmatched End: drop rather than guess *))
          | Count _ | Gauge _ | Hist _ -> ())
        evs)
    (events ());
  Hashtbl.fold
    (fun span_name (calls, total) l ->
      { span_name; calls = !calls; total_s = !total } :: l)
    acc []
  |> List.sort (fun a b -> String.compare a.span_name b.span_name)

(* --- span trees ------------------------------------------------------ *)

type span_node = {
  node_name : string;
  path : string;
  n_calls : int;
  n_total_s : float;
  n_self_s : float;
  n_children : span_node list;
}

(* Mutable reconstruction trie; one per call of [span_tree]. *)
type trie = {
  mutable t_calls : int;
  mutable t_total : float;
  mutable t_child : float;
  t_children : (string, trie) Hashtbl.t;
}

let span_tree () =
  let fresh () =
    { t_calls = 0; t_total = 0.0; t_child = 0.0; t_children = Hashtbl.create 4 }
  in
  let root = fresh () in
  let child_of node name =
    match Hashtbl.find_opt node.t_children name with
    | Some c -> c
    | None ->
      let c = fresh () in
      Hashtbl.add node.t_children name c;
      c
  in
  (* One stack walk per domain, all merging into the same trie: a
     worker's "ilp.solve" at top level lands on the same root child as
     the main domain's, so the tree is the union of the call shapes. *)
  List.iter
    (fun (_, evs) ->
      let stack = ref [] in
      List.iter
        (function
          | Begin { name; ts } ->
            let parent = match !stack with [] -> root | (_, _, n) :: _ -> n in
            stack := (name, ts, child_of parent name) :: !stack
          | End { name; ts } ->
            (match !stack with
             | (n, t0, node) :: rest when String.equal n name ->
               stack := rest;
               let dur = ts -. t0 in
               node.t_calls <- node.t_calls + 1;
               node.t_total <- node.t_total +. dur;
               (match rest with
                | (_, _, parent) :: _ -> parent.t_child <- parent.t_child +. dur
                | [] -> ())
             | _ -> () (* unmatched End: drop, as in span_stats *))
          | Count _ | Gauge _ | Hist _ -> ())
        evs)
    (events ());
  let rec freeze path node =
    Hashtbl.fold (fun name c l -> (name, c) :: l) node.t_children []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    |> List.map (fun (name, c) ->
           let p = if String.equal path "" then name else path ^ "/" ^ name in
           { node_name = name;
             path = p;
             n_calls = c.t_calls;
             n_total_s = c.t_total;
             n_self_s = Float.max 0.0 (c.t_total -. c.t_child);
             n_children = freeze p c })
  in
  freeze "" root

let counters () =
  let acc : (string, int ref) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun (_, evs) ->
      List.iter
        (function
          | Count { name; incr; _ } ->
            (match Hashtbl.find_opt acc name with
             | Some r -> r := !r + incr
             | None -> Hashtbl.add acc name (ref incr))
          | Begin _ | End _ | Gauge _ | Hist _ -> ())
        evs)
    (events ());
  Hashtbl.fold (fun name r l -> (name, !r) :: l) acc []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let gauges () =
  let acc : (string, float ref) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun (_, evs) ->
      List.iter
        (function
          | Gauge { name; value; _ } ->
            (match Hashtbl.find_opt acc name with
             | Some r -> if value > !r then r := value
             | None -> Hashtbl.add acc name (ref value))
          | Begin _ | End _ | Count _ | Hist _ -> ())
        evs)
    (events ());
  Hashtbl.fold (fun name r l -> (name, !r) :: l) acc []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let time_of name =
  match List.find_opt (fun s -> String.equal s.span_name name) (span_stats ()) with
  | Some s -> s.total_s
  | None -> 0.0

let calls_of name =
  match List.find_opt (fun s -> String.equal s.span_name name) (span_stats ()) with
  | Some s -> s.calls
  | None -> 0

let counter_of name =
  match List.assoc_opt name (counters ()) with Some v -> v | None -> 0

(* --- Chrome trace_event exporter ------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let chrome_trace () =
  let t0 = Atomic.get epoch in
  let us ts = (ts -. t0) *. 1e6 in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  let first = ref true in
  let emit s =
    if !first then first := false else Buffer.add_char buf ',';
    Buffer.add_string buf "\n  ";
    Buffer.add_string buf s
  in
  (* counter tracks show running totals; totals are kept per name across
     domains, in buffer order, which is what a merged track displays *)
  let totals : (string, int ref) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (tid, evs) ->
      emit
        (Printf.sprintf
           "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,\
            \"args\":{\"name\":\"domain %d\"}}"
           tid tid);
      (* the same stack walk as [span_tree], so every E event can carry
         its duration and self time (duration minus nested spans) *)
      let stack = ref [] in
      List.iter
        (fun ev ->
          match ev with
          | Begin { name; ts } ->
            stack := (name, ts, ref 0.0) :: !stack;
            emit
              (Printf.sprintf
                 "{\"name\":\"%s\",\"ph\":\"B\",\"pid\":1,\"tid\":%d,\"ts\":%.1f}"
                 (json_escape name) tid (us ts))
          | End { name; ts } ->
            let args =
              match !stack with
              | (n, t0, child) :: rest when String.equal n name ->
                stack := rest;
                let dur = ts -. t0 in
                (match rest with
                 | (_, _, pchild) :: _ -> pchild := !pchild +. dur
                 | [] -> ());
                Printf.sprintf ",\"args\":{\"dur_us\":%.1f,\"self_us\":%.1f}"
                  (dur *. 1e6)
                  (Float.max 0.0 (dur -. !child) *. 1e6)
              | _ -> ""
            in
            emit
              (Printf.sprintf
                 "{\"name\":\"%s\",\"ph\":\"E\",\"pid\":1,\"tid\":%d,\"ts\":%.1f%s}"
                 (json_escape name) tid (us ts) args)
          | Count { name; ts; incr } ->
            let r =
              match Hashtbl.find_opt totals name with
              | Some r -> r
              | None ->
                let r = ref 0 in
                Hashtbl.add totals name r;
                r
            in
            r := !r + incr;
            emit
              (Printf.sprintf
                 "{\"name\":\"%s\",\"ph\":\"C\",\"pid\":1,\"tid\":%d,\"ts\":%.1f,\
                  \"args\":{\"value\":%d}}"
                 (json_escape name) tid (us ts) !r)
          | Gauge { name; ts; value } ->
            emit
              (Printf.sprintf
                 "{\"name\":\"%s\",\"ph\":\"C\",\"pid\":1,\"tid\":%d,\"ts\":%.1f,\
                  \"args\":{\"value\":%g}}"
                 (json_escape name) tid (us ts) value)
          | Hist _ ->
            (* histogram samples are timestamp-free aggregates; they
               have no sensible place on a timeline *)
            ())
        evs)
    (events ());
  Buffer.add_string buf "\n]}\n";
  Buffer.contents buf

let write_chrome_trace path =
  let oc = open_out path in
  output_string oc (chrome_trace ());
  close_out oc

(* --- plain-text summary --------------------------------------------- *)

let summary_table () =
  let t =
    Report.Table.create ~title:"Observability summary"
      [ ("metric", Report.Table.Left); ("kind", Report.Table.Left);
        ("calls", Report.Table.Right); ("total s", Report.Table.Right);
        ("self s", Report.Table.Right); ("mean ms", Report.Table.Right);
        ("value", Report.Table.Right) ]
  in
  (* spans render as their reconstructed call tree, two spaces of indent
     per level, with self time split out from nested children *)
  let tree = span_tree () in
  let rec add_node depth n =
    Report.Table.add_row t
      [ String.make (2 * depth) ' ' ^ n.node_name; "span";
        string_of_int n.n_calls;
        Printf.sprintf "%.4f" n.n_total_s;
        Printf.sprintf "%.4f" n.n_self_s;
        Printf.sprintf "%.3f"
          (1e3 *. n.n_total_s /. float_of_int (max 1 n.n_calls));
        "" ];
    List.iter (add_node (depth + 1)) n.n_children
  in
  List.iter (add_node 0) tree;
  let cs = counters () in
  if tree <> [] && cs <> [] then Report.Table.add_rule t;
  List.iter
    (fun (name, v) ->
      Report.Table.add_row t [name; "counter"; ""; ""; ""; ""; string_of_int v])
    cs;
  let hist_row kind (name, h) =
    Report.Table.add_row t
      [ name; kind; string_of_int (Histogram.count h); ""; ""; "";
        Printf.sprintf "p50=%g p99=%g max=%g"
          (Histogram.percentile h 0.50) (Histogram.percentile h 0.99)
          (if Histogram.count h = 0 then 0.0 else Histogram.max_value h) ]
  in
  let hs = histograms () and xhs = exec_histograms () in
  if tree <> [] || cs <> [] then
    if hs <> [] || xhs <> [] then Report.Table.add_rule t;
  List.iter (hist_row "hist") hs;
  (* "hist~": execution-shaped distributions, noisy by nature *)
  List.iter (hist_row "hist~") xhs;
  let gs = gauges () in
  if (tree <> [] || cs <> [] || hs <> [] || xhs <> []) && gs <> [] then
    Report.Table.add_rule t;
  List.iter
    (fun (name, v) ->
      Report.Table.add_row t
        [name; "gauge"; ""; ""; ""; ""; Printf.sprintf "%g" v])
    gs;
  t

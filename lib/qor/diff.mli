(** Record-against-baseline comparison with per-metric tolerance
    bands — the regression gate behind [ff2latch qor check].

    {2 Tolerance semantics}

    Metrics fall in two classes, decided by the record section they
    live in:

    - {b Exact} ([metrics], [counters] and [hists] sections —
      histograms through their {!Record.hist_stats} readouts): counts,
      objectives, area, power, slack are deterministic, so {e any}
      numeric difference is a change.  [NaN = NaN] counts as
      unchanged (a power model that produced NaN yesterday and NaN
      today has not regressed); NaN against a finite value is always
      a regression, whichever side it is on.
    - {b Noisy} ([wall] and [gauges] sections): wall-clock and
      sampled values.  A difference within
      [max (noise_band * |baseline|, abs_floor)] — boundary
      {e inclusive} — is classified unchanged.  The default band is
      30% with a 10 ms floor, wide enough for CI machine jitter.

    Whether a change is an improvement or a regression depends on the
    metric's direction: slack, coverage, speedup-like and ok-flags
    are better higher; everything else (counts, power, area, nodes,
    seconds) is better lower.

    {2 Gate}

    {!gate_failures} is what CI fails on: every exact metric that
    changed {e in either direction} or disappeared.  An improvement
    fails the gate too — that is the point of a ratchet; refresh the
    baseline to bank it.  Noisy regressions are reported separately
    ({!wall_regressions}) and do not fail the gate unless the caller
    opts in.

    {2 Attribution}

    For every gated {e metric} that changed, the diff also asks {e why}:
    it maps the metric to the flow stage that owns it, then ranks the
    co-located telemetry — counters, histogram readouts and
    out-of-band gauges emitted by that stage's implementation — that
    moved in the same run.  The top suspects land in {!t.attributions}
    and are printed by [qor check] under the failure verdict, so a CI
    failure says not just "power regressed" but "and the clock-gating
    simulation saw 40% more kernel events". *)

type cls =
  | Improved
  | Regressed
  | Unchanged
  | Missing_current   (** in the baseline, absent from the new record *)
  | Missing_baseline  (** new metric, absent from the baseline *)

type section = Metric | Counter | Hist | Wall | Gauge

type entry = {
  name : string;
  section : section;
  baseline : float option;
  current : float option;
  cls : cls;
}

(** One ranked piece of evidence behind an attribution: a co-located
    counter/histogram/gauge entry that also moved. *)
type suspect = {
  su_name : string;
  su_section : section;
  su_baseline : float option;
  su_current : float option;
  su_score : float;
  (** [|delta| / max 1 |baseline|]; [1.0] when one side is missing *)
}

type attribution = {
  at_metric : string;  (** the gated metric that changed *)
  at_stage : string;   (** the flow stage that owns it *)
  at_suspects : suspect list;  (** ranked, best first, at most three *)
}

type t = {
  circuit : string;
  baseline_kind : string;
  entries : entry list;        (** deterministic sections first, then noisy *)
  gate_failures : string list; (** exact metrics changed or missing *)
  wall_regressions : string list; (** noisy metrics beyond the band *)
  attributions : attribution list;
  (** one per changed [Metric] entry with at least one suspect *)
}

(** The flow stage owning a gated metric name, when known — the same
    mapping {!run} uses to pick suspects. *)
val stage_of_metric : string -> string option

(** [run ~baseline current] — [noise_band] is the relative tolerance
    for noisy metrics (default [0.30]), [abs_floor] the absolute floor
    in the metric's own unit (default [0.01]). *)
val run :
  ?noise_band:float -> ?abs_floor:float -> baseline:Record.t -> Record.t -> t

(** True iff the gate passes; [fail_on_wall] (default false) also
    requires {!wall_regressions} to be empty. *)
val ok : ?fail_on_wall:bool -> t -> bool

val cls_name : cls -> string
val section_name : section -> string

(** One line per attribution, e.g.
    ["power.total_mw (stage power): suspect sim.kernel.events \[counter\] 1200 -> 1800"]
    — for console output and CI failure messages. *)
val attribution_lines : t -> string list

(** Plain-text diff table (all entries; unchanged rows included so the
    table documents coverage). *)
val table : t -> Report.Table.t

(** The same diff as a markdown report (changed entries only, plus a
    verdict line) — for CI summaries and PR comments. *)
val markdown : t -> string

type cls =
  | Improved
  | Regressed
  | Unchanged
  | Missing_current
  | Missing_baseline

type section = Metric | Counter | Hist | Wall | Gauge

type entry = {
  name : string;
  section : section;
  baseline : float option;
  current : float option;
  cls : cls;
}

(* One ranked piece of evidence for an attribution: a co-located
   counter/histogram/gauge entry that also moved. *)
type suspect = {
  su_name : string;
  su_section : section;
  su_baseline : float option;
  su_current : float option;
  su_score : float;  (* |delta| / max(1, |baseline|); 1.0 when one-sided *)
}

type attribution = {
  at_metric : string;       (* the gated metric that changed *)
  at_stage : string;        (* the flow stage that owns it *)
  at_suspects : suspect list;  (* ranked, best first, at most three *)
}

type t = {
  circuit : string;
  baseline_kind : string;
  entries : entry list;
  gate_failures : string list;
  wall_regressions : string list;
  attributions : attribution list;
}

let cls_name = function
  | Improved -> "improved"
  | Regressed -> "REGRESSED"
  | Unchanged -> "unchanged"
  | Missing_current -> "MISSING (current)"
  | Missing_baseline -> "new"

let section_name = function
  | Metric -> "metric"
  | Counter -> "counter"
  | Hist -> "hist"
  | Wall -> "wall"
  | Gauge -> "gauge"

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* Direction: which way is better.  Names are schema-wide conventions
   (docs/QOR.md); anything unrecognised counts lower-as-better, the
   right default for counts, power, area and seconds. *)
let higher_is_better name =
  contains name "slack" || contains name "coverage"
  || contains name "speedup" || contains name ".ok"
  || contains name "optimal" || contains name "lanes"
  || contains name "fused" || contains name "skipped"
  || contains name "beats"

let classify_direction name delta =
  if delta = 0.0 then Unchanged
  else if (delta > 0.0) = higher_is_better name then Improved
  else Regressed

let classify_exact name b c =
  (* Float.equal is structural: NaN = NaN, so a reproducibly-NaN metric
     is unchanged; NaN on one side only is always a regression *)
  if Float.equal b c then Unchanged
  else if Float.is_nan b || Float.is_nan c then Regressed
  else classify_direction name (c -. b)

let classify_noisy ~noise_band ~abs_floor name b c =
  if Float.equal b c then Unchanged
  else if Float.is_nan b || Float.is_nan c then Regressed
  else
    let delta = c -. b in
    let tol = Float.max (noise_band *. Float.abs b) abs_floor in
    if Float.abs delta <= tol then Unchanged
    else classify_direction name delta

(* --- regression attribution ----------------------------------------- *)

let starts_with p s =
  String.length s >= String.length p && String.sub s 0 (String.length p) = p

(* Which flow stage owns a gated metric.  The mapping follows the
   metric vocabulary of Collect.of_flow (docs/QOR.md): register counts
   and cell-level area come out of conversion, power/area/hold come out
   of the physical+power measurement, and so on.  Unknown names (bench
   headline metrics, experiment extras) get no attribution. *)
let stage_of_metric name =
  if starts_with "assign." name then Some "assign"
  else if starts_with "retime." name
          || String.equal name "inserted_p2.after_retime"
  then Some "retime"
  else if starts_with "cg." name || String.equal name "clock_gate.count" then
    Some "clock_gating"
  else if starts_with "timing." name then Some "smo"
  else if starts_with "lint." name then Some "lint"
  else if starts_with "equivalence." name then Some "equivalence"
  else if
    starts_with "power." name || starts_with "kernel." name
    || starts_with "clock_tree." name || starts_with "hold." name
    || String.equal name "area.impl_um2" || String.equal name "wirelength.um"
  then Some "power"
  else if
    starts_with "area." name || starts_with "leakage." name
    || starts_with "inserted_p2." name || String.equal name "ff.count"
    || String.equal name "latch.count" || String.equal name "register.count"
  then Some "convert"
  else None

(* Telemetry name prefixes co-located with a stage: the counters,
   histograms and gauges its implementation emits. *)
let suspect_prefixes = function
  | "assign" -> ["ilp."; "mis."; "assign."]
  | "convert" -> ["assign."; "convert."]
  | "retime" -> ["retime."]
  | "clock_gating" -> ["cg."; "sim.kernel."]
  | "smo" -> ["sta."]
  | "lint" -> ["lint."]
  | "equivalence" -> ["sim."]
  | "power" -> ["sim.kernel."; "physical."; "power."; "sta."; "qor.power"]
  | _ -> []

let suspect_score b c =
  match b, c with
  | Some b, Some c when Float.is_nan b || Float.is_nan c -> 1.0
  | Some b, Some c -> Float.abs (c -. b) /. Float.max 1.0 (Float.abs b)
  | _ -> 1.0 (* appeared or disappeared outright *)

(* For one changed deterministic metric: rank the co-located telemetry
   entries (counters, histogram readouts, gauges — not other gated
   metrics) that also moved.  "Moved" reuses each section's own
   classification, so gauges must leave the noise band to qualify. *)
let attribute entries e =
  match stage_of_metric e.name with
  | None -> None
  | Some stage ->
    let prefixes = suspect_prefixes stage in
    let candidates =
      List.filter
        (fun s ->
          (match s.section with
           | Counter | Hist | Gauge -> true
           | Metric | Wall -> false)
          && s.cls <> Unchanged
          && (not (String.equal s.name e.name))
          && List.exists (fun p -> starts_with p s.name) prefixes)
        entries
    in
    let suspects =
      List.map
        (fun s ->
          { su_name = s.name;
            su_section = s.section;
            su_baseline = s.baseline;
            su_current = s.current;
            su_score = suspect_score s.baseline s.current })
        candidates
      |> List.sort (fun a b ->
             match compare b.su_score a.su_score with
             | 0 -> String.compare a.su_name b.su_name
             | o -> o)
    in
    let top =
      List.filteri (fun i _ -> i < 3) suspects
    in
    if top = [] then None
    else Some { at_metric = e.name; at_stage = stage; at_suspects = top }

(* Walk two sorted assoc lists, pairing by name. *)
let merge_sorted base cur f =
  let rec go acc base cur =
    match base, cur with
    | [], [] -> List.rev acc
    | (bn, bv) :: brest, [] -> go (f bn (Some bv) None :: acc) brest []
    | [], (cn, cv) :: crest -> go (f cn None (Some cv) :: acc) [] crest
    | (bn, bv) :: brest, (cn, cv) :: crest ->
      let o = String.compare bn cn in
      if o = 0 then go (f bn (Some bv) (Some cv) :: acc) brest crest
      else if o < 0 then go (f bn (Some bv) None :: acc) brest cur
      else go (f cn None (Some cv) :: acc) base crest
  in
  go [] base cur

let run ?(noise_band = 0.30) ?(abs_floor = 0.01) ~baseline current =
  let exact section name b c =
    let cls =
      match b, c with
      | Some b, Some c -> classify_exact name b c
      | Some _, None -> Missing_current
      | None, Some _ -> Missing_baseline
      | None, None -> assert false
    in
    { name; section; baseline = b; current = c; cls }
  in
  let noisy section name b c =
    let cls =
      match b, c with
      | Some b, Some c -> classify_noisy ~noise_band ~abs_floor name b c
      | Some _, None -> Missing_current
      | None, Some _ -> Missing_baseline
      | None, None -> assert false
    in
    { name; section; baseline = b; current = c; cls }
  in
  let ints kvs = List.map (fun (k, v) -> (k, float_of_int v)) kvs in
  let entries =
    merge_sorted baseline.Record.metrics current.Record.metrics
      (exact Metric)
    @ merge_sorted (ints baseline.Record.counters)
        (ints current.Record.counters) (exact Counter)
    @ merge_sorted
        (Record.flatten_hists baseline.Record.hists)
        (Record.flatten_hists current.Record.hists)
        (exact Hist)
    @ merge_sorted baseline.Record.wall current.Record.wall (noisy Wall)
    @ merge_sorted baseline.Record.gauges current.Record.gauges (noisy Gauge)
  in
  let gate_failures =
    List.filter_map
      (fun e ->
        match e.section, e.cls with
        | (Metric | Counter | Hist), (Improved | Regressed | Missing_current)
          ->
          Some e.name
        | _ -> None)
      entries
  in
  let wall_regressions =
    List.filter_map
      (fun e ->
        match e.section, e.cls with
        | (Wall | Gauge), Regressed -> Some e.name
        | _ -> None)
      entries
  in
  let attributions =
    List.filter_map
      (fun e ->
        match e.section, e.cls with
        | Metric, (Regressed | Improved) -> attribute entries e
        | _ -> None)
      entries
  in
  { circuit = current.Record.prov.circuit;
    baseline_kind = baseline.Record.prov.kind;
    entries;
    gate_failures;
    wall_regressions;
    attributions }

let ok ?(fail_on_wall = false) t =
  t.gate_failures = [] && ((not fail_on_wall) || t.wall_regressions = [])

let value_str = function
  | None -> "-"
  | Some v ->
    if Float.is_nan v then "nan"
    else if Float.is_integer v && Float.abs v < 1e15 then
      Printf.sprintf "%.0f" v
    else Printf.sprintf "%.6g" v

let delta_str e =
  match e.baseline, e.current with
  | Some b, Some c when Float.is_nan b || Float.is_nan c -> "-"
  | Some b, Some c ->
    let d = c -. b in
    if d = 0.0 then ""
    else if Float.abs b > 0.0 && Float.is_finite (d /. b) then
      Printf.sprintf "%+.6g (%+.1f%%)" d (100.0 *. d /. Float.abs b)
    else Printf.sprintf "%+.6g" d
  | _ -> "-"

let table t =
  let tab =
    Report.Table.create
      ~title:(Printf.sprintf "QoR diff: %s (baseline %s)" t.circuit
                t.baseline_kind)
      [ ("metric", Report.Table.Left); ("kind", Report.Table.Left);
        ("baseline", Report.Table.Right); ("current", Report.Table.Right);
        ("delta", Report.Table.Right); ("class", Report.Table.Left) ]
  in
  let emit e =
    Report.Table.add_row tab
      [ e.name; section_name e.section; value_str e.baseline;
        value_str e.current; delta_str e; cls_name e.cls ]
  in
  let deterministic, rest =
    List.partition
      (fun e ->
        match e.section with Metric | Counter | Hist -> true | _ -> false)
      t.entries
  in
  List.iter emit deterministic;
  if deterministic <> [] && rest <> [] then Report.Table.add_rule tab;
  List.iter emit rest;
  tab

(* Human-readable attribution lines, one per changed metric:
     power.total_mw (stage power): suspect sim.kernel.events 1200 -> 1800 (score 600)
   Shared by `qor check` console output and CI failure messages. *)
let attribution_lines t =
  List.map
    (fun a ->
      let sus =
        List.map
          (fun s ->
            Printf.sprintf "%s [%s] %s -> %s" s.su_name
              (section_name s.su_section)
              (value_str s.su_baseline) (value_str s.su_current))
          a.at_suspects
      in
      Printf.sprintf "%s (stage %s): suspect %s" a.at_metric a.at_stage
        (String.concat "; " sus))
    t.attributions

let markdown t =
  let buf = Buffer.create 1024 in
  Printf.bprintf buf "## QoR diff: `%s`\n\n" t.circuit;
  (if t.gate_failures = [] then
     Buffer.add_string buf "**Gate: PASS** — deterministic QoR unchanged.\n"
   else
     Printf.bprintf buf
       "**Gate: FAIL** — %d deterministic metric(s) changed: %s.\n"
       (List.length t.gate_failures)
       (String.concat ", " (List.map (Printf.sprintf "`%s`") t.gate_failures)));
  if t.wall_regressions <> [] then
    Printf.bprintf buf
      "Wall-clock outside the noise band (not gated): %s.\n"
      (String.concat ", "
         (List.map (Printf.sprintf "`%s`") t.wall_regressions));
  if t.attributions <> [] then begin
    Buffer.add_string buf "\n### Suspects\n\n";
    List.iter (Printf.bprintf buf "- %s\n") (attribution_lines t)
  end;
  let changed =
    List.filter (fun e -> e.cls <> Unchanged) t.entries
  in
  if changed <> [] then begin
    Buffer.add_string buf
      "\n| metric | kind | baseline | current | delta | class |\n\
       |---|---|---:|---:|---:|---|\n";
    List.iter
      (fun e ->
        Printf.bprintf buf "| `%s` | %s | %s | %s | %s | %s |\n" e.name
          (section_name e.section) (value_str e.baseline)
          (value_str e.current) (delta_str e) (cls_name e.cls))
      changed
  end;
  Buffer.contents buf

type cls =
  | Improved
  | Regressed
  | Unchanged
  | Missing_current
  | Missing_baseline

type section = Metric | Counter | Wall | Gauge

type entry = {
  name : string;
  section : section;
  baseline : float option;
  current : float option;
  cls : cls;
}

type t = {
  circuit : string;
  baseline_kind : string;
  entries : entry list;
  gate_failures : string list;
  wall_regressions : string list;
}

let cls_name = function
  | Improved -> "improved"
  | Regressed -> "REGRESSED"
  | Unchanged -> "unchanged"
  | Missing_current -> "MISSING (current)"
  | Missing_baseline -> "new"

let section_name = function
  | Metric -> "metric"
  | Counter -> "counter"
  | Wall -> "wall"
  | Gauge -> "gauge"

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* Direction: which way is better.  Names are schema-wide conventions
   (docs/QOR.md); anything unrecognised counts lower-as-better, the
   right default for counts, power, area and seconds. *)
let higher_is_better name =
  contains name "slack" || contains name "coverage"
  || contains name "speedup" || contains name ".ok"
  || contains name "optimal" || contains name "lanes"
  || contains name "fused" || contains name "skipped"
  || contains name "beats"

let classify_direction name delta =
  if delta = 0.0 then Unchanged
  else if (delta > 0.0) = higher_is_better name then Improved
  else Regressed

let classify_exact name b c =
  (* Float.equal is structural: NaN = NaN, so a reproducibly-NaN metric
     is unchanged; NaN on one side only is always a regression *)
  if Float.equal b c then Unchanged
  else if Float.is_nan b || Float.is_nan c then Regressed
  else classify_direction name (c -. b)

let classify_noisy ~noise_band ~abs_floor name b c =
  if Float.equal b c then Unchanged
  else if Float.is_nan b || Float.is_nan c then Regressed
  else
    let delta = c -. b in
    let tol = Float.max (noise_band *. Float.abs b) abs_floor in
    if Float.abs delta <= tol then Unchanged
    else classify_direction name delta

(* Walk two sorted assoc lists, pairing by name. *)
let merge_sorted base cur f =
  let rec go acc base cur =
    match base, cur with
    | [], [] -> List.rev acc
    | (bn, bv) :: brest, [] -> go (f bn (Some bv) None :: acc) brest []
    | [], (cn, cv) :: crest -> go (f cn None (Some cv) :: acc) [] crest
    | (bn, bv) :: brest, (cn, cv) :: crest ->
      let o = String.compare bn cn in
      if o = 0 then go (f bn (Some bv) (Some cv) :: acc) brest crest
      else if o < 0 then go (f bn (Some bv) None :: acc) brest cur
      else go (f cn None (Some cv) :: acc) base crest
  in
  go [] base cur

let run ?(noise_band = 0.30) ?(abs_floor = 0.01) ~baseline current =
  let exact section name b c =
    let cls =
      match b, c with
      | Some b, Some c -> classify_exact name b c
      | Some _, None -> Missing_current
      | None, Some _ -> Missing_baseline
      | None, None -> assert false
    in
    { name; section; baseline = b; current = c; cls }
  in
  let noisy section name b c =
    let cls =
      match b, c with
      | Some b, Some c -> classify_noisy ~noise_band ~abs_floor name b c
      | Some _, None -> Missing_current
      | None, Some _ -> Missing_baseline
      | None, None -> assert false
    in
    { name; section; baseline = b; current = c; cls }
  in
  let ints kvs = List.map (fun (k, v) -> (k, float_of_int v)) kvs in
  let entries =
    merge_sorted baseline.Record.metrics current.Record.metrics
      (exact Metric)
    @ merge_sorted (ints baseline.Record.counters)
        (ints current.Record.counters) (exact Counter)
    @ merge_sorted baseline.Record.wall current.Record.wall (noisy Wall)
    @ merge_sorted baseline.Record.gauges current.Record.gauges (noisy Gauge)
  in
  let gate_failures =
    List.filter_map
      (fun e ->
        match e.section, e.cls with
        | (Metric | Counter), (Improved | Regressed | Missing_current) ->
          Some e.name
        | _ -> None)
      entries
  in
  let wall_regressions =
    List.filter_map
      (fun e ->
        match e.section, e.cls with
        | (Wall | Gauge), Regressed -> Some e.name
        | _ -> None)
      entries
  in
  { circuit = current.Record.prov.circuit;
    baseline_kind = baseline.Record.prov.kind;
    entries;
    gate_failures;
    wall_regressions }

let ok ?(fail_on_wall = false) t =
  t.gate_failures = [] && ((not fail_on_wall) || t.wall_regressions = [])

let value_str = function
  | None -> "-"
  | Some v ->
    if Float.is_nan v then "nan"
    else if Float.is_integer v && Float.abs v < 1e15 then
      Printf.sprintf "%.0f" v
    else Printf.sprintf "%.6g" v

let delta_str e =
  match e.baseline, e.current with
  | Some b, Some c when Float.is_nan b || Float.is_nan c -> "-"
  | Some b, Some c ->
    let d = c -. b in
    if d = 0.0 then ""
    else if Float.abs b > 0.0 && Float.is_finite (d /. b) then
      Printf.sprintf "%+.6g (%+.1f%%)" d (100.0 *. d /. Float.abs b)
    else Printf.sprintf "%+.6g" d
  | _ -> "-"

let table t =
  let tab =
    Report.Table.create
      ~title:(Printf.sprintf "QoR diff: %s (baseline %s)" t.circuit
                t.baseline_kind)
      [ ("metric", Report.Table.Left); ("kind", Report.Table.Left);
        ("baseline", Report.Table.Right); ("current", Report.Table.Right);
        ("delta", Report.Table.Right); ("class", Report.Table.Left) ]
  in
  let emit e =
    Report.Table.add_row tab
      [ e.name; section_name e.section; value_str e.baseline;
        value_str e.current; delta_str e; cls_name e.cls ]
  in
  let deterministic, rest =
    List.partition
      (fun e -> match e.section with Metric | Counter -> true | _ -> false)
      t.entries
  in
  List.iter emit deterministic;
  if deterministic <> [] && rest <> [] then Report.Table.add_rule tab;
  List.iter emit rest;
  tab

let markdown t =
  let buf = Buffer.create 1024 in
  Printf.bprintf buf "## QoR diff: `%s`\n\n" t.circuit;
  (if t.gate_failures = [] then
     Buffer.add_string buf "**Gate: PASS** — deterministic QoR unchanged.\n"
   else
     Printf.bprintf buf
       "**Gate: FAIL** — %d deterministic metric(s) changed: %s.\n"
       (List.length t.gate_failures)
       (String.concat ", " (List.map (Printf.sprintf "`%s`") t.gate_failures)));
  if t.wall_regressions <> [] then
    Printf.bprintf buf
      "Wall-clock outside the noise band (not gated): %s.\n"
      (String.concat ", "
         (List.map (Printf.sprintf "`%s`") t.wall_regressions));
  let changed =
    List.filter (fun e -> e.cls <> Unchanged) t.entries
  in
  if changed <> [] then begin
    Buffer.add_string buf
      "\n| metric | kind | baseline | current | delta | class |\n\
       |---|---|---:|---:|---:|---|\n";
    List.iter
      (fun e ->
        Printf.bprintf buf "| `%s` | %s | %s | %s | %s | %s |\n" e.name
          (section_name e.section) (value_str e.baseline)
          (value_str e.current) (delta_str e) (cls_name e.cls))
      changed
  end;
  Buffer.contents buf

(* Per-metric time series over the store history, with a robust
   median/MAD outlier flag on the latest point.  Pure data in, pure
   data out: the store scan and filtering happen in of_store, the
   statistics never look at the clock. *)

type series = {
  sr_circuit : string;
  sr_kind : string;
  sr_name : string;
  sr_deterministic : bool;
  sr_points : (string * float) list; (* (timestamp, value), oldest first *)
  sr_anomaly : bool;
}

let median sorted =
  let n = Array.length sorted in
  if n = 0 then nan
  else if n mod 2 = 1 then sorted.(n / 2)
  else (sorted.((n / 2) - 1) +. sorted.(n / 2)) /. 2.0

let median_of values =
  let a = Array.of_list values in
  Array.sort compare a;
  median a

(* Robust z-score outlier test on the last value: flag iff
   |latest - median| > 3.5 * 1.4826 * MAD (the modified z-score rule,
   Iglewicz & Hoaglin).  MAD = 0 means the history is constant, so any
   deviation at all is anomalous.  Fewer than four points is not
   enough history to call anything an outlier. *)
let anomalous values =
  match values with
  | [] -> false
  | _ when List.length values < 4 -> false
  | _ ->
    let latest = List.nth values (List.length values - 1) in
    if Float.is_nan latest then true
    else
      let med = median_of values in
      let mad =
        median_of (List.map (fun v -> Float.abs (v -. med)) values)
      in
      if mad = 0.0 then not (Float.equal latest med)
      else Float.abs (latest -. med) > 3.5 *. 1.4826 *. mad

(* Eight-level unicode sparkline; constant series render mid-scale. *)
let spark_chars = [| "\xe2\x96\x81"; "\xe2\x96\x82"; "\xe2\x96\x83";
                     "\xe2\x96\x84"; "\xe2\x96\x85"; "\xe2\x96\x86";
                     "\xe2\x96\x87"; "\xe2\x96\x88" |]

let sparkline values =
  let finite = List.filter Float.is_finite values in
  match finite with
  | [] -> String.concat "" (List.map (fun _ -> "-") values)
  | _ ->
    let lo = List.fold_left Float.min infinity finite in
    let hi = List.fold_left Float.max neg_infinity finite in
    let buf = Buffer.create (3 * List.length values) in
    List.iter
      (fun v ->
        if not (Float.is_finite v) then Buffer.add_char buf '-'
        else if hi = lo then Buffer.add_string buf spark_chars.(3)
        else
          let level =
            int_of_float ((v -. lo) /. (hi -. lo) *. 7.0 +. 0.5)
          in
          Buffer.add_string buf spark_chars.(max 0 (min 7 level)))
      values;
    Buffer.contents buf

(* Every (name, value, deterministic) a record contributes to trends:
   the gated sections exactly as Diff sees them (hists through their
   stats readouts), and the wall/gauge sections marked noisy. *)
let record_values (r : Record.t) =
  List.map (fun (k, v) -> (k, v, true)) r.Record.metrics
  @ List.map
      (fun (k, v) -> (k, float_of_int v, true))
      r.Record.counters
  @ List.map (fun (k, v) -> (k, v, true)) (Record.flatten_hists r.Record.hists)
  @ List.map (fun (k, v) -> (k, v, false)) r.Record.wall
  @ List.map (fun (k, v) -> (k, v, false)) r.Record.gauges

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let series_of_records records =
  let tbl : (string * string * string, (string * float) list ref * bool) Hashtbl.t =
    Hashtbl.create 64
  in
  let order = ref [] in
  List.iter
    (fun (r : Record.t) ->
      let ts = r.Record.prov.Record.timestamp in
      List.iter
        (fun (name, v, det) ->
          let key = (r.Record.prov.Record.kind, r.Record.prov.Record.circuit, name) in
          match Hashtbl.find_opt tbl key with
          | Some (points, _) -> points := (ts, v) :: !points
          | None ->
            Hashtbl.add tbl key (ref [(ts, v)], det);
            order := key :: !order)
        (record_values r))
    records;
  List.rev_map
    (fun ((kind, circuit, name) as key) ->
      let points, det = Hashtbl.find tbl key in
      let pts = List.rev !points in
      { sr_circuit = circuit;
        sr_kind = kind;
        sr_name = name;
        sr_deterministic = det;
        sr_points = pts;
        sr_anomaly = anomalous (List.map snd pts) })
    !order

let last_n n l =
  let len = List.length l in
  if len <= n then l else List.filteri (fun i _ -> i >= len - n) l

let of_store ~dir ?kind ?circuit ?metric ?limit () =
  let records = Store.history ~dir in
  let keep opt_want got =
    match opt_want with None -> true | Some w -> String.equal w got
  in
  series_of_records records
  |> List.filter (fun s ->
         keep kind s.sr_kind && keep circuit s.sr_circuit
         && (match metric with
             | None -> true
             | Some m -> contains s.sr_name m))
  |> List.map (fun s ->
         match limit with
         | None -> s
         | Some n ->
           let pts = last_n n s.sr_points in
           { s with
             sr_points = pts;
             sr_anomaly = anomalous (List.map snd pts) })

let anomalies series =
  List.filter (fun s -> s.sr_anomaly && s.sr_deterministic) series

let value_str v =
  if Float.is_nan v then "nan"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.6g" v

let table ?(all = false) series =
  let tab =
    Report.Table.create ~title:"QoR trends"
      [ ("circuit", Report.Table.Left); ("metric", Report.Table.Left);
        ("class", Report.Table.Left); ("runs", Report.Table.Right);
        ("median", Report.Table.Right); ("latest", Report.Table.Right);
        ("trend", Report.Table.Left); ("flag", Report.Table.Left) ]
  in
  let shown =
    if all then series
    else
      (* default view: hide series that never move — the interesting
         rows are the ones with history *)
      List.filter
        (fun s ->
          s.sr_anomaly
          ||
          match s.sr_points with
          | [] | [_] -> false
          | (_, v0) :: rest ->
            List.exists (fun (_, v) -> not (Float.equal v v0)) rest)
        series
  in
  List.iter
    (fun s ->
      let values = List.map snd s.sr_points in
      let latest =
        match List.rev values with v :: _ -> v | [] -> nan
      in
      Report.Table.add_row tab
        [ s.sr_circuit; s.sr_name;
          (if s.sr_deterministic then "det" else "noisy");
          string_of_int (List.length values);
          value_str (median_of values); value_str latest;
          sparkline (last_n 24 values);
          (if s.sr_anomaly then "ANOMALY" else "") ])
    shown;
  tab

(** The self-contained HTML flow report behind [ff2latch report].

    One HTML string, no external assets — inline CSS, inline SVG, no
    scripts — so the file can be archived as a CI artifact and opened
    anywhere.  Built entirely from run {!Record}s (never from the live
    {!Obs} registry), so a report can be regenerated from the store
    long after the run.

    Sections, in order: baseline diff verdict + suspects (only with
    [baseline]), provenance and config, stage waterfall (from the
    [stage.*] wall entries, in flow order), collapsible span tree,
    deterministic histograms with bucket bars and percentile readouts,
    the metric table (standalone mode) or the full diff table
    (baseline mode), and trend sparklines (only with [history]). *)

(** [page ?baseline ?history record] — the complete document.
    [baseline] switches the metric table into diff-vs-baseline mode
    with the {!Diff} verdict and attribution suspects at the top.
    [history] (oldest first, as {!Store.history} returns it) adds
    per-metric trend sparklines for the record's circuit; constant
    series are hidden. *)
val page : ?baseline:Record.t -> ?history:Record.t list -> Record.t -> string

(** Versioned, machine-comparable QoR run records.

    One record captures everything a later session needs to judge a
    flow/bench/experiment invocation: provenance (what ran, where,
    from which commit), the deterministic quality-of-results metrics
    (register counts, objectives, area, power groups, timing slack,
    equivalence), the deterministic {!Obs} counters, and the
    wall-clock/sampled observability that is {e not} expected to
    reproduce (stage times, span durations, gauges such as the GC
    pressure samples).

    {2 Determinism contract}

    The fields are split so diffing tools can hold the two classes to
    different standards:

    - [kind], [circuit], [config], [metrics], [counters], [hists] are
      the {b deterministic sections}: for a fixed tree and inputs their
      rendered bytes are identical for any [THREEPHASE_JOBS] setting
      and any machine.  {!Diff} compares them exactly (histograms
      through their {!hist_stats} readouts).
    - [provenance], [wall], [gauges], [spans], [tree] (and the
      free-form [headline]) are the {b wall sections}: timestamps,
      hostnames, durations and sampled values.  {!Diff} compares
      [wall] and [gauges] under a relative noise band and never gates
      on [provenance], [spans] or [tree].

    {!render} is canonical — fixed key order, metric maps sorted by
    name, one float format (see {!Json.float_token}) — so two records
    agree on the deterministic sections iff their rendered bytes do.

    {2 Versioning}

    [schema_version] is written into every record.  The reader is
    strict about what it understands — a missing required field, a
    wrong type, or a version {e newer} than {!schema_version} is an
    error — but tolerant of unknown fields, so older readers accept
    records written by forward-compatible extensions of the same
    version. *)

val schema_version : int

type provenance = {
  circuit : string;        (** benchmark/design name *)
  kind : string;           (** ["flow"], ["bench.sim"], ["bench.ilp"], ["experiment"], ... *)
  git_rev : string option; (** [git rev-parse --short HEAD] when available *)
  jobs : int;              (** effective [THREEPHASE_JOBS] *)
  hostname : string;
  timestamp : string;      (** UTC ISO-8601 *)
}

(** One aggregated {!Obs} span: name, completed calls, summed seconds. *)
type span = { span_name : string; calls : int; total_s : float }

(** One node of the recorded span call tree ({!Obs.span_tree} with the
    path dropped — it is recomputable from the nesting). *)
type tree_node = {
  t_name : string;
  t_calls : int;
  t_total_s : float;
  t_self_s : float;
  t_children : tree_node list;
}

type t = {
  version : int;
  prov : provenance;
  config : (string * Json.t) list;  (** flow/experiment knobs, as written *)
  metrics : (string * float) list;  (** deterministic QoR, sorted by name *)
  counters : (string * int) list;   (** deterministic Obs counters, sorted *)
  hists : (string * Obs.Histogram.t) list;
  (** deterministic Obs histograms, sorted; gated through {!hist_stats} *)
  headline : (string * Json.t) list;
  (** free-form summary for humans and dashboards (the [BENCH_*.json]
      headline); informational, never gated *)
  wall : (string * float) list;     (** wall-clock seconds, sorted *)
  gauges : (string * float) list;   (** max-merged Obs gauges, sorted *)
  spans : span list;                (** Obs span rollup, sorted by name *)
  tree : tree_node list;            (** span call tree; wall section *)
}

(** Build a record; every metric map is sorted by name (canonical
    order), so callers need not pre-sort. *)
val make :
  ?config:(string * Json.t) list ->
  ?metrics:(string * float) list ->
  ?counters:(string * int) list ->
  ?hists:(string * Obs.Histogram.t) list ->
  ?headline:(string * Json.t) list ->
  ?wall:(string * float) list ->
  ?gauges:(string * float) list ->
  ?spans:span list ->
  ?tree:tree_node list ->
  provenance -> t

(** Deterministic scalar readouts of one histogram, namespaced under
    its name: [<name>.count], [.p50], [.p90], [.p99], [.max] (max is 0
    when empty).  These are the entries {!Diff} ratchets and
    [qor trend] tracks. *)
val hist_stats : string -> Obs.Histogram.t -> (string * float) list

(** {!hist_stats} over a whole [hists] section, in order. *)
val flatten_hists :
  (string * Obs.Histogram.t) list -> (string * float) list

val to_json : t -> Json.t

(** Canonical pretty rendering (the per-run file format), trailing
    newline included. *)
val render : t -> string

(** Canonical one-line rendering (the [history.jsonl] format). *)
val render_compact : t -> string

val of_json : Json.t -> (t, string) result

(** [parse text] — [render]/[parse] round-trip exactly. *)
val parse : string -> (t, string) result

(** Deterministic metric lookup across [metrics] and [counters]. *)
val metric : t -> string -> float option

(** A small JSON value type with a parser and a canonical printer —
    just enough for {!Record}'s run-record files, with no external
    dependency.

    The printer is {e canonical}: given the same value it always
    produces the same bytes (fixed two-space indentation, object keys
    in the order the value carries them, one float format).  Run
    records rely on this for the byte-identical-across-jobs guarantee,
    so do not "improve" the formatting casually.

    JSON has no NaN or infinities; {!render} encodes a non-finite
    {!Num} as the strings ["nan"], ["inf"] or ["-inf"] and
    {!to_float} converts them back, so metric maps round-trip even
    when a power model divides by zero. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(** Pretty canonical rendering, trailing newline included. *)
val render : t -> string

(** One-line canonical rendering (for [history.jsonl]), no newline. *)
val render_compact : t -> string

(** Canonical float token: integers as ["42.0"], non-finite values as
    quoted strings, everything else as the shortest [%g] form that
    round-trips through [float_of_string]. *)
val float_token : float -> string

val parse : string -> (t, string) result

(** Object member lookup; [None] on missing key or non-object. *)
val member : string -> t -> t option

(** [Num] or the {!render} encoding of a non-finite float. *)
val to_float : t -> float option

(** {!to_float} restricted to integral values. *)
val to_int : t -> int option

val to_string : t -> string option

(* Minimal JSON with a canonical printer.  The byte-stability of run
   records across THREEPHASE_JOBS settings rests on [render] being a
   pure function of the value — fixed indentation, caller-ordered
   object keys, one float format — so keep it boring. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_token f =
  if Float.is_nan f then "\"nan\""
  else if f = Float.infinity then "\"inf\""
  else if f = Float.neg_infinity then "\"-inf\""
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else
    (* shortest %g form that round-trips, so parse-then-render is the
       identity on record files *)
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let add_value buf ~compact v =
  let pad n = if not compact then Buffer.add_string buf (String.make n ' ') in
  let nl () = if not compact then Buffer.add_char buf '\n' in
  let rec go indent v =
    match v with
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Num f -> Buffer.add_string buf (float_token f)
    | Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
    | Arr [] -> Buffer.add_string buf "[]"
    | Arr vs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          nl ();
          pad (indent + 2);
          go (indent + 2) v)
        vs;
      nl ();
      pad indent;
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          nl ();
          pad (indent + 2);
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf (if compact then "\":" else "\": ");
          go (indent + 2) v)
        kvs;
      nl ();
      pad indent;
      Buffer.add_char buf '}'
  in
  go 0 v

let render v =
  let buf = Buffer.create 1024 in
  add_value buf ~compact:false v;
  Buffer.add_char buf '\n';
  Buffer.contents buf

let render_compact v =
  let buf = Buffer.create 256 in
  add_value buf ~compact:true v;
  Buffer.contents buf

exception Bad of string

let parse (s : string) : (t, string) result =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') -> advance (); skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let hex_digit () =
    match peek () with
    | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
    | _ -> fail "bad \\u escape"
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
         | Some 'n' -> Buffer.add_char buf '\n'; advance ()
         | Some 't' -> Buffer.add_char buf '\t'; advance ()
         | Some 'r' -> Buffer.add_char buf '\r'; advance ()
         | Some 'b' -> Buffer.add_char buf '\b'; advance ()
         | Some 'f' -> Buffer.add_char buf '\012'; advance ()
         | Some 'u' ->
           advance ();
           let start = !pos in
           hex_digit (); hex_digit (); hex_digit (); hex_digit ();
           let code = int_of_string ("0x" ^ String.sub s start 4) in
           if code < 0x80 then Buffer.add_char buf (Char.chr code)
           else Buffer.add_char buf '?'
         | Some (('"' | '\\' | '/') as c) -> Buffer.add_char buf c; advance ()
         | Some c -> fail (Printf.sprintf "bad escape \\%c" c)
         | None -> fail "unterminated escape");
        go ()
      | Some c -> Buffer.add_char buf c; advance (); go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c when is_num_char c -> true | _ -> false) do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Num f
    | None -> fail "bad number"
  in
  let keyword kw v =
    let m = String.length kw in
    if !pos + m <= n && String.sub s !pos m = kw then begin
      pos := !pos + m;
      v
    end
    else fail (Printf.sprintf "expected %s" kw)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then (advance (); Obj [])
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); members ((k, v) :: acc)
          | Some '}' -> advance (); Obj (List.rev ((k, v) :: acc))
          | _ -> fail "expected , or }"
        in
        members []
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then (advance (); Arr [])
      else begin
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); elements (v :: acc)
          | Some ']' -> advance (); Arr (List.rev (v :: acc))
          | _ -> fail "expected , or ]"
        in
        elements []
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> keyword "true" (Bool true)
    | Some 'f' -> keyword "false" (Bool false)
    | Some 'n' -> keyword "null" Null
    | Some _ -> parse_number ()
    | None -> fail "unexpected end of input"
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad msg -> Error msg

let member k = function
  | Obj kvs -> List.assoc_opt k kvs
  | _ -> None

let to_float = function
  | Num f -> Some f
  | Str "nan" -> Some Float.nan
  | Str "inf" -> Some Float.infinity
  | Str "-inf" -> Some Float.neg_infinity
  | Null | Bool _ | Str _ | Arr _ | Obj _ -> None

let to_int v =
  match to_float v with
  | Some f when Float.is_integer f && Float.abs f < 1e15 ->
    Some (int_of_float f)
  | Some _ | None -> None

let to_string = function Str s -> Some s | _ -> None

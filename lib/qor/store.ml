let runs_dir dir = Filename.concat dir "runs"
let history_path dir = Filename.concat dir "history.jsonl"
let baselines_dir dir = Filename.concat dir "baselines"

let rec ensure_dir path =
  if not (Sys.file_exists path) then begin
    ensure_dir (Filename.dirname path);
    (try Unix.mkdir path 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ())
  end

(* run ids must be safe as file names on any filesystem *)
let sanitize s =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '_' | '-' -> c
      | _ -> '_')
    s

let run_id (r : Record.t) =
  let ts =
    (* timestamps are ISO-8601; strip the separators so ids sort and
       stay readable: 2026-08-06T10:15:30Z -> 20260806T101530Z *)
    String.concat ""
      (String.split_on_char ':'
         (String.concat "" (String.split_on_char '-' r.Record.prov.timestamp)))
  in
  sanitize
    (Printf.sprintf "%s-%s-%s"
       (if ts = "" then "unstamped" else ts)
       r.Record.prov.kind r.Record.prov.circuit)

let fresh_path dir id =
  let candidate n =
    Filename.concat (runs_dir dir)
      (if n = 1 then id ^ ".json" else Printf.sprintf "%s-%d.json" id n)
  in
  let rec go n =
    let p = candidate n in
    if Sys.file_exists p then go (n + 1) else p
  in
  go 1

let append ~dir record =
  ensure_dir (runs_dir dir);
  let path = fresh_path dir (run_id record) in
  let oc = open_out path in
  output_string oc (Record.render record);
  close_out oc;
  let oc =
    open_out_gen [Open_append; Open_creat] 0o644 (history_path dir)
  in
  output_string oc (Record.render_compact record);
  output_char oc '\n';
  close_out oc;
  path

let load path =
  match
    let ic = open_in path in
    let text = really_input_string ic (in_channel_length ic) in
    close_in ic;
    text
  with
  | text -> Record.parse text
  | exception Sys_error msg -> Error msg

let history ~dir =
  let path = history_path dir in
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in path in
    let rec go acc =
      match input_line ic with
      | "" -> go acc
      | line ->
        go (match Record.parse line with Ok r -> r :: acc | Error _ -> acc)
      | exception End_of_file -> List.rev acc
    in
    let records = go [] in
    close_in ic;
    records
  end

let latest ~dir ?kind ~circuit () =
  let matches (r : Record.t) =
    String.equal r.Record.prov.circuit circuit
    && match kind with
       | None -> true
       | Some k -> String.equal r.Record.prov.kind k
  in
  List.fold_left
    (fun acc r -> if matches r then Some r else acc)
    None (history ~dir)

(* The self-contained HTML flow report: one file, no external assets
   (inline CSS, inline SVG, no scripts), so it can be archived as a CI
   artifact and opened anywhere.  All data comes from run records —
   not from the live Obs registry — so a report can be rebuilt from
   the store long after the run. *)

module H = Report.Html

let css =
  "body{font:14px/1.45 -apple-system,'Segoe UI',sans-serif;margin:2em auto;\
   max-width:70em;padding:0 1em;color:#1b1f24}\
   h1{font-size:1.5em;border-bottom:2px solid #d0d7de;padding-bottom:.3em}\
   h2{font-size:1.15em;margin-top:1.8em}\
   table{border-collapse:collapse;margin:.6em 0}\
   th,td{padding:.25em .7em;border:1px solid #d0d7de;text-align:left}\
   td.n,th.n{text-align:right;font-variant-numeric:tabular-nums}\
   th{background:#f6f8fa}\
   tr.regressed td{background:#ffebe9}\
   tr.improved td{background:#dafbe1}\
   tr.new td{background:#fff8c5}\
   .muted{color:#656d76}\
   .track{display:inline-block;width:14em;height:.8em;background:#f6f8fa;\
   border:1px solid #d0d7de;vertical-align:middle;margin-right:.6em}\
   .bar{display:block;height:100%;background:#54aeff}\
   .bar.self{background:#e16f24}\
   .bar.hist{background:#8250df}\
   .barlabel{font-variant-numeric:tabular-nums}\
   .spark{color:#0969da;vertical-align:middle}\
   details{margin-left:1.2em}\
   details.root{margin-left:0}\
   summary{cursor:pointer;padding:.1em 0}\
   summary .track{width:10em}\
   .leaf{margin-left:2.45em;padding:.1em 0}\
   code{background:#f6f8fa;padding:.1em .3em;border-radius:3px}\
   .verdict{padding:.6em 1em;border-radius:6px;margin:1em 0}\
   .verdict.pass{background:#dafbe1}\
   .verdict.fail{background:#ffebe9}"

let bprintf = Printf.bprintf

(* --- provenance + config -------------------------------------------- *)

let kv_row buf k v =
  bprintf buf "<tr><th>%s</th><td>%s</td></tr>" (H.escape k) (H.escape v)

let provenance_section buf (r : Record.t) =
  let p = r.Record.prov in
  bprintf buf "<h2>Run</h2><table>";
  kv_row buf "circuit" p.Record.circuit;
  kv_row buf "kind" p.Record.kind;
  kv_row buf "timestamp" p.Record.timestamp;
  (match p.Record.git_rev with
   | Some rev -> kv_row buf "git rev" rev
   | None -> ());
  kv_row buf "jobs" (string_of_int p.Record.jobs);
  if p.Record.hostname <> "" then kv_row buf "host" p.Record.hostname;
  List.iter
    (fun (k, v) -> kv_row buf k (Json.render_compact v))
    r.Record.config;
  bprintf buf "</table>"

(* --- stage waterfall -------------------------------------------------- *)

(* Stage wall times ordered as the flow runs them, one proportional
   bar per stage.  The canonical order comes from the flow itself;
   stages the record has but the list does not (e.g. "optimize",
   futures) keep record order at the end. *)
let stage_order = Phase3.Flow.stage_names @ ["optimize"]

let stage_section buf (r : Record.t) =
  let stages =
    List.filter_map
      (fun (k, v) ->
        let pre = "stage." in
        let n = String.length pre in
        if String.length k > n && String.sub k 0 n = pre then
          Some (String.sub k n (String.length k - n), v)
        else None)
      r.Record.wall
  in
  if stages <> [] then begin
    let index name =
      let rec go i = function
        | [] -> max_int
        | s :: _ when String.equal s name -> i
        | _ :: rest -> go (i + 1) rest
      in
      go 0 stage_order
    in
    let stages =
      List.stable_sort (fun (a, _) (b, _) -> compare (index a) (index b))
        stages
    in
    let total = List.fold_left (fun acc (_, v) -> acc +. v) 0.0 stages in
    let longest = List.fold_left (fun acc (_, v) -> Float.max acc v) 0.0 stages in
    bprintf buf "<h2>Stages <span class=\"muted\">(%.3f s wall)</span></h2><table>"
      total;
    List.iter
      (fun (name, v) ->
        bprintf buf "<tr><td>%s</td><td>%s</td></tr>" (H.escape name)
          (H.bar ~frac:(v /. Float.max longest 1e-9)
             (Printf.sprintf "%.1f ms" (1e3 *. v))))
      stages;
    bprintf buf "</table>"
  end

(* --- span tree -------------------------------------------------------- *)

let rec tree_node buf ~scale depth (n : Record.tree_node) =
  let label =
    Printf.sprintf "%s&nbsp;<span class=\"muted\">&times;%d</span> %s self %s"
      (H.escape n.Record.t_name) n.Record.t_calls
      (H.bar ~frac:(n.Record.t_total_s /. scale)
         (Printf.sprintf "%.1f ms" (1e3 *. n.Record.t_total_s)))
      (H.bar ~cls:"bar self" ~frac:(n.Record.t_self_s /. scale)
         (Printf.sprintf "%.1f ms" (1e3 *. n.Record.t_self_s)))
  in
  if n.Record.t_children = [] then
    bprintf buf "<div class=\"leaf\">%s</div>" label
  else begin
    bprintf buf "<details%s%s><summary>%s</summary>"
      (if depth = 0 then " class=\"root\"" else "")
      (if depth < 2 then " open" else "")
      label;
    List.iter (tree_node buf ~scale (depth + 1)) n.Record.t_children;
    bprintf buf "</details>"
  end

let tree_section buf (r : Record.t) =
  if r.Record.tree <> [] then begin
    let scale =
      List.fold_left
        (fun acc n -> Float.max acc n.Record.t_total_s)
        1e-9 r.Record.tree
    in
    bprintf buf
      "<h2>Span tree</h2><p class=\"muted\">Blue: total (inclusive).  \
       Orange: self time, children excluded.</p>";
    List.iter (tree_node buf ~scale 0) r.Record.tree
  end

(* --- histograms ------------------------------------------------------- *)

let hist_section buf (r : Record.t) =
  if r.Record.hists <> [] then begin
    bprintf buf
      "<h2>Histograms</h2><p class=\"muted\">Deterministic distributions \
       (log-bucketed); identical for any <code>THREEPHASE_JOBS</code>.</p>\
       <table><tr><th>name</th><th class=\"n\">count</th>\
       <th class=\"n\">p50</th><th class=\"n\">p90</th>\
       <th class=\"n\">p99</th><th class=\"n\">max</th>\
       <th>distribution</th></tr>";
    List.iter
      (fun (name, h) ->
        let buckets = Obs.Histogram.bucket_counts h in
        let peak =
          List.fold_left (fun acc (_, c) -> max acc c) 1 buckets
        in
        let bars = Buffer.create 128 in
        List.iter
          (fun (i, c) ->
            bprintf bars
              "<span class=\"track\" style=\"width:.7em;height:1.4em;\
               margin-right:1px;position:relative\" title=\"[%s, %s): %d\">\
               <span class=\"bar hist\" style=\"position:absolute;bottom:0;\
               width:100%%;height:%.0f%%\"></span></span>"
              (H.num (Obs.Histogram.bucket_lower i))
              (H.num (Obs.Histogram.bucket_upper i))
              c
              (100.0 *. float_of_int c /. float_of_int peak))
          buckets;
        bprintf buf
          "<tr><td><code>%s</code></td><td class=\"n\">%d</td>\
           <td class=\"n\">%s</td><td class=\"n\">%s</td>\
           <td class=\"n\">%s</td><td class=\"n\">%s</td><td>%s</td></tr>"
          (H.escape name) (Obs.Histogram.count h)
          (H.num (Obs.Histogram.percentile h 0.50))
          (H.num (Obs.Histogram.percentile h 0.90))
          (H.num (Obs.Histogram.percentile h 0.99))
          (H.num
             (if Obs.Histogram.count h = 0 then 0.0
              else Obs.Histogram.max_value h))
          (Buffer.contents bars))
      r.Record.hists;
    bprintf buf "</table>"
  end

(* --- metrics (with optional baseline diff) ---------------------------- *)

let opt_num = function None -> "&mdash;" | Some v -> H.num v

let diff_section buf (d : Diff.t) =
  (if d.Diff.gate_failures = [] then
     bprintf buf
       "<div class=\"verdict pass\"><strong>Gate: PASS</strong> &mdash; \
        deterministic QoR unchanged vs baseline <code>%s</code>.</div>"
       (H.escape d.Diff.baseline_kind)
   else
     bprintf buf
       "<div class=\"verdict fail\"><strong>Gate: FAIL</strong> &mdash; %d \
        deterministic metric(s) changed vs baseline <code>%s</code>.</div>"
       (List.length d.Diff.gate_failures)
       (H.escape d.Diff.baseline_kind));
  if d.Diff.attributions <> [] then begin
    bprintf buf "<h2>Suspects</h2><ul>";
    List.iter
      (fun line -> bprintf buf "<li>%s</li>" (H.escape line))
      (Diff.attribution_lines d);
    bprintf buf "</ul>"
  end;
  bprintf buf
    "<h2>Metrics vs baseline</h2><table><tr><th>metric</th><th>kind</th>\
     <th class=\"n\">baseline</th><th class=\"n\">current</th>\
     <th>class</th></tr>";
  List.iter
    (fun (e : Diff.entry) ->
      let cls_attr =
        match e.Diff.cls with
        | Diff.Regressed | Diff.Missing_current -> " class=\"regressed\""
        | Diff.Improved -> " class=\"improved\""
        | Diff.Missing_baseline -> " class=\"new\""
        | Diff.Unchanged -> ""
      in
      bprintf buf
        "<tr%s><td><code>%s</code></td><td>%s</td><td class=\"n\">%s</td>\
         <td class=\"n\">%s</td><td>%s</td></tr>"
        cls_attr (H.escape e.Diff.name)
        (Diff.section_name e.Diff.section)
        (opt_num e.Diff.baseline) (opt_num e.Diff.current)
        (Diff.cls_name e.Diff.cls))
    d.Diff.entries;
  bprintf buf "</table>"

let metrics_section buf (r : Record.t) =
  bprintf buf
    "<h2>Metrics</h2><table><tr><th>metric</th><th>kind</th>\
     <th class=\"n\">value</th></tr>";
  let row kind (k, v) =
    bprintf buf
      "<tr><td><code>%s</code></td><td>%s</td><td class=\"n\">%s</td></tr>"
      (H.escape k) kind (H.num v)
  in
  List.iter (row "metric") r.Record.metrics;
  List.iter
    (fun (k, v) -> row "counter" (k, float_of_int v))
    r.Record.counters;
  List.iter (row "gauge") r.Record.gauges;
  bprintf buf "</table>"

(* --- trend ------------------------------------------------------------ *)

let trend_section buf ~history (r : Record.t) =
  let circuit = r.Record.prov.Record.circuit in
  let series =
    Trend.series_of_records history
    |> List.filter (fun s ->
           String.equal s.Trend.sr_circuit circuit
           && List.length s.Trend.sr_points >= 2
           &&
           (* only series that ever move, or are currently flagged *)
           (s.Trend.sr_anomaly
            ||
            match s.Trend.sr_points with
            | [] | [_] -> false
            | (_, v0) :: rest ->
              List.exists (fun (_, v) -> not (Float.equal v v0)) rest))
  in
  if series <> [] then begin
    bprintf buf
      "<h2>Trends</h2><p class=\"muted\">History of <code>%s</code> from \
       the store (%d runs); constant series hidden.</p>\
       <table><tr><th>metric</th><th>class</th><th class=\"n\">runs</th>\
       <th class=\"n\">latest</th><th>trend</th><th>flag</th></tr>"
      (H.escape circuit) (List.length history);
    List.iter
      (fun (s : Trend.series) ->
        let values = List.map snd s.Trend.sr_points in
        let latest = match List.rev values with v :: _ -> v | [] -> nan in
        bprintf buf
          "<tr%s><td><code>%s</code></td><td>%s</td><td class=\"n\">%d</td>\
           <td class=\"n\">%s</td><td>%s</td><td>%s</td></tr>"
          (if s.Trend.sr_anomaly && s.Trend.sr_deterministic then
             " class=\"regressed\""
           else "")
          (H.escape s.Trend.sr_name)
          (if s.Trend.sr_deterministic then "det" else "noisy")
          (List.length values) (H.num latest)
          (H.spark_svg values)
          (if s.Trend.sr_anomaly then "ANOMALY" else ""))
      series;
    bprintf buf "</table>"
  end

(* --- page ------------------------------------------------------------- *)

let page ?baseline ?(history = []) (r : Record.t) =
  let buf = Buffer.create 16384 in
  bprintf buf
    "<!DOCTYPE html><html lang=\"en\"><head><meta charset=\"utf-8\">\
     <meta name=\"viewport\" content=\"width=device-width,initial-scale=1\">\
     <title>ff2latch &mdash; %s</title><style>%s</style></head><body>"
    (H.escape r.Record.prov.Record.circuit)
    css;
  bprintf buf "<h1>ff2latch flow report &mdash; <code>%s</code></h1>"
    (H.escape r.Record.prov.Record.circuit);
  (match baseline with
   | Some b -> diff_section buf (Diff.run ~baseline:b r)
   | None -> ());
  provenance_section buf r;
  stage_section buf r;
  tree_section buf r;
  hist_section buf r;
  if baseline = None then metrics_section buf r;
  if history <> [] then trend_section buf ~history r;
  bprintf buf
    "<p class=\"muted\">Generated by <code>ff2latch report</code>; \
     self-contained, no external assets.</p></body></html>\n";
  Buffer.contents buf

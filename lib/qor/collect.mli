(** Record builders: provenance capture, {!Obs} rollup, and the
    extraction of QoR metrics from a finished {!Phase3.Flow} run.

    {!Record} and {!Diff} are pure data; this module is where the run
    record meets the rest of the system — it shells out for the git
    revision, reads the clock and hostname, implements/simulates the
    final design for power, and flattens {!Phase3.Flow.result} into
    the metric names documented in docs/QOR.md. *)

(** Capture provenance now: git rev (when the tree is a repo and [git]
    is on PATH), effective [THREEPHASE_JOBS], hostname, UTC ISO-8601
    timestamp. *)
val provenance : kind:string -> circuit:string -> Record.provenance

(** A {!Phase3.Flow.config} as record [config] fields (all knobs that
    influence QoR; deterministic). *)
val config_json : Phase3.Flow.config -> (string * Json.t) list

(** Snapshot of the global {!Obs} aggregates:
    [(counters, gauges, spans, hists, tree)].  [gauges] additionally
    carries p50/p99/max readouts of the execution-shaped histograms
    ({!Obs.exec_histograms}) — machine-shaped distributions belong in
    the noisy channel; [hists] is the deterministic
    {!Obs.histograms}; [tree] the {!Obs.span_tree} call tree.  Call it
    from sequential code only (after the flow / suite), like every
    other [Obs] reader. *)
val obs_rollup :
  unit ->
  (string * int) list
  * (string * float) list
  * Record.span list
  * (string * Obs.Histogram.t) list
  * Record.tree_node list

(** Physical implementation and power of a finished design: hold-fix
    under the given clocks, placement + CTS, Monte-Carlo activity via
    the bit-parallel kernel (one seeded stream per lane), then
    {!Power.Estimate.run}.  Deterministic for fixed inputs — the lane
    count is fixed regardless of [THREEPHASE_JOBS].  Also returns the
    kernel's effectiveness counters (fused ops, skipped waves/cones)
    from the activity run. *)
val implement_and_power :
  Netlist.Design.t ->
  clocks:Sim.Clock_spec.t ->
  cycles:int ->
  seed:int ->
  Physical.Implement.t * Sta.Hold_fix.stats * Power.Estimate.detail
  * Sim.Kernel.stats

(** [of_flow ~circuit result] — the full flow record: register-count
    metrics, inserted-p2 before/after retiming, clock-gating coverage,
    SMO slack, equivalence verdict, plus (unless
    [measure_power:false]) area/power/hold-buffer metrics from
    {!implement_and_power} over [power_cycles] cycles (default 256).
    [with_obs] (default true) attaches the {!obs_rollup} — pass false
    when several flows share the process and the global aggregates
    would be commingled.  [extra_wall] appends caller-side wall-clock
    entries. *)
val of_flow :
  ?with_obs:bool ->
  ?measure_power:bool ->
  ?power_cycles:int ->
  ?extra_wall:(string * float) list ->
  circuit:string ->
  Phase3.Flow.result ->
  Record.t

(** Per-metric time series over the store history, with robust outlier
    detection — the engine behind [ff2latch qor trend].

    Every record in [history.jsonl] contributes one point per metric
    to the series keyed by [(kind, circuit, name)].  The deterministic
    sections ([metrics], [counters], histogram readouts via
    {!Record.flatten_hists}) form {e deterministic} series; [wall] and
    [gauges] form {e noisy} ones.  The distinction matters for
    {!anomalies}: only deterministic outliers are CI-worthy, a slow
    machine is not.

    {2 Outlier rule}

    The latest point of a series is flagged by the modified z-score
    (Iglewicz–Hoaglin): anomalous iff
    [|latest - median| > 3.5 * 1.4826 * MAD] over the whole series.
    A zero MAD (constant history) makes any deviation anomalous, and
    fewer than four points is never flagged — not enough history to
    know what normal looks like. *)

type series = {
  sr_circuit : string;
  sr_kind : string;
  sr_name : string;
  sr_deterministic : bool;
  sr_points : (string * float) list;
  (** [(timestamp, value)], oldest first *)
  sr_anomaly : bool;  (** latest point flagged by the outlier rule *)
}

(** The outlier rule on a raw value list (oldest first), as specified
    above.  NaN as the latest value of a long-enough series is always
    anomalous. *)
val anomalous : float list -> bool

(** Eight-level unicode sparkline of a value list; non-finite points
    render as ["-"], a constant series renders mid-scale. *)
val sparkline : float list -> string

(** Group records (oldest first, as {!Store.history} returns them)
    into series.  Order: first appearance of each [(kind, circuit,
    metric)] key. *)
val series_of_records : Record.t list -> series list

(** Load the store history and filter: [kind]/[circuit] match exactly,
    [metric] is a substring match on the series name, [limit] keeps
    only the most recent N points of each series (the anomaly flag is
    recomputed on the window). *)
val of_store :
  dir:string ->
  ?kind:string ->
  ?circuit:string ->
  ?metric:string ->
  ?limit:int ->
  unit ->
  series list

(** The CI-worthy subset: anomalous {e and} deterministic.  Empty
    means [qor trend --check] passes. *)
val anomalies : series list -> series list

(** Render series as a table (circuit, metric, class, runs, median,
    latest, sparkline, flag).  By default series whose values never
    change are hidden; [all:true] shows everything. *)
val table : ?all:bool -> series list -> Report.Table.t

(* The run-record schema.  The writer fixes the key order and sorts
   every metric map, so rendering is canonical; the reader demands the
   fields it knows (wrong type or missing required field = error,
   newer schema_version = error) and skips fields it does not, so a
   version-1 reader accepts extended version-1 records. *)

let schema_version = 1

type provenance = {
  circuit : string;
  kind : string;
  git_rev : string option;
  jobs : int;
  hostname : string;
  timestamp : string;
}

type span = { span_name : string; calls : int; total_s : float }

(* One node of the recorded span call tree (Obs.span_tree, flattened
   into the record so reports can be built from records alone). *)
type tree_node = {
  t_name : string;
  t_calls : int;
  t_total_s : float;
  t_self_s : float;
  t_children : tree_node list;
}

type t = {
  version : int;
  prov : provenance;
  config : (string * Json.t) list;
  metrics : (string * float) list;
  counters : (string * int) list;
  hists : (string * Obs.Histogram.t) list;  (* deterministic section *)
  headline : (string * Json.t) list;
  wall : (string * float) list;
  gauges : (string * float) list;
  spans : span list;
  tree : tree_node list;
}

let by_name (a, _) (b, _) = String.compare a b

let make ?(config = []) ?(metrics = []) ?(counters = []) ?(hists = [])
    ?(headline = []) ?(wall = []) ?(gauges = []) ?(spans = []) ?(tree = [])
    prov =
  { version = schema_version;
    prov;
    config;
    metrics = List.sort by_name metrics;
    counters = List.sort by_name counters;
    hists = List.sort by_name hists;
    headline;
    wall = List.sort by_name wall;
    gauges = List.sort by_name gauges;
    spans =
      List.sort (fun a b -> String.compare a.span_name b.span_name) spans;
    tree }

(* Deterministic scalar readouts of a histogram, the per-hist entries
   the regression gate ratchets: sample count, quartile readouts and
   the raw max (0 when empty, like Obs.Histogram.to_string). *)
let hist_stats name (h : Obs.Histogram.t) =
  [ (name ^ ".count", float_of_int (Obs.Histogram.count h));
    (name ^ ".p50", Obs.Histogram.percentile h 0.50);
    (name ^ ".p90", Obs.Histogram.percentile h 0.90);
    (name ^ ".p99", Obs.Histogram.percentile h 0.99);
    (name ^ ".max",
     if Obs.Histogram.count h = 0 then 0.0 else Obs.Histogram.max_value h) ]

let flatten_hists hists =
  List.concat_map (fun (name, h) -> hist_stats name h) hists

(* --- writer ---------------------------------------------------------- *)

let to_json r =
  let num_map kvs = Json.Obj (List.map (fun (k, v) -> (k, Json.Num v)) kvs) in
  let int_map kvs =
    Json.Obj (List.map (fun (k, v) -> (k, Json.Num (float_of_int v))) kvs)
  in
  let opt_field name = function [] -> [] | kvs -> [(name, Json.Obj kvs)] in
  let hist_json h =
    Json.Obj
      [ ("count", Json.Num (float_of_int (Obs.Histogram.count h)));
        ("underflow", Json.Num (float_of_int (Obs.Histogram.underflow h)));
        ("max",
         Json.Num
           (if Obs.Histogram.count h = 0 then 0.0
            else Obs.Histogram.max_value h));
        ("buckets",
         Json.Arr
           (List.map
              (fun (i, c) ->
                Json.Arr
                  [Json.Num (float_of_int i); Json.Num (float_of_int c)])
              (Obs.Histogram.bucket_counts h))) ]
  in
  let rec tree_json n =
    Json.Obj
      ([ ("name", Json.Str n.t_name);
         ("calls", Json.Num (float_of_int n.t_calls));
         ("total_s", Json.Num n.t_total_s);
         ("self_s", Json.Num n.t_self_s) ]
       @
       if n.t_children = [] then []
       else [("children", Json.Arr (List.map tree_json n.t_children))])
  in
  Json.Obj
    ([ ("schema_version", Json.Num (float_of_int r.version));
       ("kind", Json.Str r.prov.kind);
       ("circuit", Json.Str r.prov.circuit);
       ("config", Json.Obj r.config);
       ("metrics", num_map r.metrics);
       ("counters", int_map r.counters) ]
     @ opt_field "hists"
         (List.map (fun (name, h) -> (name, hist_json h)) r.hists)
     @ opt_field "headline" r.headline
     @ [ ("provenance",
          Json.Obj
            [ ("git_rev",
               (match r.prov.git_rev with
                | Some rev -> Json.Str rev
                | None -> Json.Null));
              ("jobs", Json.Num (float_of_int r.prov.jobs));
              ("hostname", Json.Str r.prov.hostname);
              ("timestamp", Json.Str r.prov.timestamp) ]);
         ("wall", num_map r.wall);
         ("gauges", num_map r.gauges);
         ("spans",
          Json.Arr
            (List.map
               (fun s ->
                 Json.Obj
                   [ ("name", Json.Str s.span_name);
                     ("calls", Json.Num (float_of_int s.calls));
                     ("total_s", Json.Num s.total_s) ])
               r.spans)) ]
     @
     if r.tree = [] then []
     else [("tree", Json.Arr (List.map tree_json r.tree))])

let render r = Json.render (to_json r)

let render_compact r = Json.render_compact (to_json r)

(* --- reader ---------------------------------------------------------- *)

let ( let* ) = Result.bind

let require what = function
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "record: missing or ill-typed %s" what)

let str_field doc k = require (k ^ ": string") (Option.bind (Json.member k doc) Json.to_string)

let num_map_field doc k =
  match Json.member k doc with
  | None -> Ok []
  | Some (Json.Obj kvs) ->
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | (name, v) :: rest ->
        (match Json.to_float v with
         | Some f -> go ((name, f) :: acc) rest
         | None ->
           Error (Printf.sprintf "record: %s.%s is not a number" k name))
    in
    go [] kvs
  | Some _ -> Error (Printf.sprintf "record: %s is not an object" k)

let of_json doc =
  let* version =
    require "schema_version"
      (Option.bind (Json.member "schema_version" doc) Json.to_int)
  in
  let* () =
    if version > schema_version then
      Error
        (Printf.sprintf
           "record: schema_version %d is newer than supported %d" version
           schema_version)
    else Ok ()
  in
  let* kind = str_field doc "kind" in
  let* circuit = str_field doc "circuit" in
  let config =
    match Json.member "config" doc with Some (Json.Obj kvs) -> kvs | _ -> []
  in
  let* metrics = num_map_field doc "metrics" in
  let* counters =
    let* m = num_map_field doc "counters" in
    Ok (List.map (fun (k, v) -> (k, int_of_float v)) m)
  in
  let* hists =
    match Json.member "hists" doc with
    | None -> Ok []
    | Some (Json.Obj kvs) ->
      let hist_of (name, v) =
        let int_field k = Option.bind (Json.member k v) Json.to_int in
        match int_field "count", int_field "underflow",
              Option.bind (Json.member "max" v) Json.to_float,
              Json.member "buckets" v with
        | Some count, Some underflow, Some max_value, Some (Json.Arr bs) ->
          let bucket = function
            | Json.Arr [i; c] ->
              (match Json.to_int i, Json.to_int c with
               | Some i, Some c -> Some (i, c)
               | _ -> None)
            | _ -> None
          in
          let buckets = List.filter_map bucket bs in
          if List.length buckets <> List.length bs then
            Error (Printf.sprintf "record: hists.%s has ill-formed buckets" name)
          else
            Ok
              (name,
               Obs.Histogram.of_parts ~count ~underflow
                 ~max_value:(if count = 0 then neg_infinity else max_value)
                 ~buckets)
        | _ -> Error (Printf.sprintf "record: hists.%s is ill-formed" name)
      in
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | kv :: rest ->
          (match hist_of kv with
           | Ok h -> go (h :: acc) rest
           | Error _ as e -> e)
      in
      go [] kvs
    | Some _ -> Error "record: hists is not an object"
  in
  let headline =
    match Json.member "headline" doc with Some (Json.Obj kvs) -> kvs | _ -> []
  in
  let prov_doc =
    match Json.member "provenance" doc with
    | Some (Json.Obj _ as p) -> p
    | _ -> Json.Obj []
  in
  let prov =
    { circuit;
      kind;
      git_rev = Option.bind (Json.member "git_rev" prov_doc) Json.to_string;
      jobs =
        (match Option.bind (Json.member "jobs" prov_doc) Json.to_int with
         | Some j -> j
         | None -> 1);
      hostname =
        (match Option.bind (Json.member "hostname" prov_doc) Json.to_string with
         | Some h -> h
         | None -> "");
      timestamp =
        (match
           Option.bind (Json.member "timestamp" prov_doc) Json.to_string
         with
         | Some t -> t
         | None -> "") }
  in
  let* wall = num_map_field doc "wall" in
  let* gauges = num_map_field doc "gauges" in
  let* spans =
    match Json.member "spans" doc with
    | None -> Ok []
    | Some (Json.Arr items) ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | item :: rest ->
          (match
             ( Option.bind (Json.member "name" item) Json.to_string,
               Option.bind (Json.member "calls" item) Json.to_int,
               Option.bind (Json.member "total_s" item) Json.to_float )
           with
           | Some span_name, Some calls, Some total_s ->
             go ({ span_name; calls; total_s } :: acc) rest
           | _ -> Error "record: ill-formed span entry")
      in
      go [] items
    | Some _ -> Error "record: spans is not an array"
  in
  let* tree =
    let rec node item =
      match
        ( Option.bind (Json.member "name" item) Json.to_string,
          Option.bind (Json.member "calls" item) Json.to_int,
          Option.bind (Json.member "total_s" item) Json.to_float,
          Option.bind (Json.member "self_s" item) Json.to_float )
      with
      | Some t_name, Some t_calls, Some t_total_s, Some t_self_s ->
        let* t_children =
          match Json.member "children" item with
          | None -> Ok []
          | Some (Json.Arr items) -> nodes [] items
          | Some _ -> Error "record: tree children is not an array"
        in
        Ok { t_name; t_calls; t_total_s; t_self_s; t_children }
      | _ -> Error "record: ill-formed tree node"
    and nodes acc = function
      | [] -> Ok (List.rev acc)
      | item :: rest ->
        let* n = node item in
        nodes (n :: acc) rest
    in
    match Json.member "tree" doc with
    | None -> Ok []
    | Some (Json.Arr items) -> nodes [] items
    | Some _ -> Error "record: tree is not an array"
  in
  Ok
    { version; prov; config; metrics; counters; hists; headline; wall;
      gauges; spans; tree }

let parse text =
  let* doc = Json.parse text in
  of_json doc

let metric r name =
  match List.assoc_opt name r.metrics with
  | Some v -> Some v
  | None ->
    (match List.assoc_opt name r.counters with
     | Some v -> Some (float_of_int v)
     | None -> None)

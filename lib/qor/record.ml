(* The run-record schema.  The writer fixes the key order and sorts
   every metric map, so rendering is canonical; the reader demands the
   fields it knows (wrong type or missing required field = error,
   newer schema_version = error) and skips fields it does not, so a
   version-1 reader accepts extended version-1 records. *)

let schema_version = 1

type provenance = {
  circuit : string;
  kind : string;
  git_rev : string option;
  jobs : int;
  hostname : string;
  timestamp : string;
}

type span = { span_name : string; calls : int; total_s : float }

type t = {
  version : int;
  prov : provenance;
  config : (string * Json.t) list;
  metrics : (string * float) list;
  counters : (string * int) list;
  headline : (string * Json.t) list;
  wall : (string * float) list;
  gauges : (string * float) list;
  spans : span list;
}

let by_name (a, _) (b, _) = String.compare a b

let make ?(config = []) ?(metrics = []) ?(counters = []) ?(headline = [])
    ?(wall = []) ?(gauges = []) ?(spans = []) prov =
  { version = schema_version;
    prov;
    config;
    metrics = List.sort by_name metrics;
    counters = List.sort by_name counters;
    headline;
    wall = List.sort by_name wall;
    gauges = List.sort by_name gauges;
    spans =
      List.sort (fun a b -> String.compare a.span_name b.span_name) spans }

(* --- writer ---------------------------------------------------------- *)

let to_json r =
  let num_map kvs = Json.Obj (List.map (fun (k, v) -> (k, Json.Num v)) kvs) in
  let int_map kvs =
    Json.Obj (List.map (fun (k, v) -> (k, Json.Num (float_of_int v))) kvs)
  in
  let opt_field name = function [] -> [] | kvs -> [(name, Json.Obj kvs)] in
  Json.Obj
    ([ ("schema_version", Json.Num (float_of_int r.version));
       ("kind", Json.Str r.prov.kind);
       ("circuit", Json.Str r.prov.circuit);
       ("config", Json.Obj r.config);
       ("metrics", num_map r.metrics);
       ("counters", int_map r.counters) ]
     @ opt_field "headline" r.headline
     @ [ ("provenance",
          Json.Obj
            [ ("git_rev",
               (match r.prov.git_rev with
                | Some rev -> Json.Str rev
                | None -> Json.Null));
              ("jobs", Json.Num (float_of_int r.prov.jobs));
              ("hostname", Json.Str r.prov.hostname);
              ("timestamp", Json.Str r.prov.timestamp) ]);
         ("wall", num_map r.wall);
         ("gauges", num_map r.gauges);
         ("spans",
          Json.Arr
            (List.map
               (fun s ->
                 Json.Obj
                   [ ("name", Json.Str s.span_name);
                     ("calls", Json.Num (float_of_int s.calls));
                     ("total_s", Json.Num s.total_s) ])
               r.spans)) ])

let render r = Json.render (to_json r)

let render_compact r = Json.render_compact (to_json r)

(* --- reader ---------------------------------------------------------- *)

let ( let* ) = Result.bind

let require what = function
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "record: missing or ill-typed %s" what)

let str_field doc k = require (k ^ ": string") (Option.bind (Json.member k doc) Json.to_string)

let num_map_field doc k =
  match Json.member k doc with
  | None -> Ok []
  | Some (Json.Obj kvs) ->
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | (name, v) :: rest ->
        (match Json.to_float v with
         | Some f -> go ((name, f) :: acc) rest
         | None ->
           Error (Printf.sprintf "record: %s.%s is not a number" k name))
    in
    go [] kvs
  | Some _ -> Error (Printf.sprintf "record: %s is not an object" k)

let of_json doc =
  let* version =
    require "schema_version"
      (Option.bind (Json.member "schema_version" doc) Json.to_int)
  in
  let* () =
    if version > schema_version then
      Error
        (Printf.sprintf
           "record: schema_version %d is newer than supported %d" version
           schema_version)
    else Ok ()
  in
  let* kind = str_field doc "kind" in
  let* circuit = str_field doc "circuit" in
  let config =
    match Json.member "config" doc with Some (Json.Obj kvs) -> kvs | _ -> []
  in
  let* metrics = num_map_field doc "metrics" in
  let* counters =
    let* m = num_map_field doc "counters" in
    Ok (List.map (fun (k, v) -> (k, int_of_float v)) m)
  in
  let headline =
    match Json.member "headline" doc with Some (Json.Obj kvs) -> kvs | _ -> []
  in
  let prov_doc =
    match Json.member "provenance" doc with
    | Some (Json.Obj _ as p) -> p
    | _ -> Json.Obj []
  in
  let prov =
    { circuit;
      kind;
      git_rev = Option.bind (Json.member "git_rev" prov_doc) Json.to_string;
      jobs =
        (match Option.bind (Json.member "jobs" prov_doc) Json.to_int with
         | Some j -> j
         | None -> 1);
      hostname =
        (match Option.bind (Json.member "hostname" prov_doc) Json.to_string with
         | Some h -> h
         | None -> "");
      timestamp =
        (match
           Option.bind (Json.member "timestamp" prov_doc) Json.to_string
         with
         | Some t -> t
         | None -> "") }
  in
  let* wall = num_map_field doc "wall" in
  let* gauges = num_map_field doc "gauges" in
  let* spans =
    match Json.member "spans" doc with
    | None -> Ok []
    | Some (Json.Arr items) ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | item :: rest ->
          (match
             ( Option.bind (Json.member "name" item) Json.to_string,
               Option.bind (Json.member "calls" item) Json.to_int,
               Option.bind (Json.member "total_s" item) Json.to_float )
           with
           | Some span_name, Some calls, Some total_s ->
             go ({ span_name; calls; total_s } :: acc) rest
           | _ -> Error "record: ill-formed span entry")
      in
      go [] items
    | Some _ -> Error "record: spans is not an array"
  in
  Ok
    { version; prov; config; metrics; counters; headline; wall; gauges;
      spans }

let parse text =
  let* doc = Json.parse text in
  of_json doc

let metric r name =
  match List.assoc_opt name r.metrics with
  | Some v -> Some v
  | None ->
    (match List.assoc_opt name r.counters with
     | Some v -> Some (float_of_int v)
     | None -> None)

let git_rev () =
  match
    let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
    let line = try input_line ic with End_of_file -> "" in
    let status = Unix.close_process_in ic in
    (line, status)
  with
  | line, Unix.WEXITED 0 when line <> "" -> Some (String.trim line)
  | _ -> None
  | exception _ -> None

let timestamp () =
  let t = Unix.gmtime (Unix.gettimeofday ()) in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (t.Unix.tm_year + 1900)
    (t.Unix.tm_mon + 1) t.Unix.tm_mday t.Unix.tm_hour t.Unix.tm_min
    t.Unix.tm_sec

let provenance ~kind ~circuit =
  { Record.circuit;
    kind;
    git_rev = git_rev ();
    jobs = Jobs.default_jobs ();
    hostname = (try Unix.gethostname () with _ -> "");
    timestamp = timestamp () }

let solver_name = function
  | `Auto -> "auto"
  | `Ilp -> "ilp"
  | `Mis -> "mis"
  | `Greedy -> "greedy"

let config_json (c : Phase3.Flow.config) =
  let cg = c.Phase3.Flow.clock_gating in
  [ ("solver", Json.Str (solver_name c.Phase3.Flow.solver));
    ("node_budget", Json.Num (float_of_int c.Phase3.Flow.node_budget));
    ("retime", Json.Bool c.Phase3.Flow.retime);
    ("optimize", Json.Bool c.Phase3.Flow.optimize);
    ("cg_common_enable", Json.Bool cg.Phase3.Clock_gating.common_enable);
    ("cg_m2_latch_removal", Json.Bool cg.Phase3.Clock_gating.m2_latch_removal);
    ("cg_ddcg", Json.Bool cg.Phase3.Clock_gating.ddcg);
    ("cg_ddcg_threshold", Json.Num cg.Phase3.Clock_gating.ddcg_threshold);
    ("cg_max_fanout", Json.Num (float_of_int cg.Phase3.Clock_gating.max_fanout));
    ("period_ns", Json.Num c.Phase3.Flow.period);
    ("activity_cycles", Json.Num (float_of_int c.Phase3.Flow.activity_cycles));
    ("activity_seed", Json.Num (float_of_int c.Phase3.Flow.activity_seed));
    ("verify_equivalence", Json.Bool c.Phase3.Flow.verify_equivalence);
    ("verify_cycles", Json.Num (float_of_int c.Phase3.Flow.verify_cycles));
    ("lint", Json.Bool c.Phase3.Flow.lint) ]

(* Summarise execution-shaped histograms (chunk balance, stage
   latencies) into the noisy gauge channel: they are machine-shaped,
   so per-bucket gating would be meaningless, but their percentiles
   are worth tracking under the noise band like any other gauge. *)
let exec_hist_gauges () =
  List.concat_map
    (fun (name, h) ->
      if Obs.Histogram.count h = 0 then []
      else
        [ (name ^ ".p50", Obs.Histogram.percentile h 0.50);
          (name ^ ".p99", Obs.Histogram.percentile h 0.99);
          (name ^ ".max", Obs.Histogram.max_value h) ])
    (Obs.exec_histograms ())

let rec tree_of_span_node (n : Obs.span_node) =
  { Record.t_name = n.Obs.node_name;
    t_calls = n.Obs.n_calls;
    t_total_s = n.Obs.n_total_s;
    t_self_s = n.Obs.n_self_s;
    t_children = List.map tree_of_span_node n.Obs.n_children }

let obs_rollup () =
  let spans =
    List.map
      (fun (s : Obs.span_stat) ->
        { Record.span_name = s.Obs.span_name;
          calls = s.Obs.calls;
          total_s = s.Obs.total_s })
      (Obs.span_stats ())
  in
  let gauges = Obs.gauges () @ exec_hist_gauges () in
  let tree = List.map tree_of_span_node (Obs.span_tree ()) in
  (Obs.counters (), gauges, spans, Obs.histograms (), tree)

let implement_and_power design ~clocks ~cycles ~seed =
  let design, hold = Sta.Hold_fix.run design ~clocks in
  let impl = Physical.Implement.run design in
  let kernel = Sim.Kernel.create design ~clocks in
  let inputs = Sim.Stimulus.inputs_of design in
  let streams =
    Array.init (Sim.Kernel.lanes kernel) (fun l ->
        Sim.Stimulus.random ~seed:(seed + l) ~cycles ~toggle_probability:0.3
          inputs)
  in
  Sim.Kernel.run_streams kernel streams;
  let detail =
    Power.Estimate.run impl
      ~activity:(Sim.Kernel.toggles kernel, Sim.Kernel.lane_cycles kernel)
      ~period:clocks.Sim.Clock_spec.period
  in
  (impl, hold, detail, Sim.Kernel.stats kernel)

(* inserted p2 latches carry Convert.p2_suffix in their instance name;
   retiming preserves the marker, so counting them in the retimed
   design gives the post-retime inserted count (moves can merge a
   latch group into one latch, so it may be below the ILP objective) *)
let inserted_p2_count d =
  let suffix = Phase3.Convert.p2_suffix in
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  List.length
    (List.filter
       (fun i ->
         Cell_lib.Cell.is_latch (Netlist.Design.cell d i)
         && contains (Netlist.Design.inst_name d i) suffix)
       (Netlist.Design.insts d))

let of_flow ?(with_obs = true) ?(measure_power = true) ?(power_cycles = 256)
    ?(extra_wall = []) ~circuit (result : Phase3.Flow.result) =
  let config = result.Phase3.Flow.config in
  let original = Netlist.Stats.compute result.Phase3.Flow.original in
  let final = Netlist.Stats.compute result.Phase3.Flow.final in
  let assignment = result.Phase3.Flow.assignment in
  let inserted = assignment.Phase3.Assignment.inserted_latches in
  let timing = result.Phase3.Flow.timing in
  let f = float_of_int in
  let base_metrics =
    [ ("ff.count", f original.Netlist.Stats.flip_flops);
      ("latch.count", f final.Netlist.Stats.latches);
      ("register.count", f final.Netlist.Stats.registers);
      ("clock_gate.count", f final.Netlist.Stats.clock_gates);
      ("area.cells_um2", final.Netlist.Stats.total_area);
      ("leakage.total_nw", final.Netlist.Stats.total_leakage);
      ("assign.objective", f inserted);
      ("assign.optimal", if assignment.Phase3.Assignment.optimal then 1.0 else 0.0);
      ("inserted_p2.before_retime", f inserted);
      ("inserted_p2.after_retime",
       f (inserted_p2_count result.Phase3.Flow.retimed));
      ("timing.worst_setup_slack_ns", timing.Sta.Smo.worst_setup_slack);
      ("timing.worst_hold_slack_ns", timing.Sta.Smo.worst_hold_slack);
      ("timing.violations", f (List.length timing.Sta.Smo.violations));
      ("timing.max_borrow_ns", timing.Sta.Smo.max_borrow) ]
  in
  let retime_metrics =
    match result.Phase3.Flow.retime_stats with
    | Some s -> [("retime.moves", f s.Phase3.Retime.moves)]
    | None -> []
  in
  let cg_metrics =
    match result.Phase3.Flow.cg_stats with
    | Some s ->
      let gated =
        s.Phase3.Clock_gating.gated_common_enable
        + s.Phase3.Clock_gating.ddcg_gated
      in
      [ ("cg.p2_latches", f s.Phase3.Clock_gating.p2_latches);
        ("cg.gated", f gated);
        ("cg.coverage",
         f gated /. f (max 1 s.Phase3.Clock_gating.p2_latches));
        ("cg.cells_added", f s.Phase3.Clock_gating.cg_cells_added) ]
    | None -> []
  in
  let lint_metrics =
    match result.Phase3.Flow.lint with
    | Some r ->
      [ ("lint.diagnostics", f (List.length r.Lint.Engine.diagnostics));
        ("lint.errors", f r.Lint.Engine.errors);
        ("lint.warnings", f r.Lint.Engine.warnings);
        ("lint.info", f r.Lint.Engine.infos) ]
    | None -> []
  in
  let equivalence_metrics =
    match result.Phase3.Flow.equivalence with
    | Some (Sim.Equivalence.Equivalent { shift }) ->
      [("equivalence.ok", 1.0); ("equivalence.shift", f shift)]
    | Some (Sim.Equivalence.Mismatch _) -> [("equivalence.ok", 0.0)]
    | None -> []
  in
  let power_metrics =
    if not measure_power then []
    else begin
      let clocks = Phase3.Flow.clocks_of config in
      let impl, hold, detail, kstats =
        Obs.span "qor.power" (fun () ->
            implement_and_power result.Phase3.Flow.final ~clocks
              ~cycles:power_cycles ~seed:config.Phase3.Flow.activity_seed)
      in
      let overall = detail.Power.Estimate.overall in
      let leak = detail.Power.Estimate.leakage in
      [ ("area.impl_um2", impl.Physical.Implement.total_area);
        ("wirelength.um", impl.Physical.Implement.total_wirelength);
        ("clock_tree.buffers",
         f impl.Physical.Implement.clock_tree.Physical.Clock_tree.total_buffers);
        ("hold.buffers", f hold.Sta.Hold_fix.buffers_added);
        ("hold.fixed", if hold.Sta.Hold_fix.fixed then 1.0 else 0.0);
        ("power.clock_mw", overall.Power.Estimate.clock);
        ("power.seq_mw", overall.Power.Estimate.seq);
        ("power.comb_mw", overall.Power.Estimate.comb);
        ("power.total_mw", Power.Estimate.total overall);
        ("power.leakage_mw", Power.Estimate.total leak);
        (* kernel effectiveness on the activity run; deterministic for a
           fixed circuit/seed/cycle count, so the QoR gate can ratchet
           them like any other metric *)
        ("kernel.units", f kstats.Sim.Kernel.units);
        ("kernel.fused_ops", f kstats.Sim.Kernel.fused_ops);
        ("kernel.waves_skipped", f kstats.Sim.Kernel.stat_waves_skipped);
        ("kernel.cones_skipped", f kstats.Sim.Kernel.stat_cones_skipped) ]
    end
  in
  let wall =
    List.map
      (fun (stage, t) -> ("stage." ^ stage, t))
      result.Phase3.Flow.stage_times
    @ [ ("flow.total_s",
         List.fold_left (fun acc (_, t) -> acc +. t) 0.0
           result.Phase3.Flow.stage_times);
        ("assign.solve_s", assignment.Phase3.Assignment.solve_time_s) ]
    @ extra_wall
  in
  let counters, gauges, spans, hists, tree =
    if with_obs then obs_rollup () else ([], [], [], [], [])
  in
  Record.make
    ~config:(config_json config)
    ~metrics:
      (base_metrics @ retime_metrics @ cg_metrics @ lint_metrics
       @ equivalence_metrics @ power_metrics)
    ~counters ~hists ~wall ~gauges ~spans ~tree
    (provenance ~kind:"flow" ~circuit)

(** Append-only run-record history.

    A store directory (conventionally [qor/] at the repo root) holds:

    - [runs/<id>.json] — one canonical {!Record.render} file per run;
      [<id>] is [<timestamp>-<kind>-<circuit>] with a numeric suffix on
      collision, so ids sort chronologically.
    - [history.jsonl] — one {!Record.render_compact} line appended per
      run, the cheap way to scan every run ever recorded.
    - [baselines/<name>.json] — hand-promoted records that
      [ff2latch qor check] gates against (committed to git; the store
      never writes them).

    Directories are created on first append. *)

val runs_dir : string -> string
val history_path : string -> string
val baselines_dir : string -> string

(** [append ~dir record] writes the per-run file and appends the
    history line; returns the per-run file path. *)
val append : dir:string -> Record.t -> string

(** Load one record file. *)
val load : string -> (Record.t, string) result

(** Every record in [history.jsonl], oldest first; unparsable lines
    are skipped. Empty list when the store does not exist yet. *)
val history : dir:string -> Record.t list

(** Most recent history entry for [circuit] (and [kind] when given). *)
val latest : dir:string -> ?kind:string -> circuit:string -> unit -> Record.t option

(** Source positions for front-end diagnostics.

    Every reader in this library ({!Verilog}, {!Sdc}) and the word-level
    elaborator ([Elab]) reports errors as a {!t} (file, 1-based line and
    column) plus a message that embeds a one-line source excerpt with a
    caret, so failures on real RTL point at the offending token instead
    of a bare string. *)

type t = {
  file : string;  (** as passed to the reader; ["<string>"] when unnamed *)
  line : int;     (** 1-based *)
  col : int;      (** 1-based *)
}

val make : file:string -> line:int -> col:int -> t

(** ["file:line:col"]. *)
val to_string : t -> string

(** The source line the location points into, trimmed to a readable
    length, followed by a caret line marking the column; [None] when the
    location is out of range. *)
val excerpt : source:string -> t -> string option

(** [message ?source ?loc msg] prefixes [msg] with the location and, when
    the original [source] text is available, appends the {!excerpt}. *)
val message : ?source:string -> ?loc:t -> string -> string

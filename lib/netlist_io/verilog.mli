(** Reader and writer for the {e flat structural} Verilog subset: one
    module, scalar ports, [input]/[output]/[wire] declarations, named
    library-cell instances, and [assign] aliases for output ports and
    constant ties.

    {v
      // @clocks clk
      module top (clk, a, y);
        input clk; input a;
        output y;
        wire n1;
        DFF_X1 ff0 (.CK(clk), .D(a), .Q(n1));
        assign y = n1;
      endmodule
    v}

    This is the gate-level exchange format the flow writes and re-reads:
    every instance must name a {!Cell_lib} cell, and there is no
    behavioural code, no vectors and no hierarchy.  {e Word-level}
    SystemVerilog — parameters, vector ports, [always_ff]/[always_comb],
    arithmetic operators, module hierarchy — is handled by the separate
    elaboration front-end ([Elab.Frontend], see docs/RTL.md), which
    lowers RTL through a techmapper into the same {!Netlist.Design.t}
    this reader produces.  [ff2latch] picks the front-end by extension:
    [.v] comes here, [.sv] goes through the elaborator.

    Clock ports come from a [// @clocks p1 p2 ...] comment when present,
    from the [~clocks] argument otherwise, and finally from a built-in list
    of conventional names (clk, clock, p1, p2, p3, clkbar). *)

(** Parse errors carry the source position of the offending token when
    one is known; the message already embeds a ["file:line:col:"] prefix
    and a one-line source excerpt with a caret. *)
exception Error of Srcloc.t option * string

(** [parse ?file ?clocks ~library src] reads one structural module.
    [file] (default ["<string>"]) only labels error locations. *)
val parse :
  ?file:string ->
  ?clocks:string list -> library:Cell_lib.Library.t -> string -> Netlist.Design.t

(** [write d] renders the design; emits an [@clocks] header comment so the
    output re-parses with the same clock ports. *)
val write : Netlist.Design.t -> string

(** Reader and writer for the Synopsys-design-constraints (SDC) subset
    the flow exchanges with synthesis scripts.

    {2 Writer}

    {!write} describes the clocking of a design: one [create_clock] per
    clock port with the waveform taken from a {!Sim.Clock_spec.t} (the
    three-phase edges of the converted design, or the single clock of
    the original), plus input/output delays and the
    physically-exclusive clock grouping the three phases require.  This
    is the hand-off artifact a downstream place-and-route run would
    consume.

    {2 Reader}

    {!parse} accepts the constraint style real synthesis scripts use
    (e.g. the LEN5 [set-constraints.tcl]): [set] variables with
    [$NAME]/[${NAME}] substitution, [#] comments, backslash
    continuations, and the commands

    {v
      set CLK_PERIOD 2.0
      create_clock -name clk -period $CLK_PERIOD [get_ports clk]
      set_input_delay  0.4 -clock clk [all_inputs]
      set_output_delay 0.4 -clock clk [get_ports {res_o valid_o}]
      set_clock_uncertainty 0.05 [get_clocks clk]
    v}

    Unknown commands ([set_clock_groups], [set_false_path], [set_load],
    ...) are collected in {!constraints.ignored} rather than rejected,
    so the reader survives full production constraint files.
    [ff2latch convert --constraints FILE] uses the first clock's period
    (and checks its source port against the design). *)

(** Parse errors carry the source position of the offending word; the
    message embeds a ["file:line:col:"] prefix and a one-line excerpt. *)
exception Error of Srcloc.t option * string

val write :
  ?input_delay:float ->
  ?output_delay:float ->
  ?clock_uncertainty:float ->
  Netlist.Design.t -> clocks:Sim.Clock_spec.t -> string

(** Object a delay constraint applies to. *)
type target =
  | Ports of string list  (** [get_ports ...] or bare names *)
  | All_inputs            (** [all_inputs] *)
  | All_outputs           (** [all_outputs] *)

type clock = {
  clock_name : string;          (** [-name], defaulting to the port *)
  source_port : string option;  (** [None] for virtual clocks *)
  period : float;               (** ns *)
  waveform : (float * float) option;  (** [-waveform {rise fall}], ns *)
}

type io_delay = {
  io_ports : target;
  relative_to : string option;  (** [-clock] name when given *)
  delay : float;                (** ns *)
  is_min : bool;                (** [-min] entry (default is max) *)
}

type constraints = {
  clocks : clock list;
  input_delays : io_delay list;
  output_delays : io_delay list;
  uncertainties : (string option * float) list;
    (** clock name (or [None] for all clocks) -> uncertainty in ns *)
  ignored : (Srcloc.t * string) list;
    (** commands the subset does not interpret, with their location *)
}

(** [parse ?file src] reads a constraint file.  [file] (default
    ["<sdc>"]) only labels error locations. *)
val parse : ?file:string -> string -> constraints

(** Period of the first defined clock, ns. *)
val period : constraints -> float option

(** Source port of the first non-virtual clock. *)
val clock_port : constraints -> string option

exception Error of Srcloc.t option * string

let () =
  Printexc.register_printer (function
    | Error (loc, msg) ->
      Some
        (Printf.sprintf "Netlist_io.Sdc.Error (%s)"
           (match loc with
            | Some l -> Srcloc.to_string l ^ ": " ^ msg
            | None -> msg))
    | _ -> None)

(* --- Writer --- *)

let write ?(input_delay = 0.10) ?(output_delay = 0.10)
    ?(clock_uncertainty = 0.05) d ~clocks =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let period = clocks.Sim.Clock_spec.period in
  add "# SDC for %s (written by threephase)\n" d.Netlist.Design.design_name;
  let defined_clocks =
    List.filter
      (fun port ->
        List.exists (fun (p, _) -> String.equal p port) clocks.Sim.Clock_spec.ports)
      d.Netlist.Design.clock_ports
  in
  List.iter
    (fun port ->
      match List.assoc_opt port clocks.Sim.Clock_spec.ports with
      | None -> ()
      | Some w ->
        let rise = w.Sim.Clock_spec.rise_at *. period in
        let fall = w.Sim.Clock_spec.fall_at *. period in
        add
          "create_clock -name %s -period %.4f -waveform {%.4f %.4f} [get_ports %s]\n"
          port period rise fall port)
    defined_clocks;
  (match defined_clocks with
   | _ :: _ :: _ ->
     add "set_clock_groups -physically_exclusive -group {%s}\n"
       (String.concat "} -group {" defined_clocks)
   | [] | [_] -> ());
  List.iter
    (fun port -> add "set_clock_uncertainty %.4f [get_clocks %s]\n"
        clock_uncertainty port)
    defined_clocks;
  let launch_clock = match defined_clocks with c :: _ -> c | [] -> "clk" in
  List.iter
    (fun (port, _) ->
      if not (Netlist.Design.is_clock_port d port) then
        add "set_input_delay %.4f -clock %s [get_ports %s]\n" input_delay
          launch_clock port)
    d.Netlist.Design.primary_inputs;
  List.iter
    (fun (port, _) ->
      add "set_output_delay %.4f -clock %s [get_ports %s]\n" output_delay
        launch_clock port)
    d.Netlist.Design.primary_outputs;
  Buffer.contents buf

(* --- Reader --- *)

type target =
  | Ports of string list
  | All_inputs
  | All_outputs

type clock = {
  clock_name : string;
  source_port : string option;
  period : float;
  waveform : (float * float) option;
}

type io_delay = {
  io_ports : target;
  relative_to : string option;
  delay : float;
  is_min : bool;
}

type constraints = {
  clocks : clock list;
  input_delays : io_delay list;
  output_delays : io_delay list;
  uncertainties : (string option * float) list;
  ignored : (Srcloc.t * string) list;
}

(* One logical SDC line, split into Tcl-ish words: plain words, [...]
   command substitutions (kept whole, brackets stripped) and {...} brace
   groups (kept whole, braces stripped). *)
type word =
  | Word of string
  | Bracket of string
  | Brace of string

let fail ~src loc fmt =
  Format.kasprintf
    (fun msg -> raise (Error (Some loc, Srcloc.message ~source:src ~loc msg)))
    fmt

(* Split a physical source into logical lines: strip # comments, join
   backslash continuations.  Returns (line_number, text) pairs where the
   number is the first physical line of the logical line. *)
let logical_lines src =
  let raw = String.split_on_char '\n' src in
  let strip line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  let out = ref [] and pending = ref None and lineno = ref 0 in
  List.iter
    (fun line ->
      incr lineno;
      let line = strip line in
      let trimmed = String.trim line in
      let starts = match !pending with None -> !lineno | Some (n, _) -> n in
      let prefix = match !pending with None -> "" | Some (_, p) -> p ^ " " in
      if String.length trimmed > 0
      && trimmed.[String.length trimmed - 1] = '\\' then
        pending :=
          Some (starts, prefix ^ String.sub trimmed 0 (String.length trimmed - 1))
      else begin
        pending := None;
        let full = String.trim (prefix ^ trimmed) in
        if full <> "" then out := (starts, full) :: !out
      end)
    raw;
  (match !pending with
   | Some (n, p) -> if String.trim p <> "" then out := (n, String.trim p) :: !out
   | None -> ());
  List.rev !out

(* Split one logical line into words, honouring nested [] and {}. *)
let words_of_line ~src ~file lineno line =
  let n = String.length line in
  let loc col = Srcloc.make ~file ~line:lineno ~col in
  let ws = ref [] in
  let i = ref 0 in
  let grab_group open_c close_c =
    let start = !i in
    let depth = ref 0 in
    (try
       while !i < n do
         if line.[!i] = open_c then incr depth
         else if line.[!i] = close_c then begin
           decr depth;
           if !depth = 0 then raise Exit
         end;
         incr i
       done;
       fail ~src (loc (start + 1)) "unterminated %c...%c group" open_c close_c
     with Exit -> ());
    let inner = String.sub line (start + 1) (!i - start - 1) in
    incr i;
    inner
  in
  while !i < n do
    match line.[!i] with
    | ' ' | '\t' -> incr i
    | '[' -> ws := (Bracket (grab_group '[' ']'), loc (!i + 1)) :: !ws
    | '{' -> ws := (Brace (grab_group '{' '}'), loc (!i + 1)) :: !ws
    | _ ->
      let start = !i in
      while !i < n && not (List.mem line.[!i] [' '; '\t'; '['; '{']) do incr i done;
      ws := (Word (String.sub line start (!i - start)), loc (start + 1)) :: !ws
  done;
  List.rev !ws

let split_ws s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\t')
  |> List.map String.trim
  |> List.filter (fun x -> x <> "")

(* $NAME / ${NAME} substitution from `set` variables. *)
let substitute ~src env loc s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  let is_var_char c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9') || c = '_'
  in
  while !i < n do
    if s.[!i] = '$' && !i + 1 < n then begin
      let name, stop =
        if s.[!i + 1] = '{' then
          match String.index_from_opt s (!i + 2) '}' with
          | Some j -> (String.sub s (!i + 2) (j - !i - 2), j + 1)
          | None -> fail ~src loc "unterminated ${...} in %s" s
        else begin
          let j = ref (!i + 1) in
          while !j < n && is_var_char s.[!j] do incr j done;
          (String.sub s (!i + 1) (!j - !i - 1), !j)
        end
      in
      (match Hashtbl.find_opt env name with
       | Some v -> Buffer.add_string buf v
       | None -> fail ~src loc "undefined variable $%s" name);
      i := stop
    end
    else begin
      Buffer.add_char buf s.[!i];
      incr i
    end
  done;
  Buffer.contents buf

let float_arg ~src loc what s =
  match float_of_string_opt s with
  | Some f -> f
  | None -> fail ~src loc "%s expects a number, got %S" what s

(* Interpret an object-access word: [get_ports x], [get_ports {a b}],
   [all_inputs], [all_outputs], [get_clocks c], or a bare name. *)
let target_of ~src loc = function
  | Word w -> Some (Ports [w])
  | Brace b -> Some (Ports (split_ws b))
  | Bracket b ->
    (match split_ws b with
     | "get_ports" :: rest ->
       let names =
         List.concat_map
           (fun w ->
             let w =
               if String.length w >= 2 && w.[0] = '{'
               && w.[String.length w - 1] = '}'
               then String.sub w 1 (String.length w - 2)
               else w
             in
             split_ws w)
           rest
       in
       if names = [] then fail ~src loc "get_ports with no ports" else Some (Ports names)
     | ["all_inputs"] -> Some All_inputs
     | ["all_outputs"] -> Some All_outputs
     | _ -> None)

let clock_name_of = function
  | Word w -> Some w
  | Brace b -> (match split_ws b with [c] -> Some c | _ -> None)
  | Bracket b ->
    (match split_ws b with
     | ["get_clocks"; c] -> Some c
     | _ -> None)

let parse ?(file = "<sdc>") src =
  let env : (string, string) Hashtbl.t = Hashtbl.create 16 in
  let clocks = ref [] in
  let input_delays = ref [] in
  let output_delays = ref [] in
  let uncertainties = ref [] in
  let ignored = ref [] in
  let handle_line (lineno, line) =
    match words_of_line ~src ~file lineno line with
    | [] -> ()
    | (first_w, first_loc) :: rest ->
      let subst (w, l) =
        match w with
        | Word s -> (Word (substitute ~src env l s), l)
        | Brace s -> (Brace (substitute ~src env l s), l)
        | Bracket s -> (Bracket (substitute ~src env l s), l)
      in
      let rest = List.map subst rest in
      let cmd = match first_w with Word s -> s | Brace s | Bracket s -> s in
      let line_loc = first_loc in
      match cmd with
      | "set" ->
        (match rest with
         | [(Word name, _); (value, _)] ->
           let v = match value with Word s | Brace s | Bracket s -> s in
           Hashtbl.replace env name v
         | _ -> fail ~src line_loc "set expects: set NAME VALUE")
      | "create_clock" ->
        (* -min/-max don't apply; -add tolerated *)
        let name = ref None and period = ref None and waveform = ref None in
        let port = ref None in
        let rec go = function
          | [] -> ()
          | (Word "-name", _) :: (Word v, _) :: tl -> name := Some v; go tl
          | (Word "-period", l) :: (v, _) :: tl ->
            let s = match v with Word s | Brace s | Bracket s -> s in
            period := Some (float_arg ~src l "-period" s); go tl
          | (Word "-waveform", l) :: (Brace b, _) :: tl ->
            (match split_ws b with
             | [r; f] ->
               waveform :=
                 Some (float_arg ~src l "-waveform" r, float_arg ~src l "-waveform" f);
               go tl
             | _ -> fail ~src l "-waveform expects {rise fall}")
          | (Word "-add", _) :: tl -> go tl
          | (w, l) :: tl ->
            (match target_of ~src l w with
             | Some (Ports [p]) -> port := Some p; go tl
             | Some (Ports _) -> fail ~src l "create_clock expects one source port"
             | Some (All_inputs | All_outputs) | None ->
               fail ~src l "unexpected argument to create_clock")
        in
        go rest;
        (match !period with
         | None -> fail ~src line_loc "create_clock needs -period"
         | Some p ->
           let clock_name =
             match !name, !port with
             | Some n, _ -> n
             | None, Some port -> port
             | None, None ->
               fail ~src line_loc "create_clock needs -name or a source port"
           in
           clocks :=
             { clock_name; source_port = !port; period = p; waveform = !waveform }
             :: !clocks)
      | "set_input_delay" | "set_output_delay" ->
        let clock = ref None and is_min = ref false and delay = ref None in
        let target = ref None in
        let rec go = function
          | [] -> ()
          | (Word "-clock", l) :: (v, _) :: tl ->
            (match clock_name_of v with
             | Some c -> clock := Some c; go tl
             | None -> fail ~src l "-clock expects a clock name")
          | (Word "-min", _) :: tl -> is_min := true; go tl
          | (Word "-max", _) :: tl -> is_min := false; go tl
          | (Word "-clock_fall", _) :: tl | (Word "-add_delay", _) :: tl -> go tl
          | (Word w, l) :: tl when !delay = None
                               && float_of_string_opt w <> None ->
            delay := Some (float_arg ~src l "delay" w); go tl
          | (w, l) :: tl ->
            (match target_of ~src l w with
             | Some t -> target := Some t; go tl
             | None -> fail ~src l "unexpected argument to %s" cmd)
        in
        go rest;
        (match !delay, !target with
         | Some d, Some t ->
           let entry =
             { io_ports = t; relative_to = !clock; delay = d; is_min = !is_min }
           in
           if String.equal cmd "set_input_delay" then
             input_delays := entry :: !input_delays
           else output_delays := entry :: !output_delays
         | None, _ -> fail ~src line_loc "%s needs a delay value" cmd
         | _, None -> fail ~src line_loc "%s needs a port list" cmd)
      | "set_clock_uncertainty" ->
        let value = ref None and clock = ref None in
        let rec go = function
          | [] -> ()
          | (Word "-setup", _) :: tl | (Word "-hold", _) :: tl -> go tl
          | (Word w, l) :: tl when !value = None && float_of_string_opt w <> None ->
            value := Some (float_arg ~src l "uncertainty" w); go tl
          | (w, _) :: tl ->
            (match clock_name_of w with
             | Some c -> clock := Some c; go tl
             | None -> go tl)
        in
        go rest;
        (match !value with
         | Some v -> uncertainties := (!clock, v) :: !uncertainties
         | None -> fail ~src line_loc "set_clock_uncertainty needs a value")
      | _ ->
        (* anything else (set_clock_groups, set_false_path, set_units,
           set_load, ...) is recorded but does not affect the flow *)
        ignored := (line_loc, line) :: !ignored
  in
  List.iter handle_line (logical_lines src);
  { clocks = List.rev !clocks;
    input_delays = List.rev !input_delays;
    output_delays = List.rev !output_delays;
    uncertainties = List.rev !uncertainties;
    ignored = List.rev !ignored }

let period cs = match cs.clocks with [] -> None | c :: _ -> Some c.period

let clock_port cs =
  List.find_map (fun c -> c.source_port) cs.clocks

type t = { file : string; line : int; col : int }

let make ~file ~line ~col = { file; line; col }

let to_string { file; line; col } = Printf.sprintf "%s:%d:%d" file line col

let nth_line source n =
  let rec go start line =
    if line = n then
      let stop =
        match String.index_from_opt source start '\n' with
        | Some j -> j
        | None -> String.length source
      in
      Some (String.sub source start (stop - start))
    else
      match String.index_from_opt source start '\n' with
      | Some j -> go (j + 1) (line + 1)
      | None -> None
  in
  if n < 1 then None else go 0 1

let excerpt ~source loc =
  match nth_line source loc.line with
  | None -> None
  | Some text ->
    let text =
      (* keep the excerpt one readable line *)
      if String.length text > 120 then String.sub text 0 117 ^ "..." else text
    in
    let caret_col = max 0 (min (loc.col - 1) (String.length text)) in
    let caret =
      String.map (fun c -> if c = '\t' then '\t' else ' ')
        (String.sub text 0 caret_col)
      ^ "^"
    in
    Some (Printf.sprintf "  %s\n  %s" text caret)

let message ?source ?loc msg =
  match loc with
  | None -> msg
  | Some l ->
    let head = Printf.sprintf "%s: %s" (to_string l) msg in
    (match source with
     | None -> head
     | Some src ->
       (match excerpt ~source:src l with
        | None -> head
        | Some e -> head ^ "\n" ^ e))

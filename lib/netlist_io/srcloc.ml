type t = { file : string; line : int; col : int }

let make ~file ~line ~col = { file; line; col }

let to_string { file; line; col } = Printf.sprintf "%s:%d:%d" file line col

let nth_line source n =
  let rec go start line =
    if line = n then
      let stop =
        match String.index_from_opt source start '\n' with
        | Some j -> j
        | None -> String.length source
      in
      Some (String.sub source start (stop - start))
    else
      match String.index_from_opt source start '\n' with
      | Some j -> go (j + 1) (line + 1)
      | None -> None
  in
  if n < 1 then None else go 0 1

let excerpt ~source loc =
  match nth_line source loc.line with
  | None -> None
  | Some raw ->
    (* Expand tabs to 8-column stops and build the caret line out of
       plain spaces: byte-counting columns against a raw line misplaces
       the caret as soon as the line mixes tabs and spaces, and a caret
       line carrying tabs of its own renders differently once the
       two-space prefix shifts the stops. *)
    let b = Buffer.create (String.length raw + 8) in
    let caret_col = ref (-1) in
    String.iteri
      (fun i c ->
        if i = loc.col - 1 then caret_col := Buffer.length b;
        match c with
        | '\t' -> Buffer.add_string b (String.make (8 - (Buffer.length b mod 8)) ' ')
        | c -> Buffer.add_char b c)
      raw;
    let text = Buffer.contents b in
    let caret_col = if !caret_col < 0 then String.length text else !caret_col in
    let text =
      (* keep the excerpt one readable line *)
      if String.length text > 120 then String.sub text 0 117 ^ "..." else text
    in
    let caret_col = max 0 (min caret_col (String.length text)) in
    Some (Printf.sprintf "  %s\n  %s" text (String.make caret_col ' ' ^ "^"))

let message ?source ?loc msg =
  match loc with
  | None -> msg
  | Some l ->
    let head = Printf.sprintf "%s: %s" (to_string l) msg in
    (match source with
     | None -> head
     | Some src ->
       (match excerpt ~source:src l with
        | None -> head
        | Some e -> head ^ "\n" ^ e))

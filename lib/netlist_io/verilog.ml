exception Error of Srcloc.t option * string

let () =
  Printexc.register_printer (function
    | Error (loc, msg) ->
      Some
        (Printf.sprintf "Netlist_io.Verilog.Error (%s)"
           (match loc with
            | Some l -> Srcloc.to_string l ^ ": " ^ msg
            | None -> msg))
    | _ -> None)

(* --- Lexer --- *)

type token =
  | Id of string
  | Lit of bool           (* 1'b0 / 1'b1 *)
  | Punct of char         (* ( ) ; , . = *)
  | Eof

let conventional_clock_names = ["clk"; "clock"; "p1"; "p2"; "p3"; "clkbar"]

let scan_clock_comment src =
  (* Look for "// @clocks a b c" anywhere in the source. *)
  let tag = "@clocks" in
  match
    Seq.find_map
      (fun line ->
        let line = String.trim line in
        if String.length line > 2 && String.sub line 0 2 = "//" then
          let rest = String.trim (String.sub line 2 (String.length line - 2)) in
          if String.length rest >= String.length tag
          && String.sub rest 0 (String.length tag) = tag
          then
            Some
              (String.sub rest (String.length tag)
                 (String.length rest - String.length tag)
               |> String.split_on_char ' '
               |> List.map String.trim
               |> List.filter (fun s -> not (String.equal s "")))
          else None
        else None)
      (List.to_seq (String.split_on_char '\n' src))
  with
  | Some clocks -> Some clocks
  | None -> None

(* The lexer walks the raw string and keeps a parallel line/column count,
   so every token carries the Srcloc.t it started at. *)
let tokenize ~file src =
  let n = String.length src in
  let toks = ref [] in
  let line = ref 1 and bol = ref 0 in
  let loc_at i = Srcloc.make ~file ~line:!line ~col:(i - !bol + 1) in
  let fail i fmt =
    Format.kasprintf
      (fun msg ->
        raise (Error (Some (loc_at i), Srcloc.message ~source:src ~loc:(loc_at i) msg)))
      fmt
  in
  let is_id c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9') || c = '_' || c = '$' || c = '[' || c = ']'
  in
  let newline i = incr line; bol := i + 1 in
  let rec go i =
    if i >= n then ()
    else
      match src.[i] with
      | '\n' -> newline i; go (i + 1)
      | ' ' | '\t' | '\r' -> go (i + 1)
      | '/' when i + 1 < n && src.[i + 1] = '/' ->
        let j = ref i in
        while !j < n && src.[!j] <> '\n' do incr j done;
        go !j
      | '/' when i + 1 < n && src.[i + 1] = '*' ->
        let j = ref (i + 2) in
        while !j + 1 < n && not (src.[!j] = '*' && src.[!j + 1] = '/') do
          if src.[!j] = '\n' then newline !j;
          incr j
        done;
        go (!j + 2)
      | '(' | ')' | ';' | ',' | '.' | '=' as c ->
        toks := (Punct c, loc_at i) :: !toks;
        go (i + 1)
      | '1' when i + 3 < n && src.[i + 1] = '\'' && (src.[i + 2] = 'b' || src.[i + 2] = 'B') ->
        (match src.[i + 3] with
         | '0' -> toks := (Lit false, loc_at i) :: !toks; go (i + 4)
         | '1' -> toks := (Lit true, loc_at i) :: !toks; go (i + 4)
         | c -> fail i "bad literal 1'b%c" c)
      | c when is_id c ->
        let j = ref i in
        while !j < n && is_id src.[!j] do incr j done;
        toks := (Id (String.sub src i (!j - i)), loc_at i) :: !toks;
        go !j
      | c -> fail i "unexpected character %C" c
  in
  go 0;
  List.rev !toks

(* --- Parser --- *)

type st = {
  mutable toks : (token * Srcloc.t) list;
  src : string;
  mutable last_loc : Srcloc.t;
}

let cur_loc st =
  match st.toks with [] -> st.last_loc | (_, l) :: _ -> l

let error st fmt =
  let loc = cur_loc st in
  Format.kasprintf
    (fun msg ->
      raise (Error (Some loc, Srcloc.message ~source:st.src ~loc msg)))
    fmt

let peek st = match st.toks with [] -> Eof | (t, _) :: _ -> t

let next st =
  match st.toks with
  | [] -> Eof
  | (t, l) :: rest -> st.toks <- rest; st.last_loc <- l; t

let expect_punct st c =
  match peek st with
  | Punct p when p = c -> ignore (next st)
  | t ->
    error st "expected %C, got %s" c
      (match t with
       | Id s -> s
       | Lit b -> if b then "1'b1" else "1'b0"
       | Punct p -> String.make 1 p
       | Eof -> "<eof>")

let expect_id st =
  match peek st with
  | Id s -> ignore (next st); s
  | Lit _ | Punct _ | Eof -> error st "expected identifier"

let parse ?(file = "<string>") ?clocks ~library src =
  let clock_names =
    match scan_clock_comment src, clocks with
    | Some cs, _ -> cs
    | None, Some cs -> cs
    | None, None -> conventional_clock_names
  in
  let is_clock name = List.exists (String.equal name) clock_names in
  let st =
    { toks = tokenize ~file src; src;
      last_loc = Srcloc.make ~file ~line:1 ~col:1 }
  in
  (match next st with
   | Id "module" -> ()
   | _ -> error st "expected 'module'");
  let module_name = expect_id st in
  (* port list (names only; directions come from declarations) *)
  (match peek st with
   | Punct '(' ->
     ignore (next st);
     let rec ports () =
       match next st with
       | Punct ')' -> ()
       | Id _ | Punct ',' -> ports ()
       | Lit _ | Punct _ | Eof -> error st "malformed port list"
     in
     ports ()
   | Punct _ | Id _ | Lit _ | Eof -> ());
  expect_punct st ';';
  let b = Netlist.Builder.create ~name:module_name ~library in
  let nets : (string, Netlist.Design.net) Hashtbl.t = Hashtbl.create 1024 in
  let outputs = ref [] in        (* declared output port names, reversed *)
  let aliases = ref [] in        (* assign lhs = rhs pairs, reversed *)
  let declare_wire name =
    if not (Hashtbl.mem nets name) then
      Hashtbl.add nets name (Netlist.Builder.fresh_net b name)
  in
  let rec id_list acc =
    let name = expect_id st in
    match next st with
    | Punct ';' -> List.rev (name :: acc)
    | Punct ',' -> id_list (name :: acc)
    | Id _ | Lit _ | Punct _ | Eof -> error st "malformed declaration list"
  in
  let net_of name =
    match Hashtbl.find_opt nets name with
    | Some n -> n
    | None -> error st "undeclared signal %s" name
  in
  let parse_instance cell_name =
    let inst_name = expect_id st in
    expect_punct st '(';
    let conns = ref [] in
    let rec connections () =
      match next st with
      | Punct ')' -> ()
      | Punct ',' -> connections ()
      | Punct '.' ->
        let pin = expect_id st in
        expect_punct st '(';
        let net =
          match next st with
          | Id sig_name -> net_of sig_name
          | Lit v -> Netlist.Builder.const b v
          | Punct _ | Eof -> error st "malformed connection for pin %s" pin
        in
        expect_punct st ')';
        conns := (pin, net) :: !conns;
        connections ()
      | Id _ | Lit _ | Punct _ | Eof -> error st "malformed instance %s" inst_name
    in
    connections ();
    expect_punct st ';';
    (match Cell_lib.Library.find library cell_name with
     | None -> error st "unknown cell %s (instance %s)" cell_name inst_name
     | Some cell ->
       ignore (Netlist.Builder.add_instance b inst_name cell (List.rev !conns)))
  in
  let rec body () =
    match next st with
    | Id "endmodule" -> ()
    | Id "input" ->
      let names = id_list [] in
      List.iter
        (fun name ->
          if Hashtbl.mem nets name then error st "duplicate declaration of %s" name;
          Hashtbl.add nets name
            (Netlist.Builder.add_input ~clock:(is_clock name) b name))
        names;
      body ()
    | Id "output" ->
      let names = id_list [] in
      List.iter
        (fun name ->
          declare_wire name;
          outputs := name :: !outputs)
        names;
      body ()
    | Id "wire" ->
      List.iter declare_wire (id_list []);
      body ()
    | Id "assign" ->
      let lhs = expect_id st in
      expect_punct st '=';
      (match next st with
       | Lit v ->
         (* tie: if the name is already a declared net (possibly already
            connected), drive it from the constant; otherwise bind the
            name directly to the constant net *)
         (match Hashtbl.find_opt nets lhs with
          | Some existing ->
            Netlist.Gates.emit b Netlist.Gates.Buf [Netlist.Builder.const b v]
              ~out:existing ~prefix:("tie_" ^ lhs)
          | None -> Hashtbl.replace nets lhs (Netlist.Builder.const b v))
       | Id rhs -> aliases := (lhs, rhs) :: !aliases
       | Punct _ | Eof -> error st "malformed assign");
      expect_punct st ';';
      body ()
    | Id cell_name -> parse_instance cell_name; body ()
    | Eof -> error st "missing endmodule"
    | Lit _ | Punct _ -> error st "unexpected token in module body"
  in
  body ();
  (* resolve aliases: output port -> source net; otherwise insert a buffer *)
  let alias_map = Hashtbl.create 16 in
  List.iter (fun (lhs, rhs) -> Hashtbl.replace alias_map lhs rhs) !aliases;
  let rec resolve name fuel =
    if fuel = 0 then error st "alias cycle at %s" name
    else
      match Hashtbl.find_opt alias_map name with
      | Some rhs -> resolve rhs (fuel - 1)
      | None -> net_of name
  in
  let output_names = List.rev !outputs in
  List.iter
    (fun (lhs, rhs) ->
      if not (List.exists (String.equal lhs) output_names) then
        (* plain wire alias: buffer rhs onto lhs *)
        Netlist.Gates.emit b Netlist.Gates.Buf [net_of rhs] ~out:(net_of lhs)
          ~prefix:("alias_" ^ lhs))
    (List.rev !aliases);
  List.iter
    (fun name -> Netlist.Builder.add_output b name (resolve name 1000))
    output_names;
  Netlist.Builder.freeze b

(* --- Writer --- *)

let write d =
  let buf = Buffer.create 8192 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  (match d.Netlist.Design.clock_ports with
   | [] -> ()
   | cs -> add "// @clocks %s\n" (String.concat " " cs));
  let pi_names = List.map fst d.Netlist.Design.primary_inputs in
  let po_names = List.map fst d.Netlist.Design.primary_outputs in
  add "module %s (%s);\n" d.Netlist.Design.design_name
    (String.concat ", " (pi_names @ po_names));
  List.iter (fun p -> add "  input %s;\n" p) pi_names;
  List.iter (fun p -> add "  output %s;\n" p) po_names;
  (* wires: every net that is not a PI net and not identical to a PO name *)
  let pi_nets = List.map snd d.Netlist.Design.primary_inputs in
  let is_pi_net n = List.mem n pi_nets in
  let port_names = pi_names @ po_names in
  let consts = ref [] in
  for n = 0 to Netlist.Design.num_nets d - 1 do
    let name = Netlist.Design.net_name d n in
    (match d.Netlist.Design.net_driver.(n) with
     | Netlist.Design.Driven_const v -> consts := (name, v) :: !consts
     | Netlist.Design.Driven_by _ | Netlist.Design.Driven_by_input _
     | Netlist.Design.Undriven -> ());
    if (not (is_pi_net n)) && not (List.exists (String.equal name) port_names) then
      add "  wire %s;\n" name
  done;
  List.iter (fun (name, v) -> add "  assign %s = 1'b%d;\n" name (if v then 1 else 0))
    (List.rev !consts);
  for i = 0 to Netlist.Design.num_insts d - 1 do
    let c = Netlist.Design.cell d i in
    let conns =
      Array.to_list d.Netlist.Design.inst_conns.(i)
      |> List.map (fun (pin, n) ->
          Printf.sprintf ".%s(%s)" pin (Netlist.Design.net_name d n))
    in
    add "  %s %s (%s);\n" c.Cell_lib.Cell.name (Netlist.Design.inst_name d i)
      (String.concat ", " conns)
  done;
  (* output ports whose net has a different name need an alias *)
  List.iter
    (fun (port, n) ->
      let name = Netlist.Design.net_name d n in
      if not (String.equal port name) then add "  assign %s = %s;\n" port name)
    d.Netlist.Design.primary_outputs;
  add "endmodule\n";
  Buffer.contents buf
